#!/usr/bin/env bash
# Builds the crash-torture harness under AddressSanitizer and runs the
# durability, transactions, integrity and server labels: the
# fork/kill/recover iterations of the torture test (auto-commit and
# transactional traces), the seeded bit-flip sweep, the WAL, recovery
# and transaction suites, the corruption fault matrix with its salvage
# legs, and the server-kill harness that recovers a remote client's
# acked commits. Any sanitizer report fails the run (halt_on_error), so a green
# exit means recovery after a kill or a flipped byte at every armed
# point is ASan-clean.
#
# Usage: scripts/check_crash.sh [build-root]
#   build-root defaults to build-sanitize/ next to the source tree;
#   the address/ subdirectory inside it is shared with
#   check_sanitizers.sh, so running both does not rebuild.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
root="${1:-$repo/build-sanitize}"
dir="$root/address"
jobs="$(nproc 2>/dev/null || echo 4)"

echo "== TIP_SANITIZE=address: configure + build ($dir) =="
cmake -S "$repo" -B "$dir" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DTIP_SANITIZE=address >/dev/null
cmake --build "$dir" -j "$jobs" >/dev/null

echo "== crash torture: ctest -L 'durability|transactions|integrity|server' under ASan =="
ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" \
  ctest --test-dir "$dir" -L 'durability|transactions|integrity|server' -j "$jobs" \
  --output-on-failure
echo "crash torture clean under ASan"
