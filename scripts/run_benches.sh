#!/usr/bin/env bash
# Builds the bench binaries in Release and runs every bench_* from the
# repository root, so the machine-readable BENCH_*.json files land next
# to the sources that are committed with them (each bench fopen()s its
# JSON path relative to the current directory).
#
# Usage: scripts/run_benches.sh [build-dir] [bench-name...]
#   build-dir defaults to build-bench/ next to the source tree.
#   With bench names (e.g. `run_benches.sh '' bench_plan_cache`) only
#   those binaries run; default is every bench_* under bench/.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
dir="${1:-$repo/build-bench}"
[ -n "$dir" ] || dir="$repo/build-bench"
shift $(( $# > 0 ? 1 : 0 ))

echo "== configure + build ($dir, Release) =="
cmake -S "$repo" -B "$dir" -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$dir" -j "$(nproc 2>/dev/null || echo 4)" >/dev/null

if [ $# -gt 0 ]; then
  benches=("$@")
else
  benches=()
  for src in "$repo"/bench/bench_*.cc; do
    benches+=("$(basename "${src%.cc}")")
  done
fi

failed=()
cd "$repo"
for bench in "${benches[@]}"; do
  echo
  echo "== $bench =="
  if ! "$dir/bench/$bench"; then
    failed+=("$bench")
  fi
done

echo
if [ "${#failed[@]}" -gt 0 ]; then
  echo "FAILED: ${failed[*]}" >&2
  exit 1
fi
echo "all benches ran; BENCH_*.json written to $repo"
