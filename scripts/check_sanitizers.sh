#!/usr/bin/env bash
# Builds the concurrency-, robustness-, durability-, transactions-,
# plancache-, integrity- and server-labeled tests under
# AddressSanitizer and ThreadSanitizer and runs them. Any sanitizer
# report fails the run (halt_on_error), so a green exit means all
# seven labels are ASan- and TSan-clean.
#
# Usage: scripts/check_sanitizers.sh [build-root]
#   build-root defaults to build-sanitize/ next to the source tree;
#   one subdirectory per sanitizer is configured inside it.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
root="${1:-$repo/build-sanitize}"
labels='concurrency|robustness|durability|transactions|plancache|integrity|server'
jobs="$(nproc 2>/dev/null || echo 4)"

run_one() {
  local sanitizer="$1"
  local dir="$root/$sanitizer"
  echo "== TIP_SANITIZE=$sanitizer: configure + build ($dir) =="
  cmake -S "$repo" -B "$dir" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DTIP_SANITIZE="$sanitizer" >/dev/null
  cmake --build "$dir" -j "$jobs" >/dev/null
  echo "== TIP_SANITIZE=$sanitizer: ctest -L '$labels' =="
  ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" \
  TSAN_OPTIONS="halt_on_error=1" \
    ctest --test-dir "$dir" -L "$labels" -j "$jobs" --output-on-failure
  # The shared-gate overlap must survive under the sanitizer too: two
  # think-time browsers beating the serialized baseline is the smallest
  # observable form of the session-concurrency contract.
  echo "== TIP_SANITIZE=$sanitizer: bench_concurrent_reads --smoke =="
  ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" \
  TSAN_OPTIONS="halt_on_error=1" \
    "$dir/bench/bench_concurrent_reads" --smoke
}

run_one address
run_one thread
# The crash-torture harness gets a dedicated pass (reuses the address
# build directory, so this adds no rebuild).
"$repo/scripts/check_crash.sh" "$root"
echo "sanitizers clean: $labels under ASan and TSan"
