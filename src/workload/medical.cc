#include "workload/medical.h"

#include <cassert>

#include "common/string_util.h"

namespace tip::workload {

namespace {

constexpr int64_t kSecondsPerDay = 86400;

std::string NameFor(const char* prefix, int64_t i) {
  return StringPrintf("%s%04lld", prefix, static_cast<long long>(i));
}

}  // namespace

std::vector<PrescriptionRow> GeneratePrescriptions(
    const MedicalConfig& config) {
  Rng rng(config.seed);
  Result<Chronon> base = Chronon::Parse(config.history_start);
  assert(base.ok());
  const int64_t base_secs = base->seconds();
  const int64_t horizon_secs = config.history_days * kSecondsPerDay;

  // Patient dates of birth are stable per patient.
  std::vector<Chronon> dobs;
  dobs.reserve(static_cast<size_t>(config.num_patients));
  for (int p = 0; p < config.num_patients; ++p) {
    // Born 0..80 years before the history starts.
    const int64_t age_days = rng.Uniform(0, 80 * 365);
    Result<Chronon> dob =
        Chronon::FromSeconds(base_secs - age_days * kSecondsPerDay);
    dobs.push_back(dob.ok() ? *dob : *base);
  }

  std::vector<PrescriptionRow> rows;
  rows.reserve(static_cast<size_t>(config.rows));
  for (int64_t r = 0; r < config.rows; ++r) {
    PrescriptionRow row;
    const int64_t patient = rng.Uniform(0, config.num_patients - 1);
    row.doctor = NameFor("doctor", rng.Uniform(0, config.num_doctors - 1));
    row.patient = NameFor("patient", patient);
    row.patient_dob = dobs[static_cast<size_t>(patient)];
    row.drug = NameFor("drug", rng.Uniform(0, config.num_drugs - 1));
    row.dosage = rng.Uniform(1, 4);
    row.frequency = Span::FromSeconds(rng.Uniform(4, 24) * 3600);

    const int64_t periods = rng.Uniform(config.min_periods,
                                        config.max_periods);
    std::vector<Period> valid;
    valid.reserve(static_cast<size_t>(periods));
    int64_t cursor =
        base_secs + rng.Uniform(0, horizon_secs / 2) / kSecondsPerDay *
                        kSecondsPerDay;
    const bool open_ended = rng.NextBool(config.now_relative_fraction);
    for (int64_t i = 0; i < periods; ++i) {
      const int64_t length_days =
          rng.Uniform(config.min_period_days, config.max_period_days);
      const int64_t start = cursor;
      const int64_t end = start + length_days * kSecondsPerDay;
      const bool last = i + 1 == periods;
      if (last && open_ended) {
        Result<Chronon> s = Chronon::FromSeconds(start);
        if (s.ok()) {
          valid.push_back(Period(Instant::Absolute(*s), Instant::Now()));
        }
        break;
      }
      Result<Chronon> s = Chronon::FromSeconds(start);
      Result<Chronon> e = Chronon::FromSeconds(end);
      if (s.ok() && e.ok()) {
        Result<Period> p =
            Period::Make(Instant::Absolute(*s), Instant::Absolute(*e));
        if (p.ok()) valid.push_back(*p);
      }
      // Leave a gap of at least two days before the next period so the
      // element keeps distinct periods.
      cursor = end + rng.Uniform(2, 60) * kSecondsPerDay;
    }
    row.valid = Element::FromPeriods(std::move(valid));
    rows.push_back(std::move(row));
  }
  return rows;
}

Status CreatePrescriptionTable(engine::Database* db,
                               std::string_view name) {
  const std::string sql =
      "CREATE TABLE " + std::string(name) +
      " (doctor CHAR(20), patient CHAR(20), patientdob Chronon, "
      "drug CHAR(20), dosage INT, frequency Span, valid Element)";
  TIP_ASSIGN_OR_RETURN(engine::ResultSet result, db->Execute(sql));
  (void)result;
  return Status::OK();
}

Status LoadPrescriptions(engine::Database* db,
                         const datablade::TipTypes& types,
                         const std::vector<PrescriptionRow>& rows,
                         std::string_view name) {
  TIP_ASSIGN_OR_RETURN(engine::Table * table,
                       db->catalog().GetTable(name));
  if (table->columns().size() != 7) {
    return Status::InvalidArgument("table '" + std::string(name) +
                                   "' does not have the prescription "
                                   "schema");
  }
  for (const PrescriptionRow& row : rows) {
    engine::Row stored;
    stored.reserve(7);
    stored.push_back(engine::Datum::String(row.doctor));
    stored.push_back(engine::Datum::String(row.patient));
    stored.push_back(datablade::MakeChronon(types, row.patient_dob));
    stored.push_back(engine::Datum::String(row.drug));
    stored.push_back(engine::Datum::Int(row.dosage));
    stored.push_back(datablade::MakeSpan(types, row.frequency));
    stored.push_back(datablade::MakeElement(types, row.valid));
    table->heap().Insert(std::move(stored));
  }
  return Status::OK();
}

Result<std::vector<PrescriptionRow>> SetUpPrescriptionTable(
    engine::Database* db, const datablade::TipTypes& types,
    const MedicalConfig& config, std::string_view name) {
  TIP_RETURN_IF_ERROR(CreatePrescriptionTable(db, name));
  std::vector<PrescriptionRow> rows = GeneratePrescriptions(config);
  TIP_RETURN_IF_ERROR(LoadPrescriptions(db, types, rows, name));
  return rows;
}

GroundedElement RandomGroundedElement(Rng* rng, size_t periods,
                                      int64_t base_secs,
                                      int64_t avg_period_secs,
                                      int64_t avg_gap_secs) {
  std::vector<GroundedPeriod> out;
  out.reserve(periods);
  int64_t cursor = base_secs;
  for (size_t i = 0; i < periods; ++i) {
    const int64_t length = rng->Uniform(1, 2 * avg_period_secs - 1);
    Result<Chronon> s = Chronon::FromSeconds(cursor);
    Result<Chronon> e = Chronon::FromSeconds(cursor + length);
    assert(s.ok() && e.ok());
    out.push_back(*GroundedPeriod::Make(*s, *e));
    // Gap of at least 2 chronons keeps periods non-adjacent (canonical).
    cursor += length + 2 + rng->Uniform(0, 2 * avg_gap_secs);
  }
  return GroundedElement::FromPeriods(std::move(out));
}

Element RandomElement(Rng* rng, const MedicalConfig& config) {
  Result<Chronon> base = Chronon::Parse(config.history_start);
  assert(base.ok());
  const size_t periods = static_cast<size_t>(
      rng->Uniform(config.min_periods, config.max_periods));
  GroundedElement grounded = RandomGroundedElement(
      rng, periods, base->seconds(),
      (config.min_period_days + config.max_period_days) / 2 * 86400,
      30 * 86400);
  Element element = Element::FromGrounded(grounded);
  if (rng->NextBool(config.now_relative_fraction) && !element.IsEmpty()) {
    // Re-tag the last period as open-ended.
    std::vector<Period> periods_copy = element.periods();
    periods_copy.back() =
        Period(periods_copy.back().start(), Instant::Now());
    return Element::FromPeriods(std::move(periods_copy));
  }
  return element;
}

}  // namespace tip::workload
