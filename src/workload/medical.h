#ifndef TIP_WORKLOAD_MEDICAL_H_
#define TIP_WORKLOAD_MEDICAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "core/chronon.h"
#include "core/element.h"
#include "core/span.h"
#include "datablade/datablade.h"
#include "engine/database.h"

namespace tip::workload {

/// Parameters of the synthetic prescription-history database — the
/// stand-in for the paper's demo medical dataset (Section 4), made
/// reproducible: the same config and seed always generate the same
/// rows.
struct MedicalConfig {
  uint64_t seed = 42;
  int64_t rows = 1000;

  int num_doctors = 20;
  int num_patients = 200;
  int num_drugs = 50;

  /// Prescription periods fall inside [history_start, history_start +
  /// history_days).
  std::string history_start = "1990-01-01";
  int64_t history_days = 3650;

  /// Number of periods per validity Element, uniform in
  /// [min_periods, max_periods].
  int min_periods = 1;
  int max_periods = 4;
  /// Each period lasts between [min_period_days, max_period_days].
  int64_t min_period_days = 7;
  int64_t max_period_days = 180;

  /// Fraction of rows whose last period is open-ended ([start, NOW]):
  /// prescriptions still running.
  double now_relative_fraction = 0.1;
};

/// One generated prescription row, in TIP-native form.
struct PrescriptionRow {
  std::string doctor;
  std::string patient;
  Chronon patient_dob;
  std::string drug;
  int64_t dosage;
  Span frequency;
  Element valid;
};

/// Generates `config.rows` prescription rows deterministically.
std::vector<PrescriptionRow> GeneratePrescriptions(
    const MedicalConfig& config);

/// `CREATE TABLE <name> (doctor CHAR, patient CHAR, patientdob Chronon,
/// drug CHAR, dosage INT, frequency Span, valid Element)`.
Status CreatePrescriptionTable(engine::Database* db, std::string_view name);

/// Bulk-loads `rows` into table `name` through the storage layer
/// (bypassing SQL parsing; benchmarks load tens of thousands of rows).
Status LoadPrescriptions(engine::Database* db,
                         const datablade::TipTypes& types,
                         const std::vector<PrescriptionRow>& rows,
                         std::string_view name);

/// Convenience: create + generate + load; returns the generated rows.
Result<std::vector<PrescriptionRow>> SetUpPrescriptionTable(
    engine::Database* db, const datablade::TipTypes& types,
    const MedicalConfig& config, std::string_view name);

// -- Element generators for microbenchmarks ----------------------------------

/// A random canonical grounded element with exactly `periods` periods,
/// gaps and lengths drawn from `rng` within [base, base + spread_secs).
GroundedElement RandomGroundedElement(Rng* rng, size_t periods,
                                      int64_t base_secs,
                                      int64_t avg_period_secs,
                                      int64_t avg_gap_secs);

/// A random (possibly NOW-relative) element with up to `max_periods`.
Element RandomElement(Rng* rng, const MedicalConfig& config);

}  // namespace tip::workload

#endif  // TIP_WORKLOAD_MEDICAL_H_
