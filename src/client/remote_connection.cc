#include "client/remote_connection.h"

#include <unistd.h>

#include <utility>

#include "engine/storage/wal.h"

namespace tip::client {

namespace wire = tip::server::wire;

RemoteConnection::RemoteConnection(std::string host, int port, int fd,
                                   std::unique_ptr<engine::Database> type_db,
                                   datablade::TipTypes types)
    : host_(std::move(host)), port_(port), fd_(fd),
      type_db_(std::move(type_db)), types_(types) {}

Result<std::unique_ptr<RemoteConnection>> RemoteConnection::Connect(
    const std::string& host, int port, int connect_timeout_ms) {
  // The local engine is a type registry, nothing more: it never holds
  // tables and never executes statements.
  auto type_db = std::make_unique<engine::Database>();
  TIP_RETURN_IF_ERROR(datablade::Install(type_db.get()));
  TIP_ASSIGN_OR_RETURN(datablade::TipTypes types,
                       datablade::TipTypes::Lookup(*type_db));

  TIP_ASSIGN_OR_RETURN(int fd,
                       wire::DialTcp(host, port, connect_timeout_ms));
  auto conn = std::unique_ptr<RemoteConnection>(new RemoteConnection(
      host, port, fd, std::move(type_db), types));

  Status sent = wire::WriteFrame(fd, wire::FrameType::kHello,
                                 wire::BuildHello(), connect_timeout_ms);
  if (!sent.ok()) return sent;
  // The admission queue may hold us up to the server's admission_wait
  // before HelloOk (or the explicit rejection) arrives; wait patiently.
  Result<wire::Frame> reply = wire::ReadFrame(fd, -1, conn->io_timeout_ms_);
  if (!reply.ok()) {
    if (wire::IsCleanEof(reply.status())) {
      return Status::ResourceExhausted(
          "server closed the connection during handshake");
    }
    return reply.status();
  }
  if (reply->type == wire::FrameType::kError) {
    TIP_ASSIGN_OR_RETURN(wire::WireError err,
                         wire::ParseError(reply->payload));
    return err.status;
  }
  if (reply->type != wire::FrameType::kHelloOk) {
    return Status::Corruption("unexpected handshake reply");
  }
  TIP_ASSIGN_OR_RETURN(wire::HelloOk hello,
                       wire::ParseHelloOk(reply->payload));
  if (hello.protocol_version != wire::kProtocolVersion) {
    return Status::InvalidArgument(
        "protocol version mismatch: server speaks " +
        std::to_string(hello.protocol_version));
  }
  conn->session_id_ = hello.session_id;
  conn->cancel_key_ = hello.cancel_key;
  return conn;
}

RemoteConnection::~RemoteConnection() {
  if (fd_ >= 0) {
    (void)wire::WriteFrame(fd_, wire::FrameType::kGoodbye, "", 1000);
    CloseSocket();
  }
}

void RemoteConnection::CloseSocket() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

Result<ResultSet> RemoteConnection::RoundTrip(wire::FrameType type,
                                              std::string_view payload) {
  if (fd_ < 0) {
    return Status::Internal("connection is closed (previous wire failure)");
  }
  Status sent = wire::WriteFrame(fd_, type, payload, io_timeout_ms_);
  if (!sent.ok()) {
    CloseSocket();
    return sent;
  }
  engine::ResultSet raw;
  std::vector<engine::TypeId> column_types;
  bool have_header = false;
  for (;;) {
    Result<wire::Frame> frame = wire::ReadFrame(fd_, -1, io_timeout_ms_);
    if (!frame.ok()) {
      CloseSocket();
      if (wire::IsCleanEof(frame.status())) {
        return Status::Internal(
            "server closed the connection mid-statement");
      }
      return frame.status();
    }
    switch (frame->type) {
      case wire::FrameType::kError: {
        TIP_ASSIGN_OR_RETURN(wire::WireError err,
                             wire::ParseError(frame->payload));
        in_txn_ = err.in_txn;
        return err.status;
      }
      case wire::FrameType::kResultHeader: {
        TIP_ASSIGN_OR_RETURN(wire::ResultHeader header,
                             wire::ParseResultHeader(frame->payload));
        in_txn_ = header.in_txn;
        TIP_ASSIGN_OR_RETURN(
            column_types,
            wire::ResolveColumnTypes(header, type_db_->types()));
        raw.affected_rows = header.affected_rows;
        raw.message = std::move(header.message);
        raw.columns.reserve(header.column_names.size());
        for (size_t i = 0; i < header.column_names.size(); ++i) {
          raw.columns.push_back(
              {std::move(header.column_names[i]), column_types[i]});
        }
        have_header = true;
        break;
      }
      case wire::FrameType::kResultRows: {
        if (!have_header) {
          CloseSocket();
          return Status::Corruption("rows before result header");
        }
        TIP_ASSIGN_OR_RETURN(
            std::vector<engine::Row> rows,
            wire::ParseRowsChunk(frame->payload, column_types,
                                 type_db_->types()));
        for (engine::Row& row : rows) raw.rows.push_back(std::move(row));
        break;
      }
      case wire::FrameType::kResultDone:
        if (!have_header) {
          CloseSocket();
          return Status::Corruption("done before result header");
        }
        return ResultSet(std::move(raw), types_, &type_db_->types());
      case wire::FrameType::kPong:
        break;  // stray liveness reply; ignore
      default:
        CloseSocket();
        return Status::Corruption("unexpected frame in result stream");
    }
  }
}

Result<ResultSet> RemoteConnection::Execute(std::string_view sql) {
  return Execute(sql, engine::Params());
}

Result<ResultSet> RemoteConnection::Execute(std::string_view sql,
                                            const engine::Params& params) {
  return RoundTrip(wire::FrameType::kExec,
                   wire::BuildExec(sql, params, type_db_->types()));
}

RemoteStatement RemoteConnection::Prepare(std::string_view sql) {
  if (fd_ < 0) {
    return RemoteStatement(
        this, std::string(sql),
        Status::Internal("connection is closed (previous wire failure)"));
  }
  Status sent = wire::WriteFrame(fd_, wire::FrameType::kPrepare,
                                 wire::BuildPrepare(sql), io_timeout_ms_);
  if (!sent.ok()) {
    CloseSocket();
    return RemoteStatement(this, std::string(sql), sent);
  }
  Result<wire::Frame> reply = wire::ReadFrame(fd_, -1, io_timeout_ms_);
  if (!reply.ok()) {
    CloseSocket();
    return RemoteStatement(this, std::string(sql), reply.status());
  }
  if (reply->type == wire::FrameType::kError) {
    Result<wire::WireError> err = wire::ParseError(reply->payload);
    if (!err.ok()) {
      CloseSocket();
      return RemoteStatement(this, std::string(sql), err.status());
    }
    in_txn_ = err->in_txn;
    return RemoteStatement(this, std::string(sql), err->status);
  }
  if (reply->type != wire::FrameType::kPrepareOk) {
    CloseSocket();
    return RemoteStatement(this, std::string(sql),
                           Status::Corruption("unexpected prepare reply"));
  }
  return RemoteStatement(this, std::string(sql), Status::OK());
}

Status RemoteConnection::Run(std::string_view sql) {
  Result<ResultSet> result = Execute(sql);
  return result.ok() ? Status::OK() : result.status();
}

Status RemoteConnection::Begin() { return Run("BEGIN"); }
Status RemoteConnection::Commit() { return Run("COMMIT"); }
Status RemoteConnection::Rollback() { return Run("ROLLBACK"); }

Status RemoteConnection::SetNow(Chronon now) {
  TIP_RETURN_IF_ERROR(Run("SET NOW '" + now.ToString() + "'"));
  now_ = now;
  return Status::OK();
}

Status RemoteConnection::ClearNow() {
  TIP_RETURN_IF_ERROR(Run("SET NOW DEFAULT"));
  now_ = std::nullopt;
  return Status::OK();
}

Status RemoteConnection::Cancel() {
  // The session's own socket is busy carrying the statement to cancel,
  // so cancellation travels out-of-band: a throwaway connection that
  // presents the handshake's cancel credentials and hangs up.
  TIP_ASSIGN_OR_RETURN(int fd, wire::DialTcp(host_, port_, io_timeout_ms_));
  wire::CancelRequest request;
  request.session_id = session_id_;
  request.cancel_key = cancel_key_;
  Status sent = wire::WriteFrame(fd, wire::FrameType::kCancel,
                                 wire::BuildCancel(request), io_timeout_ms_);
  close(fd);
  return sent;
}

Status RemoteConnection::SetStatementTimeoutMs(int64_t ms) {
  return Run("SET statement_timeout_ms " + std::to_string(ms));
}

Status RemoteConnection::SetMemoryLimitKb(size_t kb) {
  return Run("SET memory_limit_kb " + std::to_string(kb));
}

Status RemoteConnection::SetWalMode(engine::WalMode mode) {
  return Run("SET wal_mode " + std::string(engine::WalModeName(mode)));
}

Status RemoteConnection::Checkpoint() {
  return Run("SELECT tip_checkpoint()");
}

Status RemoteConnection::SyncWal() { return Run("SELECT tip_sync_wal()"); }

Status RemoteConnection::Ping() {
  if (fd_ < 0) {
    return Status::Internal("connection is closed (previous wire failure)");
  }
  Status sent = wire::WriteFrame(fd_, wire::FrameType::kPing, "",
                                 io_timeout_ms_);
  if (!sent.ok()) {
    CloseSocket();
    return sent;
  }
  Result<wire::Frame> reply = wire::ReadFrame(fd_, io_timeout_ms_,
                                              io_timeout_ms_);
  if (!reply.ok()) {
    CloseSocket();
    return reply.status();
  }
  if (reply->type != wire::FrameType::kPong) {
    CloseSocket();
    return Status::Corruption("unexpected ping reply");
  }
  return Status::OK();
}

RemoteStatement& RemoteStatement::BindInt(std::string_view name,
                                          int64_t value) {
  params_[std::string(name)] = engine::Datum::Int(value);
  return *this;
}
RemoteStatement& RemoteStatement::BindDouble(std::string_view name,
                                             double value) {
  params_[std::string(name)] = engine::Datum::Double(value);
  return *this;
}
RemoteStatement& RemoteStatement::BindBool(std::string_view name,
                                           bool value) {
  params_[std::string(name)] = engine::Datum::Bool(value);
  return *this;
}
RemoteStatement& RemoteStatement::BindString(std::string_view name,
                                             std::string value) {
  params_[std::string(name)] = engine::Datum::String(std::move(value));
  return *this;
}
RemoteStatement& RemoteStatement::BindNull(std::string_view name) {
  params_[std::string(name)] = engine::Datum::Null();
  return *this;
}
RemoteStatement& RemoteStatement::BindChronon(std::string_view name,
                                              const Chronon& value) {
  params_[std::string(name)] =
      datablade::MakeChronon(connection_->tip_types(), value);
  return *this;
}
RemoteStatement& RemoteStatement::BindSpan(std::string_view name,
                                           const Span& value) {
  params_[std::string(name)] =
      datablade::MakeSpan(connection_->tip_types(), value);
  return *this;
}
RemoteStatement& RemoteStatement::BindInstant(std::string_view name,
                                              const Instant& value) {
  params_[std::string(name)] =
      datablade::MakeInstant(connection_->tip_types(), value);
  return *this;
}
RemoteStatement& RemoteStatement::BindPeriod(std::string_view name,
                                             const Period& value) {
  params_[std::string(name)] =
      datablade::MakePeriod(connection_->tip_types(), value);
  return *this;
}
RemoteStatement& RemoteStatement::BindElement(std::string_view name,
                                              const Element& value) {
  params_[std::string(name)] =
      datablade::MakeElement(connection_->tip_types(), value);
  return *this;
}
RemoteStatement& RemoteStatement::BindDatum(std::string_view name,
                                            engine::Datum value) {
  params_[std::string(name)] = std::move(value);
  return *this;
}
RemoteStatement& RemoteStatement::ClearBindings() {
  params_.clear();
  return *this;
}

Result<ResultSet> RemoteStatement::Execute() {
  if (!prepare_status_.ok()) return prepare_status_;
  return connection_->Execute(sql_, params_);
}

}  // namespace tip::client
