#include "client/connection.h"

namespace tip::client {

Result<std::unique_ptr<Connection>> Connection::Open() {
  auto db = std::make_unique<engine::Database>();
  TIP_RETURN_IF_ERROR(datablade::Install(db.get()));
  TIP_ASSIGN_OR_RETURN(datablade::TipTypes types,
                       datablade::TipTypes::Lookup(*db));
  engine::Database* raw = db.get();
  return std::unique_ptr<Connection>(
      new Connection(raw, std::move(db), types));
}

Result<std::unique_ptr<Connection>> Connection::OpenDurable(
    const std::string& dir, engine::RecoveryReport* report,
    engine::RecoveryMode mode) {
  auto db = std::make_unique<engine::Database>();
  // Extensions first: recovery re-executes statements that may use the
  // TIP types, and snapshots resolve types by name.
  TIP_RETURN_IF_ERROR(datablade::Install(db.get()));
  TIP_RETURN_IF_ERROR(db->AttachDurableDir(dir, report, mode));
  TIP_ASSIGN_OR_RETURN(datablade::TipTypes types,
                       datablade::TipTypes::Lookup(*db));
  engine::Database* raw = db.get();
  return std::unique_ptr<Connection>(
      new Connection(raw, std::move(db), types));
}

Result<std::unique_ptr<Connection>> Connection::Attach(
    engine::Database* db) {
  TIP_ASSIGN_OR_RETURN(datablade::TipTypes types,
                       datablade::TipTypes::Lookup(*db));
  return std::unique_ptr<Connection>(new Connection(db, nullptr, types));
}

Result<ResultSet> Connection::Execute(std::string_view sql) {
  TIP_ASSIGN_OR_RETURN(engine::ResultSet result, db_->Execute(sql));
  return ResultSet(std::move(result), types_, &db_->types());
}

Statement Connection::Prepare(std::string_view sql) {
  // Parse eagerly: a malformed statement is reported by the handle's
  // status() before anything executes, and a well-formed one shares the
  // engine's cached plan across every later Execute.
  Result<std::shared_ptr<const engine::PreparedPlan>> plan =
      db_->Prepare(sql);
  if (!plan.ok()) return Statement(this, std::string(sql), plan.status());
  return Statement(this, std::string(sql), std::move(*plan));
}

Status Connection::Begin() { return db_->BeginTransaction(); }

Status Connection::Commit() { return db_->CommitTransaction(); }

Status Connection::Rollback() { return db_->RollbackTransaction(); }

bool Connection::in_transaction() const { return db_->InTransaction(); }

void Connection::SetNow(Chronon now) { db_->SetNowOverride(now); }

void Connection::ClearNow() { db_->SetNowOverride(std::nullopt); }

std::optional<Chronon> Connection::now_override() const {
  return db_->now_override();
}

void Connection::Cancel() { db_->CancelActiveStatements(); }

void Connection::SetStatementTimeoutMs(int64_t ms) {
  db_->set_statement_timeout_ms(ms);
}

void Connection::SetMemoryLimitKb(size_t kb) {
  db_->set_memory_limit_kb(kb);
}

Status Connection::SetWalMode(engine::WalMode mode) {
  return db_->set_wal_mode(mode);
}

Status Connection::Checkpoint() { return db_->Checkpoint(); }

Status Connection::SyncWal() { return db_->SyncWal(); }

Statement& Statement::BindInt(std::string_view name, int64_t value) {
  params_[std::string(name)] = engine::Datum::Int(value);
  return *this;
}
Statement& Statement::BindDouble(std::string_view name, double value) {
  params_[std::string(name)] = engine::Datum::Double(value);
  return *this;
}
Statement& Statement::BindBool(std::string_view name, bool value) {
  params_[std::string(name)] = engine::Datum::Bool(value);
  return *this;
}
Statement& Statement::BindString(std::string_view name, std::string value) {
  params_[std::string(name)] = engine::Datum::String(std::move(value));
  return *this;
}
Statement& Statement::BindNull(std::string_view name) {
  params_[std::string(name)] = engine::Datum::Null();
  return *this;
}
Statement& Statement::BindChronon(std::string_view name,
                                  const Chronon& value) {
  params_[std::string(name)] =
      datablade::MakeChronon(connection_->tip_types(), value);
  return *this;
}
Statement& Statement::BindSpan(std::string_view name, const Span& value) {
  params_[std::string(name)] =
      datablade::MakeSpan(connection_->tip_types(), value);
  return *this;
}
Statement& Statement::BindInstant(std::string_view name,
                                  const Instant& value) {
  params_[std::string(name)] =
      datablade::MakeInstant(connection_->tip_types(), value);
  return *this;
}
Statement& Statement::BindPeriod(std::string_view name,
                                 const Period& value) {
  params_[std::string(name)] =
      datablade::MakePeriod(connection_->tip_types(), value);
  return *this;
}
Statement& Statement::BindElement(std::string_view name,
                                  const Element& value) {
  params_[std::string(name)] =
      datablade::MakeElement(connection_->tip_types(), value);
  return *this;
}
Statement& Statement::BindDatum(std::string_view name,
                                engine::Datum value) {
  params_[std::string(name)] = std::move(value);
  return *this;
}
Statement& Statement::ClearBindings() {
  params_.clear();
  return *this;
}

Result<ResultSet> Statement::Execute() {
  if (!prepare_status_.ok()) return prepare_status_;
  engine::Database& db = connection_->database();
  engine::ResultSet result;
  if (plan_ != nullptr) {
    TIP_ASSIGN_OR_RETURN(result, db.ExecutePrepared(*plan_, &params_));
  } else {
    TIP_ASSIGN_OR_RETURN(result, db.Execute(sql_, params_));
  }
  return ResultSet(std::move(result), connection_->tip_types(),
                   &db.types());
}

bool ResultSet::IsNull(size_t row, size_t col) const {
  return at(row, col).is_null();
}
int64_t ResultSet::GetInt(size_t row, size_t col) const {
  return at(row, col).int_value();
}
double ResultSet::GetDouble(size_t row, size_t col) const {
  return at(row, col).double_value();
}
bool ResultSet::GetBool(size_t row, size_t col) const {
  return at(row, col).bool_value();
}
const std::string& ResultSet::GetString(size_t row, size_t col) const {
  return at(row, col).string_value();
}
const Chronon& ResultSet::GetChronon(size_t row, size_t col) const {
  return datablade::GetChronon(at(row, col));
}
const Span& ResultSet::GetSpan(size_t row, size_t col) const {
  return datablade::GetSpan(at(row, col));
}
const Instant& ResultSet::GetInstant(size_t row, size_t col) const {
  return datablade::GetInstant(at(row, col));
}
const Period& ResultSet::GetPeriod(size_t row, size_t col) const {
  return datablade::GetPeriod(at(row, col));
}
const Element& ResultSet::GetElement(size_t row, size_t col) const {
  return datablade::GetElement(at(row, col));
}
std::string ResultSet::GetText(size_t row, size_t col) const {
  return registry_->Format(at(row, col));
}

}  // namespace tip::client
