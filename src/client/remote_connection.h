#ifndef TIP_CLIENT_REMOTE_CONNECTION_H_
#define TIP_CLIENT_REMOTE_CONNECTION_H_

#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "client/connection.h"
#include "common/status.h"
#include "core/chronon.h"
#include "datablade/datablade.h"
#include "engine/database.h"
#include "server/wire.h"

namespace tip::client {

class RemoteStatement;

/// A connection to a remote `tipd` over the TIP wire protocol —
/// the network twin of `Connection`, with the same surface (Execute /
/// Prepare / Begin / SetNow / guardrails / durability controls) so
/// embedded call sites port by swapping the open call. Differences,
/// all forced by the wire:
///  - methods that are infallible in-process return Status here;
///  - Cancel() dials a fresh connection carrying this session's
///    cancel key (the statement being cancelled has our socket busy);
///  - a wire failure is fail-stop: the connection is dead afterwards
///    and every later call returns the original failure's code.
///
/// Values cross the wire in binary, addressed by type name; the client
/// owns a tiny embedded engine purely as a type registry (DataBlade
/// installed, no tables), so TIP types round-trip as native C++
/// objects exactly like the embedded client's "customized type
/// mapping".
class RemoteConnection {
 public:
  static Result<std::unique_ptr<RemoteConnection>> Connect(
      const std::string& host, int port, int connect_timeout_ms = 5000);

  ~RemoteConnection();
  RemoteConnection(const RemoteConnection&) = delete;
  RemoteConnection& operator=(const RemoteConnection&) = delete;

  Result<ResultSet> Execute(std::string_view sql);
  Result<ResultSet> Execute(std::string_view sql,
                            const engine::Params& params);

  /// Eager server-side validation: the SQL is parsed (and planned, via
  /// the server's plan cache) before the handle returns; a bad
  /// statement surfaces in the handle's status(). Executions send the
  /// SQL + bindings; the server's plan cache keeps it parse-once.
  RemoteStatement Prepare(std::string_view sql);

  Status Begin();
  Status Commit();
  Status Rollback();
  bool in_transaction() const { return in_txn_; }

  /// Session NOW override, round-tripped as `SET NOW` so it lives in
  /// the server's per-session state.
  Status SetNow(Chronon now);
  Status ClearNow();
  std::optional<Chronon> now_override() const { return now_; }

  /// Cancels the statement this session is currently running, from any
  /// thread: dials a new connection and presents the session id +
  /// cancel key from the handshake.
  Status Cancel();

  /// Per-session guardrails (`SET statement_timeout_ms` etc. on the
  /// server, scoped to this session).
  Status SetStatementTimeoutMs(int64_t ms);
  Status SetMemoryLimitKb(size_t kb);

  /// Durability controls, forwarded as SQL.
  Status SetWalMode(engine::WalMode mode);
  Status Checkpoint();
  Status SyncWal();

  /// Liveness probe (kPing round trip).
  Status Ping();

  const datablade::TipTypes& tip_types() const { return types_; }
  /// The client-side type registry results are decoded against; result
  /// handles that outlive statements format values through it.
  const engine::TypeRegistry& types() const { return type_db_->types(); }
  uint64_t session_id() const { return session_id_; }
  uint64_t cancel_key() const { return cancel_key_; }
  /// False once any wire failure has fail-stopped this connection.
  bool alive() const { return fd_ >= 0; }

 private:
  RemoteConnection(std::string host, int port, int fd,
                   std::unique_ptr<engine::Database> type_db,
                   datablade::TipTypes types);

  /// Sends one request frame and decodes the response stream
  /// (ResultHeader + row chunks + Done, or Error). Any wire-level
  /// failure closes the connection.
  Result<ResultSet> RoundTrip(server::wire::FrameType type,
                              std::string_view payload);
  /// Executes `sql` for its side effect, discarding rows.
  Status Run(std::string_view sql);
  void CloseSocket();

  const std::string host_;
  const int port_;
  int fd_ = -1;
  uint64_t session_id_ = 0;
  uint64_t cancel_key_ = 0;
  bool in_txn_ = false;
  std::optional<Chronon> now_;
  /// Per-poll deadline on writes and mid-frame reads; result waits are
  /// unbounded (the server's ExecGuard bounds statement time).
  int io_timeout_ms_ = 10000;

  /// Local registry-only engine: resolves wire type names and
  /// deserializes binary values.
  std::unique_ptr<engine::Database> type_db_;
  datablade::TipTypes types_;
};

/// The remote analogue of `Statement`: named-parameter binding over the
/// wire. Bind* calls are chainable; Execute may be called repeatedly.
class RemoteStatement {
 public:
  RemoteStatement(RemoteConnection* connection, std::string sql,
                  Status prepare_status)
      : connection_(connection), sql_(std::move(sql)),
        prepare_status_(std::move(prepare_status)) {}

  const Status& status() const { return prepare_status_; }

  RemoteStatement& BindInt(std::string_view name, int64_t value);
  RemoteStatement& BindDouble(std::string_view name, double value);
  RemoteStatement& BindBool(std::string_view name, bool value);
  RemoteStatement& BindString(std::string_view name, std::string value);
  RemoteStatement& BindNull(std::string_view name);
  RemoteStatement& BindChronon(std::string_view name, const Chronon& value);
  RemoteStatement& BindSpan(std::string_view name, const Span& value);
  RemoteStatement& BindInstant(std::string_view name, const Instant& value);
  RemoteStatement& BindPeriod(std::string_view name, const Period& value);
  RemoteStatement& BindElement(std::string_view name, const Element& value);
  RemoteStatement& BindDatum(std::string_view name, engine::Datum value);
  RemoteStatement& ClearBindings();

  Result<ResultSet> Execute();

 private:
  RemoteConnection* connection_;
  std::string sql_;
  Status prepare_status_;
  engine::Params params_;
};

}  // namespace tip::client

#endif  // TIP_CLIENT_REMOTE_CONNECTION_H_
