#ifndef TIP_CLIENT_CONNECTION_H_
#define TIP_CLIENT_CONNECTION_H_

#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "common/status.h"
#include "core/chronon.h"
#include "datablade/datablade.h"
#include "engine/database.h"

namespace tip::client {

class Statement;
class ResultSet;

/// A client connection to a TIP-enabled database — the C++ analogue of
/// the paper's TIP C/Java client libraries over ODBC/JDBC. The
/// connection owns (or attaches to) an embedded engine instance with
/// the TIP DataBlade installed, exposes statement preparation with
/// `:name` parameter binding, and carries the session's NOW override
/// (the Browser's what-if mechanism).
class Connection {
 public:
  /// Opens a fresh embedded database with the TIP DataBlade installed.
  static Result<std::unique_ptr<Connection>> Open();

  /// Opens a *durable* database homed in `dir`: installs the DataBlade,
  /// then runs crash recovery (checkpoint snapshot + WAL replay; see
  /// Database::AttachDurableDir). Subsequent statements are logged
  /// according to `SET wal_mode`. `report` (optional) says what
  /// recovery found. `mode` picks the corruption policy — kStrict
  /// (default) refuses a damaged directory outright; kSalvage
  /// quarantines the corrupt tables, fills the report's corruption
  /// manifest, and recovers everything else.
  static Result<std::unique_ptr<Connection>> OpenDurable(
      const std::string& dir, engine::RecoveryReport* report = nullptr,
      engine::RecoveryMode mode = engine::RecoveryMode::kStrict);

  /// Attaches to an existing TIP-enabled database (not owned). Fails if
  /// the DataBlade is not installed.
  static Result<std::unique_ptr<Connection>> Attach(engine::Database* db);

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  /// One-shot execution without parameters.
  Result<ResultSet> Execute(std::string_view sql);

  /// Prepares a statement for (repeated) parameterized execution. The
  /// SQL is parsed (and validated) here, once: a syntax error is
  /// reported by the returned handle's status() — and again by its
  /// Execute — rather than deferred to the first execution, and
  /// repeated Execute calls reuse the engine's cached plan, rebinding
  /// parameters without replanning.
  Statement Prepare(std::string_view sql);

  /// Transaction control, the client face of BEGIN/COMMIT/ROLLBACK.
  /// Statements between Begin and Commit share one pinned NOW and are
  /// atomic: Rollback (or a fatal statement error, or a crash before
  /// Commit) restores the pre-Begin state exactly. Auto-commit remains
  /// the default — statements outside a transaction behave as before.
  Status Begin();
  Status Commit();
  Status Rollback();
  bool in_transaction() const;

  /// Overrides the interpretation of NOW for subsequent statements on
  /// this connection; what-if analysis per the TIP Browser.
  void SetNow(Chronon now);
  /// Restores the system clock as NOW.
  void ClearNow();
  std::optional<Chronon> now_override() const;

  /// Requests cancellation of every statement currently executing on
  /// this connection's database. This is the one Connection entry point
  /// that is safe to call from another thread while Execute is blocked;
  /// the interrupted statement fails with Status::Cancelled and leaves
  /// tables, indexes and session state untouched.
  void Cancel();

  /// Statement guardrails applied to subsequent statements (0 = no
  /// limit): wall-clock timeout and approximate memory budget. The
  /// equivalents of `SET statement_timeout_ms` / `SET memory_limit_kb`.
  void SetStatementTimeoutMs(int64_t ms);
  void SetMemoryLimitKb(size_t kb);

  /// Durability controls (no-ops / errors unless opened via
  /// OpenDurable). SetWalMode is `SET wal_mode` — on a durable
  /// connection a transition into or out of `off` forces a checkpoint
  /// to re-baseline the log, and fails without changing the mode if
  /// the checkpoint fails; Checkpoint snapshots the database and
  /// truncates the WAL; SyncWal forces the group-commit tail to disk.
  Status SetWalMode(engine::WalMode mode);
  Status Checkpoint();
  Status SyncWal();

  /// The engine type ids of the five TIP types (customized type
  /// mapping, a la JDBC 2.0).
  const datablade::TipTypes& tip_types() const { return types_; }

  engine::Database& database() { return *db_; }

 private:
  Connection(engine::Database* db, std::unique_ptr<engine::Database> owned,
             datablade::TipTypes types)
      : owned_(std::move(owned)), db_(db), types_(types) {}

  std::unique_ptr<engine::Database> owned_;  // null when attached
  engine::Database* db_;
  datablade::TipTypes types_;
};

/// A prepared statement with named-parameter binding. Bind* calls are
/// chainable; Execute may be called repeatedly (rebinding in between)
/// and reuses one engine plan across executions — parse once, plan
/// once, execute many.
class Statement {
 public:
  /// Unvalidated handle (legacy path): parses lazily on Execute.
  /// Connection::Prepare constructs the validated, plan-backed form.
  Statement(Connection* connection, std::string sql)
      : connection_(connection), sql_(std::move(sql)) {}
  Statement(Connection* connection, std::string sql,
            std::shared_ptr<const engine::PreparedPlan> plan)
      : connection_(connection), sql_(std::move(sql)),
        plan_(std::move(plan)) {}
  Statement(Connection* connection, std::string sql, Status prepare_error)
      : connection_(connection), sql_(std::move(sql)),
        prepare_status_(std::move(prepare_error)) {}

  /// The outcome of preparation: a parse error surfaces here without
  /// executing anything. Always OK for handles built by the legacy
  /// constructor.
  const Status& status() const { return prepare_status_; }

  Statement& BindInt(std::string_view name, int64_t value);
  Statement& BindDouble(std::string_view name, double value);
  Statement& BindBool(std::string_view name, bool value);
  Statement& BindString(std::string_view name, std::string value);
  Statement& BindNull(std::string_view name);
  Statement& BindChronon(std::string_view name, const Chronon& value);
  Statement& BindSpan(std::string_view name, const Span& value);
  Statement& BindInstant(std::string_view name, const Instant& value);
  Statement& BindPeriod(std::string_view name, const Period& value);
  Statement& BindElement(std::string_view name, const Element& value);
  /// Binds a raw engine value (power users: re-binding a cell read from
  /// a ResultSet without unwrapping it).
  Statement& BindDatum(std::string_view name, engine::Datum value);

  /// Removes all bindings.
  Statement& ClearBindings();

  Result<ResultSet> Execute();

 private:
  Connection* connection_;
  std::string sql_;
  /// The shared engine plan (null on the legacy lazy path).
  std::shared_ptr<const engine::PreparedPlan> plan_;
  Status prepare_status_;
  engine::Params params_;
};

/// A client-side result set with typed accessors that map TIP datatypes
/// to their C++ classes — the "customized type mapping" of the paper's
/// JDBC client. Row/column indexes are 0-based.
class ResultSet {
 public:
  ResultSet(engine::ResultSet result, const datablade::TipTypes& types,
            const engine::TypeRegistry* registry)
      : result_(std::move(result)), types_(types), registry_(registry) {}

  size_t row_count() const { return result_.rows.size(); }
  size_t column_count() const { return result_.columns.size(); }
  int64_t affected_rows() const { return result_.affected_rows; }

  const std::string& column_name(size_t col) const {
    return result_.columns[col].name;
  }
  engine::TypeId column_type(size_t col) const {
    return result_.columns[col].type;
  }
  /// Case-insensitive lookup; -1 on miss.
  int FindColumn(std::string_view name) const {
    return result_.FindColumn(name);
  }

  bool IsNull(size_t row, size_t col) const;

  // Typed getters. Preconditions: cell is non-null and of the matching
  // type (column_type tells the caller which getter applies).
  int64_t GetInt(size_t row, size_t col) const;
  double GetDouble(size_t row, size_t col) const;
  bool GetBool(size_t row, size_t col) const;
  const std::string& GetString(size_t row, size_t col) const;
  const Chronon& GetChronon(size_t row, size_t col) const;
  const Span& GetSpan(size_t row, size_t col) const;
  const Instant& GetInstant(size_t row, size_t col) const;
  const Period& GetPeriod(size_t row, size_t col) const;
  const Element& GetElement(size_t row, size_t col) const;

  /// Formats any cell through its type's output function.
  std::string GetText(size_t row, size_t col) const;

  /// The TIP type ids this result set was produced under.
  const datablade::TipTypes& tip_types() const { return types_; }

  /// The raw engine result (power users, the Browser).
  const engine::ResultSet& raw() const { return result_; }
  /// Renders via engine formatting.
  std::string ToTable() const { return result_.ToTable(*registry_); }

 private:
  const engine::Datum& at(size_t row, size_t col) const {
    return result_.rows[row][col];
  }

  engine::ResultSet result_;
  datablade::TipTypes types_;
  const engine::TypeRegistry* registry_;
};

}  // namespace tip::client

#endif  // TIP_CLIENT_CONNECTION_H_
