#ifndef TIP_TTIME_TRACKED_TABLE_H_
#define TIP_TTIME_TRACKED_TABLE_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "client/connection.h"
#include "common/status.h"

namespace tip::ttime {

/// Transaction-time table maintenance built *on* TIP's types — the
/// step from the paper's valid-time model toward bitemporal data (the
/// TimeCenter lineage the paper situates itself in).
///
/// A tracked table carries two system columns:
///
///   tt_start  Chronon   when this version was asserted
///   tt_end    Instant   when it was superseded; the special value NOW
///                       means "still current" — TIP's NOW-relative
///                       Instant is exactly the right type for the
///                       "until changed" marker, and timeslices fall
///                       out of ordinary TIP routines:
///                       contains(period(tt_start, tt_end), :t)
///
/// Writes never destroy history: Update and Delete close the current
/// versions (grounding their tt_end at the transaction time) and, for
/// Update, insert the new versions. Combined with a `valid Element`
/// user column, a tracked table is a bitemporal table.
class TrackedTable {
 public:
  /// Creates `name` with `column_defs` (e.g. "patient CHAR(20), valid
  /// Element") plus the two system columns.
  static Result<TrackedTable> Create(client::Connection* conn,
                                     std::string_view name,
                                     std::string_view column_defs);

  /// Attaches to an existing tracked table.
  static Result<TrackedTable> Attach(client::Connection* conn,
                                     std::string_view name);

  /// Inserts one row; `values_sql` covers the user columns only (the
  /// system columns are filled with the transaction time and NOW).
  Status Insert(std::string_view values_sql);

  /// One assignment of an Update.
  struct Assignment {
    std::string column;
    std::string expression_sql;  // may reference the old row's columns
  };

  /// Sequenced-transaction update: closes every current row matching
  /// `where_sql` (empty = all) and asserts new versions with the
  /// assignments applied. Returns the number of updated rows.
  Result<int64_t> Update(const std::vector<Assignment>& assignments,
                         std::string_view where_sql);

  /// Logical delete: closes matching current rows. Returns the count.
  Result<int64_t> Delete(std::string_view where_sql);

  /// The current snapshot: `SELECT <select_list> ... ` over rows whose
  /// tt_end is still NOW. Empty `where_sql` selects everything.
  Result<client::ResultSet> Current(std::string_view select_list,
                                    std::string_view where_sql) const;

  /// Transaction-time slice: the table as it was recorded at `t`.
  Result<client::ResultSet> AsOf(const Chronon& t,
                                 std::string_view select_list,
                                 std::string_view where_sql) const;

  /// Full history (every version), tt columns included.
  Result<client::ResultSet> History(std::string_view where_sql) const;

  const std::string& name() const { return name_; }

 private:
  TrackedTable(client::Connection* conn, std::string name,
               std::vector<std::string> user_columns)
      : conn_(conn),
        name_(std::move(name)),
        user_columns_(std::move(user_columns)) {}

  /// The predicate selecting *current* versions.
  static std::string CurrentPredicate();
  std::string UserColumnList() const;

  client::Connection* conn_;
  std::string name_;
  std::vector<std::string> user_columns_;
};

}  // namespace tip::ttime

#endif  // TIP_TTIME_TRACKED_TABLE_H_
