#include "ttime/tracked_table.h"

#include "common/string_util.h"

namespace tip::ttime {

namespace {

std::string AndWhere(std::string_view base, std::string_view extra) {
  if (extra.empty()) return std::string(base);
  return std::string(base) + " AND (" + std::string(extra) + ")";
}

}  // namespace

std::string TrackedTable::CurrentPredicate() {
  // A version is current while its tt_end is still the symbolic NOW.
  return "is_now_relative(tt_end)";
}

std::string TrackedTable::UserColumnList() const {
  std::string out;
  for (size_t i = 0; i < user_columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += user_columns_[i];
  }
  return out;
}

Result<TrackedTable> TrackedTable::Create(client::Connection* conn,
                                          std::string_view name,
                                          std::string_view column_defs) {
  const std::string sql = "CREATE TABLE " + std::string(name) + " (" +
                          std::string(column_defs) +
                          ", tt_start Chronon, tt_end Instant)";
  TIP_ASSIGN_OR_RETURN(client::ResultSet created, conn->Execute(sql));
  (void)created;
  return Attach(conn, name);
}

Result<TrackedTable> TrackedTable::Attach(client::Connection* conn,
                                          std::string_view name) {
  TIP_ASSIGN_OR_RETURN(engine::Table * table,
                       conn->database().catalog().GetTable(name));
  if (table->FindColumn("tt_start") < 0 || table->FindColumn("tt_end") < 0) {
    return Status::InvalidArgument("table '" + std::string(name) +
                                   "' is not transaction-time tracked");
  }
  std::vector<std::string> user_columns;
  for (const engine::Column& col : table->columns()) {
    if (col.name != "tt_start" && col.name != "tt_end") {
      user_columns.push_back(col.name);
    }
  }
  if (user_columns.empty()) {
    return Status::InvalidArgument("tracked table needs user columns");
  }
  return TrackedTable(conn, table->name(), std::move(user_columns));
}

Status TrackedTable::Insert(std::string_view values_sql) {
  // transaction_time() stamps the assertion time; 'NOW' marks it
  // current (string -> Instant through the implicit cast).
  const std::string sql = "INSERT INTO " + name_ + " VALUES (" +
                          std::string(values_sql) +
                          ", transaction_time(), 'NOW')";
  TIP_ASSIGN_OR_RETURN(client::ResultSet inserted, conn_->Execute(sql));
  (void)inserted;
  return Status::OK();
}

Result<int64_t> TrackedTable::Update(
    const std::vector<Assignment>& assignments,
    std::string_view where_sql) {
  const Chronon tx = conn_->database().CurrentTx().now;
  // Closed versions end one chronon before the new assertion so an
  // AS OF at the update instant sees exactly the new version. A version
  // asserted and superseded within the same chronon collapses to a
  // single-chronon history entry.
  TIP_ASSIGN_OR_RETURN(Chronon close, tx.Subtract(Span::FromSeconds(1)));

  // 1. Evaluate the new versions while the old ones are still visible.
  std::string projection;
  for (size_t i = 0; i < user_columns_.size(); ++i) {
    if (i > 0) projection += ", ";
    const std::string& col = user_columns_[i];
    std::string expr = col;
    for (const Assignment& a : assignments) {
      if (EqualsIgnoreCase(a.column, col)) {
        expr = "(" + a.expression_sql + ")";
        break;
      }
    }
    projection += expr + " AS " + col;
  }
  TIP_ASSIGN_OR_RETURN(
      client::ResultSet new_versions,
      conn_->Execute("SELECT " + projection + " FROM " + name_ +
                     " WHERE " + AndWhere(CurrentPredicate(), where_sql)));

  // 2. Close the old versions (clamped so tt_start <= tt_end holds even
  //    for same-chronon churn).
  client::Statement close_stmt = conn_->Prepare(
      "UPDATE " + name_ + " SET tt_end = CASE WHEN tt_start > :close "
      "THEN tt_start ELSE :close END WHERE " +
      AndWhere(CurrentPredicate(), where_sql));
  TIP_ASSIGN_OR_RETURN(client::ResultSet closed,
                       close_stmt.BindChronon("close", close).Execute());

  // 3. Assert the new versions.
  std::string insert_sql = "INSERT INTO " + name_ + " VALUES (";
  for (size_t i = 0; i < user_columns_.size(); ++i) {
    insert_sql += ":c" + std::to_string(i) + ", ";
  }
  insert_sql += ":tt, 'NOW')";
  for (size_t r = 0; r < new_versions.row_count(); ++r) {
    client::Statement insert_stmt = conn_->Prepare(insert_sql);
    for (size_t c = 0; c < user_columns_.size(); ++c) {
      insert_stmt.BindDatum("c" + std::to_string(c),
                            new_versions.raw().rows[r][c]);
    }
    insert_stmt.BindChronon("tt", tx);
    TIP_ASSIGN_OR_RETURN(client::ResultSet inserted,
                         insert_stmt.Execute());
    (void)inserted;
  }
  return closed.affected_rows();
}

Result<int64_t> TrackedTable::Delete(std::string_view where_sql) {
  const Chronon tx = conn_->database().CurrentTx().now;
  TIP_ASSIGN_OR_RETURN(Chronon close, tx.Subtract(Span::FromSeconds(1)));
  client::Statement close_stmt = conn_->Prepare(
      "UPDATE " + name_ + " SET tt_end = CASE WHEN tt_start > :close "
      "THEN tt_start ELSE :close END WHERE " +
      AndWhere(CurrentPredicate(), where_sql));
  TIP_ASSIGN_OR_RETURN(client::ResultSet closed,
                       close_stmt.BindChronon("close", close).Execute());
  return closed.affected_rows();
}

Result<client::ResultSet> TrackedTable::Current(
    std::string_view select_list, std::string_view where_sql) const {
  return conn_->Execute("SELECT " + std::string(select_list) + " FROM " +
                        name_ + " WHERE " +
                        AndWhere(CurrentPredicate(), where_sql));
}

Result<client::ResultSet> TrackedTable::AsOf(
    const Chronon& t, std::string_view select_list,
    std::string_view where_sql) const {
  // Current versions ("until changed") cover every transaction time
  // from their assertion on — including times after the statement's
  // NOW, which grounding the symbolic tt_end would not.
  client::Statement stmt = conn_->Prepare(
      "SELECT " + std::string(select_list) + " FROM " + name_ +
      " WHERE " +
      AndWhere("tt_start <= :asof AND (is_now_relative(tt_end) OR "
               ":asof <= tt_end)",
               where_sql));
  return stmt.BindChronon("asof", t).Execute();
}

Result<client::ResultSet> TrackedTable::History(
    std::string_view where_sql) const {
  std::string sql = "SELECT " + UserColumnList() +
                    ", tt_start, tt_end FROM " + name_;
  if (!where_sql.empty()) sql += " WHERE " + std::string(where_sql);
  sql += " ORDER BY tt_start";
  return conn_->Execute(sql);
}

}  // namespace tip::ttime
