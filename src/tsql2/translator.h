#ifndef TIP_TSQL2_TRANSLATOR_H_
#define TIP_TSQL2_TRANSLATOR_H_

#include <string>
#include <string_view>

#include "common/status.h"

namespace tip::tsql2 {

/// The paper's stated future work: "investigate how closely TIP can
/// approach a full-featured temporal query language like TSQL2 in
/// expressive power, while at the same time providing efficient
/// temporal query execution through its implementation as a DBMS
/// extension."
///
/// This translator implements a TSQL2-flavoured *sequenced* query layer
/// on top of TIP SQL. Crucially — and unlike TimeDB/Tiger, which
/// translate temporal queries into large vanilla-SQL programs — the
/// target here is TIP's own routine vocabulary, so the translations
/// stay one small statement and execute on the extension's linear
/// algorithms and indexes:
///
///   VALIDTIME SELECT c FROM t1 a, t2 b WHERE p
///     -->  SELECT c, intersect(a.valid, b.valid) AS valid
///          FROM t1 a, t2 b
///          WHERE (p) AND overlaps(a.valid, b.valid)
///
///   VALIDTIME AS OF '1998-06-01' SELECT c FROM t a WHERE p
///     -->  SELECT c FROM t a
///          WHERE (p) AND contains(a.valid, '1998-06-01'::Chronon)
///
///   NONSEQUENCED VALIDTIME SELECT ...   -- prefix stripped; the rest
///                                       -- runs as plain (TIP) SQL
///
/// Every referenced table must carry an Element column named
/// `valid_column` (default "valid"), per the TSQL2 consensus of
/// timestamping tuples. Sequenced GROUP BY and sequenced DML are out of
/// scope (documented future-future work).
Result<std::string> Translate(std::string_view tsql2,
                              std::string_view valid_column = "valid");

/// True iff the statement starts with a TSQL2 prefix this translator
/// understands (VALIDTIME / NONSEQUENCED VALIDTIME).
bool IsTemporalStatement(std::string_view tsql2);

}  // namespace tip::tsql2

#endif  // TIP_TSQL2_TRANSLATOR_H_
