#include "tsql2/translator.h"

#include <vector>

#include "common/string_util.h"
#include "engine/sql/lexer.h"

namespace tip::tsql2 {

namespace {

using engine::Lex;
using engine::Token;
using engine::TokenKind;

bool IsKeyword(const Token& t, std::string_view kw) {
  return t.kind == TokenKind::kIdentifier && EqualsIgnoreCase(t.text, kw);
}

/// One FROM item of the sequenced query.
struct FromRef {
  std::string text;     // original spelling, e.g. "Prescription p1"
  std::string binding;  // the name to qualify valid with
};

/// The dissected sequenced SELECT.
struct Dissection {
  std::string select_list;
  std::vector<FromRef> from;
  std::string where;  // without the WHERE keyword; may be empty
  std::string tail;   // ORDER BY / LIMIT, verbatim; may be empty
};

// Returns the byte offset where token `i` starts, or the end of `sql`.
size_t OffsetOf(const std::vector<Token>& tokens, size_t i,
                std::string_view sql) {
  return i < tokens.size() ? tokens[i].offset : sql.size();
}

Result<Dissection> Dissect(std::string_view sql,
                           const std::vector<Token>& tokens,
                           size_t select_pos) {
  Dissection out;
  // Locate the top-level clause boundaries (skip parenthesized
  // subqueries by tracking depth).
  size_t from_pos = tokens.size(), where_pos = tokens.size(),
         tail_pos = tokens.size();
  int depth = 0;
  for (size_t i = select_pos + 1; i < tokens.size(); ++i) {
    const Token& t = tokens[i];
    if (t.kind == TokenKind::kOperator) {
      if (t.text == "(") ++depth;
      if (t.text == ")") --depth;
      continue;
    }
    if (depth != 0) continue;
    if (IsKeyword(t, "from") && from_pos == tokens.size()) {
      from_pos = i;
    } else if (IsKeyword(t, "where") && where_pos == tokens.size()) {
      where_pos = i;
    } else if ((IsKeyword(t, "order") || IsKeyword(t, "limit")) &&
               tail_pos == tokens.size()) {
      tail_pos = i;
    } else if (IsKeyword(t, "group") || IsKeyword(t, "having")) {
      return Status::NotImplemented(
          "sequenced VALIDTIME queries do not support GROUP BY/HAVING "
          "(use NONSEQUENCED VALIDTIME with group_union instead)");
    } else if (IsKeyword(t, "union") || IsKeyword(t, "intersect") ||
               IsKeyword(t, "except")) {
      return Status::NotImplemented(
          "sequenced VALIDTIME queries do not support set operations");
    } else if (IsKeyword(t, "join") || IsKeyword(t, "inner")) {
      return Status::NotImplemented(
          "sequenced VALIDTIME queries support only comma joins");
    }
  }
  if (from_pos == tokens.size()) {
    return Status::ParseError("VALIDTIME SELECT requires a FROM clause");
  }

  out.select_list = std::string(StripAsciiWhitespace(sql.substr(
      OffsetOf(tokens, select_pos + 1, sql),
      tokens[from_pos].offset - OffsetOf(tokens, select_pos + 1, sql))));

  // FROM items: identifier [AS] [alias] (, ...)*.
  size_t i = from_pos + 1;
  const size_t from_end = std::min(where_pos, tail_pos);
  while (i < from_end) {
    if (tokens[i].kind != TokenKind::kIdentifier) {
      return Status::ParseError("expected table name in FROM");
    }
    FromRef ref;
    const std::string table = tokens[i].text;
    std::string alias;
    ++i;
    if (i < from_end && IsKeyword(tokens[i], "as")) ++i;
    if (i < from_end && tokens[i].kind == TokenKind::kIdentifier) {
      alias = tokens[i].text;
      ++i;
    }
    ref.text = alias.empty() ? table : table + " " + alias;
    ref.binding = alias.empty() ? table : alias;
    out.from.push_back(std::move(ref));
    if (i < from_end) {
      if (tokens[i].kind == TokenKind::kOperator &&
          tokens[i].text == ",") {
        ++i;
        continue;
      }
      return Status::ParseError("unexpected token in FROM clause: '" +
                                tokens[i].text + "'");
    }
  }
  if (out.from.empty()) {
    return Status::ParseError("VALIDTIME SELECT requires at least one "
                              "table");
  }

  if (where_pos < tokens.size()) {
    const size_t begin = OffsetOf(tokens, where_pos + 1, sql);
    const size_t end = tail_pos < tokens.size() ? tokens[tail_pos].offset
                                                : sql.size();
    out.where = std::string(
        StripAsciiWhitespace(sql.substr(begin, end - begin)));
  }
  if (tail_pos < tokens.size()) {
    out.tail = std::string(StripAsciiWhitespace(
        sql.substr(tokens[tail_pos].offset)));
  }
  return out;
}

std::string ValidOf(const FromRef& ref, std::string_view valid_column) {
  return ref.binding + "." + std::string(valid_column);
}

// intersect(intersect(a.valid, b.valid), c.valid) ...
std::string IntersectionExpr(const std::vector<FromRef>& from,
                             std::string_view valid_column) {
  std::string expr = ValidOf(from[0], valid_column);
  for (size_t i = 1; i < from.size(); ++i) {
    expr = "intersect(" + expr + ", " + ValidOf(from[i], valid_column) +
           ")";
  }
  return expr;
}

std::string JoinFrom(const std::vector<FromRef>& from) {
  std::string out;
  for (size_t i = 0; i < from.size(); ++i) {
    if (i > 0) out += ", ";
    out += from[i].text;
  }
  return out;
}

}  // namespace

bool IsTemporalStatement(std::string_view tsql2) {
  Result<std::vector<Token>> tokens = Lex(tsql2);
  if (!tokens.ok() || tokens->empty()) return false;
  const std::vector<Token>& t = *tokens;
  if (IsKeyword(t[0], "validtime")) return true;
  return t.size() > 1 && IsKeyword(t[0], "nonsequenced") &&
         IsKeyword(t[1], "validtime");
}

Result<std::string> Translate(std::string_view tsql2,
                              std::string_view valid_column) {
  TIP_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(tsql2));
  if (tokens.empty() || tokens[0].kind != TokenKind::kIdentifier) {
    return std::string(tsql2);  // not temporal; pass through
  }

  // NONSEQUENCED VALIDTIME: strip the prefix, run as plain TIP SQL.
  if (IsKeyword(tokens[0], "nonsequenced")) {
    if (tokens.size() < 2 || !IsKeyword(tokens[1], "validtime")) {
      return Status::ParseError("expected VALIDTIME after NONSEQUENCED");
    }
    return std::string(
        StripAsciiWhitespace(tsql2.substr(OffsetOf(tokens, 2, tsql2))));
  }
  if (!IsKeyword(tokens[0], "validtime")) {
    return std::string(tsql2);  // plain SQL passes through untouched
  }

  // Optional AS OF '<instant>' (timeslice).
  size_t next = 1;
  std::string as_of;
  if (next + 1 < tokens.size() && IsKeyword(tokens[next], "as") &&
      IsKeyword(tokens[next + 1], "of")) {
    next += 2;
    if (next >= tokens.size() || tokens[next].kind != TokenKind::kString) {
      return Status::ParseError("AS OF requires a quoted instant");
    }
    as_of = tokens[next].text;
    ++next;
  }
  if (next >= tokens.size() || !IsKeyword(tokens[next], "select")) {
    return Status::ParseError("expected SELECT after VALIDTIME");
  }

  TIP_ASSIGN_OR_RETURN(Dissection q, Dissect(tsql2, tokens, next));

  std::string where;
  auto and_clause = [&where](const std::string& clause) {
    if (!where.empty()) where += " AND ";
    where += clause;
  };
  if (!q.where.empty()) where = "(" + q.where + ")";

  std::string select_list = q.select_list;
  if (!as_of.empty()) {
    // Timeslice: restrict every operand to the instant; snapshot output.
    for (const FromRef& ref : q.from) {
      and_clause("contains(" + ValidOf(ref, valid_column) + ", '" +
                 as_of + "'::Instant::Chronon)");
    }
  } else {
    // Sequenced semantics: the result is valid exactly when all
    // operands are simultaneously valid.
    if (q.from.size() == 1) {
      and_clause("NOT is_empty(" + ValidOf(q.from[0], valid_column) +
                 ")");
    } else if (q.from.size() == 2) {
      // The two-way case uses overlaps(), which the optimizer can turn
      // into an interval-index join.
      and_clause("overlaps(" + ValidOf(q.from[0], valid_column) + ", " +
                 ValidOf(q.from[1], valid_column) + ")");
    } else {
      and_clause("NOT is_empty(" +
                 IntersectionExpr(q.from, valid_column) + ")");
    }
    select_list += ", " + IntersectionExpr(q.from, valid_column) +
                   " AS " + std::string(valid_column);
  }

  std::string out = "SELECT " + select_list + " FROM " + JoinFrom(q.from);
  if (!where.empty()) out += " WHERE " + where;
  if (!q.tail.empty()) out += " " + q.tail;
  return out;
}

}  // namespace tip::tsql2
