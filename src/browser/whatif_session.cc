#include "browser/whatif_session.h"

#include <utility>

namespace tip::browser {

WhatIfSession::WhatIfSession(client::Connection* conn, std::string sql,
                             std::string temporal_column)
    : conn_(conn),
      sql_(std::move(sql)),
      temporal_column_(std::move(temporal_column)) {}

WhatIfSession::~WhatIfSession() { (void)CancelInFlight(); }

bool WhatIfSession::CancelInFlight() {
  if (!worker_.joinable()) return false;
  bool abandoned;
  {
    std::lock_guard<std::mutex> lock(mu_);
    abandoned = in_flight_;
  }
  if (abandoned) {
    // The previous evaluation is still inside Execute: interrupt it via
    // the thread-safe cancel path rather than waiting it out. If it
    // finishes on its own before the flag is observed, the join below
    // is immediate and its (stale) result is simply discarded.
    conn_->Cancel();
    ++cancelled_;
  }
  worker_.join();
  std::lock_guard<std::mutex> lock(mu_);
  latest_.reset();
  in_flight_ = false;
  return abandoned;
}

void WhatIfSession::Begin(std::optional<Chronon> now) {
  (void)CancelInFlight();
  // The worker is joined, so the connection is ours again: adjust NOW
  // before the new evaluation starts.
  if (now.has_value()) {
    conn_->SetNow(*now);
  } else {
    conn_->ClearNow();
  }
  if (!stmt_.has_value()) stmt_.emplace(conn_->Prepare(sql_));
  ++started_;
  in_flight_ = true;
  worker_ = std::thread([this] {
    // Each what-if evaluation runs as one transaction: the NOW set
    // above is pinned at Begin, so the query and the TimelineView it
    // feeds see the same grounding even if another controller flips
    // the session override mid-evaluation.
    Result<TimelineView> view = [&]() -> Result<TimelineView> {
      TIP_RETURN_IF_ERROR(conn_->Begin());
      // The prepared handle reuses one plan across window moves; the
      // transaction's pinned NOW re-grounds it without replanning.
      Result<client::ResultSet> result = stmt_->Execute();
      if (!result.ok()) {
        // Fatal failures (a cancel from CancelInFlight, a timeout)
        // already aborted the transaction; close it ourselves only if
        // a plain validation error left it open.
        if (conn_->in_transaction()) (void)conn_->Rollback();
        return result.status();
      }
      // Read the pinned context before COMMIT releases it.
      const TxContext tx = conn_->database().CurrentTx();
      Result<TimelineView> created =
          TimelineView::Create(*result, temporal_column_, tx);
      Status committed = conn_->Commit();
      if (created.ok() && !committed.ok()) return committed;
      return created;
    }();
    std::lock_guard<std::mutex> lock(mu_);
    latest_.emplace(std::move(view));
    in_flight_ = false;
  });
}

Result<TimelineView> WhatIfSession::Wait() {
  if (worker_.joinable()) worker_.join();
  std::lock_guard<std::mutex> lock(mu_);
  if (!latest_.has_value()) {
    return Status::InvalidArgument("WhatIfSession::Wait without Begin");
  }
  Result<TimelineView> out = std::move(*latest_);
  latest_.reset();
  return out;
}

}  // namespace tip::browser
