#include "browser/timeline.h"

#include <algorithm>
#include <cassert>

namespace tip::browser {

Result<TimelineView> TimelineView::Create(const client::ResultSet& result,
                                          std::string_view temporal_column,
                                          const TxContext& ctx) {
  const int col_index = result.FindColumn(temporal_column);
  if (col_index < 0) {
    return Status::NotFound("no column named '" +
                            std::string(temporal_column) + "'");
  }
  const size_t col = static_cast<size_t>(col_index);

  std::vector<std::string> headers;
  for (size_t c = 0; c < result.column_count(); ++c) {
    if (c != col) headers.push_back(result.column_name(c));
  }

  std::vector<TimelineRow> rows;
  rows.reserve(result.row_count());
  for (size_t r = 0; r < result.row_count(); ++r) {
    TimelineRow out;
    for (size_t c = 0; c < result.column_count(); ++c) {
      if (c != col) out.fields.push_back(result.GetText(r, c));
    }
    if (!result.IsNull(r, col)) {
      const engine::Datum& d = result.raw().rows[r][col];
      // The browsable types, per the paper: Chronon, Instant, Period or
      // Element. Dispatch on the stored payload via the known type ids.
      Result<GroundedElement> valid = [&]() -> Result<GroundedElement> {
        const engine::TypeId tid = d.type_id();
        if (tid == result.tip_types().chronon) {
          return GroundedElement::Of(
              GroundedPeriod::At(result.GetChronon(r, col)));
        }
        if (tid == result.tip_types().instant) {
          TIP_ASSIGN_OR_RETURN(Chronon c,
                               result.GetInstant(r, col).Ground(ctx));
          return GroundedElement::Of(GroundedPeriod::At(c));
        }
        if (tid == result.tip_types().period) {
          TIP_ASSIGN_OR_RETURN(GroundedPeriod p,
                               result.GetPeriod(r, col).Ground(ctx));
          return GroundedElement::Of(p);
        }
        if (tid == result.tip_types().element) {
          return result.GetElement(r, col).Ground(ctx);
        }
        return Status::TypeError(
            "column '" + std::string(temporal_column) +
            "' is not of a temporal type (Chronon, Instant, Period or "
            "Element)");
      }();
      if (!valid.ok()) return valid.status();
      out.valid = std::move(*valid);
    }
    rows.push_back(std::move(out));
  }
  return TimelineView(std::move(headers), std::move(rows));
}

Result<GroundedPeriod> TimelineView::FullExtent() const {
  bool seen = false;
  Chronon lo, hi;
  for (const TimelineRow& row : rows_) {
    if (row.valid.IsEmpty()) continue;
    GroundedPeriod extent = row.valid.Extent();
    if (!seen || extent.start() < lo) lo = extent.start();
    if (!seen || extent.end() > hi) hi = extent.end();
    seen = true;
  }
  if (!seen) {
    return Status::InvalidArgument("no tuple has a non-empty validity");
  }
  return GroundedPeriod::Make(lo, hi);
}

std::vector<bool> TimelineView::HighlightMask(
    const TimeWindow& window) const {
  std::vector<bool> mask;
  mask.reserve(rows_.size());
  Result<GroundedPeriod> window_period =
      GroundedPeriod::Make(window.start, window.end);
  GroundedElement window_element =
      window_period.ok() ? GroundedElement::Of(*window_period)
                         : GroundedElement();
  for (const TimelineRow& row : rows_) {
    mask.push_back(row.valid.Overlaps(window_element));
  }
  return mask;
}

Result<TimeWindow> TimelineView::WindowAt(double position,
                                          const Span& span) const {
  if (position < 0.0 || position > 1.0) {
    return Status::InvalidArgument("slider position must be in [0, 1]");
  }
  if (span.IsNegative() || span.IsZero()) {
    return Status::InvalidArgument("window span must be positive");
  }
  TIP_ASSIGN_OR_RETURN(GroundedPeriod extent, FullExtent());
  const int64_t total = extent.end().seconds() - extent.start().seconds();
  const int64_t window = std::min(span.seconds() - 1, total);
  const int64_t slack = total - window;
  const int64_t start =
      extent.start().seconds() +
      static_cast<int64_t>(position * static_cast<double>(slack));
  TIP_ASSIGN_OR_RETURN(Chronon s, Chronon::FromSeconds(start));
  TIP_ASSIGN_OR_RETURN(Chronon e, Chronon::FromSeconds(start + window));
  return TimeWindow{s, e};
}

std::string TimelineView::Render(const TimeWindow& window,
                                 int width) const {
  assert(width > 1);
  std::string out;
  const int64_t ws = window.start.seconds();
  const int64_t we = window.end.seconds();
  const double scale =
      static_cast<double>(width) / static_cast<double>(we - ws + 1);

  // Column widths for the label area.
  std::vector<size_t> col_width(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    col_width[c] = headers_[c].size();
  }
  for (const TimelineRow& row : rows_) {
    for (size_t c = 0; c < row.fields.size() && c < col_width.size(); ++c) {
      col_width[c] = std::max(col_width[c], row.fields[c].size());
    }
  }

  auto pad = [](const std::string& s, size_t w) {
    std::string padded = s;
    padded.append(w > s.size() ? w - s.size() : 0, ' ');
    return padded;
  };

  // Header line.
  out += "   ";
  for (size_t c = 0; c < headers_.size(); ++c) {
    out += pad(headers_[c], col_width[c]) + "  ";
  }
  out += "|" + std::string(static_cast<size_t>(width), '-') + "|\n";

  const std::vector<bool> mask = HighlightMask(window);
  for (size_t r = 0; r < rows_.size(); ++r) {
    const TimelineRow& row = rows_[r];
    out += mask[r] ? " * " : "   ";
    for (size_t c = 0; c < headers_.size(); ++c) {
      out += pad(c < row.fields.size() ? row.fields[c] : "",
                 col_width[c]) + "  ";
    }
    // Timeline strip: '=' where the tuple is valid inside the window.
    std::string strip(static_cast<size_t>(width), ' ');
    for (const GroundedPeriod& p : row.valid.periods()) {
      const int64_t s = std::max(p.start().seconds(), ws);
      const int64_t e = std::min(p.end().seconds(), we);
      if (s > e) continue;
      int from = static_cast<int>(static_cast<double>(s - ws) * scale);
      int to = static_cast<int>(static_cast<double>(e - ws) * scale);
      from = std::clamp(from, 0, width - 1);
      to = std::clamp(to, 0, width - 1);
      for (int i = from; i <= to; ++i) {
        strip[static_cast<size_t>(i)] = '=';
      }
    }
    out += "|" + strip + "|\n";
  }

  // Footer: window endpoints under the strip.
  std::string footer(3, ' ');
  for (size_t c = 0; c < headers_.size(); ++c) {
    footer.append(col_width[c] + 2, ' ');
  }
  const std::string left = window.start.ToString();
  const std::string right = window.end.ToString();
  std::string axis = left;
  const size_t total = static_cast<size_t>(width) + 2;
  if (axis.size() + right.size() + 1 < total) {
    axis.append(total - axis.size() - right.size(), ' ');
    axis += right;
  }
  out += footer + axis + "\n";
  return out;
}

std::vector<size_t> TimelineView::Density(const TimeWindow& window,
                                          int width) const {
  std::vector<size_t> buckets(static_cast<size_t>(width), 0);
  const int64_t ws = window.start.seconds();
  const int64_t we = window.end.seconds();
  const double scale =
      static_cast<double>(width) / static_cast<double>(we - ws + 1);
  for (const TimelineRow& row : rows_) {
    // Mark the buckets the row's validity touches, each at most once
    // per row.
    std::vector<bool> touched(static_cast<size_t>(width), false);
    for (const GroundedPeriod& p : row.valid.periods()) {
      const int64_t s = std::max(p.start().seconds(), ws);
      const int64_t e = std::min(p.end().seconds(), we);
      if (s > e) continue;
      int from = static_cast<int>(static_cast<double>(s - ws) * scale);
      int to = static_cast<int>(static_cast<double>(e - ws) * scale);
      from = std::clamp(from, 0, width - 1);
      to = std::clamp(to, 0, width - 1);
      for (int i = from; i <= to; ++i) {
        touched[static_cast<size_t>(i)] = true;
      }
    }
    for (int i = 0; i < width; ++i) {
      if (touched[static_cast<size_t>(i)]) ++buckets[static_cast<size_t>(i)];
    }
  }
  return buckets;
}

std::string TimelineView::RenderDensity(const TimeWindow& window,
                                        int width) const {
  std::vector<size_t> buckets = Density(window, width);
  std::string strip;
  strip.reserve(buckets.size());
  for (size_t count : buckets) {
    if (count == 0) {
      strip.push_back(' ');
    } else if (count < 10) {
      strip.push_back(static_cast<char>('0' + count));
    } else {
      strip.push_back('#');
    }
  }
  return "|" + strip + "|";
}

}  // namespace tip::browser
