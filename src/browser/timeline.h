#ifndef TIP_BROWSER_TIMELINE_H_
#define TIP_BROWSER_TIMELINE_H_

#include <string>
#include <string_view>
#include <vector>

#include "client/connection.h"
#include "common/status.h"
#include "core/chronon.h"
#include "core/element.h"

namespace tip::browser {

/// The browsing window over the time line — the adjustable-size,
/// movable viewport of the TIP Browser (Figure 2). A slider position in
/// [0, 1] places the window inside the data's full extent.
struct TimeWindow {
  Chronon start;
  Chronon end;  // inclusive, start <= end
};

/// One browsable tuple: its display label (the non-temporal columns,
/// rendered) and the grounded validity of its temporal attribute.
struct TimelineRow {
  std::vector<std::string> fields;
  GroundedElement valid;
};

/// A text-mode reimplementation of the TIP Browser's result display:
/// tuples on the left, their valid periods drawn as segments of the
/// time line on the right, rows highlighted ('*') when they are valid
/// somewhere inside the current window. The user may browse by any
/// attribute of type Chronon, Instant, Period or Element — anything
/// with an interval interpretation.
class TimelineView {
 public:
  /// Builds a view from a query result. `temporal_column` selects the
  /// attribute that defines when each tuple is valid; its type must be
  /// one of the four temporal types. NOW-relative values are grounded
  /// under `ctx` (the connection's override, if any — what-if browsing).
  static Result<TimelineView> Create(const client::ResultSet& result,
                                     std::string_view temporal_column,
                                     const TxContext& ctx);

  const std::vector<TimelineRow>& rows() const { return rows_; }
  const std::vector<std::string>& headers() const { return headers_; }

  /// The bounding period of all non-empty rows; fails when every row is
  /// empty (nothing to browse).
  Result<GroundedPeriod> FullExtent() const;

  /// True per row iff the row's validity intersects `window`.
  std::vector<bool> HighlightMask(const TimeWindow& window) const;

  /// The window of length `span` whose start is placed at `position`
  /// (0 = extent start, 1 = flush right) along the full extent — the
  /// slider beneath the result area.
  Result<TimeWindow> WindowAt(double position, const Span& span) const;

  /// Renders the whole view: header, one line per tuple (label columns,
  /// highlight marker, timeline segments within `window`), and a footer
  /// axis with the window's endpoints. `width` is the number of cells
  /// in the timeline strip.
  std::string Render(const TimeWindow& window, int width) const;

  /// The number of tuples valid in each of `width` equal buckets of
  /// `window` — the data behind the Browser's "distribution of the
  /// result tuples over time" visualization.
  std::vector<size_t> Density(const TimeWindow& window, int width) const;

  /// Renders Density as one text strip (' ' for zero, '1'..'9', then
  /// '#' for ten or more).
  std::string RenderDensity(const TimeWindow& window, int width) const;

 private:
  TimelineView(std::vector<std::string> headers,
               std::vector<TimelineRow> rows)
      : headers_(std::move(headers)), rows_(std::move(rows)) {}

  std::vector<std::string> headers_;
  std::vector<TimelineRow> rows_;
};

}  // namespace tip::browser

#endif  // TIP_BROWSER_TIMELINE_H_
