#ifndef TIP_BROWSER_WHATIF_SESSION_H_
#define TIP_BROWSER_WHATIF_SESSION_H_

#include <cstddef>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

#include "browser/timeline.h"
#include "client/connection.h"
#include "common/status.h"
#include "core/chronon.h"

namespace tip::browser {

/// The Browser's interactive what-if loop. The user drags the NOW
/// slider (or moves the browsing window) faster than the browse query
/// evaluates, so every move first CANCELS the in-flight evaluation —
/// through the connection's thread-safe cancel entry point — and only
/// then starts a fresh one under the new NOW. Stale evaluations are
/// discarded; the view the user finally waits for always reflects the
/// latest slider position.
///
/// Evaluations run on a background thread; Begin/Wait themselves must
/// be called from one thread (the UI loop).
class WhatIfSession {
 public:
  /// `sql` is the browse query, `temporal_column` the attribute that
  /// defines when each tuple is valid (as in TimelineView::Create).
  /// `conn` must outlive the session and, between Begin and Wait, must
  /// not be used from other threads.
  WhatIfSession(client::Connection* conn, std::string sql,
                std::string temporal_column);

  /// Cancels and joins any in-flight evaluation.
  ~WhatIfSession();

  WhatIfSession(const WhatIfSession&) = delete;
  WhatIfSession& operator=(const WhatIfSession&) = delete;

  /// Starts evaluating the browse query with NOW overridden to `now`
  /// (nullopt restores the wall clock). A previous evaluation still
  /// running is cancelled and its result discarded — cancel on window
  /// move. Returns immediately.
  void Begin(std::optional<Chronon> now);

  /// Blocks until the most recent Begin completes and returns its view.
  /// Fails with Status::InvalidArgument when nothing was begun, and
  /// with whatever the evaluation failed with otherwise.
  Result<TimelineView> Wait();

  /// How many evaluations were started, and how many of those were
  /// abandoned because the window moved before they finished.
  size_t evaluations_started() const { return started_; }
  size_t evaluations_cancelled() const { return cancelled_; }

 private:
  /// Cancels the running evaluation (if any) and joins the worker.
  /// Returns true when an evaluation was actually abandoned.
  bool CancelInFlight();

  client::Connection* conn_;
  std::string sql_;
  std::string temporal_column_;
  /// The browse query, prepared once on the first Begin. Every window
  /// move re-executes this handle: the plan is reused and only NOW is
  /// re-grounded, so the slider never pays parse/plan again. A parse
  /// error is carried by the handle and surfaces through Wait.
  std::optional<client::Statement> stmt_;

  std::thread worker_;
  std::mutex mu_;  // guards latest_
  std::optional<Result<TimelineView>> latest_;
  bool in_flight_ = false;
  size_t started_ = 0;
  size_t cancelled_ = 0;
};

}  // namespace tip::browser

#endif  // TIP_BROWSER_WHATIF_SESSION_H_
