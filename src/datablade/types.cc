#include <algorithm>
#include <cstring>

#include "datablade/datablade.h"

namespace tip::datablade {
namespace internal {

namespace {

using engine::Datum;
using engine::TypeId;
using engine::TypeOps;

// -- Binary send/receive helpers ("efficient binary format", §2) -------------

void AppendFixed64(int64_t v, std::string* out) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

Result<int64_t> ReadFixed64(std::string_view bytes, size_t* pos) {
  if (*pos + 8 > bytes.size()) {
    return Status::Internal("truncated TIP binary payload");
  }
  int64_t v;
  std::memcpy(&v, bytes.data() + *pos, 8);
  *pos += 8;
  return v;
}

void SerializeInstant(const Instant& i, std::string* out) {
  out->push_back(i.is_now_relative() ? 1 : 0);
  AppendFixed64(i.is_now_relative() ? i.offset().seconds()
                                    : i.chronon().seconds(),
                out);
}

Result<Instant> DeserializeInstant(std::string_view bytes, size_t* pos) {
  if (*pos >= bytes.size()) {
    return Status::Internal("truncated Instant payload");
  }
  const bool now_relative = bytes[(*pos)++] != 0;
  TIP_ASSIGN_OR_RETURN(int64_t value, ReadFixed64(bytes, pos));
  if (now_relative) {
    return Instant::NowRelative(Span::FromSeconds(value));
  }
  TIP_ASSIGN_OR_RETURN(Chronon c, Chronon::FromSeconds(value));
  return Instant::Absolute(c);
}

uint64_t HashInt64(uint64_t seed, int64_t v) {
  uint64_t h = static_cast<uint64_t>(v) * 0x9E3779B97F4A7C15ULL;
  h ^= h >> 32;
  return seed ^ (h + 0x9E3779B97F4A7C15ULL + (seed << 6) + (seed >> 2));
}

// -- Per-type support functions ----------------------------------------------

TypeOps ChrononOps(TypeId id) {
  TypeOps ops;
  ops.parse = [id](std::string_view s) -> Result<Datum> {
    TIP_ASSIGN_OR_RETURN(Chronon c, Chronon::Parse(s));
    return Datum::Make(id, c);
  };
  ops.format = [](const Datum& d) { return GetChronon(d).ToString(); };
  ops.compare = [](const Datum& a, const Datum& b,
                   const TxContext&) -> Result<int> {
    const Chronon& x = GetChronon(a);
    const Chronon& y = GetChronon(b);
    return x < y ? -1 : (x == y ? 0 : 1);
  };
  ops.hash = [](const Datum& d, const TxContext&) -> Result<uint64_t> {
    return HashInt64(0, GetChronon(d).seconds());
  };
  ops.serialize = [](const Datum& d, std::string* out) {
    AppendFixed64(GetChronon(d).seconds(), out);
  };
  ops.deserialize = [id](std::string_view bytes) -> Result<Datum> {
    size_t pos = 0;
    TIP_ASSIGN_OR_RETURN(int64_t seconds, ReadFixed64(bytes, &pos));
    TIP_ASSIGN_OR_RETURN(Chronon c, Chronon::FromSeconds(seconds));
    return Datum::Make(id, c);
  };
  return ops;
}

TypeOps SpanOps(TypeId id) {
  TypeOps ops;
  ops.parse = [id](std::string_view s) -> Result<Datum> {
    TIP_ASSIGN_OR_RETURN(Span v, Span::Parse(s));
    return Datum::Make(id, v);
  };
  ops.format = [](const Datum& d) { return GetSpan(d).ToString(); };
  ops.compare = [](const Datum& a, const Datum& b,
                   const TxContext&) -> Result<int> {
    const Span& x = GetSpan(a);
    const Span& y = GetSpan(b);
    return x < y ? -1 : (x == y ? 0 : 1);
  };
  ops.hash = [](const Datum& d, const TxContext&) -> Result<uint64_t> {
    return HashInt64(0, GetSpan(d).seconds());
  };
  ops.serialize = [](const Datum& d, std::string* out) {
    AppendFixed64(GetSpan(d).seconds(), out);
  };
  ops.deserialize = [id](std::string_view bytes) -> Result<Datum> {
    size_t pos = 0;
    TIP_ASSIGN_OR_RETURN(int64_t seconds, ReadFixed64(bytes, &pos));
    return Datum::Make(id, Span::FromSeconds(seconds));
  };
  return ops;
}

TypeOps InstantOps(TypeId id) {
  TypeOps ops;
  ops.parse = [id](std::string_view s) -> Result<Datum> {
    TIP_ASSIGN_OR_RETURN(Instant v, Instant::Parse(s));
    return Datum::Make(id, v);
  };
  ops.format = [](const Datum& d) { return GetInstant(d).ToString(); };
  // Comparing Instants is *temporal*: a NOW-relative instant grounds to
  // the transaction time first, so the answer may change between
  // transactions — the paper's flagship NOW behaviour.
  ops.compare = [](const Datum& a, const Datum& b,
                   const TxContext& ctx) -> Result<int> {
    return CompareInstants(GetInstant(a), GetInstant(b), ctx);
  };
  ops.hash = [](const Datum& d, const TxContext& ctx) -> Result<uint64_t> {
    TIP_ASSIGN_OR_RETURN(Chronon c, GetInstant(d).Ground(ctx));
    return HashInt64(0, c.seconds());
  };
  ops.serialize = [](const Datum& d, std::string* out) {
    SerializeInstant(GetInstant(d), out);
  };
  ops.deserialize = [id](std::string_view bytes) -> Result<Datum> {
    size_t pos = 0;
    TIP_ASSIGN_OR_RETURN(Instant v, DeserializeInstant(bytes, &pos));
    return Datum::Make(id, v);
  };
  return ops;
}

TypeOps PeriodOps(TypeId id) {
  TypeOps ops;
  ops.parse = [id](std::string_view s) -> Result<Datum> {
    TIP_ASSIGN_OR_RETURN(Period v, Period::Parse(s));
    return Datum::Make(id, v);
  };
  ops.format = [](const Datum& d) { return GetPeriod(d).ToString(); };
  // Periods order by (grounded start, grounded end).
  ops.compare = [](const Datum& a, const Datum& b,
                   const TxContext& ctx) -> Result<int> {
    TIP_ASSIGN_OR_RETURN(GroundedPeriod x, GetPeriod(a).Ground(ctx));
    TIP_ASSIGN_OR_RETURN(GroundedPeriod y, GetPeriod(b).Ground(ctx));
    if (x.start() != y.start()) return x.start() < y.start() ? -1 : 1;
    if (x.end() != y.end()) return x.end() < y.end() ? -1 : 1;
    return 0;
  };
  ops.hash = [](const Datum& d, const TxContext& ctx) -> Result<uint64_t> {
    TIP_ASSIGN_OR_RETURN(GroundedPeriod p, GetPeriod(d).Ground(ctx));
    return HashInt64(HashInt64(0, p.start().seconds()), p.end().seconds());
  };
  ops.serialize = [](const Datum& d, std::string* out) {
    SerializeInstant(GetPeriod(d).start(), out);
    SerializeInstant(GetPeriod(d).end(), out);
  };
  ops.deserialize = [id](std::string_view bytes) -> Result<Datum> {
    size_t pos = 0;
    TIP_ASSIGN_OR_RETURN(Instant start, DeserializeInstant(bytes, &pos));
    TIP_ASSIGN_OR_RETURN(Instant end, DeserializeInstant(bytes, &pos));
    TIP_ASSIGN_OR_RETURN(Period p, Period::Make(start, end));
    return Datum::Make(id, p);
  };
  return ops;
}

TypeOps ElementOps(TypeId id) {
  TypeOps ops;
  ops.parse = [id](std::string_view s) -> Result<Datum> {
    TIP_ASSIGN_OR_RETURN(Element v, Element::Parse(s));
    return Datum::Make(id, v);
  };
  ops.format = [](const Datum& d) { return GetElement(d).ToString(); };
  // Elements order lexicographically over their grounded canonical
  // periods (an arbitrary but total and context-consistent order, good
  // enough for ORDER BY / DISTINCT / GROUP BY).
  ops.compare = [](const Datum& a, const Datum& b,
                   const TxContext& ctx) -> Result<int> {
    TIP_ASSIGN_OR_RETURN(GroundedElement x, GetElement(a).Ground(ctx));
    TIP_ASSIGN_OR_RETURN(GroundedElement y, GetElement(b).Ground(ctx));
    const size_t n = std::min(x.size(), y.size());
    for (size_t i = 0; i < n; ++i) {
      const GroundedPeriod& p = x.periods()[i];
      const GroundedPeriod& q = y.periods()[i];
      if (p.start() != q.start()) return p.start() < q.start() ? -1 : 1;
      if (p.end() != q.end()) return p.end() < q.end() ? -1 : 1;
    }
    if (x.size() != y.size()) return x.size() < y.size() ? -1 : 1;
    return 0;
  };
  ops.hash = [](const Datum& d, const TxContext& ctx) -> Result<uint64_t> {
    TIP_ASSIGN_OR_RETURN(GroundedElement e, GetElement(d).Ground(ctx));
    uint64_t h = 0;
    for (const GroundedPeriod& p : e.periods()) {
      h = HashInt64(HashInt64(h, p.start().seconds()), p.end().seconds());
    }
    return h;
  };
  ops.serialize = [](const Datum& d, std::string* out) {
    const Element& e = GetElement(d);
    AppendFixed64(static_cast<int64_t>(e.size()), out);
    for (const Period& p : e.periods()) {
      SerializeInstant(p.start(), out);
      SerializeInstant(p.end(), out);
    }
  };
  ops.deserialize = [id](std::string_view bytes) -> Result<Datum> {
    size_t pos = 0;
    TIP_ASSIGN_OR_RETURN(int64_t count, ReadFixed64(bytes, &pos));
    if (count < 0 || static_cast<size_t>(count) > bytes.size()) {
      return Status::Internal("corrupt Element payload");
    }
    std::vector<Period> periods;
    periods.reserve(static_cast<size_t>(count));
    for (int64_t i = 0; i < count; ++i) {
      TIP_ASSIGN_OR_RETURN(Instant start, DeserializeInstant(bytes, &pos));
      TIP_ASSIGN_OR_RETURN(Instant end, DeserializeInstant(bytes, &pos));
      TIP_ASSIGN_OR_RETURN(Period p, Period::Make(start, end));
      periods.push_back(p);
    }
    return Datum::Make(id, Element::FromPeriods(std::move(periods)));
  };
  return ops;
}

}  // namespace

Result<TipTypes> RegisterTypes(engine::Database* db) {
  engine::TypeRegistry& reg = db->types();
  TipTypes t;
  TIP_ASSIGN_OR_RETURN(t.chronon, reg.RegisterType("chronon", ChrononOps));
  TIP_ASSIGN_OR_RETURN(t.span, reg.RegisterType("span", SpanOps));
  TIP_ASSIGN_OR_RETURN(t.instant, reg.RegisterType("instant", InstantOps));
  TIP_ASSIGN_OR_RETURN(t.period, reg.RegisterType("period", PeriodOps));
  TIP_ASSIGN_OR_RETURN(t.element, reg.RegisterType("element", ElementOps));
  return t;
}

}  // namespace internal
}  // namespace tip::datablade
