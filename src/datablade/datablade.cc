#include "datablade/datablade.h"

namespace tip::datablade {

Result<TipTypes> TipTypes::Lookup(const engine::Database& db) {
  TipTypes t;
  TIP_ASSIGN_OR_RETURN(t.chronon, db.types().FindByName("chronon"));
  TIP_ASSIGN_OR_RETURN(t.span, db.types().FindByName("span"));
  TIP_ASSIGN_OR_RETURN(t.instant, db.types().FindByName("instant"));
  TIP_ASSIGN_OR_RETURN(t.period, db.types().FindByName("period"));
  TIP_ASSIGN_OR_RETURN(t.element, db.types().FindByName("element"));
  return t;
}

Status Install(engine::Database* db) {
  TIP_ASSIGN_OR_RETURN(TipTypes t, internal::RegisterTypes(db));
  TIP_RETURN_IF_ERROR(internal::RegisterCasts(db, t));
  TIP_RETURN_IF_ERROR(internal::RegisterRoutines(db, t));
  TIP_RETURN_IF_ERROR(internal::RegisterAggregates(db, t));
  TIP_RETURN_IF_ERROR(internal::RegisterAccessMethods(db, t));
  return Status::OK();
}

engine::Datum MakeChronon(const TipTypes& t, const Chronon& value) {
  return engine::Datum::Make(t.chronon, value);
}
engine::Datum MakeSpan(const TipTypes& t, const Span& value) {
  return engine::Datum::Make(t.span, value);
}
engine::Datum MakeInstant(const TipTypes& t, const Instant& value) {
  return engine::Datum::Make(t.instant, value);
}
engine::Datum MakePeriod(const TipTypes& t, const Period& value) {
  return engine::Datum::Make(t.period, value);
}
engine::Datum MakeElement(const TipTypes& t, const Element& value) {
  return engine::Datum::Make(t.element, value);
}

const Chronon& GetChronon(const engine::Datum& d) {
  return d.extension<Chronon>();
}
const Span& GetSpan(const engine::Datum& d) { return d.extension<Span>(); }
const Instant& GetInstant(const engine::Datum& d) {
  return d.extension<Instant>();
}
const Period& GetPeriod(const engine::Datum& d) {
  return d.extension<Period>();
}
const Element& GetElement(const engine::Datum& d) {
  return d.extension<Element>();
}

}  // namespace tip::datablade
