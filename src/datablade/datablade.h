#ifndef TIP_DATABLADE_DATABLADE_H_
#define TIP_DATABLADE_DATABLADE_H_

#include "common/status.h"
#include "core/chronon.h"
#include "core/element.h"
#include "core/instant.h"
#include "core/period.h"
#include "core/span.h"
#include "engine/database.h"

namespace tip::datablade {

/// The engine type ids minted for the five TIP datatypes when the
/// DataBlade is installed. Clients use these to construct and unwrap
/// Datum values of TIP types.
struct TipTypes {
  engine::TypeId chronon;
  engine::TypeId span;
  engine::TypeId instant;
  engine::TypeId period;
  engine::TypeId element;

  /// Looks the ids up by name in an installed database; fails with
  /// NotFound if the DataBlade is not installed.
  static Result<TipTypes> Lookup(const engine::Database& db);
};

/// Installs the TIP DataBlade into `db`:
///
///  * the five datatypes (Chronon, Span, Instant, Period, Element) with
///    their input/output, comparison, hash and binary send/receive
///    support functions;
///  * casts: SQL strings convert implicitly to and from every TIP type;
///    Chronon widens implicitly to Instant, Period and Element; a
///    NOW-relative Instant converts (explicitly) to a Chronon by
///    substituting the transaction time;
///  * operator overloads (`+ - * /`) for temporal arithmetic — and the
///    deliberate *absence* of `Chronon + Chronon`, which stays a type
///    error, exactly as the paper promises;
///  * ~50 named routines: Allen's thirteen interval relations for
///    Periods, and union/intersect/difference/overlaps/contains/length/
///    start/end/first/last/... for Elements, all linear-time;
///  * aggregates `group_union` and `group_intersect`, which make
///    temporal coalescing expressible in plain SQL;
///  * the interval access method for Element/Period/Instant/Chronon
///    columns (enables CREATE INDEX ... USING interval and the interval
///    index join).
///
/// Idempotence: installing twice fails with AlreadyExists.
Status Install(engine::Database* db);

// -- Datum construction / extraction helpers ---------------------------------

engine::Datum MakeChronon(const TipTypes& t, const Chronon& value);
engine::Datum MakeSpan(const TipTypes& t, const Span& value);
engine::Datum MakeInstant(const TipTypes& t, const Instant& value);
engine::Datum MakePeriod(const TipTypes& t, const Period& value);
engine::Datum MakeElement(const TipTypes& t, const Element& value);

/// Typed accessors; the caller must know the datum's type (as after a
/// binder-checked query). Preconditions: matching type, non-null.
const Chronon& GetChronon(const engine::Datum& d);
const Span& GetSpan(const engine::Datum& d);
const Instant& GetInstant(const engine::Datum& d);
const Period& GetPeriod(const engine::Datum& d);
const Element& GetElement(const engine::Datum& d);

namespace internal {

/// Sub-registrations, called by Install in this order.
Result<TipTypes> RegisterTypes(engine::Database* db);
Status RegisterCasts(engine::Database* db, const TipTypes& t);
Status RegisterRoutines(engine::Database* db, const TipTypes& t);
Status RegisterAggregates(engine::Database* db, const TipTypes& t);
Status RegisterAccessMethods(engine::Database* db, const TipTypes& t);

}  // namespace internal
}  // namespace tip::datablade

#endif  // TIP_DATABLADE_DATABLADE_H_
