#include "datablade/datablade.h"

namespace tip::datablade {
namespace internal {

namespace {

using engine::Datum;
using engine::EvalContext;
using engine::TypeId;

}  // namespace

Status RegisterCasts(engine::Database* db, const TipTypes& t) {
  engine::CastRegistry& reg = db->casts();
  const engine::TypeRegistry& types = db->types();
  const TypeId str = TypeId::kString;

  // SQL strings convert implicitly *to* every TIP type through the
  // type's input function — this is what lets the paper's INSERT write
  // '{[1999-10-01, NOW]}' straight into an Element column — and
  // explicitly back to strings through the output function.
  for (TypeId id : {t.chronon, t.span, t.instant, t.period, t.element}) {
    const engine::TypeInfo* info = &types.Get(id);
    TIP_RETURN_IF_ERROR(reg.Register(
        str, id, /*implicit=*/true,
        [info](const Datum& v, EvalContext&) -> Result<Datum> {
          return info->ops.parse(v.string_value());
        }));
    TIP_RETURN_IF_ERROR(reg.Register(
        id, str, /*implicit=*/false,
        [info](const Datum& v, EvalContext&) -> Result<Datum> {
          return Datum::String(info->ops.format(v));
        }));
  }

  // Chronon widens implicitly along the natural embedding chain:
  // Chronon -> Instant, Chronon -> Period ("a Period containing only
  // this Chronon"), Instant -> Period, and Period -> Element.
  // Chronon -> Element is explicit: making it implicit would render
  // calls like overlaps(period, chronon) ambiguous between the Period
  // and Element overloads (casts do not chain, so explicit it is).
  TIP_RETURN_IF_ERROR(reg.Register(
      t.chronon, t.instant, /*implicit=*/true,
      [t](const Datum& v, EvalContext&) -> Result<Datum> {
        return MakeInstant(t, Instant::Absolute(GetChronon(v)));
      }));
  TIP_RETURN_IF_ERROR(reg.Register(
      t.chronon, t.period, /*implicit=*/true,
      [t](const Datum& v, EvalContext&) -> Result<Datum> {
        return MakePeriod(t, Period::At(GetChronon(v)));
      }));
  TIP_RETURN_IF_ERROR(reg.Register(
      t.chronon, t.element, /*implicit=*/false,
      [t](const Datum& v, EvalContext&) -> Result<Datum> {
        return MakeElement(t, Element::Of(Period::At(GetChronon(v))));
      }));
  TIP_RETURN_IF_ERROR(reg.Register(
      t.instant, t.period, /*implicit=*/true,
      [t](const Datum& v, EvalContext&) -> Result<Datum> {
        const Instant& i = GetInstant(v);
        TIP_ASSIGN_OR_RETURN(Period p, Period::Make(i, i));
        return MakePeriod(t, p);
      }));
  TIP_RETURN_IF_ERROR(reg.Register(
      t.period, t.element, /*implicit=*/true,
      [t](const Datum& v, EvalContext&) -> Result<Datum> {
        return MakeElement(t, Element::Of(GetPeriod(v)));
      }));

  // A NOW-relative Instant converts to a Chronon by substituting the
  // transaction time for NOW — time-dependent, hence explicit.
  TIP_RETURN_IF_ERROR(reg.Register(
      t.instant, t.chronon, /*implicit=*/false,
      [t](const Datum& v, EvalContext& ctx) -> Result<Datum> {
        TIP_ASSIGN_OR_RETURN(Chronon c, GetInstant(v).Ground(ctx.tx));
        return MakeChronon(t, c);
      }));
  // Narrowing along the chain is likewise explicit and grounds first.
  TIP_RETURN_IF_ERROR(reg.Register(
      t.element, t.period, /*implicit=*/false,
      [t](const Datum& v, EvalContext& ctx) -> Result<Datum> {
        TIP_ASSIGN_OR_RETURN(GroundedElement e,
                             GetElement(v).Ground(ctx.tx));
        if (e.IsEmpty()) {
          return Status::InvalidArgument(
              "cannot cast an empty Element to Period");
        }
        return MakePeriod(t, Period::FromGrounded(e.Extent()));
      }));
  return Status::OK();
}

}  // namespace internal
}  // namespace tip::datablade
