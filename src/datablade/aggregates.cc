#include <memory>
#include <optional>
#include <vector>

#include "datablade/datablade.h"

namespace tip::datablade {
namespace internal {

namespace {

using engine::AggregateDef;
using engine::AggregateState;
using engine::Datum;
using engine::EvalContext;

/// `group_union`: the union of a collection of Elements. Incoming
/// elements are grounded and their periods accumulated; the single
/// sort-and-coalesce at Final keeps the whole aggregation
/// O(total periods * log(total periods)) instead of quadratic pairwise
/// folding. This aggregate is what expresses temporal *coalescing* in
/// plain SQL (the paper's length(group_union(valid)) example).
class GroupUnionState final : public AggregateState {
 public:
  explicit GroupUnionState(const TipTypes* t) : t_(t) {}

  Status Step(const Datum& value, EvalContext& ctx) override {
    TIP_ASSIGN_OR_RETURN(GroundedElement e,
                         GetElement(value).Ground(ctx.tx));
    periods_.insert(periods_.end(), e.periods().begin(), e.periods().end());
    return Status::OK();
  }

  /// Partial union states just concatenate their period vectors — the
  /// sort-and-coalesce still happens exactly once, at Final, so the
  /// parallel aggregation keeps the serial path's O(n log n) bound.
  Status Merge(AggregateState&& other, EvalContext&) override {
    GroupUnionState& o = static_cast<GroupUnionState&>(other);
    if (periods_.empty()) {
      periods_ = std::move(o.periods_);
    } else {
      periods_.insert(periods_.end(),
                      std::make_move_iterator(o.periods_.begin()),
                      std::make_move_iterator(o.periods_.end()));
    }
    return Status::OK();
  }

  Result<Datum> Final(EvalContext&) override {
    return MakeElement(*t_, Element::FromGrounded(
                                GroundedElement::FromPeriods(
                                    std::move(periods_))));
  }

 private:
  const TipTypes* t_;
  std::vector<GroundedPeriod> periods_;
};

/// `group_intersect`: the intersection of a collection of Elements.
/// Folding pairwise is safe here — intersections only shrink, so the
/// accumulator is bounded by the smallest input.
class GroupIntersectState final : public AggregateState {
 public:
  explicit GroupIntersectState(const TipTypes* t) : t_(t) {}

  Status Step(const Datum& value, EvalContext& ctx) override {
    // Once the accumulator is empty it can never grow again; skip the
    // grounding and intersection work for every remaining row.
    if (acc_.has_value() && acc_->IsEmpty()) return Status::OK();
    TIP_ASSIGN_OR_RETURN(GroundedElement e,
                         GetElement(value).Ground(ctx.tx));
    if (!acc_.has_value()) {
      acc_ = std::move(e);
    } else {
      acc_ = GroundedElement::Intersect(*acc_, e);
    }
    return Status::OK();
  }

  /// An unset accumulator is the identity (no rows seen); otherwise the
  /// merged state is the pairwise intersection of the partials.
  Status Merge(AggregateState&& other, EvalContext&) override {
    GroupIntersectState& o = static_cast<GroupIntersectState&>(other);
    if (!o.acc_.has_value()) return Status::OK();
    if (!acc_.has_value()) {
      acc_ = std::move(o.acc_);
    } else if (!acc_->IsEmpty()) {
      acc_ = GroundedElement::Intersect(*acc_, *o.acc_);
    }
    return Status::OK();
  }

  Result<Datum> Final(EvalContext&) override {
    // The intersection of the empty collection is the empty element
    // (choosing "everything" would require a universe element).
    if (!acc_.has_value()) return MakeElement(*t_, Element());
    return MakeElement(*t_, Element::FromGrounded(*acc_));
  }

 private:
  const TipTypes* t_;
  std::optional<GroundedElement> acc_;
};

/// SUM over Spans, with checked accumulation; empty input yields NULL,
/// per SQL. This is what makes the paper's (deliberately wrong)
/// `SUM(length(valid))` example expressible at all.
class SumSpanState final : public AggregateState {
 public:
  explicit SumSpanState(const TipTypes* t) : t_(t) {}

  Status Step(const Datum& value, EvalContext&) override {
    TIP_ASSIGN_OR_RETURN(sum_, sum_.Add(GetSpan(value)));
    seen_ = true;
    return Status::OK();
  }

  Status Merge(AggregateState&& other, EvalContext&) override {
    const SumSpanState& o = static_cast<SumSpanState&>(other);
    if (!o.seen_) return Status::OK();
    TIP_ASSIGN_OR_RETURN(sum_, sum_.Add(o.sum_));
    seen_ = true;
    return Status::OK();
  }

  Result<Datum> Final(EvalContext&) override {
    if (!seen_) return Datum::Null();
    return MakeSpan(*t_, sum_);
  }

 private:
  const TipTypes* t_;
  Span sum_;
  bool seen_ = false;
};

}  // namespace

Status RegisterAggregates(engine::Database* db, const TipTypes& t) {
  engine::AggregateRegistry& reg = db->aggregates();
  // The TipTypes block must outlive the registry; park a copy on the
  // heap owned by the registration closures.
  auto shared = std::make_shared<TipTypes>(t);

  AggregateDef group_union;
  group_union.name = "group_union";
  group_union.param = t.element;
  group_union.result = t.element;
  group_union.make_state = [shared] {
    return std::make_unique<GroupUnionState>(shared.get());
  };
  group_union.mergeable = true;
  TIP_RETURN_IF_ERROR(reg.Register(std::move(group_union)));

  AggregateDef group_intersect;
  group_intersect.name = "group_intersect";
  group_intersect.param = t.element;
  group_intersect.result = t.element;
  group_intersect.make_state = [shared] {
    return std::make_unique<GroupIntersectState>(shared.get());
  };
  group_intersect.mergeable = true;
  TIP_RETURN_IF_ERROR(reg.Register(std::move(group_intersect)));

  AggregateDef sum_span;
  sum_span.name = "sum";
  sum_span.param = t.span;
  sum_span.result = t.span;
  sum_span.make_state = [shared] {
    return std::make_unique<SumSpanState>(shared.get());
  };
  sum_span.mergeable = true;
  TIP_RETURN_IF_ERROR(reg.Register(std::move(sum_span)));
  return Status::OK();
}

Status RegisterAccessMethods(engine::Database* db, const TipTypes& t) {
  // Bounding-interval key extractors: the support functions the interval
  // access method needs for each indexable type. An Element's key is the
  // extent of its grounded canonical form; empty elements are unindexed.
  // Each extractor also reports whether its key depends on NOW, which is
  // what lets the segmented index keep absolute rows out of the
  // NOW-dependent overlay.
  using engine::IntervalKey;
  TIP_RETURN_IF_ERROR(db->RegisterIntervalKeyFn(
      t.element,
      [](const Datum& v, const TxContext& ctx) -> Result<IntervalKey> {
        const Element& element = GetElement(v);
        const bool now_dep = !element.is_absolute();
        TIP_ASSIGN_OR_RETURN(GroundedElement e, element.Ground(ctx));
        if (e.IsEmpty()) return IntervalKey::Empty(now_dep);
        GroundedPeriod extent = e.Extent();
        return IntervalKey::Bounds(extent.start().seconds(),
                                   extent.end().seconds(), now_dep);
      }));
  TIP_RETURN_IF_ERROR(db->RegisterIntervalKeyFn(
      t.period,
      [](const Datum& v, const TxContext& ctx) -> Result<IntervalKey> {
        const Period& period = GetPeriod(v);
        TIP_ASSIGN_OR_RETURN(GroundedPeriod p, period.Ground(ctx));
        return IntervalKey::Bounds(p.start().seconds(), p.end().seconds(),
                                   !period.is_absolute());
      }));
  TIP_RETURN_IF_ERROR(db->RegisterIntervalKeyFn(
      t.instant,
      [](const Datum& v, const TxContext& ctx) -> Result<IntervalKey> {
        const Instant& instant = GetInstant(v);
        TIP_ASSIGN_OR_RETURN(Chronon c, instant.Ground(ctx));
        return IntervalKey::Bounds(c.seconds(), c.seconds(),
                                   instant.is_now_relative());
      }));
  TIP_RETURN_IF_ERROR(db->RegisterIntervalKeyFn(
      t.chronon,
      [](const Datum& v, const TxContext&) -> Result<IntervalKey> {
        const int64_t s = GetChronon(v).seconds();
        return IntervalKey::Bounds(s, s, /*now_dependent=*/false);
      }));
  return Status::OK();
}

}  // namespace internal
}  // namespace tip::datablade
