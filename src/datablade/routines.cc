#include <string>
#include <vector>

#include "datablade/datablade.h"

namespace tip::datablade {
namespace internal {

namespace {

using engine::Datum;
using engine::EvalContext;
using engine::Routine;
using engine::RoutineFn;
using engine::TypeId;

Routine Make(std::string name, std::vector<TypeId> params, TypeId result,
             RoutineFn fn) {
  Routine r;
  r.name = std::move(name);
  r.params = std::move(params);
  r.result = result;
  r.fn = std::move(fn);
  return r;
}

// -- Temporal arithmetic (§2 "Arithmetic and comparison operators") ----------

Status RegisterArithmetic(engine::RoutineRegistry& reg, const TipTypes& t) {
  const TypeId i = TypeId::kInt;

  // Chronon arithmetic. Note what is *not* here: Chronon + Chronon has
  // no overload, so the binder reports the type error the paper
  // describes.
  TIP_RETURN_IF_ERROR(reg.Register(Make(
      "-", {t.chronon, t.chronon}, t.span,
      [t](const std::vector<Datum>& a, EvalContext&) -> Result<Datum> {
        return MakeSpan(t, GetChronon(a[0]).Since(GetChronon(a[1])));
      })));
  TIP_RETURN_IF_ERROR(reg.Register(Make(
      "+", {t.chronon, t.span}, t.chronon,
      [t](const std::vector<Datum>& a, EvalContext&) -> Result<Datum> {
        TIP_ASSIGN_OR_RETURN(Chronon c, GetChronon(a[0]).Add(GetSpan(a[1])));
        return MakeChronon(t, c);
      })));
  TIP_RETURN_IF_ERROR(reg.Register(Make(
      "+", {t.span, t.chronon}, t.chronon,
      [t](const std::vector<Datum>& a, EvalContext&) -> Result<Datum> {
        TIP_ASSIGN_OR_RETURN(Chronon c, GetChronon(a[1]).Add(GetSpan(a[0])));
        return MakeChronon(t, c);
      })));
  TIP_RETURN_IF_ERROR(reg.Register(Make(
      "-", {t.chronon, t.span}, t.chronon,
      [t](const std::vector<Datum>& a, EvalContext&) -> Result<Datum> {
        TIP_ASSIGN_OR_RETURN(Chronon c,
                             GetChronon(a[0]).Subtract(GetSpan(a[1])));
        return MakeChronon(t, c);
      })));

  // Instant arithmetic preserves NOW-relativity: NOW-1 + 2 days is
  // NOW+1, not a fixed chronon.
  TIP_RETURN_IF_ERROR(reg.Register(Make(
      "+", {t.instant, t.span}, t.instant,
      [t](const std::vector<Datum>& a, EvalContext&) -> Result<Datum> {
        TIP_ASSIGN_OR_RETURN(Instant v, GetInstant(a[0]).Add(GetSpan(a[1])));
        return MakeInstant(t, v);
      })));
  TIP_RETURN_IF_ERROR(reg.Register(Make(
      "+", {t.span, t.instant}, t.instant,
      [t](const std::vector<Datum>& a, EvalContext&) -> Result<Datum> {
        TIP_ASSIGN_OR_RETURN(Instant v, GetInstant(a[1]).Add(GetSpan(a[0])));
        return MakeInstant(t, v);
      })));
  TIP_RETURN_IF_ERROR(reg.Register(Make(
      "-", {t.instant, t.span}, t.instant,
      [t](const std::vector<Datum>& a, EvalContext&) -> Result<Datum> {
        TIP_ASSIGN_OR_RETURN(Instant v,
                             GetInstant(a[0]).Subtract(GetSpan(a[1])));
        return MakeInstant(t, v);
      })));
  TIP_RETURN_IF_ERROR(reg.Register(Make(
      "-", {t.instant, t.instant}, t.span,
      [t](const std::vector<Datum>& a, EvalContext& ctx) -> Result<Datum> {
        TIP_ASSIGN_OR_RETURN(Chronon x, GetInstant(a[0]).Ground(ctx.tx));
        TIP_ASSIGN_OR_RETURN(Chronon y, GetInstant(a[1]).Ground(ctx.tx));
        return MakeSpan(t, x.Since(y));
      })));

  // Span arithmetic.
  TIP_RETURN_IF_ERROR(reg.Register(Make(
      "+", {t.span, t.span}, t.span,
      [t](const std::vector<Datum>& a, EvalContext&) -> Result<Datum> {
        TIP_ASSIGN_OR_RETURN(Span v, GetSpan(a[0]).Add(GetSpan(a[1])));
        return MakeSpan(t, v);
      })));
  TIP_RETURN_IF_ERROR(reg.Register(Make(
      "-", {t.span, t.span}, t.span,
      [t](const std::vector<Datum>& a, EvalContext&) -> Result<Datum> {
        TIP_ASSIGN_OR_RETURN(Span v, GetSpan(a[0]).Subtract(GetSpan(a[1])));
        return MakeSpan(t, v);
      })));
  TIP_RETURN_IF_ERROR(reg.Register(Make(
      "*", {t.span, i}, t.span,
      [t](const std::vector<Datum>& a, EvalContext&) -> Result<Datum> {
        TIP_ASSIGN_OR_RETURN(Span v,
                             GetSpan(a[0]).Multiply(a[1].int_value()));
        return MakeSpan(t, v);
      })));
  TIP_RETURN_IF_ERROR(reg.Register(Make(
      "*", {i, t.span}, t.span,
      [t](const std::vector<Datum>& a, EvalContext&) -> Result<Datum> {
        TIP_ASSIGN_OR_RETURN(Span v,
                             GetSpan(a[1]).Multiply(a[0].int_value()));
        return MakeSpan(t, v);
      })));
  TIP_RETURN_IF_ERROR(reg.Register(Make(
      "/", {t.span, i}, t.span,
      [t](const std::vector<Datum>& a, EvalContext&) -> Result<Datum> {
        TIP_ASSIGN_OR_RETURN(Span v, GetSpan(a[0]).Divide(a[1].int_value()));
        return MakeSpan(t, v);
      })));
  TIP_RETURN_IF_ERROR(reg.Register(Make(
      "/", {t.span, t.span}, i,
      [](const std::vector<Datum>& a, EvalContext&) -> Result<Datum> {
        TIP_ASSIGN_OR_RETURN(int64_t v,
                             GetSpan(a[0]).DivideBy(GetSpan(a[1])));
        return Datum::Int(v);
      })));
  TIP_RETURN_IF_ERROR(reg.Register(Make(
      "neg", {t.span}, t.span,
      [t](const std::vector<Datum>& a, EvalContext&) -> Result<Datum> {
        return MakeSpan(t, GetSpan(a[0]).Negate());
      })));
  TIP_RETURN_IF_ERROR(reg.Register(Make(
      "abs", {t.span}, t.span,
      [t](const std::vector<Datum>& a, EvalContext&) -> Result<Datum> {
        return MakeSpan(t, GetSpan(a[0]).Abs());
      })));
  return Status::OK();
}

// -- Allen's interval relations for Periods (§2, Ref [1]) --------------------

Status RegisterAllen(engine::RoutineRegistry& reg, const TipTypes& t) {
  struct NamedRelation {
    const char* name;
    AllenRelation relation;
  };
  static constexpr NamedRelation kRelations[] = {
      {"before", AllenRelation::kBefore},
      {"meets", AllenRelation::kMeets},
      {"overlaps", AllenRelation::kOverlaps},
      {"finished_by", AllenRelation::kFinishedBy},
      {"contains", AllenRelation::kContains},
      {"starts", AllenRelation::kStarts},
      {"equals", AllenRelation::kEquals},
      {"started_by", AllenRelation::kStartedBy},
      {"during", AllenRelation::kDuring},
      {"finishes", AllenRelation::kFinishes},
      {"overlapped_by", AllenRelation::kOverlappedBy},
      {"met_by", AllenRelation::kMetBy},
      {"after", AllenRelation::kAfter},
  };
  for (const NamedRelation& r : kRelations) {
    const AllenRelation relation = r.relation;
    // `overlaps` and `contains` on Periods are intentionally *not* the
    // bare Allen relations: SQL users expect overlaps(a, b) to mean
    // "shares a chronon" and contains(a, b) to mean "covers", both of
    // which span several Allen classes. The strict Allen test is
    // available as allen(a, b) = 'overlaps'.
    if (relation == AllenRelation::kOverlaps ||
        relation == AllenRelation::kContains) {
      continue;
    }
    TIP_RETURN_IF_ERROR(reg.Register(Make(
        r.name, {t.period, t.period}, TypeId::kBool,
        [relation](const std::vector<Datum>& a,
                   EvalContext& ctx) -> Result<Datum> {
          TIP_ASSIGN_OR_RETURN(GroundedPeriod x,
                               GetPeriod(a[0]).Ground(ctx.tx));
          TIP_ASSIGN_OR_RETURN(GroundedPeriod y,
                               GetPeriod(a[1]).Ground(ctx.tx));
          return Datum::Bool(GroundedPeriod::Allen(x, y) == relation);
        })));
  }
  // The classifying routine: allen(p, q) names the unique relation.
  TIP_RETURN_IF_ERROR(reg.Register(Make(
      "allen", {t.period, t.period}, TypeId::kString,
      [](const std::vector<Datum>& a, EvalContext& ctx) -> Result<Datum> {
        TIP_ASSIGN_OR_RETURN(GroundedPeriod x,
                             GetPeriod(a[0]).Ground(ctx.tx));
        TIP_ASSIGN_OR_RETURN(GroundedPeriod y,
                             GetPeriod(a[1]).Ground(ctx.tx));
        return Datum::String(
            std::string(AllenRelationName(GroundedPeriod::Allen(x, y))));
      })));

  // Period predicates with the SQL-friendly inclusive semantics.
  TIP_RETURN_IF_ERROR(reg.Register(Make(
      "overlaps", {t.period, t.period}, TypeId::kBool,
      [](const std::vector<Datum>& a, EvalContext& ctx) -> Result<Datum> {
        TIP_ASSIGN_OR_RETURN(GroundedPeriod x,
                             GetPeriod(a[0]).Ground(ctx.tx));
        TIP_ASSIGN_OR_RETURN(GroundedPeriod y,
                             GetPeriod(a[1]).Ground(ctx.tx));
        return Datum::Bool(x.Overlaps(y));
      })));
  TIP_RETURN_IF_ERROR(reg.Register(Make(
      "contains", {t.period, t.period}, TypeId::kBool,
      [](const std::vector<Datum>& a, EvalContext& ctx) -> Result<Datum> {
        TIP_ASSIGN_OR_RETURN(GroundedPeriod x,
                             GetPeriod(a[0]).Ground(ctx.tx));
        TIP_ASSIGN_OR_RETURN(GroundedPeriod y,
                             GetPeriod(a[1]).Ground(ctx.tx));
        return Datum::Bool(x.Contains(y));
      })));
  TIP_RETURN_IF_ERROR(reg.Register(Make(
      "contains", {t.period, t.chronon}, TypeId::kBool,
      [](const std::vector<Datum>& a, EvalContext& ctx) -> Result<Datum> {
        TIP_ASSIGN_OR_RETURN(GroundedPeriod x,
                             GetPeriod(a[0]).Ground(ctx.tx));
        return Datum::Bool(x.Contains(GetChronon(a[1])));
      })));
  TIP_RETURN_IF_ERROR(reg.Register(Make(
      "duration", {t.period}, t.span,
      [t](const std::vector<Datum>& a, EvalContext& ctx) -> Result<Datum> {
        TIP_ASSIGN_OR_RETURN(GroundedPeriod x,
                             GetPeriod(a[0]).Ground(ctx.tx));
        return MakeSpan(t, x.Duration());
      })));
  TIP_RETURN_IF_ERROR(reg.Register(Make(
      "period", {t.instant, t.instant}, t.period,
      [t](const std::vector<Datum>& a, EvalContext&) -> Result<Datum> {
        TIP_ASSIGN_OR_RETURN(Period p, Period::Make(GetInstant(a[0]),
                                                    GetInstant(a[1])));
        return MakePeriod(t, p);
      })));
  TIP_RETURN_IF_ERROR(reg.Register(Make(
      "shift", {t.period, t.span}, t.period,
      [t](const std::vector<Datum>& a, EvalContext&) -> Result<Datum> {
        const Period& p = GetPeriod(a[0]);
        const Span& s = GetSpan(a[1]);
        TIP_ASSIGN_OR_RETURN(Instant start, p.start().Add(s));
        TIP_ASSIGN_OR_RETURN(Instant end, p.end().Add(s));
        TIP_ASSIGN_OR_RETURN(Period shifted, Period::Make(start, end));
        return MakePeriod(t, shifted);
      })));
  return Status::OK();
}

// -- Element routines (§2: union, intersect, difference, overlaps, ...) ------

Status RegisterElementRoutines(engine::RoutineRegistry& reg,
                               const TipTypes& t) {
  using BinaryElementFn =
      Result<Element> (*)(const Element&, const Element&, const TxContext&);
  struct NamedBinary {
    const char* name;
    BinaryElementFn fn;
  };
  static constexpr NamedBinary kBinary[] = {
      {"union", &ElementUnion},
      {"intersect", &ElementIntersect},
      {"difference", &ElementDifference},
  };
  for (const NamedBinary& b : kBinary) {
    BinaryElementFn fn = b.fn;
    TIP_RETURN_IF_ERROR(reg.Register(Make(
        b.name, {t.element, t.element}, t.element,
        [t, fn](const std::vector<Datum>& a,
                EvalContext& ctx) -> Result<Datum> {
          TIP_ASSIGN_OR_RETURN(Element out, fn(GetElement(a[0]),
                                               GetElement(a[1]), ctx.tx));
          return MakeElement(t, out);
        })));
  }
  TIP_RETURN_IF_ERROR(reg.Register(Make(
      "overlaps", {t.element, t.element}, TypeId::kBool,
      [](const std::vector<Datum>& a, EvalContext& ctx) -> Result<Datum> {
        TIP_ASSIGN_OR_RETURN(bool v, ElementOverlaps(GetElement(a[0]),
                                                     GetElement(a[1]),
                                                     ctx.tx));
        return Datum::Bool(v);
      })));
  TIP_RETURN_IF_ERROR(reg.Register(Make(
      "contains", {t.element, t.element}, TypeId::kBool,
      [](const std::vector<Datum>& a, EvalContext& ctx) -> Result<Datum> {
        TIP_ASSIGN_OR_RETURN(bool v, ElementContains(GetElement(a[0]),
                                                     GetElement(a[1]),
                                                     ctx.tx));
        return Datum::Bool(v);
      })));
  TIP_RETURN_IF_ERROR(reg.Register(Make(
      "contains", {t.element, t.chronon}, TypeId::kBool,
      [](const std::vector<Datum>& a, EvalContext& ctx) -> Result<Datum> {
        TIP_ASSIGN_OR_RETURN(bool v,
                             ElementContainsChronon(GetElement(a[0]),
                                                    GetChronon(a[1]),
                                                    ctx.tx));
        return Datum::Bool(v);
      })));
  TIP_RETURN_IF_ERROR(reg.Register(Make(
      "length", {t.element}, t.span,
      [t](const std::vector<Datum>& a, EvalContext& ctx) -> Result<Datum> {
        TIP_ASSIGN_OR_RETURN(Span v, ElementLength(GetElement(a[0]),
                                                   ctx.tx));
        return MakeSpan(t, v);
      })));
  TIP_RETURN_IF_ERROR(reg.Register(Make(
      "start", {t.element}, t.chronon,
      [t](const std::vector<Datum>& a, EvalContext& ctx) -> Result<Datum> {
        TIP_ASSIGN_OR_RETURN(Chronon v, ElementStart(GetElement(a[0]),
                                                     ctx.tx));
        return MakeChronon(t, v);
      })));
  TIP_RETURN_IF_ERROR(reg.Register(Make(
      "end", {t.element}, t.chronon,
      [t](const std::vector<Datum>& a, EvalContext& ctx) -> Result<Datum> {
        TIP_ASSIGN_OR_RETURN(Chronon v, ElementEnd(GetElement(a[0]),
                                                   ctx.tx));
        return MakeChronon(t, v);
      })));
  TIP_RETURN_IF_ERROR(reg.Register(Make(
      "first", {t.element}, t.period,
      [t](const std::vector<Datum>& a, EvalContext& ctx) -> Result<Datum> {
        TIP_ASSIGN_OR_RETURN(GroundedPeriod v,
                             ElementFirst(GetElement(a[0]), ctx.tx));
        return MakePeriod(t, Period::FromGrounded(v));
      })));
  TIP_RETURN_IF_ERROR(reg.Register(Make(
      "last", {t.element}, t.period,
      [t](const std::vector<Datum>& a, EvalContext& ctx) -> Result<Datum> {
        TIP_ASSIGN_OR_RETURN(GroundedPeriod v,
                             ElementLast(GetElement(a[0]), ctx.tx));
        return MakePeriod(t, Period::FromGrounded(v));
      })));
  TIP_RETURN_IF_ERROR(reg.Register(Make(
      "extent", {t.element}, t.period,
      [t](const std::vector<Datum>& a, EvalContext& ctx) -> Result<Datum> {
        TIP_ASSIGN_OR_RETURN(GroundedElement e,
                             GetElement(a[0]).Ground(ctx.tx));
        if (e.IsEmpty()) {
          return Status::InvalidArgument("extent() of an empty Element");
        }
        return MakePeriod(t, Period::FromGrounded(e.Extent()));
      })));
  TIP_RETURN_IF_ERROR(reg.Register(Make(
      "num_periods", {t.element}, TypeId::kInt,
      [](const std::vector<Datum>& a, EvalContext& ctx) -> Result<Datum> {
        TIP_ASSIGN_OR_RETURN(GroundedElement e,
                             GetElement(a[0]).Ground(ctx.tx));
        return Datum::Int(static_cast<int64_t>(e.size()));
      })));
  TIP_RETURN_IF_ERROR(reg.Register(Make(
      "is_empty", {t.element}, TypeId::kBool,
      [](const std::vector<Datum>& a, EvalContext&) -> Result<Datum> {
        return Datum::Bool(GetElement(a[0]).IsEmpty());
      })));
  TIP_RETURN_IF_ERROR(reg.Register(Make(
      "is_now_relative", {t.instant}, TypeId::kBool,
      [](const std::vector<Datum>& a, EvalContext&) -> Result<Datum> {
        return Datum::Bool(GetInstant(a[0]).is_now_relative());
      })));
  // Instant-argument overloads: ground the instant, then test. These
  // exist so `contains(valid, 'NOW-7'::Instant)` works without an
  // explicit ::Chronon cast (Instant -> Chronon is explicit-only).
  TIP_RETURN_IF_ERROR(reg.Register(Make(
      "contains", {t.element, t.instant}, TypeId::kBool,
      [](const std::vector<Datum>& a, EvalContext& ctx) -> Result<Datum> {
        TIP_ASSIGN_OR_RETURN(Chronon c, GetInstant(a[1]).Ground(ctx.tx));
        TIP_ASSIGN_OR_RETURN(bool v,
                             ElementContainsChronon(GetElement(a[0]), c,
                                                    ctx.tx));
        return Datum::Bool(v);
      })));
  TIP_RETURN_IF_ERROR(reg.Register(Make(
      "contains", {t.period, t.instant}, TypeId::kBool,
      [](const std::vector<Datum>& a, EvalContext& ctx) -> Result<Datum> {
        TIP_ASSIGN_OR_RETURN(GroundedPeriod p,
                             GetPeriod(a[0]).Ground(ctx.tx));
        TIP_ASSIGN_OR_RETURN(Chronon c, GetInstant(a[1]).Ground(ctx.tx));
        return Datum::Bool(p.Contains(c));
      })));
  // expand(e, s): grow (or, negative s, shrink) every period by `s` on
  // both ends, dropping periods that invert; the result re-coalesces.
  // Useful for proximity queries ("within a week of ...").
  TIP_RETURN_IF_ERROR(reg.Register(Make(
      "expand", {t.element, t.span}, t.element,
      [t](const std::vector<Datum>& a, EvalContext& ctx) -> Result<Datum> {
        const Span& s = GetSpan(a[1]);
        TIP_ASSIGN_OR_RETURN(GroundedElement e,
                             GetElement(a[0]).Ground(ctx.tx));
        std::vector<GroundedPeriod> grown;
        grown.reserve(e.size());
        const bool growing = !s.IsNegative();
        for (const GroundedPeriod& p : e.periods()) {
          Result<Chronon> start = p.start().Subtract(s);
          Result<Chronon> end = p.end().Add(s);
          if ((!start.ok() || !end.ok()) && !growing) {
            continue;  // shrunk past the calendar: nothing left
          }
          // Growth clamps at the calendar bounds rather than failing.
          Chronon lo = start.ok() ? *start : Chronon::Min();
          Chronon hi = end.ok() ? *end : Chronon::Max();
          if (lo <= hi) grown.push_back(*GroundedPeriod::Make(lo, hi));
        }
        return MakeElement(t, Element::FromGrounded(
                                  GroundedElement::FromPeriods(
                                      std::move(grown))));
      })));
  TIP_RETURN_IF_ERROR(reg.Register(Make(
      "shift", {t.element, t.span}, t.element,
      [t](const std::vector<Datum>& a, EvalContext&) -> Result<Datum> {
        const Span& s = GetSpan(a[1]);
        std::vector<Period> shifted;
        shifted.reserve(GetElement(a[0]).size());
        for (const Period& p : GetElement(a[0]).periods()) {
          TIP_ASSIGN_OR_RETURN(Instant start, p.start().Add(s));
          TIP_ASSIGN_OR_RETURN(Instant end, p.end().Add(s));
          TIP_ASSIGN_OR_RETURN(Period sp, Period::Make(start, end));
          shifted.push_back(sp);
        }
        return MakeElement(t, Element::FromPeriods(std::move(shifted)));
      })));
  return Status::OK();
}

}  // namespace

Status RegisterRoutines(engine::Database* db, const TipTypes& t) {
  engine::RoutineRegistry& reg = db->routines();
  TIP_RETURN_IF_ERROR(RegisterArithmetic(reg, t));
  TIP_RETURN_IF_ERROR(RegisterAllen(reg, t));
  TIP_RETURN_IF_ERROR(RegisterElementRoutines(reg, t));
  // The transaction time as a value — handy for tests and for queries
  // that want the statement's NOW explicitly.
  TIP_RETURN_IF_ERROR(reg.Register(Make(
      "transaction_time", {}, t.chronon,
      [t](const std::vector<Datum>&, EvalContext& ctx) -> Result<Datum> {
        return MakeChronon(t, ctx.tx.now);
      })));
  return Status::OK();
}

}  // namespace internal
}  // namespace tip::datablade
