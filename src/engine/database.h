#ifndef TIP_ENGINE_DATABASE_H_
#define TIP_ENGINE_DATABASE_H_

#include <cstddef>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <string_view>

#include "common/exec_guard.h"
#include "common/status.h"
#include "core/chronon.h"
#include "core/tx_context.h"
#include "engine/catalog/aggregate_registry.h"
#include "engine/catalog/cast_registry.h"
#include "engine/catalog/catalog.h"
#include "engine/catalog/routine_registry.h"
#include "engine/exec/parallel_exec.h"
#include "engine/exec/result_set.h"
#include "engine/types/type.h"

namespace tip::engine {

/// Host parameters for a statement (`:name` placeholders).
using Params = std::map<std::string, Datum, std::less<>>;

/// An embedded extensible relational database instance — the stand-in
/// for the Informix server TIP extends. A fresh Database knows only the
/// classic scalar types, operators and aggregates; installing the TIP
/// DataBlade (`tip::datablade::Install`) adds the five temporal types
/// and their routine/cast/aggregate catalog entries, after which SQL
/// statements can use them as if they were built in.
///
/// Thread-safety: concurrent Execute calls running read-only statements
/// (SELECT / EXPLAIN) are safe against each other and against SET NOW
/// from another thread — the NOW override sits behind a mutex and each
/// statement captures a single TxContext up front, so a query sees one
/// consistent NOW even if the override flips mid-run. Statements that
/// write (INSERT / UPDATE / DELETE / DDL) and changes to the other
/// session options must be serialized externally against all other
/// statements on the same Database.
class Database {
 public:
  Database();

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // Extension points (what the DataBlade API exposes).
  TypeRegistry& types() { return types_; }
  const TypeRegistry& types() const { return types_; }
  RoutineRegistry& routines() { return routines_; }
  CastRegistry& casts() { return casts_; }
  AggregateRegistry& aggregates() { return aggregates_; }
  Catalog& catalog() { return catalog_; }
  const Catalog& catalog() const { return catalog_; }

  /// Registers the access-method support function that maps values of
  /// `type` to their bounding interval and NOW-dependence (enables
  /// CREATE INDEX ... USING interval and the interval join on that
  /// type).
  Status RegisterIntervalKeyFn(TypeId type, IntervalKeyFn fn);

  /// Executes one SQL statement.
  Result<ResultSet> Execute(std::string_view sql);
  /// Executes with host parameters bound to `:name` placeholders.
  Result<ResultSet> Execute(std::string_view sql, const Params& params);

  /// Executes a ';'-separated script, stopping at the first error;
  /// returns the result of the last non-empty statement. Semicolons
  /// inside string literals are honoured.
  Result<ResultSet> ExecuteScript(std::string_view script);

  // -- Session state --------------------------------------------------------

  /// The transaction context the next statement will evaluate under:
  /// the NOW override if set (SET NOW '...'), else the system clock.
  TxContext CurrentTx() const;

  /// Overrides NOW for subsequent statements (the Browser's what-if
  /// mechanism); nullopt restores the system clock. Safe to call while
  /// other threads run read-only statements.
  void SetNowOverride(std::optional<Chronon> now);
  std::optional<Chronon> now_override() const {
    std::lock_guard<std::mutex> lock(session_mu_);
    return now_override_;
  }

  void set_hash_join_enabled(bool on) { enable_hash_join_ = on; }
  bool hash_join_enabled() const { return enable_hash_join_; }
  void set_interval_join_enabled(bool on) { enable_interval_join_ = on; }
  bool interval_join_enabled() const { return enable_interval_join_; }

  /// Degree of parallelism for eligible scans/aggregations/joins
  /// (SET PARALLEL_WORKERS n). 1 = serial plans only (the default).
  void set_parallel_workers(size_t n) { parallel_workers_ = n; }
  size_t parallel_workers() const { return parallel_workers_; }
  /// Minimum estimated scan input before a parallel plan is considered
  /// (SET PARALLEL_MIN_ROWS n).
  void set_parallel_min_rows(size_t n) { parallel_min_rows_ = n; }
  size_t parallel_min_rows() const { return parallel_min_rows_; }

  // -- Statement lifecycle ---------------------------------------------------

  /// Wall-clock budget for each subsequent statement
  /// (SET STATEMENT_TIMEOUT_MS n). 0 = unlimited (the default).
  void set_statement_timeout_ms(int64_t ms) { statement_timeout_ms_ = ms; }
  int64_t statement_timeout_ms() const { return statement_timeout_ms_; }

  /// Approximate memory budget for each subsequent statement's buffering
  /// (SET MEMORY_LIMIT_KB n). 0 = unlimited (the default).
  void set_memory_limit_kb(size_t kb) { memory_limit_kb_ = kb; }
  size_t memory_limit_kb() const { return memory_limit_kb_; }

  /// Requests cancellation of every statement currently executing on
  /// this Database. Thread-safe (the point of it: it is called from a
  /// different thread than the one stuck inside Execute). Statements
  /// abort at their next cooperative check with Status::Cancelled;
  /// statements that start after this call are unaffected.
  void CancelActiveStatements();

  /// Session-lifetime lifecycle event counters (timeouts, cancels, oom,
  /// parallel fallbacks), surfaced in SQL as tip_guard_stats().
  const GuardEvents& guard_events() const { return guard_events_; }

 private:
  Result<ResultSet> ExecuteParsed(const struct Statement& stmt,
                                  const Params* params);
  void RegisterGuard(ExecGuard* guard);
  void DeregisterGuard(ExecGuard* guard);

  TypeRegistry types_;
  RoutineRegistry routines_;
  CastRegistry casts_;
  AggregateRegistry aggregates_;
  Catalog catalog_;
  std::map<TypeId, IntervalKeyFn> interval_key_fns_;

  /// Guards now_override_ and active_guards_: the session state other
  /// threads may legitimately touch while queries run (the NOW-flip
  /// scenario the segmented index is built for, and cross-thread
  /// cancellation).
  mutable std::mutex session_mu_;
  std::optional<Chronon> now_override_;
  /// Guards of statements currently inside ExecuteParsed, so
  /// CancelActiveStatements can reach them from another thread. Entries
  /// are stack-owned by their Execute call and deregistered on unwind.
  std::set<ExecGuard*> active_guards_;
  int64_t statement_timeout_ms_ = 0;
  size_t memory_limit_kb_ = 0;
  /// SET STATEMENT_GUARD OFF disables guard creation entirely — the
  /// pre-guardrail execution path, kept addressable so the guard's
  /// overhead stays measurable in-binary (bench_guard_overhead).
  bool statement_guard_enabled_ = true;
  GuardEvents guard_events_;
  bool enable_hash_join_ = true;
  bool enable_interval_join_ = true;
  size_t parallel_workers_ = 1;
  size_t parallel_min_rows_ = 4096;
  /// Per-table counters from parallel runs, shown by EXPLAIN.
  ParallelStatsRegistry parallel_stats_;
  /// Names created via CREATE FUNCTION (the only ones DROP FUNCTION
  /// may remove).
  std::set<std::string> sql_functions_;
};

/// Registers the engine's builtin routines (arithmetic, string ops,
/// `greatest`/`least`, ...), casts and SQL aggregates into `db`. Called
/// by the Database constructor; exposed for tests.
Status RegisterBuiltins(Database* db);

}  // namespace tip::engine

#endif  // TIP_ENGINE_DATABASE_H_
