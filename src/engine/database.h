#ifndef TIP_ENGINE_DATABASE_H_
#define TIP_ENGINE_DATABASE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/exec_guard.h"
#include "common/status.h"
#include "core/chronon.h"
#include "core/tx_context.h"
#include "engine/catalog/aggregate_registry.h"
#include "engine/catalog/cast_registry.h"
#include "engine/catalog/catalog.h"
#include "engine/catalog/routine_registry.h"
#include "engine/exec/parallel_exec.h"
#include "engine/exec/prepared_plan.h"
#include "engine/exec/result_set.h"
#include "engine/session_context.h"
#include "engine/storage/wal.h"
#include "engine/types/type.h"

namespace tip::engine {

/// How AttachDurableDir treats corruption it finds on disk:
///   kStrict   any corruption refuses the whole open (the default).
///   kSalvage  tables whose snapshot section or replay records are
///             corrupt are quarantined — served as explicit Corruption
///             errors until dropped — and everything else is recovered.
enum class RecoveryMode { kStrict, kSalvage };

/// Parses "strict|salvage" (lower-case); InvalidArgument else.
Result<RecoveryMode> ParseRecoveryMode(std::string_view word);

/// One corrupt object a salvage-mode open could not recover: what it
/// was, where the damage sits (file, LSN for WAL records, byte offset
/// for snapshot sections) and why it was rejected.
struct CorruptionManifestEntry {
  std::string object;  // table name, or "wal"/"snapshot" for structure
  std::string file;
  uint64_t lsn = 0;     // 0 when the damage is not a WAL record
  uint64_t offset = 0;  // byte offset; 0 when unknown
  std::string cause;
};

/// What Database::AttachDurableDir found on disk and did about it.
struct RecoveryReport {
  bool created = false;          // fresh directory: no snapshot, no WAL
  bool snapshot_loaded = false;  // a checkpoint snapshot was restored
  uint64_t checkpoint_lsn = 1;   // WAL records below this were skipped
  uint64_t wal_records_replayed = 0;
  bool torn_tail = false;        // the WAL ended mid-append and was truncated
  uint64_t torn_bytes_truncated = 0;
  uint64_t txns_replayed = 0;    // committed transaction brackets applied
  /// Records inside uncommitted or aborted brackets, discarded instead
  /// of applied (the bracket records themselves included).
  uint64_t txn_records_discarded = 0;
  // -- Salvage-mode outcomes (all zero on a strict open) ---------------
  bool salvage = false;               // the open ran in salvage mode
  uint64_t tables_quarantined = 0;
  uint64_t records_skipped = 0;       // WAL records for quarantined tables
  std::vector<CorruptionManifestEntry> manifest;
};

/// Durability counters, surfaced in SQL as tip_wal_stats() and in
/// EXPLAIN output (same shape as tip_index_stats / tip_guard_stats).
struct DurabilityStats {
  WalStatsSnapshot wal;  // append-path counters from the live WAL
  uint64_t wal_next_lsn = 0;  // the LSN the next append gets (0: no WAL)
  uint64_t checkpoints = 0;
  uint64_t recoveries_run = 0;
  uint64_t records_replayed = 0;
  uint64_t torn_tail_truncations = 0;
  uint64_t txns_committed = 0;
  uint64_t txns_rolled_back = 0;  // explicit ROLLBACK and error aborts
  uint64_t txn_records_discarded = 0;  // by recovery, uncommitted/aborted
};

/// Integrity counters, surfaced in SQL as tip_health() and in EXPLAIN
/// as IntegrityStats(...).
struct IntegrityStats {
  uint64_t scrubs_run = 0;         // CHECK TABLE/DATABASE statements
  uint64_t objects_checked = 0;    // tables + WAL scans across all scrubs
  uint64_t corruptions_found = 0;  // non-ok findings across all scrubs
  uint64_t tables_quarantined = 0; // currently quarantined
  uint64_t scrub_ticks = 0;        // background scrub steps (SET scrub on)
};

/// Counters for the multi-session server front-end (src/server), owned
/// by the Database so the SQL observability surface — tip_server_stats()
/// and EXPLAIN's ServerStats row — works identically whether the
/// statement arrives embedded or over the wire. The server (tipd) bumps
/// them; any session may read them concurrently, hence atomics.
struct ServerStatsCounters {
  std::atomic<uint64_t> sessions_active{0};
  std::atomic<uint64_t> sessions_peak{0};
  std::atomic<uint64_t> sessions_total{0};    // ever admitted
  std::atomic<uint64_t> sessions_rejected{0}; // admission refusals
  std::atomic<uint64_t> statements_served{0};
  std::atomic<uint64_t> bytes_in{0};
  std::atomic<uint64_t> bytes_out{0};
  std::atomic<uint64_t> drains{0};            // graceful shutdowns
  std::atomic<uint64_t> session_aborts{0};    // fail-stop session deaths
  std::atomic<uint64_t> cancels_received{0};  // remote tip_cancel frames
  std::atomic<uint64_t> idle_timeouts{0};     // sessions reaped idle
  std::atomic<uint64_t> wire_faults{0};       // injected/real wire errors
  // -- Shared/exclusive gate counters (PR 10) --------------------------
  std::atomic<uint64_t> gate_shared{0};       // shared acquisitions
  std::atomic<uint64_t> gate_exclusive{0};    // exclusive acquisitions
  std::atomic<uint64_t> gate_upgrades{0};     // shared→exclusive upgrades
  std::atomic<uint64_t> gate_wait_shared_ms{0};
  std::atomic<uint64_t> gate_wait_exclusive_ms{0};
  std::atomic<uint64_t> gate_busy_shared{0};     // "server busy" (shared)
  std::atomic<uint64_t> gate_busy_exclusive{0};  // "server busy" (excl.)

  /// Gates the EXPLAIN ServerStats row on "a server has ever touched
  /// this database" — deliberately not a sum over every counter.
  uint64_t total() const {
    return sessions_total.load(std::memory_order_relaxed) +
           sessions_rejected.load(std::memory_order_relaxed) +
           statements_served.load(std::memory_order_relaxed) +
           drains.load(std::memory_order_relaxed);
  }
};

/// Host parameters for a statement (`:name` placeholders).
using Params = std::map<std::string, Datum, std::less<>>;

struct Statement;

/// How a statement interacts with shared state, from the server gate's
/// point of view: readers may run concurrently with each other, writers
/// need the database to themselves.
enum class StatementClass { kReader, kWriter };

/// An embedded extensible relational database instance — the stand-in
/// for the Informix server TIP extends. A fresh Database knows only the
/// classic scalar types, operators and aggregates; installing the TIP
/// DataBlade (`tip::datablade::Install`) adds the five temporal types
/// and their routine/cast/aggregate catalog entries, after which SQL
/// statements can use them as if they were built in.
///
/// Thread-safety: concurrent Execute calls running read-only statements
/// (SELECT / EXPLAIN, per Classify) are safe against each other and
/// against SET NOW from another thread — each statement captures a
/// single TxContext up front from its SessionContext, so a query sees
/// one consistent NOW even if another session's override differs or
/// flips mid-run. Statements that write (INSERT / UPDATE / DELETE /
/// DDL) and changes to the non-session-scoped options must be
/// serialized externally against ALL other statements on the same
/// Database — that is the server gate's job (DESIGN.md §13). Sessions:
/// every entry point takes an optional SessionContext*; passing null
/// uses the built-in global session, which keeps the embedded
/// single-threaded API exactly as before. Many sessions may hold open
/// read-only transactions at once; at most one transaction may write
/// (the single writer slot is claimed at the first write statement,
/// which the caller must have serialized exclusively).
class Database {
 public:
  Database();

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // Extension points (what the DataBlade API exposes).
  TypeRegistry& types() { return types_; }
  const TypeRegistry& types() const { return types_; }
  RoutineRegistry& routines() { return routines_; }
  CastRegistry& casts() { return casts_; }
  AggregateRegistry& aggregates() { return aggregates_; }
  Catalog& catalog() { return catalog_; }
  const Catalog& catalog() const { return catalog_; }

  /// Registers the access-method support function that maps values of
  /// `type` to their bounding interval and NOW-dependence (enables
  /// CREATE INDEX ... USING interval and the interval join on that
  /// type).
  Status RegisterIntervalKeyFn(TypeId type, IntervalKeyFn fn);

  /// Executes one SQL statement.
  Result<ResultSet> Execute(std::string_view sql);
  /// Executes with host parameters bound to `:name` placeholders.
  Result<ResultSet> Execute(std::string_view sql, const Params& params);
  /// Master overload: executes on behalf of `session` (null = the
  /// global session). The server passes its per-connection context
  /// here so concurrent readers ground NOW and arm guards from their
  /// own session, not shared fields.
  Result<ResultSet> Execute(std::string_view sql, const Params* params,
                            SessionContext* session);

  /// Classifies a parsed statement for the server's shared/exclusive
  /// gate. SELECT/EXPLAIN are readers unless the text invokes a
  /// side-effectful routine (tip_checkpoint, tip_sync_wal, tip_verify);
  /// BEGIN/COMMIT/ROLLBACK and session-scoped SETs are readers; all DML,
  /// DDL, CHECK and global SETs are writers.
  static StatementClass Classify(const Statement& stmt, std::string_view sql);

  // -- Prepared statements ---------------------------------------------------

  /// Parses `sql` once and returns a shared prepared handle: parse
  /// errors surface here (eagerly), and for SELECTs the planned
  /// operator tree is built lazily on first execution and reused by
  /// every later one. With the plan cache enabled, SELECT handles are
  /// shared with (and retrieved from) the text-keyed cache, so repeated
  /// Execute(sql) calls and explicit Prepare users converge on the same
  /// plan.
  Result<std::shared_ptr<const PreparedPlan>> Prepare(
      std::string_view sql, SessionContext* session = nullptr);

  /// Executes a prepared handle under fresh parameter bindings. SELECTs
  /// reuse the cached operator tree when the catalog version, session
  /// settings and parameter types still match the plan (re-grounding
  /// NOW through a fresh TxContext each time); otherwise they re-plan
  /// transparently — a dropped table fails cleanly rather than touching
  /// a dangling pointer. Other statement kinds skip the parser and
  /// re-plan from the stored AST per execution.
  Result<ResultSet> ExecutePrepared(const PreparedPlan& plan,
                                    const Params* params = nullptr,
                                    SessionContext* session = nullptr);

  /// SET plan_cache on|off: when off, Execute(sql) parses and plans
  /// from scratch (the pre-cache behavior) and Prepare stops consulting
  /// the shared text cache; explicit prepared handles keep their
  /// variants — caching is their contract.
  void set_plan_cache_enabled(bool on) { plan_cache_enabled_ = on; }
  bool plan_cache_enabled() const { return plan_cache_enabled_; }
  /// SET plan_cache_size n: capacity of the text-keyed LRU cache.
  void set_plan_cache_size(size_t n) {
    plan_cache_.SetCapacity(n, &plan_cache_stats_);
  }
  const PlanCacheStats& plan_cache_stats() const { return plan_cache_stats_; }
  size_t plan_cache_entries() const { return plan_cache_.entries(); }
  size_t plan_cache_capacity() const { return plan_cache_.capacity(); }

  /// Monotonic version of everything cached plans resolve against:
  /// tables, indexes, routines, casts, aggregates, interval key
  /// functions. Bumped by DDL, function/cast/aggregate registration,
  /// ATTACH and wal_mode re-baselining; plan variants carry the version
  /// they were planned under and are invalidated on mismatch.
  uint64_t catalog_version() const {
    return catalog_version_.load(std::memory_order_acquire);
  }
  /// Public for extension code that mutates catalog state behind the
  /// registries' backs; harmless to call spuriously (plans re-plan).
  void BumpCatalogVersion() {
    catalog_version_.fetch_add(1, std::memory_order_acq_rel);
  }

  /// Executes a ';'-separated script, stopping at the first error;
  /// returns the result of the last non-empty statement. Semicolons
  /// inside string literals are honoured.
  Result<ResultSet> ExecuteScript(std::string_view script);

  // -- Session state --------------------------------------------------------

  /// The transaction context the next statement on `session` (null =
  /// the global session) will evaluate under: the session's open
  /// transaction's pinned NOW if one is open, else its NOW override if
  /// set (SET NOW '...'), else the system clock.
  TxContext CurrentTx(const SessionContext* session = nullptr) const;

  /// Overrides NOW for subsequent statements on `session` (the
  /// Browser's what-if mechanism); nullopt restores the system clock.
  /// Safe to call while other threads run read-only statements.
  void SetNowOverride(std::optional<Chronon> now,
                      SessionContext* session = nullptr);
  std::optional<Chronon> now_override(
      const SessionContext* session = nullptr) const {
    std::lock_guard<std::mutex> lock(session_mu_);
    return Sess(session)->now;
  }

  void set_hash_join_enabled(bool on) { enable_hash_join_ = on; }
  bool hash_join_enabled() const { return enable_hash_join_; }
  void set_interval_join_enabled(bool on) { enable_interval_join_ = on; }
  bool interval_join_enabled() const { return enable_interval_join_; }

  /// Degree of parallelism for eligible scans/aggregations/joins
  /// (SET PARALLEL_WORKERS n). 1 = serial plans only (the default).
  void set_parallel_workers(size_t n) { global_session_.parallel_workers = n; }
  size_t parallel_workers() const {
    return global_session_.parallel_workers.load();
  }
  /// Minimum estimated scan input before a parallel plan is considered
  /// (SET PARALLEL_MIN_ROWS n).
  void set_parallel_min_rows(size_t n) {
    global_session_.parallel_min_rows = n;
  }
  size_t parallel_min_rows() const {
    return global_session_.parallel_min_rows.load();
  }

  // -- Transactions ----------------------------------------------------------

  /// BEGIN [WORK]: opens a multi-statement transaction. The transaction
  /// pins one TxContext at BEGIN time — every statement inside it
  /// evaluates under that NOW, even if SetNowOverride flips the session
  /// override meanwhile (the override re-applies at COMMIT/ROLLBACK;
  /// SQL `SET NOW` inside a transaction is refused outright). DML takes
  /// an undo image of each table on first touch, and the first logged
  /// write opens a TXN_BEGIN bracket in the WAL. DDL, SET wal_mode and
  /// checkpoints are refused while any transaction is open.
  ///
  /// Any number of sessions may hold open transactions concurrently as
  /// long as at most one of them writes: the undo/WAL machinery (the
  /// single writer slot) is claimed lazily at the transaction's first
  /// write statement, which the server runs under the exclusive gate.
  Status BeginTransaction(SessionContext* session = nullptr);

  /// COMMIT: appends TXN_COMMIT under the session's wal_mode (the
  /// transaction's records reach disk per that mode at the commit
  /// point) and discards the undo log. If the commit record cannot be
  /// written the transaction is rolled back and the error returned.
  /// Read-only transactions (writer slot never claimed) just drop
  /// their pin.
  Status CommitTransaction(SessionContext* session = nullptr);

  /// ROLLBACK: restores every touched table from its undo image (heap
  /// contents and interval indexes return to the pre-BEGIN state) and
  /// rewinds the WAL to the pre-bracket mark, un-assigning the
  /// transaction's LSNs.
  Status RollbackTransaction(SessionContext* session = nullptr);

  /// True between BEGIN and COMMIT/ROLLBACK on `session`. Thread-safe:
  /// reads the session's pin under the session mutex.
  bool InTransaction(const SessionContext* session = nullptr) const {
    std::lock_guard<std::mutex> lock(session_mu_);
    return Sess(session)->txn_pin.has_value();
  }

  // -- Statement lifecycle ---------------------------------------------------

  /// Wall-clock budget for each subsequent statement
  /// (SET STATEMENT_TIMEOUT_MS n). 0 = unlimited (the default).
  void set_statement_timeout_ms(int64_t ms) {
    global_session_.statement_timeout_ms = ms;
  }
  int64_t statement_timeout_ms() const {
    return global_session_.statement_timeout_ms.load();
  }

  /// Approximate memory budget for each subsequent statement's buffering
  /// (SET MEMORY_LIMIT_KB n). 0 = unlimited (the default).
  void set_memory_limit_kb(size_t kb) {
    global_session_.memory_limit_kb = kb;
  }
  size_t memory_limit_kb() const {
    return global_session_.memory_limit_kb.load();
  }

  /// Requests cancellation of every statement currently executing on
  /// this Database. Thread-safe (the point of it: it is called from a
  /// different thread than the one stuck inside Execute). Statements
  /// abort at their next cooperative check with Status::Cancelled;
  /// statements that start after this call are unaffected.
  void CancelActiveStatements();

  /// Like CancelActiveStatements, but only statements executing on
  /// behalf of `session` — the server's remote-cancel targets one
  /// connection, not the whole fleet.
  void CancelSessionStatements(const SessionContext* session);

  /// Session-lifetime lifecycle event counters (timeouts, cancels, oom,
  /// parallel fallbacks), surfaced in SQL as tip_guard_stats().
  const GuardEvents& guard_events() const { return guard_events_; }

  // -- Durability ------------------------------------------------------------

  /// Attaches `dir` as this database's durable home and runs crash
  /// recovery: reads the checkpoint metadata, restores its snapshot and
  /// CREATE FUNCTION statements, replays the write-ahead log past the
  /// checkpoint LSN (truncating a torn tail first), and warms the
  /// interval indexes once at the end. Must be called on a database
  /// with no tables yet (install extensions first, then attach).
  /// Afterwards every DML/DDL statement is logged before it is
  /// acknowledged, according to wal_mode().
  ///
  /// `mode` picks the corruption policy: kStrict (default) refuses the
  /// open on any damage; kSalvage quarantines the tables whose snapshot
  /// section or replay records are corrupt, records each rejection in
  /// the report's corruption manifest, and recovers everything else.
  /// Damage to the checkpoint metadata itself stays fatal in both modes
  /// (it is tiny and atomically written — damage there is not
  /// survivable bit rot but a broken deployment). Every salvage-mode
  /// attach bumps the catalog version, so cached plans never execute
  /// against a quarantined or replaced table.
  Status AttachDurableDir(const std::string& dir,
                          RecoveryReport* report = nullptr,
                          RecoveryMode mode = RecoveryMode::kStrict);
  bool durable() const { return wal_ != nullptr; }
  const std::string& durable_dir() const { return durable_dir_; }

  /// Takes a checkpoint: writes snapshot.<lsn>.tip, atomically
  /// publishes the CHECKPOINT metadata (snapshot name + LSN + live
  /// CREATE FUNCTION statements), then truncates the WAL by rotating it
  /// to a fresh file starting at <lsn>. A crash anywhere in between
  /// recovers from whichever checkpoint was last published. Fault
  /// points: "checkpoint.begin", "checkpoint.commit", plus the
  /// "snapshot.*", "checkpoint.meta.*" and "wal.rotate*" write steps.
  /// Checkpoints serialize on an internal mutex, so concurrent callers
  /// (tip_checkpoint() evaluated per-row or from parallel workers) run
  /// one at a time instead of racing on the CHECKPOINT metadata and the
  /// stale-snapshot sweep.
  Status Checkpoint();

  /// SET WAL_MODE off|async|group|sync (applies to the next statement).
  /// On a durable database, leaving a buffered mode first syncs the
  /// pending group-commit tail, and any transition into or out of `off`
  /// forces a Checkpoint(): records appended after an unlogged gap
  /// would encode ordinals against a state the log never saw, so the
  /// log must be re-baselined at the boundary. If that checkpoint
  /// fails, the transition is refused and the mode is unchanged.
  Status set_wal_mode(WalMode mode);
  WalMode wal_mode() const { return wal_mode_; }

  /// SET WAL_GROUP_SIZE n: records per fsync in group mode.
  void set_wal_group_size(uint64_t n);
  uint64_t wal_group_size() const { return wal_group_size_; }

  /// Forces the group-commit tail to disk. OK when not durable.
  Status SyncWal();

  /// Counters for tip_wal_stats(); `wal` is live only when durable.
  DurabilityStats durability_stats() const;

  // -- Integrity -------------------------------------------------------------

  /// SET TABLE_CHECKSUMS on|off: whether the per-table incremental
  /// content checksums are maintained on the write path. Default on.
  /// Turning them off marks every subsequently-written table's checksum
  /// unmaintained; CHECK TABLE reseeds it once they are back on.
  void set_table_checksums_enabled(bool on) {
    table_checksums_enabled_ = on;
  }
  bool table_checksums_enabled() const { return table_checksums_enabled_; }

  /// SET SCRUB on|off: background scrub scheduling. While on, every
  /// successful Checkpoint() also walks ONE table's online CHECK
  /// (round-robin over the catalog, one table per checkpoint interval),
  /// feeding the tip_health() counters and — on a corrupt finding — the
  /// corruption manifest, so rot surfaces without waiting for an
  /// on-demand CHECK DATABASE. Default off.
  void set_scrub_enabled(bool on) { scrub_enabled_ = on; }
  bool scrub_enabled() const { return scrub_enabled_; }

  /// One background-scrub step: CHECKs the next table in round-robin
  /// order (no-op when the catalog is empty or every table is
  /// quarantined). Returns the name of the table scrubbed, "" when
  /// there was nothing to scrub. Exposed so the server's housekeeping
  /// (and tests) can drive scrubbing without a checkpoint; Checkpoint()
  /// calls it automatically while SET scrub is on. Must be serialized
  /// with writers, like any statement.
  Result<std::string> ScrubTick();

  /// Counters for tip_health() / EXPLAIN IntegrityStats(...).
  IntegrityStats integrity_stats() const;

  /// Counters for tip_server_stats() / EXPLAIN ServerStats(...). The
  /// mutable overload is the server front-end's hook; everything else
  /// should treat them as read-only.
  ServerStatsCounters& server_stats() { return server_stats_; }
  const ServerStatsCounters& server_stats() const { return server_stats_; }

  /// The corruption manifest from the last salvage-mode attach (empty
  /// after a strict or clean open).
  std::vector<CorruptionManifestEntry> corruption_manifest() const;

  /// Bumps the scrub counters; called by the CHECK executor.
  void RecordScrub(uint64_t objects_checked, uint64_t corruptions_found);

 private:
  /// Wraps ExecuteStatement with the transaction error contract: a
  /// statement failing with a lifecycle or I/O status inside an open
  /// transaction aborts the whole transaction (the caller cannot know
  /// how much of the statement ran); plain validation errors leave it
  /// open (statement-level atomicity already restored the tables).
  Result<ResultSet> ExecuteParsed(const Statement& stmt, const Params* params,
                                  std::string_view sql,
                                  SessionContext* session);
  Result<ResultSet> ExecuteStatement(const Statement& stmt,
                                     const Params* params,
                                     std::string_view sql,
                                     SessionContext* session);
  /// The prepared SELECT fast path: find or build a plan variant, then
  /// run the cached tree under a fresh EvalContext.
  Result<ResultSet> ExecutePreparedSelect(const PreparedPlan& plan,
                                          const Params* params,
                                          SessionContext* session);
  /// Plans one variant of a prepared SELECT under the current catalog.
  Result<std::shared_ptr<PreparedPlan::Variant>> PlanPreparedVariant(
      const PreparedPlan& plan, const Params* params, uint64_t version,
      std::string settings_fingerprint, std::string param_signature,
      SessionContext* session);
  /// The session-settings half of the plan-cache key: everything the
  /// planner reads besides the catalog (join toggles, parallel knobs,
  /// guard switch).
  std::string SettingsFingerprint(const SessionContext* session) const;
  PlannerContext MakePlannerContext(const Params* params,
                                    SessionContext* session);
  /// Shared auto-abort contract for both execution paths (see
  /// ExecuteParsed).
  Result<ResultSet> ApplyTxnErrorContract(Result<ResultSet> result,
                                          SessionContext* session);

  /// Maps null to the built-in global session (the embedded client and
  /// the C API never construct a SessionContext of their own).
  SessionContext* Sess(SessionContext* s) {
    return s != nullptr ? s : &global_session_;
  }
  const SessionContext* Sess(const SessionContext* s) const {
    return s != nullptr ? s : &global_session_;
  }

  /// True when the statement being executed must be appended to the
  /// WAL: a log is attached, logging is on, and we are not replaying
  /// (recovery re-executes statements through the same code paths).
  bool ShouldLogWal() const {
    return wal_ != nullptr && !replaying_ && wal_mode_ != WalMode::kOff;
  }
  Status AppendWal(WalRecordKind kind, std::string_view body);
  /// Logs an already-applied DDL statement; on a WAL failure runs
  /// `undo` so the in-memory state never gets ahead of the durable log
  /// (a logged-but-failed or applied-but-unlogged statement would make
  /// replay diverge from the acknowledged history).
  Status LogAppliedDdl(std::string_view sql,
                       const std::function<void()>& undo);
  void RegisterGuard(ExecGuard* guard, const SessionContext* session);
  void DeregisterGuard(ExecGuard* guard);

  /// Arms the per-statement lifecycle guard on `eval` (deadline, cancel
  /// visibility, memory budget) and deregisters it on unwind; a no-op
  /// when SET statement_guard off. Shared by the one-shot and prepared
  /// execution paths so both honour the same contract.
  class GuardArm {
   public:
    GuardArm(Database* db, EvalContext* eval, SessionContext* session);
    ~GuardArm();
    GuardArm(const GuardArm&) = delete;
    GuardArm& operator=(const GuardArm&) = delete;

   private:
    Database* db_;
    ExecGuard guard_;
    bool registered_ = false;
  };

  /// Undo/WAL state of the writing transaction — the single writer
  /// slot. Owned by whichever session first writes inside its
  /// transaction (ClaimWriterTxn); read-only transactions never
  /// materialize one. Touched only by the writing statement's thread,
  /// which the server serializes under the exclusive gate.
  struct TxnState {
    TxContext tx;            // pinned at BEGIN; every statement's NOW
    bool bracketed = false;  // TXN_BEGIN has been appended to the WAL
    WalMark mark;            // the log tail just before the bracket
    /// Undo images: each touched table's live rows at first touch.
    std::map<std::string, std::vector<Row>, std::less<>> undo;
  };
  /// Materializes the writer slot for `session`'s open transaction (a
  /// no-op when this session already owns it, or when no transaction
  /// is open). Called at the top of every write statement; refuses
  /// when a different session's transaction already owns the slot —
  /// callers are expected to have serialized writers so this never
  /// fires in a correctly-gated server.
  Status ClaimWriterTxn(SessionContext* session);
  /// Lazily opens the WAL bracket before the transaction's first
  /// logged write (read-only transactions never touch the log).
  Status EnsureTxnWalBracket();
  /// Saves `table`'s rows into the undo log at first touch.
  void CaptureTxnUndo(Table* table);
  /// InvalidArgument("<what> is not allowed inside a transaction") when
  /// any session's transaction is open, OK otherwise. Accurate for the
  /// statements that use it (DDL, wal_mode, checkpoint): they run under
  /// the exclusive gate, so the open-txn count cannot change mid-check.
  Status RefuseInTransaction(std::string_view what) const;
  /// True for statuses that must take the open transaction down with
  /// them (cancel/timeout/memory per the guard contract, and I/O
  /// failures whose progress is unknowable).
  static bool IsTxnFatal(StatusCode code);

  TypeRegistry types_;
  RoutineRegistry routines_;
  CastRegistry casts_;
  AggregateRegistry aggregates_;
  Catalog catalog_;
  std::map<TypeId, IntervalKeyFn> interval_key_fns_;

  /// Guards every SessionContext's mutex-class fields (NOW override,
  /// txn pin) and active_guards_: the session state other threads may
  /// legitimately touch while queries run (the NOW-flip scenario the
  /// segmented index is built for, cross-thread cancellation, and
  /// checkpoints probing for open transactions). One mutex for all
  /// sessions — these fields change once per statement, not per row.
  mutable std::mutex session_mu_;
  /// The built-in session that null-session entry points act on: the
  /// embedded client, the C API and most tests. Mutable so const
  /// accessors (CurrentTx) can lock-read it like any other session.
  mutable SessionContext global_session_;
  /// Guards of statements currently inside ExecuteParsed, tagged with
  /// the session they run for, so CancelActiveStatements (all) and
  /// CancelSessionStatements (one session) can reach them from another
  /// thread. Entries are stack-owned by their Execute call and
  /// deregistered on unwind.
  std::map<ExecGuard*, const SessionContext*> active_guards_;
  /// Count of sessions currently between BEGIN and COMMIT/ROLLBACK —
  /// the multi-session replacement for "is txn_ set" in the global
  /// refusal checks (DDL / wal_mode / checkpoint / ATTACH).
  std::atomic<int> open_txns_{0};
  /// SET STATEMENT_GUARD OFF disables guard creation entirely — the
  /// pre-guardrail execution path, kept addressable so the guard's
  /// overhead stays measurable in-binary (bench_guard_overhead).
  std::atomic<bool> statement_guard_enabled_{true};
  GuardEvents guard_events_;
  std::atomic<bool> enable_hash_join_{true};
  std::atomic<bool> enable_interval_join_{true};
  /// Per-table counters from parallel runs, shown by EXPLAIN.
  ParallelStatsRegistry parallel_stats_;
  /// See catalog_version(); acq_rel so a bump from the (externally
  /// serialized) DDL statement is visible to concurrent readers before
  /// they trust a cached variant.
  std::atomic<uint64_t> catalog_version_{0};
  /// Atomic like the other session settings: read by concurrent
  /// statements while SET flips it.
  std::atomic<bool> plan_cache_enabled_{true};
  PlanCache plan_cache_;
  PlanCacheStats plan_cache_stats_;
  /// Names created via CREATE FUNCTION (the only ones DROP FUNCTION
  /// may remove).
  std::set<std::string> sql_functions_;

  // -- Durability state ------------------------------------------------------
  /// Serializes Checkpoint() against itself; everything else about
  /// checkpointing still assumes writers are serialized externally.
  mutable std::mutex checkpoint_mu_;
  std::string durable_dir_;
  std::unique_ptr<Wal> wal_;
  /// Atomic for the same reason as the session settings above:
  /// tip_wal_stats()/EXPLAIN format the mode from reader threads.
  std::atomic<WalMode> wal_mode_{WalMode::kGroup};
  std::atomic<uint64_t> wal_group_size_{Wal::kDefaultGroupRecords};
  /// True while AttachDurableDir restores state: suppresses re-logging
  /// of the statements being replayed.
  bool replaying_ = false;
  /// CREATE FUNCTION text by function name, carried in the checkpoint
  /// metadata because snapshots store only tables.
  std::map<std::string, std::string> sql_function_ddl_;
  /// Atomics, not plain counters: tip_wal_stats() and EXPLAIN read them
  /// from concurrent read-only sessions while tip_checkpoint() or a
  /// commit bumps them.
  struct DurabilityCounters {
    std::atomic<uint64_t> checkpoints{0};
    std::atomic<uint64_t> recoveries_run{0};
    std::atomic<uint64_t> records_replayed{0};
    std::atomic<uint64_t> torn_tail_truncations{0};
    std::atomic<uint64_t> txns_committed{0};
    std::atomic<uint64_t> txns_rolled_back{0};
    std::atomic<uint64_t> txn_records_discarded{0};
  };
  DurabilityCounters durability_;
  /// Write-path checksum switch; read by the row hasher on every
  /// logged write, flipped by SET TABLE_CHECKSUMS.
  std::atomic<bool> table_checksums_enabled_{true};
  /// Scrub counters (atomics for the same stats-poll reason as above).
  struct IntegrityCounters {
    std::atomic<uint64_t> scrubs_run{0};
    std::atomic<uint64_t> objects_checked{0};
    std::atomic<uint64_t> corruptions_found{0};
    std::atomic<uint64_t> scrub_ticks{0};
  };
  IntegrityCounters integrity_;
  /// Background scrub scheduling (SET scrub on|off) and its round-robin
  /// position: the last table name scrubbed, "" before the first tick.
  std::atomic<bool> scrub_enabled_{false};
  std::string scrub_cursor_;
  /// Server front-end counters; bumped by tip::server, read anywhere.
  ServerStatsCounters server_stats_;
  /// Guards corruption_manifest_ (written once at attach, read by
  /// tip_health() from any session).
  mutable std::mutex integrity_mu_;
  std::vector<CorruptionManifestEntry> corruption_manifest_;
  /// The writer slot (see TxnState). txn_session_ names the session
  /// whose transaction owns it; atomic so AppendWal and ClaimWriterTxn
  /// can compare identities without the session mutex.
  std::unique_ptr<TxnState> txn_;
  std::atomic<const SessionContext*> txn_session_{nullptr};
};

/// Registers the engine's builtin routines (arithmetic, string ops,
/// `greatest`/`least`, ...), casts and SQL aggregates into `db`. Called
/// by the Database constructor; exposed for tests.
Status RegisterBuiltins(Database* db);

}  // namespace tip::engine

#endif  // TIP_ENGINE_DATABASE_H_
