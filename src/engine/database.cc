#include "engine/database.h"

#include <algorithm>
#include <cassert>
#include <utility>
#include <vector>

#include "common/crc32.h"
#include "common/durable_fs.h"
#include "common/fault_injection.h"
#include "common/string_util.h"
#include "engine/exec/exec_node.h"
#include "engine/exec/planner.h"
#include "engine/exec/row_utils.h"
#include "engine/sql/ast.h"
#include "engine/sql/parser.h"
#include "engine/storage/integrity.h"
#include "engine/storage/recovery.h"
#include "engine/storage/snapshot.h"

namespace tip::engine {

namespace {

// Renders the value of a SET statement as a plain word: a bare
// identifier, a string literal, or an integer.
Result<std::string> SetValueWord(const Expr& value) {
  switch (value.kind) {
    case ExprKind::kColumnRef:
      if (value.qualifier.empty()) return ToLowerAscii(value.text);
      break;
    case ExprKind::kLiteral:
      switch (value.literal_kind) {
        case LiteralKind::kString:
          return value.text;
        case LiteralKind::kInt:
          return std::to_string(value.int_value);
        case LiteralKind::kBool:
          return std::string(value.bool_value ? "on" : "off");
        default:
          break;
      }
      break;
    default:
      break;
  }
  return Status::InvalidArgument("unsupported SET value");
}

Result<bool> ParseOnOff(const std::string& word) {
  if (word == "on" || word == "true" || word == "1") return true;
  if (word == "off" || word == "false" || word == "0") return false;
  return Status::InvalidArgument("expected ON or OFF, got '" + word + "'");
}

Result<int64_t> ParseCount(const std::string& word) {
  if (word.empty()) {
    return Status::InvalidArgument("expected a non-negative integer");
  }
  int64_t v = 0;
  for (char ch : word) {
    if (ch < '0' || ch > '9') {
      return Status::InvalidArgument(
          "expected a non-negative integer, got '" + word + "'");
    }
    v = v * 10 + (ch - '0');
    if (v > 1000000000) {
      return Status::InvalidArgument("value out of range: '" + word + "'");
    }
  }
  return v;
}

}  // namespace

Result<RecoveryMode> ParseRecoveryMode(std::string_view word) {
  if (word == "strict") return RecoveryMode::kStrict;
  if (word == "salvage") return RecoveryMode::kSalvage;
  return Status::InvalidArgument("unknown recovery mode '" +
                                 std::string(word) +
                                 "' (want strict or salvage)");
}

Database::Database() {
  Status status = RegisterBuiltins(this);
  // Builtin registration can only fail on duplicate registration, which
  // would be a programming error in the engine itself.
  (void)status;
  assert(status.ok());
  // Per-table content checksums: every heap maintains an incremental
  // sum of per-row hashes, where the hash is CRC-32 over the same row
  // image the WAL logs — the write path and the log can never disagree
  // about what bytes a row "is". The hasher declines (nullopt) while
  // SET table_checksums off, which flags the checksum unmaintained
  // until the next CHECK reseeds it. "integrity.rowhash" is the fault
  // matrix's checksum corruption site: a fired fault perturbs the hash
  // exactly as a flipped bit in the row image would.
  catalog_.SetRowHasher([this](const Row& row) -> std::optional<uint64_t> {
    if (!table_checksums_enabled_.load(std::memory_order_relaxed)) {
      return std::nullopt;
    }
    std::string image;
    EncodeRowImage(row, types_, &image);
    uint64_t hash = Crc32(image);
    if (!fault::MaybeFail("integrity.rowhash").ok()) hash ^= 1;
    return hash;
  });
  // Cached plans hold raw pointers into these registries (Table*,
  // Routine*, Cast*, AggregateDef*), so every mutation must bump the
  // catalog version before a cached variant is trusted again. Installed
  // for the lifetime of the database; bumps during DataBlade install or
  // recovery replay are harmless (plans simply re-plan once).
  auto bump = [this] { BumpCatalogVersion(); };
  catalog_.SetChangeListener(bump);
  routines_.SetChangeListener(bump);
  casts_.SetChangeListener(bump);
  aggregates_.SetChangeListener(bump);
}

Status Database::RegisterIntervalKeyFn(TypeId type, IntervalKeyFn fn) {
  if (interval_key_fns_.count(type) > 0) {
    return Status::AlreadyExists("interval key function already registered "
                                 "for this type");
  }
  interval_key_fns_.emplace(type, std::move(fn));
  // A new access method changes which plans an index scan is legal for.
  BumpCatalogVersion();
  return Status::OK();
}

TxContext Database::CurrentTx(const SessionContext* session) const {
  std::lock_guard<std::mutex> lock(session_mu_);
  const SessionContext* s = Sess(session);
  // The paper grounds NOW against the *transaction* time: while the
  // session's transaction is open its pinned context is authoritative,
  // and a NOW override flipped meanwhile waits for it to close.
  if (s->txn_pin.has_value()) return *s->txn_pin;
  if (s->now.has_value()) return TxContext(*s->now);
  return TxContext::FromSystemClock();
}

void Database::SetNowOverride(std::optional<Chronon> now,
                              SessionContext* session) {
  std::lock_guard<std::mutex> lock(session_mu_);
  Sess(session)->now = now;
}

void Database::CancelActiveStatements() {
  std::lock_guard<std::mutex> lock(session_mu_);
  for (auto& entry : active_guards_) entry.first->Cancel();
}

void Database::CancelSessionStatements(const SessionContext* session) {
  const SessionContext* s = Sess(session);
  std::lock_guard<std::mutex> lock(session_mu_);
  for (auto& [guard, owner] : active_guards_) {
    if (owner == s) guard->Cancel();
  }
}

void Database::RegisterGuard(ExecGuard* guard,
                             const SessionContext* session) {
  std::lock_guard<std::mutex> lock(session_mu_);
  active_guards_.emplace(guard, session);
}

void Database::DeregisterGuard(ExecGuard* guard) {
  std::lock_guard<std::mutex> lock(session_mu_);
  active_guards_.erase(guard);
}

Result<ResultSet> Database::Execute(std::string_view sql) {
  return Execute(sql, nullptr, nullptr);
}

Result<ResultSet> Database::Execute(std::string_view sql,
                                    const Params& params) {
  return Execute(sql, &params, nullptr);
}

Result<ResultSet> Database::Execute(std::string_view sql,
                                    const Params* params,
                                    SessionContext* session) {
  // With the plan cache on, repeated statement texts skip the lexer and
  // parser and SELECTs reuse their planned operator tree.
  if (plan_cache_enabled_) {
    TIP_ASSIGN_OR_RETURN(std::shared_ptr<const PreparedPlan> plan,
                         Prepare(sql, session));
    return ExecutePrepared(*plan, params, session);
  }
  TIP_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(sql));
  return ExecuteParsed(stmt, params, sql, session);
}

Result<std::shared_ptr<const PreparedPlan>> Database::Prepare(
    std::string_view sql, SessionContext* session) {
  const bool use_cache = plan_cache_enabled_;
  std::string key;
  if (use_cache) {
    // The settings fingerprint is part of the text key per the cache
    // contract; variants re-verify it anyway, so a stale hit after SET
    // still re-plans rather than misbehaving.
    key = SettingsFingerprint(session);
    key += '\n';
    key += sql;
    if (std::shared_ptr<PreparedPlan> cached = plan_cache_.Lookup(key)) {
      return std::shared_ptr<const PreparedPlan>(std::move(cached));
    }
  }
  TIP_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(sql));
  auto plan =
      std::make_shared<PreparedPlan>(std::string(sql), std::move(stmt));
  // Only SELECTs carry reusable operator trees; other kinds would just
  // occupy cache slots to save a parse.
  if (use_cache && plan->stmt().kind == Statement::Kind::kSelect) {
    plan_cache_.Insert(key, plan, &plan_cache_stats_);
  }
  return std::shared_ptr<const PreparedPlan>(std::move(plan));
}

Result<ResultSet> Database::ExecutePrepared(const PreparedPlan& plan,
                                            const Params* params,
                                            SessionContext* session) {
  if (plan.stmt().kind == Statement::Kind::kSelect) {
    return ApplyTxnErrorContract(
        ExecutePreparedSelect(plan, params, session), session);
  }
  // Non-SELECT statements reuse the parsed AST but re-plan per
  // execution: DML binds against live table state anyway, and DDL/SET
  // are not on any hot path.
  return ExecuteParsed(plan.stmt(), params, plan.sql(), session);
}

Result<ResultSet> Database::ExecuteScript(std::string_view script) {
  ResultSet last;
  bool ran_any = false;
  size_t start = 0;
  bool in_string = false;
  for (size_t i = 0; i <= script.size(); ++i) {
    const bool at_end = i == script.size();
    if (!at_end && script[i] == '\'') in_string = !in_string;
    if (!at_end && (script[i] != ';' || in_string)) continue;
    std::string_view statement =
        StripAsciiWhitespace(script.substr(start, i - start));
    start = i + 1;
    if (statement.empty()) continue;
    TIP_ASSIGN_OR_RETURN(last, Execute(statement));
    ran_any = true;
  }
  if (!ran_any) {
    return Status::InvalidArgument("empty script");
  }
  return last;
}

StatementClass Database::Classify(const Statement& stmt,
                                  std::string_view sql) {
  switch (stmt.kind) {
    case Statement::Kind::kSelect:
    case Statement::Kind::kExplain: {
      // A SELECT is a reader unless it invokes one of the
      // side-effectful admin routines: tip_checkpoint() rotates the
      // WAL, tip_sync_wal() flushes the group-commit tail and
      // tip_verify() reseeds table checksums — all mutations a shared
      // holder must not make. Substring scan over the lowered text:
      // conservative (a string literal naming the routine also
      // upgrades), which errs toward exclusivity, never toward a
      // racing writer.
      const std::string lowered = ToLowerAscii(sql);
      for (std::string_view routine :
           {"tip_checkpoint", "tip_sync_wal", "tip_verify"}) {
        if (lowered.find(routine) != std::string::npos) {
          return StatementClass::kWriter;
        }
      }
      return StatementClass::kReader;
    }
    // Transaction control only moves this session's own pin; the
    // writer slot is claimed (under the exclusive gate) by the first
    // write statement, not by BEGIN.
    case Statement::Kind::kBegin:
    case Statement::Kind::kCommit:
    case Statement::Kind::kRollback:
      return StatementClass::kReader;
    case Statement::Kind::kSet:
      // Session-scoped options touch only the caller's SessionContext;
      // everything else (wal_mode, plan_cache, fault_inject, the join
      // toggles...) flips state every session reads.
      if (stmt.option == "now" || stmt.option == "statement_timeout_ms" ||
          stmt.option == "memory_limit_kb" ||
          stmt.option == "parallel_workers" ||
          stmt.option == "parallel_min_rows") {
        return StatementClass::kReader;
      }
      return StatementClass::kWriter;
    default:
      // DML, DDL, CHECK (it may reseed checksums and rebuild indexes).
      return StatementClass::kWriter;
  }
}

bool Database::IsTxnFatal(StatusCode code) {
  switch (code) {
    // The guard contract: cancel/timeout/memory inside a transaction
    // aborts it — the client asked for the statement to stop, and the
    // transaction's remaining statements would run against a NOW and a
    // state the client no longer believes in.
    case StatusCode::kCancelled:
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kResourceExhausted:
    // I/O failures (a poisoned or unwritable WAL): how much of the
    // statement became durable is unknowable, so the bracket must go.
    case StatusCode::kInternal:
    case StatusCode::kCorruption:
      return true;
    default:
      // Validation errors (parse, unknown table, type mismatch...):
      // statement-level atomicity already left the tables untouched,
      // so the transaction can continue — the SQL error contract.
      return false;
  }
}

Result<ResultSet> Database::ExecuteParsed(const Statement& stmt,
                                          const Params* params,
                                          std::string_view sql,
                                          SessionContext* session) {
  return ApplyTxnErrorContract(ExecuteStatement(stmt, params, sql, session),
                               session);
}

Result<ResultSet> Database::ApplyTxnErrorContract(Result<ResultSet> result,
                                                  SessionContext* session) {
  SessionContext* s = Sess(session);
  // Only the transaction's own thread may trip the auto-abort: a
  // concurrent read-only statement on another thread (a stats poll that
  // got cancelled, say) must not tear down a transaction it is not part
  // of — and must not touch the writer slot, which belongs to the
  // owner's thread.
  if (!result.ok() && IsTxnFatal(result.status().code()) &&
      s->txn_thread.load(std::memory_order_acquire) ==
          std::this_thread::get_id() &&
      InTransaction(s)) {
    // Roll the whole transaction back; the statement's own error stays
    // the one reported (the rollback is a consequence, and its only
    // failure mode — a WAL rewind error — poisons the log, which later
    // statements will surface).
    (void)RollbackTransaction(s);
  }
  return result;
}

Database::GuardArm::GuardArm(Database* db, EvalContext* eval,
                             SessionContext* session)
    : db_(db) {
  if (!db->statement_guard_enabled_) return;
  SessionContext* s = db->Sess(session);
  guard_.SetTimeout(s->statement_timeout_ms.load());
  guard_.SetMemoryLimit(s->memory_limit_kb.load() * 1024);
  guard_.set_events(&db->guard_events_);
  eval->guard = &guard_;
  db->RegisterGuard(&guard_, s);
  registered_ = true;
}

Database::GuardArm::~GuardArm() {
  if (registered_) db_->DeregisterGuard(&guard_);
}

PlannerContext Database::MakePlannerContext(const Params* params,
                                            SessionContext* session) {
  SessionContext* s = Sess(session);
  PlannerContext pctx;
  pctx.types = &types_;
  pctx.routines = &routines_;
  pctx.casts = &casts_;
  pctx.aggregates = &aggregates_;
  pctx.catalog = &catalog_;
  pctx.params = params;
  pctx.interval_key_fns = &interval_key_fns_;
  pctx.enable_hash_join = enable_hash_join_;
  pctx.enable_interval_join = enable_interval_join_;
  pctx.parallel_workers = s->parallel_workers.load();
  pctx.parallel_min_rows = s->parallel_min_rows.load();
  pctx.parallel_stats = &parallel_stats_;
  return pctx;
}

std::string Database::SettingsFingerprint(
    const SessionContext* session) const {
  const SessionContext* s = Sess(session);
  // Everything the planner reads besides the catalog. The guard switch
  // does not change plan shape, but an execution under a different
  // guard regime is not the one the user benchmarked, so it keys too.
  // The parallel knobs are per-session, so sessions with different
  // settings key (and plan) separately.
  std::string fp;
  fp += enable_hash_join_ ? "hj1 " : "hj0 ";
  fp += enable_interval_join_ ? "ij1 " : "ij0 ";
  fp += statement_guard_enabled_ ? "g1 " : "g0 ";
  fp += "pw";
  fp += std::to_string(s->parallel_workers.load(std::memory_order_relaxed));
  fp += " pm";
  fp += std::to_string(s->parallel_min_rows.load(std::memory_order_relaxed));
  return fp;
}

Result<std::shared_ptr<PreparedPlan::Variant>> Database::PlanPreparedVariant(
    const PreparedPlan& plan, const Params* params, uint64_t version,
    std::string settings_fingerprint, std::string param_signature,
    SessionContext* session) {
  auto variant = std::make_shared<PreparedPlan::Variant>();
  variant->catalog_version = version;
  variant->settings_fingerprint = std::move(settings_fingerprint);
  variant->param_signature = std::move(param_signature);
  PlannerContext pctx = MakePlannerContext(params, session);
  // Prepared mode: `:name` placeholders bind to ordinal slots instead
  // of folding the bound values in, so the tree survives rebinding.
  pctx.param_slots = &variant->slot_names;
  TIP_ASSIGN_OR_RETURN(variant->plan,
                       PlanSelect(*plan.stmt().select, pctx, nullptr));
  return variant;
}

Result<ResultSet> Database::ExecutePreparedSelect(const PreparedPlan& plan,
                                                  const Params* params,
                                                  SessionContext* session) {
  SessionContext* s = Sess(session);
  const uint64_t version = catalog_version();
  std::string settings = SettingsFingerprint(s);
  std::string signature = ParamSignature(params);
  std::shared_ptr<PreparedPlan::Variant> variant =
      plan.FindVariant(version, settings, signature, &plan_cache_stats_);

  // The cached tree carries per-run state (cursors, hash tables), so it
  // serves one execution at a time; a concurrent execution of the same
  // handle plans a private transient tree instead of waiting.
  std::unique_lock<std::mutex> exec_lock;
  if (variant != nullptr) {
    exec_lock = std::unique_lock<std::mutex>(variant->exec_mu,
                                             std::try_to_lock);
    if (!exec_lock.owns_lock()) variant.reset();
    // else: catalog_version was re-validated under FindVariant's lock;
    // DDL is serialized externally against running statements, so the
    // version cannot move while we execute.
  }
  const bool hit = variant != nullptr && exec_lock.owns_lock();
  if (!hit) {
    TIP_ASSIGN_OR_RETURN(
        variant, PlanPreparedVariant(plan, params, version,
                                     std::move(settings),
                                     std::move(signature), s));
    // Lock before publication so no other execution can take the tree
    // between AddVariant and our run.
    exec_lock = std::unique_lock<std::mutex>(variant->exec_mu);
    plan.AddVariant(variant, &plan_cache_stats_);
    plan_cache_stats_.misses.fetch_add(1, std::memory_order_relaxed);
  } else {
    plan_cache_stats_.hits.fetch_add(1, std::memory_order_relaxed);
  }

  // Resolve the name→value map into the plan's ordinal slots once per
  // execution; BoundParam indexes the vector per evaluation without
  // touching the map again.
  std::vector<Datum> slots;
  slots.reserve(variant->slot_names.size());
  for (const std::string& name : variant->slot_names) {
    auto it = params->find(name);
    if (it == params->end()) {
      // Unreachable while the signature covers the whole map, but fail
      // closed rather than executing with a hole in the slot vector.
      return Status::InvalidArgument("unbound parameter :" + name);
    }
    slots.push_back(it->second);
  }

  // A fresh EvalContext per execution is what re-grounds NOW: nothing
  // NOW-dependent was folded at plan time, so the new TxContext — from
  // this session, not a global field — is the only grounding the run
  // sees. Two sessions with different SET NOW values can execute the
  // same cached plan concurrently and read different groundings.
  EvalContext eval(CurrentTx(s));
  eval.params = &slots;
  eval.session = s;
  GuardArm guard_arm(this, &eval, s);

  ExecState state;
  state.eval = &eval;
  ResultSet result;
  for (size_t i = 0; i < variant->plan.column_names.size(); ++i) {
    result.columns.push_back(
        {variant->plan.column_names[i], variant->plan.column_types[i]});
  }
  TIP_RETURN_IF_ERROR(variant->plan.root->Open(state));
  Row row;
  for (;;) {
    TIP_RETURN_IF_ERROR(eval.CheckGuard());
    TIP_ASSIGN_OR_RETURN(bool has_row,
                         variant->plan.root->Next(state, &row));
    if (!has_row) break;
    TIP_RETURN_IF_ERROR(eval.ReserveMemory(exec_util::ApproxRowBytes(row)));
    result.rows.push_back(std::move(row));
  }
  return result;
}

Result<ResultSet> Database::ExecuteStatement(const Statement& stmt,
                                             const Params* params,
                                             std::string_view sql,
                                             SessionContext* session) {
  SessionContext* s = Sess(session);
  PlannerContext pctx = MakePlannerContext(params, s);

  EvalContext eval(CurrentTx(s));
  eval.session = s;
  ExecState state;
  state.eval = &eval;

  // A write statement inside this session's transaction materializes
  // the single writer slot (undo log + WAL bracket) before touching
  // anything; the caller has serialized writers, so claiming is safe.
  switch (stmt.kind) {
    case Statement::Kind::kInsert:
    case Statement::Kind::kUpdate:
    case Statement::Kind::kDelete:
      TIP_RETURN_IF_ERROR(ClaimWriterTxn(s));
      break;
    default:
      break;
  }

  // Every statement executes under a stack-owned lifecycle guard:
  // deadline, cancel flag and memory budget travel to the operators via
  // the EvalContext. The guard is visible to other threads (for
  // Connection::Cancel) only while registered, and RAII deregistration
  // covers every return path out of the switch below.
  GuardArm guard_arm(this, &eval, s);

  switch (stmt.kind) {
    case Statement::Kind::kSelect: {
      TIP_ASSIGN_OR_RETURN(PlannedSelect plan,
                           PlanSelect(*stmt.select, pctx, nullptr));
      ResultSet result;
      for (size_t i = 0; i < plan.column_names.size(); ++i) {
        result.columns.push_back(
            {plan.column_names[i], plan.column_types[i]});
      }
      TIP_RETURN_IF_ERROR(plan.root->Open(state));
      Row row;
      for (;;) {
        TIP_RETURN_IF_ERROR(eval.CheckGuard());
        TIP_ASSIGN_OR_RETURN(bool has_row, plan.root->Next(state, &row));
        if (!has_row) break;
        TIP_RETURN_IF_ERROR(
            eval.ReserveMemory(exec_util::ApproxRowBytes(row)));
        result.rows.push_back(std::move(row));
      }
      return result;
    }

    case Statement::Kind::kExplain: {
      TIP_ASSIGN_OR_RETURN(PlannedSelect plan,
                           PlanSelect(*stmt.select, pctx, nullptr));
      std::string text;
      plan.root->Explain(0, &text);
      ResultSet result;
      result.columns.push_back({"plan", TypeId::kString});
      for (std::string_view line : SplitString(text, '\n')) {
        if (line.empty()) continue;
        result.rows.push_back(Row{Datum::String(std::string(line))});
      }
      // Lifecycle events observed this session, appended only once any
      // exist so plans from untroubled sessions are unchanged.
      const uint64_t timeouts =
          guard_events_.timeouts.load(std::memory_order_relaxed);
      const uint64_t cancels =
          guard_events_.cancels.load(std::memory_order_relaxed);
      const uint64_t oom = guard_events_.oom.load(std::memory_order_relaxed);
      const uint64_t fallbacks =
          guard_events_.parallel_fallbacks.load(std::memory_order_relaxed);
      if (timeouts + cancels + oom + fallbacks > 0) {
        result.rows.push_back(Row{Datum::String(
            "GuardStats(timeouts=" + std::to_string(timeouts) +
            " cancels=" + std::to_string(cancels) +
            " oom=" + std::to_string(oom) +
            " parallel_fallbacks=" + std::to_string(fallbacks) + ")")});
      }
      // Plan-cache counters, appended only once the cache has seen
      // traffic so plans from untouched sessions are unchanged.
      const auto& pc = plan_cache_stats_;
      const uint64_t pc_hits = pc.hits.load(std::memory_order_relaxed);
      const uint64_t pc_misses = pc.misses.load(std::memory_order_relaxed);
      const uint64_t pc_inval =
          pc.invalidations.load(std::memory_order_relaxed);
      const uint64_t pc_evict = pc.evictions.load(std::memory_order_relaxed);
      if (pc_hits + pc_misses + pc_inval + pc_evict > 0) {
        result.rows.push_back(Row{Datum::String(
            "PlanCacheStats(hits=" + std::to_string(pc_hits) +
            " misses=" + std::to_string(pc_misses) +
            " invalidations=" + std::to_string(pc_inval) +
            " evictions=" + std::to_string(pc_evict) +
            " entries=" + std::to_string(plan_cache_entries()) + ")")});
      }
      // Durability counters, present only once a WAL is attached so
      // plans from non-durable sessions are unchanged.
      if (wal_ != nullptr) {
        const auto& d = durability_;
        result.rows.push_back(Row{Datum::String(
            "WalStats(mode=" + std::string(WalModeName(wal_mode_)) + " " +
            wal_->stats().ToString() + " next_lsn=" +
            std::to_string(wal_->next_lsn()) + " checkpoints=" +
            std::to_string(d.checkpoints.load(std::memory_order_relaxed)) +
            " recoveries=" +
            std::to_string(d.recoveries_run.load(std::memory_order_relaxed)) +
            " replayed=" +
            std::to_string(
                d.records_replayed.load(std::memory_order_relaxed)) +
            " torn_tails=" +
            std::to_string(
                d.torn_tail_truncations.load(std::memory_order_relaxed)) +
            " txns_committed=" +
            std::to_string(d.txns_committed.load(std::memory_order_relaxed)) +
            " txns_rolled_back=" +
            std::to_string(
                d.txns_rolled_back.load(std::memory_order_relaxed)) +
            " txn_records_discarded=" +
            std::to_string(
                d.txn_records_discarded.load(std::memory_order_relaxed)) +
            ")")});
      }
      // Integrity counters, appended only once a scrub ran or a table
      // sits in quarantine so untroubled sessions are unchanged.
      const uint64_t scrubs =
          integrity_.scrubs_run.load(std::memory_order_relaxed);
      const uint64_t checked =
          integrity_.objects_checked.load(std::memory_order_relaxed);
      const uint64_t found =
          integrity_.corruptions_found.load(std::memory_order_relaxed);
      const uint64_t quarantined = catalog_.quarantine_count();
      const uint64_t ticks =
          integrity_.scrub_ticks.load(std::memory_order_relaxed);
      if (scrubs + checked + found + quarantined + ticks > 0) {
        result.rows.push_back(Row{Datum::String(
            "IntegrityStats(scrubs=" + std::to_string(scrubs) +
            " objects_checked=" + std::to_string(checked) +
            " corruptions_found=" + std::to_string(found) +
            " quarantined=" + std::to_string(quarantined) +
            " scrub_ticks=" + std::to_string(ticks) + ")")});
      }
      // Server front-end counters, appended only once the TCP server
      // has seen traffic so embedded-only sessions are unchanged.
      const ServerStatsCounters& sv = server_stats_;
      if (sv.total() > 0) {
        result.rows.push_back(Row{Datum::String(
            "ServerStats(active=" +
            std::to_string(
                sv.sessions_active.load(std::memory_order_relaxed)) +
            " peak=" +
            std::to_string(sv.sessions_peak.load(std::memory_order_relaxed)) +
            " total=" +
            std::to_string(sv.sessions_total.load(std::memory_order_relaxed)) +
            " rejected=" +
            std::to_string(
                sv.sessions_rejected.load(std::memory_order_relaxed)) +
            " statements=" +
            std::to_string(
                sv.statements_served.load(std::memory_order_relaxed)) +
            " bytes_in=" +
            std::to_string(sv.bytes_in.load(std::memory_order_relaxed)) +
            " bytes_out=" +
            std::to_string(sv.bytes_out.load(std::memory_order_relaxed)) +
            " drains=" +
            std::to_string(sv.drains.load(std::memory_order_relaxed)) +
            " session_aborts=" +
            std::to_string(
                sv.session_aborts.load(std::memory_order_relaxed)) +
            " gate_shared=" +
            std::to_string(sv.gate_shared.load(std::memory_order_relaxed)) +
            " gate_exclusive=" +
            std::to_string(
                sv.gate_exclusive.load(std::memory_order_relaxed)) +
            " gate_upgrades=" +
            std::to_string(
                sv.gate_upgrades.load(std::memory_order_relaxed)) +
            " gate_busy_shared=" +
            std::to_string(
                sv.gate_busy_shared.load(std::memory_order_relaxed)) +
            " gate_busy_exclusive=" +
            std::to_string(
                sv.gate_busy_exclusive.load(std::memory_order_relaxed)) +
            ")")});
      }
      return result;
    }

    case Statement::Kind::kCreateTable: {
      TIP_RETURN_IF_ERROR(RefuseInTransaction("CREATE TABLE"));
      std::vector<Column> columns;
      for (const ColumnDef& def : stmt.columns) {
        TIP_ASSIGN_OR_RETURN(TypeId type,
                             types_.FindByName(def.type_name));
        columns.push_back({def.name, type});
      }
      TIP_ASSIGN_OR_RETURN(Table * table,
                           catalog_.CreateTable(stmt.table,
                                                std::move(columns)));
      (void)table;
      TIP_RETURN_IF_ERROR(LogAppliedDdl(
          sql, [this, &stmt] { (void)catalog_.DropTable(stmt.table); }));
      ResultSet result;
      result.message = "CREATE TABLE";
      return result;
    }

    case Statement::Kind::kDropTable: {
      TIP_RETURN_IF_ERROR(RefuseInTransaction("DROP TABLE"));
      // Validate before logging: the drop itself cannot fail once the
      // table is known to exist, so log-then-apply is safe (there is no
      // undo for a drop). A quarantined table (including a name-only
      // entry whose storage never survived salvage) bypasses the
      // corrupt-table lookup error: DROP is the repair verb that clears
      // the quarantine.
      if (!catalog_.IsQuarantined(stmt.table)) {
        TIP_ASSIGN_OR_RETURN(Table * doomed, catalog_.GetTable(stmt.table));
        (void)doomed;
      }
      if (ShouldLogWal()) {
        TIP_RETURN_IF_ERROR(
            AppendWal(WalRecordKind::kDdl, EncodeDdlBody(sql)));
      }
      TIP_RETURN_IF_ERROR(catalog_.DropTable(stmt.table));
      ResultSet result;
      result.message = "DROP TABLE";
      return result;
    }

    case Statement::Kind::kInsert: {
      TIP_ASSIGN_OR_RETURN(Table * table, catalog_.GetTable(stmt.table));
      const std::vector<Column>& columns = table->columns();
      // Map insert columns to schema positions.
      std::vector<size_t> targets;
      if (stmt.insert_columns.empty()) {
        for (size_t i = 0; i < columns.size(); ++i) targets.push_back(i);
      } else {
        for (const std::string& name : stmt.insert_columns) {
          int idx = table->FindColumn(name);
          if (idx < 0) {
            return Status::NotFound("unknown column '" + name +
                                    "' in INSERT");
          }
          targets.push_back(static_cast<size_t>(idx));
        }
      }
      // Evaluate every value row before touching the heap: a statement
      // aborted mid-way (cancel, timeout, memory budget, eval error)
      // must leave the table exactly as it was.
      std::vector<Row> staged;
      staged.reserve(stmt.insert_rows.size());
      for (const std::vector<ExprPtr>& value_row : stmt.insert_rows) {
        TIP_RETURN_IF_ERROR(eval.CheckGuard());
        if (value_row.size() != targets.size()) {
          return Status::InvalidArgument(
              "INSERT value count does not match column count");
        }
        Row row(columns.size(), Datum::Null());
        TupleCtx tuple;
        for (size_t i = 0; i < targets.size(); ++i) {
          TIP_ASSIGN_OR_RETURN(BoundExprPtr bound,
                               BindScalar(*value_row[i], pctx, nullptr));
          TIP_ASSIGN_OR_RETURN(
              bound, CoerceTo(std::move(bound),
                              columns[targets[i]].type, pctx));
          TIP_ASSIGN_OR_RETURN(Datum v, bound->Eval(tuple, eval));
          row[targets[i]] = std::move(v);
        }
        TIP_RETURN_IF_ERROR(
            eval.ReserveMemory(exec_util::ApproxRowBytes(row)));
        staged.push_back(std::move(row));
      }
      // Write-ahead: the record hits the log (and, per wal_mode, disk)
      // before the heap changes; past this point the statement cannot
      // fail, so the log never holds a record for a failed statement.
      if (ShouldLogWal() && !staged.empty()) {
        TIP_RETURN_IF_ERROR(EnsureTxnWalBracket());
        TIP_RETURN_IF_ERROR(
            AppendWal(WalRecordKind::kInsert,
                      EncodeInsertBody(table->name(), staged, types_)));
      }
      CaptureTxnUndo(table);
      for (Row& row : staged) table->heap().Insert(std::move(row));
      ResultSet result;
      result.affected_rows = static_cast<int64_t>(staged.size());
      return result;
    }

    case Statement::Kind::kUpdate:
    case Statement::Kind::kDelete: {
      TIP_ASSIGN_OR_RETURN(Table * table, catalog_.GetTable(stmt.table));
      Scope scope;
      for (const Column& col : table->columns()) {
        scope.bindings.push_back({table->name(), col.name, col.type});
      }
      BoundExprPtr where;
      if (stmt.where != nullptr) {
        TIP_ASSIGN_OR_RETURN(where, BindScalar(*stmt.where, pctx, &scope));
        if (where->type() != TypeId::kBool &&
            where->type() != TypeId::kNull) {
          return Status::TypeError("WHERE requires a BOOLEAN expression");
        }
      }
      // For UPDATE: bind SET expressions against the row scope.
      std::vector<std::pair<size_t, BoundExprPtr>> sets;
      for (const auto& [name, expr] : stmt.update_sets) {
        int idx = table->FindColumn(name);
        if (idx < 0) {
          return Status::NotFound("unknown column '" + name +
                                  "' in UPDATE");
        }
        TIP_ASSIGN_OR_RETURN(BoundExprPtr bound,
                             BindScalar(*expr, pctx, &scope));
        TIP_ASSIGN_OR_RETURN(
            bound,
            CoerceTo(std::move(bound),
                     table->columns()[static_cast<size_t>(idx)].type,
                     pctx));
        sets.emplace_back(static_cast<size_t>(idx), std::move(bound));
      }

      // Phase 1: evaluate against a stable snapshot of matching rows.
      // Guard checks live here only — once phase 2 starts applying, the
      // statement runs to completion so an abort cannot leave a
      // half-updated table.
      std::vector<std::pair<RowId, Row>> changes;
      std::vector<RowId> deletions;
      // Rows are addressed in the WAL by live ordinal (position in this
      // scan), not RowId: snapshot restore compacts tombstones, so the
      // same logical row replays under a different RowId but the same
      // ordinal.
      std::vector<uint64_t> delete_ordinals;
      std::vector<uint64_t> change_ordinals;
      uint64_t ordinal = 0;
      HeapTable::Cursor cursor = table->heap().Scan();
      RowId id;
      const Row* row;
      for (; cursor.Next(&id, &row); ++ordinal) {
        TIP_RETURN_IF_ERROR(eval.CheckGuard());
        TupleCtx tuple{row, nullptr};
        if (where != nullptr) {
          TIP_ASSIGN_OR_RETURN(Datum pass, where->Eval(tuple, eval));
          if (pass.is_null() || !pass.bool_value()) continue;
        }
        if (stmt.kind == Statement::Kind::kDelete) {
          deletions.push_back(id);
          delete_ordinals.push_back(ordinal);
        } else {
          Row updated = *row;
          for (const auto& [idx, expr] : sets) {
            TIP_ASSIGN_OR_RETURN(Datum v, expr->Eval(tuple, eval));
            updated[idx] = std::move(v);
          }
          TIP_RETURN_IF_ERROR(
              eval.ReserveMemory(exec_util::ApproxRowBytes(updated)));
          changes.emplace_back(id, std::move(updated));
          change_ordinals.push_back(ordinal);
        }
      }
      // Write-ahead, between the last failure point and the apply.
      if (ShouldLogWal() && !(deletions.empty() && changes.empty())) {
        TIP_RETURN_IF_ERROR(EnsureTxnWalBracket());
        std::vector<std::pair<uint64_t, const Row*>> updates;
        updates.reserve(changes.size());
        for (size_t i = 0; i < changes.size(); ++i) {
          updates.emplace_back(change_ordinals[i], &changes[i].second);
        }
        TIP_RETURN_IF_ERROR(AppendWal(
            WalRecordKind::kMutate,
            EncodeMutateBody(table->name(), delete_ordinals, updates,
                             types_)));
      }
      CaptureTxnUndo(table);
      // Phase 2: apply.
      for (RowId victim : deletions) {
        TIP_RETURN_IF_ERROR(table->heap().Delete(victim));
      }
      for (auto& [target, new_row] : changes) {
        TIP_RETURN_IF_ERROR(table->heap().Update(target,
                                                 std::move(new_row)));
      }
      ResultSet result;
      result.affected_rows = static_cast<int64_t>(
          stmt.kind == Statement::Kind::kDelete ? deletions.size()
                                                : changes.size());
      return result;
    }

    case Statement::Kind::kSet: {
      TIP_ASSIGN_OR_RETURN(std::string word, SetValueWord(*stmt.value));
      ResultSet result;
      if (stmt.option == "now") {
        // The pinned TxContext is authoritative mid-transaction:
        // re-grounding NOW here would silently make the transaction's
        // remaining statements disagree with its earlier ones. Only
        // *this* session's transaction matters — SET NOW is
        // session-scoped, so another session's open transaction is
        // none of its business.
        if (InTransaction(s)) {
          return Status::InvalidArgument(
              "SET NOW is not allowed inside a transaction; "
              "COMMIT or ROLLBACK first");
        }
        if (word == "default" || word == "system") {
          SetNowOverride(std::nullopt, s);
          result.message = "SET NOW DEFAULT";
          return result;
        }
        TIP_ASSIGN_OR_RETURN(Chronon now, Chronon::Parse(word));
        SetNowOverride(now, s);
        result.message = "SET NOW " + now.ToString();
        return result;
      }
      if (stmt.option == "hash_join") {
        TIP_ASSIGN_OR_RETURN(enable_hash_join_, ParseOnOff(word));
        result.message = "SET HASH_JOIN";
        return result;
      }
      if (stmt.option == "interval_join" ||
          stmt.option == "interval_index") {
        TIP_ASSIGN_OR_RETURN(enable_interval_join_, ParseOnOff(word));
        result.message = "SET INTERVAL_JOIN";
        return result;
      }
      if (stmt.option == "parallel_workers") {
        TIP_ASSIGN_OR_RETURN(int64_t n, ParseCount(word));
        if (n < 1) {
          return Status::InvalidArgument(
              "parallel_workers must be at least 1");
        }
        s->parallel_workers = static_cast<size_t>(n);
        result.message = "SET PARALLEL_WORKERS " + std::to_string(n);
        return result;
      }
      if (stmt.option == "parallel_min_rows") {
        TIP_ASSIGN_OR_RETURN(int64_t n, ParseCount(word));
        s->parallel_min_rows = static_cast<size_t>(n);
        result.message = "SET PARALLEL_MIN_ROWS " + std::to_string(n);
        return result;
      }
      if (stmt.option == "statement_timeout_ms") {
        TIP_ASSIGN_OR_RETURN(int64_t n, ParseCount(word));
        s->statement_timeout_ms = n;
        result.message = "SET STATEMENT_TIMEOUT_MS " + std::to_string(n);
        return result;
      }
      if (stmt.option == "memory_limit_kb") {
        TIP_ASSIGN_OR_RETURN(int64_t n, ParseCount(word));
        s->memory_limit_kb = static_cast<size_t>(n);
        result.message = "SET MEMORY_LIMIT_KB " + std::to_string(n);
        return result;
      }
      if (stmt.option == "statement_guard") {
        TIP_ASSIGN_OR_RETURN(statement_guard_enabled_, ParseOnOff(word));
        result.message = "SET STATEMENT_GUARD";
        return result;
      }
      if (stmt.option == "wal_mode") {
        // The commit record carries the mode the transaction's
        // statements were acknowledged under; switching mid-bracket
        // (especially across `off`, which checkpoints) would tear it.
        TIP_RETURN_IF_ERROR(RefuseInTransaction("SET WAL_MODE"));
        TIP_ASSIGN_OR_RETURN(WalMode mode, ParseWalMode(word));
        TIP_RETURN_IF_ERROR(set_wal_mode(mode));
        result.message = "SET WAL_MODE " + std::string(WalModeName(mode));
        return result;
      }
      if (stmt.option == "wal_group_size") {
        TIP_ASSIGN_OR_RETURN(int64_t n, ParseCount(word));
        if (n < 1) {
          return Status::InvalidArgument(
              "wal_group_size must be at least 1");
        }
        set_wal_group_size(static_cast<uint64_t>(n));
        result.message = "SET WAL_GROUP_SIZE " + std::to_string(n);
        return result;
      }
      if (stmt.option == "plan_cache") {
        TIP_ASSIGN_OR_RETURN(bool on, ParseOnOff(word));
        set_plan_cache_enabled(on);
        result.message = "SET PLAN_CACHE";
        return result;
      }
      if (stmt.option == "plan_cache_size") {
        TIP_ASSIGN_OR_RETURN(int64_t n, ParseCount(word));
        if (n < 1) {
          return Status::InvalidArgument(
              "plan_cache_size must be at least 1");
        }
        set_plan_cache_size(static_cast<size_t>(n));
        result.message = "SET PLAN_CACHE_SIZE " + std::to_string(n);
        return result;
      }
      if (stmt.option == "table_checksums") {
        TIP_ASSIGN_OR_RETURN(bool on, ParseOnOff(word));
        set_table_checksums_enabled(on);
        result.message = "SET TABLE_CHECKSUMS";
        return result;
      }
      if (stmt.option == "scrub") {
        // Background scrub scheduling: while on, every checkpoint also
        // CHECKs one table round-robin (see ScrubTick).
        TIP_ASSIGN_OR_RETURN(bool on, ParseOnOff(word));
        set_scrub_enabled(on);
        result.message = on ? "SET SCRUB ON" : "SET SCRUB OFF";
        return result;
      }
      if (stmt.option == "fault_inject") {
        // 'point:n[,point:every:n|point:prob:p|point:kill:n...]' arms
        // deterministic fault points; 'seed:n' reseeds prob triggers;
        // 'off' clears them all. Same grammar as TIP_FAULT_INJECT.
        TIP_RETURN_IF_ERROR(fault::ApplySpec(word));
        result.message = "SET FAULT_INJECT " + word;
        return result;
      }
      return Status::InvalidArgument("unknown option '" + stmt.option +
                                     "'");
    }

    case Statement::Kind::kCreateIndex: {
      TIP_RETURN_IF_ERROR(RefuseInTransaction("CREATE INDEX"));
      TIP_ASSIGN_OR_RETURN(Table * table, catalog_.GetTable(stmt.table));
      if (!EqualsIgnoreCase(stmt.index_method, "interval")) {
        return Status::NotImplemented("unknown index method '" +
                                      stmt.index_method + "'");
      }
      int idx = table->FindColumn(stmt.index_column);
      if (idx < 0) {
        return Status::NotFound("unknown column '" + stmt.index_column +
                                "'");
      }
      const TypeId col_type =
          table->columns()[static_cast<size_t>(idx)].type;
      auto it = interval_key_fns_.find(col_type);
      if (it == interval_key_fns_.end()) {
        return Status::TypeError(
            "type '" + types_.Get(col_type).name +
            "' has no interval access method (is the DataBlade "
            "installed?)");
      }
      TIP_RETURN_IF_ERROR(table->CreateIntervalIndex(
          stmt.index_name, static_cast<size_t>(idx), it->second));
      TIP_RETURN_IF_ERROR(LogAppliedDdl(sql, [table, &stmt] {
        (void)table->DropIndex(stmt.index_name);
      }));
      // Index DDL happens on the Table, below the Catalog listener's
      // sight: bump explicitly so cached scans re-plan onto the index.
      BumpCatalogVersion();
      ResultSet result;
      result.message = "CREATE INDEX";
      return result;
    }

    case Statement::Kind::kCreateFunction: {
      TIP_RETURN_IF_ERROR(RefuseInTransaction("CREATE FUNCTION"));
      const std::string name = ToLowerAscii(stmt.function_name);
      std::vector<Column> params;
      std::vector<TypeId> param_types;
      for (const ColumnDef& def : stmt.function_params) {
        TIP_ASSIGN_OR_RETURN(TypeId type, types_.FindByName(def.type_name));
        params.push_back({ToLowerAscii(def.name), type});
        param_types.push_back(type);
      }
      TIP_ASSIGN_OR_RETURN(TypeId return_type,
                           types_.FindByName(stmt.function_return));
      TIP_ASSIGN_OR_RETURN(ExprPtr body_ast,
                           ParseExpression(stmt.function_body));

      // Validate now: the body must bind over exactly the parameters
      // and coerce to the declared return type.
      Scope scope;
      for (const Column& p : params) {
        scope.bindings.push_back({"", p.name, p.type});
      }
      TIP_ASSIGN_OR_RETURN(BoundExprPtr validated,
                           BindScalar(*body_ast, pctx, &scope));
      TIP_ASSIGN_OR_RETURN(validated,
                           CoerceTo(std::move(validated), return_type,
                                    pctx));

      // The stored routine re-binds per invocation so later DDL (drops,
      // new overloads) cannot leave it holding stale plan state — the
      // SPL interpreter model.
      std::shared_ptr<const Expr> body(body_ast.release());
      auto shared_params = std::make_shared<std::vector<Column>>(params);
      Database* db = this;
      Routine routine;
      routine.name = name;
      routine.params = param_types;
      routine.result = return_type;
      routine.fn = [db, body, shared_params, return_type](
                       const std::vector<Datum>& args,
                       EvalContext& eval_ctx) -> Result<Datum> {
        PlannerContext call_ctx;
        call_ctx.types = &db->types();
        call_ctx.routines = &db->routines();
        call_ctx.casts = &db->casts();
        call_ctx.aggregates = &db->aggregates();
        call_ctx.catalog = &db->catalog();
        call_ctx.interval_key_fns = nullptr;
        Scope call_scope;
        for (const Column& p : *shared_params) {
          call_scope.bindings.push_back({"", p.name, p.type});
        }
        TIP_ASSIGN_OR_RETURN(BoundExprPtr bound,
                             BindScalar(*body, call_ctx, &call_scope));
        TIP_ASSIGN_OR_RETURN(bound, CoerceTo(std::move(bound),
                                             return_type, call_ctx));
        TupleCtx tuple{&args, nullptr};
        return bound->Eval(tuple, eval_ctx);
      };
      TIP_RETURN_IF_ERROR(routines_.Register(std::move(routine)));
      sql_functions_.insert(name);
      TIP_RETURN_IF_ERROR(LogAppliedDdl(sql, [this, &name] {
        (void)routines_.Remove(name);
        sql_functions_.erase(name);
      }));
      // Snapshots store only tables, so the function's text also rides
      // in every later checkpoint's metadata.
      sql_function_ddl_[name] = std::string(sql);
      ResultSet result;
      result.message = "CREATE FUNCTION";
      return result;
    }

    case Statement::Kind::kDropFunction: {
      TIP_RETURN_IF_ERROR(RefuseInTransaction("DROP FUNCTION"));
      const std::string name = ToLowerAscii(stmt.function_name);
      if (sql_functions_.count(name) == 0) {
        return Status::NotFound(
            "function '" + name +
            "' does not exist or was not created with CREATE FUNCTION");
      }
      if (ShouldLogWal()) {
        TIP_RETURN_IF_ERROR(
            AppendWal(WalRecordKind::kDdl, EncodeDdlBody(sql)));
      }
      TIP_RETURN_IF_ERROR(routines_.Remove(name));
      sql_functions_.erase(name);
      sql_function_ddl_.erase(name);
      ResultSet result;
      result.message = "DROP FUNCTION";
      return result;
    }

    case Statement::Kind::kDropIndex: {
      TIP_RETURN_IF_ERROR(RefuseInTransaction("DROP INDEX"));
      TIP_ASSIGN_OR_RETURN(Table * table, catalog_.GetTable(stmt.table));
      bool exists = false;
      for (const IntervalIndexDef& def : table->interval_indexes()) {
        if (EqualsIgnoreCase(def.name, stmt.index_name)) {
          exists = true;
          break;
        }
      }
      if (!exists) {
        return Status::NotFound("index '" + stmt.index_name +
                                "' does not exist");
      }
      if (ShouldLogWal()) {
        TIP_RETURN_IF_ERROR(
            AppendWal(WalRecordKind::kDdl, EncodeDdlBody(sql)));
      }
      TIP_RETURN_IF_ERROR(table->DropIndex(stmt.index_name));
      // See kCreateIndex: the Catalog listener does not see index DDL.
      BumpCatalogVersion();
      ResultSet result;
      result.message = "DROP INDEX";
      return result;
    }

    case Statement::Kind::kBegin: {
      TIP_RETURN_IF_ERROR(BeginTransaction(s));
      ResultSet result;
      result.message = "BEGIN";
      return result;
    }

    case Statement::Kind::kCommit: {
      TIP_RETURN_IF_ERROR(CommitTransaction(s));
      ResultSet result;
      result.message = "COMMIT";
      return result;
    }

    case Statement::Kind::kRollback: {
      TIP_RETURN_IF_ERROR(RollbackTransaction(s));
      ResultSet result;
      result.message = "ROLLBACK";
      return result;
    }

    case Statement::Kind::kCheck: {
      // CHECK TABLE t / CHECK DATABASE: online scrub. One row per
      // object; corruption is data, not an error status (the operator
      // wants the whole damage map, not the first hit) — but guard
      // trips (cancel/timeout) still abort the statement.
      ResultSet result;
      result.columns.push_back({"object", TypeId::kString});
      result.columns.push_back({"status", TypeId::kString});
      result.columns.push_back({"detail", TypeId::kString});
      uint64_t objects = 0;
      uint64_t corruptions = 0;

      std::vector<std::string> names;
      if (stmt.check_database) {
        names = catalog_.TableNames();
        // Name-only quarantine entries (tables whose storage never
        // came back from salvage) are not in TableNames but very much
        // part of the database's health.
        std::set<std::string> have;
        for (const std::string& name : names) have.insert(ToLowerAscii(name));
        for (const auto& [qname, cause] : catalog_.QuarantineList()) {
          if (have.count(qname) == 0) names.push_back(qname);
        }
      } else {
        names.push_back(stmt.table);
      }

      for (const std::string& name : names) {
        ++objects;
        Result<Table*> lookup = catalog_.GetTable(name);
        if (!lookup.ok()) {
          if (lookup.status().code() == StatusCode::kCorruption) {
            ++corruptions;
            result.rows.push_back(Row{
                Datum::String(name), Datum::String("quarantined"),
                Datum::String(std::string(lookup.status().message()))});
            continue;
          }
          return lookup.status();  // CHECK TABLE of an unknown table
        }
        TIP_ASSIGN_OR_RETURN(CheckFinding finding,
                             CheckTable(this, *lookup, &eval));
        if (!finding.ok) ++corruptions;
        result.rows.push_back(Row{Datum::String(name),
                                  Datum::String(finding.ok ? "ok" : "corrupt"),
                                  Datum::String(finding.detail)});
      }

      // CHECK DATABASE on a durable database also scans the live WAL
      // (read-only: VerifyWalFile never truncates, unlike Wal::Open).
      if (stmt.check_database && wal_ != nullptr) {
        ++objects;
        TIP_RETURN_IF_ERROR(eval.CheckGuardNow());
        OfflineVerifyReport wal_report;
        const std::string wal_path = durable_dir_ + "/wal.log";
        Status scanned = VerifyWalFile(wal_path, &wal_report);
        std::string detail;
        bool ok = true;
        if (!scanned.ok()) {
          ok = false;
          detail = std::string(scanned.message());
        } else if (!wal_report.clean()) {
          ok = false;
          for (const std::string& problem : wal_report.problems) {
            if (!detail.empty()) detail += "; ";
            detail += problem;
          }
        } else {
          detail = "records=" + std::to_string(wal_report.wal_records);
          if (wal_report.torn_tail) detail += " torn_tail";
          if (wal_report.open_txn_tail) detail += " open_txn_tail";
        }
        if (!ok) ++corruptions;
        result.rows.push_back(Row{Datum::String("wal"),
                                  Datum::String(ok ? "ok" : "corrupt"),
                                  Datum::String(detail)});
      }

      RecordScrub(objects, corruptions);
      result.message = corruptions == 0
                           ? "CHECK OK"
                           : "CHECK FOUND " + std::to_string(corruptions) +
                                 " CORRUPT OBJECT(S)";
      return result;
    }
  }
  return Status::Internal("unhandled statement kind");
}

Status Database::AppendWal(WalRecordKind kind, std::string_view body) {
  // Inside a transaction durability is deferred to the commit point:
  // records ride in async mode and the TXN_COMMIT append carries the
  // session's wal_mode, so a sync-mode transaction costs one fsync per
  // transaction, not one per statement.
  const WalMode mode =
      txn_ != nullptr ? WalMode::kAsync : wal_mode_.load();
  return wal_->Append(kind, body, mode).status();
}

Status Database::RefuseInTransaction(std::string_view what) const {
  // Any session's open transaction refuses these statements, read-only
  // pins included: a DDL or re-baseline under an open read transaction
  // would still yank state out from under its pinned view. The callers
  // run exclusively gated, so the count is stable across the check.
  if (open_txns_.load(std::memory_order_acquire) == 0) return Status::OK();
  return Status::InvalidArgument(std::string(what) +
                                 " is not allowed inside a transaction; "
                                 "COMMIT or ROLLBACK first");
}

Status Database::EnsureTxnWalBracket() {
  if (txn_ == nullptr || txn_->bracketed) return Status::OK();
  // Mark first: if the bracket append itself fails it rolls its own
  // frame back, and with `bracketed` still false nothing will try to
  // rewind to the mark.
  txn_->mark = wal_->Mark();
  TIP_RETURN_IF_ERROR(
      wal_->Append(WalRecordKind::kTxnBegin, "", WalMode::kAsync).status());
  txn_->bracketed = true;
  return Status::OK();
}

void Database::CaptureTxnUndo(Table* table) {
  if (txn_ == nullptr) return;
  if (txn_->undo.find(table->name()) != txn_->undo.end()) return;
  txn_->undo.emplace(table->name(), table->heap().SnapshotLiveRows());
}

Status Database::ClaimWriterTxn(SessionContext* session) {
  SessionContext* s = Sess(session);
  std::optional<TxContext> pin;
  {
    std::lock_guard<std::mutex> lock(session_mu_);
    pin = s->txn_pin;
  }
  // Auto-commit write: no transaction, nothing to claim.
  if (!pin.has_value()) return Status::OK();
  if (txn_ != nullptr) {
    if (txn_session_.load(std::memory_order_acquire) == s) {
      return Status::OK();
    }
    // Unreachable under a correctly-gated server — writers run
    // exclusively — but refuse rather than attribute this write to
    // another session's undo log.
    return Status::Internal(
        "another session's transaction holds the write slot");
  }
  auto txn = std::make_unique<TxnState>();
  txn->tx = *pin;
  txn_ = std::move(txn);
  txn_session_.store(s, std::memory_order_release);
  return Status::OK();
}

Status Database::BeginTransaction(SessionContext* session) {
  SessionContext* s = Sess(session);
  {
    std::lock_guard<std::mutex> lock(session_mu_);
    if (s->txn_pin.has_value()) {
      return Status::InvalidArgument("a transaction is already open");
    }
    // Pin NOW for the whole transaction. Inlined CurrentTx (which
    // would re-take session_mu_): the pin is not set yet, so the
    // override-or-clock arm is the one that applies.
    s->txn_pin = s->now.has_value() ? TxContext(*s->now)
                                    : TxContext::FromSystemClock();
  }
  s->txn_thread.store(std::this_thread::get_id(), std::memory_order_release);
  open_txns_.fetch_add(1, std::memory_order_acq_rel);
  return Status::OK();
}

Status Database::CommitTransaction(SessionContext* session) {
  SessionContext* s = Sess(session);
  if (!InTransaction(s)) {
    return Status::InvalidArgument("no transaction is open");
  }
  if (txn_ != nullptr && txn_session_.load(std::memory_order_acquire) == s) {
    if (txn_->bracketed) {
      // The commit record is appended under the session's wal_mode:
      // this is the point where the whole transaction reaches disk
      // (sync) or joins the group-commit batch. A commit that cannot
      // be logged is a rollback — the bracket must never be left
      // dangling.
      Status logged =
          wal_->Append(WalRecordKind::kTxnCommit, "", wal_mode_).status();
      if (!logged.ok()) {
        (void)RollbackTransaction(s);
        return logged;
      }
    }
    txn_.reset();
    txn_session_.store(nullptr, std::memory_order_release);
  }
  {
    std::lock_guard<std::mutex> lock(session_mu_);
    s->txn_pin.reset();
  }
  s->txn_thread.store(std::thread::id(), std::memory_order_release);
  open_txns_.fetch_sub(1, std::memory_order_acq_rel);
  durability_.txns_committed.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status Database::RollbackTransaction(SessionContext* session) {
  SessionContext* s = Sess(session);
  if (!InTransaction(s)) {
    return Status::InvalidArgument("no transaction is open");
  }
  Status rewound = Status::OK();
  // Read-only transactions (the writer slot was never claimed, or
  // belongs to another session) have nothing to undo — dropping the
  // pin is the whole rollback.
  if (txn_ != nullptr && txn_session_.load(std::memory_order_acquire) == s) {
    // Memory first: restore every touched table's undo image. The heap
    // version counter advances, so interval indexes over these tables
    // lazily rebuild to the restored (pre-BEGIN) contents.
    for (auto& [name, rows] : txn_->undo) {
      Result<Table*> table = catalog_.GetTable(name);
      // DDL is refused inside transactions, so the table must still
      // exist; a miss here would be an engine bug, not a user error.
      if (table.ok()) (*table)->heap().ResetTo(std::move(rows));
    }
    // Then the log: rewind to the pre-bracket mark, un-assigning the
    // transaction's LSNs — tip_wal_stats() reads exactly as it did
    // before BEGIN. On failure the log is poisoned (fail-stop); the
    // in-memory rollback above already succeeded either way.
    if (txn_->bracketed) rewound = wal_->ResetToMark(txn_->mark);
    txn_.reset();
    txn_session_.store(nullptr, std::memory_order_release);
  }
  {
    std::lock_guard<std::mutex> lock(session_mu_);
    s->txn_pin.reset();
  }
  s->txn_thread.store(std::thread::id(), std::memory_order_release);
  open_txns_.fetch_sub(1, std::memory_order_acq_rel);
  durability_.txns_rolled_back.fetch_add(1, std::memory_order_relaxed);
  return rewound;
}

Status Database::LogAppliedDdl(std::string_view sql,
                               const std::function<void()>& undo) {
  if (!ShouldLogWal()) return Status::OK();
  Status logged = AppendWal(WalRecordKind::kDdl, EncodeDdlBody(sql));
  if (!logged.ok()) undo();
  return logged;
}

Status Database::AttachDurableDir(const std::string& dir,
                                  RecoveryReport* report,
                                  RecoveryMode mode) {
  RecoveryReport local;
  if (report == nullptr) report = &local;
  *report = RecoveryReport{};
  report->salvage = mode == RecoveryMode::kSalvage;
  {
    std::lock_guard<std::mutex> lock(integrity_mu_);
    corruption_manifest_.clear();
  }
  if (wal_ != nullptr) {
    return Status::InvalidArgument("a durable directory is already attached");
  }
  TIP_RETURN_IF_ERROR(RefuseInTransaction("ATTACH"));
  if (!catalog_.TableNames().empty()) {
    return Status::InvalidArgument(
        "attach the durable directory to a fresh database (install "
        "extensions first, create tables after)");
  }
  TIP_RETURN_IF_ERROR(fs::EnsureDir(dir));

  // Everything below re-executes recorded statements; none of them may
  // be logged again. RAII so every error return clears the flag.
  replaying_ = true;
  struct ReplayScope {
    Database* db;
    ~ReplayScope() { db->replaying_ = false; }
  } replay_scope{this};

  // Checkpoint metadata damage is fatal in both modes: the file is
  // tiny, CRC-guarded and atomically replaced — if it is unreadable
  // the deployment is broken, not bit-rotted, and salvaging "around"
  // it would mean guessing which snapshot is current.
  TIP_ASSIGN_OR_RETURN(std::optional<CheckpointMeta> meta,
                       ReadCheckpointMeta(dir));
  uint64_t checkpoint_lsn = 1;
  if (meta.has_value()) {
    checkpoint_lsn = meta->lsn;
    const std::string snap_path = dir + "/" + meta->snapshot_file;
    if (mode == RecoveryMode::kStrict) {
      TIP_RETURN_IF_ERROR(LoadSnapshotFromFile(this, snap_path));
    } else {
      // Salvage: try the strict load first (a clean file costs
      // nothing extra); only on corruption fall back to the
      // section-skipping salvage pass and quarantine what it lost.
      TIP_ASSIGN_OR_RETURN(std::string snap_bytes, fs::ReadFile(snap_path));
      Status loaded = LoadSnapshot(this, snap_bytes);
      if (!loaded.ok()) {
        if (loaded.code() != StatusCode::kCorruption) {
          return Annotate(loaded, "snapshot '" + snap_path + "'");
        }
        SalvageReport salvage;
        Status salvaged = SalvageSnapshot(this, snap_bytes, &salvage);
        if (!salvaged.ok()) {
          return Annotate(salvaged, "snapshot '" + snap_path + "'");
        }
        for (const SalvageReport::SkippedSection& skipped :
             salvage.skipped) {
          CorruptionManifestEntry entry;
          entry.object = skipped.table.empty()
                             ? "snapshot section " +
                                   std::to_string(skipped.index)
                             : skipped.table;
          entry.file = snap_path;
          entry.offset = skipped.offset;
          entry.cause = skipped.cause;
          report->manifest.push_back(entry);
          if (!skipped.table.empty()) {
            // The table's storage is gone; a name-only quarantine
            // entry makes later lookups (and WAL replay below) fail
            // with an explicit Corruption instead of NotFound.
            catalog_.Quarantine(skipped.table,
                                "snapshot section unrecoverable: " +
                                    skipped.cause);
          }
        }
      }
    }
    report->snapshot_loaded = true;
    for (const std::string& ddl : meta->function_ddl) {
      Result<ResultSet> created = Execute(ddl);
      if (!created.ok()) {
        // Fatal in both modes: the metadata's CRC held, so a failing
        // CREATE FUNCTION is an engine/extension mismatch, not rot.
        return Status::Corruption(
            "checkpointed CREATE FUNCTION failed to replay: " +
            created.status().ToString());
      }
    }
  }
  report->checkpoint_lsn = checkpoint_lsn;

  std::vector<WalRecord> records;
  WalOpenReport wal_report;
  TIP_ASSIGN_OR_RETURN(
      std::unique_ptr<Wal> wal,
      Wal::Open(dir + "/wal.log", checkpoint_lsn, &records, &wal_report));
  report->created = wal_report.created && !meta.has_value();
  report->torn_tail = wal_report.torn_tail;
  report->torn_bytes_truncated = wal_report.torn_bytes_truncated;
  // Transaction-aware replay: records between TXN_BEGIN and TXN_COMMIT
  // are buffered and applied only once the commit bracket is seen. An
  // abort bracket — or end of log with the bracket still open (the
  // crash-before-commit case) — discards the buffer, so recovery never
  // surfaces a partial transaction.
  // Tables already quarantined (snapshot salvage above): their replay
  // records are skipped by name, so one lost section does not cascade
  // into replay failures for every later write to that table.
  std::set<std::string> dead_tables;
  for (const auto& [qname, qcause] : catalog_.QuarantineList()) {
    dead_tables.insert(qname);
  }

  // Applies one record under the recovery mode's corruption policy:
  // strict refuses the open; salvage quarantines the record's table
  // (when attributable) and keeps going. An unattributable failure —
  // a record too damaged to even name its table, or non-table DDL —
  // stays fatal in both modes.
  auto apply_one = [&](const WalRecord& record) -> Status {
    if (mode == RecoveryMode::kSalvage && !dead_tables.empty()) {
      const std::string target = ToLowerAscii(WalRecordTableName(record));
      if (!target.empty() && dead_tables.count(target) > 0) {
        ++report->records_skipped;
        return Status::OK();
      }
    }
    Status applied = ApplyWalRecord(this, record);
    if (applied.ok()) {
      ++report->wal_records_replayed;
      return Status::OK();
    }
    const std::string error = "WAL record lsn=" +
                              std::to_string(record.lsn) + " in '" + dir +
                              "/wal.log' failed to replay: " +
                              applied.ToString();
    if (mode != RecoveryMode::kSalvage) return Status::Corruption(error);
    const std::string target = ToLowerAscii(WalRecordTableName(record));
    if (target.empty()) return Status::Corruption(error);
    catalog_.Quarantine(target, error);
    dead_tables.insert(target);
    ++report->records_skipped;
    CorruptionManifestEntry entry;
    entry.object = target;
    entry.file = dir + "/wal.log";
    entry.lsn = record.lsn;
    entry.cause = error;
    report->manifest.push_back(entry);
    return Status::OK();
  };

  // Bracket-structure corruption has no single table to pin it on. In
  // salvage mode replay stops at the damage — everything applied so
  // far is a consistent prefix — and the manifest records where; in
  // strict mode it refuses the open.
  bool replay_halted = false;
  auto bracket_corrupt = [&](uint64_t lsn, const std::string& what) -> Status {
    const std::string error = "WAL record lsn=" + std::to_string(lsn) +
                              " in '" + dir + "/wal.log': " + what;
    if (mode != RecoveryMode::kSalvage) return Status::Corruption(error);
    CorruptionManifestEntry entry;
    entry.object = "wal";
    entry.file = dir + "/wal.log";
    entry.lsn = lsn;
    entry.cause = error + " (replay stopped here)";
    report->manifest.push_back(entry);
    replay_halted = true;
    return Status::OK();
  };

  std::vector<const WalRecord*> txn_buffer;
  bool in_txn = false;
  for (const WalRecord& record : records) {
    if (replay_halted) break;
    // Records the checkpoint snapshot already covers: a crash between
    // publishing the checkpoint and rotating the log leaves them behind
    // legitimately; they must be skipped, never double-applied.
    if (record.lsn < checkpoint_lsn) continue;
    if (record.kind == WalRecordKind::kTxnBegin) {
      if (in_txn) {
        TIP_RETURN_IF_ERROR(bracket_corrupt(
            record.lsn, "TXN_BEGIN inside an open transaction"));
        continue;
      }
      in_txn = true;
      continue;
    }
    if (record.kind == WalRecordKind::kTxnCommit) {
      if (!in_txn) {
        TIP_RETURN_IF_ERROR(
            bracket_corrupt(record.lsn, "TXN_COMMIT without TXN_BEGIN"));
        continue;
      }
      for (const WalRecord* buffered : txn_buffer) {
        TIP_RETURN_IF_ERROR(apply_one(*buffered));
      }
      txn_buffer.clear();
      in_txn = false;
      ++report->txns_replayed;
      continue;
    }
    if (record.kind == WalRecordKind::kTxnAbort) {
      if (!in_txn) {
        TIP_RETURN_IF_ERROR(
            bracket_corrupt(record.lsn, "TXN_ABORT without TXN_BEGIN"));
        continue;
      }
      report->txn_records_discarded += txn_buffer.size();
      txn_buffer.clear();
      in_txn = false;
      continue;
    }
    if (in_txn) {
      txn_buffer.push_back(&record);
      continue;
    }
    TIP_RETURN_IF_ERROR(apply_one(record));
  }
  if (in_txn) {
    // Uncommitted tail: the writer crashed mid-transaction. Atomicity
    // says these records never happened.
    report->txn_records_discarded += txn_buffer.size();
    txn_buffer.clear();
  }

  // Warm every interval index once, after the last replayed write, so
  // recovery pays one rebuild per index instead of one per replayed
  // statement on first use. Failures are non-fatal: the index rebuilds
  // lazily on first probe anyway.
  const TxContext tx = CurrentTx();
  for (const std::string& name : catalog_.TableNames()) {
    Result<Table*> table = catalog_.GetTable(name);
    if (!table.ok()) continue;
    for (const IntervalIndexDef& def : (*table)->interval_indexes()) {
      (void)(*table)->GetIntervalIndex(def.column, tx);
    }
  }

  durable_dir_ = dir;
  wal_ = std::move(wal);
  wal_->set_group_records(wal_group_size_);
  durability_.recoveries_run.fetch_add(1, std::memory_order_relaxed);
  durability_.records_replayed.fetch_add(report->wal_records_replayed,
                                         std::memory_order_relaxed);
  if (report->torn_tail) {
    durability_.torn_tail_truncations.fetch_add(1, std::memory_order_relaxed);
  }
  durability_.txn_records_discarded.fetch_add(report->txn_records_discarded,
                                              std::memory_order_relaxed);
  if (mode == RecoveryMode::kSalvage) {
    report->tables_quarantined = catalog_.quarantine_count();
    std::lock_guard<std::mutex> lock(integrity_mu_);
    corruption_manifest_ = report->manifest;
  }
  RemoveStaleSnapshots(dir, meta.has_value() ? meta->snapshot_file : "");
  // Recovery may have restored tables/functions through paths the
  // registry listeners already saw, but snapshot loading pokes catalog
  // state directly — one final bump settles any plan cached pre-attach.
  BumpCatalogVersion();
  return Status::OK();
}

Status Database::set_wal_mode(WalMode mode) {
  if (wal_ == nullptr || mode == wal_mode_) {
    wal_mode_ = mode;
    return Status::OK();
  }
  // Leaving a buffered mode must not abandon its pending tail: those
  // statements were acknowledged under the old contract.
  TIP_RETURN_IF_ERROR(wal_->Sync());
  // Crossing the `off` boundary in either direction re-baselines the
  // log with a checkpoint. Without it, records appended after an
  // unlogged gap encode mutate ordinals against a state that includes
  // the gap's writes — state the log never saw — and replay would
  // resolve them to the wrong rows. The checkpoint snapshots the
  // current state and rotates the log, so whatever is appended next
  // replays against exactly the state it was logged under. If the
  // checkpoint fails, refuse the transition: the old mode keeps its
  // (still consistent) contract.
  if (mode == WalMode::kOff || wal_mode_ == WalMode::kOff) {
    TIP_RETURN_IF_ERROR(Checkpoint());
    // The re-baseline rotated the log under a new contract; cached
    // plans are conservatively re-planned at the same boundary.
    BumpCatalogVersion();
  }
  wal_mode_ = mode;
  return Status::OK();
}

Status Database::Checkpoint() {
  if (wal_ == nullptr) {
    return Status::InvalidArgument("no durable directory attached");
  }
  // Any session's open transaction refuses the checkpoint: snapshotting
  // uncommitted rows — or rotating away an open bracket — would tear
  // it, and even a read-only pin deserves a stable view of the tables.
  if (open_txns_.load(std::memory_order_acquire) > 0) {
    return Status::InvalidArgument(
        "CHECKPOINT is not allowed inside a transaction; "
        "COMMIT or ROLLBACK first");
  }
  // A checkpoint while tables sit in quarantine would publish a
  // snapshot with the damaged tables simply absent — silently turning
  // an explicit, recoverable quarantine into permanent loss. The
  // operator must decide first: DROP the damaged tables (accepting the
  // loss), then checkpoint.
  if (catalog_.quarantine_count() > 0) {
    return Status::InvalidArgument(
        "CHECKPOINT refused: " + std::to_string(catalog_.quarantine_count()) +
        " table(s) quarantined; inspect tip_health(), DROP the damaged "
        "tables to accept the loss, then retry");
  }
  std::lock_guard<std::mutex> lock(checkpoint_mu_);
  TIP_RETURN_IF_ERROR(fault::MaybeFail("checkpoint.begin"));
  // `lsn` is the first LSN the snapshot does NOT cover. No writes can
  // interleave here (writers are serialized externally), so the
  // snapshot taken next covers exactly [.., lsn).
  const uint64_t lsn = wal_->next_lsn();
  const std::string file = "snapshot." + std::to_string(lsn) + ".tip";
  TIP_RETURN_IF_ERROR(SaveSnapshotToFile(*this, durable_dir_ + "/" + file));

  CheckpointMeta meta;
  meta.lsn = lsn;
  meta.snapshot_file = file;
  for (const auto& [name, ddl] : sql_function_ddl_) {
    meta.function_ddl.push_back(ddl);
  }
  TIP_RETURN_IF_ERROR(fault::MaybeFail("checkpoint.commit"));
  TIP_RETURN_IF_ERROR(WriteCheckpointMeta(durable_dir_, meta));
  durability_.checkpoints.fetch_add(1, std::memory_order_relaxed);

  // Published. A failure past this point costs only disk space: the old
  // log's records sit below `lsn` and recovery skips them.
  Status rotated = wal_->Rotate(lsn);
  RemoveStaleSnapshots(durable_dir_, file);
  if (rotated.ok() && scrub_enabled_.load(std::memory_order_relaxed)) {
    // Background scrub: one table's CHECK per checkpoint interval. The
    // checkpoint has already published, so a scrub error (an index
    // rebuild failure, say) must not retroactively fail it; corrupt
    // findings land in the health counters and manifest instead.
    (void)ScrubTick();
  }
  return rotated;
}

Result<std::string> Database::ScrubTick() {
  std::vector<std::string> names = catalog_.TableNames();
  if (names.empty()) return std::string();
  std::sort(names.begin(), names.end());
  // The next table strictly after the cursor, wrapping to the front —
  // a stable round-robin walk even as tables come and go between ticks.
  std::string target;
  for (const std::string& name : names) {
    if (name > scrub_cursor_) {
      target = name;
      break;
    }
  }
  if (target.empty()) target = names.front();
  scrub_cursor_ = target;
  integrity_.scrub_ticks.fetch_add(1, std::memory_order_relaxed);

  Result<Table*> lookup = catalog_.GetTable(target);
  if (!lookup.ok()) {
    if (lookup.status().code() == StatusCode::kCorruption) {
      // Quarantined: already-known damage, still worth counting so
      // tip_health() shows the scrubber is revisiting it.
      RecordScrub(1, 1);
      return target;
    }
    // Dropped between TableNames and the lookup — nothing to scrub.
    return target;
  }
  TIP_ASSIGN_OR_RETURN(CheckFinding finding, CheckTable(this, *lookup,
                                                        nullptr));
  RecordScrub(1, finding.ok ? 0 : 1);
  if (!finding.ok) {
    std::lock_guard<std::mutex> lock(integrity_mu_);
    corruption_manifest_.push_back(
        {target, "(online scrub)", 0, 0, finding.detail});
  }
  return target;
}

Status Database::SyncWal() {
  if (wal_ == nullptr) return Status::OK();
  return wal_->Sync();
}

void Database::set_wal_group_size(uint64_t n) {
  wal_group_size_ = n == 0 ? 1 : n;
  if (wal_ != nullptr) wal_->set_group_records(wal_group_size_);
}

DurabilityStats Database::durability_stats() const {
  DurabilityStats stats;
  stats.checkpoints = durability_.checkpoints.load(std::memory_order_relaxed);
  stats.recoveries_run =
      durability_.recoveries_run.load(std::memory_order_relaxed);
  stats.records_replayed =
      durability_.records_replayed.load(std::memory_order_relaxed);
  stats.torn_tail_truncations =
      durability_.torn_tail_truncations.load(std::memory_order_relaxed);
  stats.txns_committed =
      durability_.txns_committed.load(std::memory_order_relaxed);
  stats.txns_rolled_back =
      durability_.txns_rolled_back.load(std::memory_order_relaxed);
  stats.txn_records_discarded =
      durability_.txn_records_discarded.load(std::memory_order_relaxed);
  if (wal_ != nullptr) {
    stats.wal = wal_->stats();
    stats.wal_next_lsn = wal_->next_lsn();
  }
  return stats;
}

IntegrityStats Database::integrity_stats() const {
  IntegrityStats stats;
  stats.scrubs_run = integrity_.scrubs_run.load(std::memory_order_relaxed);
  stats.objects_checked =
      integrity_.objects_checked.load(std::memory_order_relaxed);
  stats.corruptions_found =
      integrity_.corruptions_found.load(std::memory_order_relaxed);
  stats.tables_quarantined = catalog_.quarantine_count();
  stats.scrub_ticks = integrity_.scrub_ticks.load(std::memory_order_relaxed);
  return stats;
}

std::vector<CorruptionManifestEntry> Database::corruption_manifest() const {
  std::lock_guard<std::mutex> lock(integrity_mu_);
  return corruption_manifest_;
}

void Database::RecordScrub(uint64_t objects_checked,
                           uint64_t corruptions_found) {
  integrity_.scrubs_run.fetch_add(1, std::memory_order_relaxed);
  integrity_.objects_checked.fetch_add(objects_checked,
                                       std::memory_order_relaxed);
  integrity_.corruptions_found.fetch_add(corruptions_found,
                                         std::memory_order_relaxed);
}

}  // namespace tip::engine
