#ifndef TIP_ENGINE_SESSION_CONTEXT_H_
#define TIP_ENGINE_SESSION_CONTEXT_H_

// Per-session execution state (DESIGN.md section 13).
//
// PR 9 gave every remote session its own NOW override and resource
// budgets by *swapping* them into global Database fields while the
// session held the server's exclusive execution gate. A shared gate
// breaks that trick: two readers run at once, so the state they
// ground against must travel with the statement instead of living in
// the engine singleton. SessionContext is that vehicle. The server
// owns one per connection; the embedded client and C API use the
// Database's built-in global session so their single-threaded
// behaviour is unchanged.
//
// Locking: `now`, `txn_pin` and `txn_mark` are guarded by
// Database::session_mu_ (one mutex for all sessions — these fields
// are touched once per statement, not per row). The resource knobs
// are atomics because guard arming and `tip_server_stats` polls read
// them from other threads without taking the session lock.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <thread>

#include "core/chronon.h"
#include "core/tx_context.h"

namespace tip::engine {

struct SessionContext {
  SessionContext() = default;
  SessionContext(const SessionContext&) = delete;
  SessionContext& operator=(const SessionContext&) = delete;

  // --- Guarded by Database::session_mu_ ---------------------------------
  // SET NOW override: statements ground NOW-relative values here.
  std::optional<Chronon> now;
  // Set between BEGIN and COMMIT/ROLLBACK: every statement in the
  // transaction reuses this grounding, so NOW is stable for the whole
  // transaction. Many sessions may hold read-only pins concurrently;
  // only one of them (the writer-slot owner) may ever mutate tables.
  std::optional<TxContext> txn_pin;

  // Thread that opened the transaction. The txn error contract
  // auto-aborts on fatal statement failures, but only when the
  // failing statement ran on the owning thread — a reader racing on
  // another thread must not roll back this session's transaction.
  std::atomic<std::thread::id> txn_thread{};

  // --- Atomics (read cross-thread without session_mu_) ------------------
  std::atomic<int64_t> statement_timeout_ms{0};
  std::atomic<size_t> memory_limit_kb{0};
  std::atomic<size_t> parallel_workers{1};
  std::atomic<size_t> parallel_min_rows{4096};
};

}  // namespace tip::engine

#endif  // TIP_ENGINE_SESSION_CONTEXT_H_
