#ifndef TIP_ENGINE_CATALOG_CATALOG_H_
#define TIP_ENGINE_CATALOG_CATALOG_H_

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/tx_context.h"
#include "engine/index/interval_index.h"
#include "engine/index/segmented_index.h"
#include "engine/storage/heap_table.h"
#include "engine/types/datum.h"
#include "engine/types/type.h"

namespace tip::engine {

/// One column of a table.
struct Column {
  std::string name;  // stored lower-case; lookups are case-insensitive
  TypeId type;
};

/// A secondary interval index over one column, segmented into a
/// persistent absolute part and a NOW-dependent overlay (see
/// IntervalIndexState). The index materializes lazily; a table write
/// invalidates both segments, a change of the transaction time only the
/// overlay. (Indexing NOW-relative data is the difficulty Bliujute et
/// al. discuss; segmenting confines the NOW-induced churn to the rows
/// that actually mention NOW.)
struct IntervalIndexDef {
  std::string name;
  size_t column;
  IntervalKeyFn key_fn;

  /// Lazily built segments + counters. Behind a pointer both to keep
  /// the def movable (std::mutex is not) and to give the const query
  /// path interior mutability without `mutable` members.
  std::unique_ptr<IntervalIndexState> state;

  IndexStatsSnapshot stats() const { return state->stats(); }
};

/// A named table: schema + heap storage + secondary indexes.
class Table {
 public:
  Table(std::string name, std::vector<Column> columns);

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  const std::string& name() const { return name_; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Case-insensitive column lookup; -1 on miss.
  int FindColumn(std::string_view name) const;

  HeapTable& heap() { return heap_; }
  const HeapTable& heap() const { return heap_; }

  /// Declares an interval index over `column`. AlreadyExists on a
  /// duplicate index name; InvalidArgument on a bad column.
  Status CreateIntervalIndex(std::string_view index_name, size_t column,
                             IntervalKeyFn key_fn);

  Status DropIndex(std::string_view index_name);

  /// Returns a probe view over the (lazily rebuilt) interval index on
  /// `column`, consistent with transaction time `ctx`; NotFound if no
  /// index covers the column. Rebuild failures (a stored value failing
  /// to ground) surface as an error and leave the previous index state
  /// intact. Safe to call concurrently from multiple threads.
  Result<IntervalIndexView> GetIntervalIndex(size_t column,
                                             const TxContext& ctx) const;

  /// True iff some interval index is declared over `column`.
  bool HasIntervalIndex(size_t column) const;

  /// Counters of the interval index on `column`; nullopt if none.
  std::optional<IndexStatsSnapshot> IntervalIndexStats(size_t column) const;

  const std::vector<IntervalIndexDef>& interval_indexes() const {
    return interval_indexes_;
  }

 private:
  std::string name_;
  std::vector<Column> columns_;
  HeapTable heap_;
  std::vector<IntervalIndexDef> interval_indexes_;
};

/// The database catalog: name-addressable tables.
class Catalog {
 public:
  Catalog() = default;

  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Creates a table; AlreadyExists on duplicate name, InvalidArgument
  /// on an empty or duplicate-column schema.
  Result<Table*> CreateTable(std::string_view name,
                             std::vector<Column> columns);

  /// Drops a table, or clears a name-only quarantine entry for a table
  /// whose storage never made it back (salvaged snapshot section lost).
  /// NotFound only when the name matches neither.
  Status DropTable(std::string_view name);

  /// Case-insensitive lookup; NotFound on miss, Corruption when the
  /// table is quarantined (the single enforcement point keeping both
  /// the planner and DML away from damaged tables).
  Result<Table*> GetTable(std::string_view name);
  Result<const Table*> GetTable(std::string_view name) const;

  /// Lookup that ignores quarantine — for integrity tooling that must
  /// inspect a damaged table. NotFound on miss.
  Result<Table*> GetTableAnyState(std::string_view name);

  std::vector<std::string> TableNames() const;

  /// Marks `name` as quarantined with a human-readable cause: lookups
  /// through GetTable return Corruption until the table is dropped. The
  /// name need not exist in the catalog (a snapshot section can be lost
  /// before the schema was ever readable). Fires the change listener so
  /// cached plans holding raw Table pointers are invalidated.
  void Quarantine(std::string_view name, std::string cause);

  bool IsQuarantined(std::string_view name) const;

  /// (table, cause) pairs, sorted by table name.
  std::vector<std::pair<std::string, std::string>> QuarantineList() const;

  size_t quarantine_count() const { return quarantined_.size(); }

  /// Installs the per-row content hasher applied to every current and
  /// future table's heap (reseeding their running checksums).
  void SetRowHasher(HeapTable::RowHasher hasher);

  /// Invoked after every successful CreateTable/DropTable. The Database
  /// routes this to its catalog-version bump: cached plans hold raw
  /// Table pointers, so every table-set change must invalidate them.
  void SetChangeListener(std::function<void()> fn) {
    on_change_ = std::move(fn);
  }

 private:
  void NotifyChanged() {
    if (on_change_) on_change_();
  }

  std::vector<std::unique_ptr<Table>> tables_;
  std::function<void()> on_change_;
  std::map<std::string, std::string> quarantined_;  // lower-case name → cause
  HeapTable::RowHasher row_hasher_;
};

}  // namespace tip::engine

#endif  // TIP_ENGINE_CATALOG_CATALOG_H_
