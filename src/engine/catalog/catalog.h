#ifndef TIP_ENGINE_CATALOG_CATALOG_H_
#define TIP_ENGINE_CATALOG_CATALOG_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/tx_context.h"
#include "engine/index/interval_index.h"
#include "engine/storage/heap_table.h"
#include "engine/types/datum.h"
#include "engine/types/type.h"

namespace tip::engine {

/// One column of a table.
struct Column {
  std::string name;  // stored lower-case; lookups are case-insensitive
  TypeId type;
};

/// Extracts the closed int64 interval covered by an indexable value —
/// for TIP, the bounding period of an Element (grounded under `ctx`) or
/// a Period itself. Returning nullopt skips the row (NULL or an empty
/// Element). This is the "access method support function" an index
/// DataBlade registers for its types.
using IntervalKeyFn = std::function<Result<std::optional<
    std::pair<int64_t, int64_t>>>(const Datum&, const TxContext&)>;

/// A secondary interval index over one column. The index materializes
/// lazily and is invalidated by any table write *or* by a change of the
/// transaction time: a NOW-relative Element's bounding period moves as
/// time advances, so an index built at one NOW is stale at another.
/// (This is the fundamental indexing difficulty with NOW the literature
/// discusses; rebuilding on NOW change is the simple correct policy.)
struct IntervalIndexDef {
  std::string name;
  size_t column;
  IntervalKeyFn key_fn;

  // Lazily built state.
  mutable IntervalIndex index;
  mutable uint64_t built_version = ~uint64_t{0};
  mutable int64_t built_now = 0;
};

/// A named table: schema + heap storage + secondary indexes.
class Table {
 public:
  Table(std::string name, std::vector<Column> columns);

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  const std::string& name() const { return name_; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Case-insensitive column lookup; -1 on miss.
  int FindColumn(std::string_view name) const;

  HeapTable& heap() { return heap_; }
  const HeapTable& heap() const { return heap_; }

  /// Declares an interval index over `column`. AlreadyExists on a
  /// duplicate index name; InvalidArgument on a bad column.
  Status CreateIntervalIndex(std::string_view index_name, size_t column,
                             IntervalKeyFn key_fn);

  Status DropIndex(std::string_view index_name);

  /// Returns the (lazily rebuilt) interval index over `column` under
  /// transaction time `ctx`; NotFound if no index covers the column.
  /// Rebuild failures (a stored value failing to ground) surface as an
  /// error.
  Result<const IntervalIndex*> GetIntervalIndex(size_t column,
                                                const TxContext& ctx) const;

  /// True iff some interval index is declared over `column`.
  bool HasIntervalIndex(size_t column) const;

  const std::vector<IntervalIndexDef>& interval_indexes() const {
    return interval_indexes_;
  }

 private:
  std::string name_;
  std::vector<Column> columns_;
  HeapTable heap_;
  std::vector<IntervalIndexDef> interval_indexes_;
};

/// The database catalog: name-addressable tables.
class Catalog {
 public:
  Catalog() = default;

  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Creates a table; AlreadyExists on duplicate name, InvalidArgument
  /// on an empty or duplicate-column schema.
  Result<Table*> CreateTable(std::string_view name,
                             std::vector<Column> columns);

  Status DropTable(std::string_view name);

  /// Case-insensitive lookup; NotFound on miss.
  Result<Table*> GetTable(std::string_view name);
  Result<const Table*> GetTable(std::string_view name) const;

  std::vector<std::string> TableNames() const;

 private:
  std::vector<std::unique_ptr<Table>> tables_;
};

}  // namespace tip::engine

#endif  // TIP_ENGINE_CATALOG_CATALOG_H_
