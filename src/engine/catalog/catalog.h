#ifndef TIP_ENGINE_CATALOG_CATALOG_H_
#define TIP_ENGINE_CATALOG_CATALOG_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/tx_context.h"
#include "engine/index/interval_index.h"
#include "engine/index/segmented_index.h"
#include "engine/storage/heap_table.h"
#include "engine/types/datum.h"
#include "engine/types/type.h"

namespace tip::engine {

/// One column of a table.
struct Column {
  std::string name;  // stored lower-case; lookups are case-insensitive
  TypeId type;
};

/// A secondary interval index over one column, segmented into a
/// persistent absolute part and a NOW-dependent overlay (see
/// IntervalIndexState). The index materializes lazily; a table write
/// invalidates both segments, a change of the transaction time only the
/// overlay. (Indexing NOW-relative data is the difficulty Bliujute et
/// al. discuss; segmenting confines the NOW-induced churn to the rows
/// that actually mention NOW.)
struct IntervalIndexDef {
  std::string name;
  size_t column;
  IntervalKeyFn key_fn;

  /// Lazily built segments + counters. Behind a pointer both to keep
  /// the def movable (std::mutex is not) and to give the const query
  /// path interior mutability without `mutable` members.
  std::unique_ptr<IntervalIndexState> state;

  IndexStatsSnapshot stats() const { return state->stats(); }
};

/// A named table: schema + heap storage + secondary indexes.
class Table {
 public:
  Table(std::string name, std::vector<Column> columns);

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  const std::string& name() const { return name_; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Case-insensitive column lookup; -1 on miss.
  int FindColumn(std::string_view name) const;

  HeapTable& heap() { return heap_; }
  const HeapTable& heap() const { return heap_; }

  /// Declares an interval index over `column`. AlreadyExists on a
  /// duplicate index name; InvalidArgument on a bad column.
  Status CreateIntervalIndex(std::string_view index_name, size_t column,
                             IntervalKeyFn key_fn);

  Status DropIndex(std::string_view index_name);

  /// Returns a probe view over the (lazily rebuilt) interval index on
  /// `column`, consistent with transaction time `ctx`; NotFound if no
  /// index covers the column. Rebuild failures (a stored value failing
  /// to ground) surface as an error and leave the previous index state
  /// intact. Safe to call concurrently from multiple threads.
  Result<IntervalIndexView> GetIntervalIndex(size_t column,
                                             const TxContext& ctx) const;

  /// True iff some interval index is declared over `column`.
  bool HasIntervalIndex(size_t column) const;

  /// Counters of the interval index on `column`; nullopt if none.
  std::optional<IndexStatsSnapshot> IntervalIndexStats(size_t column) const;

  const std::vector<IntervalIndexDef>& interval_indexes() const {
    return interval_indexes_;
  }

 private:
  std::string name_;
  std::vector<Column> columns_;
  HeapTable heap_;
  std::vector<IntervalIndexDef> interval_indexes_;
};

/// The database catalog: name-addressable tables.
class Catalog {
 public:
  Catalog() = default;

  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Creates a table; AlreadyExists on duplicate name, InvalidArgument
  /// on an empty or duplicate-column schema.
  Result<Table*> CreateTable(std::string_view name,
                             std::vector<Column> columns);

  Status DropTable(std::string_view name);

  /// Case-insensitive lookup; NotFound on miss.
  Result<Table*> GetTable(std::string_view name);
  Result<const Table*> GetTable(std::string_view name) const;

  std::vector<std::string> TableNames() const;

  /// Invoked after every successful CreateTable/DropTable. The Database
  /// routes this to its catalog-version bump: cached plans hold raw
  /// Table pointers, so every table-set change must invalidate them.
  void SetChangeListener(std::function<void()> fn) {
    on_change_ = std::move(fn);
  }

 private:
  void NotifyChanged() {
    if (on_change_) on_change_();
  }

  std::vector<std::unique_ptr<Table>> tables_;
  std::function<void()> on_change_;
};

}  // namespace tip::engine

#endif  // TIP_ENGINE_CATALOG_CATALOG_H_
