#ifndef TIP_ENGINE_CATALOG_CAST_REGISTRY_H_
#define TIP_ENGINE_CATALOG_CAST_REGISTRY_H_

#include <functional>
#include <vector>

#include "common/status.h"
#include "engine/types/datum.h"
#include "engine/types/eval_context.h"

namespace tip::engine {

/// Converts one value to the target type; may fail (e.g. a malformed
/// string literal cast to a TIP type, or a NOW-relative Instant grounding
/// out of range).
using CastFn = std::function<Result<Datum>(const Datum&, EvalContext&)>;

/// One edge in the cast graph. Implicit casts participate in overload
/// resolution and assignment coercion (the mechanism behind the paper's
/// "TIP also uses casts to automatically convert SQL strings to and from
/// TIP datatypes"); explicit casts additionally require `::type` syntax.
struct Cast {
  TypeId from;
  TypeId to;
  bool implicit;
  CastFn fn;
};

/// The engine's cast graph. Lookup is exact (no transitive chaining):
/// this mirrors Informix, where a single registered cast is applied per
/// coercion step and keeps overload resolution predictable.
class CastRegistry {
 public:
  CastRegistry() = default;

  CastRegistry(const CastRegistry&) = delete;
  CastRegistry& operator=(const CastRegistry&) = delete;

  /// Registers a cast; AlreadyExists if (from, to) is present.
  Status Register(TypeId from, TypeId to, bool implicit, CastFn fn);

  /// Finds the cast from `from` to `to`; nullptr on miss. When
  /// `require_implicit` is set, explicit-only casts are not returned.
  const Cast* Find(TypeId from, TypeId to, bool require_implicit) const;

  /// All registered casts (catalog introspection, tests).
  const std::vector<Cast>& casts() const { return casts_; }

  /// Invoked after every successful Register. The Database routes this
  /// to its catalog-version bump: Find hands out pointers into casts_,
  /// which a later Register may reallocate from under cached plans.
  void SetChangeListener(std::function<void()> fn) {
    on_change_ = std::move(fn);
  }

 private:
  std::vector<Cast> casts_;
  std::function<void()> on_change_;
};

}  // namespace tip::engine

#endif  // TIP_ENGINE_CATALOG_CAST_REGISTRY_H_
