#include "engine/catalog/routine_registry.h"

#include "common/string_util.h"

namespace tip::engine {

namespace {

// A bare NULL literal (type kNull) is acceptable for any parameter type
// without a cast; strict routines will short-circuit it to NULL anyway.
bool ExactMatch(const Routine& r, const std::vector<TypeId>& args) {
  if (r.params.size() != args.size()) return false;
  for (size_t i = 0; i < args.size(); ++i) {
    if (args[i] != r.params[i] && args[i] != TypeId::kNull) return false;
  }
  return true;
}

// Returns true and fills `out_casts` and `cast_count` iff every
// argument either matches the parameter type or has an implicit cast
// to it.
bool CastMatch(const Routine& r, const std::vector<TypeId>& args,
               const CastRegistry& casts,
               std::vector<const Cast*>* out_casts, size_t* cast_count) {
  if (r.params.size() != args.size()) return false;
  std::vector<const Cast*> chosen(args.size(), nullptr);
  size_t count = 0;
  for (size_t i = 0; i < args.size(); ++i) {
    if (args[i] == r.params[i] || args[i] == TypeId::kNull) continue;
    const Cast* c = casts.Find(args[i], r.params[i],
                               /*require_implicit=*/true);
    if (c == nullptr) return false;
    chosen[i] = c;
    ++count;
  }
  *out_casts = std::move(chosen);
  *cast_count = count;
  return true;
}

std::string SignatureString(std::string_view name,
                            const std::vector<TypeId>& args,
                            const TypeRegistry* types) {
  std::string out(name);
  out += "(";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) out += ", ";
    if (types != nullptr) {
      out += types->Get(args[i]).name;
    } else {
      out += std::to_string(static_cast<int32_t>(args[i]));
    }
  }
  out += ")";
  return out;
}

}  // namespace

Status RoutineRegistry::Register(Routine routine) {
  routine.name = ToLowerAscii(routine.name);
  for (const Routine& existing : routines_) {
    if (existing.name == routine.name &&
        existing.params == routine.params) {
      return Status::AlreadyExists("routine '" + routine.name +
                                   "' already has this signature");
    }
  }
  routines_.push_back(std::move(routine));
  NotifyChanged();
  return Status::OK();
}

Result<ResolvedRoutine> RoutineRegistry::Resolve(
    std::string_view name, const std::vector<TypeId>& arg_types,
    const CastRegistry& casts, const TypeRegistry* types) const {
  const std::string lower = ToLowerAscii(name);
  bool name_seen = false;

  // Pass 1: exact signature match.
  for (const Routine& r : routines_) {
    if (r.name != lower) continue;
    name_seen = true;
    if (ExactMatch(r, arg_types)) {
      ResolvedRoutine resolved;
      resolved.routine = &r;
      resolved.arg_casts.assign(arg_types.size(), nullptr);
      return resolved;
    }
  }

  // Pass 2: the candidate reachable through the fewest implicit casts
  // wins; a tie at the minimum is ambiguous.
  const Routine* candidate = nullptr;
  std::vector<const Cast*> candidate_casts;
  size_t best_count = 0;
  bool tied = false;
  for (const Routine& r : routines_) {
    if (r.name != lower) continue;
    std::vector<const Cast*> arg_casts;
    size_t count = 0;
    if (!CastMatch(r, arg_types, casts, &arg_casts, &count)) continue;
    if (candidate == nullptr || count < best_count) {
      candidate = &r;
      candidate_casts = std::move(arg_casts);
      best_count = count;
      tied = false;
    } else if (count == best_count) {
      tied = true;
    }
  }
  if (candidate != nullptr) {
    if (tied) {
      return Status::TypeError(
          "call to " + SignatureString(lower, arg_types, types) +
          " is ambiguous: multiple overloads match through implicit casts");
    }
    ResolvedRoutine resolved;
    resolved.routine = candidate;
    resolved.arg_casts = std::move(candidate_casts);
    return resolved;
  }

  if (!name_seen) {
    return Status::NotFound("unknown routine '" + lower + "'");
  }
  return Status::TypeError("no overload of '" + lower +
                           "' matches the argument types " +
                           SignatureString(lower, arg_types, types));
}

Status RoutineRegistry::Remove(std::string_view name) {
  const std::string lower = ToLowerAscii(name);
  size_t removed = 0;
  for (size_t i = routines_.size(); i-- > 0;) {
    if (routines_[i].name == lower) {
      routines_.erase(routines_.begin() + static_cast<ptrdiff_t>(i));
      ++removed;
    }
  }
  if (removed == 0) {
    return Status::NotFound("no routine named '" + lower + "'");
  }
  NotifyChanged();
  return Status::OK();
}

bool RoutineRegistry::Exists(std::string_view name) const {
  const std::string lower = ToLowerAscii(name);
  for (const Routine& r : routines_) {
    if (r.name == lower) return true;
  }
  return false;
}

std::vector<const Routine*> RoutineRegistry::Overloads(
    std::string_view name) const {
  const std::string lower = ToLowerAscii(name);
  std::vector<const Routine*> out;
  for (const Routine& r : routines_) {
    if (r.name == lower) out.push_back(&r);
  }
  return out;
}

}  // namespace tip::engine
