#include "engine/catalog/cast_registry.h"

namespace tip::engine {

Status CastRegistry::Register(TypeId from, TypeId to, bool implicit,
                              CastFn fn) {
  if (Find(from, to, /*require_implicit=*/false) != nullptr) {
    return Status::AlreadyExists("cast already registered");
  }
  casts_.push_back(Cast{from, to, implicit, std::move(fn)});
  if (on_change_) on_change_();
  return Status::OK();
}

const Cast* CastRegistry::Find(TypeId from, TypeId to,
                               bool require_implicit) const {
  for (const Cast& c : casts_) {
    if (c.from == from && c.to == to) {
      if (require_implicit && !c.implicit) return nullptr;
      return &c;
    }
  }
  return nullptr;
}

}  // namespace tip::engine
