#include "engine/catalog/catalog.h"

#include "common/string_util.h"

namespace tip::engine {

Table::Table(std::string name, std::vector<Column> columns)
    : name_(std::move(name)), columns_(std::move(columns)) {}

int Table::FindColumn(std::string_view name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (EqualsIgnoreCase(columns_[i].name, name)) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

Status Table::CreateIntervalIndex(std::string_view index_name, size_t column,
                                  IntervalKeyFn key_fn) {
  if (column >= columns_.size()) {
    return Status::InvalidArgument("index column out of range");
  }
  for (const IntervalIndexDef& def : interval_indexes_) {
    if (EqualsIgnoreCase(def.name, index_name)) {
      return Status::AlreadyExists("index '" + std::string(index_name) +
                                   "' already exists");
    }
  }
  IntervalIndexDef def;
  def.name = ToLowerAscii(index_name);
  def.column = column;
  def.key_fn = std::move(key_fn);
  def.state = std::make_unique<IntervalIndexState>();
  interval_indexes_.push_back(std::move(def));
  return Status::OK();
}

Status Table::DropIndex(std::string_view index_name) {
  for (size_t i = 0; i < interval_indexes_.size(); ++i) {
    if (EqualsIgnoreCase(interval_indexes_[i].name, index_name)) {
      interval_indexes_.erase(interval_indexes_.begin() +
                              static_cast<ptrdiff_t>(i));
      return Status::OK();
    }
  }
  return Status::NotFound("index '" + std::string(index_name) +
                          "' does not exist");
}

Result<IntervalIndexView> Table::GetIntervalIndex(
    size_t column, const TxContext& ctx) const {
  for (const IntervalIndexDef& def : interval_indexes_) {
    if (def.column != column) continue;
    return def.state->GetView(heap_, column, def.key_fn, ctx);
  }
  return Status::NotFound("no interval index on column");
}

bool Table::HasIntervalIndex(size_t column) const {
  for (const IntervalIndexDef& def : interval_indexes_) {
    if (def.column == column) return true;
  }
  return false;
}

std::optional<IndexStatsSnapshot> Table::IntervalIndexStats(
    size_t column) const {
  for (const IntervalIndexDef& def : interval_indexes_) {
    if (def.column == column) return def.stats();
  }
  return std::nullopt;
}

Result<Table*> Catalog::CreateTable(std::string_view name,
                                    std::vector<Column> columns) {
  if (columns.empty()) {
    return Status::InvalidArgument("table '" + std::string(name) +
                                   "' must have at least one column");
  }
  for (size_t i = 0; i < columns.size(); ++i) {
    columns[i].name = ToLowerAscii(columns[i].name);
    for (size_t j = 0; j < i; ++j) {
      if (columns[j].name == columns[i].name) {
        return Status::InvalidArgument("duplicate column '" +
                                       columns[i].name + "'");
      }
    }
  }
  for (const auto& table : tables_) {
    if (EqualsIgnoreCase(table->name(), name)) {
      return Status::AlreadyExists("table '" + std::string(name) +
                                   "' already exists");
    }
  }
  tables_.push_back(
      std::make_unique<Table>(ToLowerAscii(name), std::move(columns)));
  if (row_hasher_) tables_.back()->heap().set_row_hasher(row_hasher_);
  NotifyChanged();
  return tables_.back().get();
}

Status Catalog::DropTable(std::string_view name) {
  const std::string lower = ToLowerAscii(name);
  const bool was_quarantined = quarantined_.erase(lower) > 0;
  for (size_t i = 0; i < tables_.size(); ++i) {
    if (EqualsIgnoreCase(tables_[i]->name(), name)) {
      tables_.erase(tables_.begin() + static_cast<ptrdiff_t>(i));
      NotifyChanged();
      return Status::OK();
    }
  }
  if (was_quarantined) {
    // Name-only quarantine entry: the table's storage never came back,
    // so dropping it just forgets the damage.
    NotifyChanged();
    return Status::OK();
  }
  return Status::NotFound("table '" + std::string(name) +
                          "' does not exist");
}

Result<Table*> Catalog::GetTable(std::string_view name) {
  for (const auto& table : tables_) {
    if (EqualsIgnoreCase(table->name(), name)) {
      auto it = quarantined_.find(table->name());
      if (it != quarantined_.end()) {
        return Status::Corruption("table '" + table->name() +
                                  "' is quarantined: " + it->second);
      }
      return table.get();
    }
  }
  auto it = quarantined_.find(ToLowerAscii(name));
  if (it != quarantined_.end()) {
    return Status::Corruption("table '" + it->first +
                              "' is quarantined: " + it->second);
  }
  return Status::NotFound("table '" + std::string(name) +
                          "' does not exist");
}

Result<const Table*> Catalog::GetTable(std::string_view name) const {
  TIP_ASSIGN_OR_RETURN(Table * table,
                       const_cast<Catalog*>(this)->GetTable(name));
  return static_cast<const Table*>(table);
}

Result<Table*> Catalog::GetTableAnyState(std::string_view name) {
  for (const auto& table : tables_) {
    if (EqualsIgnoreCase(table->name(), name)) return table.get();
  }
  return Status::NotFound("table '" + std::string(name) +
                          "' does not exist");
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& table : tables_) out.push_back(table->name());
  return out;
}

void Catalog::Quarantine(std::string_view name, std::string cause) {
  quarantined_[ToLowerAscii(name)] = std::move(cause);
  NotifyChanged();
}

bool Catalog::IsQuarantined(std::string_view name) const {
  return quarantined_.count(ToLowerAscii(name)) > 0;
}

std::vector<std::pair<std::string, std::string>> Catalog::QuarantineList()
    const {
  return {quarantined_.begin(), quarantined_.end()};
}

void Catalog::SetRowHasher(HeapTable::RowHasher hasher) {
  row_hasher_ = std::move(hasher);
  for (const auto& table : tables_) {
    table->heap().set_row_hasher(row_hasher_);
  }
}

}  // namespace tip::engine
