#include "engine/catalog/catalog.h"

#include "common/string_util.h"

namespace tip::engine {

Table::Table(std::string name, std::vector<Column> columns)
    : name_(std::move(name)), columns_(std::move(columns)) {}

int Table::FindColumn(std::string_view name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (EqualsIgnoreCase(columns_[i].name, name)) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

Status Table::CreateIntervalIndex(std::string_view index_name, size_t column,
                                  IntervalKeyFn key_fn) {
  if (column >= columns_.size()) {
    return Status::InvalidArgument("index column out of range");
  }
  for (const IntervalIndexDef& def : interval_indexes_) {
    if (EqualsIgnoreCase(def.name, index_name)) {
      return Status::AlreadyExists("index '" + std::string(index_name) +
                                   "' already exists");
    }
  }
  IntervalIndexDef def;
  def.name = ToLowerAscii(index_name);
  def.column = column;
  def.key_fn = std::move(key_fn);
  def.state = std::make_unique<IntervalIndexState>();
  interval_indexes_.push_back(std::move(def));
  return Status::OK();
}

Status Table::DropIndex(std::string_view index_name) {
  for (size_t i = 0; i < interval_indexes_.size(); ++i) {
    if (EqualsIgnoreCase(interval_indexes_[i].name, index_name)) {
      interval_indexes_.erase(interval_indexes_.begin() +
                              static_cast<ptrdiff_t>(i));
      return Status::OK();
    }
  }
  return Status::NotFound("index '" + std::string(index_name) +
                          "' does not exist");
}

Result<IntervalIndexView> Table::GetIntervalIndex(
    size_t column, const TxContext& ctx) const {
  for (const IntervalIndexDef& def : interval_indexes_) {
    if (def.column != column) continue;
    return def.state->GetView(heap_, column, def.key_fn, ctx);
  }
  return Status::NotFound("no interval index on column");
}

bool Table::HasIntervalIndex(size_t column) const {
  for (const IntervalIndexDef& def : interval_indexes_) {
    if (def.column == column) return true;
  }
  return false;
}

std::optional<IndexStatsSnapshot> Table::IntervalIndexStats(
    size_t column) const {
  for (const IntervalIndexDef& def : interval_indexes_) {
    if (def.column == column) return def.stats();
  }
  return std::nullopt;
}

Result<Table*> Catalog::CreateTable(std::string_view name,
                                    std::vector<Column> columns) {
  if (columns.empty()) {
    return Status::InvalidArgument("table '" + std::string(name) +
                                   "' must have at least one column");
  }
  for (size_t i = 0; i < columns.size(); ++i) {
    columns[i].name = ToLowerAscii(columns[i].name);
    for (size_t j = 0; j < i; ++j) {
      if (columns[j].name == columns[i].name) {
        return Status::InvalidArgument("duplicate column '" +
                                       columns[i].name + "'");
      }
    }
  }
  for (const auto& table : tables_) {
    if (EqualsIgnoreCase(table->name(), name)) {
      return Status::AlreadyExists("table '" + std::string(name) +
                                   "' already exists");
    }
  }
  tables_.push_back(
      std::make_unique<Table>(ToLowerAscii(name), std::move(columns)));
  NotifyChanged();
  return tables_.back().get();
}

Status Catalog::DropTable(std::string_view name) {
  for (size_t i = 0; i < tables_.size(); ++i) {
    if (EqualsIgnoreCase(tables_[i]->name(), name)) {
      tables_.erase(tables_.begin() + static_cast<ptrdiff_t>(i));
      NotifyChanged();
      return Status::OK();
    }
  }
  return Status::NotFound("table '" + std::string(name) +
                          "' does not exist");
}

Result<Table*> Catalog::GetTable(std::string_view name) {
  for (const auto& table : tables_) {
    if (EqualsIgnoreCase(table->name(), name)) return table.get();
  }
  return Status::NotFound("table '" + std::string(name) +
                          "' does not exist");
}

Result<const Table*> Catalog::GetTable(std::string_view name) const {
  for (const auto& table : tables_) {
    if (EqualsIgnoreCase(table->name(), name)) {
      return static_cast<const Table*>(table.get());
    }
  }
  return Status::NotFound("table '" + std::string(name) +
                          "' does not exist");
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& table : tables_) out.push_back(table->name());
  return out;
}

}  // namespace tip::engine
