#ifndef TIP_ENGINE_CATALOG_AGGREGATE_REGISTRY_H_
#define TIP_ENGINE_CATALOG_AGGREGATE_REGISTRY_H_

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "engine/catalog/cast_registry.h"
#include "engine/types/datum.h"
#include "engine/types/eval_context.h"

namespace tip::engine {

/// Running state of one aggregate over one group. A fresh state is
/// created per group; Step is called once per qualifying input row;
/// Final produces the group's result.
class AggregateState {
 public:
  virtual ~AggregateState() = default;

  virtual Status Step(const Datum& value, EvalContext& ctx) = 0;
  virtual Result<Datum> Final(EvalContext& ctx) = 0;

  /// Folds another partial state of the *same* aggregate into this one,
  /// leaving `other` in an unspecified (destructible) state. Parallel
  /// aggregation builds one state per worker per group and merges them
  /// before Final; implementations may therefore assume Step is never
  /// called after Merge. Only invoked when the owning AggregateDef is
  /// marked `mergeable`; the default rejects the call so partial
  /// aggregation can never silently corrupt a non-mergeable aggregate.
  virtual Status Merge(AggregateState&& other, EvalContext& ctx) {
    (void)other;
    (void)ctx;
    return Status::Internal("aggregate state is not mergeable");
  }
};

/// One registered aggregate overload. User-defined aggregates (the TIP
/// DataBlade's `group_union` / `group_intersect`) register through the
/// same interface as the SQL builtins.
struct AggregateDef {
  std::string name;   // lower-case
  TypeId param;       // input type; ignored when any_param
  TypeId result;      // ignored when result_same_as_param
  std::function<std::unique_ptr<AggregateState>()> make_state;
  /// Strict aggregates skip NULL inputs (the SQL default).
  bool strict = true;
  /// Accepts any input type (COUNT, and MIN/MAX over comparables).
  bool any_param = false;
  /// The result type equals the input type (MIN/MAX).
  bool result_same_as_param = false;
  /// States of this aggregate support Merge, making it eligible for
  /// parallel partial aggregation. Defaults to false: an aggregate
  /// without an explicit Merge runs single-threaded.
  bool mergeable = false;
};

/// An aggregate selected by overload resolution, with an optional
/// implicit cast to apply to each input value.
struct ResolvedAggregate {
  const AggregateDef* def = nullptr;
  const Cast* arg_cast = nullptr;
  /// The concrete result type of this call (resolves
  /// `result_same_as_param`).
  TypeId result = TypeId::kNull;
};

/// Name-addressable aggregate catalog; resolution mirrors
/// RoutineRegistry (exact match, then a unique implicit-cast match).
class AggregateRegistry {
 public:
  AggregateRegistry() = default;

  AggregateRegistry(const AggregateRegistry&) = delete;
  AggregateRegistry& operator=(const AggregateRegistry&) = delete;

  /// Registers an overload; AlreadyExists on a duplicate signature.
  Status Register(AggregateDef def);

  /// Resolves `name(arg_type)`.
  Result<ResolvedAggregate> Resolve(std::string_view name, TypeId arg_type,
                                    const CastRegistry& casts) const;

  /// True iff any overload is registered under `name` — how the binder
  /// distinguishes aggregate calls from scalar routine calls.
  bool Exists(std::string_view name) const;

  /// Invoked after every successful Register. The Database routes this
  /// to its catalog-version bump: Resolve hands out pointers into
  /// defs_, which a later Register may reallocate from under cached
  /// plans.
  void SetChangeListener(std::function<void()> fn) {
    on_change_ = std::move(fn);
  }

 private:
  std::vector<AggregateDef> defs_;
  std::function<void()> on_change_;
};

}  // namespace tip::engine

#endif  // TIP_ENGINE_CATALOG_AGGREGATE_REGISTRY_H_
