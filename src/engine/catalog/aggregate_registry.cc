#include "engine/catalog/aggregate_registry.h"

#include "common/string_util.h"

namespace tip::engine {

namespace {

ResolvedAggregate MakeResolved(const AggregateDef& def, const Cast* cast,
                               TypeId arg_type) {
  ResolvedAggregate out;
  out.def = &def;
  out.arg_cast = cast;
  out.result = def.result_same_as_param
                   ? (cast != nullptr ? cast->to : arg_type)
                   : def.result;
  return out;
}

}  // namespace

Status AggregateRegistry::Register(AggregateDef def) {
  def.name = ToLowerAscii(def.name);
  for (const AggregateDef& existing : defs_) {
    if (existing.name != def.name) continue;
    if (existing.any_param || def.any_param ||
        existing.param == def.param) {
      return Status::AlreadyExists("aggregate '" + def.name +
                                   "' already has this signature");
    }
  }
  defs_.push_back(std::move(def));
  if (on_change_) on_change_();
  return Status::OK();
}

Result<ResolvedAggregate> AggregateRegistry::Resolve(
    std::string_view name, TypeId arg_type,
    const CastRegistry& casts) const {
  const std::string lower = ToLowerAscii(name);
  bool name_seen = false;
  for (const AggregateDef& def : defs_) {
    if (def.name != lower) continue;
    name_seen = true;
    if (def.any_param || def.param == arg_type ||
        arg_type == TypeId::kNull) {
      return MakeResolved(def, nullptr, arg_type);
    }
  }
  const AggregateDef* candidate = nullptr;
  const Cast* candidate_cast = nullptr;
  for (const AggregateDef& def : defs_) {
    if (def.name != lower || def.any_param) continue;
    const Cast* c = casts.Find(arg_type, def.param,
                               /*require_implicit=*/true);
    if (c != nullptr) {
      if (candidate != nullptr) {
        return Status::TypeError("aggregate call '" + lower +
                                 "' is ambiguous: multiple overloads match "
                                 "through implicit casts");
      }
      candidate = &def;
      candidate_cast = c;
    }
  }
  if (candidate != nullptr) {
    return MakeResolved(*candidate, candidate_cast, arg_type);
  }
  if (!name_seen) {
    return Status::NotFound("unknown aggregate '" + lower + "'");
  }
  return Status::TypeError("no overload of aggregate '" + lower +
                           "' accepts the argument type");
}

bool AggregateRegistry::Exists(std::string_view name) const {
  const std::string lower = ToLowerAscii(name);
  for (const AggregateDef& def : defs_) {
    if (def.name == lower) return true;
  }
  return false;
}

}  // namespace tip::engine
