#ifndef TIP_ENGINE_CATALOG_ROUTINE_REGISTRY_H_
#define TIP_ENGINE_CATALOG_ROUTINE_REGISTRY_H_

#include <deque>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "engine/catalog/cast_registry.h"
#include "engine/types/datum.h"
#include "engine/types/eval_context.h"
#include "engine/types/type.h"

namespace tip::engine {

/// Implementation of one routine overload. Arguments arrive already cast
/// to the declared parameter types.
using RoutineFn =
    std::function<Result<Datum>(const std::vector<Datum>&, EvalContext&)>;

/// One registered routine overload. Operators are ordinary routines whose
/// name is the operator symbol ("+", "-", "*", "/", "||"), which is
/// exactly how an extensible DBMS models operator overloading: the TIP
/// DataBlade "overloads built-in arithmetic operators" by registering
/// more overloads under the same names.
struct Routine {
  std::string name;             // lower-case
  std::vector<TypeId> params;
  TypeId result;
  RoutineFn fn;
  /// Strict routines return NULL without being invoked when any argument
  /// is NULL (the SQL default).
  bool strict = true;
};

/// A routine selected by overload resolution, together with the implicit
/// casts the caller must apply to each argument (nullptr = no cast).
struct ResolvedRoutine {
  const Routine* routine = nullptr;
  std::vector<const Cast*> arg_casts;
};

/// Name-addressable routine catalog with Informix-style overload
/// resolution:
///   1. an exact signature match wins;
///   2. otherwise the candidate reachable through the fewest implicit
///      casts wins — zero candidates is a TypeError ("Chronon + Chronon
///      returns a type error", as the paper puts it) and a tie at the
///      minimum cast count is an ambiguity error.
class RoutineRegistry {
 public:
  RoutineRegistry() = default;

  RoutineRegistry(const RoutineRegistry&) = delete;
  RoutineRegistry& operator=(const RoutineRegistry&) = delete;

  /// Registers an overload; AlreadyExists if the exact signature is
  /// already present under the (case-insensitive) name.
  Status Register(Routine routine);

  /// Resolves `name(arg_types...)` against the catalog. `casts` supplies
  /// the implicit-cast graph; `types`, when given, improves error
  /// messages with type names.
  Result<ResolvedRoutine> Resolve(std::string_view name,
                                  const std::vector<TypeId>& arg_types,
                                  const CastRegistry& casts,
                                  const TypeRegistry* types = nullptr) const;

  /// Removes every overload registered under `name`; NotFound if none.
  /// Used by DROP FUNCTION (the caller is responsible for restricting
  /// removal to SQL-created routines).
  Status Remove(std::string_view name);

  /// True iff any overload is registered under `name`.
  bool Exists(std::string_view name) const;

  /// Every overload registered under `name` (catalog introspection).
  std::vector<const Routine*> Overloads(std::string_view name) const;

  /// Invoked after every successful Register/Remove. The Database routes
  /// this to its catalog-version bump: cached plans hold the raw Routine
  /// pointers Resolve handed out, and Remove erases their storage.
  void SetChangeListener(std::function<void()> fn) {
    on_change_ = std::move(fn);
  }

 private:
  void NotifyChanged() {
    if (on_change_) on_change_();
  }

  // A deque keeps Routine addresses stable across Register calls:
  // ResolvedRoutine hands out raw pointers that bound expressions hold
  // for the duration of a statement.
  std::deque<Routine> routines_;
  std::function<void()> on_change_;
};

}  // namespace tip::engine

#endif  // TIP_ENGINE_CATALOG_ROUTINE_REGISTRY_H_
