#include "engine/sql/parser.h"

#include <utility>

#include "common/string_util.h"
#include "engine/sql/lexer.h"

namespace tip::engine {

namespace {

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Statement> ParseStatement();
  Result<ExprPtr> ParseBareExpression();

 private:
  // -- Token helpers ------------------------------------------------------

  const Token& Peek(size_t ahead = 0) const {
    const size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_++]; }
  bool AtEnd() const { return Peek().kind == TokenKind::kEnd; }

  /// True + consume if the next token is the given operator text.
  bool MatchOp(std::string_view op) {
    if (Peek().kind == TokenKind::kOperator && Peek().text == op) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool PeekOp(std::string_view op, size_t ahead = 0) const {
    return Peek(ahead).kind == TokenKind::kOperator &&
           Peek(ahead).text == op;
  }

  /// True + consume if the next token is the given keyword
  /// (case-insensitive identifier match).
  bool MatchKeyword(std::string_view kw) {
    if (PeekKeyword(kw)) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool PeekKeyword(std::string_view kw, size_t ahead = 0) const {
    return Peek(ahead).kind == TokenKind::kIdentifier &&
           EqualsIgnoreCase(Peek(ahead).text, kw);
  }

  Status ExpectOp(std::string_view op) {
    if (MatchOp(op)) return Status::OK();
    return Errorf("expected '" + std::string(op) + "'");
  }
  Status ExpectKeyword(std::string_view kw) {
    if (MatchKeyword(kw)) return Status::OK();
    return Errorf("expected keyword " + ToUpperAscii(kw));
  }
  Result<std::string> ExpectIdentifier(std::string_view what) {
    if (Peek().kind != TokenKind::kIdentifier) {
      return Errorf("expected " + std::string(what));
    }
    return Advance().text;
  }

  Status Errorf(const std::string& message) const {
    const Token& t = Peek();
    std::string got = t.kind == TokenKind::kEnd
                          ? "end of statement"
                          : "'" + t.text + "'";
    return Status::ParseError(message + ", got " + got + " at offset " +
                              std::to_string(t.offset));
  }

  /// Identifiers that terminate an expression / select-item list. Needed
  /// because keywords are not reserved at the lexer level.
  bool PeekClauseKeyword() const {
    static constexpr std::string_view kClauses[] = {
        "from",  "where",  "group", "having", "order",
        "limit", "offset", "on",    "join",   "inner",
        "and",   "or",     "asc",   "desc",   "as",
        "when",  "then",   "else",  "end",    "set",
        "values", "union", "intersect", "except", "all"};
    if (Peek().kind != TokenKind::kIdentifier) return false;
    for (std::string_view kw : kClauses) {
      if (EqualsIgnoreCase(Peek().text, kw)) return true;
    }
    return false;
  }

  // -- Statement productions ----------------------------------------------

  Result<Statement> ParseSelectStatement();
  Result<std::unique_ptr<SelectStmt>> ParseSelect();
  Result<std::unique_ptr<SelectStmt>> ParseSelectCore();
  Result<Statement> ParseCreate();
  Result<Statement> ParseDrop();
  Result<Statement> ParseInsert();
  Result<Statement> ParseUpdate();
  Result<Statement> ParseDelete();
  Result<Statement> ParseSet();
  Result<Statement> ParseExplain();
  Result<Statement> ParseTxnBoundary(Statement::Kind kind);
  Result<Statement> ParseCheck();

  // -- Expression productions (lowest to highest precedence) --------------

  Result<ExprPtr> ParseExpr() { return ParseOr(); }
  Result<ExprPtr> ParseOr();
  Result<ExprPtr> ParseAnd();
  Result<ExprPtr> ParseNot();
  Result<ExprPtr> ParseComparison();
  Result<ExprPtr> ParseAdditive();
  Result<ExprPtr> ParseMultiplicative();
  Result<ExprPtr> ParseUnary();
  Result<ExprPtr> ParsePostfix();
  Result<ExprPtr> ParsePrimary();
  Result<ExprPtr> ParseCase();

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

Result<Statement> Parser::ParseStatement() {
  Result<Statement> stmt = [&]() -> Result<Statement> {
    if (PeekKeyword("select")) return ParseSelectStatement();
    if (PeekKeyword("create")) return ParseCreate();
    if (PeekKeyword("drop")) return ParseDrop();
    if (PeekKeyword("insert")) return ParseInsert();
    if (PeekKeyword("update")) return ParseUpdate();
    if (PeekKeyword("delete")) return ParseDelete();
    if (PeekKeyword("set")) return ParseSet();
    if (PeekKeyword("explain")) return ParseExplain();
    if (PeekKeyword("begin")) return ParseTxnBoundary(Statement::Kind::kBegin);
    if (PeekKeyword("commit")) {
      return ParseTxnBoundary(Statement::Kind::kCommit);
    }
    if (PeekKeyword("rollback")) {
      return ParseTxnBoundary(Statement::Kind::kRollback);
    }
    if (PeekKeyword("check")) return ParseCheck();
    return Errorf("expected a SQL statement");
  }();
  if (!stmt.ok()) return stmt;
  MatchOp(";");
  if (!AtEnd()) {
    return Errorf("unexpected trailing input");
  }
  return stmt;
}

Result<ExprPtr> Parser::ParseBareExpression() {
  TIP_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
  if (!AtEnd()) return Errorf("unexpected trailing input");
  return e;
}

Result<Statement> Parser::ParseSelectStatement() {
  TIP_ASSIGN_OR_RETURN(std::unique_ptr<SelectStmt> select, ParseSelect());
  Statement stmt;
  stmt.kind = Statement::Kind::kSelect;
  stmt.select = std::move(select);
  return stmt;
}

Result<std::unique_ptr<SelectStmt>> Parser::ParseSelect() {
  TIP_ASSIGN_OR_RETURN(std::unique_ptr<SelectStmt> select,
                       ParseSelectCore());

  // Set operations chain further cores; ORDER BY / LIMIT afterwards
  // apply to the combined result.
  for (;;) {
    CompoundPart part;
    if (MatchKeyword("union")) {
      part.op = MatchKeyword("all") ? CompoundPart::Op::kUnionAll
                                    : CompoundPart::Op::kUnion;
    } else if (MatchKeyword("intersect")) {
      part.op = CompoundPart::Op::kIntersect;
    } else if (MatchKeyword("except")) {
      part.op = CompoundPart::Op::kExcept;
    } else {
      break;
    }
    TIP_ASSIGN_OR_RETURN(part.select, ParseSelectCore());
    select->compounds.push_back(std::move(part));
  }

  if (MatchKeyword("order")) {
    TIP_RETURN_IF_ERROR(ExpectKeyword("by"));
    do {
      OrderItem item;
      TIP_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (MatchKeyword("desc")) {
        item.descending = true;
      } else {
        MatchKeyword("asc");
      }
      select->order_by.push_back(std::move(item));
    } while (MatchOp(","));
  }
  if (MatchKeyword("limit")) {
    if (Peek().kind != TokenKind::kInteger) {
      return Errorf("expected integer after LIMIT");
    }
    TIP_ASSIGN_OR_RETURN(int64_t limit, ParseInt64(Advance().text));
    select->limit = limit;
    if (MatchKeyword("offset")) {
      if (Peek().kind != TokenKind::kInteger) {
        return Errorf("expected integer after OFFSET");
      }
      TIP_ASSIGN_OR_RETURN(int64_t offset, ParseInt64(Advance().text));
      select->offset = offset;
    }
  }
  return select;
}

Result<std::unique_ptr<SelectStmt>> Parser::ParseSelectCore() {
  TIP_RETURN_IF_ERROR(ExpectKeyword("select"));
  auto select = std::make_unique<SelectStmt>();
  if (MatchKeyword("distinct")) select->distinct = true;

  // Select list.
  do {
    SelectItem item;
    if (MatchOp("*")) {
      item.is_star = true;
    } else if (Peek().kind == TokenKind::kIdentifier && PeekOp(".", 1) &&
               PeekOp("*", 2)) {
      item.is_star = true;
      item.star_qualifier = Advance().text;
      Advance();  // '.'
      Advance();  // '*'
    } else {
      TIP_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (MatchKeyword("as")) {
        TIP_ASSIGN_OR_RETURN(item.alias, ExpectIdentifier("column alias"));
      } else if (Peek().kind == TokenKind::kIdentifier &&
                 !PeekClauseKeyword()) {
        item.alias = Advance().text;
      }
    }
    select->items.push_back(std::move(item));
  } while (MatchOp(","));

  // FROM.
  if (MatchKeyword("from")) {
    bool first = true;
    for (;;) {
      FromItem item;
      bool joined = false;
      if (!first) {
        if (MatchOp(",")) {
          joined = true;
        } else if (MatchKeyword("inner")) {
          TIP_RETURN_IF_ERROR(ExpectKeyword("join"));
          item.is_inner_join = true;
          joined = true;
        } else if (MatchKeyword("join")) {
          item.is_inner_join = true;
          joined = true;
        }
        if (!joined) break;
      }
      if (MatchOp("(")) {
        // Derived table: FROM (SELECT ...) alias.
        TIP_ASSIGN_OR_RETURN(item.ref.subquery, ParseSelect());
        TIP_RETURN_IF_ERROR(ExpectOp(")"));
      } else {
        TIP_ASSIGN_OR_RETURN(item.ref.table,
                             ExpectIdentifier("table name"));
      }
      if (MatchKeyword("as")) {
        TIP_ASSIGN_OR_RETURN(item.ref.alias,
                             ExpectIdentifier("table alias"));
      } else if (Peek().kind == TokenKind::kIdentifier &&
                 !PeekClauseKeyword()) {
        item.ref.alias = Advance().text;
      }
      if (item.ref.is_subquery() && item.ref.alias.empty()) {
        return Errorf("a derived table requires an alias");
      }
      if (item.is_inner_join) {
        TIP_RETURN_IF_ERROR(ExpectKeyword("on"));
        TIP_ASSIGN_OR_RETURN(item.on, ParseExpr());
      }
      select->from.push_back(std::move(item));
      first = false;
    }
  }

  if (MatchKeyword("where")) {
    TIP_ASSIGN_OR_RETURN(select->where, ParseExpr());
  }
  if (MatchKeyword("group")) {
    TIP_RETURN_IF_ERROR(ExpectKeyword("by"));
    do {
      TIP_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      select->group_by.push_back(std::move(e));
    } while (MatchOp(","));
  }
  if (MatchKeyword("having")) {
    TIP_ASSIGN_OR_RETURN(select->having, ParseExpr());
  }
  return select;
}

Result<Statement> Parser::ParseCreate() {
  TIP_RETURN_IF_ERROR(ExpectKeyword("create"));
  if (MatchKeyword("function")) {
    // CREATE FUNCTION f(a TYPE, ...) RETURNS TYPE AS '<expression>'
    // — the SPL-flavoured stored-routine form: the body is a SQL
    // expression over the parameters (and, via subqueries, the
    // database).
    Statement stmt;
    stmt.kind = Statement::Kind::kCreateFunction;
    TIP_ASSIGN_OR_RETURN(stmt.function_name,
                         ExpectIdentifier("function name"));
    TIP_RETURN_IF_ERROR(ExpectOp("("));
    if (!PeekOp(")")) {
      do {
        ColumnDef param;
        TIP_ASSIGN_OR_RETURN(param.name,
                             ExpectIdentifier("parameter name"));
        TIP_ASSIGN_OR_RETURN(param.type_name,
                             ExpectIdentifier("parameter type"));
        stmt.function_params.push_back(std::move(param));
      } while (MatchOp(","));
    }
    TIP_RETURN_IF_ERROR(ExpectOp(")"));
    TIP_RETURN_IF_ERROR(ExpectKeyword("returns"));
    TIP_ASSIGN_OR_RETURN(stmt.function_return,
                         ExpectIdentifier("return type"));
    TIP_RETURN_IF_ERROR(ExpectKeyword("as"));
    if (Peek().kind != TokenKind::kString) {
      return Errorf("expected the function body as a quoted expression");
    }
    stmt.function_body = Advance().text;
    return stmt;
  }
  if (MatchKeyword("index")) {
    Statement stmt;
    stmt.kind = Statement::Kind::kCreateIndex;
    TIP_ASSIGN_OR_RETURN(stmt.index_name, ExpectIdentifier("index name"));
    TIP_RETURN_IF_ERROR(ExpectKeyword("on"));
    TIP_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier("table name"));
    TIP_RETURN_IF_ERROR(ExpectOp("("));
    TIP_ASSIGN_OR_RETURN(stmt.index_column,
                         ExpectIdentifier("indexed column"));
    TIP_RETURN_IF_ERROR(ExpectOp(")"));
    if (MatchKeyword("using")) {
      TIP_ASSIGN_OR_RETURN(stmt.index_method,
                           ExpectIdentifier("index method"));
    } else {
      stmt.index_method = "interval";
    }
    return stmt;
  }
  TIP_RETURN_IF_ERROR(ExpectKeyword("table"));
  Statement stmt;
  stmt.kind = Statement::Kind::kCreateTable;
  TIP_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier("table name"));
  TIP_RETURN_IF_ERROR(ExpectOp("("));
  do {
    ColumnDef col;
    TIP_ASSIGN_OR_RETURN(col.name, ExpectIdentifier("column name"));
    TIP_ASSIGN_OR_RETURN(col.type_name, ExpectIdentifier("type name"));
    // Swallow CHAR(20)-style length parameters; the engine's strings are
    // unbounded, matching the paper's usage of CHAR(n) only as notation.
    if (MatchOp("(")) {
      if (Peek().kind != TokenKind::kInteger) {
        return Errorf("expected integer type parameter");
      }
      Advance();
      TIP_RETURN_IF_ERROR(ExpectOp(")"));
    }
    stmt.columns.push_back(std::move(col));
  } while (MatchOp(","));
  TIP_RETURN_IF_ERROR(ExpectOp(")"));
  return stmt;
}

Result<Statement> Parser::ParseDrop() {
  TIP_RETURN_IF_ERROR(ExpectKeyword("drop"));
  if (MatchKeyword("function")) {
    Statement stmt;
    stmt.kind = Statement::Kind::kDropFunction;
    TIP_ASSIGN_OR_RETURN(stmt.function_name,
                         ExpectIdentifier("function name"));
    return stmt;
  }
  if (MatchKeyword("index")) {
    Statement stmt;
    stmt.kind = Statement::Kind::kDropIndex;
    TIP_ASSIGN_OR_RETURN(stmt.index_name, ExpectIdentifier("index name"));
    TIP_RETURN_IF_ERROR(ExpectKeyword("on"));
    TIP_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier("table name"));
    return stmt;
  }
  TIP_RETURN_IF_ERROR(ExpectKeyword("table"));
  Statement stmt;
  stmt.kind = Statement::Kind::kDropTable;
  TIP_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier("table name"));
  return stmt;
}

Result<Statement> Parser::ParseInsert() {
  TIP_RETURN_IF_ERROR(ExpectKeyword("insert"));
  TIP_RETURN_IF_ERROR(ExpectKeyword("into"));
  Statement stmt;
  stmt.kind = Statement::Kind::kInsert;
  TIP_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier("table name"));
  if (MatchOp("(")) {
    do {
      TIP_ASSIGN_OR_RETURN(std::string col,
                           ExpectIdentifier("column name"));
      stmt.insert_columns.push_back(std::move(col));
    } while (MatchOp(","));
    TIP_RETURN_IF_ERROR(ExpectOp(")"));
  }
  TIP_RETURN_IF_ERROR(ExpectKeyword("values"));
  do {
    TIP_RETURN_IF_ERROR(ExpectOp("("));
    std::vector<ExprPtr> row;
    do {
      TIP_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      row.push_back(std::move(e));
    } while (MatchOp(","));
    TIP_RETURN_IF_ERROR(ExpectOp(")"));
    stmt.insert_rows.push_back(std::move(row));
  } while (MatchOp(","));
  return stmt;
}

Result<Statement> Parser::ParseUpdate() {
  TIP_RETURN_IF_ERROR(ExpectKeyword("update"));
  Statement stmt;
  stmt.kind = Statement::Kind::kUpdate;
  TIP_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier("table name"));
  TIP_RETURN_IF_ERROR(ExpectKeyword("set"));
  do {
    TIP_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier("column name"));
    TIP_RETURN_IF_ERROR(ExpectOp("="));
    TIP_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
    stmt.update_sets.emplace_back(std::move(col), std::move(e));
  } while (MatchOp(","));
  if (MatchKeyword("where")) {
    TIP_ASSIGN_OR_RETURN(stmt.where, ParseExpr());
  }
  return stmt;
}

// CHECK TABLE <name> / CHECK DATABASE — the online integrity scrub.
Result<Statement> Parser::ParseCheck() {
  TIP_RETURN_IF_ERROR(ExpectKeyword("check"));
  Statement stmt;
  stmt.kind = Statement::Kind::kCheck;
  if (MatchKeyword("database")) {
    stmt.check_database = true;
    return stmt;
  }
  TIP_RETURN_IF_ERROR(ExpectKeyword("table"));
  TIP_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier("table name"));
  return stmt;
}

Result<Statement> Parser::ParseDelete() {
  TIP_RETURN_IF_ERROR(ExpectKeyword("delete"));
  TIP_RETURN_IF_ERROR(ExpectKeyword("from"));
  Statement stmt;
  stmt.kind = Statement::Kind::kDelete;
  TIP_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier("table name"));
  if (MatchKeyword("where")) {
    TIP_ASSIGN_OR_RETURN(stmt.where, ParseExpr());
  }
  return stmt;
}

Result<Statement> Parser::ParseSet() {
  TIP_RETURN_IF_ERROR(ExpectKeyword("set"));
  Statement stmt;
  stmt.kind = Statement::Kind::kSet;
  TIP_ASSIGN_OR_RETURN(std::string option, ExpectIdentifier("option name"));
  stmt.option = ToLowerAscii(option);
  if (MatchOp("=")) {
    // optional '=' between option and value
  }
  // SET values are single tokens (word, string or number), not general
  // expressions — `SET hash_join on` must accept the bare word ON.
  const Token& value = Peek();
  switch (value.kind) {
    case TokenKind::kIdentifier:
      stmt.value = Expr::ColumnRef("", value.text);
      break;
    case TokenKind::kString:
      stmt.value = Expr::StringLiteral(value.text);
      break;
    case TokenKind::kInteger: {
      TIP_ASSIGN_OR_RETURN(int64_t v, ParseInt64(value.text));
      stmt.value = Expr::IntLiteral(v);
      break;
    }
    default:
      return Errorf("expected a SET value");
  }
  Advance();
  return stmt;
}

// BEGIN [WORK | TRANSACTION] / COMMIT [WORK | TRANSACTION] /
// ROLLBACK [WORK | TRANSACTION] — the noise word is Informix's.
Result<Statement> Parser::ParseTxnBoundary(Statement::Kind kind) {
  Advance();  // the dispatching keyword
  if (!MatchKeyword("work")) (void)MatchKeyword("transaction");
  Statement stmt;
  stmt.kind = kind;
  return stmt;
}

Result<Statement> Parser::ParseExplain() {
  TIP_RETURN_IF_ERROR(ExpectKeyword("explain"));
  TIP_ASSIGN_OR_RETURN(std::unique_ptr<SelectStmt> select, ParseSelect());
  Statement stmt;
  stmt.kind = Statement::Kind::kExplain;
  stmt.select = std::move(select);
  return stmt;
}

// -- Expressions ------------------------------------------------------------

Result<ExprPtr> Parser::ParseOr() {
  TIP_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
  while (MatchKeyword("or")) {
    TIP_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
    lhs = Expr::Binary("or", std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<ExprPtr> Parser::ParseAnd() {
  TIP_ASSIGN_OR_RETURN(ExprPtr lhs, ParseNot());
  while (MatchKeyword("and")) {
    TIP_ASSIGN_OR_RETURN(ExprPtr rhs, ParseNot());
    lhs = Expr::Binary("and", std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<ExprPtr> Parser::ParseNot() {
  if (MatchKeyword("not")) {
    TIP_ASSIGN_OR_RETURN(ExprPtr operand, ParseNot());
    return Expr::Unary("not", std::move(operand));
  }
  return ParseComparison();
}

Result<ExprPtr> Parser::ParseComparison() {
  TIP_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());

  // IS [NOT] NULL.
  if (PeekKeyword("is")) {
    Advance();
    bool negated = MatchKeyword("not");
    if (!MatchKeyword("null")) {
      return Errorf("expected NULL after IS");
    }
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kIsNull;
    e->negated = negated;
    e->args.push_back(std::move(lhs));
    return e;
  }

  // [NOT] BETWEEN / [NOT] IN.
  bool negated = false;
  size_t saved = pos_;
  if (MatchKeyword("not")) {
    if (PeekKeyword("between") || PeekKeyword("in") ||
        PeekKeyword("like")) {
      negated = true;
    } else {
      pos_ = saved;  // the NOT belongs to a higher level
    }
  }
  if (MatchKeyword("like")) {
    TIP_ASSIGN_OR_RETURN(ExprPtr pattern, ParseAdditive());
    std::vector<ExprPtr> args;
    args.push_back(std::move(lhs));
    args.push_back(std::move(pattern));
    ExprPtr call = Expr::FuncCall("like", std::move(args));
    if (negated) return Expr::Unary("not", std::move(call));
    return call;
  }
  if (MatchKeyword("between")) {
    TIP_ASSIGN_OR_RETURN(ExprPtr lo, ParseAdditive());
    TIP_RETURN_IF_ERROR(ExpectKeyword("and"));
    TIP_ASSIGN_OR_RETURN(ExprPtr hi, ParseAdditive());
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kBetween;
    e->negated = negated;
    e->args.push_back(std::move(lhs));
    e->args.push_back(std::move(lo));
    e->args.push_back(std::move(hi));
    return e;
  }
  if (MatchKeyword("in")) {
    TIP_RETURN_IF_ERROR(ExpectOp("("));
    if (PeekKeyword("select")) {
      TIP_ASSIGN_OR_RETURN(std::unique_ptr<SelectStmt> sub, ParseSelect());
      TIP_RETURN_IF_ERROR(ExpectOp(")"));
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kInSubquery;
      e->negated = negated;
      e->args.push_back(std::move(lhs));
      e->subquery = std::move(sub);
      return e;
    }
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kInList;
    e->negated = negated;
    e->args.push_back(std::move(lhs));
    do {
      TIP_ASSIGN_OR_RETURN(ExprPtr item, ParseExpr());
      e->args.push_back(std::move(item));
    } while (MatchOp(","));
    TIP_RETURN_IF_ERROR(ExpectOp(")"));
    return e;
  }

  // Binary comparison operators (non-associative chain allowed
  // left-to-right, as in most SQL engines).
  for (;;) {
    std::string op;
    if (PeekOp("=")) {
      op = "=";
    } else if (PeekOp("<>")) {
      op = "<>";
    } else if (PeekOp("<=")) {
      op = "<=";
    } else if (PeekOp(">=")) {
      op = ">=";
    } else if (PeekOp("<")) {
      op = "<";
    } else if (PeekOp(">")) {
      op = ">";
    } else {
      break;
    }
    Advance();
    TIP_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
    lhs = Expr::Binary(op, std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<ExprPtr> Parser::ParseAdditive() {
  TIP_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative());
  for (;;) {
    std::string op;
    if (PeekOp("+")) {
      op = "+";
    } else if (PeekOp("-")) {
      op = "-";
    } else if (PeekOp("||")) {
      op = "||";
    } else {
      break;
    }
    Advance();
    TIP_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
    lhs = Expr::Binary(op, std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<ExprPtr> Parser::ParseMultiplicative() {
  TIP_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
  for (;;) {
    std::string op;
    if (PeekOp("*")) {
      op = "*";
    } else if (PeekOp("/")) {
      op = "/";
    } else {
      break;
    }
    Advance();
    TIP_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
    lhs = Expr::Binary(op, std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<ExprPtr> Parser::ParseUnary() {
  if (MatchOp("-")) {
    TIP_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
    return Expr::Unary("-", std::move(operand));
  }
  if (MatchOp("+")) {
    return ParseUnary();
  }
  return ParsePostfix();
}

Result<ExprPtr> Parser::ParsePostfix() {
  TIP_ASSIGN_OR_RETURN(ExprPtr operand, ParsePrimary());
  while (MatchOp("::")) {
    TIP_ASSIGN_OR_RETURN(std::string type_name,
                         ExpectIdentifier("type name after '::'"));
    operand = Expr::Cast(std::move(operand), std::move(type_name));
  }
  return operand;
}

Result<ExprPtr> Parser::ParsePrimary() {
  const Token& t = Peek();
  switch (t.kind) {
    case TokenKind::kInteger: {
      Advance();
      TIP_ASSIGN_OR_RETURN(int64_t v, ParseInt64(t.text));
      return Expr::IntLiteral(v);
    }
    case TokenKind::kFloat: {
      Advance();
      TIP_ASSIGN_OR_RETURN(double v, ParseDouble(t.text));
      return Expr::FloatLiteral(v);
    }
    case TokenKind::kString:
      Advance();
      return Expr::StringLiteral(t.text);
    case TokenKind::kOperator:
      if (t.text == "(") {
        Advance();
        if (PeekKeyword("select")) {
          TIP_ASSIGN_OR_RETURN(std::unique_ptr<SelectStmt> sub,
                               ParseSelect());
          TIP_RETURN_IF_ERROR(ExpectOp(")"));
          auto e = std::make_unique<Expr>();
          e->kind = ExprKind::kScalarSubquery;
          e->subquery = std::move(sub);
          return e;
        }
        TIP_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        TIP_RETURN_IF_ERROR(ExpectOp(")"));
        return e;
      }
      if (t.text == ":") {
        Advance();
        TIP_ASSIGN_OR_RETURN(std::string name,
                             ExpectIdentifier("parameter name after ':'"));
        return Expr::Param(std::move(name));
      }
      return Errorf("expected an expression");
    case TokenKind::kIdentifier:
      break;  // handled below
    case TokenKind::kEnd:
      return Errorf("expected an expression");
  }

  // Reserved clause keywords never start an expression; rejecting them
  // here turns `SELECT FROM t` into a parse error instead of a column
  // reference named "from".
  static constexpr std::string_view kReserved[] = {
      "from",  "where", "group", "having", "order", "limit",
      "offset", "on",   "join",  "inner",  "values", "select",
      "set",   "and",   "or",    "between", "in",    "is",
      "as",    "then",  "else",  "when",   "distinct"};
  for (std::string_view kw : kReserved) {
    if (PeekKeyword(kw)) return Errorf("expected an expression");
  }

  // Keyword-led expressions.
  if (PeekKeyword("null")) {
    Advance();
    return Expr::NullLiteral();
  }
  if (PeekKeyword("true")) {
    Advance();
    return Expr::BoolLiteral(true);
  }
  if (PeekKeyword("false")) {
    Advance();
    return Expr::BoolLiteral(false);
  }
  if (PeekKeyword("case")) {
    return ParseCase();
  }
  if (PeekKeyword("exists") && PeekOp("(", 1)) {
    Advance();
    Advance();  // '('
    TIP_ASSIGN_OR_RETURN(std::unique_ptr<SelectStmt> sub, ParseSelect());
    TIP_RETURN_IF_ERROR(ExpectOp(")"));
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kExists;
    e->subquery = std::move(sub);
    return e;
  }
  if (PeekKeyword("cast") && PeekOp("(", 1)) {
    // CAST(expr AS type) — the SQL-92 spelling of '::'.
    Advance();
    Advance();  // '('
    TIP_ASSIGN_OR_RETURN(ExprPtr operand, ParseExpr());
    TIP_RETURN_IF_ERROR(ExpectKeyword("as"));
    TIP_ASSIGN_OR_RETURN(std::string type_name,
                         ExpectIdentifier("type name"));
    TIP_RETURN_IF_ERROR(ExpectOp(")"));
    return Expr::Cast(std::move(operand), std::move(type_name));
  }

  // Function call?
  if (PeekOp("(", 1)) {
    std::string name = Advance().text;
    Advance();  // '('
    std::vector<ExprPtr> args;
    if (MatchOp("*")) {
      // COUNT(*): model as a star argument.
      auto star = std::make_unique<Expr>();
      star->kind = ExprKind::kStar;
      args.push_back(std::move(star));
    } else if (!PeekOp(")")) {
      do {
        TIP_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
        args.push_back(std::move(arg));
      } while (MatchOp(","));
    }
    TIP_RETURN_IF_ERROR(ExpectOp(")"));
    return Expr::FuncCall(std::move(name), std::move(args));
  }

  // Column reference: name or qualifier.name.
  std::string first = Advance().text;
  if (MatchOp(".")) {
    TIP_ASSIGN_OR_RETURN(std::string column,
                         ExpectIdentifier("column name after '.'"));
    return Expr::ColumnRef(std::move(first), std::move(column));
  }
  return Expr::ColumnRef("", std::move(first));
}

Result<ExprPtr> Parser::ParseCase() {
  TIP_RETURN_IF_ERROR(ExpectKeyword("case"));
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kCase;
  bool saw_when = false;
  while (MatchKeyword("when")) {
    saw_when = true;
    TIP_ASSIGN_OR_RETURN(ExprPtr when, ParseExpr());
    TIP_RETURN_IF_ERROR(ExpectKeyword("then"));
    TIP_ASSIGN_OR_RETURN(ExprPtr then, ParseExpr());
    e->args.push_back(std::move(when));
    e->args.push_back(std::move(then));
  }
  if (!saw_when) return Errorf("CASE requires at least one WHEN");
  if (MatchKeyword("else")) {
    TIP_ASSIGN_OR_RETURN(ExprPtr else_expr, ParseExpr());
    e->args.push_back(std::move(else_expr));
    e->has_else = true;
  }
  TIP_RETURN_IF_ERROR(ExpectKeyword("end"));
  return e;
}

}  // namespace

Result<Statement> ParseStatement(std::string_view sql) {
  TIP_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(sql));
  Parser parser(std::move(tokens));
  return parser.ParseStatement();
}

Result<ExprPtr> ParseExpression(std::string_view text) {
  TIP_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(text));
  Parser parser(std::move(tokens));
  return parser.ParseBareExpression();
}

}  // namespace tip::engine
