#include "engine/sql/lexer.h"

#include <cctype>

namespace tip::engine {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentCont(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Result<std::vector<Token>> Lex(std::string_view sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    const char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    const size_t start = i;
    // Identifier / keyword.
    if (IsIdentStart(c)) {
      size_t j = i + 1;
      while (j < n && IsIdentCont(sql[j])) ++j;
      tokens.push_back(
          {TokenKind::kIdentifier, std::string(sql.substr(i, j - i)), start});
      i = j;
      continue;
    }
    // Number: digits, optional fraction/exponent; also ".5".
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      size_t j = i;
      bool is_float = false;
      while (j < n && std::isdigit(static_cast<unsigned char>(sql[j]))) ++j;
      if (j < n && sql[j] == '.') {
        is_float = true;
        ++j;
        while (j < n && std::isdigit(static_cast<unsigned char>(sql[j]))) ++j;
      }
      if (j < n && (sql[j] == 'e' || sql[j] == 'E')) {
        size_t k = j + 1;
        if (k < n && (sql[k] == '+' || sql[k] == '-')) ++k;
        if (k < n && std::isdigit(static_cast<unsigned char>(sql[k]))) {
          is_float = true;
          j = k;
          while (j < n && std::isdigit(static_cast<unsigned char>(sql[j]))) {
            ++j;
          }
        }
      }
      tokens.push_back({is_float ? TokenKind::kFloat : TokenKind::kInteger,
                        std::string(sql.substr(i, j - i)), start});
      i = j;
      continue;
    }
    // String literal with '' escaping.
    if (c == '\'') {
      std::string value;
      size_t j = i + 1;
      bool closed = false;
      while (j < n) {
        if (sql[j] == '\'') {
          if (j + 1 < n && sql[j + 1] == '\'') {
            value.push_back('\'');
            j += 2;
            continue;
          }
          closed = true;
          ++j;
          break;
        }
        value.push_back(sql[j]);
        ++j;
      }
      if (!closed) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(start));
      }
      tokens.push_back({TokenKind::kString, std::move(value), start});
      i = j;
      continue;
    }
    // Multi-character operators first.
    auto two = (i + 1 < n) ? sql.substr(i, 2) : std::string_view();
    if (two == "::" || two == "<>" || two == "!=" || two == "<=" ||
        two == ">=" || two == "||") {
      std::string text(two);
      if (text == "!=") text = "<>";  // canonicalize
      tokens.push_back({TokenKind::kOperator, std::move(text), start});
      i += 2;
      continue;
    }
    switch (c) {
      case '+':
      case '-':
      case '*':
      case '/':
      case '=':
      case '<':
      case '>':
      case '(':
      case ')':
      case ',':
      case '.':
      case ';':
      case ':':
        tokens.push_back({TokenKind::kOperator, std::string(1, c), start});
        ++i;
        continue;
      default:
        return Status::ParseError("unexpected character '" +
                                  std::string(1, c) + "' at offset " +
                                  std::to_string(start));
    }
  }
  tokens.push_back({TokenKind::kEnd, "", n});
  return tokens;
}

}  // namespace tip::engine
