#ifndef TIP_ENGINE_SQL_LEXER_H_
#define TIP_ENGINE_SQL_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace tip::engine {

enum class TokenKind {
  kIdentifier,   // table, column, routine and keyword words
  kString,       // 'quoted literal' (with '' escaping)
  kInteger,      // 123
  kFloat,        // 1.5, .5, 1e3
  kOperator,     // + - * / = <> != < <= > >= || . , ( ) ; :: :
  kEnd,
};

struct Token {
  TokenKind kind;
  std::string text;   // normalized: identifiers keep original case,
                      // strings are unescaped, operators canonical
  size_t offset = 0;  // byte offset in the statement (error messages)
};

/// Splits a SQL statement into tokens. Comments (`-- ...` to end of
/// line) are skipped. Keywords are not distinguished from identifiers at
/// this level; the parser matches them case-insensitively.
Result<std::vector<Token>> Lex(std::string_view sql);

}  // namespace tip::engine

#endif  // TIP_ENGINE_SQL_LEXER_H_
