#ifndef TIP_ENGINE_SQL_PARSER_H_
#define TIP_ENGINE_SQL_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "engine/sql/ast.h"

namespace tip::engine {

/// Parses one SQL statement (an optional trailing ';' is accepted).
/// The dialect is the core of SQL-92 plus Informix's `::` explicit-cast
/// and `:name` host-parameter syntax:
///
///   SELECT [DISTINCT] items FROM t1 [alias], t2 [JOIN t3 ON ...]
///     [WHERE ...] [GROUP BY ...] [HAVING ...] [ORDER BY ... [DESC]]
///     [LIMIT n [OFFSET m]]
///   CREATE TABLE t (col type, ...) | DROP TABLE t
///   INSERT INTO t [(cols)] VALUES (...), (...) ...
///   UPDATE t SET col = expr, ... [WHERE ...]
///   DELETE FROM t [WHERE ...]
///   SET option value            -- e.g. SET NOW '1999-10-31'
///   CREATE INDEX i ON t (col) USING method | DROP INDEX i ON t
///   EXPLAIN SELECT ...
///
/// Expressions support arithmetic, comparisons, AND/OR/NOT, IS [NOT]
/// NULL, [NOT] BETWEEN, [NOT] IN (list), [NOT] EXISTS (subquery),
/// CASE WHEN, function calls, `expr::type`, and `:param`.
Result<Statement> ParseStatement(std::string_view sql);

/// Parses a bare expression (used by tests and by SET option values).
Result<ExprPtr> ParseExpression(std::string_view text);

}  // namespace tip::engine

#endif  // TIP_ENGINE_SQL_PARSER_H_
