#ifndef TIP_ENGINE_SQL_AST_H_
#define TIP_ENGINE_SQL_AST_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace tip::engine {

struct SelectStmt;

/// Expression node kinds. The AST is a single tagged struct (the SQLite
/// school) rather than a class hierarchy: the binder immediately lowers
/// it into typed BoundExpr nodes, so the untyped tree stays simple.
enum class ExprKind {
  kLiteral,    // literal_kind + text/int_value/double_value/bool_value
  kColumnRef,  // qualifier.text
  kStar,       // `*` or `alias.*` (select list and COUNT(*) only)
  kFuncCall,   // text(args...)
  kBinary,     // text is the operator symbol; args = {lhs, rhs}
  kUnary,      // text is "-" or "NOT"; args = {operand}
  kCast,       // args = {operand}; text is the target type name
  kParam,      // :name; text is the name
  kIsNull,     // args = {operand}; negated => IS NOT NULL
  kBetween,    // args = {operand, lo, hi}; negated => NOT BETWEEN
  kInList,     // args = {operand, item...}; negated => NOT IN
  kExists,     // subquery; negated => NOT EXISTS
  kCase,       // args = {when1, then1, ..., [else]}; has_else
  kScalarSubquery,  // subquery; must yield <= 1 row of 1 column
  kInSubquery,      // args = {operand}; subquery; negated => NOT IN
};

enum class LiteralKind { kNull, kBool, kInt, kFloat, kString };

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  ExprKind kind;

  // kLiteral payloads.
  LiteralKind literal_kind = LiteralKind::kNull;
  bool bool_value = false;
  int64_t int_value = 0;
  double double_value = 0.0;

  /// Multi-purpose text payload: literal string, column / function /
  /// parameter name, operator symbol, or cast target type name.
  std::string text;
  /// Table qualifier for kColumnRef / kStar ("" if unqualified).
  std::string qualifier;

  std::vector<ExprPtr> args;
  bool negated = false;   // IS NOT NULL / NOT BETWEEN / NOT IN / NOT EXISTS
  bool has_else = false;  // kCase

  std::unique_ptr<SelectStmt> subquery;  // kExists / k*Subquery

  // -- Factories ----------------------------------------------------------

  static ExprPtr NullLiteral() {
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kLiteral;
    e->literal_kind = LiteralKind::kNull;
    return e;
  }
  static ExprPtr BoolLiteral(bool v) {
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kLiteral;
    e->literal_kind = LiteralKind::kBool;
    e->bool_value = v;
    return e;
  }
  static ExprPtr IntLiteral(int64_t v) {
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kLiteral;
    e->literal_kind = LiteralKind::kInt;
    e->int_value = v;
    return e;
  }
  static ExprPtr FloatLiteral(double v) {
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kLiteral;
    e->literal_kind = LiteralKind::kFloat;
    e->double_value = v;
    return e;
  }
  static ExprPtr StringLiteral(std::string v) {
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kLiteral;
    e->literal_kind = LiteralKind::kString;
    e->text = std::move(v);
    return e;
  }
  static ExprPtr ColumnRef(std::string qualifier, std::string name) {
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kColumnRef;
    e->qualifier = std::move(qualifier);
    e->text = std::move(name);
    return e;
  }
  static ExprPtr FuncCall(std::string name, std::vector<ExprPtr> args) {
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kFuncCall;
    e->text = std::move(name);
    e->args = std::move(args);
    return e;
  }
  static ExprPtr Binary(std::string op, ExprPtr lhs, ExprPtr rhs) {
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kBinary;
    e->text = std::move(op);
    e->args.push_back(std::move(lhs));
    e->args.push_back(std::move(rhs));
    return e;
  }
  static ExprPtr Unary(std::string op, ExprPtr operand) {
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kUnary;
    e->text = std::move(op);
    e->args.push_back(std::move(operand));
    return e;
  }
  static ExprPtr Cast(ExprPtr operand, std::string type_name) {
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kCast;
    e->text = std::move(type_name);
    e->args.push_back(std::move(operand));
    return e;
  }
  static ExprPtr Param(std::string name) {
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kParam;
    e->text = std::move(name);
    return e;
  }
};

/// One FROM-clause source: a base table, or a parenthesized derived
/// table (`FROM (SELECT ...) alias` — the alias is mandatory then).
struct TableRef {
  std::string table;                    // empty for derived tables
  std::unique_ptr<SelectStmt> subquery; // null for base tables
  std::string alias;  // "" = use the table name

  bool is_subquery() const { return subquery != nullptr; }
  const std::string& binding_name() const {
    return alias.empty() ? table : alias;
  }
};

/// One FROM-clause item. The first item has `is_inner_join == false`;
/// later items are either comma-joined (no ON) or `JOIN ... ON expr`.
struct FromItem {
  TableRef ref;
  bool is_inner_join = false;
  ExprPtr on;  // only when is_inner_join
};

struct SelectItem {
  bool is_star = false;
  std::string star_qualifier;  // for `alias.*`
  ExprPtr expr;                // when !is_star
  std::string alias;           // "" = derived name
};

struct OrderItem {
  ExprPtr expr;
  bool descending = false;
};

/// A set operation chained onto a select core:
/// `core UNION [ALL] core INTERSECT core ...`, applied left to right.
struct CompoundPart {
  enum class Op { kUnion, kUnionAll, kIntersect, kExcept };
  Op op;
  std::unique_ptr<SelectStmt> select;  // a bare core (no ORDER BY/LIMIT)
};

struct SelectStmt {
  bool distinct = false;
  std::vector<SelectItem> items;
  std::vector<FromItem> from;
  ExprPtr where;
  std::vector<ExprPtr> group_by;
  ExprPtr having;
  /// Set operations applied after this core; ORDER BY / LIMIT below
  /// apply to the combined result.
  std::vector<CompoundPart> compounds;
  std::vector<OrderItem> order_by;
  std::optional<int64_t> limit;
  std::optional<int64_t> offset;
};

struct ColumnDef {
  std::string name;
  std::string type_name;
};

/// A parsed SQL statement (tagged union; only the fields of the active
/// kind are meaningful).
struct Statement {
  enum class Kind {
    kSelect,
    kCreateTable,
    kDropTable,
    kInsert,
    kUpdate,
    kDelete,
    kSet,
    kExplain,
    kCreateIndex,
    kDropIndex,
    kCreateFunction,
    kDropFunction,
    kBegin,
    kCommit,
    kRollback,
    kCheck,
  };

  Kind kind;

  std::unique_ptr<SelectStmt> select;  // kSelect / kExplain

  std::string table;               // create/drop/insert/update/delete/index
  std::vector<ColumnDef> columns;  // kCreateTable

  std::vector<std::string> insert_columns;  // kInsert ("" = all, in order)
  std::vector<std::vector<ExprPtr>> insert_rows;

  std::vector<std::pair<std::string, ExprPtr>> update_sets;  // kUpdate
  ExprPtr where;  // kUpdate / kDelete

  std::string option;  // kSet: option name (e.g. "now")
  ExprPtr value;       // kSet

  std::string index_name;    // kCreateIndex / kDropIndex
  std::string index_column;  // kCreateIndex
  std::string index_method;  // kCreateIndex ("interval")

  std::string function_name;              // kCreateFunction / kDrop...
  std::vector<ColumnDef> function_params; // kCreateFunction
  std::string function_return;            // kCreateFunction (type name)
  std::string function_body;              // kCreateFunction (expression)

  bool check_database = false;  // kCheck: CHECK DATABASE vs CHECK TABLE t
};

}  // namespace tip::engine

#endif  // TIP_ENGINE_SQL_AST_H_
