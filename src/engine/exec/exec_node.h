#ifndef TIP_ENGINE_EXEC_EXEC_NODE_H_
#define TIP_ENGINE_EXEC_EXEC_NODE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "engine/catalog/aggregate_registry.h"
#include "engine/catalog/catalog.h"
#include "engine/exec/bound_expr.h"
#include "engine/types/datum.h"
#include "engine/types/eval_context.h"
#include "engine/types/type.h"

namespace tip::engine {

/// Runtime state threaded through a plan: the statement's evaluation
/// context plus the enclosing query's tuple for correlated subplans.
struct ExecState {
  EvalContext* eval = nullptr;
  const TupleCtx* outer = nullptr;
};

/// A volcano-style physical operator. `Open` fully (re)initializes the
/// node, so a plan can be executed repeatedly (correlated EXISTS
/// subplans rely on this). `Next` produces one output row at a time.
class ExecNode {
 public:
  virtual ~ExecNode() = default;

  ExecNode(const ExecNode&) = delete;
  ExecNode& operator=(const ExecNode&) = delete;

  virtual Status Open(ExecState& state) = 0;
  /// Returns true and fills `out` with the next row, or false at end.
  virtual Result<bool> Next(ExecState& state, Row* out) = 0;

  /// Like Next, but lends the row instead of copying it: the returned
  /// pointer (nullptr at end of stream) is valid only until the next
  /// Open/Next/NextBorrowed call on this node. Scan-shaped operators
  /// override this to hand out pointers straight into heap storage;
  /// the default adapter materializes into an internal buffer, so every
  /// node supports borrowing. Consumers that only read the row (filter,
  /// project, aggregate input) should prefer this over Next.
  virtual Result<const Row*> NextBorrowed(ExecState& state);

  /// Number of columns this node emits.
  virtual size_t output_arity() const = 0;

  /// One-line operator description; `Explain` indents children.
  virtual std::string DebugName() const = 0;
  virtual void Explain(int depth, std::string* out) const;

 protected:
  ExecNode() = default;

 private:
  Row borrow_buf_;  // backing storage for the default NextBorrowed
};

using ExecNodePtr = std::unique_ptr<ExecNode>;

/// Produces exactly one empty row: the input of a FROM-less SELECT.
class SingleRowNode final : public ExecNode {
 public:
  SingleRowNode() = default;

  Status Open(ExecState&) override;
  Result<bool> Next(ExecState&, Row* out) override;
  size_t output_arity() const override { return 0; }
  std::string DebugName() const override { return "SingleRow"; }

 private:
  bool done_ = false;
};

/// Full scan of a base table's heap in row-id order.
class SeqScanNode final : public ExecNode {
 public:
  explicit SeqScanNode(const Table* table)
      : table_(table), cursor_(table->heap().Scan()) {}

  Status Open(ExecState&) override;
  Result<bool> Next(ExecState&, Row* out) override;
  Result<const Row*> NextBorrowed(ExecState&) override;
  size_t output_arity() const override { return table_->columns().size(); }
  std::string DebugName() const override {
    return "SeqScan(" + table_->name() + ")";
  }

 private:
  const Table* table_;
  HeapTable::Cursor cursor_;
};

/// Index scan: probes the interval index on `column` with the interval
/// covered by the probe expression's value, yielding only rows whose
/// bounding periods overlap it. Callers add a residual filter for exact
/// semantics (an Element's bounding period over-approximates its gaps).
class IntervalScanNode final : public ExecNode {
 public:
  IntervalScanNode(const Table* table, size_t column, BoundExprPtr probe,
                   IntervalKeyFn probe_key_fn)
      : table_(table),
        column_(column),
        probe_(std::move(probe)),
        probe_key_fn_(std::move(probe_key_fn)) {}

  Status Open(ExecState& state) override;
  Result<bool> Next(ExecState&, Row* out) override;
  Result<const Row*> NextBorrowed(ExecState&) override;
  size_t output_arity() const override { return table_->columns().size(); }
  std::string DebugName() const override {
    return "IntervalIndexScan(" + table_->name() + "." +
           table_->columns()[column_].name + ")";
  }
  void Explain(int depth, std::string* out) const override;

 private:
  const Table* table_;
  size_t column_;
  BoundExprPtr probe_;
  IntervalKeyFn probe_key_fn_;

  std::vector<RowId> matches_;
  size_t next_ = 0;
};

/// Filters child rows by a boolean predicate (NULL = reject).
class FilterNode final : public ExecNode {
 public:
  FilterNode(ExecNodePtr child, BoundExprPtr predicate)
      : child_(std::move(child)), predicate_(std::move(predicate)) {}

  Status Open(ExecState& state) override;
  Result<bool> Next(ExecState& state, Row* out) override;
  Result<const Row*> NextBorrowed(ExecState& state) override;
  size_t output_arity() const override { return child_->output_arity(); }
  std::string DebugName() const override { return "Filter"; }
  void Explain(int depth, std::string* out) const override;

 private:
  ExecNodePtr child_;
  BoundExprPtr predicate_;
};

/// Computes one output column per expression.
class ProjectNode final : public ExecNode {
 public:
  ProjectNode(ExecNodePtr child, std::vector<BoundExprPtr> exprs)
      : child_(std::move(child)), exprs_(std::move(exprs)) {}

  Status Open(ExecState& state) override;
  Result<bool> Next(ExecState& state, Row* out) override;
  size_t output_arity() const override { return exprs_.size(); }
  std::string DebugName() const override { return "Project"; }
  void Explain(int depth, std::string* out) const override;

 private:
  ExecNodePtr child_;
  std::vector<BoundExprPtr> exprs_;
};

/// Keeps only the first `arity` columns (drops hidden sort keys).
class PrefixNode final : public ExecNode {
 public:
  PrefixNode(ExecNodePtr child, size_t arity)
      : child_(std::move(child)), arity_(arity) {}

  Status Open(ExecState& state) override;
  Result<bool> Next(ExecState& state, Row* out) override;
  size_t output_arity() const override { return arity_; }
  std::string DebugName() const override { return "Prefix"; }
  void Explain(int depth, std::string* out) const override;

 private:
  ExecNodePtr child_;
  size_t arity_;
};

/// Tuple-at-a-time nested-loop join with an optional join predicate.
/// The inner child is fully re-opened for every outer row.
class NestedLoopJoinNode final : public ExecNode {
 public:
  NestedLoopJoinNode(ExecNodePtr outer, ExecNodePtr inner,
                     BoundExprPtr predicate)
      : outer_(std::move(outer)),
        inner_(std::move(inner)),
        predicate_(std::move(predicate)) {}

  Status Open(ExecState& state) override;
  Result<bool> Next(ExecState& state, Row* out) override;
  size_t output_arity() const override {
    return outer_->output_arity() + inner_->output_arity();
  }
  std::string DebugName() const override { return "NestedLoopJoin"; }
  void Explain(int depth, std::string* out) const override;

 private:
  ExecNodePtr outer_;
  ExecNodePtr inner_;
  BoundExprPtr predicate_;  // may be null (cross product)

  Row outer_row_;
  bool outer_valid_ = false;
};

/// Hash equijoin: builds on the right child, probes with the left.
/// Key expressions evaluate against each side's own row; NULL keys never
/// match. A residual predicate evaluates against the combined row.
class HashJoinNode final : public ExecNode {
 public:
  HashJoinNode(ExecNodePtr left, ExecNodePtr right,
               std::vector<BoundExprPtr> left_keys,
               std::vector<BoundExprPtr> right_keys,
               BoundExprPtr residual, const TypeRegistry* types)
      : left_(std::move(left)),
        right_(std::move(right)),
        left_keys_(std::move(left_keys)),
        right_keys_(std::move(right_keys)),
        residual_(std::move(residual)),
        types_(types) {}

  Status Open(ExecState& state) override;
  Result<bool> Next(ExecState& state, Row* out) override;
  size_t output_arity() const override {
    return left_->output_arity() + right_->output_arity();
  }
  std::string DebugName() const override { return "HashJoin"; }
  void Explain(int depth, std::string* out) const override;

 private:
  ExecNodePtr left_;
  ExecNodePtr right_;
  std::vector<BoundExprPtr> left_keys_;
  std::vector<BoundExprPtr> right_keys_;
  BoundExprPtr residual_;  // may be null
  const TypeRegistry* types_;

  std::vector<Row> build_rows_;
  std::unordered_multimap<uint64_t, size_t> build_index_;
  Row probe_row_;
  bool probe_valid_ = false;
  std::vector<size_t> current_matches_;
  size_t next_match_ = 0;

  Result<bool> KeysEqual(const Row& left_row, const Row& right_row,
                         ExecState& state) const;
};

/// Index nested-loop join on a temporal overlap predicate: for every
/// left row, the probe expression's bounding interval is looked up in
/// the right table's interval index. The exact `overlaps` predicate must
/// be applied as a residual by the caller.
class IntervalJoinNode final : public ExecNode {
 public:
  IntervalJoinNode(ExecNodePtr left, const Table* right_table,
                   size_t right_column, BoundExprPtr left_probe,
                   IntervalKeyFn probe_key_fn, BoundExprPtr residual)
      : left_(std::move(left)),
        right_table_(right_table),
        right_column_(right_column),
        left_probe_(std::move(left_probe)),
        probe_key_fn_(std::move(probe_key_fn)),
        residual_(std::move(residual)) {}

  Status Open(ExecState& state) override;
  Result<bool> Next(ExecState& state, Row* out) override;
  size_t output_arity() const override {
    return left_->output_arity() + right_table_->columns().size();
  }
  std::string DebugName() const override {
    return "IntervalIndexJoin(" + right_table_->name() + "." +
           right_table_->columns()[right_column_].name + ")";
  }
  void Explain(int depth, std::string* out) const override;

 private:
  ExecNodePtr left_;
  const Table* right_table_;
  size_t right_column_;
  BoundExprPtr left_probe_;
  IntervalKeyFn probe_key_fn_;
  BoundExprPtr residual_;  // may be null

  IntervalIndexView index_;
  const Row* left_row_ = nullptr;  // borrowed from left_
  std::vector<RowId> matches_;
  size_t next_match_ = 0;
};

/// Materializing sort. Keys evaluate against child rows; NULLs sort
/// last regardless of direction.
class SortNode final : public ExecNode {
 public:
  struct Key {
    BoundExprPtr expr;
    bool descending = false;
  };

  SortNode(ExecNodePtr child, std::vector<Key> keys,
           const TypeRegistry* types)
      : child_(std::move(child)), keys_(std::move(keys)), types_(types) {}

  Status Open(ExecState& state) override;
  Result<bool> Next(ExecState&, Row* out) override;
  size_t output_arity() const override { return child_->output_arity(); }
  std::string DebugName() const override { return "Sort"; }
  void Explain(int depth, std::string* out) const override;

 private:
  ExecNodePtr child_;
  std::vector<Key> keys_;
  const TypeRegistry* types_;

  std::vector<Row> rows_;
  size_t next_ = 0;
};

/// One aggregate computed by an AggregateNode.
struct AggregateSpec {
  ResolvedAggregate agg;
  BoundExprPtr arg;  // null for COUNT(*)
};

/// Hash aggregation. Output row = group-key values ++ aggregate
/// results. With no group keys, emits exactly one row even for empty
/// input (SQL global-aggregate semantics).
class AggregateNode final : public ExecNode {
 public:
  AggregateNode(ExecNodePtr child, std::vector<BoundExprPtr> group_exprs,
                std::vector<AggregateSpec> aggregates,
                const TypeRegistry* types)
      : child_(std::move(child)),
        group_exprs_(std::move(group_exprs)),
        aggregates_(std::move(aggregates)),
        types_(types) {}

  Status Open(ExecState& state) override;
  Result<bool> Next(ExecState& state, Row* out) override;
  size_t output_arity() const override {
    return group_exprs_.size() + aggregates_.size();
  }
  std::string DebugName() const override { return "HashAggregate"; }
  void Explain(int depth, std::string* out) const override;

 private:
  struct Group {
    std::vector<Datum> keys;
    std::vector<std::unique_ptr<AggregateState>> states;
  };

  ExecNodePtr child_;
  std::vector<BoundExprPtr> group_exprs_;
  std::vector<AggregateSpec> aggregates_;
  const TypeRegistry* types_;

  std::vector<Group> groups_;
  std::unordered_multimap<uint64_t, size_t> group_index_;
  std::vector<Row> results_;
  size_t next_ = 0;

  Result<Group*> FindOrCreateGroup(const std::vector<Datum>& keys,
                                   ExecState& state);
};

/// Hash-based duplicate elimination over whole rows.
class DistinctNode final : public ExecNode {
 public:
  DistinctNode(ExecNodePtr child, const TypeRegistry* types)
      : child_(std::move(child)), types_(types) {}

  Status Open(ExecState& state) override;
  Result<bool> Next(ExecState& state, Row* out) override;
  size_t output_arity() const override { return child_->output_arity(); }
  std::string DebugName() const override { return "Distinct"; }
  void Explain(int depth, std::string* out) const override;

 private:
  ExecNodePtr child_;
  const TypeRegistry* types_;

  std::vector<Row> seen_rows_;
  std::unordered_multimap<uint64_t, size_t> seen_index_;
};

/// Concatenation of same-arity children, in order (UNION ALL).
class ConcatNode final : public ExecNode {
 public:
  explicit ConcatNode(std::vector<ExecNodePtr> children)
      : children_(std::move(children)) {}

  Status Open(ExecState& state) override;
  Result<bool> Next(ExecState& state, Row* out) override;
  size_t output_arity() const override {
    return children_.front()->output_arity();
  }
  std::string DebugName() const override { return "Concat"; }
  void Explain(int depth, std::string* out) const override;

 private:
  std::vector<ExecNodePtr> children_;
  size_t current_ = 0;
};

/// INTERSECT / EXCEPT with SQL's distinct-set semantics: distinct left
/// rows that do (INTERSECT) or do not (EXCEPT) appear on the right.
class SetOpNode final : public ExecNode {
 public:
  enum class Op { kIntersect, kExcept };

  SetOpNode(Op op, ExecNodePtr left, ExecNodePtr right,
            const TypeRegistry* types)
      : op_(op),
        left_(std::move(left)),
        right_(std::move(right)),
        types_(types) {}

  Status Open(ExecState& state) override;
  Result<bool> Next(ExecState& state, Row* out) override;
  size_t output_arity() const override { return left_->output_arity(); }
  std::string DebugName() const override {
    return op_ == Op::kIntersect ? "Intersect" : "Except";
  }
  void Explain(int depth, std::string* out) const override;

 private:
  Result<bool> Contains(const Row& row, uint64_t hash,
                        ExecState& state) const;

  Op op_;
  ExecNodePtr left_;
  ExecNodePtr right_;
  const TypeRegistry* types_;

  std::vector<Row> right_rows_;
  std::unordered_multimap<uint64_t, size_t> right_index_;
  std::vector<Row> emitted_rows_;
  std::unordered_multimap<uint64_t, size_t> emitted_index_;
};

/// LIMIT / OFFSET.
class LimitNode final : public ExecNode {
 public:
  LimitNode(ExecNodePtr child, std::optional<int64_t> limit, int64_t offset)
      : child_(std::move(child)), limit_(limit), offset_(offset) {}

  Status Open(ExecState& state) override;
  Result<bool> Next(ExecState& state, Row* out) override;
  size_t output_arity() const override { return child_->output_arity(); }
  std::string DebugName() const override { return "Limit"; }
  void Explain(int depth, std::string* out) const override;

 private:
  ExecNodePtr child_;
  std::optional<int64_t> limit_;
  int64_t offset_;

  int64_t skipped_ = 0;
  int64_t returned_ = 0;
};

}  // namespace tip::engine

#endif  // TIP_ENGINE_EXEC_EXEC_NODE_H_
