#ifndef TIP_ENGINE_EXEC_BOUND_EXPR_H_
#define TIP_ENGINE_EXEC_BOUND_EXPR_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "engine/catalog/cast_registry.h"
#include "engine/catalog/routine_registry.h"
#include "engine/types/datum.h"
#include "engine/types/eval_context.h"
#include "engine/types/type.h"

namespace tip::engine {

class ExecNode;

/// The tuple a bound expression evaluates against, as a chain of scopes:
/// `row` is the current operator's combined row; `outer` points at the
/// enclosing query's tuple for correlated subqueries.
struct TupleCtx {
  const Row* row = nullptr;
  const TupleCtx* outer = nullptr;
};

/// A type-checked, name-resolved expression. Produced by the binder;
/// evaluated by the executors. Evaluation is side-effect free.
class BoundExpr {
 public:
  explicit BoundExpr(TypeId type) : type_(type) {}
  virtual ~BoundExpr() = default;

  BoundExpr(const BoundExpr&) = delete;
  BoundExpr& operator=(const BoundExpr&) = delete;

  TypeId type() const { return type_; }

  virtual Result<Datum> Eval(const TupleCtx& tuple,
                             EvalContext& ctx) const = 0;

 private:
  TypeId type_;
};

using BoundExprPtr = std::unique_ptr<BoundExpr>;

/// A constant value (literals, pre-resolved parameters).
class BoundConstant final : public BoundExpr {
 public:
  explicit BoundConstant(Datum value)
      : BoundExpr(value.type_id()), value_(std::move(value)) {}

  Result<Datum> Eval(const TupleCtx&, EvalContext&) const override {
    return value_;
  }

 private:
  Datum value_;
};

/// A late-bound host parameter (`:name`), resolved at plan time to an
/// ordinal slot in the per-execution parameter vector
/// (EvalContext::params). Unlike BoundConstant — into which the
/// one-shot path folds the bound value — the slot is read afresh on
/// every evaluation, so a prepared plan can be re-executed under new
/// bindings of the same types without replanning.
class BoundParam final : public BoundExpr {
 public:
  BoundParam(TypeId type, size_t slot, std::string name)
      : BoundExpr(type), slot_(slot), name_(std::move(name)) {}

  Result<Datum> Eval(const TupleCtx&, EvalContext& ctx) const override {
    if (ctx.params == nullptr || slot_ >= ctx.params->size()) {
      return Status::Internal("parameter :" + name_ +
                              " has no value bound for this execution");
    }
    return (*ctx.params)[slot_];
  }

  size_t slot() const { return slot_; }
  const std::string& name() const { return name_; }

 private:
  size_t slot_;
  std::string name_;  // for error messages only
};

/// A column of the tuple `depth` scopes out (0 = the current scope).
class BoundColumn final : public BoundExpr {
 public:
  BoundColumn(TypeId type, size_t depth, size_t index)
      : BoundExpr(type), depth_(depth), index_(index) {}

  Result<Datum> Eval(const TupleCtx& tuple, EvalContext&) const override;

  size_t depth() const { return depth_; }
  size_t index() const { return index_; }

 private:
  size_t depth_;
  size_t index_;
};

/// A call to a resolved routine overload; SQL NULL strictness and
/// argument casts are applied here.
class BoundRoutineCall final : public BoundExpr {
 public:
  BoundRoutineCall(const Routine* routine, std::vector<BoundExprPtr> args)
      : BoundExpr(routine->result),
        routine_(routine),
        args_(std::move(args)) {}

  Result<Datum> Eval(const TupleCtx& tuple, EvalContext& ctx) const override;

  const Routine& routine() const { return *routine_; }

 private:
  const Routine* routine_;
  std::vector<BoundExprPtr> args_;
};

/// Application of a registered cast. NULL casts to NULL.
class BoundCast final : public BoundExpr {
 public:
  BoundCast(const Cast* cast, BoundExprPtr operand)
      : BoundExpr(cast->to), cast_(cast), operand_(std::move(operand)) {}

  Result<Datum> Eval(const TupleCtx& tuple, EvalContext& ctx) const override;

 private:
  const Cast* cast_;
  BoundExprPtr operand_;
};

/// Generic ordering comparison through TypeOps::compare; used whenever
/// no routine overload claims the operator. Implements the SQL
/// comparison operators with three-valued NULL semantics.
class BoundCompare final : public BoundExpr {
 public:
  enum class Op { kEq, kNe, kLt, kLe, kGt, kGe };

  BoundCompare(Op op, BoundExprPtr lhs, BoundExprPtr rhs,
               const TypeRegistry* types)
      : BoundExpr(TypeId::kBool),
        op_(op),
        lhs_(std::move(lhs)),
        rhs_(std::move(rhs)),
        types_(types) {}

  Result<Datum> Eval(const TupleCtx& tuple, EvalContext& ctx) const override;

 private:
  Op op_;
  BoundExprPtr lhs_;
  BoundExprPtr rhs_;
  const TypeRegistry* types_;
};

/// Three-valued AND / OR.
class BoundLogical final : public BoundExpr {
 public:
  enum class Op { kAnd, kOr };

  BoundLogical(Op op, BoundExprPtr lhs, BoundExprPtr rhs)
      : BoundExpr(TypeId::kBool),
        op_(op),
        lhs_(std::move(lhs)),
        rhs_(std::move(rhs)) {}

  Result<Datum> Eval(const TupleCtx& tuple, EvalContext& ctx) const override;

 private:
  Op op_;
  BoundExprPtr lhs_;
  BoundExprPtr rhs_;
};

/// Three-valued NOT.
class BoundNot final : public BoundExpr {
 public:
  explicit BoundNot(BoundExprPtr operand)
      : BoundExpr(TypeId::kBool), operand_(std::move(operand)) {}

  Result<Datum> Eval(const TupleCtx& tuple, EvalContext& ctx) const override;

 private:
  BoundExprPtr operand_;
};

/// IS [NOT] NULL. Never returns NULL itself.
class BoundIsNull final : public BoundExpr {
 public:
  BoundIsNull(BoundExprPtr operand, bool negated)
      : BoundExpr(TypeId::kBool),
        operand_(std::move(operand)),
        negated_(negated) {}

  Result<Datum> Eval(const TupleCtx& tuple, EvalContext& ctx) const override;

 private:
  BoundExprPtr operand_;
  bool negated_;
};

/// Searched CASE: WHEN cond THEN value ... [ELSE value].
class BoundCase final : public BoundExpr {
 public:
  BoundCase(TypeId result_type, std::vector<BoundExprPtr> whens,
            std::vector<BoundExprPtr> thens, BoundExprPtr else_expr)
      : BoundExpr(result_type),
        whens_(std::move(whens)),
        thens_(std::move(thens)),
        else_(std::move(else_expr)) {}

  Result<Datum> Eval(const TupleCtx& tuple, EvalContext& ctx) const override;

 private:
  std::vector<BoundExprPtr> whens_;
  std::vector<BoundExprPtr> thens_;
  BoundExprPtr else_;  // may be null (=> NULL)
};

/// [NOT] EXISTS (subquery). Owns the correlated subplan and runs it to
/// the first row on every evaluation.
class BoundExists final : public BoundExpr {
 public:
  BoundExists(std::unique_ptr<ExecNode> subplan, bool negated);
  ~BoundExists() override;

  Result<Datum> Eval(const TupleCtx& tuple, EvalContext& ctx) const override;

 private:
  std::unique_ptr<ExecNode> subplan_;
  bool negated_;
};

/// A scalar subquery: one output column, at most one row (more is a
/// runtime error), empty yields NULL. Re-runs per evaluation when
/// correlated.
class BoundScalarSubquery final : public BoundExpr {
 public:
  BoundScalarSubquery(TypeId type, std::unique_ptr<ExecNode> subplan);
  ~BoundScalarSubquery() override;

  Result<Datum> Eval(const TupleCtx& tuple, EvalContext& ctx) const override;

 private:
  std::unique_ptr<ExecNode> subplan_;
};

/// `operand [NOT] IN (SELECT ...)` with SQL's three-valued semantics:
/// a NULL operand, or a non-match against a subquery that produced a
/// NULL, yields NULL.
class BoundInSubquery final : public BoundExpr {
 public:
  BoundInSubquery(BoundExprPtr operand, std::unique_ptr<ExecNode> subplan,
                  bool negated, const TypeRegistry* types);
  ~BoundInSubquery() override;

  Result<Datum> Eval(const TupleCtx& tuple, EvalContext& ctx) const override;

 private:
  BoundExprPtr operand_;
  std::unique_ptr<ExecNode> subplan_;
  bool negated_;
  const TypeRegistry* types_;
};

}  // namespace tip::engine

#endif  // TIP_ENGINE_EXEC_BOUND_EXPR_H_
