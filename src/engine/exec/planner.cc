#include "engine/exec/planner.h"

#include <algorithm>
#include <cassert>
#include <set>

#include "common/string_util.h"
#include "engine/exec/parallel_exec.h"

namespace tip::engine {

namespace {

// ---------------------------------------------------------------------------
// AST utilities
// ---------------------------------------------------------------------------

// Structural equality of untyped expressions, used to match SELECT-list
// subexpressions against GROUP BY expressions and to deduplicate
// aggregate calls. Case-insensitive on names.
bool ExprEquals(const Expr& a, const Expr& b) {
  if (a.kind != b.kind) return false;
  switch (a.kind) {
    case ExprKind::kLiteral:
      if (a.literal_kind != b.literal_kind) return false;
      switch (a.literal_kind) {
        case LiteralKind::kNull:
          return true;
        case LiteralKind::kBool:
          return a.bool_value == b.bool_value;
        case LiteralKind::kInt:
          return a.int_value == b.int_value;
        case LiteralKind::kFloat:
          return a.double_value == b.double_value;
        case LiteralKind::kString:
          return a.text == b.text;
      }
      return false;
    case ExprKind::kColumnRef:
      return EqualsIgnoreCase(a.qualifier, b.qualifier) &&
             EqualsIgnoreCase(a.text, b.text);
    case ExprKind::kStar:
      return EqualsIgnoreCase(a.qualifier, b.qualifier);
    case ExprKind::kParam:
      return a.text == b.text;
    case ExprKind::kExists:
    case ExprKind::kScalarSubquery:
    case ExprKind::kInSubquery:
      return false;  // subqueries never compare equal structurally
    default:
      break;
  }
  if (!EqualsIgnoreCase(a.text, b.text) || a.negated != b.negated ||
      a.has_else != b.has_else || a.args.size() != b.args.size()) {
    return false;
  }
  for (size_t i = 0; i < a.args.size(); ++i) {
    if (!ExprEquals(*a.args[i], *b.args[i])) return false;
  }
  return true;
}

// Static facts about an expression needed for predicate placement.
struct ExprInfo {
  std::set<size_t> local_tables;  // positions within the local FROM list
  bool has_subquery = false;
  bool has_aggregate = false;
};

// ---------------------------------------------------------------------------
// Binder
// ---------------------------------------------------------------------------

// A structural rewrite rule: occurrences of `pattern` become column
// `index` (of type `type`) of the current row — how SELECT/HAVING
// expressions are re-bound over an AggregateNode's output.
struct Replacement {
  const Expr* pattern;
  size_t index;
  TypeId type;
};

class ExprBinder {
 public:
  ExprBinder(const PlannerContext& ctx, const Scope* scope)
      : ctx_(ctx), scope_(scope) {}

  /// Enables grouped mode: `replacements` map group expressions and
  /// aggregate calls to output columns; raw local column references
  /// outside them become errors.
  void SetReplacements(const std::vector<Replacement>* replacements) {
    replacements_ = replacements;
  }

  Result<BoundExprPtr> Bind(const Expr& expr);

 private:
  Result<BoundExprPtr> BindColumnRef(const Expr& expr);
  Result<BoundExprPtr> BindFuncCall(const Expr& expr);
  Result<BoundExprPtr> BindBinary(const Expr& expr);
  Result<BoundExprPtr> BindUnary(const Expr& expr);
  Result<BoundExprPtr> BindCast(const Expr& expr);
  Result<BoundExprPtr> BindBetween(const Expr& expr);
  Result<BoundExprPtr> BindInList(const Expr& expr);
  Result<BoundExprPtr> BindCase(const Expr& expr);
  Result<BoundExprPtr> BindExists(const Expr& expr);
  Result<BoundExprPtr> BindScalarSubquery(const Expr& expr);
  Result<BoundExprPtr> BindInSubquery(const Expr& expr);

  Result<BoundExprPtr> BindRoutine(std::string_view name,
                                   std::vector<BoundExprPtr> args);
  /// Builds `lhs op rhs` through the generic compare path, reconciling
  /// operand types through implicit casts.
  Result<BoundExprPtr> BindComparison(BoundCompare::Op op, BoundExprPtr lhs,
                                      BoundExprPtr rhs);
  Status RequireBoolean(const BoundExpr& e, std::string_view where);

  const PlannerContext& ctx_;
  const Scope* scope_;
  const std::vector<Replacement>* replacements_ = nullptr;
};

Result<BoundExprPtr> CoerceToImpl(BoundExprPtr expr, TypeId target,
                                  const PlannerContext& ctx) {
  if (expr->type() == target || expr->type() == TypeId::kNull) {
    return expr;
  }
  const Cast* cast = ctx.casts->Find(expr->type(), target,
                                     /*require_implicit=*/true);
  if (cast == nullptr) {
    return Status::TypeError("cannot coerce value of type '" +
                             ctx.types->Get(expr->type()).name + "' to '" +
                             ctx.types->Get(target).name + "'");
  }
  return BoundExprPtr(new BoundCast(cast, std::move(expr)));
}

Result<BoundExprPtr> ExprBinder::Bind(const Expr& expr) {
  if (replacements_ != nullptr) {
    for (const Replacement& r : *replacements_) {
      if (ExprEquals(*r.pattern, expr)) {
        return BoundExprPtr(new BoundColumn(r.type, 0, r.index));
      }
    }
  }
  switch (expr.kind) {
    case ExprKind::kLiteral:
      switch (expr.literal_kind) {
        case LiteralKind::kNull:
          return BoundExprPtr(new BoundConstant(Datum::Null()));
        case LiteralKind::kBool:
          return BoundExprPtr(new BoundConstant(
              Datum::Bool(expr.bool_value)));
        case LiteralKind::kInt:
          return BoundExprPtr(new BoundConstant(Datum::Int(expr.int_value)));
        case LiteralKind::kFloat:
          return BoundExprPtr(new BoundConstant(
              Datum::Double(expr.double_value)));
        case LiteralKind::kString:
          return BoundExprPtr(new BoundConstant(Datum::String(expr.text)));
      }
      return Status::Internal("unknown literal kind");
    case ExprKind::kParam: {
      if (ctx_.params == nullptr) {
        return Status::InvalidArgument("statement has no bound parameters "
                                       "but references :" + expr.text);
      }
      auto it = ctx_.params->find(expr.text);
      if (it == ctx_.params->end()) {
        return Status::InvalidArgument("unbound parameter :" + expr.text);
      }
      if (ctx_.param_slots != nullptr) {
        // Prepared mode: assign (or reuse) an ordinal slot and leave
        // the value to be supplied per execution. The plan is typed
        // under the binding present at plan time; a later rebind with a
        // different type gets its own plan variant.
        std::vector<std::string>& names = *ctx_.param_slots;
        size_t slot = names.size();
        for (size_t i = 0; i < names.size(); ++i) {
          if (names[i] == expr.text) {
            slot = i;
            break;
          }
        }
        if (slot == names.size()) names.push_back(expr.text);
        return BoundExprPtr(
            new BoundParam(it->second.type_id(), slot, expr.text));
      }
      return BoundExprPtr(new BoundConstant(it->second));
    }
    case ExprKind::kColumnRef:
      return BindColumnRef(expr);
    case ExprKind::kStar:
      return Status::InvalidArgument(
          "'*' is only valid in the select list and COUNT(*)");
    case ExprKind::kFuncCall:
      return BindFuncCall(expr);
    case ExprKind::kBinary:
      return BindBinary(expr);
    case ExprKind::kUnary:
      return BindUnary(expr);
    case ExprKind::kCast:
      return BindCast(expr);
    case ExprKind::kIsNull: {
      TIP_ASSIGN_OR_RETURN(BoundExprPtr operand, Bind(*expr.args[0]));
      return BoundExprPtr(new BoundIsNull(std::move(operand), expr.negated));
    }
    case ExprKind::kBetween:
      return BindBetween(expr);
    case ExprKind::kInList:
      return BindInList(expr);
    case ExprKind::kCase:
      return BindCase(expr);
    case ExprKind::kExists:
      return BindExists(expr);
    case ExprKind::kScalarSubquery:
      return BindScalarSubquery(expr);
    case ExprKind::kInSubquery:
      return BindInSubquery(expr);
  }
  return Status::Internal("unknown expression kind");
}

Result<BoundExprPtr> ExprBinder::BindColumnRef(const Expr& expr) {
  TIP_ASSIGN_OR_RETURN(Scope::Resolution res,
                       scope_->Resolve(expr.qualifier, expr.text));
  if (replacements_ != nullptr && res.depth == 0) {
    return Status::TypeError(
        "column '" + expr.text +
        "' must appear in GROUP BY or inside an aggregate");
  }
  return BoundExprPtr(new BoundColumn(res.type, res.depth, res.index));
}

Result<BoundExprPtr> ExprBinder::BindFuncCall(const Expr& expr) {
  if (ctx_.aggregates->Exists(expr.text) &&
      !ctx_.routines->Exists(expr.text)) {
    return Status::TypeError("aggregate '" + ToLowerAscii(expr.text) +
                             "' is not allowed here");
  }
  std::vector<BoundExprPtr> args;
  args.reserve(expr.args.size());
  for (const ExprPtr& arg : expr.args) {
    TIP_ASSIGN_OR_RETURN(BoundExprPtr bound, Bind(*arg));
    args.push_back(std::move(bound));
  }
  return BindRoutine(expr.text, std::move(args));
}

Result<BoundExprPtr> ExprBinder::BindRoutine(std::string_view name,
                                             std::vector<BoundExprPtr> args) {
  std::vector<TypeId> arg_types;
  arg_types.reserve(args.size());
  for (const BoundExprPtr& arg : args) arg_types.push_back(arg->type());
  TIP_ASSIGN_OR_RETURN(ResolvedRoutine resolved,
                       ctx_.routines->Resolve(name, arg_types, *ctx_.casts,
                                              ctx_.types));
  for (size_t i = 0; i < args.size(); ++i) {
    if (resolved.arg_casts[i] != nullptr) {
      args[i] = BoundExprPtr(
          new BoundCast(resolved.arg_casts[i], std::move(args[i])));
    }
  }
  return BoundExprPtr(new BoundRoutineCall(resolved.routine,
                                           std::move(args)));
}

Status ExprBinder::RequireBoolean(const BoundExpr& e,
                                  std::string_view where) {
  if (e.type() != TypeId::kBool && e.type() != TypeId::kNull) {
    return Status::TypeError(std::string(where) +
                             " requires a BOOLEAN operand, not '" +
                             ctx_.types->Get(e.type()).name + "'");
  }
  return Status::OK();
}

Result<BoundExprPtr> ExprBinder::BindComparison(BoundCompare::Op op,
                                                BoundExprPtr lhs,
                                                BoundExprPtr rhs) {
  if (lhs->type() != rhs->type() && lhs->type() != TypeId::kNull &&
      rhs->type() != TypeId::kNull) {
    // Reconcile through a single implicit cast; prefer widening the
    // right operand to the left's type.
    const Cast* r2l = ctx_.casts->Find(rhs->type(), lhs->type(),
                                       /*require_implicit=*/true);
    const Cast* l2r = ctx_.casts->Find(lhs->type(), rhs->type(),
                                       /*require_implicit=*/true);
    if (r2l != nullptr) {
      rhs = BoundExprPtr(new BoundCast(r2l, std::move(rhs)));
    } else if (l2r != nullptr) {
      lhs = BoundExprPtr(new BoundCast(l2r, std::move(lhs)));
    } else {
      return Status::TypeError("cannot compare values of type '" +
                               ctx_.types->Get(lhs->type()).name +
                               "' and '" +
                               ctx_.types->Get(rhs->type()).name + "'");
    }
  }
  const TypeId value_type =
      lhs->type() != TypeId::kNull ? lhs->type() : rhs->type();
  if (value_type != TypeId::kNull && !ctx_.types->IsComparable(value_type)) {
    return Status::TypeError("type '" + ctx_.types->Get(value_type).name +
                             "' does not support comparison");
  }
  return BoundExprPtr(
      new BoundCompare(op, std::move(lhs), std::move(rhs), ctx_.types));
}

Result<BoundExprPtr> ExprBinder::BindBinary(const Expr& expr) {
  const std::string op = ToLowerAscii(expr.text);
  TIP_ASSIGN_OR_RETURN(BoundExprPtr lhs, Bind(*expr.args[0]));
  TIP_ASSIGN_OR_RETURN(BoundExprPtr rhs, Bind(*expr.args[1]));

  if (op == "and" || op == "or") {
    TIP_RETURN_IF_ERROR(RequireBoolean(*lhs, op == "and" ? "AND" : "OR"));
    TIP_RETURN_IF_ERROR(RequireBoolean(*rhs, op == "and" ? "AND" : "OR"));
    return BoundExprPtr(new BoundLogical(op == "and"
                                             ? BoundLogical::Op::kAnd
                                             : BoundLogical::Op::kOr,
                                         std::move(lhs), std::move(rhs)));
  }
  if (op == "=") {
    return BindComparison(BoundCompare::Op::kEq, std::move(lhs),
                          std::move(rhs));
  }
  if (op == "<>") {
    return BindComparison(BoundCompare::Op::kNe, std::move(lhs),
                          std::move(rhs));
  }
  if (op == "<") {
    return BindComparison(BoundCompare::Op::kLt, std::move(lhs),
                          std::move(rhs));
  }
  if (op == "<=") {
    return BindComparison(BoundCompare::Op::kLe, std::move(lhs),
                          std::move(rhs));
  }
  if (op == ">") {
    return BindComparison(BoundCompare::Op::kGt, std::move(lhs),
                          std::move(rhs));
  }
  if (op == ">=") {
    return BindComparison(BoundCompare::Op::kGe, std::move(lhs),
                          std::move(rhs));
  }
  // Arithmetic and concatenation resolve through the routine catalog —
  // this is where DataBlade operator overloads take effect, and where
  // `Chronon + Chronon` becomes the type error the paper promises.
  std::vector<BoundExprPtr> args;
  args.push_back(std::move(lhs));
  args.push_back(std::move(rhs));
  return BindRoutine(op, std::move(args));
}

Result<BoundExprPtr> ExprBinder::BindUnary(const Expr& expr) {
  const std::string op = ToLowerAscii(expr.text);
  TIP_ASSIGN_OR_RETURN(BoundExprPtr operand, Bind(*expr.args[0]));
  if (op == "not") {
    TIP_RETURN_IF_ERROR(RequireBoolean(*operand, "NOT"));
    return BoundExprPtr(new BoundNot(std::move(operand)));
  }
  assert(op == "-");
  std::vector<BoundExprPtr> args;
  args.push_back(std::move(operand));
  return BindRoutine("neg", std::move(args));
}

Result<BoundExprPtr> ExprBinder::BindCast(const Expr& expr) {
  TIP_ASSIGN_OR_RETURN(TypeId target, ctx_.types->FindByName(expr.text));
  TIP_ASSIGN_OR_RETURN(BoundExprPtr operand, Bind(*expr.args[0]));
  if (operand->type() == target) return operand;
  if (operand->type() == TypeId::kNull) {
    return BoundExprPtr(new BoundConstant(Datum::NullOf(target)));
  }
  const Cast* cast = ctx_.casts->Find(operand->type(), target,
                                      /*require_implicit=*/false);
  if (cast == nullptr) {
    return Status::TypeError("no cast from '" +
                             ctx_.types->Get(operand->type()).name +
                             "' to '" + ctx_.types->Get(target).name + "'");
  }
  return BoundExprPtr(new BoundCast(cast, std::move(operand)));
}

Result<BoundExprPtr> ExprBinder::BindBetween(const Expr& expr) {
  // a BETWEEN lo AND hi  ==>  a >= lo AND a <= hi (operand bound twice;
  // binding is pure so this is safe).
  TIP_ASSIGN_OR_RETURN(BoundExprPtr a1, Bind(*expr.args[0]));
  TIP_ASSIGN_OR_RETURN(BoundExprPtr lo, Bind(*expr.args[1]));
  TIP_ASSIGN_OR_RETURN(BoundExprPtr a2, Bind(*expr.args[0]));
  TIP_ASSIGN_OR_RETURN(BoundExprPtr hi, Bind(*expr.args[2]));
  TIP_ASSIGN_OR_RETURN(BoundExprPtr ge,
                       BindComparison(BoundCompare::Op::kGe, std::move(a1),
                                      std::move(lo)));
  TIP_ASSIGN_OR_RETURN(BoundExprPtr le,
                       BindComparison(BoundCompare::Op::kLe, std::move(a2),
                                      std::move(hi)));
  BoundExprPtr both(new BoundLogical(BoundLogical::Op::kAnd, std::move(ge),
                                     std::move(le)));
  if (expr.negated) return BoundExprPtr(new BoundNot(std::move(both)));
  return both;
}

Result<BoundExprPtr> ExprBinder::BindInList(const Expr& expr) {
  // a IN (x, y) ==> a = x OR a = y, with SQL's three-valued semantics
  // falling out of the OR chain.
  BoundExprPtr chain;
  for (size_t i = 1; i < expr.args.size(); ++i) {
    TIP_ASSIGN_OR_RETURN(BoundExprPtr a, Bind(*expr.args[0]));
    TIP_ASSIGN_OR_RETURN(BoundExprPtr item, Bind(*expr.args[i]));
    TIP_ASSIGN_OR_RETURN(BoundExprPtr eq,
                         BindComparison(BoundCompare::Op::kEq, std::move(a),
                                        std::move(item)));
    if (chain == nullptr) {
      chain = std::move(eq);
    } else {
      chain = BoundExprPtr(new BoundLogical(BoundLogical::Op::kOr,
                                            std::move(chain), std::move(eq)));
    }
  }
  if (chain == nullptr) {
    return Status::InvalidArgument("IN list must not be empty");
  }
  if (expr.negated) return BoundExprPtr(new BoundNot(std::move(chain)));
  return chain;
}

Result<BoundExprPtr> ExprBinder::BindCase(const Expr& expr) {
  const size_t pairs = expr.args.size() / 2;
  std::vector<BoundExprPtr> whens;
  std::vector<BoundExprPtr> thens;
  BoundExprPtr else_expr;
  TypeId result_type = TypeId::kNull;
  for (size_t i = 0; i < pairs; ++i) {
    TIP_ASSIGN_OR_RETURN(BoundExprPtr when, Bind(*expr.args[2 * i]));
    TIP_RETURN_IF_ERROR(RequireBoolean(*when, "CASE WHEN"));
    TIP_ASSIGN_OR_RETURN(BoundExprPtr then, Bind(*expr.args[2 * i + 1]));
    if (result_type == TypeId::kNull) result_type = then->type();
    whens.push_back(std::move(when));
    thens.push_back(std::move(then));
  }
  if (expr.has_else) {
    TIP_ASSIGN_OR_RETURN(else_expr, Bind(*expr.args.back()));
    if (result_type == TypeId::kNull) result_type = else_expr->type();
  }
  // Coerce all result branches to the common type.
  if (result_type != TypeId::kNull) {
    for (BoundExprPtr& then : thens) {
      TIP_ASSIGN_OR_RETURN(then,
                           CoerceToImpl(std::move(then), result_type, ctx_));
    }
    if (else_expr != nullptr) {
      TIP_ASSIGN_OR_RETURN(
          else_expr, CoerceToImpl(std::move(else_expr), result_type, ctx_));
    }
  }
  return BoundExprPtr(new BoundCase(result_type, std::move(whens),
                                    std::move(thens), std::move(else_expr)));
}

Result<BoundExprPtr> ExprBinder::BindExists(const Expr& expr) {
  TIP_ASSIGN_OR_RETURN(PlannedSelect sub,
                       PlanSelect(*expr.subquery, ctx_, scope_));
  return BoundExprPtr(new BoundExists(std::move(sub.root), expr.negated));
}

Result<BoundExprPtr> ExprBinder::BindScalarSubquery(const Expr& expr) {
  TIP_ASSIGN_OR_RETURN(PlannedSelect sub,
                       PlanSelect(*expr.subquery, ctx_, scope_));
  if (sub.column_types.size() != 1) {
    return Status::TypeError("scalar subquery must return exactly one "
                             "column");
  }
  return BoundExprPtr(new BoundScalarSubquery(sub.column_types[0],
                                              std::move(sub.root)));
}

Result<BoundExprPtr> ExprBinder::BindInSubquery(const Expr& expr) {
  TIP_ASSIGN_OR_RETURN(BoundExprPtr operand, Bind(*expr.args[0]));
  TIP_ASSIGN_OR_RETURN(PlannedSelect sub,
                       PlanSelect(*expr.subquery, ctx_, scope_));
  if (sub.column_types.size() != 1) {
    return Status::TypeError("IN subquery must return exactly one column");
  }
  // Reconcile the operand with the subquery's column type.
  TIP_ASSIGN_OR_RETURN(
      operand, CoerceToImpl(std::move(operand), sub.column_types[0], ctx_));
  return BoundExprPtr(new BoundInSubquery(std::move(operand),
                                          std::move(sub.root),
                                          expr.negated, ctx_.types));
}

// ---------------------------------------------------------------------------
// Static analysis for predicate placement
// ---------------------------------------------------------------------------

// Maps flattened column positions back to FROM-item positions.
struct FromLayout {
  /// Base table per FROM position; nullptr for derived tables.
  std::vector<const Table*> tables;
  std::vector<size_t> offsets;  // column offset of each table
  size_t total_columns = 0;

  size_t TableOfColumn(size_t column) const {
    for (size_t i = tables.size(); i-- > 0;) {
      if (column >= offsets[i]) return i;
    }
    return 0;
  }
};

Status CollectInfo(const Expr& expr, const Scope& scope,
                   const FromLayout& layout,
                   const AggregateRegistry& aggregates, ExprInfo* info) {
  switch (expr.kind) {
    case ExprKind::kColumnRef: {
      TIP_ASSIGN_OR_RETURN(Scope::Resolution res,
                           scope.Resolve(expr.qualifier, expr.text));
      if (res.depth == 0) {
        info->local_tables.insert(layout.TableOfColumn(res.index));
      }
      return Status::OK();
    }
    case ExprKind::kExists:
    case ExprKind::kScalarSubquery:
    case ExprKind::kInSubquery:
      // Correlated subqueries may reference any local table; treat them
      // as depending on all of them so they are never pushed down.
      // (kInSubquery's operand needs no separate walk: the whole
      // conjunct is pinned to the top filter anyway.)
      info->has_subquery = true;
      for (size_t i = 0; i < layout.tables.size(); ++i) {
        info->local_tables.insert(i);
      }
      return Status::OK();
    case ExprKind::kFuncCall:
      if (aggregates.Exists(expr.text)) info->has_aggregate = true;
      break;
    default:
      break;
  }
  for (const ExprPtr& arg : expr.args) {
    TIP_RETURN_IF_ERROR(
        CollectInfo(*arg, scope, layout, aggregates, info));
  }
  return Status::OK();
}

// Splits a predicate into its top-level AND conjuncts.
void SplitConjuncts(const Expr* expr, std::vector<const Expr*>* out) {
  if (expr == nullptr) return;
  if (expr->kind == ExprKind::kBinary &&
      EqualsIgnoreCase(expr->text, "and")) {
    SplitConjuncts(expr->args[0].get(), out);
    SplitConjuncts(expr->args[1].get(), out);
    return;
  }
  out->push_back(expr);
}

// Collects aggregate calls (outermost only) from an expression tree.
// Duplicate calls (structurally equal) collapse to one slot.
Status CollectAggregates(const Expr& expr,
                         const AggregateRegistry& aggregates,
                         std::vector<const Expr*>* out) {
  if (expr.kind == ExprKind::kFuncCall && aggregates.Exists(expr.text)) {
    // Aggregates must not nest.
    for (const ExprPtr& arg : expr.args) {
      std::vector<const Expr*> nested;
      TIP_RETURN_IF_ERROR(CollectAggregates(*arg, aggregates, &nested));
      if (!nested.empty()) {
        return Status::TypeError("aggregate calls cannot be nested");
      }
    }
    for (const Expr* existing : *out) {
      if (ExprEquals(*existing, expr)) return Status::OK();
    }
    out->push_back(&expr);
    return Status::OK();
  }
  for (const ExprPtr& arg : expr.args) {
    TIP_RETURN_IF_ERROR(CollectAggregates(*arg, aggregates, out));
  }
  return Status::OK();
}

// Derives an output column name from an expression.
std::string DeriveName(const Expr& expr) {
  switch (expr.kind) {
    case ExprKind::kColumnRef:
      return ToLowerAscii(expr.text);
    case ExprKind::kFuncCall:
      return ToLowerAscii(expr.text);
    case ExprKind::kCast:
      return DeriveName(*expr.args[0]);
    default:
      return "?column?";
  }
}

// ---------------------------------------------------------------------------
// Join-tree construction
// ---------------------------------------------------------------------------

struct Conjunct {
  const Expr* expr;
  ExprInfo info;
  bool placed = false;

  bool OnlyTables(const std::set<size_t>& allowed) const {
    for (size_t t : info.local_tables) {
      if (allowed.find(t) == allowed.end()) return false;
    }
    return true;
  }
  bool References(size_t table) const {
    return info.local_tables.count(table) > 0;
  }
};

BoundExprPtr AndTogether(std::vector<BoundExprPtr> preds) {
  BoundExprPtr out;
  for (BoundExprPtr& p : preds) {
    if (out == nullptr) {
      out = std::move(p);
    } else {
      out = BoundExprPtr(new BoundLogical(BoundLogical::Op::kAnd,
                                          std::move(out), std::move(p)));
    }
  }
  return out;
}

/// Builds the plan for one SELECT. Owns all transient binding state.
class SelectPlanner {
 public:
  /// `core_only` plans just the select core, ignoring the statement's
  /// ORDER BY / LIMIT (used for the first core of a compound select,
  /// which shares the SelectStmt with the compound's trailing clauses).
  SelectPlanner(const SelectStmt& select, const PlannerContext& ctx,
                const Scope* outer, bool core_only = false)
      : select_(select), ctx_(ctx), outer_(outer), core_only_(core_only) {}

  Result<PlannedSelect> Plan();

 private:
  Status BuildScope();
  Status AnalyzeConjuncts();
  Result<ExecNodePtr> BuildJoinTree();
  Result<ExecNodePtr> BuildScan(size_t table_pos, const Scope& scan_scope,
                                std::vector<Conjunct*> pushed);
  Result<ExecNodePtr> TryIntervalScan(size_t table_pos,
                                      const Scope& scan_scope,
                                      const std::vector<Conjunct*>& pushed);
  Result<ExecNodePtr> JoinNext(ExecNodePtr left, size_t table_pos,
                               const std::set<size_t>& joined);

  // The key-extraction support function for `type`, if registered.
  const IntervalKeyFn* KeyFnFor(TypeId type) const {
    if (ctx_.interval_key_fns == nullptr) return nullptr;
    auto it = ctx_.interval_key_fns->find(type);
    return it == ctx_.interval_key_fns->end() ? nullptr : &it->second;
  }

  // True when a morsel-parallel operator over `table` is worth planning:
  // the session asked for workers and the estimated input (the heap's
  // live row count) clears the threshold.
  bool ParallelEligible(const Table* table) const {
    return ctx_.parallel_workers >= 2 && table != nullptr &&
           table->heap().row_count() >= ctx_.parallel_min_rows;
  }

  ParallelStats* StatsFor(const Table* table) const {
    if (ctx_.parallel_stats == nullptr) return nullptr;
    return ctx_.parallel_stats->ForTable(table->name());
  }

  // Binds `scan0_pushed_` against table 0's scan scope (binding is
  // pure, so re-binding conjuncts already placed in a scan is safe).
  Result<BoundExprPtr> BindScanZeroPredicate() {
    std::vector<BoundExprPtr> preds;
    ExprBinder binder(ctx_, &table_scopes_[0]);
    for (const Conjunct* c : scan0_pushed_) {
      TIP_ASSIGN_OR_RETURN(BoundExprPtr p, binder.Bind(*c->expr));
      preds.push_back(std::move(p));
    }
    return AndTogether(std::move(preds));
  }

  const SelectStmt& select_;
  const PlannerContext& ctx_;
  const Scope* outer_;
  bool core_only_;

  Scope scope_;              // full FROM scope (outer_ linked)
  FromLayout layout_;
  std::vector<Scope> table_scopes_;  // per-table scopes for inner sides
  std::vector<PlannedSelect> subplans_;  // derived tables (root else null)
  std::vector<Conjunct> conjuncts_;

  // Shape of table 0's scan, recorded by BuildScan so later phases can
  // fuse a parallel operator over it: true only when table 0 is a base
  // table scanned heap-order (no interval index scan), with
  // `scan0_pushed_` as the complete set of conjuncts pushed into it.
  bool scan0_plain_heap_ = false;
  std::vector<const Conjunct*> scan0_pushed_;
};

Status SelectPlanner::BuildScope() {
  scope_.outer = outer_;
  for (const FromItem& item : select_.from) {
    const std::string binding = ToLowerAscii(item.ref.binding_name());
    for (size_t i = 0; i < layout_.tables.size(); ++i) {
      const std::string other = ToLowerAscii(
          select_.from[i].ref.binding_name());
      if (other == binding) {
        return Status::InvalidArgument("duplicate table name or alias '" +
                                       binding + "' in FROM");
      }
    }
    layout_.offsets.push_back(layout_.total_columns);

    std::vector<Column> columns;
    if (item.ref.is_subquery()) {
      // Derived table: plan it now; it may be correlated only with the
      // *enclosing* query (outer_), never with FROM siblings.
      TIP_ASSIGN_OR_RETURN(PlannedSelect sub,
                           PlanSelect(*item.ref.subquery, ctx_, outer_));
      columns.reserve(sub.column_names.size());
      for (size_t i = 0; i < sub.column_names.size(); ++i) {
        columns.push_back({sub.column_names[i], sub.column_types[i]});
      }
      layout_.tables.push_back(nullptr);
      subplans_.push_back(std::move(sub));
    } else {
      TIP_ASSIGN_OR_RETURN(Table * table,
                           ctx_.catalog->GetTable(item.ref.table));
      columns = table->columns();
      layout_.tables.push_back(table);
      subplans_.emplace_back();
    }

    Scope table_scope;
    table_scope.outer = outer_;
    for (const Column& col : columns) {
      scope_.bindings.push_back({binding, col.name, col.type});
      table_scope.bindings.push_back({binding, col.name, col.type});
    }
    layout_.total_columns += columns.size();
    table_scopes_.push_back(std::move(table_scope));
  }
  return Status::OK();
}

Status SelectPlanner::AnalyzeConjuncts() {
  std::vector<const Expr*> raw;
  SplitConjuncts(select_.where.get(), &raw);
  for (const FromItem& item : select_.from) {
    SplitConjuncts(item.on.get(), &raw);
  }
  for (const Expr* expr : raw) {
    Conjunct c;
    c.expr = expr;
    TIP_RETURN_IF_ERROR(CollectInfo(*expr, scope_, layout_,
                                    *ctx_.aggregates, &c.info));
    if (c.info.has_aggregate) {
      return Status::TypeError(
          "aggregates are not allowed in WHERE or ON (use HAVING)");
    }
    conjuncts_.push_back(std::move(c));
  }
  return Status::OK();
}

Result<ExecNodePtr> SelectPlanner::TryIntervalScan(
    size_t table_pos, const Scope& scan_scope,
    const std::vector<Conjunct*>& pushed) {
  if (!ctx_.enable_interval_join) return ExecNodePtr();
  const Table* table = layout_.tables[table_pos];
  if (table == nullptr) return ExecNodePtr();  // derived table
  for (Conjunct* c : pushed) {
    const Expr& e = *c->expr;
    if (e.kind != ExprKind::kFuncCall ||
        !EqualsIgnoreCase(e.text, "overlaps") || e.args.size() != 2) {
      continue;
    }
    // One side must be a bare reference to an indexed column of this
    // table; the other must not reference this table at all.
    for (int side = 0; side < 2; ++side) {
      const Expr& col_side = *e.args[side];
      const Expr& probe_side = *e.args[1 - side];
      if (col_side.kind != ExprKind::kColumnRef) continue;
      Result<Scope::Resolution> res =
          scan_scope.Resolve(col_side.qualifier, col_side.text);
      if (!res.ok() || res->depth != 0) continue;
      if (!table->HasIntervalIndex(res->index)) continue;
      ExprInfo probe_info;
      TIP_RETURN_IF_ERROR(CollectInfo(probe_side, scope_, layout_,
                                      *ctx_.aggregates, &probe_info));
      if (probe_info.local_tables.count(table_pos) > 0 ||
          probe_info.has_subquery) {
        continue;
      }
      ExprBinder binder(ctx_, &scan_scope);
      // The probe must not reference any local table (it is evaluated
      // once per scan open); CollectInfo guaranteed that only for this
      // table, so re-check against all local tables.
      if (!probe_info.local_tables.empty()) continue;
      TIP_ASSIGN_OR_RETURN(BoundExprPtr probe, binder.Bind(probe_side));
      const IntervalKeyFn* key_fn = KeyFnFor(probe->type());
      if (key_fn == nullptr) continue;
      return ExecNodePtr(new IntervalScanNode(table, res->index,
                                              std::move(probe), *key_fn));
    }
  }
  return ExecNodePtr();
}

Result<ExecNodePtr> SelectPlanner::BuildScan(size_t table_pos,
                                             const Scope& scan_scope,
                                             std::vector<Conjunct*> pushed) {
  const Table* table = layout_.tables[table_pos];
  ExecNodePtr scan;
  if (table == nullptr) {
    // Derived table: the subplan is the scan (all plan nodes fully
    // re-initialize on Open, so re-scanning as a join inner works).
    scan = std::move(subplans_[table_pos].root);
    assert(scan != nullptr);
  } else {
    TIP_ASSIGN_OR_RETURN(scan,
                         TryIntervalScan(table_pos, scan_scope, pushed));
    if (scan == nullptr) {
      // Plain heap scan. Record table 0's shape so the aggregate /
      // interval-join fusion hooks can replace this subtree with a
      // fused morsel-parallel operator later.
      if (table_pos == 0) {
        scan0_plain_heap_ = true;
        scan0_pushed_.assign(pushed.begin(), pushed.end());
      }
      if (ParallelEligible(table)) {
        // Morsel-parallel scan with the filter run inside the workers.
        // Only non-subquery conjuncts are ever pushed into scans, so
        // evaluating them from worker threads is safe.
        std::vector<BoundExprPtr> preds;
        ExprBinder binder(ctx_, &scan_scope);
        for (Conjunct* c : pushed) {
          TIP_ASSIGN_OR_RETURN(BoundExprPtr p, binder.Bind(*c->expr));
          preds.push_back(std::move(p));
          c->placed = true;
        }
        return ExecNodePtr(new ParallelScanNode(
            table, AndTogether(std::move(preds)), ctx_.parallel_workers,
            StatsFor(table)));
      }
      scan = ExecNodePtr(new SeqScanNode(table));
    }
  }
  // All pushed conjuncts (including the one that chose the index, as its
  // exact residual) run as a filter over the scan.
  std::vector<BoundExprPtr> preds;
  ExprBinder binder(ctx_, &scan_scope);
  for (Conjunct* c : pushed) {
    TIP_ASSIGN_OR_RETURN(BoundExprPtr p, binder.Bind(*c->expr));
    preds.push_back(std::move(p));
    c->placed = true;
  }
  BoundExprPtr predicate = AndTogether(std::move(preds));
  if (predicate != nullptr) {
    scan = ExecNodePtr(new FilterNode(std::move(scan),
                                      std::move(predicate)));
  }
  return scan;
}

Result<ExecNodePtr> SelectPlanner::JoinNext(ExecNodePtr left,
                                            size_t table_pos,
                                            const std::set<size_t>& joined) {
  std::set<size_t> with_new = joined;
  with_new.insert(table_pos);

  // Conjuncts placeable at this join level, split into: inner-only
  // (pushed into the inner scan), join conjuncts (involving the new
  // table and earlier ones), and the rest (handled later / earlier).
  std::vector<Conjunct*> inner_only;
  std::vector<Conjunct*> join_conjuncts;
  for (Conjunct& c : conjuncts_) {
    if (c.placed || c.info.has_subquery) continue;
    if (!c.OnlyTables(with_new) || !c.References(table_pos)) continue;
    if (c.OnlyTables({table_pos})) {
      inner_only.push_back(&c);
    } else {
      join_conjuncts.push_back(&c);
    }
  }

  const Scope& inner_scope = table_scopes_[table_pos];
  ExprBinder full_binder(ctx_, &scope_);

  // 1. Interval index join on an `overlaps` conjunct. Checked before
  // the inner scan is built: index probes bypass the scan entirely, so
  // the inner table's own filters fold into the residual instead.
  if (ctx_.enable_interval_join && layout_.tables[table_pos] != nullptr) {
    const Table* table = layout_.tables[table_pos];
    for (Conjunct* c : join_conjuncts) {
      const Expr& e = *c->expr;
      if (e.kind != ExprKind::kFuncCall ||
          !EqualsIgnoreCase(e.text, "overlaps") || e.args.size() != 2) {
        continue;
      }
      for (int side = 0; side < 2; ++side) {
        const Expr& col_side = *e.args[side];
        const Expr& probe_side = *e.args[1 - side];
        if (col_side.kind != ExprKind::kColumnRef) continue;
        Result<Scope::Resolution> res =
            inner_scope.Resolve(col_side.qualifier, col_side.text);
        if (!res.ok() || res->depth != 0) continue;
        if (!table->HasIntervalIndex(res->index)) continue;
        ExprInfo probe_info;
        TIP_RETURN_IF_ERROR(CollectInfo(probe_side, scope_, layout_,
                                        *ctx_.aggregates, &probe_info));
        if (probe_info.local_tables.count(table_pos) > 0) continue;
        TIP_ASSIGN_OR_RETURN(BoundExprPtr probe,
                             full_binder.Bind(probe_side));
        const IntervalKeyFn* key_fn = KeyFnFor(probe->type());
        if (key_fn == nullptr) continue;
        // Residual: every join conjunct (including the overlaps itself,
        // whose exact semantics the bounding-interval probe only
        // approximates) and the inner table's own filters, all bound
        // against the combined row.
        std::vector<BoundExprPtr> residuals;
        for (Conjunct* rc : join_conjuncts) {
          TIP_ASSIGN_OR_RETURN(BoundExprPtr p,
                               full_binder.Bind(*rc->expr));
          residuals.push_back(std::move(p));
          rc->placed = true;
        }
        for (Conjunct* rc : inner_only) {
          TIP_ASSIGN_OR_RETURN(BoundExprPtr p,
                               full_binder.Bind(*rc->expr));
          residuals.push_back(std::move(p));
          rc->placed = true;
        }
        // Morsel-parallel variant: valid only when the left subtree is
        // exactly table 0's plain heap scan (so it can be re-expressed
        // as a worker-side morsel loop) and the scan is large enough to
        // split. Workers probe the shared immutable index view.
        if (table_pos == 1 && scan0_plain_heap_ &&
            ParallelEligible(layout_.tables[0])) {
          TIP_ASSIGN_OR_RETURN(BoundExprPtr left_pred,
                               BindScanZeroPredicate());
          return ExecNodePtr(new ParallelIntervalJoinNode(
              layout_.tables[0], std::move(left_pred), table, res->index,
              std::move(probe), *key_fn, AndTogether(std::move(residuals)),
              ctx_.parallel_workers, StatsFor(layout_.tables[0])));
        }
        return ExecNodePtr(new IntervalJoinNode(
            std::move(left), table, res->index, std::move(probe), *key_fn,
            AndTogether(std::move(residuals))));
      }
    }
  }

  TIP_ASSIGN_OR_RETURN(ExecNodePtr inner,
                       BuildScan(table_pos, inner_scope, inner_only));

  // 2. Hash join on equality conjuncts.
  if (ctx_.enable_hash_join) {
    std::vector<BoundExprPtr> left_keys;
    std::vector<BoundExprPtr> right_keys;
    std::vector<Conjunct*> key_conjuncts;
    for (Conjunct* c : join_conjuncts) {
      const Expr& e = *c->expr;
      if (e.kind != ExprKind::kBinary || e.text != "=") continue;
      for (int side = 0; side < 2; ++side) {
        ExprInfo lhs_info, rhs_info;
        TIP_RETURN_IF_ERROR(CollectInfo(*e.args[side], scope_, layout_,
                                        *ctx_.aggregates, &lhs_info));
        TIP_RETURN_IF_ERROR(CollectInfo(*e.args[1 - side], scope_, layout_,
                                        *ctx_.aggregates, &rhs_info));
        const bool lhs_is_old = lhs_info.local_tables.count(table_pos) == 0;
        bool rhs_only_new = !rhs_info.local_tables.empty();
        for (size_t t : rhs_info.local_tables) {
          if (t != table_pos) rhs_only_new = false;
        }
        if (!lhs_is_old || !rhs_only_new) continue;
        ExprBinder inner_binder(ctx_, &inner_scope);
        TIP_ASSIGN_OR_RETURN(BoundExprPtr lk,
                             full_binder.Bind(*e.args[side]));
        TIP_ASSIGN_OR_RETURN(BoundExprPtr rk,
                             inner_binder.Bind(*e.args[1 - side]));
        // Reconcile key types the same way '=' would.
        if (lk->type() != rk->type()) {
          const Cast* r2l = ctx_.casts->Find(rk->type(), lk->type(), true);
          const Cast* l2r = ctx_.casts->Find(lk->type(), rk->type(), true);
          if (r2l != nullptr) {
            rk = BoundExprPtr(new BoundCast(r2l, std::move(rk)));
          } else if (l2r != nullptr) {
            lk = BoundExprPtr(new BoundCast(l2r, std::move(lk)));
          } else {
            continue;
          }
        }
        if (!ctx_.types->IsHashable(lk->type())) continue;
        left_keys.push_back(std::move(lk));
        right_keys.push_back(std::move(rk));
        key_conjuncts.push_back(c);
        break;
      }
    }
    if (!left_keys.empty()) {
      for (Conjunct* c : key_conjuncts) c->placed = true;
      std::vector<BoundExprPtr> residuals;
      for (Conjunct* c : join_conjuncts) {
        if (c->placed) continue;
        TIP_ASSIGN_OR_RETURN(BoundExprPtr p, full_binder.Bind(*c->expr));
        residuals.push_back(std::move(p));
        c->placed = true;
      }
      return ExecNodePtr(new HashJoinNode(
          std::move(left), std::move(inner), std::move(left_keys),
          std::move(right_keys), AndTogether(std::move(residuals)),
          ctx_.types));
    }
  }

  // 3. Fallback: nested-loop join with all join conjuncts as predicate.
  std::vector<BoundExprPtr> preds;
  for (Conjunct* c : join_conjuncts) {
    TIP_ASSIGN_OR_RETURN(BoundExprPtr p, full_binder.Bind(*c->expr));
    preds.push_back(std::move(p));
    c->placed = true;
  }
  return ExecNodePtr(new NestedLoopJoinNode(std::move(left),
                                            std::move(inner),
                                            AndTogether(std::move(preds))));
}

Result<ExecNodePtr> SelectPlanner::BuildJoinTree() {
  if (select_.from.empty()) {
    ExecNodePtr node(new SingleRowNode());
    // A WHERE clause over no tables is still legal.
    std::vector<BoundExprPtr> preds;
    ExprBinder binder(ctx_, &scope_);
    for (Conjunct& c : conjuncts_) {
      TIP_ASSIGN_OR_RETURN(BoundExprPtr p, binder.Bind(*c.expr));
      preds.push_back(std::move(p));
      c.placed = true;
    }
    BoundExprPtr predicate = AndTogether(std::move(preds));
    if (predicate != nullptr) {
      node = ExecNodePtr(new FilterNode(std::move(node),
                                        std::move(predicate)));
    }
    return node;
  }

  // Scan of the first table with its pushable single-table conjuncts.
  std::vector<Conjunct*> first_pushed;
  for (Conjunct& c : conjuncts_) {
    if (!c.placed && !c.info.has_subquery && c.OnlyTables({0})) {
      first_pushed.push_back(&c);
    }
  }
  // The first table's scope is the full scope prefix, which equals its
  // own table scope; use the table scope for consistency.
  TIP_ASSIGN_OR_RETURN(ExecNodePtr plan,
                       BuildScan(0, table_scopes_[0], first_pushed));

  std::set<size_t> joined{0};
  for (size_t k = 1; k < layout_.tables.size(); ++k) {
    TIP_ASSIGN_OR_RETURN(plan, JoinNext(std::move(plan), k, joined));
    joined.insert(k);
  }

  // Everything unplaced (conjuncts with subqueries, or placeable only
  // over the complete row) runs as a top filter.
  std::vector<BoundExprPtr> preds;
  ExprBinder binder(ctx_, &scope_);
  for (Conjunct& c : conjuncts_) {
    if (c.placed) continue;
    TIP_ASSIGN_OR_RETURN(BoundExprPtr p, binder.Bind(*c.expr));
    preds.push_back(std::move(p));
    c.placed = true;
  }
  BoundExprPtr predicate = AndTogether(std::move(preds));
  if (predicate != nullptr) {
    plan = ExecNodePtr(new FilterNode(std::move(plan),
                                      std::move(predicate)));
  }
  return plan;
}

Result<PlannedSelect> SelectPlanner::Plan() {
  TIP_RETURN_IF_ERROR(BuildScope());
  TIP_RETURN_IF_ERROR(AnalyzeConjuncts());
  TIP_ASSIGN_OR_RETURN(ExecNodePtr plan, BuildJoinTree());

  // Expand stars in the select list.
  struct OutputItem {
    const Expr* expr = nullptr;  // null for expanded star columns
    ExprPtr owned;               // synthesized column refs for stars
    std::string name;
  };
  std::vector<OutputItem> outputs;
  for (const SelectItem& item : select_.items) {
    if (item.is_star) {
      bool matched = false;
      for (const Scope::Binding& b : scope_.bindings) {
        if (!item.star_qualifier.empty() &&
            !EqualsIgnoreCase(item.star_qualifier, b.table)) {
          continue;
        }
        matched = true;
        OutputItem out;
        out.owned = Expr::ColumnRef(b.table, b.column);
        out.expr = out.owned.get();
        out.name = b.column;
        outputs.push_back(std::move(out));
      }
      if (!matched) {
        return Status::InvalidArgument(
            item.star_qualifier.empty()
                ? "SELECT * with no FROM tables"
                : "unknown table '" + item.star_qualifier + "' in select "
                  "list");
      }
    } else {
      OutputItem out;
      out.expr = item.expr.get();
      out.name = item.alias.empty() ? DeriveName(*item.expr)
                                    : ToLowerAscii(item.alias);
      outputs.push_back(std::move(out));
    }
  }

  // Detect grouping.
  std::vector<const Expr*> aggregate_calls;
  for (const OutputItem& out : outputs) {
    TIP_RETURN_IF_ERROR(
        CollectAggregates(*out.expr, *ctx_.aggregates, &aggregate_calls));
  }
  if (select_.having != nullptr) {
    TIP_RETURN_IF_ERROR(CollectAggregates(*select_.having,
                                          *ctx_.aggregates,
                                          &aggregate_calls));
  }
  if (!core_only_) {
    for (const OrderItem& item : select_.order_by) {
      TIP_RETURN_IF_ERROR(CollectAggregates(*item.expr, *ctx_.aggregates,
                                            &aggregate_calls));
    }
  }
  const bool grouped =
      !select_.group_by.empty() || !aggregate_calls.empty();
  if (!grouped && select_.having != nullptr) {
    return Status::TypeError("HAVING requires GROUP BY or aggregates");
  }
  if (grouped) {
    // Subqueries above the aggregation would resolve their outer
    // references against the FROM scope but evaluate against the
    // aggregate output row; reject them rather than mis-evaluate.
    // (Subqueries in WHERE run below the aggregation and are fine.)
    auto reject_subquery = [&](const Expr& e,
                               const char* where) -> Status {
      ExprInfo info;
      TIP_RETURN_IF_ERROR(
          CollectInfo(e, scope_, layout_, *ctx_.aggregates, &info));
      if (info.has_subquery) {
        return Status::NotImplemented(
            std::string("subqueries in the ") + where +
            " of a grouped query are not supported");
      }
      return Status::OK();
    };
    for (const OutputItem& out : outputs) {
      TIP_RETURN_IF_ERROR(reject_subquery(*out.expr, "select list"));
    }
    if (select_.having != nullptr) {
      TIP_RETURN_IF_ERROR(reject_subquery(*select_.having, "HAVING"));
    }
    for (const ExprPtr& g : select_.group_by) {
      TIP_RETURN_IF_ERROR(reject_subquery(*g, "GROUP BY"));
    }
  }

  ExprBinder binder(ctx_, &scope_);
  std::vector<Replacement> replacements;
  std::vector<BoundExprPtr> output_exprs;
  ExprBinder output_binder(ctx_, &scope_);

  if (grouped) {
    // Bind group keys against the FROM scope.
    std::vector<BoundExprPtr> group_bound;
    for (const ExprPtr& g : select_.group_by) {
      TIP_ASSIGN_OR_RETURN(BoundExprPtr b, binder.Bind(*g));
      replacements.push_back(
          {g.get(), replacements.size(), b->type()});
      group_bound.push_back(std::move(b));
    }
    // Bind aggregate arguments against the FROM scope and resolve each
    // call.
    std::vector<AggregateSpec> specs;
    for (const Expr* call : aggregate_calls) {
      AggregateSpec spec;
      TypeId arg_type = TypeId::kNull;
      if (call->args.size() == 1 &&
          call->args[0]->kind == ExprKind::kStar) {
        spec.arg = nullptr;  // COUNT(*)
      } else if (call->args.size() == 1) {
        TIP_ASSIGN_OR_RETURN(spec.arg, binder.Bind(*call->args[0]));
        arg_type = spec.arg->type();
      } else {
        return Status::TypeError("aggregate '" + call->text +
                                 "' takes exactly one argument");
      }
      TIP_ASSIGN_OR_RETURN(
          spec.agg,
          ctx_.aggregates->Resolve(call->text, arg_type, *ctx_.casts));
      replacements.push_back({call,
                              select_.group_by.size() + specs.size(),
                              spec.agg.result});
      specs.push_back(std::move(spec));
    }
    // Fuse scan + filter + aggregation into one morsel-parallel
    // operator when the whole input pipeline is just table 0's plain
    // heap scan with fully pushed conjuncts (a subquery conjunct would
    // have left a Filter above the scan, and subqueries cannot run on
    // worker threads) and every aggregate supports Merge. Group keys
    // and aggregate arguments are subquery-free here: grouped queries
    // reject subqueries above the aggregation outright.
    bool fuse_parallel =
        layout_.tables.size() == 1 && layout_.tables[0] != nullptr &&
        scan0_plain_heap_ && ParallelEligible(layout_.tables[0]);
    for (const Conjunct& c : conjuncts_) {
      if (c.info.has_subquery) fuse_parallel = false;
    }
    for (const AggregateSpec& spec : specs) {
      if (!spec.agg.def->mergeable) fuse_parallel = false;
    }
    if (fuse_parallel) {
      TIP_ASSIGN_OR_RETURN(BoundExprPtr pred, BindScanZeroPredicate());
      plan = ExecNodePtr(new ParallelAggregateNode(
          layout_.tables[0], std::move(pred), std::move(group_bound),
          std::move(specs), ctx_.types, ctx_.parallel_workers,
          StatsFor(layout_.tables[0])));
    } else {
      plan = ExecNodePtr(new AggregateNode(std::move(plan),
                                           std::move(group_bound),
                                           std::move(specs), ctx_.types));
    }
    output_binder.SetReplacements(&replacements);

    if (select_.having != nullptr) {
      TIP_ASSIGN_OR_RETURN(BoundExprPtr having,
                           output_binder.Bind(*select_.having));
      if (having->type() != TypeId::kBool &&
          having->type() != TypeId::kNull) {
        return Status::TypeError("HAVING requires a BOOLEAN expression");
      }
      plan = ExecNodePtr(new FilterNode(std::move(plan),
                                        std::move(having)));
    }
  }

  // Bind output expressions (against the group scope when grouped).
  std::vector<TypeId> output_types;
  std::vector<std::string> output_names;
  for (const OutputItem& out : outputs) {
    TIP_ASSIGN_OR_RETURN(BoundExprPtr b, output_binder.Bind(*out.expr));
    output_types.push_back(b->type());
    output_names.push_back(out.name);
    output_exprs.push_back(std::move(b));
  }
  const size_t visible_arity = output_exprs.size();

  // ORDER BY: output position, output name, or an extra hidden column.
  std::vector<SortNode::Key> sort_keys;
  size_t hidden = 0;
  const std::vector<OrderItem> kNoOrder;
  const std::vector<OrderItem>& order_items =
      core_only_ ? kNoOrder : select_.order_by;
  for (const OrderItem& item : order_items) {
    SortNode::Key key;
    key.descending = item.descending;
    const Expr& e = *item.expr;
    if (e.kind == ExprKind::kLiteral && e.literal_kind == LiteralKind::kInt) {
      if (e.int_value < 1 ||
          e.int_value > static_cast<int64_t>(visible_arity)) {
        return Status::InvalidArgument("ORDER BY position out of range");
      }
      const size_t idx = static_cast<size_t>(e.int_value - 1);
      key.expr = BoundExprPtr(
          new BoundColumn(output_types[idx], 0, idx));
      sort_keys.push_back(std::move(key));
      continue;
    }
    if (e.kind == ExprKind::kColumnRef && e.qualifier.empty()) {
      int idx = -1;
      for (size_t i = 0; i < output_names.size(); ++i) {
        if (EqualsIgnoreCase(output_names[i], e.text)) {
          idx = static_cast<int>(i);
          break;
        }
      }
      if (idx >= 0) {
        key.expr = BoundExprPtr(new BoundColumn(
            output_types[static_cast<size_t>(idx)], 0,
            static_cast<size_t>(idx)));
        sort_keys.push_back(std::move(key));
        continue;
      }
    }
    // General expression: compute it as a hidden output column.
    ExprInfo info;
    TIP_RETURN_IF_ERROR(
        CollectInfo(e, scope_, layout_, *ctx_.aggregates, &info));
    if (info.has_subquery) {
      return Status::InvalidArgument("subqueries in ORDER BY are not "
                                     "supported");
    }
    if (select_.distinct) {
      return Status::InvalidArgument(
          "ORDER BY expressions must appear in the select list when "
          "DISTINCT is used");
    }
    TIP_ASSIGN_OR_RETURN(BoundExprPtr b, output_binder.Bind(e));
    const size_t idx = visible_arity + hidden;
    key.expr = BoundExprPtr(new BoundColumn(b->type(), 0, idx));
    output_exprs.push_back(std::move(b));
    ++hidden;
    sort_keys.push_back(std::move(key));
  }

  plan = ExecNodePtr(new ProjectNode(std::move(plan),
                                     std::move(output_exprs)));
  if (select_.distinct) {
    plan = ExecNodePtr(new DistinctNode(std::move(plan), ctx_.types));
  }
  if (!sort_keys.empty()) {
    plan = ExecNodePtr(new SortNode(std::move(plan), std::move(sort_keys),
                                    ctx_.types));
  }
  if (hidden > 0) {
    plan = ExecNodePtr(new PrefixNode(std::move(plan), visible_arity));
  }
  if (!core_only_ &&
      (select_.limit.has_value() || select_.offset.has_value())) {
    plan = ExecNodePtr(new LimitNode(std::move(plan), select_.limit,
                                     select_.offset.value_or(0)));
  }

  PlannedSelect out;
  out.root = std::move(plan);
  out.column_names = std::move(output_names);
  out.column_types = std::move(output_types);
  return out;
}

}  // namespace

Result<Scope::Resolution> Scope::Resolve(std::string_view qualifier,
                                         std::string_view name) const {
  const Scope* scope = this;
  size_t depth = 0;
  while (scope != nullptr) {
    int found = -1;
    for (size_t i = 0; i < scope->bindings.size(); ++i) {
      const Binding& b = scope->bindings[i];
      if (!EqualsIgnoreCase(b.column, name)) continue;
      if (!qualifier.empty() && !EqualsIgnoreCase(b.table, qualifier)) {
        continue;
      }
      if (found >= 0) {
        return Status::InvalidArgument("ambiguous column reference '" +
                                       std::string(name) + "'");
      }
      found = static_cast<int>(i);
    }
    if (found >= 0) {
      return Resolution{depth, static_cast<size_t>(found),
                        scope->bindings[static_cast<size_t>(found)].type};
    }
    scope = scope->outer;
    ++depth;
  }
  std::string full = qualifier.empty()
                         ? std::string(name)
                         : std::string(qualifier) + "." + std::string(name);
  return Status::NotFound("unknown column '" + full + "'");
}

namespace {

// Combines compound-select cores left to right, then applies the
// trailing ORDER BY (output positions or names only) and LIMIT.
Result<PlannedSelect> PlanCompound(const SelectStmt& select,
                                   const PlannerContext& ctx,
                                   const Scope* outer) {
  SelectPlanner base_planner(select, ctx, outer, /*core_only=*/true);
  TIP_ASSIGN_OR_RETURN(PlannedSelect combined, base_planner.Plan());

  for (const CompoundPart& part : select.compounds) {
    SelectPlanner part_planner(*part.select, ctx, outer,
                               /*core_only=*/true);
    TIP_ASSIGN_OR_RETURN(PlannedSelect next, part_planner.Plan());
    if (next.column_types.size() != combined.column_types.size()) {
      return Status::TypeError(
          "compound select operands must have the same number of "
          "columns");
    }
    for (size_t i = 0; i < next.column_types.size(); ++i) {
      if (next.column_types[i] != combined.column_types[i] &&
          next.column_types[i] != TypeId::kNull &&
          combined.column_types[i] != TypeId::kNull) {
        return Status::TypeError(
            "compound select column " + std::to_string(i + 1) +
            " has mismatched types '" +
            ctx.types->Get(combined.column_types[i]).name + "' and '" +
            ctx.types->Get(next.column_types[i]).name + "'");
      }
      if (combined.column_types[i] == TypeId::kNull) {
        combined.column_types[i] = next.column_types[i];
      }
    }
    switch (part.op) {
      case CompoundPart::Op::kUnionAll: {
        std::vector<ExecNodePtr> children;
        children.push_back(std::move(combined.root));
        children.push_back(std::move(next.root));
        combined.root = ExecNodePtr(new ConcatNode(std::move(children)));
        break;
      }
      case CompoundPart::Op::kUnion: {
        std::vector<ExecNodePtr> children;
        children.push_back(std::move(combined.root));
        children.push_back(std::move(next.root));
        combined.root = ExecNodePtr(new DistinctNode(
            ExecNodePtr(new ConcatNode(std::move(children))), ctx.types));
        break;
      }
      case CompoundPart::Op::kIntersect:
        combined.root = ExecNodePtr(
            new SetOpNode(SetOpNode::Op::kIntersect,
                          std::move(combined.root), std::move(next.root),
                          ctx.types));
        break;
      case CompoundPart::Op::kExcept:
        combined.root = ExecNodePtr(
            new SetOpNode(SetOpNode::Op::kExcept,
                          std::move(combined.root), std::move(next.root),
                          ctx.types));
        break;
    }
  }

  // ORDER BY over the combined output: positions or output names only.
  std::vector<SortNode::Key> sort_keys;
  for (const OrderItem& item : select.order_by) {
    SortNode::Key key;
    key.descending = item.descending;
    const Expr& e = *item.expr;
    int idx = -1;
    if (e.kind == ExprKind::kLiteral &&
        e.literal_kind == LiteralKind::kInt) {
      if (e.int_value < 1 ||
          e.int_value > static_cast<int64_t>(
                            combined.column_names.size())) {
        return Status::InvalidArgument("ORDER BY position out of range");
      }
      idx = static_cast<int>(e.int_value - 1);
    } else if (e.kind == ExprKind::kColumnRef && e.qualifier.empty()) {
      for (size_t i = 0; i < combined.column_names.size(); ++i) {
        if (EqualsIgnoreCase(combined.column_names[i], e.text)) {
          idx = static_cast<int>(i);
          break;
        }
      }
    }
    if (idx < 0) {
      return Status::InvalidArgument(
          "compound selects support ORDER BY only on output positions "
          "or names");
    }
    key.expr = BoundExprPtr(new BoundColumn(
        combined.column_types[static_cast<size_t>(idx)], 0,
        static_cast<size_t>(idx)));
    sort_keys.push_back(std::move(key));
  }
  if (!sort_keys.empty()) {
    combined.root = ExecNodePtr(new SortNode(std::move(combined.root),
                                             std::move(sort_keys),
                                             ctx.types));
  }
  if (select.limit.has_value() || select.offset.has_value()) {
    combined.root = ExecNodePtr(new LimitNode(std::move(combined.root),
                                              select.limit,
                                              select.offset.value_or(0)));
  }
  return combined;
}

}  // namespace

Result<PlannedSelect> PlanSelect(const SelectStmt& select,
                                 const PlannerContext& ctx,
                                 const Scope* outer) {
  if (!select.compounds.empty()) return PlanCompound(select, ctx, outer);
  SelectPlanner planner(select, ctx, outer);
  return planner.Plan();
}

Result<BoundExprPtr> BindScalar(const Expr& expr, const PlannerContext& ctx,
                                const Scope* scope) {
  static const Scope kEmptyScope;
  ExprBinder binder(ctx, scope != nullptr ? scope : &kEmptyScope);
  return binder.Bind(expr);
}

Result<BoundExprPtr> CoerceTo(BoundExprPtr expr, TypeId target,
                              const PlannerContext& ctx) {
  return CoerceToImpl(std::move(expr), target, ctx);
}

}  // namespace tip::engine
