#include "engine/exec/exec_node.h"

#include <algorithm>

#include "engine/exec/row_utils.h"

namespace tip::engine {

using exec_util::DatumsEqual;
using exec_util::HashDatums;
using exec_util::PredicatePasses;

void ExecNode::Explain(int depth, std::string* out) const {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  out->append(DebugName());
  out->push_back('\n');
}

Result<const Row*> ExecNode::NextBorrowed(ExecState& state) {
  TIP_ASSIGN_OR_RETURN(bool has_row, Next(state, &borrow_buf_));
  return has_row ? &borrow_buf_ : nullptr;
}

// -- SingleRowNode -----------------------------------------------------------

Status SingleRowNode::Open(ExecState&) {
  done_ = false;
  return Status::OK();
}

Result<bool> SingleRowNode::Next(ExecState&, Row* out) {
  if (done_) return false;
  done_ = true;
  out->clear();
  return true;
}

// -- SeqScanNode -------------------------------------------------------------

Status SeqScanNode::Open(ExecState&) {
  cursor_ = table_->heap().Scan();
  return Status::OK();
}

Result<bool> SeqScanNode::Next(ExecState& state, Row* out) {
  TIP_ASSIGN_OR_RETURN(const Row* row, NextBorrowed(state));
  if (row == nullptr) return false;
  *out = *row;
  return true;
}

Result<const Row*> SeqScanNode::NextBorrowed(ExecState&) {
  RowId id;
  const Row* row;
  if (!cursor_.Next(&id, &row)) return nullptr;
  return row;
}

// -- IntervalScanNode --------------------------------------------------------

Status IntervalScanNode::Open(ExecState& state) {
  matches_.clear();
  next_ = 0;
  TupleCtx tuple;
  tuple.outer = state.outer;
  Result<Datum> probe = probe_->Eval(tuple, *state.eval);
  if (!probe.ok()) return probe.status();
  if (probe->is_null()) return Status::OK();  // no matches
  Result<IntervalKey> key = probe_key_fn_(*probe, state.eval->tx);
  if (!key.ok()) return key.status();
  if (key->empty) return Status::OK();
  TIP_ASSIGN_OR_RETURN(IntervalIndexView index,
                       table_->GetIntervalIndex(column_, state.eval->tx));
  index.FindOverlapping(key->start, key->end, &matches_);
  return Status::OK();
}

Result<bool> IntervalScanNode::Next(ExecState& state, Row* out) {
  TIP_ASSIGN_OR_RETURN(const Row* row, NextBorrowed(state));
  if (row == nullptr) return false;
  *out = *row;
  return true;
}

Result<const Row*> IntervalScanNode::NextBorrowed(ExecState&) {
  while (next_ < matches_.size()) {
    const Row* row = table_->heap().Get(matches_[next_++]);
    if (row != nullptr) return row;
  }
  return nullptr;
}

void IntervalScanNode::Explain(int depth, std::string* out) const {
  ExecNode::Explain(depth, out);
  std::optional<IndexStatsSnapshot> stats =
      table_->IntervalIndexStats(column_);
  if (stats.has_value()) {
    out->append(static_cast<size_t>(depth + 1) * 2, ' ');
    out->append("IndexStats(" + stats->ToString() + ")\n");
  }
}

// -- FilterNode --------------------------------------------------------------

Status FilterNode::Open(ExecState& state) { return child_->Open(state); }

Result<bool> FilterNode::Next(ExecState& state, Row* out) {
  TIP_ASSIGN_OR_RETURN(const Row* row, NextBorrowed(state));
  if (row == nullptr) return false;
  *out = *row;
  return true;
}

Result<const Row*> FilterNode::NextBorrowed(ExecState& state) {
  for (;;) {
    TIP_RETURN_IF_ERROR(state.eval->CheckGuard());
    TIP_ASSIGN_OR_RETURN(const Row* row, child_->NextBorrowed(state));
    if (row == nullptr) return nullptr;
    TupleCtx tuple{row, state.outer};
    TIP_ASSIGN_OR_RETURN(bool pass,
                         PredicatePasses(*predicate_, tuple, *state.eval));
    if (pass) return row;
  }
}

void FilterNode::Explain(int depth, std::string* out) const {
  ExecNode::Explain(depth, out);
  child_->Explain(depth + 1, out);
}

// -- ProjectNode -------------------------------------------------------------

Status ProjectNode::Open(ExecState& state) { return child_->Open(state); }

Result<bool> ProjectNode::Next(ExecState& state, Row* out) {
  TIP_ASSIGN_OR_RETURN(const Row* input, child_->NextBorrowed(state));
  if (input == nullptr) return false;
  TupleCtx tuple{input, state.outer};
  out->clear();
  out->reserve(exprs_.size());
  for (const BoundExprPtr& expr : exprs_) {
    TIP_ASSIGN_OR_RETURN(Datum v, expr->Eval(tuple, *state.eval));
    out->push_back(std::move(v));
  }
  return true;
}

void ProjectNode::Explain(int depth, std::string* out) const {
  ExecNode::Explain(depth, out);
  child_->Explain(depth + 1, out);
}

// -- PrefixNode --------------------------------------------------------------

Status PrefixNode::Open(ExecState& state) { return child_->Open(state); }

Result<bool> PrefixNode::Next(ExecState& state, Row* out) {
  TIP_ASSIGN_OR_RETURN(bool has_row, child_->Next(state, out));
  if (!has_row) return false;
  out->resize(arity_);
  return true;
}

void PrefixNode::Explain(int depth, std::string* out) const {
  ExecNode::Explain(depth, out);
  child_->Explain(depth + 1, out);
}

// -- NestedLoopJoinNode ------------------------------------------------------

Status NestedLoopJoinNode::Open(ExecState& state) {
  TIP_RETURN_IF_ERROR(outer_->Open(state));
  outer_valid_ = false;
  return Status::OK();
}

Result<bool> NestedLoopJoinNode::Next(ExecState& state, Row* out) {
  for (;;) {
    TIP_RETURN_IF_ERROR(state.eval->CheckGuard());
    if (!outer_valid_) {
      TIP_ASSIGN_OR_RETURN(bool has_row, outer_->Next(state, &outer_row_));
      if (!has_row) return false;
      outer_valid_ = true;
      TIP_RETURN_IF_ERROR(inner_->Open(state));
    }
    TIP_ASSIGN_OR_RETURN(const Row* inner_row,
                         inner_->NextBorrowed(state));
    if (inner_row == nullptr) {
      outer_valid_ = false;
      continue;
    }
    out->clear();
    out->reserve(outer_row_.size() + inner_row->size());
    out->insert(out->end(), outer_row_.begin(), outer_row_.end());
    out->insert(out->end(), inner_row->begin(), inner_row->end());
    if (predicate_ != nullptr) {
      TupleCtx tuple{out, state.outer};
      TIP_ASSIGN_OR_RETURN(bool pass,
                           PredicatePasses(*predicate_, tuple, *state.eval));
      if (!pass) continue;
    }
    return true;
  }
}

void NestedLoopJoinNode::Explain(int depth, std::string* out) const {
  ExecNode::Explain(depth, out);
  outer_->Explain(depth + 1, out);
  inner_->Explain(depth + 1, out);
}

// -- HashJoinNode ------------------------------------------------------------

Status HashJoinNode::Open(ExecState& state) {
  build_rows_.clear();
  build_index_.clear();
  probe_valid_ = false;
  current_matches_.clear();
  next_match_ = 0;

  TIP_RETURN_IF_ERROR(right_->Open(state));
  Row row;
  for (;;) {
    TIP_RETURN_IF_ERROR(state.eval->CheckGuard());
    Result<bool> has_row = right_->Next(state, &row);
    if (!has_row.ok()) return has_row.status();
    if (!*has_row) break;
    TupleCtx tuple{&row, state.outer};
    std::vector<Datum> keys;
    keys.reserve(right_keys_.size());
    bool null_key = false;
    for (const BoundExprPtr& key : right_keys_) {
      Result<Datum> v = key->Eval(tuple, *state.eval);
      if (!v.ok()) return v.status();
      if (v->is_null()) {
        null_key = true;
        break;
      }
      keys.push_back(std::move(*v));
    }
    if (null_key) continue;  // NULL never joins
    Result<uint64_t> h = HashDatums(keys, *types_, state.eval->tx);
    if (!h.ok()) return h.status();
    TIP_RETURN_IF_ERROR(
        state.eval->ReserveMemory(exec_util::ApproxRowBytes(row)));
    build_index_.emplace(*h, build_rows_.size());
    build_rows_.push_back(std::move(row));
  }
  return left_->Open(state);
}

Result<bool> HashJoinNode::KeysEqual(const Row& left_row,
                                     const Row& right_row,
                                     ExecState& state) const {
  TupleCtx left_tuple{&left_row, state.outer};
  TupleCtx right_tuple{&right_row, state.outer};
  for (size_t i = 0; i < left_keys_.size(); ++i) {
    TIP_ASSIGN_OR_RETURN(Datum lv, left_keys_[i]->Eval(left_tuple,
                                                       *state.eval));
    TIP_ASSIGN_OR_RETURN(Datum rv, right_keys_[i]->Eval(right_tuple,
                                                        *state.eval));
    if (lv.is_null() || rv.is_null()) return false;
    TIP_ASSIGN_OR_RETURN(int c, types_->Compare(lv, rv, state.eval->tx));
    if (c != 0) return false;
  }
  return true;
}

Result<bool> HashJoinNode::Next(ExecState& state, Row* out) {
  for (;;) {
    TIP_RETURN_IF_ERROR(state.eval->CheckGuard());
    if (!probe_valid_) {
      TIP_ASSIGN_OR_RETURN(bool has_row, left_->Next(state, &probe_row_));
      if (!has_row) return false;
      probe_valid_ = true;
      current_matches_.clear();
      next_match_ = 0;

      TupleCtx tuple{&probe_row_, state.outer};
      std::vector<Datum> keys;
      keys.reserve(left_keys_.size());
      bool null_key = false;
      for (const BoundExprPtr& key : left_keys_) {
        TIP_ASSIGN_OR_RETURN(Datum v, key->Eval(tuple, *state.eval));
        if (v.is_null()) {
          null_key = true;
          break;
        }
        keys.push_back(std::move(v));
      }
      if (!null_key) {
        TIP_ASSIGN_OR_RETURN(uint64_t h,
                             HashDatums(keys, *types_, state.eval->tx));
        auto [begin, end] = build_index_.equal_range(h);
        for (auto it = begin; it != end; ++it) {
          current_matches_.push_back(it->second);
        }
      }
    }
    while (next_match_ < current_matches_.size()) {
      const Row& build_row = build_rows_[current_matches_[next_match_++]];
      TIP_ASSIGN_OR_RETURN(bool equal,
                           KeysEqual(probe_row_, build_row, state));
      if (!equal) continue;
      out->clear();
      out->reserve(probe_row_.size() + build_row.size());
      out->insert(out->end(), probe_row_.begin(), probe_row_.end());
      out->insert(out->end(), build_row.begin(), build_row.end());
      if (residual_ != nullptr) {
        TupleCtx tuple{out, state.outer};
        TIP_ASSIGN_OR_RETURN(bool pass,
                             PredicatePasses(*residual_, tuple,
                                             *state.eval));
        if (!pass) continue;
      }
      return true;
    }
    probe_valid_ = false;
  }
}

void HashJoinNode::Explain(int depth, std::string* out) const {
  ExecNode::Explain(depth, out);
  left_->Explain(depth + 1, out);
  right_->Explain(depth + 1, out);
}

// -- IntervalJoinNode --------------------------------------------------------

Status IntervalJoinNode::Open(ExecState& state) {
  TIP_RETURN_IF_ERROR(left_->Open(state));
  left_row_ = nullptr;
  matches_.clear();
  next_match_ = 0;
  Result<IntervalIndexView> index =
      right_table_->GetIntervalIndex(right_column_, state.eval->tx);
  if (!index.ok()) return index.status();
  index_ = std::move(*index);
  return Status::OK();
}

Result<bool> IntervalJoinNode::Next(ExecState& state, Row* out) {
  for (;;) {
    TIP_RETURN_IF_ERROR(state.eval->CheckGuard());
    if (left_row_ == nullptr) {
      // The borrowed left row stays valid while we drain its matches:
      // the contract only invalidates it at the next call into left_.
      TIP_ASSIGN_OR_RETURN(left_row_, left_->NextBorrowed(state));
      if (left_row_ == nullptr) return false;
      matches_.clear();
      next_match_ = 0;
      TupleCtx tuple{left_row_, state.outer};
      TIP_ASSIGN_OR_RETURN(Datum probe,
                           left_probe_->Eval(tuple, *state.eval));
      if (!probe.is_null()) {
        TIP_ASSIGN_OR_RETURN(IntervalKey key,
                             probe_key_fn_(probe, state.eval->tx));
        if (!key.empty) {
          index_.FindOverlapping(key.start, key.end, &matches_);
        }
      }
    }
    while (next_match_ < matches_.size()) {
      const Row* right_row = right_table_->heap().Get(matches_[next_match_++]);
      if (right_row == nullptr) continue;
      out->clear();
      out->reserve(left_row_->size() + right_row->size());
      out->insert(out->end(), left_row_->begin(), left_row_->end());
      out->insert(out->end(), right_row->begin(), right_row->end());
      if (residual_ != nullptr) {
        TupleCtx tuple{out, state.outer};
        TIP_ASSIGN_OR_RETURN(bool pass,
                             PredicatePasses(*residual_, tuple,
                                             *state.eval));
        if (!pass) continue;
      }
      return true;
    }
    left_row_ = nullptr;
  }
}

void IntervalJoinNode::Explain(int depth, std::string* out) const {
  ExecNode::Explain(depth, out);
  left_->Explain(depth + 1, out);
  out->append(static_cast<size_t>(depth + 1) * 2, ' ');
  out->append("IndexProbe(" + right_table_->name() + ")\n");
  std::optional<IndexStatsSnapshot> stats =
      right_table_->IntervalIndexStats(right_column_);
  if (stats.has_value()) {
    out->append(static_cast<size_t>(depth + 1) * 2, ' ');
    out->append("IndexStats(" + stats->ToString() + ")\n");
  }
}

// -- SortNode ----------------------------------------------------------------

Status SortNode::Open(ExecState& state) {
  rows_.clear();
  next_ = 0;
  TIP_RETURN_IF_ERROR(child_->Open(state));
  Row row;
  for (;;) {
    TIP_RETURN_IF_ERROR(state.eval->CheckGuard());
    Result<bool> has_row = child_->Next(state, &row);
    if (!has_row.ok()) return has_row.status();
    if (!*has_row) break;
    TIP_RETURN_IF_ERROR(
        state.eval->ReserveMemory(exec_util::ApproxRowBytes(row)));
    rows_.push_back(std::move(row));
  }

  // Precompute sort keys so comparison failures surface before sorting.
  std::vector<std::vector<Datum>> keys(rows_.size());
  for (size_t i = 0; i < rows_.size(); ++i) {
    TupleCtx tuple{&rows_[i], state.outer};
    keys[i].reserve(keys_.size());
    for (const Key& key : keys_) {
      Result<Datum> v = key.expr->Eval(tuple, *state.eval);
      if (!v.ok()) return v.status();
      keys[i].push_back(std::move(*v));
    }
  }
  std::vector<size_t> order(rows_.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  Status sort_status;  // std::sort comparators cannot propagate errors
  const TxContext tx = state.eval->tx;
  std::stable_sort(order.begin(), order.end(),
                   [&](size_t a, size_t b) {
                     if (!sort_status.ok()) return false;
                     for (size_t k = 0; k < keys_.size(); ++k) {
                       const Datum& va = keys[a][k];
                       const Datum& vb = keys[b][k];
                       const bool na = va.is_null(), nb = vb.is_null();
                       if (na || nb) {
                         if (na == nb) continue;
                         return nb;  // NULLs last
                       }
                       Result<int> c = types_->Compare(va, vb, tx);
                       if (!c.ok()) {
                         sort_status = c.status();
                         return false;
                       }
                       if (*c != 0) {
                         return keys_[k].descending ? *c > 0 : *c < 0;
                       }
                     }
                     return false;
                   });
  TIP_RETURN_IF_ERROR(sort_status);

  std::vector<Row> sorted;
  sorted.reserve(rows_.size());
  for (size_t i : order) sorted.push_back(std::move(rows_[i]));
  rows_ = std::move(sorted);
  return Status::OK();
}

Result<bool> SortNode::Next(ExecState&, Row* out) {
  if (next_ >= rows_.size()) return false;
  *out = rows_[next_++];
  return true;
}

void SortNode::Explain(int depth, std::string* out) const {
  ExecNode::Explain(depth, out);
  child_->Explain(depth + 1, out);
}

// -- AggregateNode -----------------------------------------------------------

Result<AggregateNode::Group*> AggregateNode::FindOrCreateGroup(
    const std::vector<Datum>& keys, ExecState& state) {
  TIP_ASSIGN_OR_RETURN(uint64_t h,
                       HashDatums(keys, *types_, state.eval->tx));
  auto [begin, end] = group_index_.equal_range(h);
  for (auto it = begin; it != end; ++it) {
    TIP_ASSIGN_OR_RETURN(
        bool equal,
        DatumsEqual(groups_[it->second].keys, keys, *types_,
                    state.eval->tx));
    if (equal) return &groups_[it->second];
  }
  // Each group buffers its keys plus one aggregate state apiece.
  TIP_RETURN_IF_ERROR(state.eval->ReserveMemory(
      exec_util::ApproxRowBytes(keys) + aggregates_.size() * 64));
  Group group;
  group.keys = keys;
  group.states.reserve(aggregates_.size());
  for (const AggregateSpec& spec : aggregates_) {
    group.states.push_back(spec.agg.def->make_state());
  }
  group_index_.emplace(h, groups_.size());
  groups_.push_back(std::move(group));
  return &groups_.back();
}

Status AggregateNode::Open(ExecState& state) {
  groups_.clear();
  group_index_.clear();
  results_.clear();
  next_ = 0;

  TIP_RETURN_IF_ERROR(child_->Open(state));
  for (;;) {
    TIP_RETURN_IF_ERROR(state.eval->CheckGuard());
    Result<const Row*> row = child_->NextBorrowed(state);
    if (!row.ok()) return row.status();
    if (*row == nullptr) break;
    TupleCtx tuple{*row, state.outer};

    std::vector<Datum> keys;
    keys.reserve(group_exprs_.size());
    for (const BoundExprPtr& expr : group_exprs_) {
      Result<Datum> v = expr->Eval(tuple, *state.eval);
      if (!v.ok()) return v.status();
      keys.push_back(std::move(*v));
    }
    Result<Group*> group = FindOrCreateGroup(keys, state);
    if (!group.ok()) return group.status();

    for (size_t i = 0; i < aggregates_.size(); ++i) {
      const AggregateSpec& spec = aggregates_[i];
      Datum value = Datum::Int(1);  // COUNT(*) counts rows
      if (spec.arg != nullptr) {
        Result<Datum> v = spec.arg->Eval(tuple, *state.eval);
        if (!v.ok()) return v.status();
        value = std::move(*v);
        if (value.is_null() && spec.agg.def->strict) continue;
        if (spec.agg.arg_cast != nullptr && !value.is_null()) {
          Result<Datum> cast_value =
              spec.agg.arg_cast->fn(value, *state.eval);
          if (!cast_value.ok()) return cast_value.status();
          value = std::move(*cast_value);
        }
      }
      TIP_RETURN_IF_ERROR((*group)->states[i]->Step(value, *state.eval));
    }
  }

  // Global aggregates produce one row even with no input.
  if (group_exprs_.empty() && groups_.empty()) {
    Group group;
    for (const AggregateSpec& spec : aggregates_) {
      group.states.push_back(spec.agg.def->make_state());
    }
    groups_.push_back(std::move(group));
  }

  results_.reserve(groups_.size());
  for (Group& group : groups_) {
    Row out;
    out.reserve(group.keys.size() + aggregates_.size());
    for (Datum& key : group.keys) out.push_back(std::move(key));
    for (size_t i = 0; i < aggregates_.size(); ++i) {
      Result<Datum> v = group.states[i]->Final(*state.eval);
      if (!v.ok()) return v.status();
      out.push_back(std::move(*v));
    }
    results_.push_back(std::move(out));
  }
  return Status::OK();
}

Result<bool> AggregateNode::Next(ExecState&, Row* out) {
  if (next_ >= results_.size()) return false;
  *out = results_[next_++];
  return true;
}

void AggregateNode::Explain(int depth, std::string* out) const {
  ExecNode::Explain(depth, out);
  child_->Explain(depth + 1, out);
}

// -- DistinctNode ------------------------------------------------------------

Status DistinctNode::Open(ExecState& state) {
  seen_rows_.clear();
  seen_index_.clear();
  return child_->Open(state);
}

Result<bool> DistinctNode::Next(ExecState& state, Row* out) {
  for (;;) {
    TIP_RETURN_IF_ERROR(state.eval->CheckGuard());
    TIP_ASSIGN_OR_RETURN(const Row* row, child_->NextBorrowed(state));
    if (row == nullptr) return false;
    TIP_ASSIGN_OR_RETURN(uint64_t h,
                         HashDatums(*row, *types_, state.eval->tx));
    bool duplicate = false;
    auto [begin, end] = seen_index_.equal_range(h);
    for (auto it = begin; it != end; ++it) {
      TIP_ASSIGN_OR_RETURN(bool equal,
                           DatumsEqual(seen_rows_[it->second], *row,
                                       *types_, state.eval->tx));
      if (equal) {
        duplicate = true;
        break;
      }
    }
    if (duplicate) continue;
    TIP_RETURN_IF_ERROR(
        state.eval->ReserveMemory(exec_util::ApproxRowBytes(*row)));
    seen_index_.emplace(h, seen_rows_.size());
    seen_rows_.push_back(*row);
    *out = *row;
    return true;
  }
}

void DistinctNode::Explain(int depth, std::string* out) const {
  ExecNode::Explain(depth, out);
  child_->Explain(depth + 1, out);
}

// -- ConcatNode --------------------------------------------------------------

Status ConcatNode::Open(ExecState& state) {
  current_ = 0;
  for (const ExecNodePtr& child : children_) {
    TIP_RETURN_IF_ERROR(child->Open(state));
  }
  return Status::OK();
}

Result<bool> ConcatNode::Next(ExecState& state, Row* out) {
  while (current_ < children_.size()) {
    TIP_ASSIGN_OR_RETURN(bool has_row,
                         children_[current_]->Next(state, out));
    if (has_row) return true;
    ++current_;
  }
  return false;
}

void ConcatNode::Explain(int depth, std::string* out) const {
  ExecNode::Explain(depth, out);
  for (const ExecNodePtr& child : children_) {
    child->Explain(depth + 1, out);
  }
}

// -- SetOpNode ---------------------------------------------------------------

Status SetOpNode::Open(ExecState& state) {
  right_rows_.clear();
  right_index_.clear();
  emitted_rows_.clear();
  emitted_index_.clear();
  TIP_RETURN_IF_ERROR(right_->Open(state));
  Row row;
  for (;;) {
    TIP_RETURN_IF_ERROR(state.eval->CheckGuard());
    Result<bool> has_row = right_->Next(state, &row);
    if (!has_row.ok()) return has_row.status();
    if (!*has_row) break;
    Result<uint64_t> h = HashDatums(row, *types_, state.eval->tx);
    if (!h.ok()) return h.status();
    TIP_RETURN_IF_ERROR(
        state.eval->ReserveMemory(exec_util::ApproxRowBytes(row)));
    right_index_.emplace(*h, right_rows_.size());
    right_rows_.push_back(std::move(row));
  }
  return left_->Open(state);
}

Result<bool> SetOpNode::Contains(const Row& row, uint64_t hash,
                                 ExecState& state) const {
  auto [begin, end] = right_index_.equal_range(hash);
  for (auto it = begin; it != end; ++it) {
    TIP_ASSIGN_OR_RETURN(bool equal,
                         DatumsEqual(right_rows_[it->second], row,
                                     *types_, state.eval->tx));
    if (equal) return true;
  }
  return false;
}

Result<bool> SetOpNode::Next(ExecState& state, Row* out) {
  for (;;) {
    TIP_RETURN_IF_ERROR(state.eval->CheckGuard());
    TIP_ASSIGN_OR_RETURN(bool has_row, left_->Next(state, out));
    if (!has_row) return false;
    TIP_ASSIGN_OR_RETURN(uint64_t h,
                         HashDatums(*out, *types_, state.eval->tx));
    // Distinct-set semantics: suppress duplicates of already-emitted
    // rows.
    bool seen = false;
    auto [begin, end] = emitted_index_.equal_range(h);
    for (auto it = begin; it != end; ++it) {
      TIP_ASSIGN_OR_RETURN(bool equal,
                           DatumsEqual(emitted_rows_[it->second], *out,
                                       *types_, state.eval->tx));
      if (equal) {
        seen = true;
        break;
      }
    }
    if (seen) continue;
    TIP_ASSIGN_OR_RETURN(bool in_right, Contains(*out, h, state));
    if (in_right != (op_ == Op::kIntersect)) continue;
    TIP_RETURN_IF_ERROR(
        state.eval->ReserveMemory(exec_util::ApproxRowBytes(*out)));
    emitted_index_.emplace(h, emitted_rows_.size());
    emitted_rows_.push_back(*out);
    return true;
  }
}

void SetOpNode::Explain(int depth, std::string* out) const {
  ExecNode::Explain(depth, out);
  left_->Explain(depth + 1, out);
  right_->Explain(depth + 1, out);
}

// -- LimitNode ---------------------------------------------------------------

Status LimitNode::Open(ExecState& state) {
  skipped_ = 0;
  returned_ = 0;
  return child_->Open(state);
}

Result<bool> LimitNode::Next(ExecState& state, Row* out) {
  if (limit_.has_value() && returned_ >= *limit_) return false;
  for (;;) {
    TIP_ASSIGN_OR_RETURN(bool has_row, child_->Next(state, out));
    if (!has_row) return false;
    if (skipped_ < offset_) {
      ++skipped_;
      continue;
    }
    ++returned_;
    return true;
  }
}

void LimitNode::Explain(int depth, std::string* out) const {
  ExecNode::Explain(depth, out);
  child_->Explain(depth + 1, out);
}

}  // namespace tip::engine
