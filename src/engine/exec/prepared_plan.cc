#include "engine/exec/prepared_plan.h"

#include <algorithm>

namespace tip::engine {

std::shared_ptr<PreparedPlan::Variant> PreparedPlan::FindVariant(
    uint64_t catalog_version, const std::string& settings_fingerprint,
    const std::string& param_signature, PlanCacheStats* stats) const {
  std::lock_guard<std::mutex> lock(mu_);
  // Prune variants planned under an older catalog: their raw catalog
  // pointers may dangle, and the monotonic version means they can never
  // match again.
  size_t kept = 0;
  for (size_t i = 0; i < variants_.size(); ++i) {
    if (variants_[i]->catalog_version == catalog_version) {
      if (kept != i) variants_[kept] = std::move(variants_[i]);
      ++kept;
    } else if (stats != nullptr) {
      stats->invalidations.fetch_add(1, std::memory_order_relaxed);
    }
  }
  variants_.resize(kept);
  for (size_t i = 0; i < variants_.size(); ++i) {
    if (variants_[i]->settings_fingerprint == settings_fingerprint &&
        variants_[i]->param_signature == param_signature) {
      std::shared_ptr<Variant> found = variants_[i];
      // Move to the back: most recently used.
      variants_.erase(variants_.begin() + static_cast<ptrdiff_t>(i));
      variants_.push_back(found);
      return found;
    }
  }
  return nullptr;
}

void PreparedPlan::AddVariant(std::shared_ptr<Variant> variant,
                              PlanCacheStats* stats) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (variants_.size() >= kMaxVariants) {
    variants_.erase(variants_.begin());
    if (stats != nullptr) {
      stats->evictions.fetch_add(1, std::memory_order_relaxed);
    }
  }
  variants_.push_back(std::move(variant));
}

std::string ParamSignature(
    const std::map<std::string, Datum, std::less<>>* params) {
  if (params == nullptr) return std::string();
  std::string sig;
  for (const auto& [name, value] : *params) {
    sig += name;
    sig += ':';
    sig += std::to_string(static_cast<int>(value.type_id()));
    sig += ';';
  }
  return sig;
}

std::shared_ptr<PreparedPlan> PlanCache::Lookup(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) return nullptr;
  // Refresh LRU position.
  lru_.splice(lru_.end(), lru_, it->second);
  return it->second->second;
}

void PlanCache::Insert(const std::string& key,
                       std::shared_ptr<PreparedPlan> plan,
                       PlanCacheStats* stats) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    // A concurrent Prepare won the race; keep the incumbent (handles
    // already sharing it stay coherent) and refresh its position.
    lru_.splice(lru_.end(), lru_, it->second);
    return;
  }
  lru_.emplace_back(key, std::move(plan));
  index_[key] = std::prev(lru_.end());
  EvictToCapacityLocked(stats);
}

void PlanCache::SetCapacity(size_t capacity, PlanCacheStats* stats) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = std::max<size_t>(1, capacity);
  EvictToCapacityLocked(stats);
}

size_t PlanCache::capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_;
}

size_t PlanCache::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

void PlanCache::EvictToCapacityLocked(PlanCacheStats* stats) {
  while (lru_.size() > capacity_) {
    index_.erase(lru_.front().first);
    lru_.pop_front();
    if (stats != nullptr) {
      stats->evictions.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

}  // namespace tip::engine
