#include "engine/exec/bound_expr.h"

#include <cassert>

#include "engine/exec/exec_node.h"

namespace tip::engine {

Result<Datum> BoundColumn::Eval(const TupleCtx& tuple, EvalContext&) const {
  const TupleCtx* scope = &tuple;
  for (size_t i = 0; i < depth_; ++i) {
    if (scope->outer == nullptr) {
      return Status::Internal("correlated column reference escapes scope");
    }
    scope = scope->outer;
  }
  if (scope->row == nullptr || index_ >= scope->row->size()) {
    return Status::Internal("column index out of range");
  }
  return (*scope->row)[index_];
}

Result<Datum> BoundRoutineCall::Eval(const TupleCtx& tuple,
                                     EvalContext& ctx) const {
  std::vector<Datum> values;
  values.reserve(args_.size());
  for (const BoundExprPtr& arg : args_) {
    TIP_ASSIGN_OR_RETURN(Datum v, arg->Eval(tuple, ctx));
    if (v.is_null() && routine_->strict) {
      return Datum::NullOf(routine_->result);
    }
    values.push_back(std::move(v));
  }
  return routine_->fn(values, ctx);
}

Result<Datum> BoundCast::Eval(const TupleCtx& tuple, EvalContext& ctx) const {
  TIP_ASSIGN_OR_RETURN(Datum v, operand_->Eval(tuple, ctx));
  if (v.is_null()) return Datum::NullOf(cast_->to);
  return cast_->fn(v, ctx);
}

Result<Datum> BoundCompare::Eval(const TupleCtx& tuple,
                                 EvalContext& ctx) const {
  TIP_ASSIGN_OR_RETURN(Datum lhs, lhs_->Eval(tuple, ctx));
  TIP_ASSIGN_OR_RETURN(Datum rhs, rhs_->Eval(tuple, ctx));
  if (lhs.is_null() || rhs.is_null()) return Datum::NullOf(TypeId::kBool);
  TIP_ASSIGN_OR_RETURN(int c, types_->Compare(lhs, rhs, ctx.tx));
  bool result = false;
  switch (op_) {
    case Op::kEq:
      result = c == 0;
      break;
    case Op::kNe:
      result = c != 0;
      break;
    case Op::kLt:
      result = c < 0;
      break;
    case Op::kLe:
      result = c <= 0;
      break;
    case Op::kGt:
      result = c > 0;
      break;
    case Op::kGe:
      result = c >= 0;
      break;
  }
  return Datum::Bool(result);
}

Result<Datum> BoundLogical::Eval(const TupleCtx& tuple,
                                 EvalContext& ctx) const {
  // Kleene three-valued logic with short-circuiting where the answer is
  // already determined.
  TIP_ASSIGN_OR_RETURN(Datum lhs, lhs_->Eval(tuple, ctx));
  if (op_ == Op::kAnd) {
    if (!lhs.is_null() && !lhs.bool_value()) return Datum::Bool(false);
    TIP_ASSIGN_OR_RETURN(Datum rhs, rhs_->Eval(tuple, ctx));
    if (!rhs.is_null() && !rhs.bool_value()) return Datum::Bool(false);
    if (lhs.is_null() || rhs.is_null()) return Datum::NullOf(TypeId::kBool);
    return Datum::Bool(true);
  }
  if (!lhs.is_null() && lhs.bool_value()) return Datum::Bool(true);
  TIP_ASSIGN_OR_RETURN(Datum rhs, rhs_->Eval(tuple, ctx));
  if (!rhs.is_null() && rhs.bool_value()) return Datum::Bool(true);
  if (lhs.is_null() || rhs.is_null()) return Datum::NullOf(TypeId::kBool);
  return Datum::Bool(false);
}

Result<Datum> BoundNot::Eval(const TupleCtx& tuple, EvalContext& ctx) const {
  TIP_ASSIGN_OR_RETURN(Datum v, operand_->Eval(tuple, ctx));
  if (v.is_null()) return Datum::NullOf(TypeId::kBool);
  return Datum::Bool(!v.bool_value());
}

Result<Datum> BoundIsNull::Eval(const TupleCtx& tuple,
                                EvalContext& ctx) const {
  TIP_ASSIGN_OR_RETURN(Datum v, operand_->Eval(tuple, ctx));
  return Datum::Bool(v.is_null() != negated_);
}

Result<Datum> BoundCase::Eval(const TupleCtx& tuple, EvalContext& ctx) const {
  assert(whens_.size() == thens_.size());
  for (size_t i = 0; i < whens_.size(); ++i) {
    TIP_ASSIGN_OR_RETURN(Datum cond, whens_[i]->Eval(tuple, ctx));
    if (!cond.is_null() && cond.bool_value()) {
      return thens_[i]->Eval(tuple, ctx);
    }
  }
  if (else_ != nullptr) return else_->Eval(tuple, ctx);
  return Datum::NullOf(type());
}

BoundExists::BoundExists(std::unique_ptr<ExecNode> subplan, bool negated)
    : BoundExpr(TypeId::kBool),
      subplan_(std::move(subplan)),
      negated_(negated) {}

BoundExists::~BoundExists() = default;

Result<Datum> BoundExists::Eval(const TupleCtx& tuple,
                                EvalContext& ctx) const {
  ExecState state;
  state.eval = &ctx;
  state.outer = &tuple;  // the subplan's depth-1 scope is this tuple
  TIP_RETURN_IF_ERROR(subplan_->Open(state));
  Row row;
  TIP_ASSIGN_OR_RETURN(bool has_row, subplan_->Next(state, &row));
  return Datum::Bool(has_row != negated_);
}

BoundScalarSubquery::BoundScalarSubquery(TypeId type,
                                         std::unique_ptr<ExecNode> subplan)
    : BoundExpr(type), subplan_(std::move(subplan)) {}

BoundScalarSubquery::~BoundScalarSubquery() = default;

Result<Datum> BoundScalarSubquery::Eval(const TupleCtx& tuple,
                                        EvalContext& ctx) const {
  ExecState state;
  state.eval = &ctx;
  state.outer = &tuple;
  TIP_RETURN_IF_ERROR(subplan_->Open(state));
  Row row;
  TIP_ASSIGN_OR_RETURN(bool has_row, subplan_->Next(state, &row));
  if (!has_row) return Datum::NullOf(type());
  Datum value = std::move(row[0]);
  Row extra;
  TIP_ASSIGN_OR_RETURN(bool has_more, subplan_->Next(state, &extra));
  if (has_more) {
    return Status::InvalidArgument(
        "scalar subquery produced more than one row");
  }
  return value;
}

BoundInSubquery::BoundInSubquery(BoundExprPtr operand,
                                 std::unique_ptr<ExecNode> subplan,
                                 bool negated, const TypeRegistry* types)
    : BoundExpr(TypeId::kBool),
      operand_(std::move(operand)),
      subplan_(std::move(subplan)),
      negated_(negated),
      types_(types) {}

BoundInSubquery::~BoundInSubquery() = default;

Result<Datum> BoundInSubquery::Eval(const TupleCtx& tuple,
                                    EvalContext& ctx) const {
  TIP_ASSIGN_OR_RETURN(Datum needle, operand_->Eval(tuple, ctx));
  ExecState state;
  state.eval = &ctx;
  state.outer = &tuple;
  TIP_RETURN_IF_ERROR(subplan_->Open(state));
  Row row;
  bool saw_null = false;
  for (;;) {
    TIP_ASSIGN_OR_RETURN(bool has_row, subplan_->Next(state, &row));
    if (!has_row) break;
    if (row[0].is_null()) {
      saw_null = true;
      continue;
    }
    if (needle.is_null()) continue;  // NULL IN (...) is NULL or FALSE
    TIP_ASSIGN_OR_RETURN(int c, types_->Compare(needle, row[0], ctx.tx));
    if (c == 0) return Datum::Bool(!negated_);
  }
  if (needle.is_null() || saw_null) return Datum::NullOf(TypeId::kBool);
  return Datum::Bool(negated_);
}

}  // namespace tip::engine
