#ifndef TIP_ENGINE_EXEC_PARALLEL_EXEC_H_
#define TIP_ENGINE_EXEC_PARALLEL_EXEC_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "engine/catalog/catalog.h"
#include "engine/exec/exec_node.h"

namespace tip::engine {

/// Pages per morsel: 8 pages = up to 2048 rows. Small enough that
/// workers load-balance across skewed filters, large enough that the
/// claim (one atomic add) is noise next to the per-row work.
inline constexpr uint32_t kPagesPerMorsel = 8;

/// What one worker did during one parallel execution.
struct WorkerCounters {
  uint64_t morsels = 0;
  uint64_t rows_in = 0;   // live rows the worker scanned
  uint64_t rows_out = 0;  // rows it passed downstream (post-filter)
};

/// Counters from the most recent parallel run against one table.
/// EXPLAIN plans a fresh tree that is never executed, so the executable
/// nodes publish their per-worker counters here at the end of Open and
/// EXPLAIN reads them back — the same pattern the interval index uses
/// for the IndexStats line.
class ParallelStats {
 public:
  struct Snapshot {
    std::string op;  // DebugName of the node that recorded the run
    uint64_t runs = 0;
    std::vector<WorkerCounters> per_worker;

    std::string ToString() const;
  };

  void RecordRun(const std::string& op,
                 std::vector<WorkerCounters> per_worker);
  std::optional<Snapshot> Latest() const;

 private:
  mutable std::mutex mu_;
  Snapshot last_;
  bool any_ = false;
};

/// Session-owned map of per-table ParallelStats. Entries are never
/// removed, so the planner can hand stable plain pointers to plan nodes.
class ParallelStatsRegistry {
 public:
  ParallelStats* ForTable(const std::string& table);

 private:
  std::mutex mu_;
  std::map<std::string, std::unique_ptr<ParallelStats>> by_table_;
};

/// Morsel-driven parallel scan: Open carves the heap into page-range
/// morsels claimed atomically by the workers, each of which runs the
/// pushed filter over its morsels. Surviving rows are buffered as
/// RowIds in morsel order (so output order matches the serial
/// SeqScan+Filter plan) and handed out borrowed from the heap.
class ParallelScanNode final : public ExecNode {
 public:
  ParallelScanNode(const Table* table, BoundExprPtr predicate,
                   size_t workers, ParallelStats* stats)
      : table_(table),
        predicate_(std::move(predicate)),
        workers_(workers),
        stats_(stats) {}

  Status Open(ExecState& state) override;
  Result<bool> Next(ExecState& state, Row* out) override;
  Result<const Row*> NextBorrowed(ExecState&) override;
  size_t output_arity() const override { return table_->columns().size(); }
  std::string DebugName() const override {
    return "ParallelSeqScan(" + table_->name() + ")";
  }
  void Explain(int depth, std::string* out) const override;

 private:
  const Table* table_;
  BoundExprPtr predicate_;  // may be null (bare scan)
  size_t workers_;
  ParallelStats* stats_;  // may be null

  std::vector<RowId> matches_;
  size_t next_ = 0;
};

/// Fused morsel scan + filter + partial aggregation: every worker runs
/// the whole per-row pipeline over its morsels into a thread-local group
/// table, and the partials are folded together single-threaded via
/// AggregateState::Merge before Final. Only planned when every
/// aggregate's def is `mergeable`. Group output order is
/// merge-dependent (SQL makes no promise without ORDER BY).
class ParallelAggregateNode final : public ExecNode {
 public:
  ParallelAggregateNode(const Table* table, BoundExprPtr predicate,
                        std::vector<BoundExprPtr> group_exprs,
                        std::vector<AggregateSpec> aggregates,
                        const TypeRegistry* types, size_t workers,
                        ParallelStats* stats)
      : table_(table),
        predicate_(std::move(predicate)),
        group_exprs_(std::move(group_exprs)),
        aggregates_(std::move(aggregates)),
        types_(types),
        workers_(workers),
        stats_(stats) {}

  Status Open(ExecState& state) override;
  Result<bool> Next(ExecState& state, Row* out) override;
  size_t output_arity() const override {
    return group_exprs_.size() + aggregates_.size();
  }
  std::string DebugName() const override {
    return "ParallelHashAggregate(" + table_->name() + ")";
  }
  void Explain(int depth, std::string* out) const override;

 private:
  struct Group {
    uint64_t hash = 0;
    std::vector<Datum> keys;
    std::vector<std::unique_ptr<AggregateState>> states;
  };
  /// One worker's private group table plus its run bookkeeping.
  struct LocalAgg {
    std::vector<Group> groups;
    std::unordered_multimap<uint64_t, size_t> index;
    WorkerCounters counters;
    Status status;
  };

  Result<Group*> FindOrCreateGroup(LocalAgg& local, uint64_t hash,
                                   const std::vector<Datum>& keys,
                                   EvalContext& eval);
  Status ScanWorker(LocalAgg& local, MorselSource& source,
                    std::atomic<bool>& failed, const TupleCtx* outer,
                    EvalContext& eval);

  const Table* table_;
  BoundExprPtr predicate_;  // may be null
  std::vector<BoundExprPtr> group_exprs_;
  std::vector<AggregateSpec> aggregates_;
  const TypeRegistry* types_;
  size_t workers_;
  ParallelStats* stats_;  // may be null

  std::vector<Row> results_;
  size_t next_ = 0;
};

/// Morsel-driven interval index join: workers scan left-table morsels,
/// run the pushed left filter, and probe the shared (immutable)
/// IntervalIndexView concurrently; joined rows are buffered per morsel
/// so output order matches the serial IntervalJoinNode over a SeqScan.
class ParallelIntervalJoinNode final : public ExecNode {
 public:
  ParallelIntervalJoinNode(const Table* left_table,
                           BoundExprPtr left_predicate,
                           const Table* right_table, size_t right_column,
                           BoundExprPtr left_probe,
                           IntervalKeyFn probe_key_fn, BoundExprPtr residual,
                           size_t workers, ParallelStats* stats)
      : left_table_(left_table),
        left_predicate_(std::move(left_predicate)),
        right_table_(right_table),
        right_column_(right_column),
        left_probe_(std::move(left_probe)),
        probe_key_fn_(std::move(probe_key_fn)),
        residual_(std::move(residual)),
        workers_(workers),
        stats_(stats) {}

  Status Open(ExecState& state) override;
  Result<bool> Next(ExecState& state, Row* out) override;
  Result<const Row*> NextBorrowed(ExecState&) override;
  size_t output_arity() const override {
    return left_table_->columns().size() + right_table_->columns().size();
  }
  std::string DebugName() const override {
    return "ParallelIntervalIndexJoin(" + right_table_->name() + "." +
           right_table_->columns()[right_column_].name + ")";
  }
  void Explain(int depth, std::string* out) const override;

 private:
  const Table* left_table_;
  BoundExprPtr left_predicate_;  // may be null
  const Table* right_table_;
  size_t right_column_;
  BoundExprPtr left_probe_;
  IntervalKeyFn probe_key_fn_;
  BoundExprPtr residual_;  // may be null
  size_t workers_;
  ParallelStats* stats_;  // may be null

  std::vector<Row> results_;
  size_t next_ = 0;
};

}  // namespace tip::engine

#endif  // TIP_ENGINE_EXEC_PARALLEL_EXEC_H_
