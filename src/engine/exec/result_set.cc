#include "engine/exec/result_set.h"

#include <algorithm>

#include "common/string_util.h"

namespace tip::engine {

int ResultSet::FindColumn(std::string_view name) const {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (EqualsIgnoreCase(columns[i].name, name)) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

std::string ResultSet::ToTable(const TypeRegistry& types) const {
  if (columns.empty()) {
    return message.empty()
               ? StringPrintf("(%lld rows affected)\n",
                              static_cast<long long>(affected_rows))
               : message + "\n";
  }
  std::vector<size_t> widths(columns.size());
  std::vector<std::vector<std::string>> cells;
  for (size_t i = 0; i < columns.size(); ++i) {
    widths[i] = columns[i].name.size();
  }
  cells.reserve(rows.size());
  for (const Row& row : rows) {
    std::vector<std::string> line;
    line.reserve(columns.size());
    for (size_t i = 0; i < columns.size(); ++i) {
      std::string text = i < row.size() ? types.Format(row[i]) : "";
      widths[i] = std::max(widths[i], text.size());
      line.push_back(std::move(text));
    }
    cells.push_back(std::move(line));
  }
  std::string out;
  auto append_row = [&](const std::vector<std::string>& line) {
    for (size_t i = 0; i < line.size(); ++i) {
      out += i == 0 ? "| " : " | ";
      out += line[i];
      out.append(widths[i] - line[i].size(), ' ');
    }
    out += " |\n";
  };
  std::vector<std::string> header;
  header.reserve(columns.size());
  for (const ResultColumn& c : columns) header.push_back(c.name);
  append_row(header);
  out += "|";
  for (size_t i = 0; i < columns.size(); ++i) {
    out.append(widths[i] + 2, '-');
    out += "|";
  }
  out += "\n";
  for (const auto& line : cells) append_row(line);
  out += StringPrintf("(%zu rows)\n", rows.size());
  return out;
}

}  // namespace tip::engine
