#include "engine/exec/parallel_exec.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "common/fault_injection.h"
#include "engine/exec/row_utils.h"

namespace tip::engine {

namespace {

// Effective degree of parallelism: never more workers than morsels,
// never fewer than one.
size_t EffectiveWorkers(size_t requested, size_t num_morsels) {
  return std::max<size_t>(1, std::min(requested, num_morsels));
}

size_t NumMorsels(const HeapTable& heap) {
  return (heap.page_count() + kPagesPerMorsel - 1) / kPagesPerMorsel;
}

// Degrades gracefully under pool saturation: never ask for more workers
// than the shared pool can actually serve right now (+1 because the
// caller participates as worker 0). A statement forced below its
// requested fan-out records a parallel_fallbacks event.
size_t PlanWorkers(size_t requested, size_t num_morsels, ExecGuard* guard) {
  size_t n = EffectiveWorkers(requested, num_morsels);
  if (n <= 1) return n;
  const size_t avail = ThreadPool::Shared().ApproxAvailable() + 1;
  if (avail < n) {
    n = std::max<size_t>(avail, 1);
    if (guard != nullptr) guard->RecordParallelFallback();
  }
  return n;
}

// A worker body failure that is infrastructure (a thrown exception
// captured by the pool), not the query's own error: the statement
// retries serially instead of failing.
bool IsWorkerInfraFailure(const Status& s) {
  return s.code() == StatusCode::kInternal &&
         s.message().rfind("worker exception: ", 0) == 0;
}

// Deterministic infra-failure hook: a fired "parallel.worker" fault
// simulates a crashing worker body via a real exception, exercising the
// pool's exception capture and the serial-retry path. One-shot, so the
// retry does not re-fire.
void MaybeThrowWorkerFault() {
  Status f = fault::MaybeFail("parallel.worker");
  if (!f.ok()) throw std::runtime_error(std::string(f.message()));
}

void AppendIndent(int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
}

void AppendParallelLines(int depth, size_t workers,
                         const ParallelStats* stats, std::string* out) {
  AppendIndent(depth, out);
  out->append("Parallel(workers=" + std::to_string(workers) +
              " pages_per_morsel=" + std::to_string(kPagesPerMorsel) +
              ")\n");
  if (stats == nullptr) return;
  std::optional<ParallelStats::Snapshot> snap = stats->Latest();
  if (snap.has_value()) {
    AppendIndent(depth, out);
    out->append("ParallelStats(" + snap->ToString() + ")\n");
  }
}

}  // namespace

// -- ParallelStats -----------------------------------------------------------

std::string ParallelStats::Snapshot::ToString() const {
  std::string s = "runs=" + std::to_string(runs) +
                  " workers=" + std::to_string(per_worker.size());
  for (size_t i = 0; i < per_worker.size(); ++i) {
    const WorkerCounters& c = per_worker[i];
    s += " w" + std::to_string(i) + "{morsels=" + std::to_string(c.morsels) +
         " rows_in=" + std::to_string(c.rows_in) +
         " rows_out=" + std::to_string(c.rows_out) + "}";
  }
  return s;
}

void ParallelStats::RecordRun(const std::string& op,
                              std::vector<WorkerCounters> per_worker) {
  std::lock_guard<std::mutex> lock(mu_);
  last_.op = op;
  last_.runs += 1;
  last_.per_worker = std::move(per_worker);
  any_ = true;
}

std::optional<ParallelStats::Snapshot> ParallelStats::Latest() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!any_) return std::nullopt;
  return last_;
}

ParallelStats* ParallelStatsRegistry::ForTable(const std::string& table) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<ParallelStats>& slot = by_table_[table];
  if (slot == nullptr) slot = std::make_unique<ParallelStats>();
  return slot.get();
}

// -- ParallelScanNode --------------------------------------------------------

Status ParallelScanNode::Open(ExecState& state) {
  matches_.clear();
  next_ = 0;
  const HeapTable& heap = table_->heap();
  const size_t num_morsels = NumMorsels(heap);
  ExecGuard* guard = state.eval->guard;
  const TupleCtx* outer = state.outer;
  const TxContext tx = state.eval->tx;
  const std::vector<Datum>* params = state.eval->params;

  std::vector<std::vector<RowId>> per_morsel(num_morsels);
  std::vector<WorkerCounters> counters;

  auto attempt = [&](size_t n) -> Status {
    for (std::vector<RowId>& ids : per_morsel) ids.clear();
    counters.assign(n, WorkerCounters{});
    MorselSource source(&heap, kPagesPerMorsel);
    std::atomic<bool> failed{false};

    auto body = [&](size_t w) -> Status {
      MaybeThrowWorkerFault();
      EvalContext eval(tx, guard);  // worker-private: not shared
      eval.params = params;
      WorkerCounters& c = counters[w];
      Morsel m;
      while (!failed.load(std::memory_order_relaxed) && source.Next(&m)) {
        TIP_RETURN_IF_ERROR(eval.CheckGuardNow());
        ++c.morsels;
        std::vector<RowId>& out_ids =
            per_morsel[m.page_begin / kPagesPerMorsel];
        HeapTable::Cursor cursor = heap.ScanPages(m.page_begin, m.page_end);
        RowId id;
        const Row* row;
        while (cursor.Next(&id, &row)) {
          TIP_RETURN_IF_ERROR(eval.CheckGuard());
          ++c.rows_in;
          if (predicate_ != nullptr) {
            TupleCtx tuple{row, outer};
            TIP_ASSIGN_OR_RETURN(
                bool pass,
                exec_util::PredicatePasses(*predicate_, tuple, eval));
            if (!pass) continue;
          }
          ++c.rows_out;
          out_ids.push_back(id);
        }
        TIP_RETURN_IF_ERROR(
            eval.ReserveMemory(out_ids.capacity() * sizeof(RowId)));
      }
      return Status::OK();
    };
    return ThreadPool::Shared().RunOnWorkers(n, [&](size_t w) -> Status {
      Status s = body(w);
      if (!s.ok()) failed.store(true, std::memory_order_relaxed);
      return s;
    });
  };

  const size_t n = PlanWorkers(workers_, num_morsels, guard);
  Status run = attempt(n);
  // One serial retry even when n == 1: a single-morsel plan still
  // runs its body through the pool's exception capture, and a
  // transient worker crash should not fail the statement at any
  // planned width.
  if (IsWorkerInfraFailure(run)) {
    if (guard != nullptr) guard->RecordParallelFallback();
    run = attempt(1);
  }
  TIP_RETURN_IF_ERROR(run);

  size_t total = 0;
  for (const std::vector<RowId>& ids : per_morsel) total += ids.size();
  matches_.reserve(total);
  for (const std::vector<RowId>& ids : per_morsel) {
    matches_.insert(matches_.end(), ids.begin(), ids.end());
  }
  if (stats_ != nullptr) stats_->RecordRun(DebugName(), std::move(counters));
  return Status::OK();
}

Result<bool> ParallelScanNode::Next(ExecState& state, Row* out) {
  TIP_ASSIGN_OR_RETURN(const Row* row, NextBorrowed(state));
  if (row == nullptr) return false;
  *out = *row;
  return true;
}

Result<const Row*> ParallelScanNode::NextBorrowed(ExecState&) {
  while (next_ < matches_.size()) {
    const Row* row = table_->heap().Get(matches_[next_++]);
    if (row != nullptr) return row;
  }
  return nullptr;
}

void ParallelScanNode::Explain(int depth, std::string* out) const {
  ExecNode::Explain(depth, out);
  AppendParallelLines(depth + 1, workers_, stats_, out);
  if (predicate_ != nullptr) {
    AppendIndent(depth + 1, out);
    out->append("Filter(pushed)\n");
  }
}

// -- ParallelAggregateNode ---------------------------------------------------

Result<ParallelAggregateNode::Group*> ParallelAggregateNode::FindOrCreateGroup(
    LocalAgg& local, uint64_t hash, const std::vector<Datum>& keys,
    EvalContext& eval) {
  auto [begin, end] = local.index.equal_range(hash);
  for (auto it = begin; it != end; ++it) {
    TIP_ASSIGN_OR_RETURN(bool equal,
                         exec_util::DatumsEqual(local.groups[it->second].keys,
                                                keys, *types_, eval.tx));
    if (equal) return &local.groups[it->second];
  }
  // Each group buffers its keys plus one aggregate state apiece; charge
  // the statement budget as the group table grows.
  TIP_RETURN_IF_ERROR(eval.ReserveMemory(exec_util::ApproxRowBytes(keys) +
                                         aggregates_.size() * 64));
  Group group;
  group.hash = hash;
  group.keys = keys;
  group.states.reserve(aggregates_.size());
  for (const AggregateSpec& spec : aggregates_) {
    group.states.push_back(spec.agg.def->make_state());
  }
  local.index.emplace(hash, local.groups.size());
  local.groups.push_back(std::move(group));
  return &local.groups.back();
}

Status ParallelAggregateNode::ScanWorker(LocalAgg& local, MorselSource& source,
                                         std::atomic<bool>& failed,
                                         const TupleCtx* outer,
                                         EvalContext& eval) {
  const HeapTable& heap = table_->heap();
  Morsel m;
  while (!failed.load(std::memory_order_relaxed) && source.Next(&m)) {
    TIP_RETURN_IF_ERROR(eval.CheckGuardNow());
    ++local.counters.morsels;
    HeapTable::Cursor cursor = heap.ScanPages(m.page_begin, m.page_end);
    RowId id;
    const Row* row;
    while (cursor.Next(&id, &row)) {
      TIP_RETURN_IF_ERROR(eval.CheckGuard());
      ++local.counters.rows_in;
      TupleCtx tuple{row, outer};
      if (predicate_ != nullptr) {
        TIP_ASSIGN_OR_RETURN(
            bool pass, exec_util::PredicatePasses(*predicate_, tuple, eval));
        if (!pass) continue;
      }
      ++local.counters.rows_out;

      std::vector<Datum> keys;
      keys.reserve(group_exprs_.size());
      for (const BoundExprPtr& expr : group_exprs_) {
        TIP_ASSIGN_OR_RETURN(Datum v, expr->Eval(tuple, eval));
        keys.push_back(std::move(v));
      }
      TIP_ASSIGN_OR_RETURN(uint64_t h,
                           exec_util::HashDatums(keys, *types_, eval.tx));
      TIP_ASSIGN_OR_RETURN(Group* group,
                           FindOrCreateGroup(local, h, keys, eval));

      for (size_t i = 0; i < aggregates_.size(); ++i) {
        const AggregateSpec& spec = aggregates_[i];
        Datum value = Datum::Int(1);  // COUNT(*) counts rows
        if (spec.arg != nullptr) {
          TIP_ASSIGN_OR_RETURN(value, spec.arg->Eval(tuple, eval));
          if (value.is_null() && spec.agg.def->strict) continue;
          if (spec.agg.arg_cast != nullptr && !value.is_null()) {
            TIP_ASSIGN_OR_RETURN(value, spec.agg.arg_cast->fn(value, eval));
          }
        }
        TIP_RETURN_IF_ERROR(group->states[i]->Step(value, eval));
      }
    }
  }
  return Status::OK();
}

Status ParallelAggregateNode::Open(ExecState& state) {
  results_.clear();
  next_ = 0;
  const HeapTable& heap = table_->heap();
  const size_t num_morsels = NumMorsels(heap);
  ExecGuard* guard = state.eval->guard;
  const TupleCtx* outer = state.outer;
  const TxContext tx = state.eval->tx;
  const std::vector<Datum>* params = state.eval->params;

  std::vector<LocalAgg> locals;

  auto attempt = [&](size_t n) -> Status {
    locals.clear();
    locals.resize(n);
    MorselSource source(&heap, kPagesPerMorsel);
    std::atomic<bool> failed{false};
    return ThreadPool::Shared().RunOnWorkers(n, [&](size_t w) -> Status {
      MaybeThrowWorkerFault();
      EvalContext eval(tx, guard);
      eval.params = params;
      LocalAgg& local = locals[w];
      local.status = ScanWorker(local, source, failed, outer, eval);
      if (!local.status.ok()) failed.store(true, std::memory_order_relaxed);
      return local.status;
    });
  };

  const size_t n = PlanWorkers(workers_, num_morsels, guard);
  Status run = attempt(n);
  if (IsWorkerInfraFailure(run)) {
    if (guard != nullptr) guard->RecordParallelFallback();
    run = attempt(1);
  }
  TIP_RETURN_IF_ERROR(run);

  // Fold the thread-local partials into worker 0's table. Groups whole
  // to one worker move over; shared groups merge state-by-state.
  LocalAgg& base = locals[0];
  EvalContext& eval = *state.eval;
  for (size_t w = 1; w < locals.size(); ++w) {
    for (Group& g : locals[w].groups) {
      Group* dst = nullptr;
      auto [begin, end] = base.index.equal_range(g.hash);
      for (auto it = begin; it != end; ++it) {
        TIP_ASSIGN_OR_RETURN(
            bool equal,
            exec_util::DatumsEqual(base.groups[it->second].keys, g.keys,
                                   *types_, eval.tx));
        if (equal) {
          dst = &base.groups[it->second];
          break;
        }
      }
      if (dst == nullptr) {
        base.index.emplace(g.hash, base.groups.size());
        base.groups.push_back(std::move(g));
        continue;
      }
      for (size_t i = 0; i < aggregates_.size(); ++i) {
        TIP_RETURN_IF_ERROR(
            dst->states[i]->Merge(std::move(*g.states[i]), eval));
      }
    }
  }

  // Global aggregates produce one row even with no input.
  if (group_exprs_.empty() && base.groups.empty()) {
    Group group;
    for (const AggregateSpec& spec : aggregates_) {
      group.states.push_back(spec.agg.def->make_state());
    }
    base.groups.push_back(std::move(group));
  }

  results_.reserve(base.groups.size());
  for (Group& group : base.groups) {
    Row out;
    out.reserve(group.keys.size() + aggregates_.size());
    for (Datum& key : group.keys) out.push_back(std::move(key));
    for (size_t i = 0; i < aggregates_.size(); ++i) {
      TIP_ASSIGN_OR_RETURN(Datum v, group.states[i]->Final(eval));
      out.push_back(std::move(v));
    }
    results_.push_back(std::move(out));
  }

  if (stats_ != nullptr) {
    std::vector<WorkerCounters> counters;
    counters.reserve(locals.size());
    for (const LocalAgg& local : locals) counters.push_back(local.counters);
    stats_->RecordRun(DebugName(), std::move(counters));
  }
  return Status::OK();
}

Result<bool> ParallelAggregateNode::Next(ExecState&, Row* out) {
  if (next_ >= results_.size()) return false;
  *out = results_[next_++];
  return true;
}

void ParallelAggregateNode::Explain(int depth, std::string* out) const {
  ExecNode::Explain(depth, out);
  AppendParallelLines(depth + 1, workers_, stats_, out);
  AppendIndent(depth + 1, out);
  out->append("MorselScan(" + table_->name() +
              (predicate_ != nullptr ? ", filtered" : "") + ")\n");
}

// -- ParallelIntervalJoinNode ------------------------------------------------

Status ParallelIntervalJoinNode::Open(ExecState& state) {
  results_.clear();
  next_ = 0;
  // One index view shared by every worker: the view is an immutable
  // snapshot, so concurrent probes need no locking.
  TIP_ASSIGN_OR_RETURN(
      IntervalIndexView index,
      right_table_->GetIntervalIndex(right_column_, state.eval->tx));

  const HeapTable& heap = left_table_->heap();
  const size_t num_morsels = NumMorsels(heap);
  ExecGuard* guard = state.eval->guard;
  const TupleCtx* outer = state.outer;
  const TxContext tx = state.eval->tx;
  const std::vector<Datum>* params = state.eval->params;

  std::vector<std::vector<Row>> per_morsel(num_morsels);
  std::vector<WorkerCounters> counters;

  auto attempt = [&](size_t n) -> Status {
    for (std::vector<Row>& rows : per_morsel) rows.clear();
    counters.assign(n, WorkerCounters{});
    MorselSource source(&heap, kPagesPerMorsel);
    std::atomic<bool> failed{false};

    auto body = [&](size_t w) -> Status {
      MaybeThrowWorkerFault();
      EvalContext eval(tx, guard);
      eval.params = params;
      WorkerCounters& c = counters[w];
      std::vector<RowId> matches;
      Morsel m;
      while (!failed.load(std::memory_order_relaxed) && source.Next(&m)) {
        TIP_RETURN_IF_ERROR(eval.CheckGuardNow());
        ++c.morsels;
        std::vector<Row>& out_rows =
            per_morsel[m.page_begin / kPagesPerMorsel];
        HeapTable::Cursor cursor = heap.ScanPages(m.page_begin, m.page_end);
        RowId id;
        const Row* row;
        size_t morsel_bytes = 0;
        while (cursor.Next(&id, &row)) {
          TIP_RETURN_IF_ERROR(eval.CheckGuard());
          ++c.rows_in;
          TupleCtx left_tuple{row, outer};
          if (left_predicate_ != nullptr) {
            TIP_ASSIGN_OR_RETURN(
                bool pass, exec_util::PredicatePasses(*left_predicate_,
                                                      left_tuple, eval));
            if (!pass) continue;
          }
          matches.clear();
          TIP_ASSIGN_OR_RETURN(Datum probe,
                               left_probe_->Eval(left_tuple, eval));
          if (!probe.is_null()) {
            TIP_ASSIGN_OR_RETURN(IntervalKey key,
                                 probe_key_fn_(probe, eval.tx));
            if (!key.empty) {
              index.FindOverlapping(key.start, key.end, &matches);
            }
          }
          for (RowId rid : matches) {
            const Row* right_row = right_table_->heap().Get(rid);
            if (right_row == nullptr) continue;
            Row combined;
            combined.reserve(row->size() + right_row->size());
            combined.insert(combined.end(), row->begin(), row->end());
            combined.insert(combined.end(), right_row->begin(),
                            right_row->end());
            if (residual_ != nullptr) {
              TupleCtx tuple{&combined, outer};
              TIP_ASSIGN_OR_RETURN(
                  bool pass,
                  exec_util::PredicatePasses(*residual_, tuple, eval));
              if (!pass) continue;
            }
            ++c.rows_out;
            morsel_bytes += exec_util::ApproxRowBytes(combined);
            out_rows.push_back(std::move(combined));
          }
        }
        TIP_RETURN_IF_ERROR(eval.ReserveMemory(morsel_bytes));
      }
      return Status::OK();
    };
    return ThreadPool::Shared().RunOnWorkers(n, [&](size_t w) -> Status {
      Status s = body(w);
      if (!s.ok()) failed.store(true, std::memory_order_relaxed);
      return s;
    });
  };

  const size_t n = PlanWorkers(workers_, num_morsels, guard);
  Status run = attempt(n);
  if (IsWorkerInfraFailure(run)) {
    if (guard != nullptr) guard->RecordParallelFallback();
    run = attempt(1);
  }
  TIP_RETURN_IF_ERROR(run);

  size_t total = 0;
  for (const std::vector<Row>& rows : per_morsel) total += rows.size();
  results_.reserve(total);
  for (std::vector<Row>& rows : per_morsel) {
    for (Row& row : rows) results_.push_back(std::move(row));
  }
  if (stats_ != nullptr) stats_->RecordRun(DebugName(), std::move(counters));
  return Status::OK();
}

Result<bool> ParallelIntervalJoinNode::Next(ExecState& state, Row* out) {
  TIP_ASSIGN_OR_RETURN(const Row* row, NextBorrowed(state));
  if (row == nullptr) return false;
  *out = *row;
  return true;
}

Result<const Row*> ParallelIntervalJoinNode::NextBorrowed(ExecState&) {
  if (next_ >= results_.size()) return nullptr;
  return &results_[next_++];
}

void ParallelIntervalJoinNode::Explain(int depth, std::string* out) const {
  ExecNode::Explain(depth, out);
  AppendParallelLines(depth + 1, workers_, stats_, out);
  AppendIndent(depth + 1, out);
  out->append("MorselScan(" + left_table_->name() +
              (left_predicate_ != nullptr ? ", filtered" : "") + ")\n");
  AppendIndent(depth + 1, out);
  out->append("IndexProbe(" + right_table_->name() + ")\n");
  std::optional<IndexStatsSnapshot> stats =
      right_table_->IntervalIndexStats(right_column_);
  if (stats.has_value()) {
    AppendIndent(depth + 1, out);
    out->append("IndexStats(" + stats->ToString() + ")\n");
  }
}

}  // namespace tip::engine
