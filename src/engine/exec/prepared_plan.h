#ifndef TIP_ENGINE_EXEC_PREPARED_PLAN_H_
#define TIP_ENGINE_EXEC_PREPARED_PLAN_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "engine/exec/planner.h"
#include "engine/sql/ast.h"
#include "engine/types/datum.h"

namespace tip::engine {

/// Counters for the prepared-statement / plan-cache layer, surfaced in
/// SQL as tip_plan_stats() and appended to EXPLAIN output. Atomics:
/// concurrent read-only sessions bump them while stats readers poll.
struct PlanCacheStats {
  /// Executions that reused a cached operator tree.
  std::atomic<uint64_t> hits{0};
  /// Executions that had to plan (first use, new parameter-type
  /// signature, changed session settings, or a busy cached tree).
  std::atomic<uint64_t> misses{0};
  /// Plan variants discarded because the catalog changed under them
  /// (DDL, function registration, ATTACH, wal_mode re-baseline).
  std::atomic<uint64_t> invalidations{0};
  /// Entries or variants dropped by capacity limits (LRU overflow).
  std::atomic<uint64_t> evictions{0};
};

/// A prepared statement: SQL parsed once, plus — for SELECTs — lazily
/// planned operator-tree variants that later executions reuse.
///
/// The text and AST are immutable after Prepare, so a handle can be
/// shared freely between the Database's text-keyed cache and any number
/// of client Statement handles. The variant list is an internal cache
/// guarded by a mutex; a variant is reused only when its catalog
/// version, session-settings fingerprint and parameter-type signature
/// all match the executing session's, so DDL or SET changes re-plan
/// instead of executing a tree holding dangling catalog pointers
/// (cached plans hold raw Table*/Routine*/Cast* resolved at plan time).
///
/// NOW-relative plans are *not* invalidated by time passing or SET NOW:
/// nothing NOW-dependent is folded at plan time — every execution
/// builds a fresh EvalContext whose TxContext re-grounds NOW, the same
/// absolute/overlay split the segmented interval index uses.
class PreparedPlan {
 public:
  /// One planned incarnation of the statement. Operator trees are
  /// re-executable (Open fully re-initializes) but carry per-run
  /// cursors and hash tables, so exec_mu grants the tree to one
  /// execution at a time; contenders plan a transient tree instead.
  struct Variant {
    uint64_t catalog_version = 0;
    std::string settings_fingerprint;
    std::string param_signature;
    /// Ordinal slot → parameter name, in order of first use. Each
    /// execution fills its slot vector from this once, keeping the
    /// name→Datum map off the per-row hot path.
    std::vector<std::string> slot_names;
    PlannedSelect plan;
    std::mutex exec_mu;
  };

  PreparedPlan(std::string sql, Statement stmt)
      : sql_(std::move(sql)), stmt_(std::move(stmt)) {}

  PreparedPlan(const PreparedPlan&) = delete;
  PreparedPlan& operator=(const PreparedPlan&) = delete;

  const std::string& sql() const { return sql_; }
  const Statement& stmt() const { return stmt_; }

  /// Returns the cached variant matching the caller's catalog version,
  /// settings fingerprint and parameter signature, or null. Variants
  /// planned under an older catalog version are dead forever (the
  /// version is monotonic) and are pruned here, counted as
  /// invalidations; in-flight executions keep theirs alive via the
  /// shared_ptr.
  std::shared_ptr<Variant> FindVariant(uint64_t catalog_version,
                                       const std::string& settings_fingerprint,
                                       const std::string& param_signature,
                                       PlanCacheStats* stats) const;

  /// Caches a freshly planned variant, evicting the least recently
  /// used one past kMaxVariants.
  void AddVariant(std::shared_ptr<Variant> variant,
                  PlanCacheStats* stats) const;

  /// Distinct plans kept per statement (different parameter-type
  /// signatures or session settings); beyond this, LRU.
  static constexpr size_t kMaxVariants = 8;

 private:
  std::string sql_;
  Statement stmt_;
  /// Guards variants_ only; executions hold the variant's own exec_mu.
  mutable std::mutex mu_;
  /// Most recently used last.
  mutable std::vector<std::shared_ptr<Variant>> variants_;
};

/// Builds the parameter-type signature a plan variant is keyed under:
/// every bound name with its type id, in map (= sorted) order. A rebind
/// that changes a parameter's type therefore re-plans rather than
/// evaluating a tree typed for the old binding.
std::string ParamSignature(
    const std::map<std::string, Datum, std::less<>>* params);

/// Shared LRU cache of PreparedPlans keyed on SQL text + the session
/// settings fingerprint, so repeated `Database::Execute` calls with the
/// same text skip the lexer and parser entirely and share planned
/// variants with explicit Prepare handles.
class PlanCache {
 public:
  std::shared_ptr<PreparedPlan> Lookup(const std::string& key);
  void Insert(const std::string& key, std::shared_ptr<PreparedPlan> plan,
              PlanCacheStats* stats);
  /// SET plan_cache_size n (evicts LRU entries beyond the new cap).
  void SetCapacity(size_t capacity, PlanCacheStats* stats);
  size_t capacity() const;
  size_t entries() const;

 private:
  void EvictToCapacityLocked(PlanCacheStats* stats);

  mutable std::mutex mu_;
  size_t capacity_ = 64;
  /// LRU order, least recently used first.
  std::list<std::pair<std::string, std::shared_ptr<PreparedPlan>>> lru_;
  std::unordered_map<std::string, decltype(lru_)::iterator> index_;
};

}  // namespace tip::engine

#endif  // TIP_ENGINE_EXEC_PREPARED_PLAN_H_
