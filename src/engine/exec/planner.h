#ifndef TIP_ENGINE_EXEC_PLANNER_H_
#define TIP_ENGINE_EXEC_PLANNER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/catalog/aggregate_registry.h"
#include "engine/catalog/cast_registry.h"
#include "engine/catalog/catalog.h"
#include "engine/catalog/routine_registry.h"
#include "engine/exec/exec_node.h"
#include "engine/sql/ast.h"
#include "engine/types/type.h"

namespace tip::engine {

class ParallelStatsRegistry;

/// Everything the binder/planner needs from the database instance.
struct PlannerContext {
  const TypeRegistry* types = nullptr;
  const RoutineRegistry* routines = nullptr;
  const CastRegistry* casts = nullptr;
  const AggregateRegistry* aggregates = nullptr;
  Catalog* catalog = nullptr;
  /// Host parameters (`:name`); may be null when the statement has none.
  const std::map<std::string, Datum, std::less<>>* params = nullptr;
  /// Prepared-statement mode: when non-null, `:name` placeholders bind
  /// as late-bound ordinal slots (BoundParam) instead of folding the
  /// bound value in as a constant. `ctx.params` still supplies each
  /// parameter's planned type; `slot_names` accumulates the ordinal →
  /// name assignment in order of first use, and is retained by the
  /// prepared plan so executions can fill the slot vector without
  /// per-name map lookups on the hot path.
  std::vector<std::string>* param_slots = nullptr;
  /// Interval-key extractors per indexable type (registered by the
  /// DataBlade); used for index scans/joins and CREATE INDEX.
  const std::map<TypeId, IntervalKeyFn>* interval_key_fns = nullptr;

  // Session optimizer toggles (SET ... on the connection).
  bool enable_hash_join = true;
  bool enable_interval_join = true;

  // Parallel execution (SET parallel_workers / parallel_min_rows).
  // Parallel operators are only planned with parallel_workers >= 2 and
  // an estimated scan input of at least parallel_min_rows rows, so the
  // default session runs the unchanged serial plans.
  size_t parallel_workers = 1;
  size_t parallel_min_rows = 4096;
  /// Session-owned per-table counters published by parallel operators
  /// and read back by EXPLAIN; may be null (no recording).
  ParallelStatsRegistry* parallel_stats = nullptr;
};

/// Name-resolution scope: the flattened columns of a FROM clause, with a
/// link to the enclosing query's scope for correlated subqueries.
class Scope {
 public:
  struct Binding {
    std::string table;   // binding name (alias or table), lower-case
    std::string column;  // lower-case
    TypeId type;
  };

  std::vector<Binding> bindings;
  const Scope* outer = nullptr;

  struct Resolution {
    size_t depth;
    size_t index;
    TypeId type;
  };

  /// Resolves `qualifier.name`, walking outward. Ambiguity within one
  /// scope level is an error; an inner hit shadows outer candidates.
  Result<Resolution> Resolve(std::string_view qualifier,
                             std::string_view name) const;
};

/// A fully planned SELECT: an executable tree plus the output schema.
struct PlannedSelect {
  ExecNodePtr root;
  std::vector<std::string> column_names;
  std::vector<TypeId> column_types;
};

/// Binds and plans a SELECT statement. `outer` is the enclosing scope
/// for correlated subqueries (null at top level).
Result<PlannedSelect> PlanSelect(const SelectStmt& select,
                                 const PlannerContext& ctx,
                                 const Scope* outer);

/// Binds a scalar expression with no FROM scope (INSERT values, SET
/// options, UPDATE right-hand sides use a single-table scope instead).
Result<BoundExprPtr> BindScalar(const Expr& expr, const PlannerContext& ctx,
                                const Scope* scope);

/// Coerces a bound expression to `target` (exact, or via an implicit
/// cast); TypeError when no coercion exists.
Result<BoundExprPtr> CoerceTo(BoundExprPtr expr, TypeId target,
                              const PlannerContext& ctx);

}  // namespace tip::engine

#endif  // TIP_ENGINE_EXEC_PLANNER_H_
