#ifndef TIP_ENGINE_EXEC_ROW_UTILS_H_
#define TIP_ENGINE_EXEC_ROW_UTILS_H_

#include <cassert>
#include <cstdint>
#include <vector>

#include "common/status.h"
#include "engine/exec/bound_expr.h"
#include "engine/types/datum.h"
#include "engine/types/eval_context.h"
#include "engine/types/type.h"

namespace tip::engine::exec_util {

/// Evaluates a predicate over `tuple`; NULL counts as false.
inline Result<bool> PredicatePasses(const BoundExpr& predicate,
                                    const TupleCtx& tuple,
                                    EvalContext& ctx) {
  TIP_ASSIGN_OR_RETURN(Datum v, predicate.Eval(tuple, ctx));
  return !v.is_null() && v.bool_value();
}

/// Combines per-column hashes the boost::hash_combine way.
inline uint64_t CombineHashes(uint64_t seed, uint64_t h) {
  return seed ^ (h + 0x9E3779B97F4A7C15ULL + (seed << 6) + (seed >> 2));
}

inline Result<uint64_t> HashDatums(const std::vector<Datum>& values,
                                   const TypeRegistry& types,
                                   const TxContext& tx) {
  uint64_t seed = 0;
  for (const Datum& v : values) {
    TIP_ASSIGN_OR_RETURN(uint64_t h, types.Hash(v, tx));
    seed = CombineHashes(seed, h);
  }
  return seed;
}

/// Row equality for grouping / DISTINCT: NULLs compare equal to NULLs
/// (SQL's "not distinct from" semantics used by GROUP BY).
inline Result<bool> DatumsEqual(const std::vector<Datum>& a,
                                const std::vector<Datum>& b,
                                const TypeRegistry& types,
                                const TxContext& tx) {
  assert(a.size() == b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    const bool an = a[i].is_null(), bn = b[i].is_null();
    if (an || bn) {
      if (an != bn) return false;
      continue;
    }
    TIP_ASSIGN_OR_RETURN(int c, types.Compare(a[i], b[i], tx));
    if (c != 0) return false;
  }
  return true;
}

/// Approximate heap footprint of one materialized row, used for
/// statement memory accounting (ExecGuard::Reserve). Deliberately an
/// estimate — string bytes are exact, extension payloads are charged a
/// flat 64 bytes — because the budget protects against runaway
/// buffering, not byte-exact quotas.
inline size_t ApproxDatumBytes(const Datum& d) {
  size_t bytes = sizeof(Datum);
  if (d.is_null()) return bytes;
  if (d.type_id() == TypeId::kString) {
    bytes += d.string_value().size();
  } else if (IsExtensionType(d.type_id())) {
    bytes += 64;
  }
  return bytes;
}

inline size_t ApproxRowBytes(const Row& row) {
  size_t bytes = sizeof(Row);
  for (const Datum& d : row) bytes += ApproxDatumBytes(d);
  return bytes;
}

}  // namespace tip::engine::exec_util

#endif  // TIP_ENGINE_EXEC_ROW_UTILS_H_
