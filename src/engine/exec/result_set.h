#ifndef TIP_ENGINE_EXEC_RESULT_SET_H_
#define TIP_ENGINE_EXEC_RESULT_SET_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "engine/types/datum.h"
#include "engine/types/type.h"

namespace tip::engine {

struct ResultColumn {
  std::string name;
  TypeId type;
};

/// The materialized outcome of one statement: a relation for queries,
/// an affected-row count for DML, a message for DDL / SET / EXPLAIN.
class ResultSet {
 public:
  ResultSet() = default;

  std::vector<ResultColumn> columns;
  std::vector<Row> rows;
  int64_t affected_rows = 0;
  std::string message;

  size_t row_count() const { return rows.size(); }
  size_t column_count() const { return columns.size(); }

  /// Case-insensitive column lookup; -1 on miss.
  int FindColumn(std::string_view name) const;

  /// Renders an aligned ASCII table (values formatted through the type
  /// registry's output functions).
  std::string ToTable(const TypeRegistry& types) const;
};

}  // namespace tip::engine

#endif  // TIP_ENGINE_EXEC_RESULT_SET_H_
