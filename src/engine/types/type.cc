#include "engine/types/type.h"

#include <cassert>
#include <cstring>

#include "common/string_util.h"

namespace tip::engine {

namespace {

// 64-bit FNV-1a over raw bytes; the engine's default hash primitive.
uint64_t HashBytes(const void* data, size_t n) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = 1469598103934665603ULL;
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

uint64_t HashInt64(int64_t v) { return HashBytes(&v, sizeof(v)); }

void AppendFixed64(int64_t v, std::string* out) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

Result<int64_t> ReadFixed64(std::string_view bytes) {
  if (bytes.size() != 8) {
    return Status::Internal("fixed64 payload has wrong size");
  }
  int64_t v;
  std::memcpy(&v, bytes.data(), 8);
  return v;
}

TypeOps BoolOps() {
  TypeOps ops;
  ops.parse = [](std::string_view s) -> Result<Datum> {
    if (EqualsIgnoreCase(s, "true") || EqualsIgnoreCase(s, "t")) {
      return Datum::Bool(true);
    }
    if (EqualsIgnoreCase(s, "false") || EqualsIgnoreCase(s, "f")) {
      return Datum::Bool(false);
    }
    return Status::ParseError("invalid BOOLEAN literal: '" + std::string(s) +
                              "'");
  };
  ops.format = [](const Datum& d) {
    return std::string(d.bool_value() ? "true" : "false");
  };
  ops.compare = [](const Datum& a, const Datum& b,
                   const TxContext&) -> Result<int> {
    return static_cast<int>(a.bool_value()) -
           static_cast<int>(b.bool_value());
  };
  ops.hash = [](const Datum& d, const TxContext&) -> Result<uint64_t> {
    return HashInt64(d.bool_value() ? 1 : 0);
  };
  ops.serialize = [](const Datum& d, std::string* out) {
    out->push_back(d.bool_value() ? 1 : 0);
  };
  ops.deserialize = [](std::string_view bytes) -> Result<Datum> {
    if (bytes.size() != 1) return Status::Internal("bad BOOLEAN payload");
    return Datum::Bool(bytes[0] != 0);
  };
  return ops;
}

TypeOps IntOps() {
  TypeOps ops;
  ops.parse = [](std::string_view s) -> Result<Datum> {
    TIP_ASSIGN_OR_RETURN(int64_t v, ParseInt64(s));
    return Datum::Int(v);
  };
  ops.format = [](const Datum& d) { return std::to_string(d.int_value()); };
  ops.compare = [](const Datum& a, const Datum& b,
                   const TxContext&) -> Result<int> {
    const int64_t x = a.int_value(), y = b.int_value();
    return x < y ? -1 : (x == y ? 0 : 1);
  };
  ops.hash = [](const Datum& d, const TxContext&) -> Result<uint64_t> {
    return HashInt64(d.int_value());
  };
  ops.serialize = [](const Datum& d, std::string* out) {
    AppendFixed64(d.int_value(), out);
  };
  ops.deserialize = [](std::string_view bytes) -> Result<Datum> {
    TIP_ASSIGN_OR_RETURN(int64_t v, ReadFixed64(bytes));
    return Datum::Int(v);
  };
  return ops;
}

TypeOps DoubleOps() {
  TypeOps ops;
  ops.parse = [](std::string_view s) -> Result<Datum> {
    TIP_ASSIGN_OR_RETURN(double v, ParseDouble(s));
    return Datum::Double(v);
  };
  ops.format = [](const Datum& d) {
    std::string out = StringPrintf("%.17g", d.double_value());
    return out;
  };
  ops.compare = [](const Datum& a, const Datum& b,
                   const TxContext&) -> Result<int> {
    const double x = a.double_value(), y = b.double_value();
    // NaNs sort last and equal to each other so ORDER BY is total.
    const bool xn = x != x, yn = y != y;
    if (xn || yn) return xn == yn ? 0 : (xn ? 1 : -1);
    return x < y ? -1 : (x == y ? 0 : 1);
  };
  ops.hash = [](const Datum& d, const TxContext&) -> Result<uint64_t> {
    double v = d.double_value();
    if (v == 0.0) v = 0.0;  // normalize -0.0
    return HashBytes(&v, sizeof(v));
  };
  ops.serialize = [](const Datum& d, std::string* out) {
    double v = d.double_value();
    char buf[8];
    std::memcpy(buf, &v, 8);
    out->append(buf, 8);
  };
  ops.deserialize = [](std::string_view bytes) -> Result<Datum> {
    if (bytes.size() != 8) return Status::Internal("bad DOUBLE payload");
    double v;
    std::memcpy(&v, bytes.data(), 8);
    return Datum::Double(v);
  };
  return ops;
}

TypeOps StringOps() {
  TypeOps ops;
  ops.parse = [](std::string_view s) -> Result<Datum> {
    return Datum::String(std::string(s));
  };
  ops.format = [](const Datum& d) { return d.string_value(); };
  ops.compare = [](const Datum& a, const Datum& b,
                   const TxContext&) -> Result<int> {
    const int c = a.string_value().compare(b.string_value());
    return c < 0 ? -1 : (c == 0 ? 0 : 1);
  };
  ops.hash = [](const Datum& d, const TxContext&) -> Result<uint64_t> {
    return HashBytes(d.string_value().data(), d.string_value().size());
  };
  ops.serialize = [](const Datum& d, std::string* out) {
    out->append(d.string_value());
  };
  ops.deserialize = [](std::string_view bytes) -> Result<Datum> {
    return Datum::String(std::string(bytes));
  };
  return ops;
}

TypeOps NullOps() {
  TypeOps ops;
  ops.parse = [](std::string_view) -> Result<Datum> { return Datum::Null(); };
  ops.format = [](const Datum&) { return std::string("NULL"); };
  ops.compare = [](const Datum&, const Datum&, const TxContext&)
      -> Result<int> { return 0; };
  ops.hash = [](const Datum&, const TxContext&) -> Result<uint64_t> {
    return uint64_t{0};
  };
  ops.serialize = [](const Datum&, std::string*) {};
  ops.deserialize = [](std::string_view) -> Result<Datum> {
    return Datum::Null();
  };
  return ops;
}

}  // namespace

TypeRegistry::TypeRegistry() {
  types_.push_back({TypeId::kNull, "null", NullOps()});
  types_.push_back({TypeId::kBool, "boolean", BoolOps()});
  types_.push_back({TypeId::kInt, "int", IntOps()});
  types_.push_back({TypeId::kDouble, "double", DoubleOps()});
  types_.push_back({TypeId::kString, "char", StringOps()});
  for (const TypeInfo& t : types_) {
    names_.emplace_back(t.name, t.id);
  }
  // Conventional SQL spellings.
  (void)AddAlias("bool", TypeId::kBool);
  (void)AddAlias("integer", TypeId::kInt);
  (void)AddAlias("bigint", TypeId::kInt);
  (void)AddAlias("float", TypeId::kDouble);
  (void)AddAlias("real", TypeId::kDouble);
  (void)AddAlias("varchar", TypeId::kString);
  (void)AddAlias("text", TypeId::kString);
}

size_t TypeRegistry::SlotOf(TypeId id) const {
  const int32_t raw = static_cast<int32_t>(id);
  if (raw >= kFirstExtensionTypeId) {
    return static_cast<size_t>(raw - kFirstExtensionTypeId) + 5;
  }
  assert(raw >= 0 && raw < 5);
  return static_cast<size_t>(raw);
}

Result<TypeId> TypeRegistry::RegisterType(std::string_view name,
                                          TypeOps ops) {
  std::string lower = ToLowerAscii(name);
  for (const auto& [existing, id] : names_) {
    if (existing == lower) {
      return Status::AlreadyExists("type '" + lower + "' already exists");
    }
  }
  if (!ops.parse || !ops.format) {
    return Status::InvalidArgument(
        "type '" + lower + "' must provide parse (input) and format "
        "(output) functions");
  }
  const TypeId id = static_cast<TypeId>(
      kFirstExtensionTypeId + static_cast<int32_t>(types_.size()) - 5);
  types_.push_back({id, lower, std::move(ops)});
  names_.emplace_back(std::move(lower), id);
  return id;
}

Result<TypeId> TypeRegistry::RegisterType(
    std::string_view name, const std::function<TypeOps(TypeId)>& make_ops) {
  const TypeId next_id = static_cast<TypeId>(
      kFirstExtensionTypeId + static_cast<int32_t>(types_.size()) - 5);
  return RegisterType(name, make_ops(next_id));
}

Result<TypeId> TypeRegistry::FindByName(std::string_view name) const {
  std::string lower = ToLowerAscii(name);
  for (const auto& [existing, id] : names_) {
    if (existing == lower) return id;
  }
  return Status::NotFound("unknown type '" + lower + "'");
}

Status TypeRegistry::AddAlias(std::string_view alias, TypeId id) {
  std::string lower = ToLowerAscii(alias);
  for (const auto& [existing, existing_id] : names_) {
    if (existing == lower) {
      return Status::AlreadyExists("type name '" + lower +
                                   "' already exists");
    }
  }
  names_.emplace_back(std::move(lower), id);
  return Status::OK();
}

const TypeInfo& TypeRegistry::Get(TypeId id) const {
  return types_[SlotOf(id)];
}

std::string TypeRegistry::Format(const Datum& d) const {
  if (d.is_null()) return "NULL";
  return Get(d.type_id()).ops.format(d);
}

Result<int> TypeRegistry::Compare(const Datum& a, const Datum& b,
                                  const TxContext& ctx) const {
  if (a.type_id() != b.type_id()) {
    return Status::TypeError("cannot compare values of type '" +
                             Get(a.type_id()).name + "' and '" +
                             Get(b.type_id()).name + "'");
  }
  const TypeInfo& info = Get(a.type_id());
  if (!info.ops.compare) {
    return Status::TypeError("type '" + info.name + "' is not comparable");
  }
  return info.ops.compare(a, b, ctx);
}

Result<uint64_t> TypeRegistry::Hash(const Datum& d,
                                    const TxContext& ctx) const {
  if (d.is_null()) return uint64_t{0x9E3779B97F4A7C15ULL};
  const TypeInfo& info = Get(d.type_id());
  if (!info.ops.hash) {
    return Status::TypeError("type '" + info.name + "' is not hashable");
  }
  return info.ops.hash(d, ctx);
}

std::string TypeRegistry::Serialize(const Datum& d) const {
  std::string out;
  SerializeTo(d, &out);
  return out;
}

void TypeRegistry::SerializeTo(const Datum& d, std::string* out) const {
  if (d.is_null()) return;
  const TypeInfo& info = Get(d.type_id());
  if (info.ops.serialize) {
    info.ops.serialize(d, out);
  } else {
    out->append(info.ops.format(d));
  }
}

bool TypeRegistry::IsComparable(TypeId id) const {
  return static_cast<bool>(Get(id).ops.compare);
}

bool TypeRegistry::IsHashable(TypeId id) const {
  return static_cast<bool>(Get(id).ops.hash);
}

}  // namespace tip::engine
