#ifndef TIP_ENGINE_TYPES_DATUM_H_
#define TIP_ENGINE_TYPES_DATUM_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <variant>
#include <vector>

namespace tip::engine {

/// Identifies a SQL type known to the engine. The engine core ships only
/// the classic relational scalars; everything else — including all five
/// TIP temporal types — enters through TypeRegistry::RegisterType, which
/// hands out ids starting at `kFirstExtensionTypeId`. This is the moral
/// equivalent of an Informix DataBlade's "opaque type".
enum class TypeId : int32_t {
  kNull = 0,    // the type of a bare NULL literal
  kBool = 1,
  kInt = 2,     // 64-bit signed
  kDouble = 3,
  kString = 4,  // CHAR/VARCHAR; the engine does not enforce lengths
};

inline constexpr int32_t kFirstExtensionTypeId = 100;

/// True for ids handed out by TypeRegistry::RegisterType.
inline bool IsExtensionType(TypeId id) {
  return static_cast<int32_t>(id) >= kFirstExtensionTypeId;
}

/// Base class for extension-type payloads stored inside a Datum. A
/// DataBlade wraps its C values (Chronon, Element, ...) in a
/// TypedPayload<T> and the engine moves them around opaquely.
class ExtensionPayload {
 public:
  virtual ~ExtensionPayload() = default;
};

template <typename T>
class TypedPayload final : public ExtensionPayload {
 public:
  explicit TypedPayload(T value) : value_(std::move(value)) {}
  const T& value() const { return value_; }

 private:
  T value_;
};

/// A single SQL value: NULL, one of the builtin scalars, or an opaque
/// extension value (shared, immutable payload). Copying a Datum is cheap
/// for scalars and a refcount bump for extension values.
class Datum {
 public:
  /// Constructs SQL NULL (of the untyped kNull type).
  Datum() : type_id_(TypeId::kNull) {}

  static Datum Null() { return Datum(); }
  /// A NULL carrying a concrete type (e.g. an INT column's NULL).
  static Datum NullOf(TypeId id) {
    Datum d;
    d.type_id_ = id;
    return d;
  }
  static Datum Bool(bool v) { return Datum(TypeId::kBool, v); }
  static Datum Int(int64_t v) { return Datum(TypeId::kInt, v); }
  static Datum Double(double v) { return Datum(TypeId::kDouble, v); }
  static Datum String(std::string v) {
    return Datum(TypeId::kString, std::move(v));
  }
  static Datum Extension(TypeId id,
                         std::shared_ptr<const ExtensionPayload> payload) {
    return Datum(id, std::move(payload));
  }
  /// Wraps `value` in a TypedPayload<T> under extension type `id`.
  template <typename T>
  static Datum Make(TypeId id, T value) {
    return Extension(id, std::make_shared<TypedPayload<T>>(std::move(value)));
  }

  TypeId type_id() const { return type_id_; }
  bool is_null() const {
    return std::holds_alternative<std::monostate>(value_);
  }

  /// Typed accessors. Preconditions: !is_null() and matching type.
  bool bool_value() const { return std::get<bool>(value_); }
  int64_t int_value() const { return std::get<int64_t>(value_); }
  double double_value() const { return std::get<double>(value_); }
  const std::string& string_value() const {
    return std::get<std::string>(value_);
  }
  const ExtensionPayload& payload() const {
    return *std::get<std::shared_ptr<const ExtensionPayload>>(value_);
  }

  /// Unwraps an extension payload of known C++ type. Precondition: the
  /// datum holds a TypedPayload<T> (guaranteed after binder type checks).
  template <typename T>
  const T& extension() const {
    return static_cast<const TypedPayload<T>&>(payload()).value();
  }

 private:
  template <typename V>
  Datum(TypeId id, V v) : type_id_(id), value_(std::move(v)) {}

  TypeId type_id_;
  std::variant<std::monostate, bool, int64_t, double, std::string,
               std::shared_ptr<const ExtensionPayload>>
      value_;
};

/// A stored or in-flight tuple.
using Row = std::vector<Datum>;

}  // namespace tip::engine

#endif  // TIP_ENGINE_TYPES_DATUM_H_
