#ifndef TIP_ENGINE_TYPES_EVAL_CONTEXT_H_
#define TIP_ENGINE_TYPES_EVAL_CONTEXT_H_

#include "core/tx_context.h"

namespace tip::engine {

/// Per-statement evaluation state threaded through every routine, cast
/// and aggregate invocation. The single most important field is the
/// transaction context: it fixes the interpretation of NOW for the whole
/// statement, so a query sees one consistent "current time" no matter how
/// many NOW-relative values it touches.
struct EvalContext {
  TxContext tx;

  EvalContext() = default;
  explicit EvalContext(TxContext tx_ctx) : tx(tx_ctx) {}
};

}  // namespace tip::engine

#endif  // TIP_ENGINE_TYPES_EVAL_CONTEXT_H_
