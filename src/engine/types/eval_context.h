#ifndef TIP_ENGINE_TYPES_EVAL_CONTEXT_H_
#define TIP_ENGINE_TYPES_EVAL_CONTEXT_H_

#include <vector>

#include "common/exec_guard.h"
#include "common/status.h"
#include "core/tx_context.h"

namespace tip::engine {

class Datum;
struct SessionContext;

/// Per-statement evaluation state threaded through every routine, cast
/// and aggregate invocation. The single most important field is the
/// transaction context: it fixes the interpretation of NOW for the whole
/// statement, so a query sees one consistent "current time" no matter how
/// many NOW-relative values it touches.
struct EvalContext {
  TxContext tx;

  /// The statement's lifecycle guard (timeout / cancel / memory budget),
  /// owned by Database::Execute. Null when evaluation happens outside a
  /// guarded statement (tests, internal index maintenance) — all guard
  /// helpers below degrade to no-ops then. Parallel workers building a
  /// private EvalContext must copy this pointer from the parent context.
  ExecGuard* guard = nullptr;

  /// Host-parameter values for this execution, indexed by the ordinal
  /// slots a prepared plan assigned at plan time (BoundParam reads
  /// them). Null on the one-shot path, where `:name` placeholders fold
  /// into constants instead. Parallel workers building a private
  /// EvalContext must copy this pointer from the parent context.
  const std::vector<Datum>* params = nullptr;

  /// Session the statement executes on behalf of, or null for the
  /// engine's built-in global session (embedded client, C API, tests).
  /// Routines that change per-session state (SET handled in SQL, the
  /// statement guard) reach it through here; everything NOW-related
  /// should keep using `tx`, which was grounded from the session when
  /// the statement started.
  const SessionContext* session = nullptr;

  EvalContext() = default;
  explicit EvalContext(TxContext tx_ctx) : tx(tx_ctx) {}
  EvalContext(TxContext tx_ctx, ExecGuard* g) : tx(tx_ctx), guard(g) {}

  /// Cooperative per-row check. One relaxed atomic load when unguarded
  /// deadlines are not armed; see ExecGuard::Check.
  Status CheckGuard() {
    return guard != nullptr ? guard->Check() : Status::OK();
  }

  /// Per-morsel/batch check that always consults the clock.
  Status CheckGuardNow() {
    return guard != nullptr ? guard->CheckNow() : Status::OK();
  }

  /// Accounts statement-local buffering against the memory budget.
  Status ReserveMemory(size_t bytes) {
    return guard != nullptr ? guard->Reserve(bytes) : Status::OK();
  }

  void ReleaseMemory(size_t bytes) {
    if (guard != nullptr) guard->Release(bytes);
  }
};

}  // namespace tip::engine

#endif  // TIP_ENGINE_TYPES_EVAL_CONTEXT_H_
