#ifndef TIP_ENGINE_TYPES_TYPE_H_
#define TIP_ENGINE_TYPES_TYPE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/tx_context.h"
#include "engine/types/datum.h"

namespace tip::engine {

/// The behaviour a type contributes to the engine — the analogue of a
/// DataBlade opaque type's support functions (input, output, compare,
/// hash, send/receive). The engine calls through these hooks and never
/// looks inside extension payloads.
///
/// `compare` may consult the transaction context: comparing a Chronon to
/// a NOW-relative Instant is time-dependent, which is why the hook takes
/// a TxContext (the paper calls this behaviour out explicitly).
struct TypeOps {
  /// Input function: text literal -> value. Required.
  std::function<Result<Datum>(std::string_view)> parse;
  /// Output function: value -> text literal. Required.
  std::function<std::string(const Datum&)> format;
  /// Three-way comparison (-1/0/+1); null for incomparable types.
  std::function<Result<int>(const Datum&, const Datum&, const TxContext&)>
      compare;
  /// Hash for hash joins / grouping; null if the type is not hashable.
  /// Must be consistent with `compare` under the same TxContext — which
  /// is why it also receives the context: a NOW-relative Instant hashes
  /// its *grounded* chronon so that values that compare equal hash equal.
  std::function<Result<uint64_t>(const Datum&, const TxContext&)> hash;
  /// Binary send/receive functions: the "efficient binary format" the
  /// paper mentions. Required for storage-size accounting and the wire
  /// protocol; null falls back to the text form.
  std::function<void(const Datum&, std::string*)> serialize;
  std::function<Result<Datum>(std::string_view)> deserialize;
};

/// Catalog entry for one type.
struct TypeInfo {
  TypeId id;
  std::string name;  // canonical lower-case name, e.g. "element"
  TypeOps ops;
};

/// Name- and id-addressable registry of every type the engine knows.
/// Builtins are pre-registered; extensions (the TIP DataBlade's five
/// types) are added at install time via RegisterType.
class TypeRegistry {
 public:
  TypeRegistry();

  TypeRegistry(const TypeRegistry&) = delete;
  TypeRegistry& operator=(const TypeRegistry&) = delete;

  /// Registers an extension type under `name` (case-insensitive lookups).
  /// Fails with AlreadyExists on a duplicate name.
  Result<TypeId> RegisterType(std::string_view name, TypeOps ops);

  /// Like RegisterType, but the support functions are built by a factory
  /// that receives the freshly minted id — the usual shape for ops whose
  /// input function must construct values of the new type.
  Result<TypeId> RegisterType(
      std::string_view name,
      const std::function<TypeOps(TypeId)>& make_ops);

  /// Looks up by canonical or aliased name; NotFound on miss.
  Result<TypeId> FindByName(std::string_view name) const;

  /// Adds an alternative name for an existing type (e.g. "integer" for
  /// "int").
  Status AddAlias(std::string_view alias, TypeId id);

  /// Id lookup. Precondition: `id` was minted by this registry.
  const TypeInfo& Get(TypeId id) const;

  /// Formats `d` with its type's output function.
  std::string Format(const Datum& d) const;

  /// Compares two values of the same type; TypeError if the type has no
  /// comparison support or the ids differ.
  Result<int> Compare(const Datum& a, const Datum& b,
                      const TxContext& ctx) const;

  /// Hashes `d` under `ctx`; TypeError if the type is unhashable.
  Result<uint64_t> Hash(const Datum& d, const TxContext& ctx) const;

  /// Serializes `d` in the type's binary format (text fallback).
  std::string Serialize(const Datum& d) const;

  /// Serialize, appended to `out` — no temporary per value, for the
  /// row-image hot paths (WAL append, snapshot save).
  void SerializeTo(const Datum& d, std::string* out) const;

  /// True iff the type supports ordering comparisons.
  bool IsComparable(TypeId id) const;
  /// True iff the type supports hashing.
  bool IsHashable(TypeId id) const;

 private:
  std::vector<TypeInfo> types_;                       // indexed by slot
  std::vector<std::pair<std::string, TypeId>> names_;  // lower-case name map

  size_t SlotOf(TypeId id) const;
};

}  // namespace tip::engine

#endif  // TIP_ENGINE_TYPES_TYPE_H_
