#ifndef TIP_ENGINE_STORAGE_SNAPSHOT_H_
#define TIP_ENGINE_STORAGE_SNAPSHOT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace tip::engine {

class Database;

/// Serializes the whole catalog — schemas, rows, interval-index
/// definitions — into a single binary snapshot using each type's
/// send/receive support functions (the "efficient binary format"). NOW
/// stays symbolic in the snapshot: open-ended rows reload open-ended.
///
/// Format v2 (little-endian, length-prefixed, crash-detectable):
///   "TIPSNAP2" | #tables | per table section:
///     body length | body CRC-32 | body
///   | footer length | footer:
///     "TIPFOOT1" | #tables | payload bytes | footer CRC-32
/// where each section body is:
///     name | #columns | (column name, type name)* |
///     #indexes | (index name, column position)* |
///     #rows | per row: (null flag | payload length | payload)*
///
/// Every section CRC is verified before any table is created, so a
/// torn or bit-rotted file fails with Status::Corruption and leaves the
/// database untouched. The footer pins the table count and payload
/// size, so truncation after the last section is also detected.
///
/// Types are recorded by *name*, so a snapshot can only be restored
/// into a database with the same extensions installed (for TIP data,
/// install the DataBlade first); unknown type names fail cleanly.
Result<std::string> SaveSnapshot(const Database& db);

/// Writes SaveSnapshot's bytes crash-safely: to `path`.tmp first, then
/// fsync, then an atomic rename over `path`, then an fsync of the
/// parent directory (without which the rename itself can be rolled
/// back by a power cut) — a crash mid-save leaves any previous
/// snapshot at `path` intact. Fault points: "snapshot.open",
/// "snapshot.write", "snapshot.fsync", "snapshot.close",
/// "snapshot.rename", "snapshot.dirsync".
Status SaveSnapshotToFile(const Database& db, std::string_view path);

/// Restores a snapshot (v2 or legacy v1) into `db`. Fails with
/// Status::Corruption on any framing, bounds or checksum violation and
/// with AlreadyExists if any snapshotted table already exists (restore
/// into a fresh database). A failed load drops every table it had
/// already created: all or nothing.
Status LoadSnapshot(Database* db, std::string_view bytes);

/// Reads `path` and restores it.
Status LoadSnapshotFromFile(Database* db, std::string_view path);

/// What SalvageSnapshot managed to pull out of a damaged file.
struct SalvageReport {
  /// One section that could not be recovered, located precisely enough
  /// for an operator to inspect the damage: its position in the file,
  /// the byte offset of its body, and a best-effort table name pulled
  /// from the (possibly corrupt) body so salvage recovery can
  /// quarantine the right table instead of an anonymous slot.
  struct SkippedSection {
    size_t index = 0;
    std::string table;    // best-effort; empty when unrecoverable
    uint64_t offset = 0;  // byte offset of the section body
    std::string cause;
  };

  size_t tables_recovered = 0;
  size_t tables_skipped = 0;  // bad CRC, parse failure, or truncated
  std::string detail;         // one line per skipped section
  std::vector<SkippedSection> skipped;
};

/// Best-effort recovery from a damaged v2 snapshot: loads every table
/// section whose CRC and contents check out, skips the rest, and
/// tolerates a truncated tail or missing footer. Only the magic must be
/// intact. `report` (optional) says what was kept and what was lost.
Status SalvageSnapshot(Database* db, std::string_view bytes,
                       SalvageReport* report);

}  // namespace tip::engine

#endif  // TIP_ENGINE_STORAGE_SNAPSHOT_H_
