#ifndef TIP_ENGINE_STORAGE_SNAPSHOT_H_
#define TIP_ENGINE_STORAGE_SNAPSHOT_H_

#include <string>
#include <string_view>

#include "common/status.h"

namespace tip::engine {

class Database;

/// Serializes the whole catalog — schemas, rows, interval-index
/// definitions — into a single binary snapshot using each type's
/// send/receive support functions (the "efficient binary format"). NOW
/// stays symbolic in the snapshot: open-ended rows reload open-ended.
///
/// Format (little-endian, length-prefixed):
///   "TIPSNAP1" | #tables | per table:
///     name | #columns | (column name, type name)* |
///     #indexes | (index name, column position)* |
///     #rows | per row: (null flag | payload length | payload)*
///
/// Types are recorded by *name*, so a snapshot can only be restored
/// into a database with the same extensions installed (for TIP data,
/// install the DataBlade first); unknown type names fail cleanly.
Result<std::string> SaveSnapshot(const Database& db);

/// Writes SaveSnapshot's bytes to `path`.
Status SaveSnapshotToFile(const Database& db, std::string_view path);

/// Restores a snapshot into `db`. Fails with AlreadyExists if any
/// snapshotted table already exists (restore into a fresh database).
Status LoadSnapshot(Database* db, std::string_view bytes);

/// Reads `path` and restores it.
Status LoadSnapshotFromFile(Database* db, std::string_view path);

}  // namespace tip::engine

#endif  // TIP_ENGINE_STORAGE_SNAPSHOT_H_
