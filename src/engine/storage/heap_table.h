#ifndef TIP_ENGINE_STORAGE_HEAP_TABLE_H_
#define TIP_ENGINE_STORAGE_HEAP_TABLE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "engine/types/datum.h"

namespace tip::engine {

/// Identifies one stored row: page number in the high bits, slot within
/// the page in the low bits. Stable for the lifetime of the row (updates
/// happen in place; slots of deleted rows are not reused, mirroring a
/// heap file before VACUUM).
using RowId = uint64_t;

inline constexpr uint32_t kRowsPerPage = 256;

inline RowId MakeRowId(uint32_t page, uint32_t slot) {
  return (static_cast<uint64_t>(page) << 32) | slot;
}
inline uint32_t RowIdPage(RowId id) { return static_cast<uint32_t>(id >> 32); }
inline uint32_t RowIdSlot(RowId id) {
  return static_cast<uint32_t>(id & 0xFFFFFFFFu);
}

/// An in-memory heap file: an append-only sequence of fixed-capacity
/// pages of rows with a per-page validity bitmap. This deliberately
/// mimics the access pattern of a disk heap (page-at-a-time scans,
/// stable row ids, tombstoned deletes) so that scan-vs-index benchmark
/// shapes carry over.
class HeapTable {
 public:
  HeapTable() = default;

  HeapTable(const HeapTable&) = delete;
  HeapTable& operator=(const HeapTable&) = delete;

  /// Appends a row; returns its stable id.
  RowId Insert(Row row);

  /// Tombstones a row. NotFound if the id is invalid or already deleted.
  Status Delete(RowId id);

  /// Replaces a row in place. NotFound if the id is invalid or deleted.
  Status Update(RowId id, Row row);

  /// Fetches a live row; nullptr if deleted or out of range.
  const Row* Get(RowId id) const;

  /// Number of live rows.
  size_t row_count() const { return live_rows_; }

  /// Forward scan over live rows in row-id order.
  class Cursor {
   public:
    explicit Cursor(const HeapTable* table) : table_(table) {}

    /// Advances to the next live row; returns false at end of table.
    bool Next(RowId* id, const Row** row);

   private:
    const HeapTable* table_;
    uint32_t page_ = 0;
    uint32_t slot_ = 0;
  };

  Cursor Scan() const { return Cursor(this); }

  /// Monotonically increasing change counter; bumped by every write.
  /// Indexes use it to detect staleness.
  uint64_t version() const { return version_; }

 private:
  struct Page {
    std::vector<Row> rows;       // size() <= kRowsPerPage
    std::vector<bool> live;      // parallel validity bitmap
  };

  std::vector<std::unique_ptr<Page>> pages_;
  size_t live_rows_ = 0;
  uint64_t version_ = 0;
};

}  // namespace tip::engine

#endif  // TIP_ENGINE_STORAGE_HEAP_TABLE_H_
