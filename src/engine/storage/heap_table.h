#ifndef TIP_ENGINE_STORAGE_HEAP_TABLE_H_
#define TIP_ENGINE_STORAGE_HEAP_TABLE_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/status.h"
#include "engine/types/datum.h"

namespace tip::engine {

/// Identifies one stored row: page number in the high bits, slot within
/// the page in the low bits. Stable for the lifetime of the row (updates
/// happen in place; slots of deleted rows are not reused, mirroring a
/// heap file before VACUUM).
using RowId = uint64_t;

inline constexpr uint32_t kRowsPerPage = 256;

inline RowId MakeRowId(uint32_t page, uint32_t slot) {
  return (static_cast<uint64_t>(page) << 32) | slot;
}
inline uint32_t RowIdPage(RowId id) { return static_cast<uint32_t>(id >> 32); }
inline uint32_t RowIdSlot(RowId id) {
  return static_cast<uint32_t>(id & 0xFFFFFFFFu);
}

/// An in-memory heap file: an append-only sequence of fixed-capacity
/// pages of rows with a per-page validity bitmap. This deliberately
/// mimics the access pattern of a disk heap (page-at-a-time scans,
/// stable row ids, tombstoned deletes) so that scan-vs-index benchmark
/// shapes carry over.
class HeapTable {
 public:
  HeapTable() = default;

  HeapTable(const HeapTable&) = delete;
  HeapTable& operator=(const HeapTable&) = delete;

  /// Appends a row; returns its stable id.
  RowId Insert(Row row);

  /// Tombstones a row. NotFound if the id is invalid or already deleted.
  Status Delete(RowId id);

  /// Replaces a row in place. NotFound if the id is invalid or deleted.
  Status Update(RowId id, Row row);

  /// Fetches a live row; nullptr if deleted or out of range.
  const Row* Get(RowId id) const;

  /// Copies the live rows in scan order — the logical table contents,
  /// captured as a transaction's undo image.
  std::vector<Row> SnapshotLiveRows() const;

  /// Discards everything and re-inserts `rows` as the new contents
  /// (ROLLBACK restoring an undo image). RowIds are compacted exactly
  /// as a snapshot restore compacts them, and the version counter keeps
  /// advancing so indexes over the heap notice and rebuild.
  void ResetTo(std::vector<Row> rows);

  /// Number of live rows.
  size_t row_count() const { return live_rows_; }

  /// Number of allocated pages (the unit morsels are carved from).
  uint32_t page_count() const {
    return static_cast<uint32_t>(pages_.size());
  }

  /// Forward scan over live rows in row-id order, restricted to pages
  /// in [page_begin, page_end).
  class Cursor {
   public:
    explicit Cursor(const HeapTable* table)
        : Cursor(table, 0, table->page_count()) {}
    Cursor(const HeapTable* table, uint32_t page_begin, uint32_t page_end)
        : table_(table), page_(page_begin), page_end_(page_end) {}

    /// Advances to the next live row; returns false at end of range.
    bool Next(RowId* id, const Row** row);

   private:
    const HeapTable* table_;
    uint32_t page_;
    uint32_t page_end_;
    uint32_t slot_ = 0;
  };

  Cursor Scan() const { return Cursor(this); }
  /// Scan over the page range [page_begin, page_end) only.
  Cursor ScanPages(uint32_t page_begin, uint32_t page_end) const {
    return Cursor(this, page_begin, std::min(page_end, page_count()));
  }

  /// Monotonically increasing change counter; bumped by every write.
  /// Indexes use it to detect staleness.
  uint64_t version() const { return version_; }

  /// Hash of one row's logical content, or nullopt when hashing is
  /// currently disabled. Installed by the owning database so the heap
  /// stays ignorant of serialization.
  using RowHasher = std::function<std::optional<uint64_t>(const Row&)>;

  /// Installs (or replaces) the hasher and reseeds the running
  /// checksum from the current live rows.
  void set_row_hasher(RowHasher hasher);
  const RowHasher& row_hasher() const { return row_hasher_; }

  /// Order-independent wrapping sum of per-row hashes over the live
  /// rows, maintained incrementally by Insert/Update/Delete/ResetTo.
  /// Meaningful only while checksum_maintained() is true.
  uint64_t content_checksum() const { return content_checksum_; }

  /// False until a hasher is installed, and false again after any
  /// mutation the hasher declined to hash (checksums switched off);
  /// ReseedChecksum restores maintenance.
  bool checksum_maintained() const { return checksum_maintained_; }

  /// Recomputes the checksum from scratch over the live rows.
  void ReseedChecksum();

 private:
  struct Page {
    std::vector<Row> rows;       // size() <= kRowsPerPage
    std::vector<bool> live;      // parallel validity bitmap
  };

  void AddRowHash(const Row& row);
  void SubRowHash(const Row& row);

  std::vector<std::unique_ptr<Page>> pages_;
  size_t live_rows_ = 0;
  uint64_t version_ = 0;
  RowHasher row_hasher_;
  uint64_t content_checksum_ = 0;
  bool checksum_maintained_ = false;
};

/// One contiguous page range of a heap, claimed by a scan worker.
struct Morsel {
  uint32_t page_begin = 0;
  uint32_t page_end = 0;  // exclusive
};

/// Carves a heap into fixed-size morsels handed out atomically: any
/// number of workers call Next concurrently until the table is
/// exhausted, so fast workers naturally take more morsels than slow
/// ones (morsel-driven scheduling). The heap must not be written to
/// while a MorselSource over it is in use.
class MorselSource {
 public:
  MorselSource(const HeapTable* table, uint32_t pages_per_morsel)
      : table_(table),
        pages_per_morsel_(std::max<uint32_t>(pages_per_morsel, 1)) {}

  /// Claims the next unclaimed page range; false when the heap is
  /// exhausted. Thread-safe.
  bool Next(Morsel* out) {
    const uint32_t total = table_->page_count();
    const uint32_t begin =
        next_page_.fetch_add(pages_per_morsel_, std::memory_order_relaxed);
    if (begin >= total) return false;
    out->page_begin = begin;
    out->page_end = std::min(begin + pages_per_morsel_, total);
    return true;
  }

 private:
  const HeapTable* table_;
  const uint32_t pages_per_morsel_;
  std::atomic<uint32_t> next_page_{0};
};

}  // namespace tip::engine

#endif  // TIP_ENGINE_STORAGE_HEAP_TABLE_H_
