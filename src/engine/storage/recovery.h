#ifndef TIP_ENGINE_STORAGE_RECOVERY_H_
#define TIP_ENGINE_STORAGE_RECOVERY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "engine/storage/wal.h"
#include "engine/types/datum.h"

namespace tip::engine {

class Database;
class TypeRegistry;

/// Builders and appliers for the WAL's logical record bodies, plus the
/// checkpoint metadata file. Kept apart from Wal (which is
/// payload-agnostic framing) and from Database (which decides *when*
/// to log); this file owns *what* a record means.
///
/// Row addressing: UPDATE and DELETE records identify rows by their
/// *live ordinal* — the row's 0-based position among live rows in
/// row-id (insertion) order at the instant the statement ran — never
/// by RowId. RowIds are not stable across recovery: a snapshot compacts
/// tombstoned slots away, so the same logical row reloads under a
/// different RowId, but its live ordinal is invariant (tombstones
/// never appear in a live scan and compaction preserves order).
/// Ordinals are resolved against the pre-statement state, exactly as
/// the live execution's phase-1/phase-2 split does.

/// Appends one row's logical image (a varint-prefixed field per
/// column: 0 for NULL, n+1 for an n-byte serialized value) to `out`.
/// This is the WAL's row encoding, shared with the integrity
/// subsystem's per-row checksums so both hash exactly the same bytes.
void EncodeRowImage(const Row& row, const TypeRegistry& types,
                    std::string* out);

/// kInsert body: table | u64 n | n row images.
std::string EncodeInsertBody(const std::string& table,
                             const std::vector<Row>& rows,
                             const TypeRegistry& types);

/// kMutate body: table | u64 n_del | n_del ordinals |
///               u64 n_upd | n_upd * (ordinal | row image).
std::string EncodeMutateBody(
    const std::string& table, const std::vector<uint64_t>& delete_ordinals,
    const std::vector<std::pair<uint64_t, const Row*>>& updates,
    const TypeRegistry& types);

/// kDdl body: the statement's SQL text, verbatim.
std::string EncodeDdlBody(std::string_view sql);

/// Applies one decoded WAL record to `db`. The caller must have put
/// the database into replay mode (no re-logging). Any framing or
/// application failure is Corruption — a WAL that survived its CRC
/// checks must replay cleanly.
Status ApplyWalRecord(Database* db, const WalRecord& record);

/// Best-effort extraction of the table one WAL record targets: the
/// name prefix of kInsert/kMutate bodies, the statement's target table
/// for kDdl. Empty when the record has no single target (transaction
/// brackets, non-table DDL) or the body is too damaged to yield a
/// name. Salvage recovery uses this to quarantine the one affected
/// table instead of refusing the whole open.
std::string WalRecordTableName(const WalRecord& record);

/// The checkpoint metadata file (`CHECKPOINT` in the data directory):
/// which snapshot file is current and the LSN it covers up to
/// (exclusive). Written atomically after the snapshot rename succeeds,
/// so a crash between the two leaves the previous pairing intact.
///
/// `function_ddl` carries the CREATE FUNCTION statements live at
/// checkpoint time: snapshots store only tables, and the WAL records
/// that created the functions are about to be rotated away, so the
/// metadata file is the one atomic place they survive. Recovery
/// re-executes them after the snapshot loads, before WAL replay.
///
/// Format: "TIPCKPT1" | u64 lsn | snapshot file name |
///         u64 #functions | function DDL* | u32 CRC-32.
struct CheckpointMeta {
  uint64_t lsn = 1;
  std::string snapshot_file;
  std::vector<std::string> function_ddl;
};

/// Reads `dir`/CHECKPOINT. nullopt when the file does not exist (a
/// fresh database); Corruption when it exists but fails validation.
Result<std::optional<CheckpointMeta>> ReadCheckpointMeta(
    const std::string& dir);

/// Atomically replaces `dir`/CHECKPOINT. Fault points:
/// "checkpoint.meta.*" (the atomic-write steps).
Status WriteCheckpointMeta(const std::string& dir,
                           const CheckpointMeta& meta);

/// Deletes snapshot files in `dir` other than `keep` (stale
/// checkpoints and strays from checkpoints that crashed between the
/// snapshot rename and the metadata update). Best-effort.
void RemoveStaleSnapshots(const std::string& dir, const std::string& keep);

}  // namespace tip::engine

#endif  // TIP_ENGINE_STORAGE_RECOVERY_H_
