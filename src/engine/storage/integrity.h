#ifndef TIP_ENGINE_STORAGE_INTEGRITY_H_
#define TIP_ENGINE_STORAGE_INTEGRITY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace tip::engine {

class Database;
class Table;
struct EvalContext;

/// The online verification half of the integrity subsystem: CHECK TABLE
/// / CHECK DATABASE run these against the live engine, and the offline
/// half (VerifyDurableDir) deep-scans a durable directory's files
/// without attaching them.

/// One CHECK verdict for one object (a table, or the WAL).
struct CheckFinding {
  std::string object;
  bool ok = true;
  /// On success, a summary ("rows=12 checksum=0x... indexes=1"); on
  /// failure, what exactly disagreed and where.
  std::string detail;
};

/// Scrubs one table online:
///   * recomputes the per-row content checksum over the live rows and
///     compares it against the incrementally maintained one (reseeding
///     instead when maintenance had lapsed and checksums are enabled);
///   * cross-checks every interval index bidirectionally against the
///     heap — each live row's key must be findable through the index,
///     and each index entry must point at a live row.
/// Corruption becomes an ok=false finding, not an error status; errors
/// are reserved for the guard (cancel/timeout/memory) and for index
/// rebuild failures. `eval` carries the statement guard, so a CHECK
/// over a huge table stays cancellable; it may be null in tests.
Result<CheckFinding> CheckTable(Database* db, Table* table,
                                EvalContext* eval);

/// What an offline (or online WAL) structural scan found.
struct OfflineVerifyReport {
  uint64_t snapshot_sections = 0;  // sections whose CRC and framing held
  uint64_t wal_records = 0;        // frames whose CRC and framing held
  bool torn_tail = false;  // the WAL ends mid-frame (benign: a crashed
                           // append; recovery truncates it)
  bool open_txn_tail = false;  // the WAL ends inside a transaction
                               // bracket (benign: recovery discards it)
  /// One line per integrity violation, located by file and byte offset.
  std::vector<std::string> problems;

  bool clean() const { return problems.empty(); }
};

/// Read-only structural scan of one WAL file: header magic and CRC,
/// per-frame length and CRC, LSN monotonicity, record-kind range, and
/// transaction-bracket pairing. Never modifies the file (unlike
/// Wal::Open, which truncates torn tails), so it is safe both offline
/// and against the live log of an attached database. A trailing
/// partial frame is reported as a torn tail, not a problem; damage
/// anywhere before the tail is a problem. Returns a non-OK status only
/// for I/O failures reading the file; NotFound when it does not exist.
Status VerifyWalFile(const std::string& path, OfflineVerifyReport* report);

/// Read-only structural scan of v2 snapshot bytes: magic, table count,
/// per-section length and CRC-32, and the footer's counts and CRC.
/// Section *contents* are not decoded (that needs the type registry);
/// the CRC covers them. `label` names the file in problem lines.
void VerifySnapshotBytes(std::string_view bytes, const std::string& label,
                         OfflineVerifyReport* report);

/// Deep-scans a durable directory without attaching it: validates the
/// CHECKPOINT metadata, the snapshot it points at, and the WAL —
/// everything recovery would read, checked without side effects.
/// Returns a non-OK status only when `dir` cannot be read at all;
/// corruption goes into the report.
Status VerifyDurableDir(const std::string& dir, OfflineVerifyReport* report);

}  // namespace tip::engine

#endif  // TIP_ENGINE_STORAGE_INTEGRITY_H_
