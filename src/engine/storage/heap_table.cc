#include "engine/storage/heap_table.h"

namespace tip::engine {

RowId HeapTable::Insert(Row row) {
  if (pages_.empty() || pages_.back()->rows.size() >= kRowsPerPage) {
    pages_.push_back(std::make_unique<Page>());
    pages_.back()->rows.reserve(kRowsPerPage);
  }
  Page& page = *pages_.back();
  const uint32_t page_no = static_cast<uint32_t>(pages_.size() - 1);
  const uint32_t slot = static_cast<uint32_t>(page.rows.size());
  page.rows.push_back(std::move(row));
  page.live.push_back(true);
  AddRowHash(page.rows.back());
  ++live_rows_;
  ++version_;
  return MakeRowId(page_no, slot);
}

Status HeapTable::Delete(RowId id) {
  const uint32_t page_no = RowIdPage(id);
  const uint32_t slot = RowIdSlot(id);
  if (page_no >= pages_.size() || slot >= pages_[page_no]->rows.size() ||
      !pages_[page_no]->live[slot]) {
    return Status::NotFound("row id not found");
  }
  SubRowHash(pages_[page_no]->rows[slot]);
  pages_[page_no]->live[slot] = false;
  pages_[page_no]->rows[slot].clear();  // release value storage eagerly
  --live_rows_;
  ++version_;
  return Status::OK();
}

Status HeapTable::Update(RowId id, Row row) {
  const uint32_t page_no = RowIdPage(id);
  const uint32_t slot = RowIdSlot(id);
  if (page_no >= pages_.size() || slot >= pages_[page_no]->rows.size() ||
      !pages_[page_no]->live[slot]) {
    return Status::NotFound("row id not found");
  }
  SubRowHash(pages_[page_no]->rows[slot]);
  pages_[page_no]->rows[slot] = std::move(row);
  AddRowHash(pages_[page_no]->rows[slot]);
  ++version_;
  return Status::OK();
}

std::vector<Row> HeapTable::SnapshotLiveRows() const {
  std::vector<Row> rows;
  rows.reserve(live_rows_);
  Cursor cursor = Scan();
  RowId id;
  const Row* row;
  while (cursor.Next(&id, &row)) rows.push_back(*row);
  return rows;
}

void HeapTable::ResetTo(std::vector<Row> rows) {
  pages_.clear();
  live_rows_ = 0;
  content_checksum_ = 0;
  checksum_maintained_ = row_hasher_ != nullptr;
  ++version_;  // Insert bumps it too, but rows may be empty
  for (Row& row : rows) Insert(std::move(row));
}

void HeapTable::set_row_hasher(RowHasher hasher) {
  row_hasher_ = std::move(hasher);
  ReseedChecksum();
}

void HeapTable::ReseedChecksum() {
  content_checksum_ = 0;
  checksum_maintained_ = row_hasher_ != nullptr;
  if (!checksum_maintained_) return;
  Cursor cursor = Scan();
  RowId id;
  const Row* row;
  while (checksum_maintained_ && cursor.Next(&id, &row)) AddRowHash(*row);
}

void HeapTable::AddRowHash(const Row& row) {
  if (!checksum_maintained_) return;
  if (std::optional<uint64_t> h = row_hasher_(row)) {
    content_checksum_ += *h;
  } else {
    checksum_maintained_ = false;
    content_checksum_ = 0;
  }
}

void HeapTable::SubRowHash(const Row& row) {
  if (!checksum_maintained_) return;
  if (std::optional<uint64_t> h = row_hasher_(row)) {
    content_checksum_ -= *h;
  } else {
    checksum_maintained_ = false;
    content_checksum_ = 0;
  }
}

const Row* HeapTable::Get(RowId id) const {
  const uint32_t page_no = RowIdPage(id);
  const uint32_t slot = RowIdSlot(id);
  if (page_no >= pages_.size() || slot >= pages_[page_no]->rows.size() ||
      !pages_[page_no]->live[slot]) {
    return nullptr;
  }
  return &pages_[page_no]->rows[slot];
}

bool HeapTable::Cursor::Next(RowId* id, const Row** row) {
  while (page_ < page_end_ && page_ < table_->pages_.size()) {
    const Page& page = *table_->pages_[page_];
    while (slot_ < page.rows.size()) {
      const uint32_t slot = slot_++;
      if (page.live[slot]) {
        *id = MakeRowId(page_, slot);
        *row = &page.rows[slot];
        return true;
      }
    }
    ++page_;
    slot_ = 0;
  }
  return false;
}

}  // namespace tip::engine
