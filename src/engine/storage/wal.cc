#include "engine/storage/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/crc32.h"
#include "common/durable_fs.h"
#include "common/fault_injection.h"
#include "engine/storage/wire_format.h"

namespace tip::engine {

namespace {

constexpr char kWalMagic[] = "TIPWAL01";
constexpr size_t kMagicLen = 8;
constexpr size_t kHeaderLen = kMagicLen + 8 + 4;  // magic | start_lsn | crc
constexpr size_t kFrameHeaderLen = 4 + 4;         // length | crc
// A frame length past this is garbage, not data; treat it like any
// other broken frame (torn tail), never as an allocation request.
constexpr uint64_t kMaxRecordBytes = 1ull << 30;

std::string BuildHeader(uint64_t start_lsn) {
  std::string header(kWalMagic, kMagicLen);
  wire::PutU64(start_lsn, &header);
  wire::PutU32(Crc32(header), &header);
  return header;
}

// Writes all of `bytes` to `fd`; false on any error or short write.
bool WriteAll(int fd, std::string_view bytes) {
  size_t done = 0;
  while (done < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + done, bytes.size() - done);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    done += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

Result<WalMode> ParseWalMode(std::string_view word) {
  if (word == "off") return WalMode::kOff;
  if (word == "async") return WalMode::kAsync;
  if (word == "group") return WalMode::kGroup;
  if (word == "sync") return WalMode::kSync;
  return Status::InvalidArgument("wal_mode must be off, async, group or "
                                 "sync, got '" + std::string(word) + "'");
}

std::string_view WalModeName(WalMode mode) {
  switch (mode) {
    case WalMode::kOff: return "off";
    case WalMode::kAsync: return "async";
    case WalMode::kGroup: return "group";
    case WalMode::kSync: return "sync";
  }
  return "?";
}

std::string WalStatsSnapshot::ToString() const {
  return "records=" + std::to_string(records_appended) +
         " bytes=" + std::to_string(bytes_written) +
         " fsyncs=" + std::to_string(fsyncs) +
         " rotations=" + std::to_string(rotations) +
         " max_batch=" + std::to_string(max_batch_records);
}

Wal::Wal(std::string path, int fd, uint64_t next_lsn, uint64_t size)
    : path_(std::move(path)), fd_(fd), next_lsn_(next_lsn), size_(size) {}

Wal::~Wal() {
  if (fd_ >= 0) {
    // Best-effort: push the group-commit tail down before closing.
    if (pending_records_ > 0) ::fsync(fd_);
    ::close(fd_);
  }
}

Result<std::unique_ptr<Wal>> Wal::Open(const std::string& path,
                                       uint64_t start_lsn,
                                       std::vector<WalRecord>* existing,
                                       WalOpenReport* report) {
  WalOpenReport local;
  if (report == nullptr) report = &local;
  *report = WalOpenReport{};

  Result<std::string> bytes = fs::ReadFile(path);
  uint64_t next_lsn = start_lsn;
  uint64_t valid_end = kHeaderLen;
  if (!bytes.ok()) {
    // Only a genuinely absent file means "no log yet". Any other
    // failure (EACCES, EMFILE, a mid-read I/O error) must propagate:
    // writing a fresh header here would overwrite a log we merely
    // failed to read, silently discarding acknowledged records.
    if (bytes.status().code() != StatusCode::kNotFound) {
      return bytes.status();
    }
    // No log yet: create one durably (file + parent directory entry).
    report->created = true;
    TIP_RETURN_IF_ERROR(
        fs::AtomicWriteFile(path, BuildHeader(start_lsn), "wal.create"));
  } else {
    // Validate the header strictly: unlike the tail, it is written once
    // at creation/rotation and fsynced before use, so damage here is
    // bit rot, not a crash artifact.
    if (bytes->size() < kHeaderLen ||
        std::memcmp(bytes->data(), kWalMagic, kMagicLen) != 0) {
      return Status::Corruption("'" + path + "' is not a TIP WAL");
    }
    wire::Reader header(std::string_view(*bytes).substr(0, kHeaderLen));
    (void)header.Bytes(kMagicLen);
    TIP_ASSIGN_OR_RETURN(uint64_t file_start_lsn, header.U64());
    TIP_ASSIGN_OR_RETURN(uint32_t header_crc, header.U32());
    if (Crc32(std::string_view(*bytes).substr(0, kHeaderLen - 4)) !=
        header_crc) {
      return Status::Corruption("WAL header checksum mismatch in '" + path +
                                "'");
    }
    next_lsn = file_start_lsn;

    // Scan frames front to back. The first frame that fails any check
    // marks the torn tail; everything before it is trusted.
    std::string_view rest = std::string_view(*bytes).substr(kHeaderLen);
    while (!rest.empty()) {
      bool good = false;
      if (rest.size() >= kFrameHeaderLen) {
        uint32_t len, crc;
        std::memcpy(&len, rest.data(), 4);
        std::memcpy(&crc, rest.data() + 4, 4);
        if (len <= kMaxRecordBytes &&
            len <= rest.size() - kFrameHeaderLen) {
          std::string_view payload = rest.substr(kFrameHeaderLen, len);
          if (Crc32(payload) == crc) {
            wire::Reader r(payload);
            Result<uint64_t> lsn = r.U64();
            Result<uint8_t> kind = lsn.ok() ? r.U8() : lsn.status();
            if (kind.ok()) {
              if (*lsn != next_lsn) {
                // A CRC-valid record with the wrong sequence number is
                // not a crash artifact; refuse to guess.
                return Status::Corruption(
                    "WAL record out of sequence in '" + path + "' at byte "
                    "offset " + std::to_string(valid_end) + ": got LSN " +
                    std::to_string(*lsn) + ", want " +
                    std::to_string(next_lsn));
              }
              if (existing != nullptr) {
                WalRecord record;
                record.lsn = *lsn;
                record.kind = static_cast<WalRecordKind>(*kind);
                record.body = std::string(payload.substr(r.pos()));
                existing->push_back(std::move(record));
              }
              ++next_lsn;
              ++report->records_scanned;
              valid_end += kFrameHeaderLen + len;
              rest = rest.substr(kFrameHeaderLen + len);
              good = true;
            }
          }
        }
      }
      if (!good) {
        report->torn_tail = true;
        report->torn_bytes_truncated = bytes->size() - valid_end;
        break;
      }
    }
    if (!report->torn_tail) valid_end = bytes->size();
  }

  const int fd = ::open(path.c_str(), O_WRONLY);
  if (fd < 0) {
    return Status::Internal("cannot open WAL '" + path +
                            "' for appending: " + std::strerror(errno));
  }
  if (report->torn_tail) {
    if (::ftruncate(fd, static_cast<off_t>(valid_end)) != 0 ||
        ::fsync(fd) != 0) {
      ::close(fd);
      return Status::Internal("cannot truncate torn WAL tail in '" + path +
                              "'");
    }
  }
  if (::lseek(fd, static_cast<off_t>(valid_end), SEEK_SET) < 0) {
    ::close(fd);
    return Status::Internal("cannot seek WAL '" + path + "'");
  }
  return std::unique_ptr<Wal>(new Wal(path, fd, next_lsn, valid_end));
}

Status Wal::AppendLocked(WalRecordKind kind, std::string_view body,
                         WalMode mode, uint64_t* lsn) {
  if (broken_) {
    return Status::Internal("WAL '" + path_ +
                            "' is poisoned by an earlier I/O error");
  }
  TIP_RETURN_IF_ERROR(fault::MaybeFail("wal.append"));

  // Build the frame in one buffer: the payload is framed in place and
  // its CRC patched into the header afterwards, so the body is copied
  // once instead of twice.
  const size_t payload_len = 8 + 1 + body.size();
  std::string frame;
  frame.reserve(kFrameHeaderLen + payload_len);
  wire::PutU32(static_cast<uint32_t>(payload_len), &frame);
  wire::PutU32(0, &frame);  // CRC placeholder
  wire::PutU64(next_lsn_, &frame);
  wire::PutU8(static_cast<uint8_t>(kind), &frame);
  frame.append(body);
  const uint32_t crc =
      Crc32(std::string_view(frame).substr(kFrameHeaderLen));
  std::memcpy(frame.data() + 4, &crc, 4);

  const uint64_t offset_before = size_;
  // Rolls the frame back off the file so the durable log never holds a
  // record whose statement did not complete (replay would otherwise
  // apply it and diverge from the acknowledged history).
  auto rollback = [&] {
    if (::ftruncate(fd_, static_cast<off_t>(offset_before)) != 0 ||
        ::lseek(fd_, static_cast<off_t>(offset_before), SEEK_SET) < 0) {
      broken_ = true;
    }
    size_ = offset_before;
  };

  if (!WriteAll(fd_, frame)) {
    rollback();
    return Status::Internal("short write to WAL '" + path_ + "'");
  }
  size_ += frame.size();
  ++pending_records_;

  Status synced = Status::OK();
  if (mode == WalMode::kSync ||
      (mode == WalMode::kGroup && pending_records_ >= group_records_)) {
    synced = SyncLocked();
  }
  if (!synced.ok()) {
    // broken_ means the fdatasync itself failed: the durable extent of
    // the file is unknowable (earlier batch records may already be
    // gone from the page cache), so truncating our frame back off
    // would be theater. The poisoned log refuses everything anyway;
    // reopening re-derives the true tail from disk. An injected fault
    // fires *before* the real fsync, so there rollback is still exact.
    if (!broken_) {
      rollback();
      --pending_records_;
    }
    return synced;
  }
  *lsn = next_lsn_++;
  stats_.records_appended += 1;
  stats_.bytes_written += frame.size();
  return Status::OK();
}

Result<uint64_t> Wal::Append(WalRecordKind kind, std::string_view body,
                             WalMode mode) {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t lsn = 0;
  TIP_RETURN_IF_ERROR(AppendLocked(kind, body, mode, &lsn));
  return lsn;
}

Status Wal::SyncLocked() {
  if (pending_records_ == 0) return Status::OK();
  TIP_RETURN_IF_ERROR(fault::MaybeFail("wal.fsync"));
  // fdatasync: the commit needs the appended bytes and the file size,
  // both of which it flushes; the timestamp metadata fsync would also
  // journal is not needed to replay the log.
  if (::fdatasync(fd_) != 0) {
    // Fail-stop, the fsyncgate lesson: the kernel may have dropped the
    // dirty pages and cleared the error, so a retry would "succeed"
    // without the earlier records of this batch ever reaching disk.
    // Poison the log; the operator must reopen and recover from what is
    // actually durable.
    broken_ = true;
    return Status::Internal("fsync of WAL '" + path_ +
                            "' failed: " + std::strerror(errno));
  }
  stats_.fsyncs += 1;
  if (pending_records_ > stats_.max_batch_records) {
    stats_.max_batch_records = pending_records_;
  }
  pending_records_ = 0;
  return Status::OK();
}

Status Wal::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  return SyncLocked();
}

Status Wal::Rotate(uint64_t start_lsn) {
  std::lock_guard<std::mutex> lock(mu_);
  if (broken_) {
    return Status::Internal("WAL '" + path_ +
                            "' is poisoned by an earlier I/O error");
  }
  TIP_RETURN_IF_ERROR(fault::MaybeFail("wal.rotate"));
  // The fresh (empty) log replaces the old one atomically; a crash
  // anywhere in here leaves the old log intact and replayable against
  // the old checkpoint.
  Status written =
      fs::AtomicWriteFile(path_, BuildHeader(start_lsn), "wal.rotate");
  if (!written.ok()) {
    // We cannot tell whether the rename replaced the file before the
    // failure hit: an append through the old descriptor might land in
    // an unlinked inode and silently vanish. Refuse further writes —
    // reopening the database recovers from the published checkpoint.
    broken_ = true;
    return written;
  }
  const int fd = ::open(path_.c_str(), O_WRONLY);
  if (fd < 0) {
    broken_ = true;  // old fd points at the unlinked previous file
    return Status::Internal("cannot reopen rotated WAL '" + path_ + "'");
  }
  if (::lseek(fd, static_cast<off_t>(kHeaderLen), SEEK_SET) < 0) {
    ::close(fd);
    broken_ = true;
    return Status::Internal("cannot seek rotated WAL '" + path_ + "'");
  }
  ::close(fd_);
  fd_ = fd;
  size_ = kHeaderLen;
  next_lsn_ = start_lsn;
  pending_records_ = 0;
  stats_.rotations += 1;
  return Status::OK();
}

WalMark Wal::Mark() const {
  std::lock_guard<std::mutex> lock(mu_);
  WalMark mark;
  mark.next_lsn = next_lsn_;
  mark.size = size_;
  mark.pending_records = pending_records_;
  return mark;
}

Status Wal::ResetToMark(const WalMark& mark) {
  std::lock_guard<std::mutex> lock(mu_);
  if (broken_) {
    return Status::Internal("WAL '" + path_ +
                            "' is poisoned by an earlier I/O error");
  }
  // A mark "ahead" of the current tail means it predates a rotation;
  // rewinding through a rotation would corrupt the fresh log.
  if (mark.size > size_ || mark.next_lsn > next_lsn_) {
    return Status::Internal("WAL mark does not address this log epoch");
  }
  if (mark.size == size_) return Status::OK();  // nothing was appended
  const Status injected = fault::MaybeFail("wal.reset");
  if (!injected.ok() ||
      ::ftruncate(fd_, static_cast<off_t>(mark.size)) != 0 ||
      ::lseek(fd_, static_cast<off_t>(mark.size), SEEK_SET) < 0) {
    // The tail may or may not still hold the discarded records; refuse
    // further appends (they would land at an unknown offset). Reopening
    // re-derives the durable tail, and recovery discards the unclosed
    // bracket these records sit in.
    broken_ = true;
    return injected.ok() ? Status::Internal("cannot rewind WAL '" + path_ +
                                            "': " + std::strerror(errno))
                         : injected;
  }
  // The discarded records are no longer in the log, so the traffic
  // counters (which describe the log's contents) roll back with them;
  // fsyncs stay, they physically happened.
  stats_.records_appended -= next_lsn_ - mark.next_lsn;
  stats_.bytes_written -= size_ - mark.size;
  size_ = mark.size;
  next_lsn_ = mark.next_lsn;
  pending_records_ = mark.pending_records;
  return Status::OK();
}

uint64_t Wal::next_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_lsn_;
}

uint64_t Wal::pending_records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_records_;
}

void Wal::set_group_records(uint64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  group_records_ = n == 0 ? 1 : n;
}

uint64_t Wal::group_records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return group_records_;
}

WalStatsSnapshot Wal::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace tip::engine
