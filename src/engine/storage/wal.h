#ifndef TIP_ENGINE_STORAGE_WAL_H_
#define TIP_ENGINE_STORAGE_WAL_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace tip::engine {

/// When (and whether) a WAL append reaches stable storage before the
/// statement is acknowledged:
///   kOff    nothing is logged at all (the pre-WAL engine; data since
///           the last checkpoint dies with the process).
///   kAsync  records reach the kernel (write) but are never fsynced by
///           the append path: a process kill loses nothing, a power
///           cut may lose an unbounded tail.
///   kGroup  like kAsync, plus an fsync every `group_records` appends
///           (group commit): a power cut loses at most one batch. The
///           default for durable databases.
///   kSync   fsync on every append: an acknowledged statement is on
///           disk, full stop.
enum class WalMode { kOff, kAsync, kGroup, kSync };

/// Parses "off|async|group|sync" (lower-case); InvalidArgument else.
Result<WalMode> ParseWalMode(std::string_view word);
std::string_view WalModeName(WalMode mode);

/// Logical record kinds. The WAL is logical, not physical: row images
/// and statement text, not page deltas, so replay goes through the
/// same code paths as live execution.
enum class WalRecordKind : uint8_t {
  kInsert = 1,     // table + appended row images
  kMutate = 2,     // table + deleted/updated rows addressed by live ordinal
  kDdl = 3,        // the statement's SQL text, re-executed on replay
  kTxnBegin = 4,   // opens a transaction bracket (empty body)
  kTxnCommit = 5,  // closes the bracket; records inside it are now real
  kTxnAbort = 6,   // closes the bracket; records inside it never happened
};

/// One decoded log record. `body` is kind-specific and built/parsed by
/// the recovery layer (the WAL itself is payload-agnostic).
struct WalRecord {
  uint64_t lsn = 0;
  WalRecordKind kind = WalRecordKind::kDdl;
  std::string body;
};

/// Counters the append path maintains, surfaced via tip_wal_stats()
/// and EXPLAIN.
struct WalStatsSnapshot {
  uint64_t records_appended = 0;
  uint64_t bytes_written = 0;
  uint64_t fsyncs = 0;
  uint64_t rotations = 0;
  /// Largest number of records covered by one fsync (the group-commit
  /// batch size actually achieved).
  uint64_t max_batch_records = 0;
  std::string ToString() const;
};

/// A point in the log that ResetToMark can rewind to. Valid only while
/// no rotation happens between Mark and ResetToMark (transactions
/// refuse checkpoints, which are the only rotation source).
struct WalMark {
  uint64_t next_lsn = 0;
  uint64_t size = 0;
  uint64_t pending_records = 0;
};

/// What Wal::Open found on disk.
struct WalOpenReport {
  bool created = false;             // no log existed; a fresh one was written
  uint64_t records_scanned = 0;     // valid records found
  bool torn_tail = false;           // the file ended in a broken frame
  uint64_t torn_bytes_truncated = 0;
};

/// An append-only, CRC32-framed write-ahead log over a single file.
///
/// File layout (little-endian):
///   header: "TIPWAL01" | u64 start_lsn | u32 CRC-32 of the first 16 bytes
///   record: u32 payload length | u32 CRC-32 of payload | payload
///   payload: u64 lsn | u8 kind | body
///
/// LSNs are assigned by Append and are consecutive within a file,
/// starting at the header's start_lsn; rotation starts a fresh file at
/// a higher LSN. On open, the tail is scanned front to back and the
/// first frame that fails its length or CRC check marks the torn tail:
/// the file is truncated there (a kill -9 mid-append must lose exactly
/// the unacknowledged record, never resurrect garbage). A damaged
/// *header* is Corruption — unlike a torn tail it cannot be the result
/// of a crash mid-append, so it is never silently discarded.
///
/// Thread-safety: all methods are serialized on an internal mutex.
/// Group commit batches fsyncs across consecutive appends; Sync()
/// forces the pending batch down.
///
/// Fault points: "wal.create.*" (first creation), "wal.append",
/// "wal.fsync", "wal.rotate" and "wal.rotate.*" (the rotation's
/// atomic-write steps).
class Wal {
 public:
  static constexpr uint64_t kDefaultGroupRecords = 64;

  /// Opens the log at `path`, creating it (starting at `start_lsn`) if
  /// absent. Existing records are validated and returned through
  /// `existing` (optional); a torn tail is truncated and reported.
  static Result<std::unique_ptr<Wal>> Open(const std::string& path,
                                           uint64_t start_lsn,
                                           std::vector<WalRecord>* existing,
                                           WalOpenReport* report);

  ~Wal();

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Appends one record, assigns its LSN and applies `mode`'s sync
  /// policy before returning. On any failure the frame is rolled back
  /// off the file (the log never retains a record for a statement that
  /// was not applied), and the error is returned.
  Result<uint64_t> Append(WalRecordKind kind, std::string_view body,
                          WalMode mode);

  /// Fsyncs any records appended since the last fsync (the group-commit
  /// tail). No-op when nothing is pending. A *failed* fsync poisons the
  /// log (fail-stop): after it the kernel may have dropped the dirty
  /// pages and cleared the error, so retrying could report durability
  /// that never happened — further appends are refused and the database
  /// must be reopened to recover from what actually reached disk.
  Status Sync();

  /// Replaces the log with a fresh, empty one starting at `start_lsn`
  /// (checkpoint truncation). Atomic: a crash mid-rotate leaves the old
  /// log intact.
  Status Rotate(uint64_t start_lsn);

  /// Captures the current end of the log, to rewind to on ROLLBACK.
  WalMark Mark() const;

  /// Physically truncates the log back to `mark`, un-assigning every
  /// LSN appended since: the next Append reuses mark.next_lsn and the
  /// file is byte-for-byte what it was at Mark time. Only the owner of
  /// an open transaction may call this (appends between Mark and reset
  /// must all belong to the aborted bracket). No fsync is needed for
  /// correctness: if the truncation itself is lost to a crash, the
  /// discarded records sit in an unclosed bracket and recovery drops
  /// them anyway. A failed truncate poisons the log (the file tail is
  /// in an unknown state). Fault point: "wal.reset".
  Status ResetToMark(const WalMark& mark);

  /// The LSN the next Append will be assigned.
  uint64_t next_lsn() const;

  /// Appends not yet covered by an fsync.
  uint64_t pending_records() const;

  /// Group-commit batch size (records per fsync in kGroup mode).
  void set_group_records(uint64_t n);
  uint64_t group_records() const;

  WalStatsSnapshot stats() const;
  const std::string& path() const { return path_; }

 private:
  Wal(std::string path, int fd, uint64_t next_lsn, uint64_t size);

  Status SyncLocked();
  Status AppendLocked(WalRecordKind kind, std::string_view body,
                      WalMode mode, uint64_t* lsn);

  const std::string path_;
  mutable std::mutex mu_;
  int fd_ = -1;
  bool broken_ = false;  // an unrecoverable I/O error poisoned the log
  uint64_t next_lsn_ = 1;
  uint64_t size_ = 0;  // valid bytes in the file
  uint64_t pending_records_ = 0;
  uint64_t group_records_ = kDefaultGroupRecords;
  WalStatsSnapshot stats_;
};

}  // namespace tip::engine

#endif  // TIP_ENGINE_STORAGE_WAL_H_
