#include "engine/storage/integrity.h"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <string_view>
#include <unordered_set>
#include <utility>

#include "common/crc32.h"
#include "common/durable_fs.h"
#include "engine/catalog/catalog.h"
#include "engine/database.h"
#include "engine/storage/heap_table.h"
#include "engine/storage/recovery.h"
#include "engine/storage/wire_format.h"
#include "engine/types/eval_context.h"

namespace tip::engine {

namespace {

using wire::Reader;

std::string Hex64(uint64_t v) {
  static const char kDigits[] = "0123456789abcdef";
  std::string out = "0x";
  bool started = false;
  for (int shift = 60; shift >= 0; shift -= 4) {
    const unsigned digit = (v >> shift) & 0xF;
    if (!started && digit == 0 && shift != 0) continue;
    started = true;
    out.push_back(kDigits[digit]);
  }
  return out;
}

// -- Online table scrub ------------------------------------------------------

/// Cross-checks one interval index against the heap, both directions.
/// Appends failures to `finding`; returns non-OK only for guard trips
/// and index rebuild errors.
Status CheckOneIndex(Database* db, Table* table, const IntervalIndexDef& def,
                     EvalContext* eval, CheckFinding* finding) {
  const TxContext tx = eval != nullptr ? eval->tx : db->CurrentTx();
  TIP_ASSIGN_OR_RETURN(IntervalIndexView view,
                       table->GetIntervalIndex(def.column, tx));

  auto fail = [finding, &def](std::string what) {
    finding->ok = false;
    if (!finding->detail.empty()) finding->detail += "; ";
    finding->detail += "index '" + def.name + "': " + std::move(what);
  };

  // Backward: every entry in the index must address a live heap row.
  // One full-range probe enumerates both segments.
  std::vector<RowId> indexed;
  view.FindOverlapping(INT64_MIN, INT64_MAX, &indexed);
  std::unordered_set<RowId> indexed_set;
  indexed_set.reserve(indexed.size());
  for (RowId id : indexed) {
    if (eval != nullptr) TIP_RETURN_IF_ERROR(eval->CheckGuard());
    if (table->heap().Get(id) == nullptr) {
      fail("entry for row id " + std::to_string(id) +
           " which is not a live heap row");
    }
    indexed_set.insert(id);
  }

  // Forward: every live row whose key grounds non-empty must be
  // reachable through the index.
  HeapTable::Cursor cursor = table->heap().Scan();
  RowId id;
  const Row* row;
  while (cursor.Next(&id, &row)) {
    if (eval != nullptr) TIP_RETURN_IF_ERROR(eval->CheckGuard());
    const Datum& value = (*row)[def.column];
    if (value.is_null()) continue;
    TIP_ASSIGN_OR_RETURN(IntervalKey key, def.key_fn(value, tx));
    if (key.empty) continue;
    if (indexed_set.count(id) == 0) {
      fail("live row id " + std::to_string(id) +
           " with key [" + std::to_string(key.start) + ", " +
           std::to_string(key.end) + "] is missing from the index");
      continue;
    }
    // The entry exists; confirm the interval actually stored for it
    // covers the key (a stale segment would answer range probes
    // wrongly even though the row id is present somewhere).
    std::vector<RowId> hits;
    view.FindOverlapping(key.start, key.end, &hits);
    if (std::find(hits.begin(), hits.end(), id) == hits.end()) {
      fail("live row id " + std::to_string(id) +
           " is indexed under an interval that does not overlap its key");
    }
  }
  return Status::OK();
}

}  // namespace

Result<CheckFinding> CheckTable(Database* db, Table* table,
                                EvalContext* eval) {
  CheckFinding finding;
  finding.object = table->name();

  // Checksum leg: recompute from the live rows with the installed
  // hasher and compare against the incrementally maintained sum.
  HeapTable& heap = table->heap();
  const HeapTable::RowHasher& hasher = heap.row_hasher();
  uint64_t recomputed = 0;
  bool recompute_valid = hasher != nullptr;
  size_t rows = 0;
  if (hasher != nullptr) {
    HeapTable::Cursor cursor = heap.Scan();
    RowId id;
    const Row* row;
    while (cursor.Next(&id, &row)) {
      if (eval != nullptr) TIP_RETURN_IF_ERROR(eval->CheckGuard());
      ++rows;
      if (!recompute_valid) continue;
      std::optional<uint64_t> h = hasher(*row);
      if (h.has_value()) {
        recomputed += *h;
      } else {
        recompute_valid = false;  // checksums switched off mid-scan
      }
    }
  } else {
    rows = heap.row_count();
  }

  std::string checksum_note;
  if (!recompute_valid) {
    checksum_note = "checksums off";
  } else if (heap.checksum_maintained()) {
    if (recomputed != heap.content_checksum()) {
      finding.ok = false;
      finding.detail = "content checksum mismatch: maintained " +
                       Hex64(heap.content_checksum()) + ", recomputed " +
                       Hex64(recomputed) +
                       " over " + std::to_string(rows) + " live row(s)";
    } else {
      checksum_note = "checksum=" + Hex64(recomputed);
    }
  } else {
    // Maintenance lapsed (checksums were off for some write); the scan
    // above is already the reseed — adopt it.
    heap.ReseedChecksum();
    checksum_note = "checksum reseeded to " + Hex64(heap.content_checksum());
  }

  // Index leg: every declared interval index, both directions.
  for (const IntervalIndexDef& def : table->interval_indexes()) {
    TIP_RETURN_IF_ERROR(CheckOneIndex(db, table, def, eval, &finding));
  }

  if (finding.ok) {
    finding.detail = "rows=" + std::to_string(rows);
    if (!checksum_note.empty()) finding.detail += " " + checksum_note;
    finding.detail +=
        " indexes=" + std::to_string(table->interval_indexes().size());
  }
  return finding;
}

// -- Offline scans -----------------------------------------------------------

namespace {

constexpr size_t kMagicLen = 8;
constexpr char kWalMagic[] = "TIPWAL01";
constexpr char kSnapMagicV2[] = "TIPSNAP2";
constexpr char kFooterMagic[] = "TIPFOOT1";
constexpr size_t kWalHeaderLen = kMagicLen + 8 + 4;
constexpr size_t kWalFrameHeaderLen = 4 + 4;
constexpr uint64_t kMaxRecordBytes = 1ull << 30;
constexpr uint64_t kMaxTables = 1ull << 20;

void Problem(OfflineVerifyReport* report, const std::string& label,
             uint64_t offset, std::string what) {
  report->problems.push_back(label + " (byte offset " +
                             std::to_string(offset) + "): " +
                             std::move(what));
}

}  // namespace

Status VerifyWalFile(const std::string& path, OfflineVerifyReport* report) {
  TIP_ASSIGN_OR_RETURN(std::string bytes, fs::ReadFile(path));
  const std::string_view data(bytes);

  if (data.size() < kWalHeaderLen ||
      std::memcmp(data.data(), kWalMagic, kMagicLen) != 0) {
    Problem(report, path, 0, "WAL header magic missing or short");
    return Status::OK();
  }
  uint64_t start_lsn;
  uint32_t header_crc;
  std::memcpy(&start_lsn, data.data() + kMagicLen, 8);
  std::memcpy(&header_crc, data.data() + kMagicLen + 8, 4);
  if (Crc32(data.substr(0, kMagicLen + 8)) != header_crc) {
    Problem(report, path, 0, "WAL header checksum mismatch");
    return Status::OK();
  }

  uint64_t expected_lsn = start_lsn;
  bool in_txn = false;
  size_t pos = kWalHeaderLen;
  while (pos < data.size()) {
    if (data.size() - pos < kWalFrameHeaderLen) {
      report->torn_tail = true;  // a crashed append's partial frame
      break;
    }
    uint32_t len;
    uint32_t crc;
    std::memcpy(&len, data.data() + pos, 4);
    std::memcpy(&crc, data.data() + pos + 4, 4);
    if (len > kMaxRecordBytes || data.size() - pos - kWalFrameHeaderLen < len) {
      report->torn_tail = true;
      break;
    }
    const std::string_view payload =
        data.substr(pos + kWalFrameHeaderLen, len);
    if (Crc32(payload) != crc) {
      // A bad CRC on the *last* frame is a torn append; earlier in the
      // file — with intact frames after it — it is bit rot.
      if (pos + kWalFrameHeaderLen + len == data.size()) {
        report->torn_tail = true;
      } else {
        Problem(report, path, pos,
                "WAL frame checksum mismatch for LSN " +
                    std::to_string(expected_lsn) +
                    " (not at the tail: bit rot, not a torn append)");
      }
      break;  // framing after a bad frame cannot be trusted either way
    }
    Reader payload_reader(payload);
    Result<uint64_t> lsn = payload_reader.U64();
    Result<uint8_t> kind = payload_reader.U8();
    if (!lsn.ok() || !kind.ok()) {
      Problem(report, path, pos, "WAL frame too short for LSN and kind");
      break;
    }
    if (*lsn != expected_lsn) {
      Problem(report, path, pos,
              "WAL record out of sequence: got LSN " + std::to_string(*lsn) +
                  ", want " + std::to_string(expected_lsn));
      break;
    }
    if (*kind < 1 || *kind > 6) {
      Problem(report, path, pos,
              "WAL record " + std::to_string(*lsn) + " has unknown kind " +
                  std::to_string(*kind));
      break;
    }
    const auto record_kind = static_cast<WalRecordKind>(*kind);
    if (record_kind == WalRecordKind::kTxnBegin) {
      if (in_txn) {
        Problem(report, path, pos,
                "WAL record " + std::to_string(*lsn) +
                    ": TXN_BEGIN inside an open transaction bracket");
      }
      in_txn = true;
    } else if (record_kind == WalRecordKind::kTxnCommit ||
               record_kind == WalRecordKind::kTxnAbort) {
      if (!in_txn) {
        Problem(report, path, pos,
                "WAL record " + std::to_string(*lsn) +
                    ": bracket close without TXN_BEGIN");
      }
      in_txn = false;
    }
    ++report->wal_records;
    ++expected_lsn;
    pos += kWalFrameHeaderLen + len;
  }
  // A bracket still open at the end of the log is the normal
  // crash-before-commit shape; recovery discards it.
  report->open_txn_tail = in_txn;
  return Status::OK();
}

void VerifySnapshotBytes(std::string_view bytes, const std::string& label,
                         OfflineVerifyReport* report) {
  if (bytes.size() < kMagicLen ||
      std::memcmp(bytes.data(), kSnapMagicV2, kMagicLen) != 0) {
    Problem(report, label, 0, "snapshot v2 magic missing or short");
    return;
  }
  Reader reader(bytes.substr(kMagicLen));
  Result<uint64_t> table_count = reader.U64();
  if (!table_count.ok() || *table_count > kMaxTables) {
    Problem(report, label, kMagicLen,
            "snapshot table count missing or implausible");
    return;
  }
  for (uint64_t t = 0; t < *table_count; ++t) {
    const uint64_t section_at = kMagicLen + reader.pos();
    Result<uint64_t> len = reader.U64();
    Result<uint32_t> crc = len.ok() ? reader.U32() : len.status();
    Result<std::string_view> body =
        crc.ok() ? reader.Bytes(*len) : crc.status();
    if (!body.ok()) {
      Problem(report, label, section_at,
              "snapshot truncated in section " + std::to_string(t) + " of " +
                  std::to_string(*table_count));
      return;
    }
    if (Crc32(*body) != *crc) {
      Problem(report, label, section_at,
              "snapshot section " + std::to_string(t) +
                  " checksum mismatch (" + std::to_string(body->size()) +
                  " bytes)");
      // Framing is length-prefixed, so later sections remain locatable
      // even past a corrupt body — keep scanning for a full damage map.
      continue;
    }
    ++report->snapshot_sections;
  }
  const uint64_t payload_bytes = kMagicLen + reader.pos();
  const uint64_t footer_at = payload_bytes;
  Result<uint64_t> footer_len = reader.U64();
  Result<std::string_view> footer =
      footer_len.ok() ? reader.Bytes(*footer_len) : footer_len.status();
  if (!footer.ok()) {
    Problem(report, label, footer_at, "snapshot footer missing or truncated");
    return;
  }
  Reader f(*footer);
  Result<std::string_view> fmagic = f.Bytes(kMagicLen);
  if (!fmagic.ok() ||
      std::memcmp(fmagic->data(), kFooterMagic, kMagicLen) != 0) {
    Problem(report, label, footer_at, "snapshot footer magic mismatch");
    return;
  }
  Result<uint64_t> footer_tables = f.U64();
  Result<uint64_t> footer_payload = footer_tables.ok()
                                        ? f.U64()
                                        : footer_tables.status();
  Result<uint32_t> footer_crc =
      footer_payload.ok() ? f.U32() : footer_payload.status();
  if (!footer_crc.ok()) {
    Problem(report, label, footer_at, "snapshot footer truncated");
    return;
  }
  if (Crc32(footer->substr(0, footer->size() - 4)) != *footer_crc) {
    Problem(report, label, footer_at, "snapshot footer checksum mismatch");
    return;
  }
  if (*footer_tables != *table_count || *footer_payload != payload_bytes) {
    Problem(report, label, footer_at,
            "snapshot footer disagrees with contents (footer: " +
                std::to_string(*footer_tables) + " tables, " +
                std::to_string(*footer_payload) + " payload bytes; file: " +
                std::to_string(*table_count) + " tables, " +
                std::to_string(payload_bytes) + " payload bytes)");
    return;
  }
  if (!reader.AtEnd()) {
    Problem(report, label, kMagicLen + reader.pos(),
            "trailing bytes after snapshot footer");
  }
}

Status VerifyDurableDir(const std::string& dir,
                        OfflineVerifyReport* report) {
  // The checkpoint metadata first: it names the snapshot everything
  // else hangs off. ReadCheckpointMeta is already read-only.
  Result<std::optional<CheckpointMeta>> meta = ReadCheckpointMeta(dir);
  if (!meta.ok()) {
    report->problems.push_back(dir + "/CHECKPOINT: " +
                               std::string(meta.status().message()));
  } else if (meta->has_value()) {
    const std::string snap_path = dir + "/" + (*meta)->snapshot_file;
    Result<std::string> snap = fs::ReadFile(snap_path);
    if (!snap.ok()) {
      report->problems.push_back(
          snap_path + ": checkpointed snapshot unreadable: " +
          std::string(snap.status().message()));
    } else {
      VerifySnapshotBytes(*snap, snap_path, report);
    }
  }

  const std::string wal_path = dir + "/wal.log";
  Status wal_scanned = VerifyWalFile(wal_path, report);
  if (!wal_scanned.ok()) {
    if (wal_scanned.code() == StatusCode::kNotFound) {
      // A directory that has never been attached has no WAL; only a
      // missing WAL *next to* checkpoint state is suspicious.
      if (meta.ok() && meta->has_value()) {
        report->problems.push_back(wal_path +
                                   ": missing next to checkpoint state");
      }
    } else {
      return wal_scanned;
    }
  }
  return Status::OK();
}

}  // namespace tip::engine
