#ifndef TIP_ENGINE_STORAGE_WIRE_FORMAT_H_
#define TIP_ENGINE_STORAGE_WIRE_FORMAT_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "common/status.h"

/// The little-endian, length-prefixed wire grammar shared by the
/// snapshot and WAL file formats: fixed-width integers plus
/// u64-length-prefixed byte strings, with a bounds-checked sequential
/// reader. Kept header-only and trivial on purpose — the durability of
/// the whole system rests on this encoding being impossible to get
/// wrong.
namespace tip::engine::wire {

inline void PutU64(uint64_t v, std::string* out) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

inline void PutU32(uint32_t v, std::string* out) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

inline void PutU8(uint8_t v, std::string* out) {
  out->push_back(static_cast<char>(v));
}

inline void PutString(std::string_view s, std::string* out) {
  PutU64(s.size(), out);
  out->append(s);
}

/// LEB128 variable-width integer: 7 value bits per byte, high bit set
/// on every byte but the last. Used where an 8-byte length prefix
/// would dominate the payload (the WAL's per-value row images).
inline void PutVarint(uint64_t v, std::string* out) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>(v | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

/// Sequential reader over serialized bytes. Every read is
/// bounds-checked; running past the buffer is a Corruption, never an
/// overread.
class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  Result<uint64_t> U64() {
    if (bytes_.size() - pos_ < 8) {
      return Status::Corruption("truncated record");
    }
    uint64_t v;
    std::memcpy(&v, bytes_.data() + pos_, 8);
    pos_ += 8;
    return v;
  }

  Result<uint32_t> U32() {
    if (bytes_.size() - pos_ < 4) {
      return Status::Corruption("truncated record");
    }
    uint32_t v;
    std::memcpy(&v, bytes_.data() + pos_, 4);
    pos_ += 4;
    return v;
  }

  Result<uint8_t> U8() {
    if (bytes_.size() - pos_ < 1) {
      return Status::Corruption("truncated record");
    }
    return static_cast<uint8_t>(bytes_[pos_++]);
  }

  Result<std::string_view> Bytes(uint64_t n) {
    if (n > bytes_.size() - pos_) {
      return Status::Corruption("truncated record");
    }
    std::string_view out = bytes_.substr(pos_, n);
    pos_ += n;
    return out;
  }

  Result<std::string_view> String() {
    TIP_ASSIGN_OR_RETURN(uint64_t n, U64());
    return Bytes(n);
  }

  Result<uint64_t> Varint() {
    uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      if (pos_ >= bytes_.size()) {
        return Status::Corruption("truncated record");
      }
      const uint8_t byte = static_cast<uint8_t>(bytes_[pos_++]);
      v |= static_cast<uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) return v;
    }
    return Status::Corruption("varint runs past 64 bits");
  }

  bool AtEnd() const { return pos_ == bytes_.size(); }
  size_t remaining() const { return bytes_.size() - pos_; }
  size_t pos() const { return pos_; }

 private:
  std::string_view bytes_;
  size_t pos_ = 0;
};

}  // namespace tip::engine::wire

#endif  // TIP_ENGINE_STORAGE_WIRE_FORMAT_H_
