#include "engine/storage/snapshot.h"

#include <cctype>
#include <cstring>
#include <vector>

#include "common/crc32.h"
#include "common/durable_fs.h"
#include "common/fault_injection.h"
#include "engine/database.h"
#include "engine/storage/wire_format.h"

namespace tip::engine {

namespace {

using wire::PutString;
using wire::PutU32;
using wire::PutU64;
using wire::Reader;

constexpr char kMagicV1[] = "TIPSNAP1";
constexpr char kMagicV2[] = "TIPSNAP2";
constexpr size_t kMagicLen = 8;
constexpr char kFooterMagic[] = "TIPFOOT1";

// Structural sanity caps. A legitimate snapshot never gets near these;
// a garbage length field almost always does, so they turn attempted
// huge allocations into clean Corruption errors.
constexpr uint64_t kMaxTables = 1u << 20;
constexpr uint64_t kMaxColumns = 1u << 16;
constexpr uint64_t kMaxIndexes = 1u << 16;

/// Serializes one table into a v2 section body (also the v1 per-table
/// grammar).
Status AppendTableBody(const Database& db, const std::string& name,
                       std::string* out) {
  const TypeRegistry& types = db.types();
  TIP_ASSIGN_OR_RETURN(const Table* table, db.catalog().GetTable(name));
  PutString(table->name(), out);
  PutU64(table->columns().size(), out);
  for (const Column& col : table->columns()) {
    PutString(col.name, out);
    PutString(types.Get(col.type).name, out);
  }
  PutU64(table->interval_indexes().size(), out);
  for (const IntervalIndexDef& index : table->interval_indexes()) {
    PutString(index.name, out);
    PutU64(index.column, out);
  }
  PutU64(table->heap().row_count(), out);
  HeapTable::Cursor cursor = table->heap().Scan();
  RowId id;
  const Row* row;
  while (cursor.Next(&id, &row)) {
    for (const Datum& value : *row) {
      if (value.is_null()) {
        out->push_back(0);
        continue;
      }
      out->push_back(1);
      PutString(types.Serialize(value), out);
    }
  }
  return Status::OK();
}

/// Parses one table section body and creates the table. The body must
/// be consumed exactly. On success appends the created table's name to
/// `created` so a later failure can undo the whole load.
Status ApplyTableBody(Database* db, std::string_view body,
                      std::vector<std::string>* created) {
  Reader reader(body);
  const TypeRegistry& types = db->types();

  TIP_ASSIGN_OR_RETURN(std::string_view name, reader.String());
  TIP_ASSIGN_OR_RETURN(uint64_t column_count, reader.U64());
  // Each column needs at least two length prefixes; a count the
  // remaining bytes cannot possibly hold is garbage, and must be caught
  // BEFORE reserve() turns it into a giant allocation.
  if (column_count > kMaxColumns ||
      column_count * 16 > reader.remaining()) {
    return Status::Corruption("snapshot column count out of bounds");
  }
  std::vector<Column> columns;
  columns.reserve(column_count);
  for (uint64_t c = 0; c < column_count; ++c) {
    TIP_ASSIGN_OR_RETURN(std::string_view col_name, reader.String());
    TIP_ASSIGN_OR_RETURN(std::string_view type_name, reader.String());
    Result<TypeId> type = types.FindByName(type_name);
    if (!type.ok()) {
      return Status::NotFound(
          "snapshot uses type '" + std::string(type_name) +
          "', which is not installed (install the DataBlade first?)");
    }
    columns.push_back({std::string(col_name), *type});
  }
  if (columns.empty()) {
    return Status::Corruption("snapshot table has no columns");
  }
  TIP_ASSIGN_OR_RETURN(Table * table,
                       db->catalog().CreateTable(name, std::move(columns)));
  created->push_back(table->name());

  TIP_ASSIGN_OR_RETURN(uint64_t index_count, reader.U64());
  if (index_count > kMaxIndexes || index_count * 16 > reader.remaining()) {
    return Status::Corruption("snapshot index count out of bounds");
  }
  for (uint64_t i = 0; i < index_count; ++i) {
    TIP_ASSIGN_OR_RETURN(std::string_view index_name, reader.String());
    TIP_ASSIGN_OR_RETURN(uint64_t column, reader.U64());
    if (column >= table->columns().size()) {
      return Status::Corruption("snapshot index column out of range");
    }
    // Recreate through the same path CREATE INDEX uses so the access
    // method's key function is re-attached.
    const std::string sql = "CREATE INDEX " + std::string(index_name) +
                            " ON " + table->name() + " (" +
                            table->columns()[column].name +
                            ") USING interval";
    TIP_ASSIGN_OR_RETURN(ResultSet created_index, db->Execute(sql));
    (void)created_index;
  }

  TIP_ASSIGN_OR_RETURN(uint64_t row_count, reader.U64());
  // Each row carries at least one flag byte per column.
  const uint64_t min_bytes_per_row = table->columns().size();
  if (min_bytes_per_row != 0 &&
      row_count > reader.remaining() / min_bytes_per_row) {
    return Status::Corruption("snapshot row count out of bounds");
  }
  for (uint64_t r = 0; r < row_count; ++r) {
    Row row;
    row.reserve(table->columns().size());
    for (const Column& col : table->columns()) {
      TIP_ASSIGN_OR_RETURN(std::string_view flag, reader.Bytes(1));
      if (flag[0] == 0) {
        row.push_back(Datum::NullOf(col.type));
        continue;
      }
      if (flag[0] != 1) {
        return Status::Corruption("snapshot null flag is neither 0 nor 1");
      }
      TIP_ASSIGN_OR_RETURN(std::string_view payload, reader.String());
      const TypeOps& ops = types.Get(col.type).ops;
      Result<Datum> value = ops.deserialize ? ops.deserialize(payload)
                                            : ops.parse(payload);
      if (!value.ok()) return value.status();
      row.push_back(std::move(*value));
    }
    table->heap().Insert(std::move(row));
  }
  if (!reader.AtEnd()) {
    return Status::Corruption("trailing bytes in snapshot table section");
  }
  return Status::OK();
}

/// Undo for a failed load: drops the tables the load created, restoring
/// the all-or-nothing contract.
void DropCreated(Database* db, const std::vector<std::string>& created) {
  for (const std::string& name : created) {
    (void)db->catalog().DropTable(name);
  }
}

/// Legacy v1 loader: one unframed stream, no checksums. Kept so
/// pre-existing snapshot files stay loadable; all bounds checks apply.
Status LoadSnapshotV1(Database* db, std::string_view payload,
                      std::vector<std::string>* created) {
  Reader reader(payload);
  TIP_ASSIGN_OR_RETURN(uint64_t table_count, reader.U64());
  if (table_count > kMaxTables) {
    return Status::Corruption("snapshot table count out of bounds");
  }
  for (uint64_t t = 0; t < table_count; ++t) {
    // v1 has no section framing: each table grammar is parsed in place
    // over the rest of the stream (ApplyTableBody can't be reused — it
    // requires exact consumption of a framed body).
    TIP_ASSIGN_OR_RETURN(std::string_view rest,
                         reader.Bytes(reader.remaining()));
    Reader body(rest);
    const TypeRegistry& types = db->types();
    TIP_ASSIGN_OR_RETURN(std::string_view name, body.String());
    TIP_ASSIGN_OR_RETURN(uint64_t column_count, body.U64());
    if (column_count > kMaxColumns ||
        column_count * 16 > body.remaining()) {
      return Status::Corruption("snapshot column count out of bounds");
    }
    std::vector<Column> columns;
    columns.reserve(column_count);
    for (uint64_t c = 0; c < column_count; ++c) {
      TIP_ASSIGN_OR_RETURN(std::string_view col_name, body.String());
      TIP_ASSIGN_OR_RETURN(std::string_view type_name, body.String());
      Result<TypeId> type = types.FindByName(type_name);
      if (!type.ok()) {
        return Status::NotFound(
            "snapshot uses type '" + std::string(type_name) +
            "', which is not installed (install the DataBlade first?)");
      }
      columns.push_back({std::string(col_name), *type});
    }
    TIP_ASSIGN_OR_RETURN(Table * table,
                         db->catalog().CreateTable(name,
                                                   std::move(columns)));
    created->push_back(table->name());

    TIP_ASSIGN_OR_RETURN(uint64_t index_count, body.U64());
    if (index_count > kMaxIndexes || index_count * 16 > body.remaining()) {
      return Status::Corruption("snapshot index count out of bounds");
    }
    for (uint64_t i = 0; i < index_count; ++i) {
      TIP_ASSIGN_OR_RETURN(std::string_view index_name, body.String());
      TIP_ASSIGN_OR_RETURN(uint64_t column, body.U64());
      if (column >= table->columns().size()) {
        return Status::Corruption("snapshot index column out of range");
      }
      const std::string sql = "CREATE INDEX " + std::string(index_name) +
                              " ON " + table->name() + " (" +
                              table->columns()[column].name +
                              ") USING interval";
      TIP_ASSIGN_OR_RETURN(ResultSet created_index, db->Execute(sql));
      (void)created_index;
    }

    TIP_ASSIGN_OR_RETURN(uint64_t row_count, body.U64());
    const uint64_t min_bytes_per_row = table->columns().size();
    if (min_bytes_per_row != 0 &&
        row_count > body.remaining() / min_bytes_per_row) {
      return Status::Corruption("snapshot row count out of bounds");
    }
    for (uint64_t r = 0; r < row_count; ++r) {
      Row row;
      row.reserve(table->columns().size());
      for (const Column& col : table->columns()) {
        TIP_ASSIGN_OR_RETURN(std::string_view flag, body.Bytes(1));
        if (flag[0] == 0) {
          row.push_back(Datum::NullOf(col.type));
          continue;
        }
        if (flag[0] != 1) {
          return Status::Corruption(
              "snapshot null flag is neither 0 nor 1");
        }
        TIP_ASSIGN_OR_RETURN(std::string_view payload, body.String());
        const TypeOps& ops = types.Get(col.type).ops;
        Result<Datum> value = ops.deserialize ? ops.deserialize(payload)
                                              : ops.parse(payload);
        if (!value.ok()) return value.status();
        row.push_back(std::move(*value));
      }
      table->heap().Insert(std::move(row));
    }
    // Re-frame the outer reader to just after this table.
    reader = Reader(rest.substr(body.pos()));
  }
  if (!reader.AtEnd()) {
    return Status::Corruption("trailing bytes after snapshot");
  }
  return Status::OK();
}

/// Best-effort table name from a (possibly corrupt) section body: the
/// body starts with a length-prefixed name, and a single flipped byte
/// elsewhere in the section leaves that prefix intact, so salvage can
/// usually still say *which* table it lost. Empty when the prefix
/// itself is implausible.
std::string GuessSectionName(std::string_view body) {
  Reader reader(body);
  Result<std::string_view> name = reader.String();
  if (!name.ok() || name->empty() || name->size() > 256) return "";
  for (const char c : *name) {
    if (!std::isprint(static_cast<unsigned char>(c))) return "";
  }
  return std::string(*name);
}

/// One CRC-verified section body, located within the snapshot stream.
struct SectionRef {
  std::string_view body;
  size_t index = 0;     // position in the table-section sequence
  uint64_t offset = 0;  // byte offset of the body in the file
};

void RecordSkip(SalvageReport* report, size_t index, std::string_view table,
                uint64_t offset, std::string cause) {
  if (report == nullptr) return;
  report->tables_skipped += 1;
  report->detail += "section " + std::to_string(index) +
                    (table.empty() ? "" : " ('" + std::string(table) + "')") +
                    ": " + cause + "\n";
  SalvageReport::SkippedSection skip;
  skip.index = index;
  skip.table = std::string(table);
  skip.offset = offset;
  skip.cause = std::move(cause);
  report->skipped.push_back(std::move(skip));
}

/// Splits a v2 stream into its CRC-verified section bodies. `strict`
/// demands a valid footer and exact framing; salvage mode records
/// problems in `report` and returns whatever sections survived.
/// Fault point: "snapshot.section" (per section, fires as a checksum
/// failure would).
Status ReadV2Sections(std::string_view bytes,
                      std::vector<SectionRef>* sections, bool strict,
                      SalvageReport* report) {
  Reader reader(bytes.substr(kMagicLen));
  TIP_ASSIGN_OR_RETURN(uint64_t table_count, reader.U64());
  if (table_count > kMaxTables) {
    return Status::Corruption("snapshot table count out of bounds");
  }
  for (uint64_t t = 0; t < table_count; ++t) {
    Result<uint64_t> len = reader.U64();
    Result<uint32_t> crc = len.ok() ? reader.U32() : len.status();
    const uint64_t body_offset = kMagicLen + reader.pos();
    Result<std::string_view> body =
        crc.ok() ? reader.Bytes(*len) : crc.status();
    if (!body.ok()) {
      if (strict) {
        return Status::Corruption(
            "truncated snapshot (table section " + std::to_string(t) +
            " of " + std::to_string(table_count) + ", at byte offset " +
            std::to_string(body_offset) + ")");
      }
      if (report != nullptr) {
        RecordSkip(report, t, "", body_offset,
                   "truncated, remaining sections lost");
        report->tables_skipped += table_count - t - 1;
      }
      return Status::OK();
    }
    const bool injected = !fault::MaybeFail("snapshot.section").ok();
    if (injected || Crc32(*body) != *crc) {
      const std::string cause =
          injected ? "injected section fault" : "checksum mismatch";
      const std::string guessed = GuessSectionName(*body);
      if (strict) {
        return Status::Corruption(
            "snapshot section " + std::to_string(t) +
            (guessed.empty() ? "" : " ('" + guessed + "')") + " " + cause +
            " at byte offset " + std::to_string(body_offset) + " (" +
            std::to_string(body->size()) + " bytes)");
      }
      RecordSkip(report, t, guessed, body_offset, cause);
      continue;
    }
    sections->push_back({*body, static_cast<size_t>(t), body_offset});
  }
  // Footer: length-prefixed so a reader can confirm the file really
  // ends where the writer intended.
  const size_t payload_bytes = kMagicLen + reader.pos();
  Result<uint64_t> footer_len = reader.U64();
  Result<std::string_view> footer =
      footer_len.ok() ? reader.Bytes(*footer_len) : footer_len.status();
  Status footer_status = Status::OK();
  if (!footer.ok()) {
    footer_status = Status::Corruption("truncated snapshot (missing footer)");
  } else {
    Reader f(*footer);
    Result<std::string_view> magic = f.Bytes(kMagicLen);
    if (!magic.ok() ||
        std::memcmp(magic->data(), kFooterMagic, kMagicLen) != 0) {
      footer_status = Status::Corruption("snapshot footer magic mismatch");
    } else {
      TIP_ASSIGN_OR_RETURN(uint64_t footer_tables, f.U64());
      TIP_ASSIGN_OR_RETURN(uint64_t footer_payload, f.U64());
      TIP_ASSIGN_OR_RETURN(uint32_t footer_crc, f.U32());
      const std::string_view footer_head =
          footer->substr(0, footer->size() - 4);
      if (Crc32(footer_head) != footer_crc) {
        footer_status = Status::Corruption("snapshot footer checksum "
                                           "mismatch");
      } else if (footer_tables != table_count ||
                 footer_payload != payload_bytes) {
        footer_status =
            Status::Corruption("snapshot footer disagrees with contents");
      } else if (!f.AtEnd() || !reader.AtEnd()) {
        footer_status =
            Status::Corruption("trailing bytes after snapshot footer");
      }
    }
  }
  if (!footer_status.ok()) {
    if (strict) return footer_status;
    if (report != nullptr) {
      report->detail += std::string(footer_status.message()) + "\n";
    }
  }
  return Status::OK();
}

}  // namespace

Result<std::string> SaveSnapshot(const Database& db) {
  std::string out(kMagicV2, kMagicLen);
  const std::vector<std::string> names = db.catalog().TableNames();
  PutU64(names.size(), &out);
  for (const std::string& name : names) {
    std::string body;
    TIP_RETURN_IF_ERROR(AppendTableBody(db, name, &body));
    PutU64(body.size(), &out);
    PutU32(Crc32(body), &out);
    out.append(body);
  }
  std::string footer(kFooterMagic, kMagicLen);
  PutU64(names.size(), &footer);
  PutU64(out.size(), &footer);
  PutU32(Crc32(footer), &footer);
  PutU64(footer.size(), &out);
  out.append(footer);
  return out;
}

Status SaveSnapshotToFile(const Database& db, std::string_view path) {
  TIP_ASSIGN_OR_RETURN(std::string bytes, SaveSnapshot(db));

  // Crash safety: write + fsync a temp file, atomically rename it over
  // the destination, then fsync the parent directory (the rename alone
  // is not durable on ext4/XFS). A crash at any point leaves either the
  // old snapshot or the complete new one — never a torn file — and the
  // fault points let tests kill the save at each step.
  return fs::AtomicWriteFile(std::string(path), bytes, "snapshot");
}

Status LoadSnapshot(Database* db, std::string_view bytes) {
  if (bytes.size() < kMagicLen) {
    return Status::Corruption("not a TIP snapshot");
  }
  std::vector<std::string> created;
  if (std::memcmp(bytes.data(), kMagicV1, kMagicLen) == 0) {
    Status s = LoadSnapshotV1(db, bytes.substr(kMagicLen), &created);
    if (!s.ok()) DropCreated(db, created);
    return s;
  }
  if (std::memcmp(bytes.data(), kMagicV2, kMagicLen) != 0) {
    return Status::Corruption("not a TIP snapshot");
  }

  // Phase 1: verify all framing and checksums before touching the
  // catalog, so most corrupt files fail with the database untouched.
  std::vector<SectionRef> sections;
  TIP_RETURN_IF_ERROR(
      ReadV2Sections(bytes, &sections, /*strict=*/true, nullptr));

  // Phase 2: apply. Section contents can still fail (unknown type,
  // name collision), in which case everything created so far is
  // dropped.
  for (const SectionRef& section : sections) {
    Status s = ApplyTableBody(db, section.body, &created);
    if (!s.ok()) {
      DropCreated(db, created);
      return Annotate(s, "snapshot section " +
                             std::to_string(section.index) +
                             " (byte offset " +
                             std::to_string(section.offset) + ")");
    }
  }
  return Status::OK();
}

Status LoadSnapshotFromFile(Database* db, std::string_view path) {
  Result<std::string> bytes = fs::ReadFile(std::string(path));
  if (!bytes.ok()) {
    return Annotate(bytes.status(), "snapshot '" + std::string(path) + "'");
  }
  Status s = LoadSnapshot(db, *bytes);
  if (!s.ok()) return Annotate(s, "snapshot '" + std::string(path) + "'");
  return s;
}

Status SalvageSnapshot(Database* db, std::string_view bytes,
                       SalvageReport* report) {
  SalvageReport local;
  if (report == nullptr) report = &local;
  *report = SalvageReport{};
  if (bytes.size() < kMagicLen ||
      std::memcmp(bytes.data(), kMagicV2, kMagicLen) != 0) {
    return Status::Corruption("not a TIP v2 snapshot");
  }
  std::vector<SectionRef> sections;
  TIP_RETURN_IF_ERROR(
      ReadV2Sections(bytes, &sections, /*strict=*/false, report));
  for (const SectionRef& section : sections) {
    // Per-table isolation: a section that fails to apply is dropped
    // (with its half-created table) without giving up on the rest.
    std::vector<std::string> created;
    Status s = ApplyTableBody(db, section.body, &created);
    if (!s.ok()) {
      DropCreated(db, created);
      RecordSkip(report, section.index, GuessSectionName(section.body),
                 section.offset, std::string(s.message()));
      continue;
    }
    report->tables_recovered += 1;
  }
  return Status::OK();
}

}  // namespace tip::engine
