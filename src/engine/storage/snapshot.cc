#include "engine/storage/snapshot.h"

#include <cstdio>
#include <cstring>

#include "engine/database.h"

namespace tip::engine {

namespace {

constexpr char kMagic[] = "TIPSNAP1";
constexpr size_t kMagicLen = 8;

void PutU64(uint64_t v, std::string* out) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

void PutString(std::string_view s, std::string* out) {
  PutU64(s.size(), out);
  out->append(s);
}

/// Sequential reader over the snapshot bytes with bounds checking.
class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  Result<uint64_t> U64() {
    if (pos_ + 8 > bytes_.size()) {
      return Status::InvalidArgument("truncated snapshot");
    }
    uint64_t v;
    std::memcpy(&v, bytes_.data() + pos_, 8);
    pos_ += 8;
    return v;
  }

  Result<std::string_view> Bytes(uint64_t n) {
    if (n > bytes_.size() - pos_) {
      return Status::InvalidArgument("truncated snapshot");
    }
    std::string_view out = bytes_.substr(pos_, n);
    pos_ += n;
    return out;
  }

  Result<std::string_view> String() {
    TIP_ASSIGN_OR_RETURN(uint64_t n, U64());
    return Bytes(n);
  }

  bool AtEnd() const { return pos_ == bytes_.size(); }

 private:
  std::string_view bytes_;
  size_t pos_ = 0;
};

}  // namespace

Result<std::string> SaveSnapshot(const Database& db) {
  const TypeRegistry& types = db.types();
  std::string out(kMagic, kMagicLen);
  const std::vector<std::string> names = db.catalog().TableNames();
  PutU64(names.size(), &out);
  for (const std::string& name : names) {
    TIP_ASSIGN_OR_RETURN(const Table* table, db.catalog().GetTable(name));
    PutString(table->name(), &out);
    PutU64(table->columns().size(), &out);
    for (const Column& col : table->columns()) {
      PutString(col.name, &out);
      PutString(types.Get(col.type).name, &out);
    }
    PutU64(table->interval_indexes().size(), &out);
    for (const IntervalIndexDef& index : table->interval_indexes()) {
      PutString(index.name, &out);
      PutU64(index.column, &out);
    }
    PutU64(table->heap().row_count(), &out);
    HeapTable::Cursor cursor = table->heap().Scan();
    RowId id;
    const Row* row;
    while (cursor.Next(&id, &row)) {
      for (const Datum& value : *row) {
        if (value.is_null()) {
          out.push_back(0);
          continue;
        }
        out.push_back(1);
        PutString(types.Serialize(value), &out);
      }
    }
  }
  return out;
}

Status SaveSnapshotToFile(const Database& db, std::string_view path) {
  TIP_ASSIGN_OR_RETURN(std::string bytes, SaveSnapshot(db));
  std::FILE* f = std::fopen(std::string(path).c_str(), "wb");
  if (f == nullptr) {
    return Status::InvalidArgument("cannot open '" + std::string(path) +
                                   "' for writing");
  }
  const size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  const int close_rc = std::fclose(f);
  if (written != bytes.size() || close_rc != 0) {
    return Status::Internal("short write to '" + std::string(path) + "'");
  }
  return Status::OK();
}

Status LoadSnapshot(Database* db, std::string_view bytes) {
  if (bytes.size() < kMagicLen ||
      std::memcmp(bytes.data(), kMagic, kMagicLen) != 0) {
    return Status::InvalidArgument("not a TIP snapshot");
  }
  Reader reader(bytes.substr(kMagicLen));
  const TypeRegistry& types = db->types();

  TIP_ASSIGN_OR_RETURN(uint64_t table_count, reader.U64());
  for (uint64_t t = 0; t < table_count; ++t) {
    TIP_ASSIGN_OR_RETURN(std::string_view name, reader.String());
    TIP_ASSIGN_OR_RETURN(uint64_t column_count, reader.U64());
    std::vector<Column> columns;
    columns.reserve(column_count);
    for (uint64_t c = 0; c < column_count; ++c) {
      TIP_ASSIGN_OR_RETURN(std::string_view col_name, reader.String());
      TIP_ASSIGN_OR_RETURN(std::string_view type_name, reader.String());
      Result<TypeId> type = types.FindByName(type_name);
      if (!type.ok()) {
        return Status::NotFound(
            "snapshot uses type '" + std::string(type_name) +
            "', which is not installed (install the DataBlade first?)");
      }
      columns.push_back({std::string(col_name), *type});
    }
    TIP_ASSIGN_OR_RETURN(Table * table,
                         db->catalog().CreateTable(name,
                                                   std::move(columns)));

    TIP_ASSIGN_OR_RETURN(uint64_t index_count, reader.U64());
    for (uint64_t i = 0; i < index_count; ++i) {
      TIP_ASSIGN_OR_RETURN(std::string_view index_name, reader.String());
      TIP_ASSIGN_OR_RETURN(uint64_t column, reader.U64());
      if (column >= table->columns().size()) {
        return Status::InvalidArgument("snapshot index column out of "
                                       "range");
      }
      // Recreate through the same path CREATE INDEX uses so the access
      // method's key function is re-attached.
      const std::string sql = "CREATE INDEX " + std::string(index_name) +
                              " ON " + table->name() + " (" +
                              table->columns()[column].name +
                              ") USING interval";
      TIP_ASSIGN_OR_RETURN(ResultSet created, db->Execute(sql));
      (void)created;
    }

    TIP_ASSIGN_OR_RETURN(uint64_t row_count, reader.U64());
    for (uint64_t r = 0; r < row_count; ++r) {
      Row row;
      row.reserve(table->columns().size());
      for (const Column& col : table->columns()) {
        TIP_ASSIGN_OR_RETURN(std::string_view flag, reader.Bytes(1));
        if (flag[0] == 0) {
          row.push_back(Datum::NullOf(col.type));
          continue;
        }
        TIP_ASSIGN_OR_RETURN(std::string_view payload, reader.String());
        const TypeOps& ops = types.Get(col.type).ops;
        Result<Datum> value = ops.deserialize
                                  ? ops.deserialize(payload)
                                  : ops.parse(payload);
        if (!value.ok()) return value.status();
        row.push_back(std::move(*value));
      }
      table->heap().Insert(std::move(row));
    }
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after snapshot");
  }
  return Status::OK();
}

Status LoadSnapshotFromFile(Database* db, std::string_view path) {
  std::FILE* f = std::fopen(std::string(path).c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("cannot open '" + std::string(path) + "'");
  }
  std::string bytes;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    bytes.append(buf, n);
  }
  std::fclose(f);
  return LoadSnapshot(db, bytes);
}

}  // namespace tip::engine
