#include "engine/storage/recovery.h"

#include <dirent.h>
#include <unistd.h>

#include <cstring>

#include "common/crc32.h"
#include "common/durable_fs.h"
#include "common/fault_injection.h"
#include "engine/database.h"
#include "engine/sql/parser.h"
#include "engine/storage/wire_format.h"

namespace tip::engine {

namespace {

constexpr char kCheckpointMagic[] = "TIPCKPT1";
constexpr size_t kCheckpointMagicLen = 8;
constexpr char kCheckpointFile[] = "CHECKPOINT";

// Same sanity cap the snapshot loader uses: a garbage count field must
// become a clean Corruption, never an allocation attempt.
constexpr uint64_t kMaxRowsPerRecord = 1ull << 32;
constexpr uint64_t kMaxFunctions = 1ull << 16;

Result<Row> ReadRowImage(wire::Reader* reader, const Table& table,
                         const TypeRegistry& types) {
  Row row;
  row.reserve(table.columns().size());
  for (const Column& col : table.columns()) {
    TIP_ASSIGN_OR_RETURN(uint64_t prefix, reader->Varint());
    if (prefix == 0) {
      row.push_back(Datum::NullOf(col.type));
      continue;
    }
    TIP_ASSIGN_OR_RETURN(std::string_view payload,
                         reader->Bytes(prefix - 1));
    const TypeOps& ops = types.Get(col.type).ops;
    Result<Datum> value =
        ops.deserialize ? ops.deserialize(payload) : ops.parse(payload);
    if (!value.ok()) return value.status();
    row.push_back(std::move(*value));
  }
  return row;
}

/// RowIds of `table`'s live rows in scan order — the mapping the
/// mutate record's ordinals index into. Rebuilt per record: cheap
/// relative to replay as a whole and always consistent with the state
/// the preceding records produced.
std::vector<RowId> LiveRowIds(const Table& table) {
  std::vector<RowId> ids;
  ids.reserve(table.heap().row_count());
  HeapTable::Cursor cursor = table.heap().Scan();
  RowId id;
  const Row* row;
  while (cursor.Next(&id, &row)) ids.push_back(id);
  return ids;
}

Status ApplyInsert(Database* db, std::string_view body) {
  wire::Reader reader(body);
  TIP_ASSIGN_OR_RETURN(std::string_view table_name, reader.String());
  TIP_ASSIGN_OR_RETURN(Table * table, db->catalog().GetTable(table_name));
  TIP_ASSIGN_OR_RETURN(uint64_t n, reader.U64());
  if (n > kMaxRowsPerRecord) {
    return Status::Corruption("WAL insert row count is implausible for "
                              "table '" + table->name() + "'");
  }
  for (uint64_t i = 0; i < n; ++i) {
    TIP_ASSIGN_OR_RETURN(Row row, ReadRowImage(&reader, *table, db->types()));
    table->heap().Insert(std::move(row));
  }
  if (!reader.AtEnd()) {
    return Status::Corruption("trailing bytes in WAL insert record for "
                              "table '" + table->name() + "'");
  }
  return Status::OK();
}

Status ApplyMutate(Database* db, std::string_view body) {
  wire::Reader reader(body);
  TIP_ASSIGN_OR_RETURN(std::string_view table_name, reader.String());
  TIP_ASSIGN_OR_RETURN(Table * table, db->catalog().GetTable(table_name));

  TIP_ASSIGN_OR_RETURN(uint64_t n_del, reader.U64());
  if (n_del > kMaxRowsPerRecord) {
    return Status::Corruption("WAL delete count is implausible");
  }
  std::vector<uint64_t> delete_ordinals(n_del);
  for (uint64_t i = 0; i < n_del; ++i) {
    TIP_ASSIGN_OR_RETURN(delete_ordinals[i], reader.U64());
  }

  TIP_ASSIGN_OR_RETURN(uint64_t n_upd, reader.U64());
  if (n_upd > kMaxRowsPerRecord) {
    return Status::Corruption("WAL update count is implausible");
  }
  std::vector<std::pair<uint64_t, Row>> updates;
  updates.reserve(n_upd);
  for (uint64_t i = 0; i < n_upd; ++i) {
    TIP_ASSIGN_OR_RETURN(uint64_t ordinal, reader.U64());
    TIP_ASSIGN_OR_RETURN(Row row, ReadRowImage(&reader, *table, db->types()));
    updates.emplace_back(ordinal, std::move(row));
  }
  if (!reader.AtEnd()) {
    return Status::Corruption("trailing bytes in WAL mutate record for "
                              "table '" + table->name() + "'");
  }

  // Every ordinal addresses the *pre-statement* state, so resolve them
  // all before touching the heap (tombstoning does not move RowIds, but
  // resolving up front also makes the ordering below irrelevant to
  // correctness — it merely mirrors live execution: deletes, then
  // updates).
  const std::vector<RowId> live = LiveRowIds(*table);
  auto resolve = [&](uint64_t ordinal) -> Result<RowId> {
    if (ordinal >= live.size()) {
      return Status::Corruption(
          "WAL mutate ordinal " + std::to_string(ordinal) +
          " out of range (" + std::to_string(live.size()) +
          " live rows in table '" + table->name() + "')");
    }
    return live[ordinal];
  };
  for (uint64_t ordinal : delete_ordinals) {
    TIP_ASSIGN_OR_RETURN(RowId id, resolve(ordinal));
    TIP_RETURN_IF_ERROR(table->heap().Delete(id));
  }
  for (auto& [ordinal, row] : updates) {
    TIP_ASSIGN_OR_RETURN(RowId id, resolve(ordinal));
    TIP_RETURN_IF_ERROR(table->heap().Update(id, std::move(row)));
  }
  return Status::OK();
}

}  // namespace

// The WAL pays this image per logged row, so the prefix is a single
// byte for typical values where the old flag + u64 length pair cost
// nine — about a third of the whole record for narrow rows, and the
// fsync flushes every byte of it.
void EncodeRowImage(const Row& row, const TypeRegistry& types,
                    std::string* out) {
  for (const Datum& value : row) {
    if (value.is_null()) {
      wire::PutVarint(0, out);
      continue;
    }
    // Serialize straight into the body: this runs once per value per
    // logged statement, and the per-value temporary Serialize would
    // hand back is measurable. The one-byte prefix guess is patched
    // with a memmove in the rare case the value needs a longer one.
    const size_t prefix_pos = out->size();
    out->push_back(0);
    types.SerializeTo(value, out);
    const uint64_t len = out->size() - prefix_pos - 1;
    if (len + 1 < 0x80) {
      (*out)[prefix_pos] = static_cast<char>(len + 1);
    } else {
      std::string prefix;
      wire::PutVarint(len + 1, &prefix);
      out->replace(prefix_pos, 1, prefix);
    }
  }
}

std::string EncodeInsertBody(const std::string& table,
                             const std::vector<Row>& rows,
                             const TypeRegistry& types) {
  std::string body;
  wire::PutString(table, &body);
  wire::PutU64(rows.size(), &body);
  for (const Row& row : rows) EncodeRowImage(row, types, &body);
  return body;
}

std::string EncodeMutateBody(
    const std::string& table, const std::vector<uint64_t>& delete_ordinals,
    const std::vector<std::pair<uint64_t, const Row*>>& updates,
    const TypeRegistry& types) {
  std::string body;
  wire::PutString(table, &body);
  wire::PutU64(delete_ordinals.size(), &body);
  for (uint64_t ordinal : delete_ordinals) wire::PutU64(ordinal, &body);
  wire::PutU64(updates.size(), &body);
  for (const auto& [ordinal, row] : updates) {
    wire::PutU64(ordinal, &body);
    EncodeRowImage(*row, types, &body);
  }
  return body;
}

std::string EncodeDdlBody(std::string_view sql) { return std::string(sql); }

Status ApplyWalRecord(Database* db, const WalRecord& record) {
  switch (record.kind) {
    case WalRecordKind::kInsert:
      TIP_RETURN_IF_ERROR(fault::MaybeFail("recovery.apply"));
      return ApplyInsert(db, record.body);
    case WalRecordKind::kMutate:
      TIP_RETURN_IF_ERROR(fault::MaybeFail("recovery.apply"));
      return ApplyMutate(db, record.body);
    case WalRecordKind::kDdl: {
      TIP_RETURN_IF_ERROR(fault::MaybeFail("recovery.apply"));
      Result<ResultSet> result = db->Execute(record.body);
      return result.status();
    }
    case WalRecordKind::kTxnBegin:
    case WalRecordKind::kTxnCommit:
    case WalRecordKind::kTxnAbort:
      // Brackets carry no state; the replay loop in AttachDurableDir
      // consumes them to decide which records to apply. One reaching
      // this applier means that loop mis-parsed the bracket structure.
      return Status::Corruption("transaction bracket record applied as data");
  }
  return Status::Corruption("unknown WAL record kind " +
                            std::to_string(static_cast<int>(record.kind)));
}

std::string WalRecordTableName(const WalRecord& record) {
  switch (record.kind) {
    case WalRecordKind::kInsert:
    case WalRecordKind::kMutate: {
      wire::Reader reader(record.body);
      Result<std::string_view> name = reader.String();
      if (!name.ok()) return "";
      return std::string(*name);
    }
    case WalRecordKind::kDdl: {
      Result<Statement> stmt = ParseStatement(record.body);
      if (!stmt.ok()) return "";
      return stmt->table;
    }
    case WalRecordKind::kTxnBegin:
    case WalRecordKind::kTxnCommit:
    case WalRecordKind::kTxnAbort:
      return "";
  }
  return "";
}

Result<std::optional<CheckpointMeta>> ReadCheckpointMeta(
    const std::string& dir) {
  const std::string path = dir + "/" + kCheckpointFile;
  Result<std::string> bytes = fs::ReadFile(path);
  if (!bytes.ok()) {
    if (bytes.status().code() == StatusCode::kNotFound) {
      return std::optional<CheckpointMeta>();
    }
    return bytes.status();
  }
  // The metadata file is tiny and rewritten atomically, so unlike the
  // WAL tail there is no benign way for it to be damaged: anything
  // short of full validation is Corruption.
  if (bytes->size() < kCheckpointMagicLen + 4 ||
      std::memcmp(bytes->data(), kCheckpointMagic, kCheckpointMagicLen) != 0) {
    return Status::Corruption("'" + path + "' is not a TIP checkpoint");
  }
  const std::string_view framed(*bytes);
  uint32_t crc;
  std::memcpy(&crc, bytes->data() + bytes->size() - 4, 4);
  if (Crc32(framed.substr(0, framed.size() - 4)) != crc) {
    return Status::Corruption("checkpoint metadata checksum mismatch in '" +
                              path + "' (" + std::to_string(bytes->size()) +
                              " bytes)");
  }
  wire::Reader reader(framed.substr(kCheckpointMagicLen,
                                    framed.size() - kCheckpointMagicLen - 4));
  auto parse = [&]() -> Result<CheckpointMeta> {
    CheckpointMeta meta;
    TIP_ASSIGN_OR_RETURN(meta.lsn, reader.U64());
    TIP_ASSIGN_OR_RETURN(std::string_view file, reader.String());
    meta.snapshot_file = std::string(file);
    TIP_ASSIGN_OR_RETURN(uint64_t n_fn, reader.U64());
    if (n_fn > kMaxFunctions) {
      return Status::Corruption("checkpoint function count is implausible");
    }
    meta.function_ddl.reserve(n_fn);
    for (uint64_t i = 0; i < n_fn; ++i) {
      TIP_ASSIGN_OR_RETURN(std::string_view ddl, reader.String());
      meta.function_ddl.emplace_back(ddl);
    }
    if (!reader.AtEnd()) {
      return Status::Corruption("trailing bytes in checkpoint metadata");
    }
    if (meta.snapshot_file.empty() ||
        meta.snapshot_file.find('/') != std::string::npos) {
      return Status::Corruption("checkpoint names an implausible snapshot "
                                "file '" + meta.snapshot_file + "'");
    }
    return meta;
  };
  Result<CheckpointMeta> meta = parse();
  if (!meta.ok()) {
    return Annotate(meta.status(),
                    "'" + path + "' (offset " +
                        std::to_string(kCheckpointMagicLen + reader.pos()) +
                        ")");
  }
  return std::optional<CheckpointMeta>(std::move(*meta));
}

Status WriteCheckpointMeta(const std::string& dir,
                           const CheckpointMeta& meta) {
  std::string bytes(kCheckpointMagic, kCheckpointMagicLen);
  wire::PutU64(meta.lsn, &bytes);
  wire::PutString(meta.snapshot_file, &bytes);
  wire::PutU64(meta.function_ddl.size(), &bytes);
  for (const std::string& ddl : meta.function_ddl) {
    wire::PutString(ddl, &bytes);
  }
  wire::PutU32(Crc32(bytes), &bytes);
  return fs::AtomicWriteFile(dir + "/" + kCheckpointFile, bytes,
                             "checkpoint.meta");
}

void RemoveStaleSnapshots(const std::string& dir, const std::string& keep) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return;
  std::vector<std::string> stale;
  while (struct dirent* entry = ::readdir(d)) {
    const std::string_view name(entry->d_name);
    if (name.size() < 13) continue;  // "snapshot." + x + ".tip"
    if (name.substr(0, 9) != "snapshot.") continue;
    if (name.substr(name.size() - 4) != ".tip" &&
        name.substr(name.size() - 8) != ".tip.tmp") {
      continue;
    }
    if (name == keep) continue;
    stale.emplace_back(name);
  }
  ::closedir(d);
  for (const std::string& name : stale) {
    ::unlink((dir + "/" + name).c_str());
  }
}

}  // namespace tip::engine
