#include "engine/index/segmented_index.h"

#include <utility>

#include "common/fault_injection.h"

namespace tip::engine {

std::string IndexStatsSnapshot::ToString() const {
  return "absolute_builds=" + std::to_string(absolute_builds) +
         " overlay_builds=" + std::to_string(overlay_builds) +
         " probes=" + std::to_string(probes) +
         " rows_scanned=" + std::to_string(rows_scanned) +
         " rows_returned=" + std::to_string(rows_returned);
}

IndexStatsSnapshot IndexStats::Snapshot() const {
  IndexStatsSnapshot out;
  out.absolute_builds = absolute_builds_.load(std::memory_order_relaxed);
  out.overlay_builds = overlay_builds_.load(std::memory_order_relaxed);
  out.probes = probes_.load(std::memory_order_relaxed);
  out.rows_scanned = rows_scanned_.load(std::memory_order_relaxed);
  out.rows_returned = rows_returned_.load(std::memory_order_relaxed);
  return out;
}

void IntervalIndexView::FindOverlapping(int64_t qs, int64_t qe,
                                        std::vector<RowId>* out) const {
  const size_t before = out->size();
  if (absolute_ != nullptr) absolute_->FindOverlapping(qs, qe, out);
  if (overlay_ != nullptr) overlay_->FindOverlapping(qs, qe, out);
  if (stats_ != nullptr) stats_->RecordProbe(out->size() - before);
}

size_t IntervalIndexView::entry_count() const {
  size_t n = 0;
  if (absolute_ != nullptr) n += absolute_->entry_count();
  if (overlay_ != nullptr) n += overlay_->entry_count();
  return n;
}

Result<IntervalIndexView> IntervalIndexState::GetView(
    const HeapTable& heap, size_t column, const IntervalKeyFn& key_fn,
    const TxContext& ctx) {
  std::lock_guard<std::mutex> lock(mu_);
  const int64_t now = ctx.now.seconds();

  if (!absolute_valid_ || built_version_ != heap.version()) {
    // Full rebuild: one scan partitions the rows into the persistent
    // absolute segment and the NOW-dependent overlay. Everything is
    // staged in locals and swapped in only on success.
    std::vector<IntervalEntry> absolute_entries;
    std::vector<IntervalEntry> overlay_entries;
    std::vector<RowId> now_rows;
    absolute_entries.reserve(heap.row_count());
    uint64_t scanned = 0;
    HeapTable::Cursor cursor = heap.Scan();
    RowId id;
    const Row* row;
    while (cursor.Next(&id, &row)) {
      ++scanned;
      const Datum& value = (*row)[column];
      if (value.is_null()) continue;
      TIP_ASSIGN_OR_RETURN(IntervalKey key, key_fn(value, ctx));
      if (key.now_dependent) {
        now_rows.push_back(id);
        if (!key.empty) {
          overlay_entries.push_back(IntervalEntry{key.start, key.end, id});
        }
      } else if (!key.empty) {
        // "integrity.indexentry" is the fault matrix's index-rot site:
        // a fired fault records the entry under a wrong row id, so the
        // built segment diverges from the heap exactly as a rotted
        // index page would — CHECK's cross-check must catch both the
        // phantom entry and the now-unindexed live row.
        if (!fault::MaybeFail("integrity.indexentry").ok()) id = ~id;
        absolute_entries.push_back(IntervalEntry{key.start, key.end, id});
      }
    }
    absolute_ = std::make_shared<const IntervalIndex>(
        IntervalIndex::Build(std::move(absolute_entries)));
    now_rows_ = std::move(now_rows);
    overlay_ = now_rows_.empty()
                   ? nullptr
                   : std::make_shared<const IntervalIndex>(
                         IntervalIndex::Build(std::move(overlay_entries)));
    built_version_ = heap.version();
    absolute_valid_ = true;
    overlay_now_ = now;
    overlay_valid_ = true;
    stats_->RecordAbsoluteBuild(scanned);
    if (!now_rows_.empty()) stats_->RecordOverlayBuild(0);
  } else if (!now_rows_.empty() &&
             (!overlay_valid_ || overlay_now_ != now)) {
    // The heap is unchanged but the transaction time moved: re-ground
    // only the NOW-dependent rows. An all-absolute index skips this
    // entirely — its answers are NOW-invariant.
    std::vector<IntervalEntry> overlay_entries;
    overlay_entries.reserve(now_rows_.size());
    for (RowId id : now_rows_) {
      const Row* row = heap.Get(id);
      if (row == nullptr) continue;  // unreachable: version unchanged
      const Datum& value = (*row)[column];
      if (value.is_null()) continue;
      TIP_ASSIGN_OR_RETURN(IntervalKey key, key_fn(value, ctx));
      if (!key.empty) {
        overlay_entries.push_back(IntervalEntry{key.start, key.end, id});
      }
    }
    overlay_ = std::make_shared<const IntervalIndex>(
        IntervalIndex::Build(std::move(overlay_entries)));
    overlay_now_ = now;
    overlay_valid_ = true;
    stats_->RecordOverlayBuild(now_rows_.size());
  }

  return IntervalIndexView(absolute_, overlay_, stats_);
}

}  // namespace tip::engine
