#ifndef TIP_ENGINE_INDEX_SEGMENTED_INDEX_H_
#define TIP_ENGINE_INDEX_SEGMENTED_INDEX_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/tx_context.h"
#include "engine/index/interval_index.h"
#include "engine/storage/heap_table.h"
#include "engine/types/datum.h"

namespace tip::engine {

/// The index key an access-method support function extracts from one
/// value: the closed bounding interval of the time the value covers, or
/// "empty" when it covers none under the given context (an empty
/// Element, or a NOW-relative period that grounds inverted). The
/// `now_dependent` bit reports whether the key is a function of the
/// transaction time — a NOW-relative value's bounding interval moves as
/// NOW does, an absolute value's never does. The segmented index uses it
/// to decide which segment a row belongs to.
struct IntervalKey {
  int64_t start = 0;
  int64_t end = 0;  // inclusive; meaningful only when !empty
  bool empty = false;
  bool now_dependent = false;

  static IntervalKey Bounds(int64_t start, int64_t end, bool now_dependent) {
    IntervalKey key;
    key.start = start;
    key.end = end;
    key.now_dependent = now_dependent;
    return key;
  }
  /// A value covering no time. It still carries `now_dependent`: an
  /// empty NOW-relative value may become non-empty under another NOW.
  static IntervalKey Empty(bool now_dependent) {
    IntervalKey key;
    key.empty = true;
    key.now_dependent = now_dependent;
    return key;
  }
};

/// Extracts the IntervalKey of an indexable value (grounded under
/// `ctx`). This is the "access method support function" an index
/// DataBlade registers for its types. NULL datums are never passed in.
using IntervalKeyFn =
    std::function<Result<IntervalKey>(const Datum&, const TxContext&)>;

/// A point-in-time copy of one index's counters.
struct IndexStatsSnapshot {
  uint64_t absolute_builds = 0;  // full scans building the absolute segment
  uint64_t overlay_builds = 0;   // NOW-dependent overlay (re)builds
  uint64_t probes = 0;           // FindOverlapping/FindStabbing calls
  uint64_t rows_scanned = 0;     // heap rows examined during builds
  uint64_t rows_returned = 0;    // candidate row ids produced by probes

  /// `absolute_builds=1 overlay_builds=0 probes=3 ...` — the format
  /// tip_index_stats() returns and EXPLAIN prints.
  std::string ToString() const;
};

/// Monotonic per-index counters. Probes run outside the rebuild mutex,
/// so the counters are atomics; rebuild counters reuse them for
/// uniformity.
class IndexStats {
 public:
  void RecordAbsoluteBuild(uint64_t rows_scanned) {
    absolute_builds_.fetch_add(1, std::memory_order_relaxed);
    rows_scanned_.fetch_add(rows_scanned, std::memory_order_relaxed);
  }
  void RecordOverlayBuild(uint64_t rows_scanned) {
    overlay_builds_.fetch_add(1, std::memory_order_relaxed);
    rows_scanned_.fetch_add(rows_scanned, std::memory_order_relaxed);
  }
  void RecordProbe(uint64_t rows_returned) {
    probes_.fetch_add(1, std::memory_order_relaxed);
    rows_returned_.fetch_add(rows_returned, std::memory_order_relaxed);
  }

  IndexStatsSnapshot Snapshot() const;

 private:
  std::atomic<uint64_t> absolute_builds_{0};
  std::atomic<uint64_t> overlay_builds_{0};
  std::atomic<uint64_t> probes_{0};
  std::atomic<uint64_t> rows_scanned_{0};
  std::atomic<uint64_t> rows_returned_{0};
};

/// An immutable probe view over the two segments of a segmented
/// interval index, consistent as of one (heap version, NOW) pair.
/// Copyable and cheap: it shares ownership of both trees, so a view
/// stays valid even if a concurrent query swaps fresh segments into the
/// owning state.
class IntervalIndexView {
 public:
  IntervalIndexView() = default;
  IntervalIndexView(std::shared_ptr<const IntervalIndex> absolute,
                    std::shared_ptr<const IntervalIndex> overlay,
                    std::shared_ptr<IndexStats> stats)
      : absolute_(std::move(absolute)),
        overlay_(std::move(overlay)),
        stats_(std::move(stats)) {}

  /// Appends the rows of every entry overlapping [qs, qe] from both
  /// segments to `out` (order unspecified). Requires qs <= qe.
  void FindOverlapping(int64_t qs, int64_t qe, std::vector<RowId>* out) const;

  /// Appends the rows of every entry containing chronon `q`.
  void FindStabbing(int64_t q, std::vector<RowId>* out) const {
    FindOverlapping(q, q, out);
  }

  /// Total entries across both segments.
  size_t entry_count() const;

 private:
  std::shared_ptr<const IntervalIndex> absolute_;
  std::shared_ptr<const IntervalIndex> overlay_;  // null: no NOW-dependent rows
  std::shared_ptr<IndexStats> stats_;
};

/// The lazily built, mutex-guarded state of one segmented interval
/// index:
///
///  * the *absolute segment* — rows whose key does not depend on NOW —
///    built once per heap version and reused across NOW changes;
///  * the *NOW-dependent overlay* — the (typically few) rows whose key
///    moves with the transaction time — rebuilt whenever the NOW a
///    query runs under differs from the one the overlay was built at.
///
/// This is what keeps the paper's NOW-override what-if browsing cheap:
/// re-evaluating the same query under many transaction times re-grounds
/// only the NOW-relative rows instead of rebuilding the whole index.
///
/// Rebuilds are atomic: segments are constructed into locals and only
/// swapped in on success, so a key-extraction error mid-rebuild leaves
/// the previous consistent state untouched. All rebuild decisions and
/// swaps happen under an internal mutex, making concurrent GetView
/// calls from multiple query threads safe.
class IntervalIndexState {
 public:
  IntervalIndexState() = default;

  IntervalIndexState(const IntervalIndexState&) = delete;
  IntervalIndexState& operator=(const IntervalIndexState&) = delete;

  /// Returns a probe view consistent with `heap`'s current version and
  /// `ctx`'s transaction time, rebuilding the stale segment(s) first.
  /// `column` selects the indexed column; `key_fn` extracts keys.
  Result<IntervalIndexView> GetView(const HeapTable& heap, size_t column,
                                    const IntervalKeyFn& key_fn,
                                    const TxContext& ctx);

  IndexStatsSnapshot stats() const { return stats_->Snapshot(); }

 private:
  std::mutex mu_;

  // Absolute segment, valid iff absolute_valid_ for heap version
  // built_version_. now_rows_ lists the rows excluded from it because
  // their keys depend on NOW (the overlay's domain).
  bool absolute_valid_ = false;
  uint64_t built_version_ = 0;
  std::shared_ptr<const IntervalIndex> absolute_;
  std::vector<RowId> now_rows_;

  // Overlay over now_rows_, valid iff overlay_valid_ for transaction
  // time overlay_now_. The explicit flag (not a magic built_now value)
  // is what distinguishes "never built" from "built at the epoch".
  bool overlay_valid_ = false;
  int64_t overlay_now_ = 0;
  std::shared_ptr<const IntervalIndex> overlay_;

  std::shared_ptr<IndexStats> stats_ = std::make_shared<IndexStats>();
};

}  // namespace tip::engine

#endif  // TIP_ENGINE_INDEX_SEGMENTED_INDEX_H_
