#include "engine/index/interval_index.h"

#include <algorithm>
#include <cassert>

namespace tip::engine {

IntervalIndex IntervalIndex::Build(std::vector<IntervalEntry> entries) {
  IntervalIndex index;
  index.entry_count_ = entries.size();
  index.root_ = BuildNode(std::move(entries));
  return index;
}

std::unique_ptr<IntervalIndex::Node> IntervalIndex::BuildNode(
    std::vector<IntervalEntry> entries) {
  if (entries.empty()) return nullptr;

  // Use the median interval start as the center; this keeps the tree
  // balanced for the common case of roughly uniform starts.
  std::vector<int64_t> starts;
  starts.reserve(entries.size());
  for (const IntervalEntry& e : entries) starts.push_back(e.start);
  auto mid = starts.begin() + static_cast<ptrdiff_t>(starts.size() / 2);
  std::nth_element(starts.begin(), mid, starts.end());
  const int64_t center = *mid;

  auto node = std::make_unique<Node>();
  node->center = center;
  std::vector<IntervalEntry> left_entries;
  std::vector<IntervalEntry> right_entries;
  for (IntervalEntry& e : entries) {
    if (e.end < center) {
      left_entries.push_back(e);
    } else if (e.start > center) {
      right_entries.push_back(e);
    } else {
      node->by_start.push_back(e);
    }
  }
  // Degenerate safeguard: if every interval straddles the center, the
  // recursion terminates because both child vectors are empty.
  node->by_end = node->by_start;
  std::sort(node->by_start.begin(), node->by_start.end(),
            [](const IntervalEntry& a, const IntervalEntry& b) {
              return a.start < b.start;
            });
  std::sort(node->by_end.begin(), node->by_end.end(),
            [](const IntervalEntry& a, const IntervalEntry& b) {
              return a.end > b.end;
            });
  node->left = BuildNode(std::move(left_entries));
  node->right = BuildNode(std::move(right_entries));
  return node;
}

void IntervalIndex::Query(const Node* node, int64_t qs, int64_t qe,
                          std::vector<RowId>* out) {
  while (node != nullptr) {
    if (qe < node->center) {
      // Only intervals starting at or before qe can overlap the query.
      for (const IntervalEntry& e : node->by_start) {
        if (e.start > qe) break;
        out->push_back(e.row);
      }
      node = node->left.get();
    } else if (qs > node->center) {
      // Only intervals ending at or after qs can overlap the query.
      for (const IntervalEntry& e : node->by_end) {
        if (e.end < qs) break;
        out->push_back(e.row);
      }
      node = node->right.get();
    } else {
      // The query straddles the center: every interval here overlaps.
      for (const IntervalEntry& e : node->by_start) {
        out->push_back(e.row);
      }
      Query(node->left.get(), qs, qe, out);
      node = node->right.get();
    }
  }
}

void IntervalIndex::FindOverlapping(int64_t qs, int64_t qe,
                                    std::vector<RowId>* out) const {
  assert(qs <= qe);
  Query(root_.get(), qs, qe, out);
}

void IntervalIndex::FindStabbing(int64_t q, std::vector<RowId>* out) const {
  FindOverlapping(q, q, out);
}

}  // namespace tip::engine
