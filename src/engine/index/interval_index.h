#ifndef TIP_ENGINE_INDEX_INTERVAL_INDEX_H_
#define TIP_ENGINE_INDEX_INTERVAL_INDEX_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "engine/storage/heap_table.h"

namespace tip::engine {

/// One indexed entry: a closed interval and the row that owns it.
struct IntervalEntry {
  int64_t start;
  int64_t end;  // inclusive; start <= end
  RowId row;
};

/// A static interval tree over closed int64 intervals, answering
/// "which entries overlap [qs, qe]?" in O(log n + k). This plays the
/// role of the period-timestamp index DataBlade of Bliujute et al.
/// (ICDE'99), which the paper cites as related work: TIP's Element
/// columns are indexed by their bounding period.
///
/// The tree is the classic centered structure: each node stores the
/// intervals containing its center chronon, sorted both by start and by
/// end, with strictly-left / strictly-right subtrees.
class IntervalIndex {
 public:
  IntervalIndex() = default;

  IntervalIndex(const IntervalIndex&) = delete;
  IntervalIndex& operator=(const IntervalIndex&) = delete;
  IntervalIndex(IntervalIndex&&) = default;
  IntervalIndex& operator=(IntervalIndex&&) = default;

  /// Builds the tree from scratch. O(n log n).
  static IntervalIndex Build(std::vector<IntervalEntry> entries);

  /// Appends the rows of every entry overlapping [qs, qe] to `out`
  /// (order unspecified). Requires qs <= qe.
  void FindOverlapping(int64_t qs, int64_t qe,
                       std::vector<RowId>* out) const;

  /// Appends the rows of every entry containing chronon `q` ("timeslice"
  /// lookups). Equivalent to FindOverlapping(q, q).
  void FindStabbing(int64_t q, std::vector<RowId>* out) const;

  size_t entry_count() const { return entry_count_; }
  bool empty() const { return root_ == nullptr; }

 private:
  struct Node {
    int64_t center;
    /// Intervals containing `center`, sorted ascending by start.
    std::vector<IntervalEntry> by_start;
    /// The same intervals, sorted descending by end.
    std::vector<IntervalEntry> by_end;
    std::unique_ptr<Node> left;   // intervals entirely < center
    std::unique_ptr<Node> right;  // intervals entirely > center
  };

  static std::unique_ptr<Node> BuildNode(std::vector<IntervalEntry> entries);
  static void Query(const Node* node, int64_t qs, int64_t qe,
                    std::vector<RowId>* out);

  std::unique_ptr<Node> root_;
  size_t entry_count_ = 0;
};

}  // namespace tip::engine

#endif  // TIP_ENGINE_INDEX_INTERVAL_INDEX_H_
