#include <atomic>
#include <chrono>
#include <cmath>
#include <memory>
#include <string>
#include <thread>

#include "common/string_util.h"
#include "engine/database.h"
#include "engine/storage/integrity.h"

namespace tip::engine {

namespace {

// -- Scalar helpers ----------------------------------------------------------

Result<int64_t> CheckedAdd(int64_t a, int64_t b) {
  int64_t out;
  if (__builtin_add_overflow(a, b, &out)) {
    return Status::OutOfRange("integer addition overflow");
  }
  return out;
}

Result<int64_t> CheckedSub(int64_t a, int64_t b) {
  int64_t out;
  if (__builtin_sub_overflow(a, b, &out)) {
    return Status::OutOfRange("integer subtraction overflow");
  }
  return out;
}

Result<int64_t> CheckedMul(int64_t a, int64_t b) {
  int64_t out;
  if (__builtin_mul_overflow(a, b, &out)) {
    return Status::OutOfRange("integer multiplication overflow");
  }
  return out;
}

// SQL LIKE: '%' matches any run (including empty), '_' any one
// character. Iterative two-pointer matching with single-'%'
// backtracking — linear for patterns without nested wildcard overlap.
bool LikeMatch(std::string_view text, std::string_view pattern) {
  size_t t = 0, p = 0;
  size_t star_p = std::string_view::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string_view::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

Routine MakeRoutine(std::string name, std::vector<TypeId> params,
                    TypeId result, RoutineFn fn) {
  Routine r;
  r.name = std::move(name);
  r.params = std::move(params);
  r.result = result;
  r.fn = std::move(fn);
  return r;
}

Status RegisterArithmetic(Database* db) {
  RoutineRegistry& reg = db->routines();
  const TypeId i = TypeId::kInt, d = TypeId::kDouble, s = TypeId::kString;

  TIP_RETURN_IF_ERROR(reg.Register(MakeRoutine(
      "+", {i, i}, i,
      [](const std::vector<Datum>& a, EvalContext&) -> Result<Datum> {
        TIP_ASSIGN_OR_RETURN(int64_t v,
                             CheckedAdd(a[0].int_value(), a[1].int_value()));
        return Datum::Int(v);
      })));
  TIP_RETURN_IF_ERROR(reg.Register(MakeRoutine(
      "+", {d, d}, d,
      [](const std::vector<Datum>& a, EvalContext&) -> Result<Datum> {
        return Datum::Double(a[0].double_value() + a[1].double_value());
      })));
  TIP_RETURN_IF_ERROR(reg.Register(MakeRoutine(
      "-", {i, i}, i,
      [](const std::vector<Datum>& a, EvalContext&) -> Result<Datum> {
        TIP_ASSIGN_OR_RETURN(int64_t v,
                             CheckedSub(a[0].int_value(), a[1].int_value()));
        return Datum::Int(v);
      })));
  TIP_RETURN_IF_ERROR(reg.Register(MakeRoutine(
      "-", {d, d}, d,
      [](const std::vector<Datum>& a, EvalContext&) -> Result<Datum> {
        return Datum::Double(a[0].double_value() - a[1].double_value());
      })));
  TIP_RETURN_IF_ERROR(reg.Register(MakeRoutine(
      "*", {i, i}, i,
      [](const std::vector<Datum>& a, EvalContext&) -> Result<Datum> {
        TIP_ASSIGN_OR_RETURN(int64_t v,
                             CheckedMul(a[0].int_value(), a[1].int_value()));
        return Datum::Int(v);
      })));
  TIP_RETURN_IF_ERROR(reg.Register(MakeRoutine(
      "*", {d, d}, d,
      [](const std::vector<Datum>& a, EvalContext&) -> Result<Datum> {
        return Datum::Double(a[0].double_value() * a[1].double_value());
      })));
  TIP_RETURN_IF_ERROR(reg.Register(MakeRoutine(
      "/", {i, i}, i,
      [](const std::vector<Datum>& a, EvalContext&) -> Result<Datum> {
        if (a[1].int_value() == 0) {
          return Status::InvalidArgument("division by zero");
        }
        if (a[0].int_value() == INT64_MIN && a[1].int_value() == -1) {
          return Status::OutOfRange("integer division overflow");
        }
        return Datum::Int(a[0].int_value() / a[1].int_value());
      })));
  TIP_RETURN_IF_ERROR(reg.Register(MakeRoutine(
      "/", {d, d}, d,
      [](const std::vector<Datum>& a, EvalContext&) -> Result<Datum> {
        if (a[1].double_value() == 0.0) {
          return Status::InvalidArgument("division by zero");
        }
        return Datum::Double(a[0].double_value() / a[1].double_value());
      })));
  TIP_RETURN_IF_ERROR(reg.Register(MakeRoutine(
      "neg", {i}, i,
      [](const std::vector<Datum>& a, EvalContext&) -> Result<Datum> {
        if (a[0].int_value() == INT64_MIN) {
          return Status::OutOfRange("integer negation overflow");
        }
        return Datum::Int(-a[0].int_value());
      })));
  TIP_RETURN_IF_ERROR(reg.Register(MakeRoutine(
      "neg", {d}, d,
      [](const std::vector<Datum>& a, EvalContext&) -> Result<Datum> {
        return Datum::Double(-a[0].double_value());
      })));
  TIP_RETURN_IF_ERROR(reg.Register(MakeRoutine(
      "mod", {i, i}, i,
      [](const std::vector<Datum>& a, EvalContext&) -> Result<Datum> {
        if (a[1].int_value() == 0) {
          return Status::InvalidArgument("modulo by zero");
        }
        if (a[0].int_value() == INT64_MIN && a[1].int_value() == -1) {
          return Datum::Int(0);
        }
        return Datum::Int(a[0].int_value() % a[1].int_value());
      })));
  TIP_RETURN_IF_ERROR(reg.Register(MakeRoutine(
      "abs", {i}, i,
      [](const std::vector<Datum>& a, EvalContext&) -> Result<Datum> {
        if (a[0].int_value() == INT64_MIN) {
          return Status::OutOfRange("abs overflow");
        }
        return Datum::Int(a[0].int_value() < 0 ? -a[0].int_value()
                                               : a[0].int_value());
      })));
  TIP_RETURN_IF_ERROR(reg.Register(MakeRoutine(
      "abs", {d}, d,
      [](const std::vector<Datum>& a, EvalContext&) -> Result<Datum> {
        return Datum::Double(std::fabs(a[0].double_value()));
      })));

  // greatest / least over the orderable builtins (the layered baseline's
  // temporal-join translation leans on these).
  struct MinMaxSpec {
    TypeId type;
    bool greatest;
  };
  for (TypeId t : {i, d, s}) {
    for (bool greatest : {true, false}) {
      const TypeRegistry* types = &db->types();
      TIP_RETURN_IF_ERROR(reg.Register(MakeRoutine(
          greatest ? "greatest" : "least", {t, t}, t,
          [types, greatest](const std::vector<Datum>& a,
                            EvalContext& ctx) -> Result<Datum> {
            TIP_ASSIGN_OR_RETURN(int c,
                                 types->Compare(a[0], a[1], ctx.tx));
            return (c >= 0) == greatest ? a[0] : a[1];
          })));
    }
  }

  // String routines.
  TIP_RETURN_IF_ERROR(reg.Register(MakeRoutine(
      "||", {s, s}, s,
      [](const std::vector<Datum>& a, EvalContext&) -> Result<Datum> {
        return Datum::String(a[0].string_value() + a[1].string_value());
      })));
  TIP_RETURN_IF_ERROR(reg.Register(MakeRoutine(
      "length", {s}, i,
      [](const std::vector<Datum>& a, EvalContext&) -> Result<Datum> {
        return Datum::Int(static_cast<int64_t>(a[0].string_value().size()));
      })));
  TIP_RETURN_IF_ERROR(reg.Register(MakeRoutine(
      "lower", {s}, s,
      [](const std::vector<Datum>& a, EvalContext&) -> Result<Datum> {
        return Datum::String(ToLowerAscii(a[0].string_value()));
      })));
  TIP_RETURN_IF_ERROR(reg.Register(MakeRoutine(
      "upper", {s}, s,
      [](const std::vector<Datum>& a, EvalContext&) -> Result<Datum> {
        return Datum::String(ToUpperAscii(a[0].string_value()));
      })));
  TIP_RETURN_IF_ERROR(reg.Register(MakeRoutine(
      "like", {s, s}, TypeId::kBool,
      [](const std::vector<Datum>& a, EvalContext&) -> Result<Datum> {
        return Datum::Bool(LikeMatch(a[0].string_value(),
                                     a[1].string_value()));
      })));
  return Status::OK();
}

Status RegisterCasts(Database* db) {
  CastRegistry& reg = db->casts();
  // INT widens to DOUBLE implicitly; narrowing is explicit.
  TIP_RETURN_IF_ERROR(reg.Register(
      TypeId::kInt, TypeId::kDouble, /*implicit=*/true,
      [](const Datum& v, EvalContext&) -> Result<Datum> {
        return Datum::Double(static_cast<double>(v.int_value()));
      }));
  TIP_RETURN_IF_ERROR(reg.Register(
      TypeId::kDouble, TypeId::kInt, /*implicit=*/false,
      [](const Datum& v, EvalContext&) -> Result<Datum> {
        const double x = v.double_value();
        if (!(x >= -9.2233720368547758e18 && x <= 9.2233720368547758e18)) {
          return Status::OutOfRange("DOUBLE value out of INT range");
        }
        return Datum::Int(static_cast<int64_t>(x));
      }));
  TIP_RETURN_IF_ERROR(reg.Register(
      TypeId::kString, TypeId::kInt, /*implicit=*/false,
      [](const Datum& v, EvalContext&) -> Result<Datum> {
        TIP_ASSIGN_OR_RETURN(int64_t x, ParseInt64(v.string_value()));
        return Datum::Int(x);
      }));
  TIP_RETURN_IF_ERROR(reg.Register(
      TypeId::kString, TypeId::kDouble, /*implicit=*/false,
      [](const Datum& v, EvalContext&) -> Result<Datum> {
        TIP_ASSIGN_OR_RETURN(double x, ParseDouble(v.string_value()));
        return Datum::Double(x);
      }));
  TIP_RETURN_IF_ERROR(reg.Register(
      TypeId::kInt, TypeId::kString, /*implicit=*/false,
      [](const Datum& v, EvalContext&) -> Result<Datum> {
        return Datum::String(std::to_string(v.int_value()));
      }));
  TIP_RETURN_IF_ERROR(reg.Register(
      TypeId::kBool, TypeId::kString, /*implicit=*/false,
      [](const Datum& v, EvalContext&) -> Result<Datum> {
        return Datum::String(v.bool_value() ? "true" : "false");
      }));
  return Status::OK();
}

// -- Aggregates --------------------------------------------------------------

class CountState final : public AggregateState {
 public:
  Status Step(const Datum&, EvalContext&) override {
    ++count_;
    return Status::OK();
  }
  Result<Datum> Final(EvalContext&) override { return Datum::Int(count_); }
  Status Merge(AggregateState&& other, EvalContext&) override {
    count_ += static_cast<CountState&>(other).count_;
    return Status::OK();
  }

 private:
  int64_t count_ = 0;
};

class SumIntState final : public AggregateState {
 public:
  Status Step(const Datum& v, EvalContext&) override {
    TIP_ASSIGN_OR_RETURN(sum_, CheckedAdd(sum_, v.int_value()));
    seen_ = true;
    return Status::OK();
  }
  Result<Datum> Final(EvalContext&) override {
    // SQL: SUM over the empty set is NULL.
    return seen_ ? Datum::Int(sum_) : Datum::NullOf(TypeId::kInt);
  }
  Status Merge(AggregateState&& other, EvalContext&) override {
    const SumIntState& o = static_cast<SumIntState&>(other);
    if (!o.seen_) return Status::OK();
    TIP_ASSIGN_OR_RETURN(sum_, CheckedAdd(sum_, o.sum_));
    seen_ = true;
    return Status::OK();
  }

 private:
  int64_t sum_ = 0;
  bool seen_ = false;
};

class SumDoubleState final : public AggregateState {
 public:
  Status Step(const Datum& v, EvalContext&) override {
    sum_ += v.double_value();
    seen_ = true;
    return Status::OK();
  }
  Result<Datum> Final(EvalContext&) override {
    return seen_ ? Datum::Double(sum_) : Datum::NullOf(TypeId::kDouble);
  }
  Status Merge(AggregateState&& other, EvalContext&) override {
    const SumDoubleState& o = static_cast<SumDoubleState&>(other);
    if (o.seen_) {
      sum_ += o.sum_;
      seen_ = true;
    }
    return Status::OK();
  }

 private:
  double sum_ = 0;
  bool seen_ = false;
};

class AvgState final : public AggregateState {
 public:
  Status Step(const Datum& v, EvalContext&) override {
    sum_ += v.double_value();
    ++count_;
    return Status::OK();
  }
  Result<Datum> Final(EvalContext&) override {
    if (count_ == 0) return Datum::NullOf(TypeId::kDouble);
    return Datum::Double(sum_ / static_cast<double>(count_));
  }
  Status Merge(AggregateState&& other, EvalContext&) override {
    const AvgState& o = static_cast<AvgState&>(other);
    sum_ += o.sum_;
    count_ += o.count_;
    return Status::OK();
  }

 private:
  double sum_ = 0;
  int64_t count_ = 0;
};

class MinMaxState final : public AggregateState {
 public:
  MinMaxState(const TypeRegistry* types, bool is_max)
      : types_(types), is_max_(is_max) {}

  Status Step(const Datum& v, EvalContext& ctx) override {
    if (!seen_) {
      best_ = v;
      seen_ = true;
      return Status::OK();
    }
    TIP_ASSIGN_OR_RETURN(int c, types_->Compare(v, best_, ctx.tx));
    if ((c > 0) == is_max_ && c != 0) best_ = v;
    return Status::OK();
  }
  Result<Datum> Final(EvalContext&) override {
    return seen_ ? best_ : Datum::Null();
  }
  Status Merge(AggregateState&& other, EvalContext& ctx) override {
    MinMaxState& o = static_cast<MinMaxState&>(other);
    if (!o.seen_) return Status::OK();
    return Step(o.best_, ctx);
  }

 private:
  const TypeRegistry* types_;
  bool is_max_;
  Datum best_;
  bool seen_ = false;
};

Status RegisterAggregates(Database* db) {
  AggregateRegistry& reg = db->aggregates();
  const TypeRegistry* types = &db->types();

  AggregateDef count;
  count.name = "count";
  count.any_param = true;
  count.result = TypeId::kInt;
  count.make_state = [] { return std::make_unique<CountState>(); };
  count.mergeable = true;
  TIP_RETURN_IF_ERROR(reg.Register(std::move(count)));

  AggregateDef sum_int;
  sum_int.name = "sum";
  sum_int.param = TypeId::kInt;
  sum_int.result = TypeId::kInt;
  sum_int.make_state = [] { return std::make_unique<SumIntState>(); };
  sum_int.mergeable = true;
  TIP_RETURN_IF_ERROR(reg.Register(std::move(sum_int)));

  AggregateDef sum_double;
  sum_double.name = "sum";
  sum_double.param = TypeId::kDouble;
  sum_double.result = TypeId::kDouble;
  sum_double.make_state = [] { return std::make_unique<SumDoubleState>(); };
  sum_double.mergeable = true;
  TIP_RETURN_IF_ERROR(reg.Register(std::move(sum_double)));

  AggregateDef avg;
  avg.name = "avg";
  avg.param = TypeId::kDouble;
  avg.result = TypeId::kDouble;
  avg.make_state = [] { return std::make_unique<AvgState>(); };
  avg.mergeable = true;
  TIP_RETURN_IF_ERROR(reg.Register(std::move(avg)));

  for (bool is_max : {false, true}) {
    AggregateDef def;
    def.name = is_max ? "max" : "min";
    def.any_param = true;
    def.result_same_as_param = true;
    def.make_state = [types, is_max] {
      return std::make_unique<MinMaxState>(types, is_max);
    };
    def.mergeable = true;
    TIP_RETURN_IF_ERROR(reg.Register(std::move(def)));
  }
  return Status::OK();
}

Result<IndexStatsSnapshot> LookupIndexStats(const Database* db,
                                            const std::string& table_name,
                                            const std::string& index_name) {
  TIP_ASSIGN_OR_RETURN(const Table* table,
                       db->catalog().GetTable(table_name));
  for (const IntervalIndexDef& def : table->interval_indexes()) {
    if (EqualsIgnoreCase(def.name, index_name)) return def.stats();
  }
  return Status::NotFound("index '" + index_name + "' does not exist on '" +
                          table->name() + "'");
}

// tip_index_stats('table', 'index')            -> formatted counter string
// tip_index_stats('table', 'index', 'counter') -> one counter as INT
// The observability surface for the segmented interval index: lets SQL
// (and hence tests and benches) assert how often each segment was
// rebuilt and how selective probes were.
Status RegisterIndexStats(Database* db) {
  RoutineRegistry& reg = db->routines();
  const TypeId s = TypeId::kString;

  TIP_RETURN_IF_ERROR(reg.Register(MakeRoutine(
      "tip_index_stats", {s, s}, s,
      [db](const std::vector<Datum>& a, EvalContext&) -> Result<Datum> {
        TIP_ASSIGN_OR_RETURN(
            IndexStatsSnapshot stats,
            LookupIndexStats(db, a[0].string_value(), a[1].string_value()));
        return Datum::String(stats.ToString());
      })));

  TIP_RETURN_IF_ERROR(reg.Register(MakeRoutine(
      "tip_index_stats", {s, s, s}, TypeId::kInt,
      [db](const std::vector<Datum>& a, EvalContext&) -> Result<Datum> {
        TIP_ASSIGN_OR_RETURN(
            IndexStatsSnapshot stats,
            LookupIndexStats(db, a[0].string_value(), a[1].string_value()));
        const std::string counter = ToLowerAscii(a[2].string_value());
        uint64_t value;
        if (counter == "absolute_builds") {
          value = stats.absolute_builds;
        } else if (counter == "overlay_builds") {
          value = stats.overlay_builds;
        } else if (counter == "probes") {
          value = stats.probes;
        } else if (counter == "rows_scanned") {
          value = stats.rows_scanned;
        } else if (counter == "rows_returned") {
          value = stats.rows_returned;
        } else {
          return Status::InvalidArgument("unknown index counter '" +
                                         counter + "'");
        }
        return Datum::Int(static_cast<int64_t>(value));
      })));
  return Status::OK();
}

// tip_guard_stats()          -> formatted lifecycle counters
// tip_guard_stats('counter') -> one counter as INT
// The observability surface for the statement lifecycle guard: how often
// statements on this session hit timeouts, cancels, memory budgets, or
// degraded a parallel plan to serial.
Status RegisterGuardStats(Database* db) {
  RoutineRegistry& reg = db->routines();
  const TypeId s = TypeId::kString;

  TIP_RETURN_IF_ERROR(reg.Register(MakeRoutine(
      "tip_guard_stats", {}, s,
      [db](const std::vector<Datum>&, EvalContext&) -> Result<Datum> {
        const GuardEvents& ev = db->guard_events();
        return Datum::String(
            "timeouts=" +
            std::to_string(ev.timeouts.load(std::memory_order_relaxed)) +
            " cancels=" +
            std::to_string(ev.cancels.load(std::memory_order_relaxed)) +
            " oom=" + std::to_string(ev.oom.load(std::memory_order_relaxed)) +
            " parallel_fallbacks=" +
            std::to_string(
                ev.parallel_fallbacks.load(std::memory_order_relaxed)));
      })));

  TIP_RETURN_IF_ERROR(reg.Register(MakeRoutine(
      "tip_guard_stats", {s}, TypeId::kInt,
      [db](const std::vector<Datum>& a, EvalContext&) -> Result<Datum> {
        const GuardEvents& ev = db->guard_events();
        const std::string counter = ToLowerAscii(a[0].string_value());
        uint64_t value;
        if (counter == "timeouts") {
          value = ev.timeouts.load(std::memory_order_relaxed);
        } else if (counter == "cancels") {
          value = ev.cancels.load(std::memory_order_relaxed);
        } else if (counter == "oom") {
          value = ev.oom.load(std::memory_order_relaxed);
        } else if (counter == "parallel_fallbacks") {
          value = ev.parallel_fallbacks.load(std::memory_order_relaxed);
        } else {
          return Status::InvalidArgument("unknown guard counter '" + counter +
                                         "'");
        }
        return Datum::Int(static_cast<int64_t>(value));
      })));

  // tip_sleep_ms(n) -> n after sleeping ~n milliseconds in 1ms slices,
  // checking the statement guard between slices. Exists so tests and
  // demos can hold a statement open long enough to cancel or time it
  // out deterministically.
  TIP_RETURN_IF_ERROR(reg.Register(MakeRoutine(
      "tip_sleep_ms", {TypeId::kInt}, TypeId::kInt,
      [](const std::vector<Datum>& a, EvalContext& eval) -> Result<Datum> {
        const int64_t ms = a[0].int_value();
        for (int64_t slept = 0; slept < ms; ++slept) {
          TIP_RETURN_IF_ERROR(eval.CheckGuardNow());
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        TIP_RETURN_IF_ERROR(eval.CheckGuardNow());
        return Datum::Int(ms);
      })));
  return Status::OK();
}

// tip_wal_stats()          -> formatted durability counters
// tip_wal_stats('counter') -> one counter as INT
// tip_checkpoint()         -> takes a checkpoint, returns its LSN
// The observability surface for the durability subsystem, mirroring
// tip_index_stats / tip_guard_stats: append and fsync traffic, group-
// commit effectiveness, and what recovery had to do.
Status RegisterWalStats(Database* db) {
  RoutineRegistry& reg = db->routines();
  const TypeId s = TypeId::kString;

  TIP_RETURN_IF_ERROR(reg.Register(MakeRoutine(
      "tip_wal_stats", {}, s,
      [db](const std::vector<Datum>&, EvalContext&) -> Result<Datum> {
        const DurabilityStats stats = db->durability_stats();
        return Datum::String(
            "mode=" + std::string(WalModeName(db->wal_mode())) + " " +
            stats.wal.ToString() +
            " next_lsn=" + std::to_string(stats.wal_next_lsn) +
            " checkpoints=" + std::to_string(stats.checkpoints) +
            " recoveries=" + std::to_string(stats.recoveries_run) +
            " replayed=" + std::to_string(stats.records_replayed) +
            " torn_tails=" + std::to_string(stats.torn_tail_truncations) +
            " txns_committed=" + std::to_string(stats.txns_committed) +
            " txns_rolled_back=" + std::to_string(stats.txns_rolled_back) +
            " txn_records_discarded=" +
            std::to_string(stats.txn_records_discarded));
      })));

  TIP_RETURN_IF_ERROR(reg.Register(MakeRoutine(
      "tip_wal_stats", {s}, TypeId::kInt,
      [db](const std::vector<Datum>& a, EvalContext&) -> Result<Datum> {
        const DurabilityStats stats = db->durability_stats();
        const std::string counter = ToLowerAscii(a[0].string_value());
        uint64_t value;
        if (counter == "records_appended") {
          value = stats.wal.records_appended;
        } else if (counter == "bytes_written") {
          value = stats.wal.bytes_written;
        } else if (counter == "fsyncs") {
          value = stats.wal.fsyncs;
        } else if (counter == "rotations") {
          value = stats.wal.rotations;
        } else if (counter == "max_batch_records") {
          value = stats.wal.max_batch_records;
        } else if (counter == "checkpoints") {
          value = stats.checkpoints;
        } else if (counter == "recoveries_run") {
          value = stats.recoveries_run;
        } else if (counter == "records_replayed") {
          value = stats.records_replayed;
        } else if (counter == "torn_tail_truncations") {
          value = stats.torn_tail_truncations;
        } else if (counter == "next_lsn") {
          value = stats.wal_next_lsn;
        } else if (counter == "txns_committed") {
          value = stats.txns_committed;
        } else if (counter == "txns_rolled_back") {
          value = stats.txns_rolled_back;
        } else if (counter == "txn_records_discarded") {
          value = stats.txn_records_discarded;
        } else {
          return Status::InvalidArgument("unknown wal counter '" + counter +
                                         "'");
        }
        return Datum::Int(static_cast<int64_t>(value));
      })));

  // tip_checkpoint() lets the torture harness (and operators) force a
  // snapshot + WAL truncation through plain SQL over the C API.
  TIP_RETURN_IF_ERROR(reg.Register(MakeRoutine(
      "tip_checkpoint", {}, TypeId::kInt,
      [db](const std::vector<Datum>&, EvalContext&) -> Result<Datum> {
        TIP_RETURN_IF_ERROR(db->Checkpoint());
        return Datum::Int(
            static_cast<int64_t>(db->durability_stats().checkpoints));
      })));

  // tip_sync_wal() forces the WAL to stable storage. Remote sessions
  // need it because RemoteConnection has no direct Database handle.
  TIP_RETURN_IF_ERROR(reg.Register(MakeRoutine(
      "tip_sync_wal", {}, TypeId::kInt,
      [db](const std::vector<Datum>&, EvalContext&) -> Result<Datum> {
        TIP_RETURN_IF_ERROR(db->SyncWal());
        return Datum::Int(0);
      })));
  return Status::OK();
}

// tip_plan_stats()          -> formatted plan-cache counters
// tip_plan_stats('counter') -> one counter as INT
// The observability surface for the prepared-statement plan cache,
// mirroring the other tip_*_stats routines. Note the stats query itself
// is a SELECT: with the cache on it takes one miss of its own the first
// time a session runs it.
Status RegisterPlanStats(Database* db) {
  RoutineRegistry& reg = db->routines();
  const TypeId s = TypeId::kString;

  TIP_RETURN_IF_ERROR(reg.Register(MakeRoutine(
      "tip_plan_stats", {}, s,
      [db](const std::vector<Datum>&, EvalContext&) -> Result<Datum> {
        const PlanCacheStats& st = db->plan_cache_stats();
        return Datum::String(
            "hits=" + std::to_string(st.hits.load(std::memory_order_relaxed)) +
            " misses=" +
            std::to_string(st.misses.load(std::memory_order_relaxed)) +
            " invalidations=" +
            std::to_string(st.invalidations.load(std::memory_order_relaxed)) +
            " evictions=" +
            std::to_string(st.evictions.load(std::memory_order_relaxed)) +
            " entries=" + std::to_string(db->plan_cache_entries()) +
            " capacity=" + std::to_string(db->plan_cache_capacity()) +
            " catalog_version=" + std::to_string(db->catalog_version()));
      })));

  TIP_RETURN_IF_ERROR(reg.Register(MakeRoutine(
      "tip_plan_stats", {s}, TypeId::kInt,
      [db](const std::vector<Datum>& a, EvalContext&) -> Result<Datum> {
        const PlanCacheStats& st = db->plan_cache_stats();
        const std::string counter = ToLowerAscii(a[0].string_value());
        uint64_t value;
        if (counter == "hits") {
          value = st.hits.load(std::memory_order_relaxed);
        } else if (counter == "misses") {
          value = st.misses.load(std::memory_order_relaxed);
        } else if (counter == "invalidations") {
          value = st.invalidations.load(std::memory_order_relaxed);
        } else if (counter == "evictions") {
          value = st.evictions.load(std::memory_order_relaxed);
        } else if (counter == "entries") {
          value = db->plan_cache_entries();
        } else if (counter == "capacity") {
          value = db->plan_cache_capacity();
        } else if (counter == "catalog_version") {
          value = db->catalog_version();
        } else {
          return Status::InvalidArgument("unknown plan counter '" + counter +
                                         "'");
        }
        return Datum::Int(static_cast<int64_t>(value));
      })));
  return Status::OK();
}

// tip_verify()            -> one-line online scrub verdict (all tables)
// tip_health()            -> scrub counters + quarantine list
// tip_health('counter')   -> one counter as INT
// tip_verify_dir('path')  -> offline deep-scan of a durable directory
// The observability surface for the integrity subsystem. tip_verify()
// is the scalar twin of CHECK DATABASE; tip_verify_dir() validates a
// directory *without* attaching it (no replay, no truncation — safe to
// point at a directory another process owns).
Status RegisterIntegrityStats(Database* db) {
  RoutineRegistry& reg = db->routines();
  const TypeId s = TypeId::kString;

  TIP_RETURN_IF_ERROR(reg.Register(MakeRoutine(
      "tip_verify", {}, s,
      [db](const std::vector<Datum>&, EvalContext& eval) -> Result<Datum> {
        uint64_t objects = 0;
        uint64_t corruptions = 0;
        std::string bad;
        for (const std::string& name : db->catalog().TableNames()) {
          ++objects;
          Result<Table*> table = db->catalog().GetTable(name);
          if (!table.ok()) {
            if (table.status().code() != StatusCode::kCorruption) {
              continue;  // dropped since TableNames — not corruption
            }
            ++corruptions;
            if (!bad.empty()) bad += "; ";
            bad += name + ": quarantined";
            continue;
          }
          TIP_ASSIGN_OR_RETURN(CheckFinding finding,
                               CheckTable(db, *table, &eval));
          if (!finding.ok) {
            ++corruptions;
            if (!bad.empty()) bad += "; ";
            bad += name + ": " + finding.detail;
          }
        }
        for (const auto& [qname, cause] : db->catalog().QuarantineList()) {
          Result<Table*> present = db->catalog().GetTableAnyState(qname);
          if (present.ok()) continue;  // counted above
          ++objects;
          ++corruptions;
          if (!bad.empty()) bad += "; ";
          bad += qname + ": quarantined (no storage)";
        }
        if (db->durable()) {
          ++objects;
          OfflineVerifyReport wal_report;
          Status scanned = VerifyWalFile(db->durable_dir() + "/wal.log",
                                         &wal_report);
          if (!scanned.ok() || !wal_report.clean()) {
            ++corruptions;
            if (!bad.empty()) bad += "; ";
            bad += "wal: " + (scanned.ok()
                                  ? wal_report.problems.front()
                                  : std::string(scanned.message()));
          }
        }
        db->RecordScrub(objects, corruptions);
        if (corruptions == 0) {
          return Datum::String("ok objects=" + std::to_string(objects));
        }
        return Datum::String("corrupt=" + std::to_string(corruptions) +
                             " objects=" + std::to_string(objects) + ": " +
                             bad);
      })));

  TIP_RETURN_IF_ERROR(reg.Register(MakeRoutine(
      "tip_health", {}, s,
      [db](const std::vector<Datum>&, EvalContext&) -> Result<Datum> {
        const IntegrityStats stats = db->integrity_stats();
        std::string out =
            "scrubs=" + std::to_string(stats.scrubs_run) +
            " objects_checked=" + std::to_string(stats.objects_checked) +
            " corruptions_found=" + std::to_string(stats.corruptions_found) +
            " quarantined=" + std::to_string(stats.tables_quarantined) +
            " scrub_ticks=" + std::to_string(stats.scrub_ticks);
        for (const auto& [name, cause] : db->catalog().QuarantineList()) {
          out += " [" + name + ": " + cause + "]";
        }
        const auto manifest = db->corruption_manifest();
        if (!manifest.empty()) {
          out += " manifest=" + std::to_string(manifest.size());
          for (const CorruptionManifestEntry& entry : manifest) {
            out += " {" + entry.object + " @ " + entry.file;
            if (entry.lsn != 0) out += " lsn=" + std::to_string(entry.lsn);
            if (entry.offset != 0) {
              out += " offset=" + std::to_string(entry.offset);
            }
            out += ": " + entry.cause + "}";
          }
        }
        return Datum::String(out);
      })));

  TIP_RETURN_IF_ERROR(reg.Register(MakeRoutine(
      "tip_health", {s}, TypeId::kInt,
      [db](const std::vector<Datum>& a, EvalContext&) -> Result<Datum> {
        const IntegrityStats stats = db->integrity_stats();
        const std::string counter = ToLowerAscii(a[0].string_value());
        uint64_t value;
        if (counter == "scrubs_run") {
          value = stats.scrubs_run;
        } else if (counter == "objects_checked") {
          value = stats.objects_checked;
        } else if (counter == "corruptions_found") {
          value = stats.corruptions_found;
        } else if (counter == "quarantined") {
          value = stats.tables_quarantined;
        } else if (counter == "scrub_ticks") {
          value = stats.scrub_ticks;
        } else if (counter == "manifest_entries") {
          value = db->corruption_manifest().size();
        } else {
          return Status::InvalidArgument("unknown health counter '" +
                                         counter + "'");
        }
        return Datum::Int(static_cast<int64_t>(value));
      })));

  TIP_RETURN_IF_ERROR(reg.Register(MakeRoutine(
      "tip_verify_dir", {s}, s,
      [](const std::vector<Datum>& a, EvalContext&) -> Result<Datum> {
        OfflineVerifyReport report;
        TIP_RETURN_IF_ERROR(VerifyDurableDir(a[0].string_value(), &report));
        std::string out =
            report.clean() ? "clean" : std::string("corrupt");
        out += " snapshot_sections=" +
               std::to_string(report.snapshot_sections) +
               " wal_records=" + std::to_string(report.wal_records);
        if (report.torn_tail) out += " torn_tail";
        if (report.open_txn_tail) out += " open_txn_tail";
        for (const std::string& problem : report.problems) {
          out += " [" + problem + "]";
        }
        return Datum::String(out);
      })));
  return Status::OK();
}

// tip_server_stats()          -> formatted server front-end counters
// tip_server_stats('counter') -> one counter as INT
// The observability surface for the TCP server front-end: session
// admission traffic, wire volume, drains, and fail-stop session
// deaths. Queryable from any session, remote or embedded.
Status RegisterServerStats(Database* db) {
  RoutineRegistry& reg = db->routines();
  const TypeId s = TypeId::kString;

  TIP_RETURN_IF_ERROR(reg.Register(MakeRoutine(
      "tip_server_stats", {}, s,
      [db](const std::vector<Datum>&, EvalContext&) -> Result<Datum> {
        const ServerStatsCounters& sv = db->server_stats();
        return Datum::String(
            "active=" +
            std::to_string(
                sv.sessions_active.load(std::memory_order_relaxed)) +
            " peak=" +
            std::to_string(sv.sessions_peak.load(std::memory_order_relaxed)) +
            " total=" +
            std::to_string(sv.sessions_total.load(std::memory_order_relaxed)) +
            " rejected=" +
            std::to_string(
                sv.sessions_rejected.load(std::memory_order_relaxed)) +
            " statements=" +
            std::to_string(
                sv.statements_served.load(std::memory_order_relaxed)) +
            " bytes_in=" +
            std::to_string(sv.bytes_in.load(std::memory_order_relaxed)) +
            " bytes_out=" +
            std::to_string(sv.bytes_out.load(std::memory_order_relaxed)) +
            " drains=" +
            std::to_string(sv.drains.load(std::memory_order_relaxed)) +
            " session_aborts=" +
            std::to_string(
                sv.session_aborts.load(std::memory_order_relaxed)) +
            " cancels=" +
            std::to_string(
                sv.cancels_received.load(std::memory_order_relaxed)) +
            " idle_timeouts=" +
            std::to_string(sv.idle_timeouts.load(std::memory_order_relaxed)) +
            " wire_faults=" +
            std::to_string(sv.wire_faults.load(std::memory_order_relaxed)) +
            " gate_shared=" +
            std::to_string(sv.gate_shared.load(std::memory_order_relaxed)) +
            " gate_exclusive=" +
            std::to_string(
                sv.gate_exclusive.load(std::memory_order_relaxed)) +
            " gate_upgrades=" +
            std::to_string(
                sv.gate_upgrades.load(std::memory_order_relaxed)) +
            " gate_wait_shared_ms=" +
            std::to_string(
                sv.gate_wait_shared_ms.load(std::memory_order_relaxed)) +
            " gate_wait_exclusive_ms=" +
            std::to_string(
                sv.gate_wait_exclusive_ms.load(std::memory_order_relaxed)) +
            " gate_busy_shared=" +
            std::to_string(
                sv.gate_busy_shared.load(std::memory_order_relaxed)) +
            " gate_busy_exclusive=" +
            std::to_string(
                sv.gate_busy_exclusive.load(std::memory_order_relaxed)));
      })));

  TIP_RETURN_IF_ERROR(reg.Register(MakeRoutine(
      "tip_server_stats", {s}, TypeId::kInt,
      [db](const std::vector<Datum>& a, EvalContext&) -> Result<Datum> {
        const ServerStatsCounters& sv = db->server_stats();
        const std::string counter = ToLowerAscii(a[0].string_value());
        uint64_t value;
        if (counter == "sessions_active") {
          value = sv.sessions_active.load(std::memory_order_relaxed);
        } else if (counter == "sessions_peak") {
          value = sv.sessions_peak.load(std::memory_order_relaxed);
        } else if (counter == "sessions_total") {
          value = sv.sessions_total.load(std::memory_order_relaxed);
        } else if (counter == "sessions_rejected") {
          value = sv.sessions_rejected.load(std::memory_order_relaxed);
        } else if (counter == "statements_served") {
          value = sv.statements_served.load(std::memory_order_relaxed);
        } else if (counter == "bytes_in") {
          value = sv.bytes_in.load(std::memory_order_relaxed);
        } else if (counter == "bytes_out") {
          value = sv.bytes_out.load(std::memory_order_relaxed);
        } else if (counter == "drains") {
          value = sv.drains.load(std::memory_order_relaxed);
        } else if (counter == "session_aborts") {
          value = sv.session_aborts.load(std::memory_order_relaxed);
        } else if (counter == "cancels_received") {
          value = sv.cancels_received.load(std::memory_order_relaxed);
        } else if (counter == "idle_timeouts") {
          value = sv.idle_timeouts.load(std::memory_order_relaxed);
        } else if (counter == "wire_faults") {
          value = sv.wire_faults.load(std::memory_order_relaxed);
        } else if (counter == "gate_shared") {
          value = sv.gate_shared.load(std::memory_order_relaxed);
        } else if (counter == "gate_exclusive") {
          value = sv.gate_exclusive.load(std::memory_order_relaxed);
        } else if (counter == "gate_upgrades") {
          value = sv.gate_upgrades.load(std::memory_order_relaxed);
        } else if (counter == "gate_wait_shared_ms") {
          value = sv.gate_wait_shared_ms.load(std::memory_order_relaxed);
        } else if (counter == "gate_wait_exclusive_ms") {
          value = sv.gate_wait_exclusive_ms.load(std::memory_order_relaxed);
        } else if (counter == "gate_busy_shared") {
          value = sv.gate_busy_shared.load(std::memory_order_relaxed);
        } else if (counter == "gate_busy_exclusive") {
          value = sv.gate_busy_exclusive.load(std::memory_order_relaxed);
        } else {
          return Status::InvalidArgument("unknown server counter '" + counter +
                                         "'");
        }
        return Datum::Int(static_cast<int64_t>(value));
      })));
  return Status::OK();
}

}  // namespace

Status RegisterBuiltins(Database* db) {
  TIP_RETURN_IF_ERROR(RegisterArithmetic(db));
  TIP_RETURN_IF_ERROR(RegisterCasts(db));
  TIP_RETURN_IF_ERROR(RegisterAggregates(db));
  TIP_RETURN_IF_ERROR(RegisterIndexStats(db));
  TIP_RETURN_IF_ERROR(RegisterGuardStats(db));
  TIP_RETURN_IF_ERROR(RegisterWalStats(db));
  TIP_RETURN_IF_ERROR(RegisterPlanStats(db));
  TIP_RETURN_IF_ERROR(RegisterIntegrityStats(db));
  TIP_RETURN_IF_ERROR(RegisterServerStats(db));
  return Status::OK();
}

}  // namespace tip::engine
