#include "layered/layered.h"

#include <algorithm>
#include <map>

#include "common/string_util.h"

namespace tip::layered {

namespace {

std::string T(std::string_view s) { return std::string(s); }

}  // namespace

Status CreateFlatPrescriptionTable(engine::Database* db,
                                   std::string_view name) {
  const std::string sql =
      "CREATE TABLE " + T(name) +
      " (doctor CHAR(20), patient CHAR(20), patientdob INT, drug CHAR(20), "
      "dosage INT, frequency INT, vstart INT, vend INT)";
  TIP_ASSIGN_OR_RETURN(engine::ResultSet result, db->Execute(sql));
  (void)result;
  return Status::OK();
}

Status LoadFlatPrescriptions(
    engine::Database* db,
    const std::vector<workload::PrescriptionRow>& rows,
    std::string_view name, const TxContext& ctx) {
  TIP_ASSIGN_OR_RETURN(engine::Table * table, db->catalog().GetTable(name));
  if (table->columns().size() != 8) {
    return Status::InvalidArgument("table '" + T(name) +
                                   "' does not have the flattened "
                                   "prescription schema");
  }
  for (const workload::PrescriptionRow& row : rows) {
    // The flattened store has no NOW: ground at load time, as a layered
    // system must when exporting to a non-temporal schema.
    TIP_ASSIGN_OR_RETURN(GroundedElement grounded, row.valid.Ground(ctx));
    for (const GroundedPeriod& p : grounded.periods()) {
      engine::Row stored;
      stored.reserve(8);
      stored.push_back(engine::Datum::String(row.doctor));
      stored.push_back(engine::Datum::String(row.patient));
      stored.push_back(engine::Datum::Int(row.patient_dob.seconds()));
      stored.push_back(engine::Datum::String(row.drug));
      stored.push_back(engine::Datum::Int(row.dosage));
      stored.push_back(engine::Datum::Int(row.frequency.seconds()));
      stored.push_back(engine::Datum::Int(p.start().seconds()));
      stored.push_back(engine::Datum::Int(p.end().seconds()));
      table->heap().Insert(std::move(stored));
    }
  }
  return Status::OK();
}

std::string CoalesceSql(std::string_view table,
                        std::string_view key_column) {
  const std::string t = T(table);
  const std::string k = T(key_column);
  // Maximal-interval coalescing (Snodgrass): [f.vstart, l.vend] is
  // reported iff it is fully chained (every interval start inside it is
  // reachable from an earlier overlapping-or-adjacent interval) and
  // extendable on neither side. Inclusive endpoints: "adjacent" means
  // next.vstart <= prev.vend + 1.
  return "SELECT DISTINCT f." + k + ", f.vstart, l.vend "
         "FROM " + t + " f, " + t + " l "
         "WHERE f." + k + " = l." + k + " AND f.vstart <= l.vend "
         "AND NOT EXISTS ("
           "SELECT m.vstart FROM " + t + " m "
           "WHERE m." + k + " = f." + k + " "
           "AND f.vstart < m.vstart AND m.vstart <= l.vend "
           "AND NOT EXISTS ("
             "SELECT a.vstart FROM " + t + " a "
             "WHERE a." + k + " = f." + k + " "
             "AND a.vstart < m.vstart AND m.vstart <= a.vend + 1)) "
         "AND NOT EXISTS ("
           "SELECT a2.vstart FROM " + t + " a2 "
           "WHERE a2." + k + " = f." + k + " "
           "AND (a2.vstart < f.vstart AND f.vstart <= a2.vend + 1 "
           "OR a2.vend > l.vend AND a2.vstart <= l.vend + 1))";
}

std::string CoalescedDurationSql(std::string_view table,
                                 std::string_view key_column) {
  const std::string k = T(key_column);
  return "SELECT c." + k + ", SUM(c.vend - c.vstart + 1) AS total FROM (" +
         CoalesceSql(table, key_column) +
         ") c GROUP BY c." + k + " ORDER BY c." + k;
}

Result<engine::ResultSet> RunCoalescedDuration(engine::Database* db,
                                               std::string_view table,
                                               std::string_view key_column) {
  // Step 1: run the coalescing translation.
  TIP_ASSIGN_OR_RETURN(engine::ResultSet coalesced,
                       db->Execute(CoalesceSql(table, key_column)));
  // Step 2: materialize into a scratch table (the external layer's
  // temp-table round trip).
  const std::string scratch = "layered_coalesce_scratch";
  (void)db->Execute("DROP TABLE " + scratch);  // ignore "does not exist"
  TIP_ASSIGN_OR_RETURN(
      engine::ResultSet created,
      db->Execute("CREATE TABLE " + scratch +
                  " (k CHAR(32), vstart INT, vend INT)"));
  (void)created;
  TIP_ASSIGN_OR_RETURN(engine::Table * scratch_table,
                       db->catalog().GetTable(scratch));
  for (engine::Row& row : coalesced.rows) {
    scratch_table->heap().Insert(std::move(row));
  }
  // Step 3: aggregate. Inclusive endpoints: duration counts chronons.
  TIP_ASSIGN_OR_RETURN(
      engine::ResultSet out,
      db->Execute("SELECT k, SUM(vend - vstart + 1) AS total FROM " +
                  scratch + " GROUP BY k ORDER BY k"));
  TIP_RETURN_IF_ERROR(db->catalog().DropTable(scratch));
  return out;
}

std::string TemporalJoinSql(std::string_view table, std::string_view drug1,
                            std::string_view drug2) {
  const std::string t = T(table);
  return "SELECT p1.patient, greatest(p1.vstart, p2.vstart) AS istart, "
         "least(p1.vend, p2.vend) AS iend "
         "FROM " + t + " p1, " + t + " p2 "
         "WHERE p1.drug = '" + T(drug1) + "' AND p2.drug = '" + T(drug2) +
         "' AND p1.patient = p2.patient "
         "AND p1.vstart <= p2.vend AND p2.vstart <= p1.vend";
}

std::string TimesliceSql(std::string_view table) {
  return "SELECT * FROM " + T(table) +
         " WHERE vstart <= :t AND :t <= vend";
}

Result<std::vector<ClientCoalesceResult>> ClientSideCoalesce(
    engine::Database* db, std::string_view table,
    std::string_view key_column) {
  TIP_ASSIGN_OR_RETURN(
      engine::ResultSet rows,
      db->Execute("SELECT " + T(key_column) + ", vstart, vend FROM " +
                  T(table)));
  std::map<std::string, std::vector<GroundedPeriod>> by_key;
  for (const engine::Row& row : rows.rows) {
    TIP_ASSIGN_OR_RETURN(Chronon s,
                         Chronon::FromSeconds(row[1].int_value()));
    TIP_ASSIGN_OR_RETURN(Chronon e,
                         Chronon::FromSeconds(row[2].int_value()));
    TIP_ASSIGN_OR_RETURN(GroundedPeriod p, GroundedPeriod::Make(s, e));
    by_key[row[0].string_value()].push_back(p);
  }
  std::vector<ClientCoalesceResult> out;
  out.reserve(by_key.size());
  for (auto& [key, periods] : by_key) {
    out.push_back(ClientCoalesceResult{
        key, GroundedElement::FromPeriods(std::move(periods))});
  }
  return out;
}

}  // namespace tip::layered
