#ifndef TIP_LAYERED_LAYERED_H_
#define TIP_LAYERED_LAYERED_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/element.h"
#include "core/tx_context.h"
#include "engine/database.h"
#include "workload/medical.h"

namespace tip::layered {

/// The *layered* temporal front-end baseline, modelling the TimeDB /
/// Tiger architecture the paper contrasts itself with (Section 5):
/// temporal data lives in a vanilla relational schema with no temporal
/// types — first normal form, one row per validity period, endpoints as
/// plain INT second counts — and temporal operations are *translated*
/// into standard SQL executed by the unmodified engine.
///
/// The translations below are the textbook ones (Snodgrass, "Developing
/// Time-Oriented Database Applications in SQL"); their size and shape —
/// triply-nested NOT EXISTS for coalescing — demonstrate concretely why
/// the paper argues for building temporal support *into* the DBMS.

/// `CREATE TABLE <name> (doctor, patient, patientdob INT, drug,
/// dosage INT, frequency INT, vstart INT, vend INT)` — the flattened
/// prescription schema. Endpoints are inclusive chronon second counts.
Status CreateFlatPrescriptionTable(engine::Database* db,
                                   std::string_view name);

/// Flattens and bulk-loads TIP-native rows: one output row per period
/// of each validity Element, NOW grounded under `ctx` at load time
/// (the layered store cannot represent NOW).
Status LoadFlatPrescriptions(
    engine::Database* db,
    const std::vector<workload::PrescriptionRow>& rows,
    std::string_view name, const TxContext& ctx);

// -- Query translations -------------------------------------------------------

/// Standard-SQL coalescing of `(key, vstart, vend)` per `key_column`:
/// the maximal-interval formulation with nested NOT EXISTS. Returns the
/// complete SELECT statement (O(n^2) joins with O(n) subqueries each —
/// the pain point the paper cites as "complex and potentially difficult
/// to optimize").
std::string CoalesceSql(std::string_view table, std::string_view key_column);

/// Total coalesced duration per key as one statement: the coalescing
/// query wrapped as a derived table under the aggregate — the layered
/// equivalent of the paper's `length(group_union(valid))` (Q3).
std::string CoalescedDurationSql(std::string_view table,
                                 std::string_view key_column);

/// The same computation the way a translator without derived-table
/// support must run it: materialize the coalesced intervals into a
/// scratch table, aggregate, drop. The extra round trip is part of the
/// measured layered cost.
Result<engine::ResultSet> RunCoalescedDuration(engine::Database* db,
                                               std::string_view table,
                                               std::string_view key_column);

/// The layered translation of the paper's temporal self-join (Q2): who
/// took `drug1` and `drug2` simultaneously and when. Emits one row per
/// overlapping period pair with the intersection endpoints — note the
/// result is *not* coalesced, unlike TIP's intersect().
std::string TemporalJoinSql(std::string_view table, std::string_view drug1,
                            std::string_view drug2);

/// Timeslice: all rows valid at second `t` (named parameter :t).
std::string TimesliceSql(std::string_view table);

// -- Client-side alternative ---------------------------------------------------

/// The other layered strategy: pull the flattened rows out and coalesce
/// in the client. Returns per-key coalesced elements, sorted by key.
struct ClientCoalesceResult {
  std::string key;
  GroundedElement coalesced;
};
Result<std::vector<ClientCoalesceResult>> ClientSideCoalesce(
    engine::Database* db, std::string_view table,
    std::string_view key_column);

}  // namespace tip::layered

#endif  // TIP_LAYERED_LAYERED_H_
