#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>

#include "common/fault_injection.h"

namespace tip {

namespace {

thread_local bool t_on_worker_thread = false;

/// Runs one worker body, converting any escaping exception into a
/// Status. Pool threads must never unwind past the task boundary, and
/// the fork-join contract is that a failing worker reports through its
/// status slot rather than taking the process down.
Status RunBody(const std::function<Status(size_t)>& body, size_t w) {
  try {
    return body(w);
  } catch (const std::exception& e) {
    return Status::Internal(std::string("worker exception: ") + e.what());
  } catch (...) {
    return Status::Internal("worker exception: unknown");
  }
}

}  // namespace

ThreadPool::ThreadPool(size_t max_threads)
    : max_threads_(std::max<size_t>(max_threads, 1)) {}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

bool ThreadPool::OnWorkerThread() { return t_on_worker_thread; }

size_t ThreadPool::DefaultMaxThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return std::max<size_t>(hw, 8);
}

ThreadPool& ThreadPool::Shared() {
  // Leaked on purpose: pool threads must never outlive their pool, and
  // static destruction order at exit cannot guarantee that for a
  // process-wide singleton used from other static-lifetime objects.
  static ThreadPool* pool = new ThreadPool();
  return *pool;
}

size_t ThreadPool::ApproxAvailable() const {
  std::lock_guard<std::mutex> lock(mu_);
  const size_t busy = (threads_.size() - idle_) + queue_.size();
  return busy >= max_threads_ ? 0 : max_threads_ - busy;
}

void ThreadPool::Submit(std::function<void()> task) {
  if (!fault::MaybeFail("threadpool.dispatch").ok()) {
    // Simulated dispatch failure (and the real thread-creation failure
    // below) degrade to inline execution: the fork-join still
    // completes, just without the parallelism.
    task();
    return;
  }
  std::function<void()> inline_task;
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    // Grow only when no idle worker can pick the task up.
    if (idle_ == 0 && threads_.size() < max_threads_) {
      try {
        threads_.emplace_back([this] { WorkerLoop(); });
      } catch (const std::system_error&) {
        // Thread creation failed (resource exhaustion). If no existing
        // worker will ever drain the queue, reclaim the task and run it
        // inline after dropping the lock.
        if (threads_.empty()) {
          inline_task = std::move(queue_.back());
          queue_.pop_back();
        }
      }
    }
  }
  if (inline_task) {
    inline_task();
    return;
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  t_on_worker_thread = true;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    while (queue_.empty() && !stopping_) {
      ++idle_;
      cv_.wait(lock);
      --idle_;
    }
    if (queue_.empty()) return;  // stopping_
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    lock.unlock();
    task();
    lock.lock();
  }
}

Status ThreadPool::RunOnWorkers(size_t workers,
                                const std::function<Status(size_t)>& body) {
  const size_t n = std::max<size_t>(workers, 1);
  if (n == 1 || t_on_worker_thread) {
    // Nested fork-join (a parallel node inside a correlated subplan
    // already running on a pool thread) executes inline: correct,
    // deadlock-free, and the outer fan-out keeps all threads busy.
    Status first;
    for (size_t w = 0; w < n; ++w) {
      Status s = RunBody(body, w);
      if (first.ok() && !s.ok()) first = std::move(s);
    }
    return first;
  }

  struct Join {
    std::mutex mu;
    std::condition_variable cv;
    size_t pending;
  };
  auto join = std::make_shared<Join>();
  join->pending = n - 1;

  // One slot per worker so the reported error is deterministic (lowest
  // worker index) regardless of completion order.
  std::vector<Status> statuses(n);
  for (size_t w = 1; w < n; ++w) {
    // `body` and `statuses` are captured by reference: RunOnWorkers
    // blocks until every task signals completion, so they cannot
    // dangle.
    Submit([join, &body, &statuses, w] {
      statuses[w] = RunBody(body, w);
      {
        std::lock_guard<std::mutex> lock(join->mu);
        --join->pending;
      }
      join->cv.notify_one();
    });
  }
  statuses[0] = RunBody(body, 0);
  {
    std::unique_lock<std::mutex> lock(join->mu);
    join->cv.wait(lock, [&] { return join->pending == 0; });
  }
  for (Status& s : statuses) {
    if (!s.ok()) return std::move(s);
  }
  return Status::OK();
}

}  // namespace tip
