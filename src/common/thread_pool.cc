#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>

namespace tip {

namespace {
thread_local bool t_on_worker_thread = false;
}  // namespace

ThreadPool::ThreadPool(size_t max_threads)
    : max_threads_(std::max<size_t>(max_threads, 1)) {}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

bool ThreadPool::OnWorkerThread() { return t_on_worker_thread; }

size_t ThreadPool::DefaultMaxThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return std::max<size_t>(hw, 8);
}

ThreadPool& ThreadPool::Shared() {
  // Leaked on purpose: pool threads must never outlive their pool, and
  // static destruction order at exit cannot guarantee that for a
  // process-wide singleton used from other static-lifetime objects.
  static ThreadPool* pool = new ThreadPool();
  return *pool;
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    // Grow only when no idle worker can pick the task up.
    if (idle_ == 0 && threads_.size() < max_threads_) {
      threads_.emplace_back([this] { WorkerLoop(); });
    }
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  t_on_worker_thread = true;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    while (queue_.empty() && !stopping_) {
      ++idle_;
      cv_.wait(lock);
      --idle_;
    }
    if (queue_.empty()) return;  // stopping_
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    lock.unlock();
    task();
    lock.lock();
  }
}

void ThreadPool::RunOnWorkers(size_t workers,
                              const std::function<void(size_t)>& body) {
  if (workers <= 1 || t_on_worker_thread) {
    // Nested fork-join (a parallel node inside a correlated subplan
    // already running on a pool thread) executes inline: correct,
    // deadlock-free, and the outer fan-out keeps all threads busy.
    for (size_t w = 0; w < std::max<size_t>(workers, 1); ++w) body(w);
    return;
  }

  struct Join {
    std::mutex mu;
    std::condition_variable cv;
    size_t pending;
  };
  auto join = std::make_shared<Join>();
  join->pending = workers - 1;

  for (size_t w = 1; w < workers; ++w) {
    // `body` is captured by reference: RunOnWorkers blocks until every
    // task signals completion, so the reference cannot dangle.
    Submit([join, &body, w] {
      body(w);
      {
        std::lock_guard<std::mutex> lock(join->mu);
        --join->pending;
      }
      join->cv.notify_one();
    });
  }
  body(0);
  std::unique_lock<std::mutex> lock(join->mu);
  join->cv.wait(lock, [&] { return join->pending == 0; });
}

}  // namespace tip
