#include "common/exec_guard.h"

#include <string>

#include "common/fault_injection.h"

namespace tip {

namespace {

// Bumps `counter` exactly once per guard lifetime, guarded by `flag`.
void RecordOnce(std::atomic<bool>& flag, GuardEvents* events,
                std::atomic<uint64_t> GuardEvents::* counter) {
  if (events == nullptr) return;
  bool expected = false;
  if (flag.compare_exchange_strong(expected, true,
                                   std::memory_order_relaxed)) {
    (events->*counter).fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace

Status ExecGuard::TripCancelled() {
  RecordOnce(event_recorded_, events_, &GuardEvents::cancels);
  return Status::Cancelled("statement cancelled");
}

Status ExecGuard::CheckDeadline() {
  if (Clock::now() < deadline_) return Status::OK();
  RecordOnce(event_recorded_, events_, &GuardEvents::timeouts);
  // Sticky: once the deadline has passed, every later check fails too.
  return Status::DeadlineExceeded(
      "statement timeout after " + std::to_string(timeout_ms_) + " ms");
}

Status ExecGuard::Reserve(size_t bytes) {
  TIP_RETURN_IF_ERROR(fault::MaybeFail("guard.reserve"));
  const size_t used =
      bytes_used_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  size_t peak = bytes_peak_.load(std::memory_order_relaxed);
  while (used > peak &&
         !bytes_peak_.compare_exchange_weak(peak, used,
                                            std::memory_order_relaxed)) {
  }
  if (memory_limit_ != 0 && used > memory_limit_) {
    RecordOnce(event_recorded_, events_, &GuardEvents::oom);
    return Status::ResourceExhausted(
        "statement memory limit exceeded: " + std::to_string(used) +
        " bytes used, limit " + std::to_string(memory_limit_));
  }
  return Status::OK();
}

}  // namespace tip
