#include "common/string_util.h"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace tip {

std::string_view StripAsciiWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::vector<std::string_view> SplitString(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string ToLowerAscii(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = std::tolower(static_cast<unsigned char>(c));
  return out;
}

std::string ToUpperAscii(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = std::toupper(static_cast<unsigned char>(c));
  return out;
}

Result<int64_t> ParseInt64(std::string_view s) {
  s = StripAsciiWhitespace(s);
  if (s.empty()) return Status::ParseError("empty integer literal");
  bool negative = false;
  size_t i = 0;
  if (s[0] == '+' || s[0] == '-') {
    negative = (s[0] == '-');
    i = 1;
  }
  if (i == s.size()) return Status::ParseError("sign without digits");
  uint64_t magnitude = 0;
  constexpr uint64_t kNegLimit =
      static_cast<uint64_t>(std::numeric_limits<int64_t>::max()) + 1;
  const uint64_t limit =
      negative ? kNegLimit
               : static_cast<uint64_t>(std::numeric_limits<int64_t>::max());
  for (; i < s.size(); ++i) {
    if (s[i] < '0' || s[i] > '9') {
      return Status::ParseError("invalid digit in integer literal: '" +
                                std::string(s) + "'");
    }
    uint64_t digit = static_cast<uint64_t>(s[i] - '0');
    if (magnitude > (limit - digit) / 10) {
      return Status::OutOfRange("integer literal out of range: '" +
                                std::string(s) + "'");
    }
    magnitude = magnitude * 10 + digit;
  }
  if (negative) {
    return static_cast<int64_t>(~magnitude + 1);  // two's complement negate
  }
  return static_cast<int64_t>(magnitude);
}

Result<double> ParseDouble(std::string_view s) {
  s = StripAsciiWhitespace(s);
  if (s.empty()) return Status::ParseError("empty float literal");
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  double value = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) {
    return Status::ParseError("invalid float literal: '" + buf + "'");
  }
  if (errno == ERANGE) {
    return Status::OutOfRange("float literal out of range: '" + buf + "'");
  }
  return value;
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string StringPrintf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace tip
