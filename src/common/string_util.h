#ifndef TIP_COMMON_STRING_UTIL_H_
#define TIP_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace tip {

/// Returns `s` with ASCII whitespace removed from both ends.
std::string_view StripAsciiWhitespace(std::string_view s);

/// Splits `s` on `sep`, honouring nothing (no quoting); empty pieces kept.
std::vector<std::string_view> SplitString(std::string_view s, char sep);

/// ASCII case-insensitive equality (SQL keywords, type names).
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Lower-cases ASCII letters.
std::string ToLowerAscii(std::string_view s);
/// Upper-cases ASCII letters.
std::string ToUpperAscii(std::string_view s);

/// Parses a decimal integer occupying the whole of `s` (optional sign).
Result<int64_t> ParseInt64(std::string_view s);

/// Parses a decimal floating point number occupying the whole of `s`.
Result<double> ParseDouble(std::string_view s);

/// Joins `parts` with `sep`.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep);

/// printf-style formatting into a std::string.
std::string StringPrintf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace tip

#endif  // TIP_COMMON_STRING_UTIL_H_
