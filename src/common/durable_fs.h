#ifndef TIP_COMMON_DURABLE_FS_H_
#define TIP_COMMON_DURABLE_FS_H_

#include <string>
#include <string_view>

#include "common/status.h"

/// The filesystem discipline durable state depends on, in one place.
///
/// On POSIX filesystems an atomic rename makes the *contents* of the
/// new file visible under the destination name, but the rename itself
/// lives in the parent directory's metadata — until the directory is
/// fsynced, a power cut can roll the rename back (ext4 and XFS both
/// do this). Every create/rename of a durable file must therefore be
/// followed by FsyncDir on its parent, and the helpers here exist so
/// the snapshot, checkpoint and WAL paths cannot quietly forget.
namespace tip::fs {

/// fsyncs the directory `dir` itself (not its contents). NotFound if
/// the directory cannot be opened, Internal if fsync fails.
Status FsyncDir(const std::string& dir);

/// The parent directory of `path` ("." when `path` has no slash).
std::string ParentDir(std::string_view path);

/// Creates `dir` if it does not exist (one level, not mkdir -p) and
/// fsyncs its parent so the creation itself is durable. OK if `dir`
/// already exists and is a directory.
Status EnsureDir(const std::string& dir);

/// Reads a whole file. NotFound only when the file does not exist
/// (ENOENT); any other open failure or a mid-read I/O error is
/// Internal, never a short result — recovery callers rely on the
/// distinction to tell "fresh state" from "state we failed to read".
Result<std::string> ReadFile(const std::string& path);

/// Writes `bytes` crash-safely over `path`: <path>.tmp + fsync +
/// atomic rename + parent-directory fsync. `fault_prefix` names the
/// injection points exercised along the way: <prefix>.open,
/// <prefix>.write, <prefix>.fsync, <prefix>.close, <prefix>.rename,
/// <prefix>.dirsync.
Status AtomicWriteFile(const std::string& path, std::string_view bytes,
                       const std::string& fault_prefix);

}  // namespace tip::fs

#endif  // TIP_COMMON_DURABLE_FS_H_
