#include "common/crc32.h"

#include <array>
#include <cstring>

namespace tip {

namespace {

// Slicing-by-eight tables for the reflected IEEE polynomial
// 0xEDB88320: tables[0] is the classic byte-at-a-time table and
// tables[k][b] folds byte b through k additional zero bytes, so the
// hot loop consumes eight input bytes with eight independent lookups
// instead of eight serially dependent ones. The produced values are
// bit-identical to the byte-at-a-time algorithm (same polynomial,
// same reflection), so existing snapshots and WAL frames verify
// unchanged. The 64-bit fold assumes little-endian loads, like the
// rest of the wire format.
using SliceTables = std::array<std::array<uint32_t, 256>, 8>;

SliceTables BuildTables() {
  SliceTables tables{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    tables[0][i] = c;
  }
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = tables[0][i];
    for (size_t k = 1; k < 8; ++k) {
      c = tables[0][c & 0xFFu] ^ (c >> 8);
      tables[k][i] = c;
    }
  }
  return tables;
}

const SliceTables& Tables() {
  static const SliceTables tables = BuildTables();
  return tables;
}

}  // namespace

uint32_t Crc32Update(uint32_t crc, std::string_view bytes) {
  const SliceTables& t = Tables();
  uint32_t c = crc ^ 0xFFFFFFFFu;
  const char* p = bytes.data();
  size_t n = bytes.size();
  while (n >= 8) {
    uint32_t lo, hi;
    std::memcpy(&lo, p, 4);
    std::memcpy(&hi, p + 4, 4);
    c ^= lo;
    c = t[7][c & 0xFFu] ^ t[6][(c >> 8) & 0xFFu] ^
        t[5][(c >> 16) & 0xFFu] ^ t[4][c >> 24] ^ t[3][hi & 0xFFu] ^
        t[2][(hi >> 8) & 0xFFu] ^ t[1][(hi >> 16) & 0xFFu] ^
        t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  while (n > 0) {
    c = t[0][(c ^ static_cast<unsigned char>(*p)) & 0xFFu] ^ (c >> 8);
    ++p;
    --n;
  }
  return c ^ 0xFFFFFFFFu;
}

uint32_t Crc32(std::string_view bytes) { return Crc32Update(0, bytes); }

}  // namespace tip
