#ifndef TIP_COMMON_FAULT_INJECTION_H_
#define TIP_COMMON_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

/// Deterministic fault injection for testing error paths.
///
/// Code under test declares named *injection points* by calling
/// `MaybeFail("area.operation")` at the spot where a real failure could
/// occur (an I/O call, an allocation, a thread dispatch). In production
/// nothing is armed and MaybeFail is one relaxed atomic load. Tests (or
/// the TIP_FAULT_INJECT environment variable, or `SET fault_inject`)
/// arm a point in one of three trigger modes:
///
///   InjectAt(point, n)    — the n-th subsequent hit (0-based) fails,
///                           then the point disarms ("kill exactly the
///                           k-th write", what crash-recovery tests
///                           need).
///   InjectEvery(point, n) — every n-th hit fails, indefinitely
///                           (repeated failures: retry loops, flaky
///                           disks).
///   InjectProb(point, p)  — each hit fails with probability p, drawn
///                           from a deterministic Rng (src/common/rng.h)
///                           shared by all probabilistic points and
///                           reseedable with SetSeed, so a randomized
///                           torture run is replayable from its seed.
///
/// `KillAt(point, n)` arms the crash-torture variant: instead of
/// returning an error Status, the n-th hit terminates the process
/// immediately (`_Exit`), simulating kill -9 at that exact syscall.
///
/// Point naming convention: `<subsystem>.<operation>`, lower-case,
/// e.g. "snapshot.write", "wal.fsync", "checkpoint.commit",
/// "threadpool.dispatch", "guard.reserve". Points are not
/// pre-registered; arming an unknown name simply never fires, and
/// HitCount reports how often a name was reached so tests can assert
/// coverage.
namespace tip::fault {

/// Exit code used by KillAt (chosen to look like SIGKILL's 128+9).
inline constexpr int kKillExitCode = 137;

/// Arms `point` to fail on its `nth` next hit (0 = the very next one),
/// one-shot. Re-arming replaces any previous arming of the same point.
void InjectAt(const std::string& point, uint64_t nth);

/// Arms `point` to fail on every `n`-th hit (n >= 1), staying armed.
void InjectEvery(const std::string& point, uint64_t n);

/// Arms `point` to fail each hit with probability `p` in [0, 1],
/// staying armed. Draws come from the registry's deterministic Rng.
void InjectProb(const std::string& point, double p);

/// Arms `point` to terminate the process (`_Exit(kKillExitCode)`) on
/// its `nth` next hit — the crash-torture trigger.
void KillAt(const std::string& point, uint64_t nth);

/// Reseeds the Rng behind InjectProb (default seed is fixed, so runs
/// are deterministic even without calling this).
void SetSeed(uint64_t seed);

/// Disarms one point / all points. Hit counters survive ClearAll so
/// tests can still assert coverage after a run.
void Clear(const std::string& point);
void ClearAll();

/// Times `point` has been reached (armed or not) since process start.
uint64_t HitCount(const std::string& point);

/// Names of all currently armed points (diagnostics).
std::vector<std::string> ArmedPoints();

/// The injection hook. Returns OK unless `point` is armed and this hit
/// fires per the point's trigger mode, in which case it returns
/// `Status::Internal("fault injected at <point>")` (or exits the
/// process for a KillAt arming). Fast path when nothing is armed
/// anywhere: one atomic load, no lock.
Status MaybeFail(const char* point);

/// True when the given status came from MaybeFail (tests distinguishing
/// injected faults from genuine errors).
bool IsInjected(const Status& status);

/// Parses and applies a TIP_FAULT_INJECT-style spec — entries separated
/// by commas:
///   point:n          one-shot nth-hit arming
///   point:every:n    every n-th hit
///   point:prob:p     probability p per hit (decimal in [0, 1])
///   point:kill:n     process exit on the nth hit
///   seed:n           reseed the Rng behind prob points
///   off | none | clear   disarm everything
/// Returns InvalidArgument on malformed specs.
Status ApplySpec(const std::string& spec);

/// Applies the TIP_FAULT_INJECT environment variable once per process
/// (called lazily from MaybeFail; exposed for tests).
void ApplyEnvOnce();

}  // namespace tip::fault

#endif  // TIP_COMMON_FAULT_INJECTION_H_
