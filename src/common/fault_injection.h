#ifndef TIP_COMMON_FAULT_INJECTION_H_
#define TIP_COMMON_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

/// Deterministic fault injection for testing error paths.
///
/// Code under test declares named *injection points* by calling
/// `MaybeFail("area.operation")` at the spot where a real failure could
/// occur (an I/O call, an allocation, a thread dispatch). In production
/// nothing is armed and MaybeFail is one relaxed atomic load. Tests (or
/// the TIP_FAULT_INJECT environment variable, or `SET fault_inject`)
/// arm a point with `InjectAt(point, n)`: the n-th subsequent hit of
/// that point (0-based) fails with `Status::Internal`, and every hit
/// after it succeeds again — "kill exactly the k-th write" semantics,
/// which is what crash-recovery tests need.
///
/// Point naming convention: `<subsystem>.<operation>`, lower-case,
/// e.g. "snapshot.write", "snapshot.fsync", "threadpool.dispatch",
/// "guard.reserve". Points are not pre-registered; arming an unknown
/// name simply never fires, and HitCount reports how often a name was
/// reached so tests can assert coverage.
namespace tip::fault {

/// Arms `point` to fail on its `nth` next hit (0 = the very next one).
/// Re-arming replaces any previous arming of the same point.
void InjectAt(const std::string& point, uint64_t nth);

/// Disarms one point / all points. Hit counters survive ClearAll so
/// tests can still assert coverage after a run.
void Clear(const std::string& point);
void ClearAll();

/// Times `point` has been reached (armed or not) since process start.
uint64_t HitCount(const std::string& point);

/// Names of all currently armed points (diagnostics).
std::vector<std::string> ArmedPoints();

/// The injection hook. Returns OK unless `point` is armed and this hit
/// is the chosen one, in which case it returns
/// `Status::Internal("fault injected at <point>")` and disarms.
/// Fast path when nothing is armed anywhere: one atomic load, no lock.
Status MaybeFail(const char* point);

/// True when the given status came from MaybeFail (tests distinguishing
/// injected faults from genuine errors).
bool IsInjected(const Status& status);

/// Parses and applies a TIP_FAULT_INJECT-style spec:
///   "point:n[,point:n...]" arms, "off" / "none" / "clear" clears all.
/// Returns InvalidArgument on malformed specs.
Status ApplySpec(const std::string& spec);

/// Applies the TIP_FAULT_INJECT environment variable once per process
/// (called lazily from MaybeFail; exposed for tests).
void ApplyEnvOnce();

}  // namespace tip::fault

#endif  // TIP_COMMON_FAULT_INJECTION_H_
