#ifndef TIP_COMMON_THREAD_POOL_H_
#define TIP_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tip {

/// A lazily grown pool of worker threads for intra-query parallelism.
/// Threads are spawned on demand up to `max_threads` and live until the
/// pool is destroyed, so repeated parallel queries do not pay a
/// thread-start per morsel batch.
///
/// The only execution primitive is the fork-join `RunOnWorkers`: the
/// caller participates as worker 0 and the call does not return until
/// every worker body has finished, which keeps lifetime reasoning
/// simple (captured references outlive all workers by construction).
/// A body invoked on a pool thread that itself calls `RunOnWorkers`
/// runs its sub-bodies inline — nested parallelism degrades to serial
/// instead of deadlocking on a saturated pool.
class ThreadPool {
 public:
  explicit ThreadPool(size_t max_threads = DefaultMaxThreads());

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Joins all worker threads. No RunOnWorkers call may be in flight.
  ~ThreadPool();

  /// Runs `body(w)` once for each worker index w in [0, workers):
  /// worker 0 on the calling thread, the rest on pool threads. Blocks
  /// until all bodies complete. `body` must be safe to invoke
  /// concurrently from multiple threads.
  void RunOnWorkers(size_t workers, const std::function<void(size_t)>& body);

  size_t max_threads() const { return max_threads_; }

  /// True when the calling thread is one of this process's pool
  /// workers (any pool): used to serialize nested parallelism.
  static bool OnWorkerThread();

  /// hardware_concurrency, but at least 8 so scaling experiments can
  /// oversubscribe small machines deterministically.
  static size_t DefaultMaxThreads();

  /// The process-wide pool shared by query execution. Never destroyed
  /// (intentionally leaked) so worker threads cannot race static
  /// destruction at exit.
  static ThreadPool& Shared();

 private:
  void Submit(std::function<void()> task);
  void WorkerLoop();

  const size_t max_threads_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  size_t idle_ = 0;
  bool stopping_ = false;
};

}  // namespace tip

#endif  // TIP_COMMON_THREAD_POOL_H_
