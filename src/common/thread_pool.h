#ifndef TIP_COMMON_THREAD_POOL_H_
#define TIP_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"

namespace tip {

/// A lazily grown pool of worker threads for intra-query parallelism.
/// Threads are spawned on demand up to `max_threads` and live until the
/// pool is destroyed, so repeated parallel queries do not pay a
/// thread-start per morsel batch.
///
/// The only execution primitive is the fork-join `RunOnWorkers`: the
/// caller participates as worker 0 and the call does not return until
/// every worker body has finished, which keeps lifetime reasoning
/// simple (captured references outlive all workers by construction).
/// A body invoked on a pool thread that itself calls `RunOnWorkers`
/// runs its sub-bodies inline — nested parallelism degrades to serial
/// instead of deadlocking on a saturated pool.
class ThreadPool {
 public:
  explicit ThreadPool(size_t max_threads = DefaultMaxThreads());

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Joins all worker threads. No RunOnWorkers call may be in flight.
  ~ThreadPool();

  /// Runs `body(w)` once for each worker index w in [0, workers):
  /// worker 0 on the calling thread, the rest on pool threads. Blocks
  /// until all bodies complete — every body runs to its own completion
  /// even when another has already failed (bodies that want to stop
  /// early share a flag, as the parallel operators do).
  ///
  /// Error contract: the returned Status is the first error by worker
  /// index — a body's non-OK Status, or Internal("worker exception:
  /// ...") when a body throws (the exception is captured, never
  /// propagated into the pool thread). OK only when every body
  /// returned OK. `body` must be safe to invoke concurrently from
  /// multiple threads.
  Status RunOnWorkers(size_t workers,
                      const std::function<Status(size_t)>& body);

  size_t max_threads() const { return max_threads_; }

  /// Approximate number of pool workers a new RunOnWorkers call could
  /// put to work right now: capacity not currently running or queued.
  /// Racy by nature (other statements submit concurrently) — callers
  /// use it as a planning hint to degrade to serial under saturation,
  /// never for correctness.
  size_t ApproxAvailable() const;

  /// True when the calling thread is one of this process's pool
  /// workers (any pool): used to serialize nested parallelism.
  static bool OnWorkerThread();

  /// hardware_concurrency, but at least 8 so scaling experiments can
  /// oversubscribe small machines deterministically.
  static size_t DefaultMaxThreads();

  /// The process-wide pool shared by query execution. Never destroyed
  /// (intentionally leaked) so worker threads cannot race static
  /// destruction at exit.
  static ThreadPool& Shared();

 private:
  /// Enqueues `task`, growing the pool if needed. If the pool cannot
  /// dispatch (thread creation fails, or the "threadpool.dispatch"
  /// fault point fires), the task runs inline on the caller — slower
  /// but never lost.
  void Submit(std::function<void()> task);
  void WorkerLoop();

  const size_t max_threads_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  size_t idle_ = 0;
  bool stopping_ = false;
};

}  // namespace tip

#endif  // TIP_COMMON_THREAD_POOL_H_
