#ifndef TIP_COMMON_RNG_H_
#define TIP_COMMON_RNG_H_

#include <cassert>
#include <cstdint>

namespace tip {

/// A small deterministic PRNG (xorshift128+ seeded via splitmix64).
/// Workload generation and property tests must be reproducible across
/// platforms, so we do not use std::mt19937 distributions (whose output
/// is implementation-defined for std::uniform_int_distribution).
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // splitmix64 expansion of the seed into two non-zero lanes.
    uint64_t z = seed;
    s0_ = SplitMix(&z);
    s1_ = SplitMix(&z);
    if (s0_ == 0 && s1_ == 0) s1_ = 1;
  }

  /// Uniform 64-bit value.
  uint64_t Next() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t Uniform(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    uint64_t range = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
    if (range == 0) return static_cast<int64_t>(Next());  // full 64-bit range
    return lo + static_cast<int64_t>(Next() % range);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli draw with probability `p`.
  bool NextBool(double p) { return NextDouble() < p; }

 private:
  static uint64_t SplitMix(uint64_t* state) {
    uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  uint64_t s0_;
  uint64_t s1_;
};

}  // namespace tip

#endif  // TIP_COMMON_RNG_H_
