#ifndef TIP_COMMON_STATUS_H_
#define TIP_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace tip {

/// Error categories used across the TIP libraries. The set mirrors the
/// failure modes a DataBlade routine can report to the server: bad input
/// strings, out-of-range time arithmetic, catalog misses, type mismatches
/// discovered during overload resolution, and internal invariant breaks.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kNotFound = 3,
  kAlreadyExists = 4,
  kParseError = 5,
  kTypeError = 6,
  kNotImplemented = 7,
  kInternal = 8,
  // Statement lifecycle outcomes: a statement aborted by
  // Connection::Cancel(), by its SET statement_timeout_ms deadline, or
  // by its SET memory_limit_kb budget (also adversarial literal sizes).
  kCancelled = 9,
  kDeadlineExceeded = 10,
  kResourceExhausted = 11,
  // Persistent state that fails validation: torn/truncated/bit-rotted
  // snapshot files.
  kCorruption = 12,
};

/// Returns a stable human-readable name for `code` (e.g. "ParseError").
std::string_view StatusCodeName(StatusCode code);

/// A lightweight success-or-error value. TIP never throws across API
/// boundaries; every fallible routine returns `Status` or `Result<T>`.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    assert(code != StatusCode::kOk);
  }

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// A value of type `T` or an error `Status`. Analogous to
/// `arrow::Result` / `absl::StatusOr`.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value or from an error status keeps call
  /// sites terse: `return 42;` / `return Status::ParseError(...)`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok());
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Precondition: ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;  // OK iff value_ engaged.
  std::optional<T> value_;
};

/// Prefixes `context` onto a non-OK status's message, preserving its
/// code: Annotate(Corruption("checksum mismatch"), "snapshot 'x'") →
/// Corruption("snapshot 'x': checksum mismatch"). OK passes through.
/// Storage errors use this to accumulate file/LSN/offset context as
/// they propagate, so a failed open is diagnosable from the message.
inline Status Annotate(const Status& status, std::string_view context) {
  if (status.ok()) return status;
  return Status(status.code(),
                std::string(context) + ": " + status.message());
}

}  // namespace tip

/// Propagates a non-OK Status from `expr` out of the enclosing function.
#define TIP_RETURN_IF_ERROR(expr)                   \
  do {                                              \
    ::tip::Status _tip_status = (expr);             \
    if (!_tip_status.ok()) return _tip_status;      \
  } while (false)

#define TIP_CONCAT_IMPL_(x, y) x##y
#define TIP_CONCAT_(x, y) TIP_CONCAT_IMPL_(x, y)

/// Evaluates `rexpr` (a Result<T>); on error propagates the Status,
/// otherwise assigns the value to `lhs` (which may be a declaration).
#define TIP_ASSIGN_OR_RETURN(lhs, rexpr)                            \
  TIP_ASSIGN_OR_RETURN_IMPL_(TIP_CONCAT_(_tip_result_, __LINE__), lhs, rexpr)

#define TIP_ASSIGN_OR_RETURN_IMPL_(result, lhs, rexpr) \
  auto result = (rexpr);                               \
  if (!result.ok()) return result.status();            \
  lhs = std::move(result).value()

#endif  // TIP_COMMON_STATUS_H_
