#include "common/durable_fs.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/fault_injection.h"

namespace tip::fs {

Status FsyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status::NotFound("cannot open directory '" + dir +
                            "': " + std::strerror(errno));
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    return Status::Internal("fsync of directory '" + dir +
                            "' failed: " + std::strerror(errno));
  }
  return Status::OK();
}

std::string ParentDir(std::string_view path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string_view::npos) return ".";
  if (slash == 0) return "/";
  return std::string(path.substr(0, slash));
}

Status EnsureDir(const std::string& dir) {
  struct stat st;
  if (::stat(dir.c_str(), &st) == 0) {
    if (S_ISDIR(st.st_mode)) return Status::OK();
    return Status::InvalidArgument("'" + dir + "' exists and is not a "
                                   "directory");
  }
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::Internal("mkdir '" + dir +
                            "' failed: " + std::strerror(errno));
  }
  return FsyncDir(ParentDir(dir));
}

Result<std::string> ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    // Only a genuinely absent file is NotFound. Callers on the recovery
    // path treat NotFound as "fresh state, create it" — mapping EACCES,
    // EMFILE or EIO there would overwrite durable data we merely failed
    // to open.
    if (errno == ENOENT) {
      return Status::NotFound("'" + path + "' does not exist");
    }
    return Status::Internal("cannot open '" + path +
                            "': " + std::strerror(errno));
  }
  std::string bytes;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) bytes.append(buf, n);
  // A mid-read I/O error truncates the loop exactly like EOF does; only
  // ferror tells them apart, and a caller handed the short prefix would
  // mistake it for a torn file.
  const bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed) {
    return Status::Internal("I/O error while reading '" + path + "'");
  }
  return bytes;
}

Status AtomicWriteFile(const std::string& path, std::string_view bytes,
                       const std::string& fault_prefix) {
  const std::string tmp = path + ".tmp";
  Status inject = fault::MaybeFail((fault_prefix + ".open").c_str());
  std::FILE* f = inject.ok() ? std::fopen(tmp.c_str(), "wb") : nullptr;
  if (f == nullptr) {
    if (!inject.ok()) return inject;
    return Status::InvalidArgument("cannot open '" + tmp + "' for writing");
  }
  inject = fault::MaybeFail((fault_prefix + ".write").c_str());
  const size_t written =
      inject.ok() ? std::fwrite(bytes.data(), 1, bytes.size(), f) : 0;
  if (written != bytes.size()) {
    std::fclose(f);
    std::remove(tmp.c_str());
    if (!inject.ok()) return inject;
    return Status::Internal("short write to '" + tmp + "'");
  }
  inject = fault::MaybeFail((fault_prefix + ".fsync").c_str());
  const bool synced =
      inject.ok() && std::fflush(f) == 0 && ::fsync(fileno(f)) == 0;
  if (!synced) {
    std::fclose(f);
    std::remove(tmp.c_str());
    if (!inject.ok()) return inject;
    return Status::Internal("fsync of '" + tmp + "' failed");
  }
  inject = fault::MaybeFail((fault_prefix + ".close").c_str());
  if (!inject.ok() || std::fclose(f) != 0) {
    if (inject.ok()) f = nullptr;  // fclose already released it
    if (f != nullptr) std::fclose(f);
    std::remove(tmp.c_str());
    if (!inject.ok()) return inject;
    return Status::Internal("close of '" + tmp + "' failed");
  }
  inject = fault::MaybeFail((fault_prefix + ".rename").c_str());
  if (!inject.ok() || std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    if (!inject.ok()) return inject;
    return Status::Internal("rename of '" + tmp + "' over '" + path +
                            "' failed");
  }
  // The rename is not durable until the directory entry is on disk.
  TIP_RETURN_IF_ERROR(fault::MaybeFail((fault_prefix + ".dirsync").c_str()));
  return FsyncDir(ParentDir(path));
}

}  // namespace tip::fs
