#include "common/fault_injection.h"

#include <cstdlib>
#include <map>
#include <mutex>

#include "common/string_util.h"

namespace tip::fault {

namespace {

constexpr char kInjectedPrefix[] = "fault injected at ";

struct PointState {
  bool armed = false;
  uint64_t fail_at = 0;    // fail when armed_hits == fail_at
  uint64_t armed_hits = 0; // hits since arming
  uint64_t total_hits = 0; // hits since process start
};

struct Registry {
  std::mutex mu;
  std::map<std::string, PointState> points;
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: usable during exit
  return *r;
}

// Count of armed points; MaybeFail's lock-free fast path when zero.
std::atomic<int> g_armed_points{0};
std::once_flag g_env_once;

}  // namespace

void InjectAt(const std::string& point, uint64_t nth) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  PointState& state = reg.points[point];
  if (!state.armed) g_armed_points.fetch_add(1, std::memory_order_relaxed);
  state.armed = true;
  state.fail_at = nth;
  state.armed_hits = 0;
}

void Clear(const std::string& point) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  auto it = reg.points.find(point);
  if (it != reg.points.end() && it->second.armed) {
    it->second.armed = false;
    g_armed_points.fetch_sub(1, std::memory_order_relaxed);
  }
}

void ClearAll() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (auto& [name, state] : reg.points) {
    if (state.armed) {
      state.armed = false;
      g_armed_points.fetch_sub(1, std::memory_order_relaxed);
    }
  }
}

uint64_t HitCount(const std::string& point) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  auto it = reg.points.find(point);
  return it == reg.points.end() ? 0 : it->second.total_hits;
}

std::vector<std::string> ArmedPoints() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  std::vector<std::string> out;
  for (const auto& [name, state] : reg.points) {
    if (state.armed) out.push_back(name);
  }
  return out;
}

Status MaybeFail(const char* point) {
  ApplyEnvOnce();
  if (g_armed_points.load(std::memory_order_relaxed) == 0) {
    return Status::OK();
  }
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  PointState& state = reg.points[point];
  ++state.total_hits;
  if (!state.armed) return Status::OK();
  const uint64_t hit = state.armed_hits++;
  if (hit != state.fail_at) return Status::OK();
  state.armed = false;  // one-shot
  g_armed_points.fetch_sub(1, std::memory_order_relaxed);
  return Status::Internal(kInjectedPrefix + std::string(point));
}

bool IsInjected(const Status& status) {
  return status.code() == StatusCode::kInternal &&
         status.message().rfind(kInjectedPrefix, 0) == 0;
}

Status ApplySpec(const std::string& spec) {
  const std::string word = ToLowerAscii(StripAsciiWhitespace(spec));
  if (word.empty() || word == "off" || word == "none" || word == "clear") {
    ClearAll();
    return Status::OK();
  }
  // Validate the whole spec before arming anything.
  struct Arm {
    std::string point;
    uint64_t nth;
  };
  std::vector<Arm> arms;
  for (std::string_view entry : SplitString(word, ',')) {
    entry = StripAsciiWhitespace(entry);
    if (entry.empty()) continue;
    const size_t colon = entry.rfind(':');
    if (colon == std::string_view::npos || colon == 0 ||
        colon + 1 == entry.size()) {
      return Status::InvalidArgument(
          "fault spec entry must be 'point:n', got '" + std::string(entry) +
          "'");
    }
    Result<int64_t> nth = ParseInt64(entry.substr(colon + 1));
    if (!nth.ok() || *nth < 0) {
      return Status::InvalidArgument("fault spec count must be a "
                                     "non-negative integer in '" +
                                     std::string(entry) + "'");
    }
    arms.push_back({std::string(entry.substr(0, colon)),
                    static_cast<uint64_t>(*nth)});
  }
  if (arms.empty()) {
    return Status::InvalidArgument("empty fault spec '" + spec + "'");
  }
  for (const Arm& arm : arms) InjectAt(arm.point, arm.nth);
  return Status::OK();
}

void ApplyEnvOnce() {
  std::call_once(g_env_once, [] {
    const char* env = std::getenv("TIP_FAULT_INJECT");
    if (env == nullptr || *env == '\0') return;
    // A malformed env spec is ignored rather than fatal: fault
    // injection must never take the production path down.
    (void)ApplySpec(env);
  });
}

}  // namespace tip::fault
