#include "common/fault_injection.h"

#include <cstdlib>
#include <map>
#include <mutex>

#include "common/rng.h"
#include "common/string_util.h"

namespace tip::fault {

namespace {

constexpr char kInjectedPrefix[] = "fault injected at ";
constexpr uint64_t kDefaultSeed = 0x71b1;

enum class Trigger { kNth, kEvery, kProb };

struct PointState {
  bool armed = false;
  Trigger trigger = Trigger::kNth;
  bool kill = false;       // fire by exiting the process, not by Status
  uint64_t fail_at = 0;    // kNth: fail when armed_hits == fail_at
  uint64_t every_n = 1;    // kEvery: fail when armed_hits % every_n == 0
  double prob = 0.0;       // kProb
  uint64_t armed_hits = 0; // hits since arming
  uint64_t total_hits = 0; // hits since process start
};

struct Registry {
  std::mutex mu;
  std::map<std::string, PointState> points;
  Rng rng{kDefaultSeed};
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: usable during exit
  return *r;
}

// Count of armed points; MaybeFail's lock-free fast path when zero.
std::atomic<int> g_armed_points{0};
std::once_flag g_env_once;

// Replaces the state of `point` under the registry lock, keeping the
// armed-point count in step.
void Arm(const std::string& point, const PointState& next) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  PointState& state = reg.points[point];
  if (!state.armed) g_armed_points.fetch_add(1, std::memory_order_relaxed);
  const uint64_t total = state.total_hits;
  state = next;
  state.armed = true;
  state.armed_hits = 0;
  state.total_hits = total;
}

}  // namespace

void InjectAt(const std::string& point, uint64_t nth) {
  PointState s;
  s.trigger = Trigger::kNth;
  s.fail_at = nth;
  Arm(point, s);
}

void InjectEvery(const std::string& point, uint64_t n) {
  PointState s;
  s.trigger = Trigger::kEvery;
  s.every_n = n == 0 ? 1 : n;
  Arm(point, s);
}

void InjectProb(const std::string& point, double p) {
  PointState s;
  s.trigger = Trigger::kProb;
  s.prob = p;
  Arm(point, s);
}

void KillAt(const std::string& point, uint64_t nth) {
  PointState s;
  s.trigger = Trigger::kNth;
  s.fail_at = nth;
  s.kill = true;
  Arm(point, s);
}

void SetSeed(uint64_t seed) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  reg.rng = Rng(seed);
}

void Clear(const std::string& point) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  auto it = reg.points.find(point);
  if (it != reg.points.end() && it->second.armed) {
    it->second.armed = false;
    g_armed_points.fetch_sub(1, std::memory_order_relaxed);
  }
}

void ClearAll() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (auto& [name, state] : reg.points) {
    if (state.armed) {
      state.armed = false;
      g_armed_points.fetch_sub(1, std::memory_order_relaxed);
    }
  }
}

uint64_t HitCount(const std::string& point) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  auto it = reg.points.find(point);
  return it == reg.points.end() ? 0 : it->second.total_hits;
}

std::vector<std::string> ArmedPoints() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  std::vector<std::string> out;
  for (const auto& [name, state] : reg.points) {
    if (state.armed) out.push_back(name);
  }
  return out;
}

Status MaybeFail(const char* point) {
  ApplyEnvOnce();
  if (g_armed_points.load(std::memory_order_relaxed) == 0) {
    return Status::OK();
  }
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  PointState& state = reg.points[point];
  ++state.total_hits;
  if (!state.armed) return Status::OK();
  const uint64_t hit = state.armed_hits++;
  bool fire = false;
  switch (state.trigger) {
    case Trigger::kNth:
      fire = hit == state.fail_at;
      break;
    case Trigger::kEvery:
      // 1-based: every:1 fires each hit, every:3 on hits 2, 5, 8, ...
      fire = (hit + 1) % state.every_n == 0;
      break;
    case Trigger::kProb:
      fire = reg.rng.NextBool(state.prob);
      break;
  }
  if (!fire) return Status::OK();
  if (state.kill) {
    // The crash-torture trigger: die exactly here, no unwinding, no
    // atexit — the closest in-process stand-in for kill -9.
    std::_Exit(kKillExitCode);
  }
  if (state.trigger == Trigger::kNth) {
    state.armed = false;  // one-shot
    g_armed_points.fetch_sub(1, std::memory_order_relaxed);
  }
  return Status::Internal(kInjectedPrefix + std::string(point));
}

bool IsInjected(const Status& status) {
  return status.code() == StatusCode::kInternal &&
         status.message().rfind(kInjectedPrefix, 0) == 0;
}

Status ApplySpec(const std::string& spec) {
  const std::string word = ToLowerAscii(StripAsciiWhitespace(spec));
  if (word.empty() || word == "off" || word == "none" || word == "clear") {
    ClearAll();
    return Status::OK();
  }
  // Validate the whole spec before arming anything.
  struct Arm {
    enum class What { kNth, kEvery, kProb, kKill, kSeed } what;
    std::string point;
    uint64_t n = 0;
    double p = 0.0;
  };
  std::vector<Arm> arms;
  for (std::string_view entry : SplitString(word, ',')) {
    entry = StripAsciiWhitespace(entry);
    if (entry.empty()) continue;
    std::vector<std::string_view> parts;
    for (std::string_view part : SplitString(entry, ':')) {
      parts.push_back(StripAsciiWhitespace(part));
    }
    const Status malformed = Status::InvalidArgument(
        "fault spec entry must be 'point:n', 'point:every:n', "
        "'point:prob:p', 'point:kill:n' or 'seed:n', got '" +
        std::string(entry) + "'");
    if (parts.size() < 2 || parts.size() > 3 || parts[0].empty()) {
      return malformed;
    }
    Arm arm;
    arm.point = std::string(parts[0]);
    std::string_view count = parts.back();
    if (parts.size() == 2) {
      arm.what = arm.point == "seed" ? Arm::What::kSeed : Arm::What::kNth;
    } else if (parts[1] == "every") {
      arm.what = Arm::What::kEvery;
    } else if (parts[1] == "kill") {
      arm.what = Arm::What::kKill;
    } else if (parts[1] == "prob") {
      arm.what = Arm::What::kProb;
      // Probability parses as a decimal in [0, 1]; everything else
      // below parses as a non-negative integer.
      const std::string text(count);
      char* end = nullptr;
      arm.p = std::strtod(text.c_str(), &end);
      if (end == text.c_str() || *end != '\0' || arm.p < 0.0 ||
          arm.p > 1.0) {
        return Status::InvalidArgument(
            "fault spec probability must be a decimal in [0, 1] in '" +
            std::string(entry) + "'");
      }
      arms.push_back(arm);
      continue;
    } else {
      return malformed;
    }
    Result<int64_t> n = ParseInt64(count);
    if (!n.ok() || *n < 0) {
      return Status::InvalidArgument("fault spec count must be a "
                                     "non-negative integer in '" +
                                     std::string(entry) + "'");
    }
    if (arm.what == Arm::What::kEvery && *n == 0) {
      return Status::InvalidArgument("fault spec 'every' count must be "
                                     "at least 1 in '" +
                                     std::string(entry) + "'");
    }
    arm.n = static_cast<uint64_t>(*n);
    arms.push_back(arm);
  }
  if (arms.empty()) {
    return Status::InvalidArgument("empty fault spec '" + spec + "'");
  }
  for (const Arm& arm : arms) {
    switch (arm.what) {
      case Arm::What::kNth:
        InjectAt(arm.point, arm.n);
        break;
      case Arm::What::kEvery:
        InjectEvery(arm.point, arm.n);
        break;
      case Arm::What::kProb:
        InjectProb(arm.point, arm.p);
        break;
      case Arm::What::kKill:
        KillAt(arm.point, arm.n);
        break;
      case Arm::What::kSeed:
        SetSeed(arm.n);
        break;
    }
  }
  return Status::OK();
}

void ApplyEnvOnce() {
  std::call_once(g_env_once, [] {
    const char* env = std::getenv("TIP_FAULT_INJECT");
    if (env == nullptr || *env == '\0') return;
    // A malformed env spec is ignored rather than fatal: fault
    // injection must never take the production path down.
    (void)ApplySpec(env);
  });
}

}  // namespace tip::fault
