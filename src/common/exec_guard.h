#ifndef TIP_COMMON_EXEC_GUARD_H_
#define TIP_COMMON_EXEC_GUARD_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>

#include "common/status.h"

namespace tip {

/// Session-lifetime counters of statement-lifecycle events, read back
/// through `tip_guard_stats()` and appended to EXPLAIN output. All
/// fields are monotonically increasing; writers are the statements
/// themselves, so every field is an atomic.
struct GuardEvents {
  std::atomic<uint64_t> timeouts{0};
  std::atomic<uint64_t> cancels{0};
  std::atomic<uint64_t> oom{0};
  std::atomic<uint64_t> parallel_fallbacks{0};
};

/// Per-statement resource guard: a deadline, a cooperative cancellation
/// flag, and a memory accountant, created by `Database::Execute` and
/// threaded to every operator through the EvalContext. Operators call
/// `Check()` at row/batch granularity and `Reserve()` when they buffer
/// data; a tripped guard makes every subsequent check fail with the
/// same Status, so the plan unwinds promptly through the normal error
/// path (no exceptions, no partial-state surprises).
///
/// Thread-safety: `Cancel()` may be called from any thread at any time
/// (the client API's thread-safe cancel); `Check()`/`Reserve()` may be
/// called concurrently by parallel workers. Setup calls (SetDeadline,
/// SetMemoryLimit, set_events) happen before execution starts.
class ExecGuard {
 public:
  using Clock = std::chrono::steady_clock;

  /// How many Check() calls may pass between two reads of the clock.
  /// The cancellation flag is consulted on *every* call; only the
  /// deadline comparison is amortized.
  static constexpr uint64_t kDeadlineStride = 128;

  ExecGuard() = default;
  ExecGuard(const ExecGuard&) = delete;
  ExecGuard& operator=(const ExecGuard&) = delete;

  /// Arms the deadline `timeout_ms` from now. 0 disables (the default).
  void SetTimeout(int64_t timeout_ms) {
    timeout_ms_ = timeout_ms;
    deadline_armed_ = timeout_ms > 0;
    if (deadline_armed_) {
      deadline_ = Clock::now() + std::chrono::milliseconds(timeout_ms);
    }
  }

  /// Arms the memory budget. 0 disables (the default).
  void SetMemoryLimit(size_t limit_bytes) { memory_limit_ = limit_bytes; }

  /// Points the guard at the session's event counters (may be null).
  void set_events(GuardEvents* events) { events_ = events; }

  /// Requests cancellation. Thread-safe; the statement aborts at its
  /// next cooperative check.
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// The cooperative check, called once per row/batch. Fast path is one
  /// relaxed atomic load (cancel flag) plus, when a deadline is armed,
  /// one relaxed fetch_add with a clock read every kDeadlineStride
  /// calls.
  Status Check() {
    if (cancelled_.load(std::memory_order_relaxed)) return TripCancelled();
    if (deadline_armed_ &&
        (check_calls_.fetch_add(1, std::memory_order_relaxed) &
         (kDeadlineStride - 1)) == 0) {
      return CheckDeadline();
    }
    return Status::OK();
  }

  /// Like Check() but always consults the clock — the per-morsel /
  /// per-batch variant, so a timeout is detected within one quantum
  /// even if the stride has not elapsed.
  Status CheckNow() {
    if (cancelled_.load(std::memory_order_relaxed)) return TripCancelled();
    if (deadline_armed_) return CheckDeadline();
    return Status::OK();
  }

  /// Accounts `bytes` of statement-local buffering (sort/hash/result
  /// buffers). Fails with ResourceExhausted when the budget is
  /// exceeded; accounting is approximate by design (capacity
  /// estimates, not allocator hooks).
  Status Reserve(size_t bytes);

  /// Returns previously Reserve()d bytes (operators that free a buffer
  /// mid-statement; the final release at statement end is implicit in
  /// the guard's destruction).
  void Release(size_t bytes) {
    bytes_used_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  size_t bytes_used() const {
    return bytes_used_.load(std::memory_order_relaxed);
  }
  size_t bytes_peak() const {
    return bytes_peak_.load(std::memory_order_relaxed);
  }
  size_t memory_limit() const { return memory_limit_; }

  /// Records that a parallel operator degraded to serial execution
  /// (saturated pool or failed worker).
  void RecordParallelFallback() {
    if (events_ != nullptr) {
      events_->parallel_fallbacks.fetch_add(1, std::memory_order_relaxed);
    }
  }

 private:
  Status TripCancelled();
  Status CheckDeadline();

  std::atomic<bool> cancelled_{false};
  std::atomic<uint64_t> check_calls_{0};

  bool deadline_armed_ = false;
  int64_t timeout_ms_ = 0;
  Clock::time_point deadline_{};

  size_t memory_limit_ = 0;  // 0 = unlimited
  std::atomic<size_t> bytes_used_{0};
  std::atomic<size_t> bytes_peak_{0};

  // Each terminal event is counted once per statement even though every
  // subsequent Check() keeps failing.
  std::atomic<bool> event_recorded_{false};
  GuardEvents* events_ = nullptr;
};

}  // namespace tip

#endif  // TIP_COMMON_EXEC_GUARD_H_
