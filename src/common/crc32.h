#ifndef TIP_COMMON_CRC32_H_
#define TIP_COMMON_CRC32_H_

#include <cstdint>
#include <string_view>

namespace tip {

/// CRC-32 (IEEE 802.3 polynomial, the zlib/PNG one), table-driven.
/// Used to checksum snapshot sections so torn or bit-rotted files are
/// detected at load instead of silently misread.
uint32_t Crc32(std::string_view bytes);

/// Incremental form: `crc` is the value returned by a previous call
/// (start from 0).
uint32_t Crc32Update(uint32_t crc, std::string_view bytes);

}  // namespace tip

#endif  // TIP_COMMON_CRC32_H_
