#ifndef TIP_CORE_ELEMENT_REFERENCE_H_
#define TIP_CORE_ELEMENT_REFERENCE_H_

#include <set>

#include "core/element.h"

namespace tip::reference {

/// Obviously-correct (and obviously slow) reference implementations of
/// the Element algebra. Property tests check the linear-merge
/// implementations in core/element.cc against these; the benchmark
/// suite uses QuadraticUnion as the baseline that the paper's
/// "linear in the number of periods" claim is measured against.

/// Explodes an element into its chronon set. Only usable when the
/// covered duration is small.
std::set<int64_t> ExplodeSeconds(const GroundedElement& e);

/// Rebuilds a canonical element from a chronon set.
GroundedElement ImplodeSeconds(const std::set<int64_t>& seconds);

/// Set algebra via chronon sets.
GroundedElement SetUnion(const GroundedElement& a, const GroundedElement& b);
GroundedElement SetIntersect(const GroundedElement& a,
                             const GroundedElement& b);
GroundedElement SetDifference(const GroundedElement& a,
                              const GroundedElement& b);
bool SetOverlaps(const GroundedElement& a, const GroundedElement& b);
bool SetContains(const GroundedElement& a, const GroundedElement& b);

/// The naive period-algebra union: insert b's periods one at a time,
/// renormalizing the whole list after each insertion — O(n^2 log n)
/// overall versus the linear merge. Produces identical results.
GroundedElement QuadraticUnion(const GroundedElement& a,
                               const GroundedElement& b);

/// The naive intersect: all-pairs period intersection, then normalize —
/// O(n*m) pair tests versus the linear merge.
GroundedElement QuadraticIntersect(const GroundedElement& a,
                                   const GroundedElement& b);

/// The naive overlap test: all-pairs, no early-exit ordering knowledge.
bool QuadraticOverlaps(const GroundedElement& a, const GroundedElement& b);

}  // namespace tip::reference

#endif  // TIP_CORE_ELEMENT_REFERENCE_H_
