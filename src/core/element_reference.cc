#include "core/element_reference.h"

#include <vector>

namespace tip::reference {

std::set<int64_t> ExplodeSeconds(const GroundedElement& e) {
  std::set<int64_t> out;
  for (const GroundedPeriod& p : e.periods()) {
    for (int64_t s = p.start().seconds(); s <= p.end().seconds(); ++s) {
      out.insert(s);
    }
  }
  return out;
}

GroundedElement ImplodeSeconds(const std::set<int64_t>& seconds) {
  std::vector<GroundedPeriod> periods;
  auto it = seconds.begin();
  while (it != seconds.end()) {
    const int64_t start = *it;
    int64_t end = start;
    ++it;
    while (it != seconds.end() && *it == end + 1) {
      end = *it;
      ++it;
    }
    periods.push_back(*GroundedPeriod::Make(*Chronon::FromSeconds(start),
                                            *Chronon::FromSeconds(end)));
  }
  return GroundedElement::FromPeriods(std::move(periods));
}

GroundedElement SetUnion(const GroundedElement& a,
                         const GroundedElement& b) {
  std::set<int64_t> out = ExplodeSeconds(a);
  std::set<int64_t> other = ExplodeSeconds(b);
  out.insert(other.begin(), other.end());
  return ImplodeSeconds(out);
}

GroundedElement SetIntersect(const GroundedElement& a,
                             const GroundedElement& b) {
  std::set<int64_t> sa = ExplodeSeconds(a);
  std::set<int64_t> sb = ExplodeSeconds(b);
  std::set<int64_t> out;
  for (int64_t s : sa) {
    if (sb.count(s) > 0) out.insert(s);
  }
  return ImplodeSeconds(out);
}

GroundedElement SetDifference(const GroundedElement& a,
                              const GroundedElement& b) {
  std::set<int64_t> sa = ExplodeSeconds(a);
  std::set<int64_t> sb = ExplodeSeconds(b);
  std::set<int64_t> out;
  for (int64_t s : sa) {
    if (sb.count(s) == 0) out.insert(s);
  }
  return ImplodeSeconds(out);
}

bool SetOverlaps(const GroundedElement& a, const GroundedElement& b) {
  std::set<int64_t> sa = ExplodeSeconds(a);
  std::set<int64_t> sb = ExplodeSeconds(b);
  for (int64_t s : sa) {
    if (sb.count(s) > 0) return true;
  }
  return false;
}

bool SetContains(const GroundedElement& a, const GroundedElement& b) {
  std::set<int64_t> sa = ExplodeSeconds(a);
  std::set<int64_t> sb = ExplodeSeconds(b);
  for (int64_t s : sb) {
    if (sa.count(s) == 0) return false;
  }
  return true;
}

GroundedElement QuadraticUnion(const GroundedElement& a,
                               const GroundedElement& b) {
  std::vector<GroundedPeriod> acc(a.periods().begin(), a.periods().end());
  GroundedElement current = GroundedElement::FromPeriods(acc);
  for (const GroundedPeriod& p : b.periods()) {
    std::vector<GroundedPeriod> next(current.periods().begin(),
                                     current.periods().end());
    next.push_back(p);
    current = GroundedElement::FromPeriods(std::move(next));
  }
  return current;
}

GroundedElement QuadraticIntersect(const GroundedElement& a,
                                   const GroundedElement& b) {
  std::vector<GroundedPeriod> out;
  for (const GroundedPeriod& pa : a.periods()) {
    for (const GroundedPeriod& pb : b.periods()) {
      const Chronon start = std::max(pa.start(), pb.start());
      const Chronon end = std::min(pa.end(), pb.end());
      if (start <= end) out.push_back(*GroundedPeriod::Make(start, end));
    }
  }
  return GroundedElement::FromPeriods(std::move(out));
}

bool QuadraticOverlaps(const GroundedElement& a, const GroundedElement& b) {
  bool found = false;
  for (const GroundedPeriod& pa : a.periods()) {
    for (const GroundedPeriod& pb : b.periods()) {
      found = found || pa.Overlaps(pb);
    }
  }
  return found;
}

}  // namespace tip::reference
