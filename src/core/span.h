#ifndef TIP_CORE_SPAN_H_
#define TIP_CORE_SPAN_H_

#include <compare>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace tip {

/// A `Span` is a signed duration between two Chronons, e.g. `7 12:00:00`
/// (seven and a half days) or `-7` (seven days back). Stored as a signed
/// second count; arithmetic is overflow-checked.
class Span {
 public:
  /// The zero-length span.
  Span() : seconds_(0) {}

  static Span Zero() { return Span(); }

  /// Unchecked construction from a raw second count. Every int64 second
  /// count is a representable Span.
  static Span FromSeconds(int64_t seconds) { return Span(seconds); }

  /// Convenience constructors; fail on overflow.
  static Result<Span> FromDays(int64_t days);
  static Result<Span> FromHours(int64_t hours);
  static Result<Span> FromMinutes(int64_t minutes);
  static Result<Span> FromWeeks(int64_t weeks);

  /// Parses `[+|-]DAYS[ HH:MM:SS]` (the paper's notation): `7 12:00:00`,
  /// `-7`, `0 08:00:00`. A leading sign applies to the whole magnitude.
  static Result<Span> Parse(std::string_view text);

  /// Formats in the paper's notation; the `HH:MM:SS` part is omitted when
  /// the sub-day remainder is zero.
  std::string ToString() const;

  int64_t seconds() const { return seconds_; }
  bool IsZero() const { return seconds_ == 0; }
  bool IsNegative() const { return seconds_ < 0; }

  /// Checked arithmetic.
  Result<Span> Add(const Span& other) const;
  Result<Span> Subtract(const Span& other) const;
  Result<Span> Multiply(int64_t factor) const;
  /// Integer division (truncating); fails on division by zero.
  Result<Span> Divide(int64_t divisor) const;
  /// Ratio of two spans (truncating); fails when `other` is zero.
  Result<int64_t> DivideBy(const Span& other) const;
  /// Two's-complement negation (Negate(INT64_MIN) == INT64_MIN).
  Span Negate() const {
    return Span(static_cast<int64_t>(0u - static_cast<uint64_t>(seconds_)));
  }
  Span Abs() const { return seconds_ < 0 ? Negate() : *this; }

  friend auto operator<=>(const Span&, const Span&) = default;

 private:
  explicit Span(int64_t seconds) : seconds_(seconds) {}

  int64_t seconds_;
};

}  // namespace tip

#endif  // TIP_CORE_SPAN_H_
