#include "core/element.h"

#include <algorithm>
#include <cassert>

#include "common/string_util.h"
#include "core/parse_limits.h"

namespace tip {

namespace {

// Returns true iff `periods` is already in canonical form: sorted by
// start, pairwise disjoint, and non-adjacent (gap of at least one
// chronon between consecutive periods).
bool IsCanonical(const std::vector<GroundedPeriod>& periods) {
  for (size_t i = 1; i < periods.size(); ++i) {
    if (periods[i - 1].end().seconds() + 1 >= periods[i].start().seconds()) {
      return false;
    }
  }
  return true;
}

// Merges sorted-by-start periods into canonical form in place.
// Precondition: `periods` sorted by (start, end).
void CoalesceSorted(std::vector<GroundedPeriod>* periods) {
  if (periods->empty()) return;
  size_t out = 0;
  for (size_t i = 1; i < periods->size(); ++i) {
    GroundedPeriod& last = (*periods)[out];
    const GroundedPeriod& cur = (*periods)[i];
    if (cur.start().seconds() <= last.end().seconds() + 1) {
      // Overlapping or adjacent: extend the accumulated period.
      if (cur.end() > last.end()) {
        last = *GroundedPeriod::Make(last.start(), cur.end());
      }
    } else {
      (*periods)[++out] = cur;
    }
  }
  periods->resize(out + 1);
}

}  // namespace

GroundedElement GroundedElement::FromPeriods(
    std::vector<GroundedPeriod> periods) {
  if (IsCanonical(periods)) return GroundedElement(std::move(periods));
  std::sort(periods.begin(), periods.end(),
            [](const GroundedPeriod& a, const GroundedPeriod& b) {
              if (a.start() != b.start()) return a.start() < b.start();
              return a.end() < b.end();
            });
  CoalesceSorted(&periods);
  return GroundedElement(std::move(periods));
}

GroundedElement GroundedElement::Union(const GroundedElement& a,
                                       const GroundedElement& b) {
  // Single linear merge over two canonical operands.
  std::vector<GroundedPeriod> merged;
  merged.reserve(a.periods_.size() + b.periods_.size());
  size_t i = 0, j = 0;
  while (i < a.periods_.size() || j < b.periods_.size()) {
    const GroundedPeriod* next;
    if (j >= b.periods_.size() ||
        (i < a.periods_.size() &&
         a.periods_[i].start() <= b.periods_[j].start())) {
      next = &a.periods_[i++];
    } else {
      next = &b.periods_[j++];
    }
    if (!merged.empty() &&
        next->start().seconds() <= merged.back().end().seconds() + 1) {
      if (next->end() > merged.back().end()) {
        merged.back() = *GroundedPeriod::Make(merged.back().start(),
                                              next->end());
      }
    } else {
      merged.push_back(*next);
    }
  }
  return GroundedElement(std::move(merged));
}

GroundedElement GroundedElement::Intersect(const GroundedElement& a,
                                           const GroundedElement& b) {
  std::vector<GroundedPeriod> out;
  size_t i = 0, j = 0;
  while (i < a.periods_.size() && j < b.periods_.size()) {
    const GroundedPeriod& pa = a.periods_[i];
    const GroundedPeriod& pb = b.periods_[j];
    Chronon start = std::max(pa.start(), pb.start());
    Chronon end = std::min(pa.end(), pb.end());
    if (start <= end) out.push_back(*GroundedPeriod::Make(start, end));
    // Advance whichever period ends first; it cannot intersect anything
    // further in the other operand.
    if (pa.end() < pb.end()) {
      ++i;
    } else {
      ++j;
    }
  }
  // Intersection of canonical operands is canonical (result periods are
  // separated by at least the gaps of one operand).
  return GroundedElement(std::move(out));
}

GroundedElement GroundedElement::Difference(const GroundedElement& a,
                                            const GroundedElement& b) {
  std::vector<GroundedPeriod> out;
  size_t j = 0;
  for (const GroundedPeriod& pa : a.periods_) {
    // `cursor` is the start of the not-yet-subtracted remainder of pa.
    int64_t cursor = pa.start().seconds();
    const int64_t pa_end = pa.end().seconds();
    // Skip b-periods entirely before the remainder.
    while (j < b.periods_.size() &&
           b.periods_[j].end().seconds() < cursor) {
      ++j;
    }
    size_t k = j;
    while (k < b.periods_.size() &&
           b.periods_[k].start().seconds() <= pa_end) {
      const GroundedPeriod& pb = b.periods_[k];
      if (pb.start().seconds() > cursor) {
        out.push_back(*GroundedPeriod::Make(
            *Chronon::FromSeconds(cursor),
            *Chronon::FromSeconds(pb.start().seconds() - 1)));
      }
      cursor = std::max(cursor, pb.end().seconds() + 1);
      if (cursor > pa_end) break;
      ++k;
    }
    if (cursor <= pa_end) {
      out.push_back(*GroundedPeriod::Make(*Chronon::FromSeconds(cursor),
                                          pa.end()));
    }
    // Note: do not advance j past periods that may overlap the next pa.
  }
  return GroundedElement(std::move(out));
}

bool GroundedElement::Overlaps(const GroundedElement& other) const {
  size_t i = 0, j = 0;
  while (i < periods_.size() && j < other.periods_.size()) {
    if (periods_[i].Overlaps(other.periods_[j])) return true;
    if (periods_[i].end() < other.periods_[j].end()) {
      ++i;
    } else {
      ++j;
    }
  }
  return false;
}

bool GroundedElement::Contains(const GroundedElement& other) const {
  size_t i = 0;
  for (const GroundedPeriod& p : other.periods_) {
    while (i < periods_.size() && periods_[i].end() < p.start()) ++i;
    if (i >= periods_.size() || !periods_[i].Contains(p)) return false;
  }
  return true;
}

bool GroundedElement::Contains(Chronon c) const {
  // Binary search for the first period whose end >= c.
  auto it = std::lower_bound(
      periods_.begin(), periods_.end(), c,
      [](const GroundedPeriod& p, Chronon value) { return p.end() < value; });
  return it != periods_.end() && it->Contains(c);
}

Span GroundedElement::TotalDuration() const {
  int64_t total = 0;
  for (const GroundedPeriod& p : periods_) {
    total += p.Duration().seconds();
  }
  return Span::FromSeconds(total);
}

GroundedPeriod GroundedElement::Extent() const {
  assert(!periods_.empty());
  return *GroundedPeriod::Make(periods_.front().start(),
                               periods_.back().end());
}

std::string GroundedElement::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < periods_.size(); ++i) {
    if (i > 0) out += ", ";
    out += periods_[i].ToString();
  }
  out += "}";
  return out;
}

Element Element::FromPeriods(std::vector<Period> periods) {
  bool all_absolute = true;
  for (const Period& p : periods) {
    if (!p.is_absolute()) {
      all_absolute = false;
      break;
    }
  }
  if (!all_absolute) {
    return Element(std::move(periods), /*absolute_canonical=*/false);
  }
  // Eager normalization of the all-absolute fast path. Absolute periods
  // built through the validating factories satisfy start <= end, but the
  // unchecked Period(Instant, Instant) constructor can smuggle in an
  // inverted absolute period, so grounding is checked: on failure we
  // store the periods verbatim and let Element::Ground surface the
  // error to the caller that actually evaluates the element.
  std::vector<GroundedPeriod> grounded;
  grounded.reserve(periods.size());
  TxContext ctx;  // irrelevant: no NOW-relative endpoints
  for (const Period& p : periods) {
    Result<GroundedPeriod> g = p.Ground(ctx);
    if (!g.ok()) {
      return Element(std::move(periods), /*absolute_canonical=*/false);
    }
    grounded.push_back(*g);
  }
  GroundedElement canonical = GroundedElement::FromPeriods(
      std::move(grounded));
  std::vector<Period> out;
  out.reserve(canonical.size());
  for (const GroundedPeriod& p : canonical.periods()) {
    out.push_back(Period::FromGrounded(p));
  }
  return Element(std::move(out), /*absolute_canonical=*/true);
}

Element Element::FromGrounded(const GroundedElement& grounded) {
  std::vector<Period> out;
  out.reserve(grounded.size());
  for (const GroundedPeriod& p : grounded.periods()) {
    out.push_back(Period::FromGrounded(p));
  }
  return Element(std::move(out), /*absolute_canonical=*/true);
}

Result<GroundedElement> Element::Ground(const TxContext& ctx) const {
  std::vector<GroundedPeriod> grounded;
  grounded.reserve(periods_.size());
  for (const Period& p : periods_) {
    TIP_ASSIGN_OR_RETURN(Chronon start, p.start().Ground(ctx));
    TIP_ASSIGN_OR_RETURN(Chronon end, p.end().Ground(ctx));
    if (start > end) {
      // A NOW-relative period that grounds inverted denotes "no time
      // yet" under this transaction time — e.g. {[1999-10-01, NOW]}
      // browsed with NOW overridden to 1999-09-17 — and contributes
      // nothing (Clifford et al.'s semantics for NOW before start). An
      // inverted *absolute* period has no such reading: it can only
      // come from the unchecked Period constructor, and is an error.
      if (p.is_absolute()) {
        return Status::InvalidArgument("inverted absolute period " +
                                       p.ToString() + " in Element");
      }
      continue;
    }
    grounded.push_back(*GroundedPeriod::Make(start, end));
  }
  // FromPeriods detects already-canonical input (the absolute fast
  // path) and skips the sort+coalesce pass.
  return GroundedElement::FromPeriods(std::move(grounded));
}

Result<Element> Element::Parse(std::string_view text) {
  if (text.size() > kMaxLiteralBytes) {
    return Status::ResourceExhausted("Element literal exceeds " +
                                     std::to_string(kMaxLiteralBytes) +
                                     " bytes");
  }
  std::string_view s = StripAsciiWhitespace(text);
  if (s.size() < 2 || s.front() != '{' || s.back() != '}') {
    return Status::ParseError("Element literal must be braced: '" +
                              std::string(text) + "'");
  }
  std::string_view rest = StripAsciiWhitespace(s.substr(1, s.size() - 2));
  std::vector<Period> periods;
  // Strict grammar: '[' period ']' (',' '[' period ']')* — a comma is
  // legal only *between* two periods, so leading, trailing and doubled
  // commas are all rejected.
  while (!rest.empty()) {
    if (rest.front() != '[') {
      return Status::ParseError("unexpected text before period in Element "
                                "literal: '" + std::string(text) + "'");
    }
    size_t close = rest.find(']');
    if (close == std::string_view::npos) {
      return Status::ParseError("unterminated period in Element literal: '" +
                                std::string(text) + "'");
    }
    TIP_ASSIGN_OR_RETURN(Period p, Period::Parse(rest.substr(0, close + 1)));
    if (periods.size() >= kMaxElementPeriods) {
      return Status::ResourceExhausted("Element literal exceeds " +
                                       std::to_string(kMaxElementPeriods) +
                                       " periods");
    }
    periods.push_back(p);
    rest = StripAsciiWhitespace(rest.substr(close + 1));
    if (rest.empty()) break;
    if (rest.front() != ',') {
      return Status::ParseError("expected ',' between periods in Element "
                                "literal: '" + std::string(text) + "'");
    }
    rest = StripAsciiWhitespace(rest.substr(1));
    if (rest.empty()) {
      return Status::ParseError("trailing ',' in Element literal: '" +
                                std::string(text) + "'");
    }
  }
  return Element::FromPeriods(std::move(periods));
}

std::string Element::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < periods_.size(); ++i) {
    if (i > 0) out += ", ";
    out += periods_[i].ToString();
  }
  out += "}";
  return out;
}

Result<Element> ElementUnion(const Element& a, const Element& b,
                             const TxContext& ctx) {
  TIP_ASSIGN_OR_RETURN(GroundedElement ga, a.Ground(ctx));
  TIP_ASSIGN_OR_RETURN(GroundedElement gb, b.Ground(ctx));
  return Element::FromGrounded(GroundedElement::Union(ga, gb));
}

Result<Element> ElementIntersect(const Element& a, const Element& b,
                                 const TxContext& ctx) {
  TIP_ASSIGN_OR_RETURN(GroundedElement ga, a.Ground(ctx));
  TIP_ASSIGN_OR_RETURN(GroundedElement gb, b.Ground(ctx));
  return Element::FromGrounded(GroundedElement::Intersect(ga, gb));
}

Result<Element> ElementDifference(const Element& a, const Element& b,
                                  const TxContext& ctx) {
  TIP_ASSIGN_OR_RETURN(GroundedElement ga, a.Ground(ctx));
  TIP_ASSIGN_OR_RETURN(GroundedElement gb, b.Ground(ctx));
  return Element::FromGrounded(GroundedElement::Difference(ga, gb));
}

Result<bool> ElementOverlaps(const Element& a, const Element& b,
                             const TxContext& ctx) {
  TIP_ASSIGN_OR_RETURN(GroundedElement ga, a.Ground(ctx));
  TIP_ASSIGN_OR_RETURN(GroundedElement gb, b.Ground(ctx));
  return ga.Overlaps(gb);
}

Result<bool> ElementContains(const Element& a, const Element& b,
                             const TxContext& ctx) {
  TIP_ASSIGN_OR_RETURN(GroundedElement ga, a.Ground(ctx));
  TIP_ASSIGN_OR_RETURN(GroundedElement gb, b.Ground(ctx));
  return ga.Contains(gb);
}

Result<bool> ElementContainsChronon(const Element& a, Chronon c,
                                    const TxContext& ctx) {
  TIP_ASSIGN_OR_RETURN(GroundedElement ga, a.Ground(ctx));
  return ga.Contains(c);
}

Result<Span> ElementLength(const Element& a, const TxContext& ctx) {
  TIP_ASSIGN_OR_RETURN(GroundedElement ga, a.Ground(ctx));
  return ga.TotalDuration();
}

Result<Chronon> ElementStart(const Element& a, const TxContext& ctx) {
  TIP_ASSIGN_OR_RETURN(GroundedElement ga, a.Ground(ctx));
  if (ga.IsEmpty()) {
    return Status::InvalidArgument("start() of an empty Element");
  }
  return ga.periods().front().start();
}

Result<Chronon> ElementEnd(const Element& a, const TxContext& ctx) {
  TIP_ASSIGN_OR_RETURN(GroundedElement ga, a.Ground(ctx));
  if (ga.IsEmpty()) {
    return Status::InvalidArgument("end() of an empty Element");
  }
  return ga.periods().back().end();
}

Result<GroundedPeriod> ElementFirst(const Element& a, const TxContext& ctx) {
  TIP_ASSIGN_OR_RETURN(GroundedElement ga, a.Ground(ctx));
  if (ga.IsEmpty()) {
    return Status::InvalidArgument("first() of an empty Element");
  }
  return ga.periods().front();
}

Result<GroundedPeriod> ElementLast(const Element& a, const TxContext& ctx) {
  TIP_ASSIGN_OR_RETURN(GroundedElement ga, a.Ground(ctx));
  if (ga.IsEmpty()) {
    return Status::InvalidArgument("last() of an empty Element");
  }
  return ga.periods().back();
}

}  // namespace tip
