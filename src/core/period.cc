#include "core/period.h"

#include "common/string_util.h"
#include "core/parse_limits.h"

namespace tip {

std::string_view AllenRelationName(AllenRelation relation) {
  switch (relation) {
    case AllenRelation::kBefore:
      return "before";
    case AllenRelation::kMeets:
      return "meets";
    case AllenRelation::kOverlaps:
      return "overlaps";
    case AllenRelation::kFinishedBy:
      return "finished_by";
    case AllenRelation::kContains:
      return "contains";
    case AllenRelation::kStarts:
      return "starts";
    case AllenRelation::kEquals:
      return "equals";
    case AllenRelation::kStartedBy:
      return "started_by";
    case AllenRelation::kDuring:
      return "during";
    case AllenRelation::kFinishes:
      return "finishes";
    case AllenRelation::kOverlappedBy:
      return "overlapped_by";
    case AllenRelation::kMetBy:
      return "met_by";
    case AllenRelation::kAfter:
      return "after";
  }
  return "unknown";
}

Result<GroundedPeriod> GroundedPeriod::Make(Chronon start, Chronon end) {
  if (start > end) {
    return Status::InvalidArgument("Period start " + start.ToString() +
                                   " is after end " + end.ToString());
  }
  return GroundedPeriod(start, end);
}

Span GroundedPeriod::Duration() const {
  // Closed interval: [s, e] contains (e - s) + 1 chronons.
  return Span::FromSeconds(end_.seconds() - start_.seconds() + 1);
}

AllenRelation GroundedPeriod::Allen(const GroundedPeriod& a,
                                    const GroundedPeriod& b) {
  const int64_t as = a.start_.seconds(), ae = a.end_.seconds();
  const int64_t bs = b.start_.seconds(), be = b.end_.seconds();
  if (as == bs && ae == be) return AllenRelation::kEquals;
  if (ae + 1 < bs) return AllenRelation::kBefore;
  if (be + 1 < as) return AllenRelation::kAfter;
  if (ae + 1 == bs) return AllenRelation::kMeets;
  if (be + 1 == as) return AllenRelation::kMetBy;
  if (as == bs) return ae < be ? AllenRelation::kStarts
                               : AllenRelation::kStartedBy;
  if (ae == be) return as > bs ? AllenRelation::kFinishes
                               : AllenRelation::kFinishedBy;
  if (as > bs && ae < be) return AllenRelation::kDuring;
  if (as < bs && ae > be) return AllenRelation::kContains;
  return as < bs ? AllenRelation::kOverlaps : AllenRelation::kOverlappedBy;
}

std::string GroundedPeriod::ToString() const {
  return "[" + start_.ToString() + ", " + end_.ToString() + "]";
}

Result<Period> Period::Make(Instant start, Instant end) {
  if (start.is_absolute() && end.is_absolute() &&
      start.chronon() > end.chronon()) {
    return Status::InvalidArgument("Period start " + start.ToString() +
                                   " is after end " + end.ToString());
  }
  if (start.is_now_relative() && end.is_now_relative() &&
      start.offset() > end.offset()) {
    return Status::InvalidArgument("Period start " + start.ToString() +
                                   " is after end " + end.ToString());
  }
  return Period(start, end);
}

Result<GroundedPeriod> Period::Ground(const TxContext& ctx) const {
  TIP_ASSIGN_OR_RETURN(Chronon start, start_.Ground(ctx));
  TIP_ASSIGN_OR_RETURN(Chronon end, end_.Ground(ctx));
  return GroundedPeriod::Make(start, end);
}

Result<Period> Period::Parse(std::string_view text) {
  if (text.size() > kMaxLiteralBytes) {
    return Status::ResourceExhausted("Period literal exceeds " +
                                     std::to_string(kMaxLiteralBytes) +
                                     " bytes");
  }
  std::string_view s = StripAsciiWhitespace(text);
  if (s.size() < 2 || s.front() != '[' || s.back() != ']') {
    return Status::ParseError("Period literal must be bracketed: '" +
                              std::string(text) + "'");
  }
  std::string_view body = s.substr(1, s.size() - 2);
  size_t comma = body.find(',');
  if (comma == std::string_view::npos) {
    return Status::ParseError("Period literal needs two instants: '" +
                              std::string(text) + "'");
  }
  if (body.find(',', comma + 1) != std::string_view::npos) {
    return Status::ParseError("Period literal has too many commas: '" +
                              std::string(text) + "'");
  }
  TIP_ASSIGN_OR_RETURN(Instant start, Instant::Parse(body.substr(0, comma)));
  TIP_ASSIGN_OR_RETURN(Instant end, Instant::Parse(body.substr(comma + 1)));
  return Make(start, end);
}

std::string Period::ToString() const {
  return "[" + start_.ToString() + ", " + end_.ToString() + "]";
}

}  // namespace tip
