#ifndef TIP_CORE_PERIOD_H_
#define TIP_CORE_PERIOD_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "core/chronon.h"
#include "core/instant.h"
#include "core/span.h"
#include "core/tx_context.h"

namespace tip {

/// The thirteen mutually-exclusive interval relations of Allen [1], which
/// TIP exposes as Period routines. For closed intervals at chronon
/// granularity "meets" means end+1 chronon == start (no shared chronon,
/// no gap) and "before" requires at least a one-chronon gap.
enum class AllenRelation : int {
  kBefore = 0,
  kMeets,
  kOverlaps,
  kFinishedBy,
  kContains,
  kStarts,
  kEquals,
  kStartedBy,
  kDuring,
  kFinishes,
  kOverlappedBy,
  kMetBy,
  kAfter,
};

/// Stable lower-case name ("before", "meets", ...).
std::string_view AllenRelationName(AllenRelation relation);

/// A fully absolute period: a closed interval [start, end] of chronons
/// with start <= end enforced as a class invariant. All interval algebra
/// is defined here; NOW-relative `Period`s are grounded first.
class GroundedPeriod {
 public:
  /// Defaults to the degenerate period [epoch, epoch].
  GroundedPeriod() = default;

  /// Fails unless start <= end.
  static Result<GroundedPeriod> Make(Chronon start, Chronon end);

  /// The degenerate period containing exactly `c`.
  static GroundedPeriod At(Chronon c) { return GroundedPeriod(c, c); }

  Chronon start() const { return start_; }
  Chronon end() const { return end_; }

  /// Number of chronons in the closed interval, as a Span:
  /// (end - start) + 1 second.
  Span Duration() const;

  bool Contains(Chronon c) const { return start_ <= c && c <= end_; }
  bool Contains(const GroundedPeriod& other) const {
    return start_ <= other.start_ && other.end_ <= end_;
  }
  /// True iff the two closed intervals share at least one chronon.
  bool Overlaps(const GroundedPeriod& other) const {
    return start_ <= other.end_ && other.start_ <= end_;
  }
  /// True iff `this` ends exactly one chronon before `other` starts.
  bool Meets(const GroundedPeriod& other) const {
    return end_.seconds() + 1 == other.start_.seconds();
  }
  /// True iff `this` ends at least two chronons before `other` starts.
  bool Before(const GroundedPeriod& other) const {
    return end_.seconds() + 1 < other.start_.seconds();
  }

  /// Classifies the pair into exactly one of Allen's 13 relations.
  static AllenRelation Allen(const GroundedPeriod& a, const GroundedPeriod& b);

  /// `[1999-01-01, 1999-04-30]` (paper notation).
  std::string ToString() const;

  friend bool operator==(const GroundedPeriod&, const GroundedPeriod&) =
      default;

 private:
  GroundedPeriod(Chronon start, Chronon end) : start_(start), end_(end) {}

  Chronon start_;
  Chronon end_;
};

/// A `Period` is a pair of Instants marking the start and end of a closed
/// interval, e.g. `[1999-01-01, NOW]` ("since 1999") or `[NOW-7, NOW]`
/// ("the past week"). Because either endpoint may be NOW-relative, the
/// constraint start <= end can only be checked once NOW is bound, so
/// `Period` itself is a passive pair and `Ground` performs validation.
class Period {
 public:
  /// Defaults to the degenerate absolute period [epoch, epoch].
  Period() = default;
  Period(Instant start, Instant end) : start_(start), end_(end) {}

  /// Validating factory: fails immediately when both endpoints are
  /// absolute and start > end (a NOW-relative pair is accepted and
  /// validated at grounding time instead).
  static Result<Period> Make(Instant start, Instant end);

  /// The degenerate period containing exactly `c` (the paper's
  /// Chronon -> Period cast).
  static Period At(Chronon c) {
    return Period(Instant::Absolute(c), Instant::Absolute(c));
  }

  static Period FromGrounded(const GroundedPeriod& p) {
    return Period(Instant::Absolute(p.start()), Instant::Absolute(p.end()));
  }

  const Instant& start() const { return start_; }
  const Instant& end() const { return end_; }

  bool is_absolute() const {
    return start_.is_absolute() && end_.is_absolute();
  }

  /// Substitutes the transaction time for NOW in both endpoints; fails if
  /// an endpoint leaves the calendar range or the grounded start exceeds
  /// the grounded end.
  Result<GroundedPeriod> Ground(const TxContext& ctx) const;

  /// Parses `[instant, instant]`.
  static Result<Period> Parse(std::string_view text);

  /// `[NOW-7, NOW]` (ungrounded form).
  std::string ToString() const;

  /// Structural equality (see Instant::operator==).
  friend bool operator==(const Period&, const Period&) = default;

 private:
  Instant start_;
  Instant end_;
};

}  // namespace tip

#endif  // TIP_CORE_PERIOD_H_
