#ifndef TIP_CORE_INSTANT_H_
#define TIP_CORE_INSTANT_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "core/chronon.h"
#include "core/span.h"
#include "core/tx_context.h"

namespace tip {

/// An `Instant` is either an absolute Chronon or a NOW-relative time: an
/// offset of type Span from the special symbol NOW, whose interpretation
/// changes as time advances (`NOW-1` denoted "yesterday" in the paper).
///
/// NOW-relative instants are *grounded* against a TxContext before any
/// arithmetic or comparison; the outcome of comparing a Chronon with a
/// NOW-relative Instant may therefore change between transactions, which
/// is the behaviour the paper calls out explicitly.
class Instant {
 public:
  /// Defaults to the absolute epoch chronon.
  Instant() : now_relative_(false), value_(0) {}

  static Instant Absolute(Chronon c) { return Instant(false, c.seconds()); }
  static Instant NowRelative(Span offset) {
    return Instant(true, offset.seconds());
  }
  /// The bare symbol NOW.
  static Instant Now() { return NowRelative(Span::Zero()); }

  bool is_now_relative() const { return now_relative_; }
  bool is_absolute() const { return !now_relative_; }

  /// The absolute chronon. Precondition: is_absolute().
  Chronon chronon() const;
  /// The offset from NOW. Precondition: is_now_relative().
  Span offset() const;

  /// Substitutes the transaction time for NOW. Fails when NOW+offset
  /// leaves the calendar range.
  Result<Chronon> Ground(const TxContext& ctx) const;

  /// Displaces this instant by a span, preserving NOW-relativity
  /// (`NOW-1` + `2` == `NOW+1`).
  Result<Instant> Add(const Span& span) const;
  Result<Instant> Subtract(const Span& span) const;

  /// Parses `NOW`, `NOW-7`, `NOW+1 12:00:00`, or any Chronon literal.
  static Result<Instant> Parse(std::string_view text);

  /// `NOW`, `NOW-7`, `1999-10-31`, ... (ungrounded form).
  std::string ToString() const;

  /// Structural equality: an absolute instant never equals a NOW-relative
  /// one, even if they ground to the same chronon today. Use
  /// `CompareInstants` for temporal comparison.
  friend bool operator==(const Instant&, const Instant&) = default;

 private:
  Instant(bool now_relative, int64_t value)
      : now_relative_(now_relative), value_(value) {}

  bool now_relative_;
  int64_t value_;  // chronon seconds, or offset seconds from NOW
};

/// Three-way temporal comparison under `ctx` (-1, 0, +1). Fails if either
/// instant grounds outside the calendar range.
Result<int> CompareInstants(const Instant& a, const Instant& b,
                            const TxContext& ctx);

}  // namespace tip

#endif  // TIP_CORE_INSTANT_H_
