#ifndef TIP_CORE_ELEMENT_H_
#define TIP_CORE_ELEMENT_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/chronon.h"
#include "core/period.h"
#include "core/span.h"
#include "core/tx_context.h"

namespace tip {

/// A fully absolute temporal element in canonical form: a sorted vector of
/// pairwise disjoint, non-adjacent GroundedPeriods (any two consecutive
/// periods are separated by at least one chronon). The canonical form is
/// what makes every set operation a linear merge — the paper's Section 3
/// claim ("efficient algorithms that execute in time linear in the number
/// of periods").
class GroundedElement {
 public:
  /// The empty element.
  GroundedElement() = default;

  /// Normalizes an arbitrary collection of periods (sorts + coalesces
  /// overlapping or adjacent ones). O(n log n); O(n) if already sorted.
  static GroundedElement FromPeriods(std::vector<GroundedPeriod> periods);

  /// The singleton element {p}.
  static GroundedElement Of(const GroundedPeriod& p) {
    return GroundedElement(std::vector<GroundedPeriod>{p});
  }

  const std::vector<GroundedPeriod>& periods() const { return periods_; }
  size_t size() const { return periods_.size(); }
  bool IsEmpty() const { return periods_.empty(); }

  /// Set algebra over canonical operands; each is a single linear merge
  /// pass, O(|a| + |b|).
  static GroundedElement Union(const GroundedElement& a,
                               const GroundedElement& b);
  static GroundedElement Intersect(const GroundedElement& a,
                                   const GroundedElement& b);
  /// a \ b.
  static GroundedElement Difference(const GroundedElement& a,
                                    const GroundedElement& b);

  /// True iff the two elements share at least one chronon. Linear with
  /// early exit.
  bool Overlaps(const GroundedElement& other) const;
  /// True iff every chronon of `other` is in `this`. Linear.
  bool Contains(const GroundedElement& other) const;
  /// O(log n) membership test.
  bool Contains(Chronon c) const;

  /// Total number of chronons covered, as a Span. Never overflows: the
  /// periods are disjoint and all lie in the calendar range.
  Span TotalDuration() const;

  /// Bounding period [first.start, last.end]. Precondition: !IsEmpty().
  GroundedPeriod Extent() const;

  /// `{[a, b], [c, d]}` (paper notation); `{}` when empty.
  std::string ToString() const;

  friend bool operator==(const GroundedElement&, const GroundedElement&) =
      default;

 private:
  explicit GroundedElement(std::vector<GroundedPeriod> canonical)
      : periods_(std::move(canonical)) {}

  std::vector<GroundedPeriod> periods_;  // canonical (see class comment)
};

/// An `Element` is a set of Periods — the timestamp type TIP attaches to
/// tuples ("from January to April, and then from July to October"). Its
/// periods may contain NOW-relative endpoints (`{[1999-10-01, NOW]}`), so
/// the stored form preserves the user's periods verbatim; all algebra
/// grounds the element against a TxContext first.
///
/// An all-absolute Element is eagerly normalized to canonical form, making
/// grounding free and algebra linear — the common fast path in the DBMS.
class Element {
 public:
  /// The empty element.
  Element() : absolute_canonical_(true) {}

  /// Builds an element from arbitrary periods. All-absolute inputs are
  /// canonicalized eagerly; inputs with NOW-relative endpoints are stored
  /// verbatim (their canonical form depends on the transaction time).
  /// An inverted absolute period (possible only via the unchecked Period
  /// constructor) is also stored verbatim; Ground reports it as an error.
  static Element FromPeriods(std::vector<Period> periods);

  static Element FromGrounded(const GroundedElement& grounded);

  /// The singleton element {p}.
  static Element Of(const Period& p) {
    return FromPeriods(std::vector<Period>{p});
  }

  const std::vector<Period>& periods() const { return periods_; }
  size_t size() const { return periods_.size(); }
  bool IsEmpty() const { return periods_.empty(); }

  /// True iff no stored period has a NOW-relative endpoint (in which case
  /// the stored form is canonical).
  bool is_absolute() const { return absolute_canonical_; }

  /// Substitutes the transaction time for NOW in every period and
  /// normalizes. Fails if any period grounds out of range or inverted.
  Result<GroundedElement> Ground(const TxContext& ctx) const;

  /// Parses `{[i, i], [i, i], ...}` or `{}`.
  static Result<Element> Parse(std::string_view text);

  /// Ungrounded form, e.g. `{[1999-10-01, NOW]}`.
  std::string ToString() const;

  /// Structural equality on the stored periods.
  friend bool operator==(const Element&, const Element&) = default;

 private:
  Element(std::vector<Period> periods, bool absolute_canonical)
      : periods_(std::move(periods)),
        absolute_canonical_(absolute_canonical) {}

  std::vector<Period> periods_;
  bool absolute_canonical_;
};

/// Element-level routines with the paper's names and semantics. Each
/// grounds its operands under `ctx` and returns an absolute result.
Result<Element> ElementUnion(const Element& a, const Element& b,
                             const TxContext& ctx);
Result<Element> ElementIntersect(const Element& a, const Element& b,
                                 const TxContext& ctx);
Result<Element> ElementDifference(const Element& a, const Element& b,
                                  const TxContext& ctx);
Result<bool> ElementOverlaps(const Element& a, const Element& b,
                             const TxContext& ctx);
Result<bool> ElementContains(const Element& a, const Element& b,
                             const TxContext& ctx);
Result<bool> ElementContainsChronon(const Element& a, Chronon c,
                                    const TxContext& ctx);
/// Total covered time (the paper's `length`).
Result<Span> ElementLength(const Element& a, const TxContext& ctx);
/// Start of the first period (the paper's `start`); fails on empty.
Result<Chronon> ElementStart(const Element& a, const TxContext& ctx);
/// End of the last period; fails on empty.
Result<Chronon> ElementEnd(const Element& a, const TxContext& ctx);
/// First / last period in canonical order; fail on empty.
Result<GroundedPeriod> ElementFirst(const Element& a, const TxContext& ctx);
Result<GroundedPeriod> ElementLast(const Element& a, const TxContext& ctx);

}  // namespace tip

#endif  // TIP_CORE_ELEMENT_H_
