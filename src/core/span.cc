#include "core/span.h"

#include <cstdio>
#include <cstdlib>

#include "common/string_util.h"
#include "core/parse_limits.h"

namespace tip {
namespace {

constexpr int64_t kSecondsPerDay = 86400;

Result<Span> CheckedFromUnits(int64_t count, int64_t unit_seconds,
                              const char* unit_name) {
  int64_t out;
  if (__builtin_mul_overflow(count, unit_seconds, &out)) {
    return Status::OutOfRange(std::string("Span from ") + unit_name +
                              " overflows");
  }
  return Span::FromSeconds(out);
}

}  // namespace

Result<Span> Span::FromDays(int64_t days) {
  return CheckedFromUnits(days, kSecondsPerDay, "days");
}
Result<Span> Span::FromHours(int64_t hours) {
  return CheckedFromUnits(hours, 3600, "hours");
}
Result<Span> Span::FromMinutes(int64_t minutes) {
  return CheckedFromUnits(minutes, 60, "minutes");
}
Result<Span> Span::FromWeeks(int64_t weeks) {
  return CheckedFromUnits(weeks, 7 * kSecondsPerDay, "weeks");
}

Result<Span> Span::Parse(std::string_view text) {
  if (text.size() > kMaxLiteralBytes) {
    return Status::ResourceExhausted("Span literal exceeds " +
                                     std::to_string(kMaxLiteralBytes) +
                                     " bytes");
  }
  std::string_view s = StripAsciiWhitespace(text);
  if (s.empty()) return Status::ParseError("empty Span literal");
  bool negative = false;
  if (s[0] == '+' || s[0] == '-') {
    negative = (s[0] == '-');
    s.remove_prefix(1);
    s = StripAsciiWhitespace(s);
  }
  if (s.empty()) return Status::ParseError("Span literal has sign only");

  // DAYS[ HH:MM:SS]
  size_t space = s.find(' ');
  std::string_view days_part = (space == std::string_view::npos)
                                   ? s
                                   : s.substr(0, space);
  TIP_ASSIGN_OR_RETURN(int64_t days, ParseInt64(days_part));
  if (days < 0) {
    return Status::ParseError("Span day count must carry its sign in front: '" +
                              std::string(text) + "'");
  }
  int64_t tod = 0;
  if (space != std::string_view::npos) {
    std::string_view time_part = StripAsciiWhitespace(s.substr(space + 1));
    auto pieces = SplitString(time_part, ':');
    if (pieces.size() != 3) {
      return Status::ParseError("Span time part must be HH:MM:SS: '" +
                                std::string(text) + "'");
    }
    TIP_ASSIGN_OR_RETURN(int64_t hours, ParseInt64(pieces[0]));
    TIP_ASSIGN_OR_RETURN(int64_t minutes, ParseInt64(pieces[1]));
    TIP_ASSIGN_OR_RETURN(int64_t seconds, ParseInt64(pieces[2]));
    if (hours < 0 || hours > 23 || minutes < 0 || minutes > 59 ||
        seconds < 0 || seconds > 59) {
      return Status::ParseError("Span time-of-day fields out of range: '" +
                                std::string(text) + "'");
    }
    tod = hours * 3600 + minutes * 60 + seconds;
  }
  int64_t magnitude;
  if (__builtin_mul_overflow(days, kSecondsPerDay, &magnitude) ||
      __builtin_add_overflow(magnitude, tod, &magnitude)) {
    return Status::OutOfRange("Span literal out of range: '" +
                              std::string(text) + "'");
  }
  return Span::FromSeconds(negative ? -magnitude : magnitude);
}

std::string Span::ToString() const {
  uint64_t magnitude = seconds_ < 0
                           ? 0u - static_cast<uint64_t>(seconds_)
                           : static_cast<uint64_t>(seconds_);
  uint64_t days = magnitude / kSecondsPerDay;
  uint64_t rem = magnitude % kSecondsPerDay;
  char buf[48];
  const char* sign = seconds_ < 0 ? "-" : "";
  if (rem == 0) {
    std::snprintf(buf, sizeof(buf), "%s%lld", sign,
                  static_cast<long long>(days));
  } else {
    std::snprintf(buf, sizeof(buf), "%s%lld %02lld:%02lld:%02lld", sign,
                  static_cast<long long>(days),
                  static_cast<long long>(rem / 3600),
                  static_cast<long long>((rem % 3600) / 60),
                  static_cast<long long>(rem % 60));
  }
  return buf;
}

Result<Span> Span::Add(const Span& other) const {
  int64_t out;
  if (__builtin_add_overflow(seconds_, other.seconds_, &out)) {
    return Status::OutOfRange("Span + Span overflows");
  }
  return Span(out);
}

Result<Span> Span::Subtract(const Span& other) const {
  int64_t out;
  if (__builtin_sub_overflow(seconds_, other.seconds_, &out)) {
    return Status::OutOfRange("Span - Span overflows");
  }
  return Span(out);
}

Result<Span> Span::Multiply(int64_t factor) const {
  int64_t out;
  if (__builtin_mul_overflow(seconds_, factor, &out)) {
    return Status::OutOfRange("Span * factor overflows");
  }
  return Span(out);
}

Result<Span> Span::Divide(int64_t divisor) const {
  if (divisor == 0) return Status::InvalidArgument("Span division by zero");
  if (seconds_ == INT64_MIN && divisor == -1) {
    return Status::OutOfRange("Span / -1 overflows");
  }
  return Span(seconds_ / divisor);
}

Result<int64_t> Span::DivideBy(const Span& other) const {
  if (other.seconds_ == 0) {
    return Status::InvalidArgument("Span / zero-Span");
  }
  if (seconds_ == INT64_MIN && other.seconds_ == -1) {
    return Status::OutOfRange("Span / Span overflows");
  }
  return seconds_ / other.seconds_;
}

}  // namespace tip
