#include "core/instant.h"

#include <cassert>

#include "common/string_util.h"

namespace tip {

Chronon Instant::chronon() const {
  assert(is_absolute());
  // value_ was produced by a valid Chronon, so reconstruction succeeds.
  return *Chronon::FromSeconds(value_);
}

Span Instant::offset() const {
  assert(is_now_relative());
  return Span::FromSeconds(value_);
}

Result<Chronon> Instant::Ground(const TxContext& ctx) const {
  if (!now_relative_) return chronon();
  return ctx.now.Add(Span::FromSeconds(value_));
}

Result<Instant> Instant::Add(const Span& span) const {
  if (now_relative_) {
    TIP_ASSIGN_OR_RETURN(Span shifted,
                         Span::FromSeconds(value_).Add(span));
    return Instant::NowRelative(shifted);
  }
  TIP_ASSIGN_OR_RETURN(Chronon shifted, chronon().Add(span));
  return Instant::Absolute(shifted);
}

Result<Instant> Instant::Subtract(const Span& span) const {
  return Add(span.Negate());
}

Result<Instant> Instant::Parse(std::string_view text) {
  std::string_view s = StripAsciiWhitespace(text);
  if (s.size() >= 3 && EqualsIgnoreCase(s.substr(0, 3), "NOW")) {
    std::string_view rest = StripAsciiWhitespace(s.substr(3));
    if (rest.empty()) return Instant::Now();
    if (rest[0] != '+' && rest[0] != '-') {
      return Status::ParseError("expected '+' or '-' after NOW in '" +
                                std::string(text) + "'");
    }
    bool negative = rest[0] == '-';
    std::string_view magnitude_text = StripAsciiWhitespace(rest.substr(1));
    TIP_ASSIGN_OR_RETURN(Span magnitude, Span::Parse(magnitude_text));
    if (magnitude.IsNegative()) {
      return Status::ParseError("double sign in NOW-relative Instant '" +
                                std::string(text) + "'");
    }
    return Instant::NowRelative(negative ? magnitude.Negate() : magnitude);
  }
  TIP_ASSIGN_OR_RETURN(Chronon c, Chronon::Parse(s));
  return Instant::Absolute(c);
}

std::string Instant::ToString() const {
  if (!now_relative_) return chronon().ToString();
  if (value_ == 0) return "NOW";
  Span magnitude = offset().Abs();
  return (value_ < 0 ? "NOW-" : "NOW+") + magnitude.ToString();
}

Result<int> CompareInstants(const Instant& a, const Instant& b,
                            const TxContext& ctx) {
  // Two NOW-relative instants compare by offset at any transaction time,
  // so no grounding (and no range failure) is needed.
  if (a.is_now_relative() && b.is_now_relative()) {
    Span lhs = a.offset();
    Span rhs = b.offset();
    return lhs < rhs ? -1 : (lhs == rhs ? 0 : 1);
  }
  TIP_ASSIGN_OR_RETURN(Chronon ga, a.Ground(ctx));
  TIP_ASSIGN_OR_RETURN(Chronon gb, b.Ground(ctx));
  return ga < gb ? -1 : (ga == gb ? 0 : 1);
}

}  // namespace tip
