#ifndef TIP_CORE_PARSE_LIMITS_H_
#define TIP_CORE_PARSE_LIMITS_H_

#include <cstddef>

namespace tip {

/// Caps on temporal literal parsing. Literals arrive from untrusted
/// places (SQL text, snapshot payloads, the C API), so the parsers
/// refuse pathological inputs with Status::ResourceExhausted *before*
/// allocating for them — no real TIP literal is within orders of
/// magnitude of these.
inline constexpr size_t kMaxLiteralBytes = 16u << 20;  // 16 MiB of text
inline constexpr size_t kMaxElementPeriods = 1u << 20;  // 1M periods

}  // namespace tip

#endif  // TIP_CORE_PARSE_LIMITS_H_
