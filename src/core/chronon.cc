#include "core/chronon.h"

#include <cstdio>

#include "common/string_util.h"
#include "core/span.h"

namespace tip {
namespace internal {

int64_t DaysFromCivil(int32_t y, int32_t m, int32_t d) {
  // Howard Hinnant's days_from_civil, shifted so March is month 0.
  int64_t year = y;
  year -= m <= 2;
  const int64_t era = (year >= 0 ? year : year - 399) / 400;
  const int64_t yoe = year - era * 400;                          // [0, 399]
  const int64_t doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
  const int64_t doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;     // [0, 146096]
  return era * 146097 + doe - 719468;
}

void CivilFromDays(int64_t days, int32_t* y, int32_t* m, int32_t* d) {
  days += 719468;
  const int64_t era = (days >= 0 ? days : days - 146096) / 146097;
  const int64_t doe = days - era * 146097;                       // [0, 146096]
  const int64_t yoe =
      (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;     // [0, 399]
  const int64_t year = yoe + era * 400;
  const int64_t doy = doe - (365 * yoe + yoe / 4 - yoe / 100);   // [0, 365]
  const int64_t mp = (5 * doy + 2) / 153;                        // [0, 11]
  *d = static_cast<int32_t>(doy - (153 * mp + 2) / 5 + 1);
  *m = static_cast<int32_t>(mp + (mp < 10 ? 3 : -9));
  *y = static_cast<int32_t>(year + (*m <= 2));
}

bool IsLeapYear(int32_t year) {
  return (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
}

int32_t DaysInMonth(int32_t year, int32_t month) {
  static constexpr int32_t kDays[] = {31, 28, 31, 30, 31, 30,
                                      31, 31, 30, 31, 30, 31};
  if (month == 2 && IsLeapYear(year)) return 29;
  return kDays[month - 1];
}

}  // namespace internal

namespace {

constexpr int64_t kSecondsPerDay = 86400;

int64_t MinSeconds() {
  return internal::DaysFromCivil(1, 1, 1) * kSecondsPerDay;
}

int64_t MaxSeconds() {
  return internal::DaysFromCivil(9999, 12, 31) * kSecondsPerDay +
         (kSecondsPerDay - 1);
}

// Parses a fixed run of 1..4 digits starting at *pos; advances *pos.
Result<int32_t> ParseNumber(std::string_view s, size_t* pos, int max_digits) {
  size_t start = *pos;
  int32_t value = 0;
  int digits = 0;
  while (*pos < s.size() && s[*pos] >= '0' && s[*pos] <= '9' &&
         digits < max_digits) {
    value = value * 10 + (s[*pos] - '0');
    ++*pos;
    ++digits;
  }
  if (digits == 0) {
    return Status::ParseError("expected digits at offset " +
                              std::to_string(start) + " in '" +
                              std::string(s) + "'");
  }
  // A longer digit run must be rejected, not split: stopping at
  // max_digits would silently read '20251' as year 2025 and leave the
  // '1' to fail (or worse, parse) as the next field.
  if (*pos < s.size() && s[*pos] >= '0' && s[*pos] <= '9') {
    return Status::ParseError("too many digits at offset " +
                              std::to_string(start) + " in '" +
                              std::string(s) + "' (at most " +
                              std::to_string(max_digits) + " expected)");
  }
  return value;
}

Status ExpectChar(std::string_view s, size_t* pos, char c) {
  if (*pos >= s.size() || s[*pos] != c) {
    return Status::ParseError(std::string("expected '") + c + "' at offset " +
                              std::to_string(*pos) + " in '" + std::string(s) +
                              "'");
  }
  ++*pos;
  return Status::OK();
}

}  // namespace

Chronon Chronon::Min() { return Chronon(MinSeconds()); }
Chronon Chronon::Max() { return Chronon(MaxSeconds()); }

Result<Chronon> Chronon::FromSeconds(int64_t seconds) {
  if (seconds < MinSeconds() || seconds > MaxSeconds()) {
    return Status::OutOfRange("Chronon seconds value " +
                              std::to_string(seconds) +
                              " outside calendar range [0001, 9999]");
  }
  return Chronon(seconds);
}

Result<Chronon> Chronon::FromCivil(const CivilTime& c) {
  if (c.year < 1 || c.year > 9999) {
    return Status::OutOfRange("year " + std::to_string(c.year) +
                              " outside [1, 9999]");
  }
  if (c.month < 1 || c.month > 12) {
    return Status::InvalidArgument("month " + std::to_string(c.month) +
                                   " outside [1, 12]");
  }
  if (c.day < 1 || c.day > internal::DaysInMonth(c.year, c.month)) {
    return Status::InvalidArgument(
        "day " + std::to_string(c.day) + " invalid for " +
        std::to_string(c.year) + "-" + std::to_string(c.month));
  }
  if (c.hour < 0 || c.hour > 23 || c.minute < 0 || c.minute > 59 ||
      c.second < 0 || c.second > 59) {
    return Status::InvalidArgument("time-of-day fields out of range");
  }
  int64_t days = internal::DaysFromCivil(c.year, c.month, c.day);
  int64_t seconds =
      days * kSecondsPerDay + c.hour * 3600 + c.minute * 60 + c.second;
  return Chronon(seconds);
}

Result<Chronon> Chronon::Parse(std::string_view text) {
  std::string_view s = StripAsciiWhitespace(text);
  size_t pos = 0;
  CivilTime civil;
  TIP_ASSIGN_OR_RETURN(civil.year, ParseNumber(s, &pos, 4));
  TIP_RETURN_IF_ERROR(ExpectChar(s, &pos, '-'));
  TIP_ASSIGN_OR_RETURN(civil.month, ParseNumber(s, &pos, 2));
  TIP_RETURN_IF_ERROR(ExpectChar(s, &pos, '-'));
  TIP_ASSIGN_OR_RETURN(civil.day, ParseNumber(s, &pos, 2));
  if (pos < s.size()) {
    TIP_RETURN_IF_ERROR(ExpectChar(s, &pos, ' '));
    TIP_ASSIGN_OR_RETURN(civil.hour, ParseNumber(s, &pos, 2));
    TIP_RETURN_IF_ERROR(ExpectChar(s, &pos, ':'));
    TIP_ASSIGN_OR_RETURN(civil.minute, ParseNumber(s, &pos, 2));
    TIP_RETURN_IF_ERROR(ExpectChar(s, &pos, ':'));
    TIP_ASSIGN_OR_RETURN(civil.second, ParseNumber(s, &pos, 2));
  }
  if (pos != s.size()) {
    return Status::ParseError("trailing characters in Chronon literal '" +
                              std::string(text) + "'");
  }
  return FromCivil(civil);
}

CivilTime Chronon::ToCivil() const {
  int64_t days = seconds_ / kSecondsPerDay;
  int64_t rem = seconds_ % kSecondsPerDay;
  if (rem < 0) {
    rem += kSecondsPerDay;
    days -= 1;
  }
  CivilTime civil;
  internal::CivilFromDays(days, &civil.year, &civil.month, &civil.day);
  civil.hour = static_cast<int32_t>(rem / 3600);
  civil.minute = static_cast<int32_t>((rem % 3600) / 60);
  civil.second = static_cast<int32_t>(rem % 60);
  return civil;
}

std::string Chronon::ToString() const {
  CivilTime c = ToCivil();
  char buf[32];
  if (c.hour == 0 && c.minute == 0 && c.second == 0) {
    std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", c.year, c.month, c.day);
  } else {
    std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d %02d:%02d:%02d", c.year,
                  c.month, c.day, c.hour, c.minute, c.second);
  }
  return buf;
}

Result<Chronon> Chronon::Add(const Span& span) const {
  int64_t out;
  if (__builtin_add_overflow(seconds_, span.seconds(), &out)) {
    return Status::OutOfRange("Chronon + Span overflows");
  }
  return FromSeconds(out);
}

Result<Chronon> Chronon::Subtract(const Span& span) const {
  int64_t out;
  if (__builtin_sub_overflow(seconds_, span.seconds(), &out)) {
    return Status::OutOfRange("Chronon - Span overflows");
  }
  return FromSeconds(out);
}

Span Chronon::Since(const Chronon& other) const {
  // Both operands lie in the calendar range, so the difference fits.
  return Span::FromSeconds(seconds_ - other.seconds_);
}

}  // namespace tip
