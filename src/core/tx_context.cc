#include "core/tx_context.h"

#include <ctime>

namespace tip {

TxContext TxContext::FromSystemClock() {
  int64_t unix_seconds = static_cast<int64_t>(std::time(nullptr));
  // The wall clock always lies comfortably inside the calendar range.
  Result<Chronon> now = Chronon::FromSeconds(unix_seconds);
  return TxContext(now.ok() ? *now : Chronon());
}

}  // namespace tip
