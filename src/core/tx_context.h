#ifndef TIP_CORE_TX_CONTEXT_H_
#define TIP_CORE_TX_CONTEXT_H_

#include "core/chronon.h"

namespace tip {

/// The temporal evaluation context of a transaction.
///
/// The paper gives NOW "transaction time" semantics: every NOW-relative
/// Instant in a query is interpreted against the same current time, fixed
/// for the duration of the statement. The TIP Browser additionally lets a
/// user *override* NOW to run what-if analyses in a different temporal
/// context; that override is exactly a TxContext with a non-default `now`.
struct TxContext {
  /// The value substituted for the special symbol NOW.
  Chronon now;

  TxContext() = default;
  explicit TxContext(Chronon now_value) : now(now_value) {}

  /// A context bound to the wall clock (the DBMS default).
  static TxContext FromSystemClock();
};

}  // namespace tip

#endif  // TIP_CORE_TX_CONTEXT_H_
