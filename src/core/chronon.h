#ifndef TIP_CORE_CHRONON_H_
#define TIP_CORE_CHRONON_H_

#include <compare>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace tip {

class Span;

/// A civil (proleptic Gregorian) date-time, seconds resolution.
/// Passive data carrier; validity is checked when converting to Chronon.
struct CivilTime {
  int32_t year = 1970;   // 1 .. 9999
  int32_t month = 1;     // 1 .. 12
  int32_t day = 1;       // 1 .. days-in-month
  int32_t hour = 0;      // 0 .. 23
  int32_t minute = 0;    // 0 .. 59
  int32_t second = 0;    // 0 .. 59

  friend bool operator==(const CivilTime&, const CivilTime&) = default;
};

/// A `Chronon` is TIP's indivisible point on the time line — the role the
/// built-in DATE type plays in SQL, but at second granularity and with a
/// calendar implemented from first principles (no libc/locale dependence;
/// Y2K-compliant by construction, as the paper quips).
///
/// Internally a Chronon is a signed second count relative to
/// 1970-01-01 00:00:00; the valid range is
/// [0001-01-01 00:00:00, 9999-12-31 23:59:59].
class Chronon {
 public:
  /// The epoch, 1970-01-01 00:00:00.
  Chronon() : seconds_(0) {}

  /// Smallest / largest representable Chronon.
  static Chronon Min();
  static Chronon Max();

  /// Constructs from a raw second count; rejects values outside the
  /// supported calendar range.
  static Result<Chronon> FromSeconds(int64_t seconds);

  /// Constructs from civil fields; rejects invalid dates (e.g. Feb 30).
  static Result<Chronon> FromCivil(const CivilTime& civil);

  /// Parses `YYYY-MM-DD[ HH:MM:SS]` (the paper's notation).
  static Result<Chronon> Parse(std::string_view text);

  /// Civil decomposition of this chronon.
  CivilTime ToCivil() const;

  /// Formats as `YYYY-MM-DD` when the time-of-day is midnight, otherwise
  /// `YYYY-MM-DD HH:MM:SS` — matching the paper's examples.
  std::string ToString() const;

  /// Raw second count relative to 1970-01-01 00:00:00.
  int64_t seconds() const { return seconds_; }

  /// Checked displacement by a Span; fails if the result leaves the
  /// calendar range.
  Result<Chronon> Add(const Span& span) const;
  Result<Chronon> Subtract(const Span& span) const;

  /// Distance between two chronons (`a - b`); always representable.
  Span Since(const Chronon& other) const;

  friend auto operator<=>(const Chronon&, const Chronon&) = default;

 private:
  explicit Chronon(int64_t seconds) : seconds_(seconds) {}

  int64_t seconds_;
};

namespace internal {

/// Days since 1970-01-01 for a civil date (Howard Hinnant's algorithm).
/// Valid for any y/m/d with m in [1,12], d in [1,31].
int64_t DaysFromCivil(int32_t y, int32_t m, int32_t d);

/// Inverse of DaysFromCivil.
void CivilFromDays(int64_t days, int32_t* y, int32_t* m, int32_t* d);

/// Number of days in `month` of `year` (Gregorian leap rules).
int32_t DaysInMonth(int32_t year, int32_t month);

/// True iff `year` is a Gregorian leap year.
bool IsLeapYear(int32_t year);

}  // namespace internal
}  // namespace tip

#endif  // TIP_CORE_CHRONON_H_
