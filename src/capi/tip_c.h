#ifndef TIP_CAPI_TIP_C_H_
#define TIP_CAPI_TIP_C_H_

/* The TIP C client library — the paper ships "both C and Java
 * libraries for client applications to access a TIP-enabled database";
 * this is the C one. A connection owns an embedded TIP-enabled engine
 * (tip_open*) or a session on a remote tipd (tip_connect); statements
 * are SQL text; results are addressed by (row, column) with text
 * rendering through each type's output function plus int64/double
 * fast paths for the builtin scalars.
 *
 * Every fallible call returns 0 on success and -1 on failure;
 * tip_last_error() describes the most recent failure on the
 * connection. All handles are single-threaded, with one exception:
 * tip_cancel may be called from any thread to interrupt a blocked
 * tip_exec on the same connection.
 */

#include <stddef.h>

#ifdef __cplusplus
extern "C" {
#endif

typedef struct tip_connection tip_connection;
typedef struct tip_result tip_result;
typedef struct tip_stmt tip_stmt;

/* Opens an embedded database with the TIP DataBlade installed.
 * Returns NULL on failure. */
tip_connection* tip_open(void);

/* Opens a durable database homed in directory `dir` (created if
 * absent) and runs crash recovery: the last checkpoint snapshot is
 * restored and the write-ahead log replayed, with any torn tail
 * truncated. Subsequent statements are logged per `SET wal_mode`
 * (off|async|group|sync; default group). Returns NULL on failure. */
tip_connection* tip_open_dir(const char* dir);

/* As tip_open_dir, but with an explicit corruption policy. `mode` is
 * "strict" (the tip_open_dir behaviour: refuse a damaged directory) or
 * "salvage" (quarantine corrupt tables instead of failing the open;
 * the rest of the database recovers and is readable, quarantined
 * tables answer every statement with a corruption error until they are
 * dropped; tip_verify / the tip_health() builtin report the damage).
 * Returns NULL on failure. */
tip_connection* tip_open_dir_recovery(const char* dir, const char* mode);

/* Connects to a running `tipd` at host:port over the TIP wire protocol.
 * The returned connection has the same API surface as an embedded one —
 * every tip_* call below works unchanged — but statements execute in
 * the server process and the session is subject to its admission
 * control, per-session guardrails, and idle/drain policies. NOW
 * overrides and guardrail settings are scoped to this session. Returns
 * NULL on failure (connection refused, handshake error, or an explicit
 * server rejection such as "server at capacity"). */
tip_connection* tip_connect(const char* host, int port);
void tip_close(tip_connection* conn);

/* The message of the last failed call on `conn` ("" if none). The
 * pointer stays valid until the next call on the connection. */
const char* tip_last_error(const tip_connection* conn);

/* Overrides / restores the interpretation of NOW (what-if analysis).
 * `chronon_literal` uses the paper's notation, e.g. "1999-11-15". */
int tip_set_now(tip_connection* conn, const char* chronon_literal);
int tip_clear_now(tip_connection* conn);

/* Requests cancellation of every statement currently executing on the
 * connection. Thread-safe: this is the one call that may target a
 * connection from another thread while tip_exec is blocked on it. The
 * interrupted tip_exec fails with a "cancelled" error and leaves the
 * database unchanged. Does not touch last_error itself. */
int tip_cancel(tip_connection* conn);

/* Statement guardrails for subsequent statements (0 = no limit): a
 * wall-clock timeout and an approximate memory budget. A tripped guard
 * fails the statement with a "deadline exceeded" / "resource
 * exhausted" error without disturbing stored data. */
int tip_set_timeout_ms(tip_connection* conn, long long ms);
int tip_set_memory_limit_kb(tip_connection* conn,
                            unsigned long long kb);

/* Durability controls for connections opened with tip_open_dir (they
 * fail on a non-durable connection where noted).
 *
 * tip_set_wal_mode: "off", "async", "group" or "sync" (works on any
 * connection; takes effect once a durable directory is attached). On a
 * durable connection, switching into or out of "off" forces a
 * checkpoint so the log is re-baselined across the unlogged gap; if
 * that checkpoint fails the mode is unchanged and -1 is returned.
 * tip_checkpoint: snapshots the database and truncates the WAL.
 * tip_sync_wal: forces the group-commit tail to disk (no-op when not
 * durable). */
int tip_set_wal_mode(tip_connection* conn, const char* mode);
int tip_checkpoint(tip_connection* conn);
int tip_sync_wal(tip_connection* conn);

/* Runs an online integrity scrub over every table (recomputing content
 * checksums and cross-checking interval indexes against the heap) plus
 * the on-disk WAL when durable — the C face of `SELECT tip_verify()`.
 * Returns 0 when everything checks out, -1 with tip_last_error
 * describing the damaged objects otherwise. */
int tip_verify(tip_connection* conn);

/* Transaction control, equivalent to executing BEGIN / COMMIT /
 * ROLLBACK. Statements between tip_begin and tip_commit evaluate under
 * one pinned NOW and are atomic: tip_rollback — or a fatal statement
 * error, or a crash before tip_commit reaches disk — restores the
 * pre-begin state exactly. Auto-commit remains the default. DDL,
 * tip_set_wal_mode and tip_checkpoint are refused while a transaction
 * is open. tip_in_transaction returns 1 between begin and
 * commit/rollback, else 0 (-1 on a null connection). */
int tip_begin(tip_connection* conn);
int tip_commit(tip_connection* conn);
int tip_rollback(tip_connection* conn);
int tip_in_transaction(const tip_connection* conn);

/* Executes one SQL statement. On success, `*out` (if out != NULL)
 * receives a result handle the caller frees with tip_result_free;
 * pass NULL to discard the result. */
int tip_exec(tip_connection* conn, const char* sql, tip_result** out);

/* Prepared statements: parse/plan once, execute many. tip_prepare
 * parses `sql` eagerly — a malformed statement fails here (see
 * tip_last_error) with *out set to NULL — and the handle reuses one
 * engine plan across executions; tip_stmt_bind_* rebind the `:name`
 * host parameters between executions without replanning. A statement
 * handle belongs to the connection that prepared it and must be closed
 * before that connection. */
int tip_prepare(tip_connection* conn, const char* sql, tip_stmt** out);
int tip_stmt_bind_int(tip_stmt* stmt, const char* name, long long value);
int tip_stmt_bind_double(tip_stmt* stmt, const char* name, double value);
int tip_stmt_bind_text(tip_stmt* stmt, const char* name,
                       const char* value);
int tip_stmt_bind_null(tip_stmt* stmt, const char* name);
/* Removes all bindings from the statement. */
int tip_stmt_clear_bindings(tip_stmt* stmt);
/* Executes with the current bindings; result handling as tip_exec.
 * Errors are reported on the owning connection's tip_last_error. */
int tip_stmt_execute(tip_stmt* stmt, tip_result** out);
void tip_stmt_close(tip_stmt* stmt);

void tip_result_free(tip_result* result);

size_t tip_result_row_count(const tip_result* result);
size_t tip_result_column_count(const tip_result* result);
long long tip_result_affected_rows(const tip_result* result);

/* Column metadata. Returned strings are owned by the result. */
const char* tip_result_column_name(const tip_result* result, size_t col);
const char* tip_result_column_type(const tip_result* result, size_t col);

/* Cell accessors. `tip_result_text` renders any value (including the
 * five TIP types, NOW kept symbolic) through its output function; the
 * string is owned by the result and valid until tip_result_free.
 * Out-of-range indexes yield NULL / 0. */
int tip_result_is_null(const tip_result* result, size_t row, size_t col);
const char* tip_result_text(tip_result* result, size_t row, size_t col);
long long tip_result_int64(const tip_result* result, size_t row,
                           size_t col);
double tip_result_double(const tip_result* result, size_t row, size_t col);

#ifdef __cplusplus
} /* extern "C" */
#endif

#endif /* TIP_CAPI_TIP_C_H_ */
