#include "capi/tip_c.h"

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>

#include "client/connection.h"
#include "client/remote_connection.h"

/// C handles wrap the C++ client objects; text cells are rendered
/// lazily and cached so the returned pointers stay valid for the
/// result's lifetime. Exactly one of `impl` (embedded) and `remote`
/// (network session on a tipd) is set.
struct tip_connection {
  std::unique_ptr<tip::client::Connection> impl;
  std::unique_ptr<tip::client::RemoteConnection> remote;
  std::string last_error;
};

struct tip_stmt {
  tip_connection* conn;  // owner; carries last_error for this handle
  std::optional<tip::client::Statement> impl;
  std::optional<tip::client::RemoteStatement> remote;
};

struct tip_result {
  tip::engine::ResultSet rows;
  const tip::engine::TypeRegistry* types;
  std::map<std::pair<size_t, size_t>, std::string> text_cache;
  std::string name_cache;  // last returned metadata string
};

namespace {

bool InRange(const tip_result* result, size_t row, size_t col) {
  return result != nullptr && row < result->rows.rows.size() &&
         col < result->rows.rows[row].size();
}

/// One-shot SQL on either flavor of connection.
tip::Result<tip::client::ResultSet> ExecOn(tip_connection* conn,
                                           std::string_view sql) {
  return conn->impl != nullptr ? conn->impl->Execute(sql)
                               : conn->remote->Execute(sql);
}

const tip::engine::TypeRegistry& TypesOf(const tip_connection* conn) {
  return conn->impl != nullptr ? conn->impl->database().types()
                               : conn->remote->types();
}

/// Folds a Status into the C convention (0 / -1 + last_error).
int FoldStatus(tip_connection* conn, const tip::Status& status) {
  if (!status.ok()) {
    conn->last_error = status.ToString();
    return -1;
  }
  conn->last_error.clear();
  return 0;
}

}  // namespace

extern "C" {

tip_connection* tip_open(void) {
  tip::Result<std::unique_ptr<tip::client::Connection>> conn =
      tip::client::Connection::Open();
  if (!conn.ok()) return nullptr;
  auto* out = new tip_connection;
  out->impl = std::move(*conn);
  return out;
}

tip_connection* tip_open_dir(const char* dir) {
  if (dir == nullptr) return nullptr;
  tip::Result<std::unique_ptr<tip::client::Connection>> conn =
      tip::client::Connection::OpenDurable(dir);
  if (!conn.ok()) return nullptr;
  auto* out = new tip_connection;
  out->impl = std::move(*conn);
  return out;
}

tip_connection* tip_open_dir_recovery(const char* dir, const char* mode) {
  if (dir == nullptr || mode == nullptr) return nullptr;
  tip::Result<tip::engine::RecoveryMode> parsed =
      tip::engine::ParseRecoveryMode(mode);
  if (!parsed.ok()) return nullptr;
  tip::Result<std::unique_ptr<tip::client::Connection>> conn =
      tip::client::Connection::OpenDurable(dir, nullptr, *parsed);
  if (!conn.ok()) return nullptr;
  auto* out = new tip_connection;
  out->impl = std::move(*conn);
  return out;
}

tip_connection* tip_connect(const char* host, int port) {
  if (host == nullptr || port <= 0 || port > 65535) return nullptr;
  tip::Result<std::unique_ptr<tip::client::RemoteConnection>> conn =
      tip::client::RemoteConnection::Connect(host, port);
  if (!conn.ok()) return nullptr;
  auto* out = new tip_connection;
  out->remote = std::move(*conn);
  return out;
}

void tip_close(tip_connection* conn) { delete conn; }

const char* tip_last_error(const tip_connection* conn) {
  return conn == nullptr ? "null connection" : conn->last_error.c_str();
}

int tip_set_now(tip_connection* conn, const char* chronon_literal) {
  if (conn == nullptr || chronon_literal == nullptr) return -1;
  tip::Result<tip::Chronon> now = tip::Chronon::Parse(chronon_literal);
  if (!now.ok()) {
    conn->last_error = now.status().ToString();
    return -1;
  }
  if (conn->remote != nullptr) {
    return FoldStatus(conn, conn->remote->SetNow(*now));
  }
  conn->impl->SetNow(*now);
  conn->last_error.clear();
  return 0;
}

int tip_clear_now(tip_connection* conn) {
  if (conn == nullptr) return -1;
  if (conn->remote != nullptr) {
    return FoldStatus(conn, conn->remote->ClearNow());
  }
  conn->impl->ClearNow();
  conn->last_error.clear();
  return 0;
}

int tip_cancel(tip_connection* conn) {
  if (conn == nullptr) return -1;
  /* No last_error write here: the racing tip_exec owns that field. */
  if (conn->remote != nullptr) {
    return conn->remote->Cancel().ok() ? 0 : -1;
  }
  conn->impl->Cancel();
  return 0;
}

int tip_set_timeout_ms(tip_connection* conn, long long ms) {
  if (conn == nullptr || ms < 0) return -1;
  if (conn->remote != nullptr) {
    return FoldStatus(conn, conn->remote->SetStatementTimeoutMs(ms));
  }
  conn->impl->SetStatementTimeoutMs(ms);
  conn->last_error.clear();
  return 0;
}

int tip_set_memory_limit_kb(tip_connection* conn,
                            unsigned long long kb) {
  if (conn == nullptr) return -1;
  if (conn->remote != nullptr) {
    return FoldStatus(conn,
                      conn->remote->SetMemoryLimitKb(
                          static_cast<size_t>(kb)));
  }
  conn->impl->SetMemoryLimitKb(static_cast<size_t>(kb));
  conn->last_error.clear();
  return 0;
}

int tip_set_wal_mode(tip_connection* conn, const char* mode) {
  if (conn == nullptr || mode == nullptr) return -1;
  tip::Result<tip::engine::WalMode> parsed =
      tip::engine::ParseWalMode(mode);
  if (!parsed.ok()) {
    conn->last_error = parsed.status().ToString();
    return -1;
  }
  tip::Status status = conn->remote != nullptr
                           ? conn->remote->SetWalMode(*parsed)
                           : conn->impl->SetWalMode(*parsed);
  return FoldStatus(conn, status);
}

int tip_checkpoint(tip_connection* conn) {
  if (conn == nullptr) return -1;
  tip::Status status = conn->remote != nullptr
                           ? conn->remote->Checkpoint()
                           : conn->impl->Checkpoint();
  return FoldStatus(conn, status);
}

int tip_sync_wal(tip_connection* conn) {
  if (conn == nullptr) return -1;
  tip::Status status = conn->remote != nullptr ? conn->remote->SyncWal()
                                               : conn->impl->SyncWal();
  return FoldStatus(conn, status);
}

int tip_verify(tip_connection* conn) {
  if (conn == nullptr) return -1;
  tip::Result<tip::client::ResultSet> result =
      ExecOn(conn, "SELECT tip_verify()");
  if (!result.ok()) {
    conn->last_error = result.status().ToString();
    return -1;
  }
  /* tip_verify() reports corruption as data, not as a statement error
   * (the operator usually wants the whole damage map); fold it back
   * into the C convention here. */
  const std::string verdict = result->GetString(0, 0);
  if (verdict.rfind("ok", 0) != 0) {
    conn->last_error = "integrity check failed: " + verdict;
    return -1;
  }
  conn->last_error.clear();
  return 0;
}

int tip_begin(tip_connection* conn) {
  if (conn == nullptr) return -1;
  tip::Status status = conn->remote != nullptr ? conn->remote->Begin()
                                               : conn->impl->Begin();
  return FoldStatus(conn, status);
}

int tip_commit(tip_connection* conn) {
  if (conn == nullptr) return -1;
  tip::Status status = conn->remote != nullptr ? conn->remote->Commit()
                                               : conn->impl->Commit();
  return FoldStatus(conn, status);
}

int tip_rollback(tip_connection* conn) {
  if (conn == nullptr) return -1;
  tip::Status status = conn->remote != nullptr ? conn->remote->Rollback()
                                               : conn->impl->Rollback();
  return FoldStatus(conn, status);
}

int tip_in_transaction(const tip_connection* conn) {
  if (conn == nullptr) return -1;
  bool in_txn = conn->remote != nullptr ? conn->remote->in_transaction()
                                        : conn->impl->in_transaction();
  return in_txn ? 1 : 0;
}

int tip_exec(tip_connection* conn, const char* sql, tip_result** out) {
  if (out != nullptr) *out = nullptr;
  if (conn == nullptr || sql == nullptr) return -1;
  tip::Result<tip::client::ResultSet> result = ExecOn(conn, sql);
  if (!result.ok()) {
    conn->last_error = result.status().ToString();
    return -1;
  }
  conn->last_error.clear();
  if (out != nullptr) {
    auto* handle = new tip_result;
    handle->rows = result->raw();
    handle->types = &TypesOf(conn);
    *out = handle;
  }
  return 0;
}

int tip_prepare(tip_connection* conn, const char* sql, tip_stmt** out) {
  if (out != nullptr) *out = nullptr;
  if (conn == nullptr || sql == nullptr || out == nullptr) return -1;
  auto* handle = new tip_stmt;
  handle->conn = conn;
  if (conn->remote != nullptr) {
    handle->remote.emplace(conn->remote->Prepare(sql));
    if (!handle->remote->status().ok()) {
      conn->last_error = handle->remote->status().ToString();
      delete handle;
      return -1;
    }
  } else {
    handle->impl.emplace(conn->impl->Prepare(sql));
    if (!handle->impl->status().ok()) {
      conn->last_error = handle->impl->status().ToString();
      delete handle;
      return -1;
    }
  }
  conn->last_error.clear();
  *out = handle;
  return 0;
}

int tip_stmt_bind_int(tip_stmt* stmt, const char* name, long long value) {
  if (stmt == nullptr || name == nullptr) return -1;
  if (stmt->remote) {
    stmt->remote->BindInt(name, value);
  } else {
    stmt->impl->BindInt(name, value);
  }
  return 0;
}

int tip_stmt_bind_double(tip_stmt* stmt, const char* name, double value) {
  if (stmt == nullptr || name == nullptr) return -1;
  if (stmt->remote) {
    stmt->remote->BindDouble(name, value);
  } else {
    stmt->impl->BindDouble(name, value);
  }
  return 0;
}

int tip_stmt_bind_text(tip_stmt* stmt, const char* name,
                       const char* value) {
  if (stmt == nullptr || name == nullptr || value == nullptr) return -1;
  if (stmt->remote) {
    stmt->remote->BindString(name, value);
  } else {
    stmt->impl->BindString(name, value);
  }
  return 0;
}

int tip_stmt_bind_null(tip_stmt* stmt, const char* name) {
  if (stmt == nullptr || name == nullptr) return -1;
  if (stmt->remote) {
    stmt->remote->BindNull(name);
  } else {
    stmt->impl->BindNull(name);
  }
  return 0;
}

int tip_stmt_clear_bindings(tip_stmt* stmt) {
  if (stmt == nullptr) return -1;
  if (stmt->remote) {
    stmt->remote->ClearBindings();
  } else {
    stmt->impl->ClearBindings();
  }
  return 0;
}

int tip_stmt_execute(tip_stmt* stmt, tip_result** out) {
  if (out != nullptr) *out = nullptr;
  if (stmt == nullptr) return -1;
  tip_connection* conn = stmt->conn;
  tip::Result<tip::client::ResultSet> result =
      stmt->remote ? stmt->remote->Execute() : stmt->impl->Execute();
  if (!result.ok()) {
    conn->last_error = result.status().ToString();
    return -1;
  }
  conn->last_error.clear();
  if (out != nullptr) {
    auto* handle = new tip_result;
    handle->rows = result->raw();
    handle->types = &TypesOf(conn);
    *out = handle;
  }
  return 0;
}

void tip_stmt_close(tip_stmt* stmt) { delete stmt; }

void tip_result_free(tip_result* result) { delete result; }

size_t tip_result_row_count(const tip_result* result) {
  return result == nullptr ? 0 : result->rows.rows.size();
}

size_t tip_result_column_count(const tip_result* result) {
  return result == nullptr ? 0 : result->rows.columns.size();
}

long long tip_result_affected_rows(const tip_result* result) {
  return result == nullptr ? 0 : result->rows.affected_rows;
}

const char* tip_result_column_name(const tip_result* result, size_t col) {
  if (result == nullptr || col >= result->rows.columns.size()) {
    return nullptr;
  }
  return result->rows.columns[col].name.c_str();
}

const char* tip_result_column_type(const tip_result* result, size_t col) {
  if (result == nullptr || col >= result->rows.columns.size()) {
    return nullptr;
  }
  return result->types->Get(result->rows.columns[col].type).name.c_str();
}

int tip_result_is_null(const tip_result* result, size_t row, size_t col) {
  if (!InRange(result, row, col)) return 1;
  return result->rows.rows[row][col].is_null() ? 1 : 0;
}

const char* tip_result_text(tip_result* result, size_t row, size_t col) {
  if (!InRange(result, row, col)) return nullptr;
  auto [it, inserted] = result->text_cache.try_emplace(
      std::make_pair(row, col));
  if (inserted) {
    it->second = result->types->Format(result->rows.rows[row][col]);
  }
  return it->second.c_str();
}

long long tip_result_int64(const tip_result* result, size_t row,
                           size_t col) {
  if (!InRange(result, row, col)) return 0;
  const tip::engine::Datum& d = result->rows.rows[row][col];
  if (d.is_null() || d.type_id() != tip::engine::TypeId::kInt) return 0;
  return d.int_value();
}

double tip_result_double(const tip_result* result, size_t row,
                         size_t col) {
  if (!InRange(result, row, col)) return 0.0;
  const tip::engine::Datum& d = result->rows.rows[row][col];
  if (d.is_null() || d.type_id() != tip::engine::TypeId::kDouble) {
    return 0.0;
  }
  return d.double_value();
}

}  // extern "C"
