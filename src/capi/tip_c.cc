#include "capi/tip_c.h"

#include <map>
#include <memory>
#include <string>
#include <utility>

#include "client/connection.h"

/// C handles wrap the C++ client objects; text cells are rendered
/// lazily and cached so the returned pointers stay valid for the
/// result's lifetime.
struct tip_connection {
  std::unique_ptr<tip::client::Connection> impl;
  std::string last_error;
};

struct tip_stmt {
  tip_connection* conn;  // owner; carries last_error for this handle
  tip::client::Statement impl;
};

struct tip_result {
  tip::engine::ResultSet rows;
  const tip::engine::TypeRegistry* types;
  std::map<std::pair<size_t, size_t>, std::string> text_cache;
  std::string name_cache;  // last returned metadata string
};

namespace {

bool InRange(const tip_result* result, size_t row, size_t col) {
  return result != nullptr && row < result->rows.rows.size() &&
         col < result->rows.rows[row].size();
}

}  // namespace

extern "C" {

tip_connection* tip_open(void) {
  tip::Result<std::unique_ptr<tip::client::Connection>> conn =
      tip::client::Connection::Open();
  if (!conn.ok()) return nullptr;
  auto* out = new tip_connection;
  out->impl = std::move(*conn);
  return out;
}

tip_connection* tip_open_dir(const char* dir) {
  if (dir == nullptr) return nullptr;
  tip::Result<std::unique_ptr<tip::client::Connection>> conn =
      tip::client::Connection::OpenDurable(dir);
  if (!conn.ok()) return nullptr;
  auto* out = new tip_connection;
  out->impl = std::move(*conn);
  return out;
}

tip_connection* tip_open_dir_recovery(const char* dir, const char* mode) {
  if (dir == nullptr || mode == nullptr) return nullptr;
  tip::Result<tip::engine::RecoveryMode> parsed =
      tip::engine::ParseRecoveryMode(mode);
  if (!parsed.ok()) return nullptr;
  tip::Result<std::unique_ptr<tip::client::Connection>> conn =
      tip::client::Connection::OpenDurable(dir, nullptr, *parsed);
  if (!conn.ok()) return nullptr;
  auto* out = new tip_connection;
  out->impl = std::move(*conn);
  return out;
}

void tip_close(tip_connection* conn) { delete conn; }

const char* tip_last_error(const tip_connection* conn) {
  return conn == nullptr ? "null connection" : conn->last_error.c_str();
}

int tip_set_now(tip_connection* conn, const char* chronon_literal) {
  if (conn == nullptr || chronon_literal == nullptr) return -1;
  tip::Result<tip::Chronon> now = tip::Chronon::Parse(chronon_literal);
  if (!now.ok()) {
    conn->last_error = now.status().ToString();
    return -1;
  }
  conn->impl->SetNow(*now);
  conn->last_error.clear();
  return 0;
}

int tip_clear_now(tip_connection* conn) {
  if (conn == nullptr) return -1;
  conn->impl->ClearNow();
  conn->last_error.clear();
  return 0;
}

int tip_cancel(tip_connection* conn) {
  if (conn == nullptr) return -1;
  /* No last_error write here: the racing tip_exec owns that field. */
  conn->impl->Cancel();
  return 0;
}

int tip_set_timeout_ms(tip_connection* conn, long long ms) {
  if (conn == nullptr || ms < 0) return -1;
  conn->impl->SetStatementTimeoutMs(ms);
  conn->last_error.clear();
  return 0;
}

int tip_set_memory_limit_kb(tip_connection* conn,
                            unsigned long long kb) {
  if (conn == nullptr) return -1;
  conn->impl->SetMemoryLimitKb(static_cast<size_t>(kb));
  conn->last_error.clear();
  return 0;
}

int tip_set_wal_mode(tip_connection* conn, const char* mode) {
  if (conn == nullptr || mode == nullptr) return -1;
  tip::Result<tip::engine::WalMode> parsed =
      tip::engine::ParseWalMode(mode);
  if (!parsed.ok()) {
    conn->last_error = parsed.status().ToString();
    return -1;
  }
  tip::Status status = conn->impl->SetWalMode(*parsed);
  if (!status.ok()) {
    conn->last_error = status.ToString();
    return -1;
  }
  conn->last_error.clear();
  return 0;
}

int tip_checkpoint(tip_connection* conn) {
  if (conn == nullptr) return -1;
  tip::Status status = conn->impl->Checkpoint();
  if (!status.ok()) {
    conn->last_error = status.ToString();
    return -1;
  }
  conn->last_error.clear();
  return 0;
}

int tip_sync_wal(tip_connection* conn) {
  if (conn == nullptr) return -1;
  tip::Status status = conn->impl->SyncWal();
  if (!status.ok()) {
    conn->last_error = status.ToString();
    return -1;
  }
  conn->last_error.clear();
  return 0;
}

int tip_verify(tip_connection* conn) {
  if (conn == nullptr) return -1;
  tip::Result<tip::client::ResultSet> result =
      conn->impl->Execute("SELECT tip_verify()");
  if (!result.ok()) {
    conn->last_error = result.status().ToString();
    return -1;
  }
  /* tip_verify() reports corruption as data, not as a statement error
   * (the operator usually wants the whole damage map); fold it back
   * into the C convention here. */
  const std::string verdict = result->GetString(0, 0);
  if (verdict.rfind("ok", 0) != 0) {
    conn->last_error = "integrity check failed: " + verdict;
    return -1;
  }
  conn->last_error.clear();
  return 0;
}

int tip_begin(tip_connection* conn) {
  if (conn == nullptr) return -1;
  tip::Status status = conn->impl->Begin();
  if (!status.ok()) {
    conn->last_error = status.ToString();
    return -1;
  }
  conn->last_error.clear();
  return 0;
}

int tip_commit(tip_connection* conn) {
  if (conn == nullptr) return -1;
  tip::Status status = conn->impl->Commit();
  if (!status.ok()) {
    conn->last_error = status.ToString();
    return -1;
  }
  conn->last_error.clear();
  return 0;
}

int tip_rollback(tip_connection* conn) {
  if (conn == nullptr) return -1;
  tip::Status status = conn->impl->Rollback();
  if (!status.ok()) {
    conn->last_error = status.ToString();
    return -1;
  }
  conn->last_error.clear();
  return 0;
}

int tip_in_transaction(const tip_connection* conn) {
  if (conn == nullptr) return -1;
  return conn->impl->in_transaction() ? 1 : 0;
}

int tip_exec(tip_connection* conn, const char* sql, tip_result** out) {
  if (out != nullptr) *out = nullptr;
  if (conn == nullptr || sql == nullptr) return -1;
  tip::Result<tip::client::ResultSet> result = conn->impl->Execute(sql);
  if (!result.ok()) {
    conn->last_error = result.status().ToString();
    return -1;
  }
  conn->last_error.clear();
  if (out != nullptr) {
    auto* handle = new tip_result;
    handle->rows = result->raw();
    handle->types = &conn->impl->database().types();
    *out = handle;
  }
  return 0;
}

int tip_prepare(tip_connection* conn, const char* sql, tip_stmt** out) {
  if (out != nullptr) *out = nullptr;
  if (conn == nullptr || sql == nullptr || out == nullptr) return -1;
  tip::client::Statement stmt = conn->impl->Prepare(sql);
  if (!stmt.status().ok()) {
    conn->last_error = stmt.status().ToString();
    return -1;
  }
  conn->last_error.clear();
  *out = new tip_stmt{conn, std::move(stmt)};
  return 0;
}

int tip_stmt_bind_int(tip_stmt* stmt, const char* name, long long value) {
  if (stmt == nullptr || name == nullptr) return -1;
  stmt->impl.BindInt(name, value);
  return 0;
}

int tip_stmt_bind_double(tip_stmt* stmt, const char* name, double value) {
  if (stmt == nullptr || name == nullptr) return -1;
  stmt->impl.BindDouble(name, value);
  return 0;
}

int tip_stmt_bind_text(tip_stmt* stmt, const char* name,
                       const char* value) {
  if (stmt == nullptr || name == nullptr || value == nullptr) return -1;
  stmt->impl.BindString(name, value);
  return 0;
}

int tip_stmt_bind_null(tip_stmt* stmt, const char* name) {
  if (stmt == nullptr || name == nullptr) return -1;
  stmt->impl.BindNull(name);
  return 0;
}

int tip_stmt_clear_bindings(tip_stmt* stmt) {
  if (stmt == nullptr) return -1;
  stmt->impl.ClearBindings();
  return 0;
}

int tip_stmt_execute(tip_stmt* stmt, tip_result** out) {
  if (out != nullptr) *out = nullptr;
  if (stmt == nullptr) return -1;
  tip_connection* conn = stmt->conn;
  tip::Result<tip::client::ResultSet> result = stmt->impl.Execute();
  if (!result.ok()) {
    conn->last_error = result.status().ToString();
    return -1;
  }
  conn->last_error.clear();
  if (out != nullptr) {
    auto* handle = new tip_result;
    handle->rows = result->raw();
    handle->types = &conn->impl->database().types();
    *out = handle;
  }
  return 0;
}

void tip_stmt_close(tip_stmt* stmt) { delete stmt; }

void tip_result_free(tip_result* result) { delete result; }

size_t tip_result_row_count(const tip_result* result) {
  return result == nullptr ? 0 : result->rows.rows.size();
}

size_t tip_result_column_count(const tip_result* result) {
  return result == nullptr ? 0 : result->rows.columns.size();
}

long long tip_result_affected_rows(const tip_result* result) {
  return result == nullptr ? 0 : result->rows.affected_rows;
}

const char* tip_result_column_name(const tip_result* result, size_t col) {
  if (result == nullptr || col >= result->rows.columns.size()) {
    return nullptr;
  }
  return result->rows.columns[col].name.c_str();
}

const char* tip_result_column_type(const tip_result* result, size_t col) {
  if (result == nullptr || col >= result->rows.columns.size()) {
    return nullptr;
  }
  return result->types->Get(result->rows.columns[col].type).name.c_str();
}

int tip_result_is_null(const tip_result* result, size_t row, size_t col) {
  if (!InRange(result, row, col)) return 1;
  return result->rows.rows[row][col].is_null() ? 1 : 0;
}

const char* tip_result_text(tip_result* result, size_t row, size_t col) {
  if (!InRange(result, row, col)) return nullptr;
  auto [it, inserted] = result->text_cache.try_emplace(
      std::make_pair(row, col));
  if (inserted) {
    it->second = result->types->Format(result->rows.rows[row][col]);
  }
  return it->second.c_str();
}

long long tip_result_int64(const tip_result* result, size_t row,
                           size_t col) {
  if (!InRange(result, row, col)) return 0;
  const tip::engine::Datum& d = result->rows.rows[row][col];
  if (d.is_null() || d.type_id() != tip::engine::TypeId::kInt) return 0;
  return d.int_value();
}

double tip_result_double(const tip_result* result, size_t row,
                         size_t col) {
  if (!InRange(result, row, col)) return 0.0;
  const tip::engine::Datum& d = result->rows.rows[row][col];
  if (d.is_null() || d.type_id() != tip::engine::TypeId::kDouble) {
    return 0.0;
  }
  return d.double_value();
}

}  // extern "C"
