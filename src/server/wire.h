#ifndef TIP_SERVER_WIRE_H_
#define TIP_SERVER_WIRE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"
#include "engine/database.h"
#include "engine/exec/result_set.h"
#include "engine/types/type.h"

/// The TIP remote wire protocol: length-prefixed, CRC-framed messages
/// over TCP, shared by `tipd` (src/server/server.cc) and the thin
/// client (src/client/remote_connection.cc).
///
/// Frame layout (all integers little-endian, like the storage formats):
///
///   u32 payload_len | u8 frame_type | u32 crc32(payload) | payload
///
/// The CRC covers the payload only; the length and type are implicitly
/// validated by the CRC failing when they are torn. A frame whose CRC
/// does not match, whose length exceeds kMaxFramePayload, or whose type
/// is unknown is a protocol error — the session is fail-stop from that
/// point (Corruption), never resynchronized.
///
/// Values cross the wire in their binary send/receive format, addressed
/// by *type name* (not TypeId): ids are minted per-process, names are
/// stable because both ends install the same DataBlade. Rows use the
/// WAL's row-image grammar (varint prefix 0 = NULL, n+1 = n payload
/// bytes per column) so the encoding is exercised by every durability
/// test too.
namespace tip::server::wire {

/// Protocol revision. Bumped on any incompatible frame change; the
/// server refuses a Hello carrying anything else.
inline constexpr uint32_t kProtocolVersion = 1;

/// Hard cap on one frame's payload. Bigger results are chunked into
/// multiple kResultRows frames by the server; a length field above this
/// is treated as a torn frame.
inline constexpr uint32_t kMaxFramePayload = 64u << 20;

/// Fixed header size: u32 len + u8 type + u32 crc.
inline constexpr size_t kFrameHeaderSize = 9;

enum class FrameType : uint8_t {
  // client -> server
  kHello = 1,    // u32 protocol_version
  kExec = 2,     // string sql | u32 nparams | nparams * (name|type|datum)
  kPrepare = 3,  // string sql (validate only; plan cache does the rest)
  kCancel = 4,   // u64 session_id | u64 cancel_key (on a fresh conn)
  kPing = 5,     // empty
  kGoodbye = 6,  // empty; polite close
  // server -> client
  kHelloOk = 16,       // u32 proto | u64 session_id | u64 cancel_key
  kResultHeader = 17,  // u64 affected | string msg | u8 in_txn | columns
  kResultRows = 18,    // u32 nrows | nrows row images
  kResultDone = 19,    // empty; result complete
  kError = 20,         // u32 status_code | string message | u8 in_txn
  kPong = 21,          // empty
  kPrepareOk = 22,     // empty; statement parsed and planned
};

struct Frame {
  FrameType type;
  std::string payload;
};

/// True for the status ReadFrame returns when the peer closed the
/// connection cleanly at a frame boundary (recv == 0 before any header
/// byte). Everything else non-OK is a real wire failure.
bool IsCleanEof(const Status& status);

/// True for the status ReadFrame returns when `first_byte_timeout_ms`
/// expired with no frame started — the session idle timeout. A
/// deadline hit *mid-frame* is a wire failure, not idleness.
bool IsIdleTimeout(const Status& status);

// ---------------------------------------------------------------------------
// Socket plumbing. All fds produced here are non-blocking; every recv
// and send is gated by poll() with a deadline so a stalled peer can
// never wedge a server thread. timeout_ms < 0 blocks indefinitely.
// ---------------------------------------------------------------------------

/// Connects to host:port (numeric or resolvable name). The timeout
/// bounds the TCP connect itself.
Result<int> DialTcp(const std::string& host, int port, int timeout_ms);

/// Binds and listens on host:port. port 0 picks an ephemeral port;
/// *bound_port reports the actual one.
Result<int> ListenTcp(const std::string& host, int port, int* bound_port);

/// Writes one frame (header + payload). `bytes_counter`, when non-null,
/// accumulates bytes actually written (tip_server_stats bytes_out).
Status WriteFrame(int fd, FrameType type, std::string_view payload,
                  int timeout_ms,
                  std::atomic<uint64_t>* bytes_counter = nullptr);

/// Reads one frame. `first_byte_timeout_ms` bounds the wait for the
/// start of the header (the session idle timeout); `body_timeout_ms`
/// bounds each subsequent poll (a peer that started a frame must finish
/// it). Clean EOF before any header byte -> NotFound (IsCleanEof);
/// EOF or timeout mid-frame -> Corruption / DeadlineExceeded.
Result<Frame> ReadFrame(int fd, int first_byte_timeout_ms,
                        int body_timeout_ms,
                        std::atomic<uint64_t>* bytes_counter = nullptr);

// ---------------------------------------------------------------------------
// Payload grammar. Builders return the payload bytes; parsers are
// bounds-checked and fail with Corruption on truncation.
// ---------------------------------------------------------------------------

std::string BuildHello();
Result<uint32_t> ParseHello(std::string_view payload);

struct HelloOk {
  uint32_t protocol_version = 0;
  uint64_t session_id = 0;
  uint64_t cancel_key = 0;
};
std::string BuildHelloOk(const HelloOk& hello);
Result<HelloOk> ParseHelloOk(std::string_view payload);

/// Exec carries the SQL plus bound parameters, each as
/// (name | type name | row-image field).
std::string BuildExec(std::string_view sql, const engine::Params& params,
                      const engine::TypeRegistry& types);
struct ExecRequest {
  std::string sql;
  engine::Params params;
};
Result<ExecRequest> ParseExec(std::string_view payload,
                              const engine::TypeRegistry& types);

std::string BuildPrepare(std::string_view sql);
Result<std::string> ParsePrepare(std::string_view payload);

struct CancelRequest {
  uint64_t session_id = 0;
  uint64_t cancel_key = 0;
};
std::string BuildCancel(const CancelRequest& req);
Result<CancelRequest> ParseCancel(std::string_view payload);

/// ResultHeader describes everything about a ResultSet except the rows:
/// affected count, DDL/SET message, whether the session is now inside a
/// transaction, and the column schema (names + type names).
std::string BuildResultHeader(const engine::ResultSet& result, bool in_txn,
                              const engine::TypeRegistry& types);
struct ResultHeader {
  int64_t affected_rows = 0;
  std::string message;
  bool in_txn = false;
  std::vector<std::string> column_names;
  std::vector<std::string> column_types;
};
Result<ResultHeader> ParseResultHeader(std::string_view payload);

/// One chunk of rows: u32 nrows | nrows row images over the result's
/// columns. `first`/`last` index into result.rows (half-open).
std::string BuildRowsChunk(const engine::ResultSet& result, size_t first,
                           size_t last, const engine::TypeRegistry& types);
/// Appends one row's image (the chunk grammar without the count
/// prefix); the server uses it to cut size-bounded chunks.
void AppendRowImage(const engine::Row& row, const engine::TypeRegistry& types,
                    std::string* out);
/// Decodes a chunk against the column types resolved from the header
/// (one TypeId per column, client-side registry).
Result<std::vector<engine::Row>> ParseRowsChunk(
    std::string_view payload, const std::vector<engine::TypeId>& columns,
    const engine::TypeRegistry& types);

std::string BuildError(const Status& status, bool in_txn);
struct WireError {
  Status status;   // reconstructed with the original code + message
  bool in_txn = false;
};
Result<WireError> ParseError(std::string_view payload);

/// Resolves the header's type names against a local registry.
Result<std::vector<engine::TypeId>> ResolveColumnTypes(
    const ResultHeader& header, const engine::TypeRegistry& types);

}  // namespace tip::server::wire

#endif  // TIP_SERVER_WIRE_H_
