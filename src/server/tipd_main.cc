// tipd — the TIP network daemon. Serves one database directory over
// the TIP wire protocol until SIGTERM/SIGINT, then drains gracefully:
// stops accepting, finishes or deadline-aborts in-flight statements,
// rolls back abandoned transactions, takes a final checkpoint, exits.
//
//   tipd --dir=/var/lib/tip [--host=127.0.0.1] [--port=5432]
//        [--max-sessions=32] [--idle-timeout-ms=0] [--salvage]
//
// With no --dir it serves a fresh in-memory database (demos, benches).
// The chosen port is announced on stdout as "tipd: listening port=N"
// so scripts can parse it when --port=0 picks an ephemeral one.

#include <signal.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "client/connection.h"
#include "server/server.h"

namespace {

int g_signal_pipe[2] = {-1, -1};

void OnSignal(int) {
  const char byte = 1;
  // Async-signal-safe: one write, errors ignored (a full pipe already
  // guarantees a pending shutdown).
  (void)!write(g_signal_pipe[1], &byte, 1);
}

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *out = arg + len + 1;
  return true;
}

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--dir=PATH] [--host=ADDR] [--port=N] [--max-sessions=N]\n"
      "          [--idle-timeout-ms=N] [--statement-timeout-ms=N]\n"
      "          [--memory-limit-kb=N] [--drain-timeout-ms=N] [--salvage]\n"
      "          [--exclusive-gate]\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir;
  bool salvage = false;
  tip::server::ServerOptions options;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (ParseFlag(argv[i], "--dir", &value)) {
      dir = value;
    } else if (ParseFlag(argv[i], "--host", &value)) {
      options.host = value;
    } else if (ParseFlag(argv[i], "--port", &value)) {
      options.port = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--max-sessions", &value)) {
      options.max_sessions = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--idle-timeout-ms", &value)) {
      options.idle_timeout_ms = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--statement-timeout-ms", &value)) {
      options.default_statement_timeout_ms = std::atoll(value.c_str());
    } else if (ParseFlag(argv[i], "--memory-limit-kb", &value)) {
      options.default_memory_limit_kb =
          static_cast<size_t>(std::atoll(value.c_str()));
    } else if (ParseFlag(argv[i], "--drain-timeout-ms", &value)) {
      options.drain_timeout_ms = std::atoi(value.c_str());
    } else if (std::strcmp(argv[i], "--salvage") == 0) {
      salvage = true;
    } else if (std::strcmp(argv[i], "--exclusive-gate") == 0) {
      // Serialize every statement (the pre-shared-gate behavior); kept
      // as a benchmark baseline and an escape hatch.
      options.exclusive_gate = true;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      Usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "tipd: unknown flag '%s'\n", argv[i]);
      Usage(argv[0]);
      return 2;
    }
  }

  tip::Result<std::unique_ptr<tip::client::Connection>> conn =
      tip::Status::Internal("unopened");
  tip::engine::RecoveryReport report;
  if (dir.empty()) {
    conn = tip::client::Connection::Open();
  } else {
    conn = tip::client::Connection::OpenDurable(
        dir, &report,
        salvage ? tip::engine::RecoveryMode::kSalvage
                : tip::engine::RecoveryMode::kStrict);
  }
  if (!conn.ok()) {
    std::fprintf(stderr, "tipd: open failed: %s\n",
                 conn.status().ToString().c_str());
    return 1;
  }

  if (pipe(g_signal_pipe) != 0) {
    std::perror("tipd: pipe");
    return 1;
  }
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = OnSignal;
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);
  signal(SIGPIPE, SIG_IGN);

  tip::Result<std::unique_ptr<tip::server::Server>> server =
      tip::server::Server::Start(&(*conn)->database(), options);
  if (!server.ok()) {
    std::fprintf(stderr, "tipd: start failed: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }
  std::printf("tipd: listening port=%d\n", (*server)->port());
  std::fflush(stdout);

  // Park until a signal lands, then drain.
  char byte;
  while (read(g_signal_pipe[0], &byte, 1) < 0 && errno == EINTR) {
  }
  std::fprintf(stderr, "tipd: draining\n");
  (*server)->Shutdown();
  std::fprintf(stderr, "tipd: stopped\n");
  return 0;
}
