#ifndef TIP_SERVER_SERVER_H_
#define TIP_SERVER_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "core/chronon.h"
#include "engine/database.h"
#include "server/wire.h"

/// The TIP network front-end: `Server` multiplexes many remote sessions
/// onto one embedded `engine::Database` — the reproduction's answer to
/// the paper's TIP-inside-a-multi-user-Informix-server deployment.
///
/// Concurrency model (DESIGN.md §13). The server owns a fair
/// *shared/exclusive execution gate*: each statement is classified by
/// `engine::Database::Classify` — readers (SELECT/EXPLAIN, transaction
/// control, session-scoped SET) acquire the gate shared and run
/// concurrently; writers (DML, DDL, CHECK, global SET, side-effectful
/// routines) acquire it exclusively. Fairness is writer-preference: a
/// waiting writer blocks new shared admissions, so a read-heavy fleet
/// cannot starve its writers. A transaction holds the gate from BEGIN
/// to COMMIT/ROLLBACK — *shared* while it only reads (so browsing
/// transactions overlap), upgrading to exclusive at its first write;
/// when two shared transactions race to upgrade, the second is refused
/// with an explicit "upgrade would deadlock" error instead of
/// deadlocking, and stays usable read-only. Waits are bounded: any
/// acquisition (either mode) gives up after `lock_wait_ms` with an
/// explicit ResourceExhausted ("server busy"). Per-session state (NOW
/// override, statement timeout, memory budget, parallel knobs) lives
/// in an `engine::SessionContext` carried through every engine call,
/// which is what lets two sessions with different `SET NOW` values
/// read different groundings concurrently. `ServerOptions::
/// exclusive_gate` forces every statement exclusive — the PR 9
/// behavior, kept as the benchmark baseline.
///
/// Robustness properties (enforced, and tested by tests/server/):
///  - Admission control: at most `max_sessions` concurrent sessions;
///    excess connections queue up to `admission_wait_ms` and are then
///    rejected with an explicit ResourceExhausted error frame — a
///    refused client always learns it was refused.
///  - Fail-stop sessions: any wire failure (torn frame, CRC mismatch,
///    mid-result disconnect, write timeout to a stalled client, or an
///    injected `server.accept/read/write/frame_crc` fault) kills only
///    that session; its open transaction auto-rolls back and its slot
///    frees while every other session keeps serving.
///  - Backpressure: results stream in bounded kResultRows chunks
///    (`max_rows_frame_bytes`) with poll-bounded writes
///    (`write_timeout_ms`); the engine-side memory budget
///    (`memory_limit_kb`) bounds materialization. A client that stops
///    reading is fail-stopped, not buffered without bound.
///  - Graceful drain: Shutdown() stops accepting, rejects the queue,
///    lets in-flight statements finish up to `drain_timeout_ms` (then
///    cancels them), rolls back abandoned transactions, takes a final
///    checkpoint on durable databases, and joins every thread.
namespace tip::server {

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 = pick an ephemeral port; Server::port() reports the choice.
  int port = 0;
  /// Concurrent admitted sessions (the bounded session pool).
  int max_sessions = 32;
  /// Connections allowed to wait for a slot beyond max_sessions;
  /// further connects are rejected immediately.
  int admission_queue_limit = 64;
  /// How long a queued connection may wait for a slot before the
  /// explicit ResourceExhausted rejection.
  int admission_wait_ms = 1000;
  /// Handshake deadline: a connection that does not complete Hello in
  /// time is dropped (slowloris defense).
  int hello_timeout_ms = 2000;
  /// 0 = no idle timeout; otherwise a session that sends nothing for
  /// this long is reaped (its transaction rolls back).
  int idle_timeout_ms = 0;
  /// Max wait for the execution gate before "server busy".
  int lock_wait_ms = 10000;
  /// Per-poll deadline for writes to (and mid-frame reads from) a
  /// client; a peer stalled longer is fail-stopped.
  int write_timeout_ms = 10000;
  /// Drain: grace period for in-flight statements at Shutdown.
  int drain_timeout_ms = 5000;
  /// Initial per-session ExecGuard defaults (0 = unlimited), applied
  /// at admission; sessions adjust their own via SET.
  int64_t default_statement_timeout_ms = 0;
  size_t default_memory_limit_kb = 0;
  /// Target payload size of one kResultRows chunk.
  size_t max_rows_frame_bytes = 256 * 1024;
  /// Force every statement to take the gate exclusively — the PR 9
  /// serialized behavior. Kept as the measurable baseline for
  /// bench_concurrent_reads (and an escape hatch).
  bool exclusive_gate = false;
};

class Server {
 public:
  /// Starts listening and serving `db` (not owned; must outlive the
  /// server and have the TIP DataBlade installed). The database's
  /// server_stats() counters are live from here on.
  static Result<std::unique_ptr<Server>> Start(engine::Database* db,
                                               ServerOptions options);

  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The bound port (useful with options.port == 0).
  int port() const { return port_; }

  /// Graceful drain; idempotent, safe from signal-driven shutdown
  /// paths' *main thread* (not async-signal-safe itself — signal
  /// handlers should write a self-pipe and let the main thread call
  /// this, as tipd does).
  void Shutdown();

 private:
  /// How a session currently holds the execution gate. Touched only by
  /// the session thread (and FinishSession, which runs on it).
  enum class GateMode { kNone, kShared, kExclusive };

  struct Session {
    uint64_t id = 0;
    uint64_t cancel_key = 0;
    int fd = -1;
    std::thread thread;
    /// The engine-side session state (NOW override, resource budgets,
    /// parallel knobs, transaction pin), threaded through every
    /// Execute/Prepare call instead of being swapped into global
    /// Database fields — that swap is impossible once readers overlap.
    engine::SessionContext engine_session;
    /// kNone between statements; kShared/kExclusive while a
    /// transaction holds the gate across statements.
    GateMode gate_mode = GateMode::kNone;
    /// Abnormal-exit marker for the session_aborts counter.
    bool aborted = false;
    /// True while this session's thread is inside db->Execute.
    std::atomic<bool> executing{false};
    /// Set when the session thread has fully cleaned up (slot freed,
    /// fd closed); the accept thread reaps the std::thread.
    std::atomic<bool> done{false};
  };

  /// A connection between accept() and admission: waiting for its
  /// Hello frame, then possibly queued for a session slot.
  struct Pending {
    int fd = -1;
    int64_t deadline_ms = 0;  // hello or admission deadline
    bool hello_done = false;
    std::string buffer;  // partial inbound frame bytes
  };

  Server(engine::Database* db, ServerOptions options);

  void AcceptLoop();
  void SessionLoop(Session* session);

  /// One statement (or prepare) on a session: classify, gate, execute
  /// under the session's engine context, stream. Returns false when
  /// the session must fail-stop.
  bool HandleExec(Session* session, const wire::Frame& frame);
  bool HandlePrepare(Session* session, const wire::Frame& frame);
  bool StreamResult(Session* session, const engine::ResultSet& result,
                    bool in_txn);
  bool SendError(Session* session, const Status& status, bool in_txn);

  /// Session-side frame I/O with the `server.read` / `server.write` /
  /// `server.frame_crc` fault sites and the stats byte counters.
  Status WriteChecked(Session* session, wire::FrameType type,
                      std::string_view payload);
  Result<wire::Frame> ReadChecked(Session* session, int first_timeout_ms);

  /// Gate acquire/release (see class comment). Every acquire returns
  /// ResourceExhausted ("server busy") after `wait_ms`; Upgrade can
  /// also return InvalidArgument ("upgrade would deadlock") when a
  /// second shared transaction is already upgrading. On success the
  /// session's gate_mode is updated; the stats counters are bumped
  /// either way.
  Status AcquireShared(Session* session, int wait_ms);
  Status AcquireExclusive(Session* session, int wait_ms);
  Status UpgradeToExclusive(Session* session, int wait_ms);
  void ReleaseGate(Session* session);

  /// Remote cancel: if `session_id`+`cancel_key` name a live session,
  /// cancel its active statements.
  void CancelSession(uint64_t session_id, uint64_t cancel_key);

  /// Admits `fd` as a new session (slot already reserved) or hands it
  /// to the admission queue / rejection path.
  void Admit(int fd);
  void RejectConnection(int fd, const Status& reason);
  /// Session-thread cleanup: rollback if gate owner, close, free slot.
  void FinishSession(Session* session);

  void WakeAcceptThread();
  void ReapDoneSessions();

  engine::Database* const db_;
  const ServerOptions options_;

  int listen_fd_ = -1;
  int port_ = 0;
  int wake_pipe_[2] = {-1, -1};

  std::thread accept_thread_;
  std::atomic<bool> draining_{false};
  std::atomic<bool> stopped_{false};
  std::mutex shutdown_mu_;  // serializes Shutdown callers

  // Shared/exclusive execution gate. Writer preference: readers admit
  // only while no writer holds or waits; an upgrader additionally
  // claims the single upgrade slot (`upgrader_`) so a symmetric
  // upgrade race resolves to an explicit refusal, not a deadlock.
  std::mutex gate_mu_;
  std::condition_variable gate_cv_;
  int readers_ = 0;            // sessions holding shared
  uint64_t writer_ = 0;        // session id holding exclusive; 0 = none
  int writers_waiting_ = 0;    // writers (and upgraders) in the queue
  uint64_t upgrader_ = 0;      // session id mid-upgrade; 0 = none

  // Live sessions. Guarded by sessions_mu_ for structural changes; the
  // Session objects themselves are stable (unique_ptr) so session
  // threads and the cancel path may read them without the lock.
  std::mutex sessions_mu_;
  std::vector<std::unique_ptr<Session>> sessions_;
  uint64_t next_session_id_ = 1;
  uint64_t cancel_key_seed_ = 0;
  std::atomic<int> active_{0};

  // Accept-side state (owned by the accept thread).
  std::deque<Pending> handshaking_;
  std::deque<Pending> admission_queue_;
};

}  // namespace tip::server

#endif  // TIP_SERVER_SERVER_H_
