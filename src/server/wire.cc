#include "server/wire.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/crc32.h"
#include "engine/storage/wire_format.h"

namespace tip::server::wire {

namespace {

namespace ewire = tip::engine::wire;

using SteadyClock = std::chrono::steady_clock;

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             SteadyClock::now().time_since_epoch())
      .count();
}

Status SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::Internal("fcntl(O_NONBLOCK): " +
                            std::string(std::strerror(errno)));
  }
  return Status::OK();
}

/// Waits for `events` on fd. Returns OK when ready, DeadlineExceeded on
/// timeout, Internal on poll failure. timeout_ms < 0 waits forever.
Status PollFor(int fd, short events, int timeout_ms) {
  const int64_t deadline = timeout_ms < 0 ? -1 : NowMs() + timeout_ms;
  for (;;) {
    int wait = -1;
    if (deadline >= 0) {
      const int64_t left = deadline - NowMs();
      if (left <= 0) return Status::DeadlineExceeded("wire timeout");
      wait = static_cast<int>(left);
    }
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = events;
    pfd.revents = 0;
    const int rc = poll(&pfd, 1, wait);
    if (rc > 0) return Status::OK();  // readable/writable or HUP/ERR —
                                      // let recv/send report the latter
    if (rc == 0) return Status::DeadlineExceeded("wire timeout");
    if (errno == EINTR) continue;
    return Status::Internal("poll: " + std::string(std::strerror(errno)));
  }
}

/// Receives exactly `n` bytes into `out`. `first_timeout_ms` applies to
/// the wait for the first byte, `rest_timeout_ms` to every later poll.
/// Clean EOF before any byte -> NotFound("connection closed"); EOF
/// mid-buffer -> Corruption.
Status RecvExact(int fd, size_t n, std::string* out, int first_timeout_ms,
                 int rest_timeout_ms, std::atomic<uint64_t>* bytes_counter,
                 bool* got_any = nullptr) {
  size_t got = 0;
  out->resize(n);
  while (got < n) {
    if (got_any != nullptr) *got_any = got > 0;
    TIP_RETURN_IF_ERROR(
        PollFor(fd, POLLIN, got == 0 ? first_timeout_ms : rest_timeout_ms));
    const ssize_t rc = recv(fd, out->data() + got, n - got, 0);
    if (rc > 0) {
      got += static_cast<size_t>(rc);
      if (bytes_counter) {
        bytes_counter->fetch_add(static_cast<uint64_t>(rc),
                                 std::memory_order_relaxed);
      }
      continue;
    }
    if (rc == 0) {
      if (got == 0) return Status::NotFound("connection closed");
      return Status::Corruption("connection closed mid-frame");
    }
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    return Status::Corruption("recv: " + std::string(std::strerror(errno)));
  }
  return Status::OK();
}

Status SendAll(int fd, std::string_view bytes, int timeout_ms,
               std::atomic<uint64_t>* bytes_counter) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    TIP_RETURN_IF_ERROR(PollFor(fd, POLLOUT, timeout_ms));
    const ssize_t rc = send(fd, bytes.data() + sent, bytes.size() - sent,
                            MSG_NOSIGNAL);
    if (rc > 0) {
      sent += static_cast<size_t>(rc);
      if (bytes_counter) {
        bytes_counter->fetch_add(static_cast<uint64_t>(rc),
                                 std::memory_order_relaxed);
      }
      continue;
    }
    if (rc < 0 &&
        (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)) {
      continue;
    }
    return Status::Corruption("send: " + std::string(std::strerror(errno)));
  }
  return Status::OK();
}

/// Appends one datum as a row-image field: varint 0 for NULL, n+1 then
/// the n serialized bytes otherwise. Identical to EncodeRowImage's
/// per-column grammar (storage/recovery.cc).
void PutDatumField(const engine::Datum& d, const engine::TypeRegistry& types,
                   std::string* out) {
  if (d.is_null()) {
    ewire::PutVarint(0, out);
    return;
  }
  const std::string bytes = types.Serialize(d);
  ewire::PutVarint(bytes.size() + 1, out);
  out->append(bytes);
}

Result<engine::Datum> ReadDatumField(ewire::Reader* reader,
                                     engine::TypeId type,
                                     const engine::TypeRegistry& types) {
  TIP_ASSIGN_OR_RETURN(uint64_t prefix, reader->Varint());
  if (prefix == 0) return engine::Datum::NullOf(type);
  TIP_ASSIGN_OR_RETURN(std::string_view payload, reader->Bytes(prefix - 1));
  const engine::TypeOps& ops = types.Get(type).ops;
  return ops.deserialize ? ops.deserialize(payload) : ops.parse(payload);
}

// Sanity caps for count fields: a torn count must become a clean
// Corruption, never a giant allocation.
constexpr uint64_t kMaxColumns = 1u << 16;
constexpr uint64_t kMaxParams = 1u << 16;
constexpr uint64_t kMaxRowsPerChunk = 1u << 24;

}  // namespace

bool IsCleanEof(const Status& status) {
  return status.code() == StatusCode::kNotFound &&
         status.message() == "connection closed";
}

bool IsIdleTimeout(const Status& status) {
  return status.code() == StatusCode::kDeadlineExceeded &&
         status.message() == "no frame within deadline";
}

Result<int> DialTcp(const std::string& host, int port, int timeout_ms) {
  struct addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_NUMERICSERV;
  struct addrinfo* res = nullptr;
  const std::string service = std::to_string(port);
  const int rc = getaddrinfo(host.c_str(), service.c_str(), &hints, &res);
  if (rc != 0) {
    return Status::InvalidArgument("resolve '" + host +
                                   "': " + gai_strerror(rc));
  }
  Status last = Status::Internal("no addresses for '" + host + "'");
  for (struct addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    const int fd = socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last = Status::Internal("socket: " + std::string(std::strerror(errno)));
      continue;
    }
    Status nb = SetNonBlocking(fd);
    if (!nb.ok()) {
      close(fd);
      last = nb;
      continue;
    }
    // The protocol is strictly request/response with small frames:
    // Nagle + delayed ACK would add ~40ms per round trip. Best-effort
    // (non-TCP transports just ignore it).
    const int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
      freeaddrinfo(res);
      return fd;
    }
    if (errno == EINPROGRESS) {
      Status ready = PollFor(fd, POLLOUT, timeout_ms);
      if (ready.ok()) {
        int err = 0;
        socklen_t len = sizeof(err);
        if (getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) == 0 &&
            err == 0) {
          freeaddrinfo(res);
          return fd;
        }
        last = Status::Internal("connect: " +
                                std::string(std::strerror(err)));
      } else {
        last = ready;
      }
    } else {
      last = Status::Internal("connect: " +
                              std::string(std::strerror(errno)));
    }
    close(fd);
  }
  freeaddrinfo(res);
  return last;
}

Result<int> ListenTcp(const std::string& host, int port, int* bound_port) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal("socket: " + std::string(std::strerror(errno)));
  }
  const int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return Status::InvalidArgument("listen host must be a numeric IPv4 "
                                   "address, got '" + host + "'");
  }
  if (bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) < 0) {
    const Status out =
        Status::Internal("bind " + host + ":" + std::to_string(port) + ": " +
                         std::strerror(errno));
    close(fd);
    return out;
  }
  if (listen(fd, SOMAXCONN) < 0) {
    const Status out =
        Status::Internal("listen: " + std::string(std::strerror(errno)));
    close(fd);
    return out;
  }
  if (bound_port != nullptr) {
    socklen_t len = sizeof(addr);
    if (getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) <
        0) {
      const Status out = Status::Internal(
          "getsockname: " + std::string(std::strerror(errno)));
      close(fd);
      return out;
    }
    *bound_port = ntohs(addr.sin_port);
  }
  Status nb = SetNonBlocking(fd);
  if (!nb.ok()) {
    close(fd);
    return nb;
  }
  return fd;
}

Status WriteFrame(int fd, FrameType type, std::string_view payload,
                  int timeout_ms, std::atomic<uint64_t>* bytes_counter) {
  if (payload.size() > kMaxFramePayload) {
    return Status::Internal("frame payload too large: " +
                            std::to_string(payload.size()));
  }
  std::string frame;
  frame.reserve(kFrameHeaderSize + payload.size());
  ewire::PutU32(static_cast<uint32_t>(payload.size()), &frame);
  ewire::PutU8(static_cast<uint8_t>(type), &frame);
  ewire::PutU32(Crc32(payload), &frame);
  frame.append(payload);
  return SendAll(fd, frame, timeout_ms, bytes_counter);
}

Result<Frame> ReadFrame(int fd, int first_byte_timeout_ms,
                        int body_timeout_ms,
                        std::atomic<uint64_t>* bytes_counter) {
  std::string header;
  bool got_any = false;
  Status header_read =
      RecvExact(fd, kFrameHeaderSize, &header, first_byte_timeout_ms,
                body_timeout_ms, bytes_counter, &got_any);
  if (!header_read.ok()) {
    if (header_read.code() == StatusCode::kDeadlineExceeded && !got_any) {
      return Status::DeadlineExceeded("no frame within deadline");
    }
    return header_read;
  }
  ewire::Reader reader(header);
  TIP_ASSIGN_OR_RETURN(uint32_t len, reader.U32());
  TIP_ASSIGN_OR_RETURN(uint8_t type, reader.U8());
  TIP_ASSIGN_OR_RETURN(uint32_t crc, reader.U32());
  if (len > kMaxFramePayload) {
    return Status::Corruption("frame length " + std::to_string(len) +
                              " exceeds cap");
  }
  Frame frame;
  frame.type = static_cast<FrameType>(type);
  if (len > 0) {
    TIP_RETURN_IF_ERROR(RecvExact(fd, len, &frame.payload, body_timeout_ms,
                                  body_timeout_ms, bytes_counter));
  }
  if (Crc32(frame.payload) != crc) {
    return Status::Corruption("frame crc mismatch");
  }
  return frame;
}

std::string BuildHello() {
  std::string out;
  ewire::PutU32(kProtocolVersion, &out);
  return out;
}

Result<uint32_t> ParseHello(std::string_view payload) {
  ewire::Reader reader(payload);
  TIP_ASSIGN_OR_RETURN(uint32_t version, reader.U32());
  return version;
}

std::string BuildHelloOk(const HelloOk& hello) {
  std::string out;
  ewire::PutU32(hello.protocol_version, &out);
  ewire::PutU64(hello.session_id, &out);
  ewire::PutU64(hello.cancel_key, &out);
  return out;
}

Result<HelloOk> ParseHelloOk(std::string_view payload) {
  ewire::Reader reader(payload);
  HelloOk out;
  TIP_ASSIGN_OR_RETURN(out.protocol_version, reader.U32());
  TIP_ASSIGN_OR_RETURN(out.session_id, reader.U64());
  TIP_ASSIGN_OR_RETURN(out.cancel_key, reader.U64());
  return out;
}

std::string BuildExec(std::string_view sql, const engine::Params& params,
                      const engine::TypeRegistry& types) {
  std::string out;
  ewire::PutString(sql, &out);
  ewire::PutU32(static_cast<uint32_t>(params.size()), &out);
  for (const auto& [name, value] : params) {
    ewire::PutString(name, &out);
    ewire::PutString(types.Get(value.type_id()).name, &out);
    PutDatumField(value, types, &out);
  }
  return out;
}

Result<ExecRequest> ParseExec(std::string_view payload,
                              const engine::TypeRegistry& types) {
  ewire::Reader reader(payload);
  ExecRequest out;
  TIP_ASSIGN_OR_RETURN(std::string_view sql, reader.String());
  out.sql = std::string(sql);
  TIP_ASSIGN_OR_RETURN(uint32_t nparams, reader.U32());
  if (nparams > kMaxParams) {
    return Status::Corruption("exec param count exceeds cap");
  }
  for (uint32_t i = 0; i < nparams; ++i) {
    TIP_ASSIGN_OR_RETURN(std::string_view name, reader.String());
    TIP_ASSIGN_OR_RETURN(std::string_view type_name, reader.String());
    TIP_ASSIGN_OR_RETURN(engine::TypeId type, types.FindByName(type_name));
    TIP_ASSIGN_OR_RETURN(engine::Datum value,
                         ReadDatumField(&reader, type, types));
    out.params.emplace(std::string(name), std::move(value));
  }
  if (!reader.AtEnd()) return Status::Corruption("trailing exec bytes");
  return out;
}

std::string BuildPrepare(std::string_view sql) {
  std::string out;
  ewire::PutString(sql, &out);
  return out;
}

Result<std::string> ParsePrepare(std::string_view payload) {
  ewire::Reader reader(payload);
  TIP_ASSIGN_OR_RETURN(std::string_view sql, reader.String());
  return std::string(sql);
}

std::string BuildCancel(const CancelRequest& req) {
  std::string out;
  ewire::PutU64(req.session_id, &out);
  ewire::PutU64(req.cancel_key, &out);
  return out;
}

Result<CancelRequest> ParseCancel(std::string_view payload) {
  ewire::Reader reader(payload);
  CancelRequest out;
  TIP_ASSIGN_OR_RETURN(out.session_id, reader.U64());
  TIP_ASSIGN_OR_RETURN(out.cancel_key, reader.U64());
  return out;
}

std::string BuildResultHeader(const engine::ResultSet& result, bool in_txn,
                              const engine::TypeRegistry& types) {
  std::string out;
  ewire::PutU64(static_cast<uint64_t>(result.affected_rows), &out);
  ewire::PutString(result.message, &out);
  ewire::PutU8(in_txn ? 1 : 0, &out);
  ewire::PutU32(static_cast<uint32_t>(result.columns.size()), &out);
  for (const engine::ResultColumn& col : result.columns) {
    ewire::PutString(col.name, &out);
    ewire::PutString(types.Get(col.type).name, &out);
  }
  return out;
}

Result<ResultHeader> ParseResultHeader(std::string_view payload) {
  ewire::Reader reader(payload);
  ResultHeader out;
  TIP_ASSIGN_OR_RETURN(uint64_t affected, reader.U64());
  out.affected_rows = static_cast<int64_t>(affected);
  TIP_ASSIGN_OR_RETURN(std::string_view message, reader.String());
  out.message = std::string(message);
  TIP_ASSIGN_OR_RETURN(uint8_t in_txn, reader.U8());
  out.in_txn = in_txn != 0;
  TIP_ASSIGN_OR_RETURN(uint32_t ncols, reader.U32());
  if (ncols > kMaxColumns) {
    return Status::Corruption("column count exceeds cap");
  }
  out.column_names.reserve(ncols);
  out.column_types.reserve(ncols);
  for (uint32_t i = 0; i < ncols; ++i) {
    TIP_ASSIGN_OR_RETURN(std::string_view name, reader.String());
    TIP_ASSIGN_OR_RETURN(std::string_view type_name, reader.String());
    out.column_names.emplace_back(name);
    out.column_types.emplace_back(type_name);
  }
  if (!reader.AtEnd()) return Status::Corruption("trailing header bytes");
  return out;
}

std::string BuildRowsChunk(const engine::ResultSet& result, size_t first,
                           size_t last, const engine::TypeRegistry& types) {
  std::string out;
  ewire::PutU32(static_cast<uint32_t>(last - first), &out);
  for (size_t i = first; i < last; ++i) {
    AppendRowImage(result.rows[i], types, &out);
  }
  return out;
}

void AppendRowImage(const engine::Row& row, const engine::TypeRegistry& types,
                    std::string* out) {
  for (const engine::Datum& value : row) {
    PutDatumField(value, types, out);
  }
}

Result<std::vector<engine::Row>> ParseRowsChunk(
    std::string_view payload, const std::vector<engine::TypeId>& columns,
    const engine::TypeRegistry& types) {
  ewire::Reader reader(payload);
  TIP_ASSIGN_OR_RETURN(uint32_t nrows, reader.U32());
  if (nrows > kMaxRowsPerChunk) {
    return Status::Corruption("row count exceeds cap");
  }
  std::vector<engine::Row> rows;
  rows.reserve(nrows);
  for (uint32_t i = 0; i < nrows; ++i) {
    engine::Row row;
    row.reserve(columns.size());
    for (const engine::TypeId type : columns) {
      TIP_ASSIGN_OR_RETURN(engine::Datum value,
                           ReadDatumField(&reader, type, types));
      row.push_back(std::move(value));
    }
    rows.push_back(std::move(row));
  }
  if (!reader.AtEnd()) return Status::Corruption("trailing row bytes");
  return rows;
}

std::string BuildError(const Status& status, bool in_txn) {
  std::string out;
  ewire::PutU32(static_cast<uint32_t>(status.code()), &out);
  ewire::PutString(status.message(), &out);
  ewire::PutU8(in_txn ? 1 : 0, &out);
  return out;
}

Result<WireError> ParseError(std::string_view payload) {
  ewire::Reader reader(payload);
  TIP_ASSIGN_OR_RETURN(uint32_t code, reader.U32());
  TIP_ASSIGN_OR_RETURN(std::string_view message, reader.String());
  TIP_ASSIGN_OR_RETURN(uint8_t in_txn, reader.U8());
  WireError out;
  if (code < 1 || code > static_cast<uint32_t>(StatusCode::kCorruption)) {
    code = static_cast<uint32_t>(StatusCode::kInternal);
  }
  out.status = Status(static_cast<StatusCode>(code), std::string(message));
  out.in_txn = in_txn != 0;
  return out;
}

Result<std::vector<engine::TypeId>> ResolveColumnTypes(
    const ResultHeader& header, const engine::TypeRegistry& types) {
  std::vector<engine::TypeId> out;
  out.reserve(header.column_types.size());
  for (const std::string& name : header.column_types) {
    Result<engine::TypeId> id = types.FindByName(name);
    if (!id.ok()) {
      return Status::TypeError("result column type '" + name +
                               "' unknown to this client");
    }
    out.push_back(*id);
  }
  return out;
}

}  // namespace tip::server::wire
