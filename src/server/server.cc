#include "server/server.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <random>

#include "common/crc32.h"
#include "common/fault_injection.h"
#include "engine/storage/wire_format.h"

namespace tip::server {

namespace {

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Short deadline for frames the accept thread writes (rejections,
/// handshake errors): these are tiny and a peer that cannot take them
/// promptly is not worth stalling admission for.
constexpr int kAcceptWriteTimeoutMs = 1000;

}  // namespace

Server::Server(engine::Database* db, ServerOptions options)
    : db_(db), options_(std::move(options)) {}

Result<std::unique_ptr<Server>> Server::Start(engine::Database* db,
                                              ServerOptions options) {
  auto server = std::unique_ptr<Server>(new Server(db, std::move(options)));
  TIP_ASSIGN_OR_RETURN(
      server->listen_fd_,
      wire::ListenTcp(server->options_.host, server->options_.port,
                      &server->port_));
  if (pipe(server->wake_pipe_) != 0) {
    return Status::Internal("pipe: " + std::string(std::strerror(errno)));
  }
  // Non-blocking on both ends: session threads must never block waking
  // the accept thread, and the accept thread drains opportunistically.
  for (const int fd : server->wake_pipe_) {
    const int flags = fcntl(fd, F_GETFL, 0);
    fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  }
  std::random_device rd;
  server->cancel_key_seed_ =
      (static_cast<uint64_t>(rd()) << 32) ^ static_cast<uint64_t>(rd());
  server->accept_thread_ = std::thread(&Server::AcceptLoop, server.get());
  return server;
}

Server::~Server() { Shutdown(); }

void Server::WakeAcceptThread() {
  const char byte = 1;
  // Best-effort: a full pipe already guarantees a pending wakeup.
  (void)!write(wake_pipe_[1], &byte, 1);
}

// ---------------------------------------------------------------------------
// Accept thread: listener + handshakes + admission queue.
// ---------------------------------------------------------------------------

void Server::AcceptLoop() {
  for (;;) {
    if (draining_.load(std::memory_order_acquire)) break;

    std::vector<struct pollfd> fds;
    fds.push_back({wake_pipe_[0], POLLIN, 0});
    fds.push_back({listen_fd_, POLLIN, 0});
    for (const Pending& p : handshaking_) {
      fds.push_back({p.fd, POLLIN, 0});
    }

    // Poll until the nearest handshake/admission deadline.
    int64_t next_deadline = -1;
    for (const Pending& p : handshaking_) {
      if (next_deadline < 0 || p.deadline_ms < next_deadline) {
        next_deadline = p.deadline_ms;
      }
    }
    for (const Pending& p : admission_queue_) {
      if (next_deadline < 0 || p.deadline_ms < next_deadline) {
        next_deadline = p.deadline_ms;
      }
    }
    int wait = -1;
    if (next_deadline >= 0) {
      wait = static_cast<int>(std::max<int64_t>(0, next_deadline - NowMs()));
    }
    const int rc = poll(fds.data(), fds.size(), wait);
    if (rc < 0 && errno != EINTR) break;  // unrecoverable; Shutdown joins

    if (draining_.load(std::memory_order_acquire)) break;

    // Drain wakeups.
    if (fds[0].revents & POLLIN) {
      char buf[64];
      while (read(wake_pipe_[0], buf, sizeof(buf)) > 0) {
      }
    }

    // Progress handshakes that have bytes (fds[2+j] maps to the j-th
    // tracked connection; new accepts are added only after this loop).
    // Reads are strictly non-blocking: a slow client costs nothing but
    // its own deadline.
    size_t poll_index = 2;
    for (auto it = handshaking_.begin(); it != handshaking_.end();
         ++poll_index) {
      Pending& p = *it;
      bool dead = false;
      bool complete = false;
      if (fds[poll_index].revents & (POLLIN | POLLHUP | POLLERR)) {
        for (;;) {
          char buf[512];
          const ssize_t n = recv(p.fd, buf, sizeof(buf), 0);
          if (n > 0) {
            p.buffer.append(buf, static_cast<size_t>(n));
            if (p.buffer.size() >
                wire::kFrameHeaderSize + wire::kMaxFramePayload) {
              dead = true;
            }
            continue;
          }
          if (n == 0) dead = true;  // EOF before a full handshake frame
          break;  // EAGAIN — or EOF/err handled above
        }
        if (p.buffer.size() >= wire::kFrameHeaderSize) {
          uint32_t len;
          std::memcpy(&len, p.buffer.data(), 4);
          if (len > wire::kMaxFramePayload) {
            dead = true;
          } else if (p.buffer.size() >= wire::kFrameHeaderSize + len) {
            // A complete frame outranks a trailing EOF: a cancel
            // client legitimately writes its one frame and hangs up.
            complete = true;
            dead = false;
          }
        }
      }
      if (!dead && !complete && NowMs() >= p.deadline_ms) dead = true;
      if (dead) {
        close(p.fd);
        it = handshaking_.erase(it);
        continue;
      }
      if (!complete) {
        ++it;
        continue;
      }
      // Full first frame in hand: Hello starts admission, Cancel is
      // serviced inline (it deliberately consumes no session slot, so
      // a saturated server can still be cancelled into liveness).
      // Keep the frame bytes alive past the erase: `payload` views into
      // this string, and the Pending (and its buffer) dies with the
      // list node.
      const std::string frame_bytes = std::move(p.buffer);
      uint32_t len, crc;
      std::memcpy(&len, frame_bytes.data(), 4);
      const uint8_t type = static_cast<uint8_t>(frame_bytes[4]);
      std::memcpy(&crc, frame_bytes.data() + 5, 4);
      const std::string_view payload(
          frame_bytes.data() + wire::kFrameHeaderSize, len);
      const int fd = p.fd;
      it = handshaking_.erase(it);
      if (Crc32(payload) != crc) {
        close(fd);
        continue;
      }
      if (static_cast<wire::FrameType>(type) == wire::FrameType::kCancel) {
        Result<wire::CancelRequest> cancel = wire::ParseCancel(payload);
        if (cancel.ok()) CancelSession(cancel->session_id, cancel->cancel_key);
        close(fd);
        continue;
      }
      if (static_cast<wire::FrameType>(type) != wire::FrameType::kHello) {
        close(fd);
        continue;
      }
      Result<uint32_t> version = wire::ParseHello(payload);
      if (!version.ok() || *version != wire::kProtocolVersion) {
        RejectConnection(
            fd, Status::InvalidArgument(
                    "protocol version mismatch: server speaks " +
                    std::to_string(wire::kProtocolVersion)));
        continue;
      }
      if (active_.load(std::memory_order_relaxed) < options_.max_sessions) {
        Admit(fd);
      } else if (admission_queue_.size() <
                 static_cast<size_t>(options_.admission_queue_limit)) {
        Pending queued;
        queued.fd = fd;
        queued.hello_done = true;
        queued.deadline_ms = NowMs() + options_.admission_wait_ms;
        admission_queue_.push_back(std::move(queued));
      } else {
        RejectConnection(fd, Status::ResourceExhausted(
                                 "server at capacity (max_sessions=" +
                                 std::to_string(options_.max_sessions) +
                                 ", queue full)"));
      }
    }

    // New connections -> handshake tracking (first polled next round).
    if (fds[1].revents & POLLIN) {
      for (;;) {
        const int fd = accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) break;  // EAGAIN or transient — poll again
        const Status accepted = fault::MaybeFail("server.accept");
        if (!accepted.ok()) {
          // An accept-path fault costs exactly this connection; the
          // listener keeps serving.
          db_->server_stats().wire_faults.fetch_add(
              1, std::memory_order_relaxed);
          close(fd);
          continue;
        }
        const int flags = fcntl(fd, F_GETFL, 0);
        fcntl(fd, F_SETFL, flags | O_NONBLOCK);
        // Request/response with small frames: without TCP_NODELAY,
        // Nagle + delayed ACK costs ~40ms per statement round trip.
        const int one = 1;
        setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        Pending p;
        p.fd = fd;
        p.deadline_ms = NowMs() + options_.hello_timeout_ms;
        handshaking_.push_back(std::move(p));
      }
    }

    // Admit from the queue while slots are free; expire the rest. The
    // deadline path is the "never silently dropped" guarantee: a
    // refused client always gets an explicit error frame.
    while (!admission_queue_.empty() &&
           active_.load(std::memory_order_relaxed) < options_.max_sessions) {
      const int fd = admission_queue_.front().fd;
      admission_queue_.pop_front();
      Admit(fd);
    }
    for (auto it = admission_queue_.begin(); it != admission_queue_.end();) {
      if (NowMs() >= it->deadline_ms) {
        RejectConnection(
            it->fd, Status::ResourceExhausted(
                        "server at capacity: no session slot within " +
                        std::to_string(options_.admission_wait_ms) + "ms"));
        it = admission_queue_.erase(it);
      } else {
        ++it;
      }
    }

    ReapDoneSessions();
  }

  // Draining: refuse everything still at the door, close the listener.
  for (const Pending& p : handshaking_) close(p.fd);
  handshaking_.clear();
  for (const Pending& p : admission_queue_) {
    RejectConnection(p.fd,
                     Status::ResourceExhausted("server shutting down"));
  }
  admission_queue_.clear();
  close(listen_fd_);
  listen_fd_ = -1;
}

void Server::RejectConnection(int fd, const Status& reason) {
  db_->server_stats().sessions_rejected.fetch_add(1,
                                                  std::memory_order_relaxed);
  (void)wire::WriteFrame(fd, wire::FrameType::kError,
                         wire::BuildError(reason, false),
                         kAcceptWriteTimeoutMs,
                         &db_->server_stats().bytes_out);
  close(fd);
}

void Server::Admit(int fd) {
  auto session = std::make_unique<Session>();
  session->fd = fd;
  session->engine_session.statement_timeout_ms.store(
      options_.default_statement_timeout_ms, std::memory_order_relaxed);
  session->engine_session.memory_limit_kb.store(
      options_.default_memory_limit_kb, std::memory_order_relaxed);
  // splitmix64 over a random seed: unguessable enough for a loopback
  // cancel key without burning a random_device read per session.
  cancel_key_seed_ += 0x9E3779B97F4A7C15ull;
  uint64_t key = cancel_key_seed_;
  key = (key ^ (key >> 30)) * 0xBF58476D1CE4E5B9ull;
  key = (key ^ (key >> 27)) * 0x94D049BB133111EBull;
  session->cancel_key = key ^ (key >> 31);

  engine::ServerStatsCounters& stats = db_->server_stats();
  const int now_active = active_.fetch_add(1, std::memory_order_relaxed) + 1;
  stats.sessions_active.store(static_cast<uint64_t>(now_active),
                              std::memory_order_relaxed);
  uint64_t peak = stats.sessions_peak.load(std::memory_order_relaxed);
  while (static_cast<uint64_t>(now_active) > peak &&
         !stats.sessions_peak.compare_exchange_weak(
             peak, static_cast<uint64_t>(now_active),
             std::memory_order_relaxed)) {
  }
  stats.sessions_total.fetch_add(1, std::memory_order_relaxed);

  std::lock_guard<std::mutex> lock(sessions_mu_);
  session->id = next_session_id_++;
  Session* raw = session.get();
  raw->thread = std::thread(&Server::SessionLoop, this, raw);
  sessions_.push_back(std::move(session));
}

void Server::ReapDoneSessions() {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      it = sessions_.erase(it);
    } else {
      ++it;
    }
  }
}

// ---------------------------------------------------------------------------
// Shared/exclusive execution gate.
// ---------------------------------------------------------------------------

namespace {

uint64_t ElapsedMs(std::chrono::steady_clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

Status GateBusy(const char* mode, int wait_ms) {
  return Status::ResourceExhausted(
      std::string("server busy: ") + mode + " statement slot not free "
      "within " + std::to_string(wait_ms) + "ms (another session holds "
      "a conflicting lock or long statement)");
}

}  // namespace

Status Server::AcquireShared(Session* session, int wait_ms) {
  engine::ServerStatsCounters& stats = db_->server_stats();
  const auto start = std::chrono::steady_clock::now();
  std::unique_lock<std::mutex> lock(gate_mu_);
  // Writer preference: a waiting writer blocks new shared admissions,
  // so a read-heavy fleet cannot starve its writers.
  const bool got = gate_cv_.wait_for(
      lock, std::chrono::milliseconds(wait_ms),
      [this] { return writer_ == 0 && writers_waiting_ == 0; });
  if (!got) {
    stats.gate_busy_shared.fetch_add(1, std::memory_order_relaxed);
    return GateBusy("shared", wait_ms);
  }
  ++readers_;
  lock.unlock();
  stats.gate_shared.fetch_add(1, std::memory_order_relaxed);
  stats.gate_wait_shared_ms.fetch_add(ElapsedMs(start),
                                      std::memory_order_relaxed);
  session->gate_mode = GateMode::kShared;
  return Status::OK();
}

Status Server::AcquireExclusive(Session* session, int wait_ms) {
  engine::ServerStatsCounters& stats = db_->server_stats();
  const auto start = std::chrono::steady_clock::now();
  std::unique_lock<std::mutex> lock(gate_mu_);
  ++writers_waiting_;
  const bool got = gate_cv_.wait_for(
      lock, std::chrono::milliseconds(wait_ms),
      [this] { return writer_ == 0 && readers_ == 0; });
  --writers_waiting_;
  if (!got) {
    lock.unlock();
    // Our queued claim was holding new readers out; let them back in.
    gate_cv_.notify_all();
    stats.gate_busy_exclusive.fetch_add(1, std::memory_order_relaxed);
    return GateBusy("exclusive", wait_ms);
  }
  writer_ = session->id;
  lock.unlock();
  stats.gate_exclusive.fetch_add(1, std::memory_order_relaxed);
  stats.gate_wait_exclusive_ms.fetch_add(ElapsedMs(start),
                                         std::memory_order_relaxed);
  session->gate_mode = GateMode::kExclusive;
  return Status::OK();
}

Status Server::UpgradeToExclusive(Session* session, int wait_ms) {
  engine::ServerStatsCounters& stats = db_->server_stats();
  const auto start = std::chrono::steady_clock::now();
  std::unique_lock<std::mutex> lock(gate_mu_);
  if (upgrader_ != 0) {
    // Two shared transactions racing to upgrade would each wait for the
    // other's shared hold, which only their COMMIT/ROLLBACK releases —
    // a deadlock. Refuse the second immediately; its transaction stays
    // open and usable read-only.
    return Status::InvalidArgument(
        "upgrade would deadlock: another read transaction is already "
        "upgrading to write; COMMIT or ROLLBACK and retry");
  }
  upgrader_ = session->id;
  ++writers_waiting_;
  const bool got = gate_cv_.wait_for(
      lock, std::chrono::milliseconds(wait_ms),
      [this] { return writer_ == 0 && readers_ == 1; });
  --writers_waiting_;
  upgrader_ = 0;
  if (!got) {
    lock.unlock();
    gate_cv_.notify_all();
    stats.gate_busy_exclusive.fetch_add(1, std::memory_order_relaxed);
    return GateBusy("upgrade", wait_ms);
  }
  // The last shared hold standing is our own: trade it for exclusive.
  readers_ = 0;
  writer_ = session->id;
  lock.unlock();
  stats.gate_upgrades.fetch_add(1, std::memory_order_relaxed);
  stats.gate_exclusive.fetch_add(1, std::memory_order_relaxed);
  stats.gate_wait_exclusive_ms.fetch_add(ElapsedMs(start),
                                         std::memory_order_relaxed);
  session->gate_mode = GateMode::kExclusive;
  return Status::OK();
}

void Server::ReleaseGate(Session* session) {
  if (session->gate_mode == GateMode::kNone) return;
  {
    std::lock_guard<std::mutex> lock(gate_mu_);
    if (session->gate_mode == GateMode::kShared) {
      --readers_;
    } else if (writer_ == session->id) {
      writer_ = 0;
    }
  }
  session->gate_mode = GateMode::kNone;
  gate_cv_.notify_all();
}

void Server::CancelSession(uint64_t session_id, uint64_t cancel_key) {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  for (const auto& session : sessions_) {
    if (session->id == session_id &&
        !session->done.load(std::memory_order_acquire)) {
      if (session->cancel_key != cancel_key) return;
      db_->server_stats().cancels_received.fetch_add(
          1, std::memory_order_relaxed);
      // Per-session cancellation: only guards registered under the
      // target's SessionContext trip, so readers running concurrently
      // on other sessions are untouched. sessions_mu_ pins the Session
      // (and with it the SessionContext) alive across the call.
      db_->CancelSessionStatements(&session->engine_session);
      return;
    }
  }
}

// ---------------------------------------------------------------------------
// Session threads.
// ---------------------------------------------------------------------------

Status Server::WriteChecked(Session* session, wire::FrameType type,
                            std::string_view payload) {
  Status injected = fault::MaybeFail("server.write");
  if (!injected.ok()) {
    db_->server_stats().wire_faults.fetch_add(1, std::memory_order_relaxed);
    return injected;
  }
  Status written =
      wire::WriteFrame(session->fd, type, payload, options_.write_timeout_ms,
                       &db_->server_stats().bytes_out);
  if (!written.ok()) {
    db_->server_stats().wire_faults.fetch_add(1, std::memory_order_relaxed);
  }
  return written;
}

Result<wire::Frame> Server::ReadChecked(Session* session,
                                        int first_timeout_ms) {
  Status injected = fault::MaybeFail("server.read");
  if (!injected.ok()) {
    db_->server_stats().wire_faults.fetch_add(1, std::memory_order_relaxed);
    return injected;
  }
  Result<wire::Frame> frame =
      wire::ReadFrame(session->fd, first_timeout_ms, options_.write_timeout_ms,
                      &db_->server_stats().bytes_in);
  if (frame.ok()) {
    // A CRC-site fault models a torn frame that passed transport but
    // fails validation — indistinguishable from real bit rot.
    injected = fault::MaybeFail("server.frame_crc");
    if (!injected.ok()) {
      db_->server_stats().wire_faults.fetch_add(1, std::memory_order_relaxed);
      return Status::Corruption("frame crc mismatch (injected)");
    }
    return frame;
  }
  if (!wire::IsCleanEof(frame.status()) &&
      !wire::IsIdleTimeout(frame.status())) {
    db_->server_stats().wire_faults.fetch_add(1, std::memory_order_relaxed);
  }
  return frame;
}

void Server::SessionLoop(Session* session) {
  wire::HelloOk hello;
  hello.protocol_version = wire::kProtocolVersion;
  hello.session_id = session->id;
  hello.cancel_key = session->cancel_key;
  if (WriteChecked(session, wire::FrameType::kHelloOk,
                   wire::BuildHelloOk(hello))
          .ok()) {
    const int idle =
        options_.idle_timeout_ms > 0 ? options_.idle_timeout_ms : -1;
    for (;;) {
      Result<wire::Frame> frame = ReadChecked(session, idle);
      if (!frame.ok()) {
        if (wire::IsIdleTimeout(frame.status())) {
          db_->server_stats().idle_timeouts.fetch_add(
              1, std::memory_order_relaxed);
          session->aborted = true;
          // Best-effort goodbye so a live-but-quiet client learns why.
          (void)WriteChecked(
              session, wire::FrameType::kError,
              wire::BuildError(
                  Status::DeadlineExceeded("session idle timeout"),
                  db_->InTransaction(&session->engine_session)));
        } else if (!wire::IsCleanEof(frame.status())) {
          session->aborted = true;  // torn frame / injected fault / error
        }
        break;
      }
      bool keep = true;
      switch (frame->type) {
        case wire::FrameType::kPing:
          keep = WriteChecked(session, wire::FrameType::kPong, "").ok();
          break;
        case wire::FrameType::kGoodbye:
          keep = false;
          break;
        case wire::FrameType::kExec:
          keep = HandleExec(session, *frame);
          break;
        case wire::FrameType::kPrepare:
          keep = HandlePrepare(session, *frame);
          break;
        default:
          // Unknown frame type after a valid CRC: protocol confusion;
          // fail-stop rather than guess.
          session->aborted = true;
          (void)WriteChecked(
              session, wire::FrameType::kError,
              wire::BuildError(
                  Status::InvalidArgument("unexpected frame type"), false));
          keep = false;
          break;
      }
      if (!keep) break;
    }
  } else {
    session->aborted = true;
  }
  FinishSession(session);
}

bool Server::HandleExec(Session* session, const wire::Frame& frame) {
  Result<wire::ExecRequest> request =
      wire::ParseExec(frame.payload, db_->types());
  if (!request.ok()) {
    // A request that fails to decode is a torn frame, not a SQL error:
    // the stream can no longer be trusted, so fail-stop.
    db_->server_stats().wire_faults.fetch_add(1, std::memory_order_relaxed);
    session->aborted = true;
    return false;
  }
  engine::SessionContext* engine_session = &session->engine_session;
  // Parse (or fetch the cached plan) before taking the gate: the gate
  // decision needs the statement's class, and parsing serializes on
  // nothing — it must not cost other sessions their overlap.
  Result<std::shared_ptr<const engine::PreparedPlan>> plan =
      db_->Prepare(request->sql, engine_session);
  if (!plan.ok()) {
    db_->server_stats().statements_served.fetch_add(
        1, std::memory_order_relaxed);
    return SendError(session, plan.status(),
                     db_->InTransaction(engine_session));
  }
  const bool writer =
      options_.exclusive_gate ||
      engine::Database::Classify((*plan)->stmt(), request->sql) ==
          engine::StatementClass::kWriter;
  if (session->gate_mode == GateMode::kNone) {
    Status gate = writer ? AcquireExclusive(session, options_.lock_wait_ms)
                         : AcquireShared(session, options_.lock_wait_ms);
    if (!gate.ok()) return SendError(session, gate, false);
  } else if (writer && session->gate_mode == GateMode::kShared) {
    // First write inside a so-far-read-only transaction: upgrade in
    // place. On refusal (timeout, or the symmetric-upgrade deadlock)
    // the statement fails but the transaction survives, still readable.
    Status gate = UpgradeToExclusive(session, options_.lock_wait_ms);
    if (!gate.ok()) return SendError(session, gate, true);
  }
  session->executing.store(true, std::memory_order_release);
  Result<engine::ResultSet> result =
      db_->ExecutePrepared(**plan, &request->params, engine_session);
  session->executing.store(false, std::memory_order_release);
  db_->server_stats().statements_served.fetch_add(1,
                                                  std::memory_order_relaxed);
  const bool in_txn = db_->InTransaction(engine_session);
  // A transaction holds the gate across its statements (shared until
  // its first write); between transactions it drops per statement.
  if (!in_txn) ReleaseGate(session);
  // Stream after releasing the gate: the rows are materialized values,
  // so a slow client stalls only its own connection, never the engine.
  if (!result.ok()) return SendError(session, result.status(), in_txn);
  return StreamResult(session, *result, in_txn);
}

bool Server::HandlePrepare(Session* session, const wire::Frame& frame) {
  Result<std::string> sql = wire::ParsePrepare(frame.payload);
  if (!sql.ok()) {
    db_->server_stats().wire_faults.fetch_add(1, std::memory_order_relaxed);
    session->aborted = true;
    return false;
  }
  // Prepare is gate-free: parsing and plan-cache maintenance are
  // internally synchronized and touch no table data.
  Result<std::shared_ptr<const engine::PreparedPlan>> plan =
      db_->Prepare(*sql, &session->engine_session);
  if (!plan.ok()) {
    return SendError(session, plan.status(),
                     db_->InTransaction(&session->engine_session));
  }
  return WriteChecked(session, wire::FrameType::kPrepareOk, "").ok();
}

bool Server::SendError(Session* session, const Status& status, bool in_txn) {
  return WriteChecked(session, wire::FrameType::kError,
                      wire::BuildError(status, in_txn))
      .ok();
}

bool Server::StreamResult(Session* session, const engine::ResultSet& result,
                          bool in_txn) {
  if (!WriteChecked(session, wire::FrameType::kResultHeader,
                    wire::BuildResultHeader(result, in_txn, db_->types()))
           .ok()) {
    session->aborted = true;
    return false;
  }
  // Chunked rows: each frame's payload stays near max_rows_frame_bytes
  // and every write is deadline-bounded — the outbound buffer for one
  // statement is one chunk, regardless of result size.
  size_t i = 0;
  const size_t n = result.rows.size();
  std::string rows_bytes;
  while (i < n) {
    rows_bytes.clear();
    uint32_t count = 0;
    while (i < n && rows_bytes.size() < options_.max_rows_frame_bytes) {
      wire::AppendRowImage(result.rows[i], db_->types(), &rows_bytes);
      ++i;
      ++count;
    }
    std::string payload;
    payload.reserve(4 + rows_bytes.size());
    engine::wire::PutU32(count, &payload);
    payload.append(rows_bytes);
    if (!WriteChecked(session, wire::FrameType::kResultRows, payload).ok()) {
      session->aborted = true;
      return false;
    }
  }
  if (!WriteChecked(session, wire::FrameType::kResultDone, "").ok()) {
    session->aborted = true;
    return false;
  }
  return true;
}

void Server::FinishSession(Session* session) {
  if (db_->InTransaction(&session->engine_session)) {
    // The session died mid-transaction. Its thread is the transaction's
    // owner thread, so the rollback is the ordinary engine path.
    (void)db_->RollbackTransaction(&session->engine_session);
    session->aborted = true;
  }
  if (session->gate_mode != GateMode::kNone) {
    ReleaseGate(session);
    session->aborted = true;
  }
  {
    // Under sessions_mu_ so the drain path never races shutdown(2) on
    // a just-closed (possibly reused) descriptor.
    std::lock_guard<std::mutex> lock(sessions_mu_);
    close(session->fd);
    session->fd = -1;
  }
  engine::ServerStatsCounters& stats = db_->server_stats();
  if (session->aborted) {
    stats.session_aborts.fetch_add(1, std::memory_order_relaxed);
  }
  const int now_active = active_.fetch_sub(1, std::memory_order_relaxed) - 1;
  stats.sessions_active.store(static_cast<uint64_t>(now_active),
                              std::memory_order_relaxed);
  session->done.store(true, std::memory_order_release);
  WakeAcceptThread();
}

// ---------------------------------------------------------------------------
// Graceful drain.
// ---------------------------------------------------------------------------

void Server::Shutdown() {
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mu_);
  if (stopped_.load(std::memory_order_acquire)) return;

  draining_.store(true, std::memory_order_release);
  WakeAcceptThread();
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {  // accept thread never ran (failed Start)
    close(listen_fd_);
    listen_fd_ = -1;
  }

  // Phase 1: close the *read* side of every session. Idle sessions wake
  // from poll with EOF and exit (rolling back open transactions);
  // sessions mid-statement keep executing and can still deliver their
  // results — drain finishes in-flight work, it does not discard it.
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    for (const auto& session : sessions_) {
      if (!session->done.load(std::memory_order_acquire)) {
        shutdown(session->fd, SHUT_RD);
      }
    }
  }

  // Phase 2: wait out the grace period.
  const int64_t deadline = NowMs() + options_.drain_timeout_ms;
  auto all_done = [this] {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    for (const auto& session : sessions_) {
      if (!session->done.load(std::memory_order_acquire)) return false;
    }
    return true;
  };
  while (!all_done() && NowMs() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  // Phase 3: deadline-abort stragglers — cancel whatever statement is
  // running and break their sockets until every thread exits. The
  // ExecGuard makes cancellation prompt, so this terminates.
  while (!all_done()) {
    db_->CancelActiveStatements();
    {
      std::lock_guard<std::mutex> lock(sessions_mu_);
      for (const auto& session : sessions_) {
        if (!session->done.load(std::memory_order_acquire)) {
          shutdown(session->fd, SHUT_RDWR);
        }
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    for (const auto& session : sessions_) {
      if (session->thread.joinable()) session->thread.join();
    }
    sessions_.clear();
  }

  if (wake_pipe_[0] >= 0) close(wake_pipe_[0]);
  if (wake_pipe_[1] >= 0) close(wake_pipe_[1]);
  wake_pipe_[0] = wake_pipe_[1] = -1;

  // Final checkpoint: a drained durable directory should re-attach
  // strictly (no replay surprises). Failure is logged via the status
  // only — the drain itself must complete.
  if (db_->durable()) (void)db_->Checkpoint();
  db_->server_stats().drains.fetch_add(1, std::memory_order_relaxed);
  stopped_.store(true, std::memory_order_release);
}

}  // namespace tip::server
