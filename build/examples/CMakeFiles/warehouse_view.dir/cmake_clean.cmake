file(REMOVE_RECURSE
  "CMakeFiles/warehouse_view.dir/warehouse_view.cpp.o"
  "CMakeFiles/warehouse_view.dir/warehouse_view.cpp.o.d"
  "warehouse_view"
  "warehouse_view.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/warehouse_view.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
