# Empty dependencies file for warehouse_view.
# This may be replaced when dependencies are built.
