# Empty dependencies file for tipsql.
# This may be replaced when dependencies are built.
