file(REMOVE_RECURSE
  "CMakeFiles/tipsql.dir/tipsql.cpp.o"
  "CMakeFiles/tipsql.dir/tipsql.cpp.o.d"
  "tipsql"
  "tipsql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tipsql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
