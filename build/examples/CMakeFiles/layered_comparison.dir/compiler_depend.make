# Empty compiler generated dependencies file for layered_comparison.
# This may be replaced when dependencies are built.
