file(REMOVE_RECURSE
  "CMakeFiles/layered_comparison.dir/layered_comparison.cpp.o"
  "CMakeFiles/layered_comparison.dir/layered_comparison.cpp.o.d"
  "layered_comparison"
  "layered_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/layered_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
