# Empty compiler generated dependencies file for browser_demo.
# This may be replaced when dependencies are built.
