file(REMOVE_RECURSE
  "CMakeFiles/browser_demo.dir/browser_demo.cpp.o"
  "CMakeFiles/browser_demo.dir/browser_demo.cpp.o.d"
  "browser_demo"
  "browser_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/browser_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
