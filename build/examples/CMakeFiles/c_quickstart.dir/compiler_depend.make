# Empty compiler generated dependencies file for c_quickstart.
# This may be replaced when dependencies are built.
