# Empty compiler generated dependencies file for bitemporal_audit.
# This may be replaced when dependencies are built.
