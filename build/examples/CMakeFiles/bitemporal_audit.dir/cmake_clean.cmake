file(REMOVE_RECURSE
  "CMakeFiles/bitemporal_audit.dir/bitemporal_audit.cpp.o"
  "CMakeFiles/bitemporal_audit.dir/bitemporal_audit.cpp.o.d"
  "bitemporal_audit"
  "bitemporal_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitemporal_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
