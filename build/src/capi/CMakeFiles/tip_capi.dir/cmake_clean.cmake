file(REMOVE_RECURSE
  "CMakeFiles/tip_capi.dir/tip_c.cc.o"
  "CMakeFiles/tip_capi.dir/tip_c.cc.o.d"
  "libtip_capi.a"
  "libtip_capi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tip_capi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
