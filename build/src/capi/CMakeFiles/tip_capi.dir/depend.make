# Empty dependencies file for tip_capi.
# This may be replaced when dependencies are built.
