file(REMOVE_RECURSE
  "libtip_capi.a"
)
