file(REMOVE_RECURSE
  "libtip_layered.a"
)
