# Empty compiler generated dependencies file for tip_layered.
# This may be replaced when dependencies are built.
