file(REMOVE_RECURSE
  "CMakeFiles/tip_layered.dir/layered.cc.o"
  "CMakeFiles/tip_layered.dir/layered.cc.o.d"
  "libtip_layered.a"
  "libtip_layered.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tip_layered.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
