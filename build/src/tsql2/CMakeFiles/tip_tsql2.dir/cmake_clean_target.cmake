file(REMOVE_RECURSE
  "libtip_tsql2.a"
)
