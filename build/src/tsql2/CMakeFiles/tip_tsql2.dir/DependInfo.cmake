
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tsql2/translator.cc" "src/tsql2/CMakeFiles/tip_tsql2.dir/translator.cc.o" "gcc" "src/tsql2/CMakeFiles/tip_tsql2.dir/translator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/engine/CMakeFiles/tip_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tip_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tip_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
