file(REMOVE_RECURSE
  "CMakeFiles/tip_tsql2.dir/translator.cc.o"
  "CMakeFiles/tip_tsql2.dir/translator.cc.o.d"
  "libtip_tsql2.a"
  "libtip_tsql2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tip_tsql2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
