# Empty dependencies file for tip_tsql2.
# This may be replaced when dependencies are built.
