file(REMOVE_RECURSE
  "CMakeFiles/tip_workload.dir/medical.cc.o"
  "CMakeFiles/tip_workload.dir/medical.cc.o.d"
  "libtip_workload.a"
  "libtip_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tip_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
