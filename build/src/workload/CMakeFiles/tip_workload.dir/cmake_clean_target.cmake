file(REMOVE_RECURSE
  "libtip_workload.a"
)
