# Empty dependencies file for tip_workload.
# This may be replaced when dependencies are built.
