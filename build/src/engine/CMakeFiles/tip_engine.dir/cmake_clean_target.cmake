file(REMOVE_RECURSE
  "libtip_engine.a"
)
