# Empty dependencies file for tip_engine.
# This may be replaced when dependencies are built.
