
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/builtins.cc" "src/engine/CMakeFiles/tip_engine.dir/builtins.cc.o" "gcc" "src/engine/CMakeFiles/tip_engine.dir/builtins.cc.o.d"
  "/root/repo/src/engine/catalog/aggregate_registry.cc" "src/engine/CMakeFiles/tip_engine.dir/catalog/aggregate_registry.cc.o" "gcc" "src/engine/CMakeFiles/tip_engine.dir/catalog/aggregate_registry.cc.o.d"
  "/root/repo/src/engine/catalog/cast_registry.cc" "src/engine/CMakeFiles/tip_engine.dir/catalog/cast_registry.cc.o" "gcc" "src/engine/CMakeFiles/tip_engine.dir/catalog/cast_registry.cc.o.d"
  "/root/repo/src/engine/catalog/catalog.cc" "src/engine/CMakeFiles/tip_engine.dir/catalog/catalog.cc.o" "gcc" "src/engine/CMakeFiles/tip_engine.dir/catalog/catalog.cc.o.d"
  "/root/repo/src/engine/catalog/routine_registry.cc" "src/engine/CMakeFiles/tip_engine.dir/catalog/routine_registry.cc.o" "gcc" "src/engine/CMakeFiles/tip_engine.dir/catalog/routine_registry.cc.o.d"
  "/root/repo/src/engine/database.cc" "src/engine/CMakeFiles/tip_engine.dir/database.cc.o" "gcc" "src/engine/CMakeFiles/tip_engine.dir/database.cc.o.d"
  "/root/repo/src/engine/exec/bound_expr.cc" "src/engine/CMakeFiles/tip_engine.dir/exec/bound_expr.cc.o" "gcc" "src/engine/CMakeFiles/tip_engine.dir/exec/bound_expr.cc.o.d"
  "/root/repo/src/engine/exec/exec_node.cc" "src/engine/CMakeFiles/tip_engine.dir/exec/exec_node.cc.o" "gcc" "src/engine/CMakeFiles/tip_engine.dir/exec/exec_node.cc.o.d"
  "/root/repo/src/engine/exec/planner.cc" "src/engine/CMakeFiles/tip_engine.dir/exec/planner.cc.o" "gcc" "src/engine/CMakeFiles/tip_engine.dir/exec/planner.cc.o.d"
  "/root/repo/src/engine/exec/result_set.cc" "src/engine/CMakeFiles/tip_engine.dir/exec/result_set.cc.o" "gcc" "src/engine/CMakeFiles/tip_engine.dir/exec/result_set.cc.o.d"
  "/root/repo/src/engine/index/interval_index.cc" "src/engine/CMakeFiles/tip_engine.dir/index/interval_index.cc.o" "gcc" "src/engine/CMakeFiles/tip_engine.dir/index/interval_index.cc.o.d"
  "/root/repo/src/engine/sql/lexer.cc" "src/engine/CMakeFiles/tip_engine.dir/sql/lexer.cc.o" "gcc" "src/engine/CMakeFiles/tip_engine.dir/sql/lexer.cc.o.d"
  "/root/repo/src/engine/sql/parser.cc" "src/engine/CMakeFiles/tip_engine.dir/sql/parser.cc.o" "gcc" "src/engine/CMakeFiles/tip_engine.dir/sql/parser.cc.o.d"
  "/root/repo/src/engine/storage/heap_table.cc" "src/engine/CMakeFiles/tip_engine.dir/storage/heap_table.cc.o" "gcc" "src/engine/CMakeFiles/tip_engine.dir/storage/heap_table.cc.o.d"
  "/root/repo/src/engine/storage/snapshot.cc" "src/engine/CMakeFiles/tip_engine.dir/storage/snapshot.cc.o" "gcc" "src/engine/CMakeFiles/tip_engine.dir/storage/snapshot.cc.o.d"
  "/root/repo/src/engine/types/type.cc" "src/engine/CMakeFiles/tip_engine.dir/types/type.cc.o" "gcc" "src/engine/CMakeFiles/tip_engine.dir/types/type.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tip_core.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tip_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
