# Empty dependencies file for tip_ttime.
# This may be replaced when dependencies are built.
