file(REMOVE_RECURSE
  "libtip_ttime.a"
)
