file(REMOVE_RECURSE
  "CMakeFiles/tip_ttime.dir/tracked_table.cc.o"
  "CMakeFiles/tip_ttime.dir/tracked_table.cc.o.d"
  "libtip_ttime.a"
  "libtip_ttime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tip_ttime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
