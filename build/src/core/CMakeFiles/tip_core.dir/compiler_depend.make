# Empty compiler generated dependencies file for tip_core.
# This may be replaced when dependencies are built.
