file(REMOVE_RECURSE
  "libtip_core.a"
)
