file(REMOVE_RECURSE
  "CMakeFiles/tip_core.dir/chronon.cc.o"
  "CMakeFiles/tip_core.dir/chronon.cc.o.d"
  "CMakeFiles/tip_core.dir/element.cc.o"
  "CMakeFiles/tip_core.dir/element.cc.o.d"
  "CMakeFiles/tip_core.dir/element_reference.cc.o"
  "CMakeFiles/tip_core.dir/element_reference.cc.o.d"
  "CMakeFiles/tip_core.dir/instant.cc.o"
  "CMakeFiles/tip_core.dir/instant.cc.o.d"
  "CMakeFiles/tip_core.dir/period.cc.o"
  "CMakeFiles/tip_core.dir/period.cc.o.d"
  "CMakeFiles/tip_core.dir/span.cc.o"
  "CMakeFiles/tip_core.dir/span.cc.o.d"
  "CMakeFiles/tip_core.dir/tx_context.cc.o"
  "CMakeFiles/tip_core.dir/tx_context.cc.o.d"
  "libtip_core.a"
  "libtip_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tip_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
