
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/chronon.cc" "src/core/CMakeFiles/tip_core.dir/chronon.cc.o" "gcc" "src/core/CMakeFiles/tip_core.dir/chronon.cc.o.d"
  "/root/repo/src/core/element.cc" "src/core/CMakeFiles/tip_core.dir/element.cc.o" "gcc" "src/core/CMakeFiles/tip_core.dir/element.cc.o.d"
  "/root/repo/src/core/element_reference.cc" "src/core/CMakeFiles/tip_core.dir/element_reference.cc.o" "gcc" "src/core/CMakeFiles/tip_core.dir/element_reference.cc.o.d"
  "/root/repo/src/core/instant.cc" "src/core/CMakeFiles/tip_core.dir/instant.cc.o" "gcc" "src/core/CMakeFiles/tip_core.dir/instant.cc.o.d"
  "/root/repo/src/core/period.cc" "src/core/CMakeFiles/tip_core.dir/period.cc.o" "gcc" "src/core/CMakeFiles/tip_core.dir/period.cc.o.d"
  "/root/repo/src/core/span.cc" "src/core/CMakeFiles/tip_core.dir/span.cc.o" "gcc" "src/core/CMakeFiles/tip_core.dir/span.cc.o.d"
  "/root/repo/src/core/tx_context.cc" "src/core/CMakeFiles/tip_core.dir/tx_context.cc.o" "gcc" "src/core/CMakeFiles/tip_core.dir/tx_context.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tip_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
