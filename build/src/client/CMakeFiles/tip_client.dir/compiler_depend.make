# Empty compiler generated dependencies file for tip_client.
# This may be replaced when dependencies are built.
