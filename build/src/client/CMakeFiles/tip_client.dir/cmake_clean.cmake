file(REMOVE_RECURSE
  "CMakeFiles/tip_client.dir/connection.cc.o"
  "CMakeFiles/tip_client.dir/connection.cc.o.d"
  "libtip_client.a"
  "libtip_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tip_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
