file(REMOVE_RECURSE
  "libtip_client.a"
)
