# Empty dependencies file for tip_browser.
# This may be replaced when dependencies are built.
