file(REMOVE_RECURSE
  "libtip_browser.a"
)
