file(REMOVE_RECURSE
  "CMakeFiles/tip_browser.dir/timeline.cc.o"
  "CMakeFiles/tip_browser.dir/timeline.cc.o.d"
  "libtip_browser.a"
  "libtip_browser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tip_browser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
