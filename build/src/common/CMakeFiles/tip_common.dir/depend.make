# Empty dependencies file for tip_common.
# This may be replaced when dependencies are built.
