file(REMOVE_RECURSE
  "libtip_common.a"
)
