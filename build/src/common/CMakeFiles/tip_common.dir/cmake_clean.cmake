file(REMOVE_RECURSE
  "CMakeFiles/tip_common.dir/status.cc.o"
  "CMakeFiles/tip_common.dir/status.cc.o.d"
  "CMakeFiles/tip_common.dir/string_util.cc.o"
  "CMakeFiles/tip_common.dir/string_util.cc.o.d"
  "libtip_common.a"
  "libtip_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tip_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
