file(REMOVE_RECURSE
  "CMakeFiles/tip_datablade.dir/aggregates.cc.o"
  "CMakeFiles/tip_datablade.dir/aggregates.cc.o.d"
  "CMakeFiles/tip_datablade.dir/casts.cc.o"
  "CMakeFiles/tip_datablade.dir/casts.cc.o.d"
  "CMakeFiles/tip_datablade.dir/datablade.cc.o"
  "CMakeFiles/tip_datablade.dir/datablade.cc.o.d"
  "CMakeFiles/tip_datablade.dir/routines.cc.o"
  "CMakeFiles/tip_datablade.dir/routines.cc.o.d"
  "CMakeFiles/tip_datablade.dir/types.cc.o"
  "CMakeFiles/tip_datablade.dir/types.cc.o.d"
  "libtip_datablade.a"
  "libtip_datablade.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tip_datablade.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
