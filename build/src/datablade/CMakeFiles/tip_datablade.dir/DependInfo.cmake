
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datablade/aggregates.cc" "src/datablade/CMakeFiles/tip_datablade.dir/aggregates.cc.o" "gcc" "src/datablade/CMakeFiles/tip_datablade.dir/aggregates.cc.o.d"
  "/root/repo/src/datablade/casts.cc" "src/datablade/CMakeFiles/tip_datablade.dir/casts.cc.o" "gcc" "src/datablade/CMakeFiles/tip_datablade.dir/casts.cc.o.d"
  "/root/repo/src/datablade/datablade.cc" "src/datablade/CMakeFiles/tip_datablade.dir/datablade.cc.o" "gcc" "src/datablade/CMakeFiles/tip_datablade.dir/datablade.cc.o.d"
  "/root/repo/src/datablade/routines.cc" "src/datablade/CMakeFiles/tip_datablade.dir/routines.cc.o" "gcc" "src/datablade/CMakeFiles/tip_datablade.dir/routines.cc.o.d"
  "/root/repo/src/datablade/types.cc" "src/datablade/CMakeFiles/tip_datablade.dir/types.cc.o" "gcc" "src/datablade/CMakeFiles/tip_datablade.dir/types.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/engine/CMakeFiles/tip_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tip_core.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tip_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
