file(REMOVE_RECURSE
  "libtip_datablade.a"
)
