# Empty compiler generated dependencies file for tip_datablade.
# This may be replaced when dependencies are built.
