file(REMOVE_RECURSE
  "CMakeFiles/bench_period_index.dir/bench_period_index.cc.o"
  "CMakeFiles/bench_period_index.dir/bench_period_index.cc.o.d"
  "bench_period_index"
  "bench_period_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_period_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
