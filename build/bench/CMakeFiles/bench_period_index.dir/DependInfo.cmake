
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_period_index.cc" "bench/CMakeFiles/bench_period_index.dir/bench_period_index.cc.o" "gcc" "bench/CMakeFiles/bench_period_index.dir/bench_period_index.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/client/CMakeFiles/tip_client.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/tip_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tip_common.dir/DependInfo.cmake"
  "/root/repo/build/src/datablade/CMakeFiles/tip_datablade.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/tip_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tip_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
