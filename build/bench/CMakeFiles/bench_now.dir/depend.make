# Empty dependencies file for bench_now.
# This may be replaced when dependencies are built.
