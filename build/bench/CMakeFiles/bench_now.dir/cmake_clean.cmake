file(REMOVE_RECURSE
  "CMakeFiles/bench_now.dir/bench_now.cc.o"
  "CMakeFiles/bench_now.dir/bench_now.cc.o.d"
  "bench_now"
  "bench_now.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_now.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
