# Empty compiler generated dependencies file for bench_parse_format.
# This may be replaced when dependencies are built.
