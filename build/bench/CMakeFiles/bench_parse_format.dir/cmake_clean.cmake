file(REMOVE_RECURSE
  "CMakeFiles/bench_parse_format.dir/bench_parse_format.cc.o"
  "CMakeFiles/bench_parse_format.dir/bench_parse_format.cc.o.d"
  "bench_parse_format"
  "bench_parse_format.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_parse_format.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
