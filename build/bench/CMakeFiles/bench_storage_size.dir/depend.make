# Empty dependencies file for bench_storage_size.
# This may be replaced when dependencies are built.
