# Empty compiler generated dependencies file for bench_temporal_join.
# This may be replaced when dependencies are built.
