file(REMOVE_RECURSE
  "CMakeFiles/bench_temporal_join.dir/bench_temporal_join.cc.o"
  "CMakeFiles/bench_temporal_join.dir/bench_temporal_join.cc.o.d"
  "bench_temporal_join"
  "bench_temporal_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_temporal_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
