# Empty dependencies file for bench_element_ops.
# This may be replaced when dependencies are built.
