file(REMOVE_RECURSE
  "CMakeFiles/bench_element_ops.dir/bench_element_ops.cc.o"
  "CMakeFiles/bench_element_ops.dir/bench_element_ops.cc.o.d"
  "bench_element_ops"
  "bench_element_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_element_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
