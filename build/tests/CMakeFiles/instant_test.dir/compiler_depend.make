# Empty compiler generated dependencies file for instant_test.
# This may be replaced when dependencies are built.
