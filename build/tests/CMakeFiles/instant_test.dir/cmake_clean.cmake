file(REMOVE_RECURSE
  "CMakeFiles/instant_test.dir/core/instant_test.cc.o"
  "CMakeFiles/instant_test.dir/core/instant_test.cc.o.d"
  "instant_test"
  "instant_test.pdb"
  "instant_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/instant_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
