# Empty dependencies file for type_registry_test.
# This may be replaced when dependencies are built.
