file(REMOVE_RECURSE
  "CMakeFiles/type_registry_test.dir/engine/type_registry_test.cc.o"
  "CMakeFiles/type_registry_test.dir/engine/type_registry_test.cc.o.d"
  "type_registry_test"
  "type_registry_test.pdb"
  "type_registry_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/type_registry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
