# Empty dependencies file for tracked_table_test.
# This may be replaced when dependencies are built.
