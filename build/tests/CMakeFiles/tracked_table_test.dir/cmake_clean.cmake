file(REMOVE_RECURSE
  "CMakeFiles/tracked_table_test.dir/ttime/tracked_table_test.cc.o"
  "CMakeFiles/tracked_table_test.dir/ttime/tracked_table_test.cc.o.d"
  "tracked_table_test"
  "tracked_table_test.pdb"
  "tracked_table_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tracked_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
