# Empty dependencies file for tsql2_translator_test.
# This may be replaced when dependencies are built.
