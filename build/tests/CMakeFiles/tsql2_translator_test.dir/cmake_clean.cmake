file(REMOVE_RECURSE
  "CMakeFiles/tsql2_translator_test.dir/tsql2/translator_test.cc.o"
  "CMakeFiles/tsql2_translator_test.dir/tsql2/translator_test.cc.o.d"
  "tsql2_translator_test"
  "tsql2_translator_test.pdb"
  "tsql2_translator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsql2_translator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
