file(REMOVE_RECURSE
  "CMakeFiles/chronon_test.dir/core/chronon_test.cc.o"
  "CMakeFiles/chronon_test.dir/core/chronon_test.cc.o.d"
  "chronon_test"
  "chronon_test.pdb"
  "chronon_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chronon_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
