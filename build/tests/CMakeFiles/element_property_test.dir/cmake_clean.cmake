file(REMOVE_RECURSE
  "CMakeFiles/element_property_test.dir/core/element_property_test.cc.o"
  "CMakeFiles/element_property_test.dir/core/element_property_test.cc.o.d"
  "element_property_test"
  "element_property_test.pdb"
  "element_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/element_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
