# Empty compiler generated dependencies file for element_property_test.
# This may be replaced when dependencies are built.
