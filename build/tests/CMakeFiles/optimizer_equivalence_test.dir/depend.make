# Empty dependencies file for optimizer_equivalence_test.
# This may be replaced when dependencies are built.
