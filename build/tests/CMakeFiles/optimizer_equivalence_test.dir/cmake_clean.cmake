file(REMOVE_RECURSE
  "CMakeFiles/optimizer_equivalence_test.dir/engine/optimizer_equivalence_test.cc.o"
  "CMakeFiles/optimizer_equivalence_test.dir/engine/optimizer_equivalence_test.cc.o.d"
  "optimizer_equivalence_test"
  "optimizer_equivalence_test.pdb"
  "optimizer_equivalence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimizer_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
