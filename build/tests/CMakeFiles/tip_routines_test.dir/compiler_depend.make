# Empty compiler generated dependencies file for tip_routines_test.
# This may be replaced when dependencies are built.
