file(REMOVE_RECURSE
  "CMakeFiles/tip_routines_test.dir/datablade/routines_test.cc.o"
  "CMakeFiles/tip_routines_test.dir/datablade/routines_test.cc.o.d"
  "tip_routines_test"
  "tip_routines_test.pdb"
  "tip_routines_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tip_routines_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
