# Empty dependencies file for datablade_test.
# This may be replaced when dependencies are built.
