file(REMOVE_RECURSE
  "CMakeFiles/datablade_test.dir/datablade/datablade_test.cc.o"
  "CMakeFiles/datablade_test.dir/datablade/datablade_test.cc.o.d"
  "datablade_test"
  "datablade_test.pdb"
  "datablade_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datablade_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
