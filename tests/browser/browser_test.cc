#include "browser/timeline.h"

#include <gtest/gtest.h>

namespace tip::browser {
namespace {

/// The TIP Browser's information display (Figure 2): window,
/// highlighting, timeline segments, slider, NOW override.
class BrowserTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Result<std::unique_ptr<client::Connection>> conn =
        client::Connection::Open();
    ASSERT_TRUE(conn.ok());
    conn_ = std::move(*conn);
    conn_->SetNow(*Chronon::Parse("1999-11-15"));
    Must("CREATE TABLE p (patient CHAR(12), drug CHAR(12), "
         "valid Element)");
    Must("INSERT INTO p VALUES "
         "('showbiz', 'diabeta', '{[1999-10-01, NOW]}'), "
         "('showbiz', 'aspirin', '{[1999-09-15, 1999-10-20]}'), "
         "('janedoe', 'tylenol', '{[1999-01-10, 1999-02-10]}')");
  }

  client::ResultSet Must(std::string_view sql) {
    Result<client::ResultSet> r = conn_->Execute(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    return r.ok() ? std::move(*r)
                  : client::ResultSet(engine::ResultSet{},
                                      conn_->tip_types(),
                                      &conn_->database().types());
  }

  TimelineView MustView(std::string_view column = "valid") {
    client::ResultSet result = Must("SELECT * FROM p");
    Result<TimelineView> view = TimelineView::Create(
        result, column, conn_->database().CurrentTx());
    EXPECT_TRUE(view.ok()) << view.status().ToString();
    return std::move(*view);
  }

  TimeWindow Window(const char* start, const char* end) {
    return TimeWindow{*Chronon::Parse(start), *Chronon::Parse(end)};
  }

  std::unique_ptr<client::Connection> conn_;
};

TEST_F(BrowserTest, CreateGroundsValidity) {
  TimelineView view = MustView();
  ASSERT_EQ(view.rows().size(), 3u);
  // The NOW endpoint grounds under the connection's override.
  EXPECT_EQ(view.rows()[0].valid.Extent().end().ToString(), "1999-11-15");
  // Non-temporal columns become the label fields.
  ASSERT_EQ(view.headers().size(), 2u);
  EXPECT_EQ(view.rows()[0].fields[1], "diabeta");
}

TEST_F(BrowserTest, CreateRejectsBadColumns) {
  client::ResultSet result = Must("SELECT * FROM p");
  TxContext ctx = conn_->database().CurrentTx();
  EXPECT_FALSE(TimelineView::Create(result, "nosuch", ctx).ok());
  EXPECT_EQ(TimelineView::Create(result, "patient", ctx).status().code(),
            StatusCode::kTypeError);
}

TEST_F(BrowserTest, BrowseByAnyTemporalType) {
  // "The user may choose to browse ... according to any attribute of
  // type Chronon, Instant, Period, or Element."
  Must("CREATE TABLE mixed (c Chronon, i Instant, pd Period, e Element)");
  Must("INSERT INTO mixed VALUES ('1999-05-01', 'NOW-5', "
       "'[1999-04-01, NOW]', '{[1999-03-01, 1999-03-10]}')");
  client::ResultSet result = Must("SELECT * FROM mixed");
  TxContext ctx = conn_->database().CurrentTx();
  for (const char* col : {"c", "i", "pd", "e"}) {
    Result<TimelineView> view = TimelineView::Create(result, col, ctx);
    ASSERT_TRUE(view.ok()) << col;
    EXPECT_FALSE(view->rows()[0].valid.IsEmpty()) << col;
  }
}

TEST_F(BrowserTest, FullExtentSpansAllRows) {
  TimelineView view = MustView();
  GroundedPeriod extent = *view.FullExtent();
  EXPECT_EQ(extent.start().ToString(), "1999-01-10");
  EXPECT_EQ(extent.end().ToString(), "1999-11-15");
}

TEST_F(BrowserTest, HighlightMaskMatchesWindow) {
  TimelineView view = MustView();
  // Window over late September: both showbiz prescriptions, not jane's.
  std::vector<bool> mask =
      view.HighlightMask(Window("1999-09-20", "1999-10-05"));
  EXPECT_EQ(mask, (std::vector<bool>{true, true, false}));
  // January window: only jane.
  mask = view.HighlightMask(Window("1999-01-01", "1999-01-31"));
  EXPECT_EQ(mask, (std::vector<bool>{false, false, true}));
  // Gap window (nothing valid in early September before the 15th).
  mask = view.HighlightMask(Window("1999-09-01", "1999-09-05"));
  EXPECT_EQ(mask, (std::vector<bool>{false, false, false}));
}

TEST_F(BrowserTest, SliderPlacesWindowAlongExtent) {
  TimelineView view = MustView();
  Span month = *Span::FromDays(30);
  TimeWindow left = *view.WindowAt(0.0, month);
  EXPECT_EQ(left.start.ToString(), "1999-01-10");
  TimeWindow right = *view.WindowAt(1.0, month);
  EXPECT_EQ(right.end.ToString(), "1999-11-15");
  TimeWindow middle = *view.WindowAt(0.5, month);
  EXPECT_LT(left.start, middle.start);
  EXPECT_LT(middle.start, right.start);
  EXPECT_FALSE(view.WindowAt(1.5, month).ok());
  EXPECT_FALSE(view.WindowAt(0.5, Span::Zero()).ok());
}

TEST_F(BrowserTest, RenderDrawsSegmentsAndHighlights) {
  TimelineView view = MustView();
  std::string out = view.Render(Window("1999-09-20", "1999-10-05"), 40);
  // Highlighted rows carry '*'; jane's row does not.
  EXPECT_NE(out.find(" * showbiz"), std::string::npos);
  EXPECT_NE(out.find("   janedoe"), std::string::npos);
  // Segments drawn with '='; jane's strip is empty in this window.
  std::vector<std::string> lines;
  size_t pos = 0;
  while (pos < out.size()) {
    size_t nl = out.find('\n', pos);
    lines.push_back(out.substr(pos, nl - pos));
    pos = nl + 1;
  }
  ASSERT_GE(lines.size(), 5u);
  EXPECT_NE(lines[1].find('='), std::string::npos);  // diabeta row
  EXPECT_NE(lines[2].find('='), std::string::npos);  // aspirin row
  EXPECT_EQ(lines[3].find('='), std::string::npos);  // jane's row
  // Footer shows the window endpoints.
  EXPECT_NE(out.find("1999-09-20"), std::string::npos);
  EXPECT_NE(out.find("1999-10-05"), std::string::npos);
}

TEST_F(BrowserTest, WhatIfNowOverrideChangesTheView) {
  // Browsing under an overridden NOW changes the grounded validity of
  // NOW-relative tuples (Section 4's what-if analysis).
  conn_->SetNow(*Chronon::Parse("1999-10-10"));
  TimelineView earlier = MustView();
  EXPECT_EQ(earlier.rows()[0].valid.Extent().end().ToString(),
            "1999-10-10");
  // Move NOW before the diabeta prescription starts: its validity
  // becomes empty and it is never highlighted.
  conn_->SetNow(*Chronon::Parse("1999-09-01"));
  TimelineView before = MustView();
  EXPECT_TRUE(before.rows()[0].valid.IsEmpty());
  std::vector<bool> mask =
      before.HighlightMask(Window("1999-01-01", "1999-12-31"));
  EXPECT_EQ(mask, (std::vector<bool>{false, true, true}));
}

TEST_F(BrowserTest, DensityCountsTuplesPerBucket) {
  TimelineView view = MustView();
  // Four equal buckets over September..October 1999.
  TimeWindow window = Window("1999-09-01", "1999-10-31 23:59:59");
  std::vector<size_t> density = view.Density(window, 4);
  ASSERT_EQ(density.size(), 4u);
  // Buckets are ~15.25 days. Tylenol ended in February and never
  // appears; aspirin runs Sep 15 - Oct 20; diabeta starts Oct 1, which
  // lands at the very end of bucket 1.
  EXPECT_EQ(density[0], 1u);  // early Sep: aspirin only
  EXPECT_EQ(density[1], 2u);  // aspirin + diabeta's first day
  EXPECT_EQ(density[2], 2u);  // October: both
  EXPECT_EQ(density[3], 2u);  // late Oct: aspirin (to 10-20) + diabeta
  std::string strip = view.RenderDensity(window, 4);
  EXPECT_EQ(strip, "|1222|");
}

TEST_F(BrowserTest, DensityEmptyWindowIsBlank) {
  TimelineView view = MustView();
  std::string strip =
      view.RenderDensity(Window("1998-01-01", "1998-02-01"), 6);
  EXPECT_EQ(strip, "|      |");
}

TEST_F(BrowserTest, NullValidityRowsNeverHighlight) {
  Must("INSERT INTO p VALUES ('ghost', 'nothing', NULL)");
  TimelineView view = MustView();
  ASSERT_EQ(view.rows().size(), 4u);
  EXPECT_TRUE(view.rows()[3].valid.IsEmpty());
  std::vector<bool> mask =
      view.HighlightMask(Window("1999-01-01", "1999-12-31"));
  EXPECT_FALSE(mask[3]);
}

}  // namespace
}  // namespace tip::browser
