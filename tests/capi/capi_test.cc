#include "capi/tip_c.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "datablade/datablade.h"
#include "engine/database.h"
#include "server/server.h"

namespace {

/// The C client library, exercised from gtest. Handles must behave like
/// C handles: NULL-safe, owning their strings, no exceptions.
class CApiTest : public ::testing::Test {
 protected:
  void SetUp() override {
    conn_ = tip_open();
    ASSERT_NE(conn_, nullptr);
    ASSERT_EQ(tip_set_now(conn_, "1999-11-15"), 0);
    Must("CREATE TABLE t (name CHAR(8), n INT, x DOUBLE, v Element)");
    Must("INSERT INTO t VALUES ('a', 1, 0.5, '{[1999-01-01, NOW]}'), "
         "('b', NULL, NULL, NULL)");
  }

  void TearDown() override { tip_close(conn_); }

  void Must(const char* sql) {
    ASSERT_EQ(tip_exec(conn_, sql, nullptr), 0) << tip_last_error(conn_);
  }

  tip_connection* conn_ = nullptr;
};

TEST_F(CApiTest, QueryAndMetadata) {
  tip_result* result = nullptr;
  ASSERT_EQ(tip_exec(conn_, "SELECT name, n, x, v FROM t ORDER BY name",
                     &result),
            0);
  ASSERT_NE(result, nullptr);
  EXPECT_EQ(tip_result_row_count(result), 2u);
  EXPECT_EQ(tip_result_column_count(result), 4u);
  EXPECT_STREQ(tip_result_column_name(result, 0), "name");
  EXPECT_STREQ(tip_result_column_type(result, 1), "int");
  EXPECT_STREQ(tip_result_column_type(result, 3), "element");
  EXPECT_STREQ(tip_result_text(result, 0, 0), "a");
  EXPECT_EQ(tip_result_int64(result, 0, 1), 1);
  EXPECT_DOUBLE_EQ(tip_result_double(result, 0, 2), 0.5);
  EXPECT_STREQ(tip_result_text(result, 0, 3), "{[1999-01-01, NOW]}");
  EXPECT_EQ(tip_result_is_null(result, 1, 1), 1);
  EXPECT_EQ(tip_result_is_null(result, 0, 1), 0);
  // Cached text pointers stay stable across repeated calls.
  const char* first = tip_result_text(result, 0, 3);
  EXPECT_EQ(first, tip_result_text(result, 0, 3));
  tip_result_free(result);
}

TEST_F(CApiTest, ErrorsAreReported) {
  tip_result* result = reinterpret_cast<tip_result*>(0x1);
  EXPECT_EQ(tip_exec(conn_, "SELECT nosuch FROM t", &result), -1);
  EXPECT_EQ(result, nullptr);  // out param reset on failure
  EXPECT_NE(std::string(tip_last_error(conn_)).find("nosuch"),
            std::string::npos);
  // A successful call clears the error.
  Must("SELECT 1");
  EXPECT_STREQ(tip_last_error(conn_), "");
  EXPECT_EQ(tip_set_now(conn_, "not a date"), -1);
  EXPECT_NE(std::string(tip_last_error(conn_)).find("ParseError"),
            std::string::npos);
}

TEST_F(CApiTest, NowOverrideChangesAnswers) {
  tip_result* result = nullptr;
  ASSERT_EQ(tip_exec(conn_,
                     "SELECT length(v) / '1'::Span FROM t "
                     "WHERE name = 'a'",
                     &result),
            0);
  const long long days_at_nov = tip_result_int64(result, 0, 0);
  tip_result_free(result);
  ASSERT_EQ(tip_set_now(conn_, "1999-12-15"), 0);
  ASSERT_EQ(tip_exec(conn_,
                     "SELECT length(v) / '1'::Span FROM t "
                     "WHERE name = 'a'",
                     &result),
            0);
  EXPECT_EQ(tip_result_int64(result, 0, 0) - days_at_nov, 30);
  tip_result_free(result);
  EXPECT_EQ(tip_clear_now(conn_), 0);
}

TEST_F(CApiTest, DmlReportsAffectedRows) {
  tip_result* result = nullptr;
  ASSERT_EQ(tip_exec(conn_, "UPDATE t SET n = 9", &result), 0);
  EXPECT_EQ(tip_result_affected_rows(result), 2);
  EXPECT_EQ(tip_result_column_count(result), 0u);
  tip_result_free(result);
}

TEST_F(CApiTest, TransactionsCommitAndRollBack) {
  EXPECT_EQ(tip_in_transaction(conn_), 0);
  ASSERT_EQ(tip_begin(conn_), 0) << tip_last_error(conn_);
  EXPECT_EQ(tip_in_transaction(conn_), 1);
  EXPECT_EQ(tip_begin(conn_), -1);  // no nesting
  EXPECT_NE(std::string(tip_last_error(conn_)).find("transaction"),
            std::string::npos);
  Must("INSERT INTO t VALUES ('c', 3, 1.5, NULL)");
  ASSERT_EQ(tip_rollback(conn_), 0) << tip_last_error(conn_);
  EXPECT_EQ(tip_in_transaction(conn_), 0);

  tip_result* result = nullptr;
  ASSERT_EQ(tip_exec(conn_, "SELECT count(*) FROM t", &result), 0);
  EXPECT_EQ(tip_result_int64(result, 0, 0), 2);  // insert rolled back
  tip_result_free(result);

  ASSERT_EQ(tip_begin(conn_), 0);
  Must("INSERT INTO t VALUES ('c', 3, 1.5, NULL)");
  ASSERT_EQ(tip_commit(conn_), 0) << tip_last_error(conn_);
  EXPECT_EQ(tip_in_transaction(conn_), 0);
  ASSERT_EQ(tip_exec(conn_, "SELECT count(*) FROM t", &result), 0);
  EXPECT_EQ(tip_result_int64(result, 0, 0), 3);
  tip_result_free(result);

  // Boundary calls without an open transaction are errors, and the
  // handles stay NULL-safe like the rest of the API.
  EXPECT_EQ(tip_commit(conn_), -1);
  EXPECT_EQ(tip_rollback(conn_), -1);
  EXPECT_EQ(tip_begin(nullptr), -1);
  EXPECT_EQ(tip_commit(nullptr), -1);
  EXPECT_EQ(tip_rollback(nullptr), -1);
  EXPECT_EQ(tip_in_transaction(nullptr), -1);
}

TEST_F(CApiTest, PreparedStatementsBindAndExecute) {
  tip_stmt* stmt = nullptr;
  ASSERT_EQ(tip_prepare(conn_, "SELECT n, x FROM t WHERE name = :who",
                        &stmt),
            0)
      << tip_last_error(conn_);
  ASSERT_NE(stmt, nullptr);

  ASSERT_EQ(tip_stmt_bind_text(stmt, "who", "a"), 0);
  tip_result* result = nullptr;
  ASSERT_EQ(tip_stmt_execute(stmt, &result), 0) << tip_last_error(conn_);
  ASSERT_EQ(tip_result_row_count(result), 1u);
  EXPECT_EQ(tip_result_int64(result, 0, 0), 1);
  EXPECT_DOUBLE_EQ(tip_result_double(result, 0, 1), 0.5);
  tip_result_free(result);

  // Rebind and re-execute the same handle.
  ASSERT_EQ(tip_stmt_bind_text(stmt, "who", "b"), 0);
  ASSERT_EQ(tip_stmt_execute(stmt, &result), 0);
  ASSERT_EQ(tip_result_row_count(result), 1u);
  EXPECT_EQ(tip_result_is_null(result, 0, 0), 1);
  tip_result_free(result);
  tip_stmt_close(stmt);

  // Numeric and NULL bindings through a computed projection.
  ASSERT_EQ(tip_prepare(conn_, "SELECT :i, :d, :nul", &stmt), 0);
  ASSERT_EQ(tip_stmt_bind_int(stmt, "i", 42), 0);
  ASSERT_EQ(tip_stmt_bind_double(stmt, "d", 2.5), 0);
  ASSERT_EQ(tip_stmt_bind_null(stmt, "nul"), 0);
  ASSERT_EQ(tip_stmt_execute(stmt, &result), 0) << tip_last_error(conn_);
  EXPECT_EQ(tip_result_int64(result, 0, 0), 42);
  EXPECT_DOUBLE_EQ(tip_result_double(result, 0, 1), 2.5);
  EXPECT_EQ(tip_result_is_null(result, 0, 2), 1);
  tip_result_free(result);

  // An unbound parameter fails the execution, not the process.
  ASSERT_EQ(tip_stmt_clear_bindings(stmt), 0);
  EXPECT_EQ(tip_stmt_execute(stmt, &result), -1);
  EXPECT_EQ(result, nullptr);
  EXPECT_NE(std::string(tip_last_error(conn_)).find(":"),
            std::string::npos);
  tip_stmt_close(stmt);
}

TEST_F(CApiTest, PrepareReportsSyntaxErrorsEagerly) {
  tip_stmt* stmt = reinterpret_cast<tip_stmt*>(0x1);
  EXPECT_EQ(tip_prepare(conn_, "SELEC 1", &stmt), -1);
  EXPECT_EQ(stmt, nullptr);  // out param reset on failure
  EXPECT_NE(std::string(tip_last_error(conn_)).find("ParseError"),
            std::string::npos);

  // NULL safety, like the rest of the API.
  EXPECT_EQ(tip_prepare(nullptr, "SELECT 1", &stmt), -1);
  EXPECT_EQ(tip_prepare(conn_, nullptr, &stmt), -1);
  EXPECT_EQ(tip_prepare(conn_, "SELECT 1", nullptr), -1);
  EXPECT_EQ(tip_stmt_bind_int(nullptr, "x", 1), -1);
  EXPECT_EQ(tip_stmt_execute(nullptr, nullptr), -1);
  tip_stmt_close(nullptr);  // no-op, like free()
}

TEST_F(CApiTest, NullSafety) {
  EXPECT_EQ(tip_exec(nullptr, "SELECT 1", nullptr), -1);
  EXPECT_EQ(tip_exec(conn_, nullptr, nullptr), -1);
  EXPECT_EQ(tip_set_now(nullptr, "1999-01-01"), -1);
  EXPECT_STREQ(tip_last_error(nullptr), "null connection");
  EXPECT_EQ(tip_result_row_count(nullptr), 0u);
  EXPECT_EQ(tip_result_text(nullptr, 0, 0), nullptr);
  EXPECT_EQ(tip_result_is_null(nullptr, 0, 0), 1);
  tip_result_free(nullptr);  // no-op, like free()

  tip_result* result = nullptr;
  ASSERT_EQ(tip_exec(conn_, "SELECT 1", &result), 0);
  EXPECT_EQ(tip_result_text(result, 5, 0), nullptr);  // out of range
  EXPECT_EQ(tip_result_column_name(result, 9), nullptr);
  EXPECT_EQ(tip_result_int64(result, 0, 9), 0);
  tip_result_free(result);
}

/// tip_connect: the same C surface, served by a real tipd over
/// loopback. One in-process server per fixture; everything below must
/// behave exactly like the embedded handles above.
class CApiRemoteTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<tip::engine::Database>();
    ASSERT_TRUE(tip::datablade::Install(db_.get()).ok());
    tip::Result<std::unique_ptr<tip::server::Server>> started =
        tip::server::Server::Start(db_.get(), tip::server::ServerOptions());
    ASSERT_TRUE(started.ok()) << started.status().ToString();
    server_ = std::move(*started);
    conn_ = tip_connect("127.0.0.1", server_->port());
    ASSERT_NE(conn_, nullptr);
  }

  void TearDown() override {
    tip_close(conn_);
    if (server_ != nullptr) server_->Shutdown();
  }

  void Must(const char* sql) {
    ASSERT_EQ(tip_exec(conn_, sql, nullptr), 0) << tip_last_error(conn_);
  }

  std::unique_ptr<tip::engine::Database> db_;
  std::unique_ptr<tip::server::Server> server_;
  tip_connection* conn_ = nullptr;
};

TEST_F(CApiRemoteTest, ConnectExecAndMetadataOverTheWire) {
  Must("CREATE TABLE t (name CHAR(8), n INT, v Element)");
  Must("INSERT INTO t VALUES ('a', 1, '{[1999-01-01, 1999-06-01]}'), "
       "('b', NULL, NULL)");

  tip_result* result = nullptr;
  ASSERT_EQ(tip_exec(conn_, "SELECT name, n, v FROM t ORDER BY name",
                     &result),
            0)
      << tip_last_error(conn_);
  ASSERT_NE(result, nullptr);
  EXPECT_EQ(tip_result_row_count(result), 2u);
  EXPECT_EQ(tip_result_column_count(result), 3u);
  EXPECT_STREQ(tip_result_column_name(result, 0), "name");
  EXPECT_STREQ(tip_result_column_type(result, 1), "int");
  EXPECT_STREQ(tip_result_text(result, 0, 0), "a");
  EXPECT_EQ(tip_result_int64(result, 0, 1), 1);
  EXPECT_EQ(tip_result_is_null(result, 1, 1), 1);
  // The Element column survives the wire as its typed rendering.
  EXPECT_NE(std::string(tip_result_text(result, 0, 2)).find("1999-01-01"),
            std::string::npos);
  tip_result_free(result);

  // Errors carry the engine's status text into tip_last_error.
  EXPECT_EQ(tip_exec(conn_, "SELECT * FROM missing", nullptr), -1);
  EXPECT_NE(std::string(tip_last_error(conn_)).find("missing"),
            std::string::npos);
}

TEST_F(CApiRemoteTest, SessionStateAndTransactionsOverTheWire) {
  Must("CREATE TABLE p (id INT, valid Element)");
  Must("INSERT INTO p VALUES (1, '{[1990-01-01, 1991-01-01]}')");

  // SET NOW is session state on the server, reachable through the
  // same C call as embedded.
  ASSERT_EQ(tip_set_now(conn_, "1990-06-01"), 0) << tip_last_error(conn_);
  tip_result* result = nullptr;
  ASSERT_EQ(tip_exec(conn_,
                     "SELECT count(*) FROM p WHERE "
                     "contains(valid, transaction_time())",
                     &result),
            0);
  EXPECT_EQ(tip_result_int64(result, 0, 0), 1);
  tip_result_free(result);
  ASSERT_EQ(tip_clear_now(conn_), 0);

  // A transaction: begin, insert, rollback leaves the table unchanged.
  EXPECT_EQ(tip_in_transaction(conn_), 0);
  ASSERT_EQ(tip_begin(conn_), 0) << tip_last_error(conn_);
  EXPECT_EQ(tip_in_transaction(conn_), 1);
  Must("INSERT INTO p VALUES (2, NULL)");
  ASSERT_EQ(tip_rollback(conn_), 0);
  EXPECT_EQ(tip_in_transaction(conn_), 0);
  ASSERT_EQ(tip_exec(conn_, "SELECT count(*) FROM p", &result), 0);
  EXPECT_EQ(tip_result_int64(result, 0, 0), 1);
  tip_result_free(result);

  // And a committed one sticks — visible to the embedded side too.
  ASSERT_EQ(tip_begin(conn_), 0);
  Must("INSERT INTO p VALUES (3, NULL)");
  ASSERT_EQ(tip_commit(conn_), 0);
  tip::Result<tip::engine::ResultSet> embedded =
      db_->Execute("SELECT count(*) FROM p");
  ASSERT_TRUE(embedded.ok());
  EXPECT_EQ(embedded->rows[0][0].int_value(), 2);
}

TEST_F(CApiRemoteTest, PreparedStatementsBindOverTheWire) {
  Must("CREATE TABLE t (id INT, who CHAR(8))");

  tip_stmt* stmt = nullptr;
  ASSERT_EQ(tip_prepare(conn_, "INSERT INTO t VALUES (:id, :who)", &stmt),
            0)
      << tip_last_error(conn_);
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(tip_stmt_bind_int(stmt, "id", i), 0);
    ASSERT_EQ(tip_stmt_bind_text(stmt, "who", i % 2 == 0 ? "even" : "odd"),
              0);
    ASSERT_EQ(tip_stmt_execute(stmt, nullptr), 0) << tip_last_error(conn_);
  }
  tip_stmt_close(stmt);

  ASSERT_EQ(tip_prepare(conn_, "SELECT count(*) FROM t WHERE who = :w",
                        &stmt),
            0);
  ASSERT_EQ(tip_stmt_bind_text(stmt, "w", "even"), 0);
  tip_result* result = nullptr;
  ASSERT_EQ(tip_stmt_execute(stmt, &result), 0) << tip_last_error(conn_);
  EXPECT_EQ(tip_result_int64(result, 0, 0), 2);
  tip_result_free(result);
  tip_stmt_close(stmt);

  // A bad prepare fails eagerly, same contract as embedded.
  stmt = reinterpret_cast<tip_stmt*>(0x1);
  EXPECT_EQ(tip_prepare(conn_, "SELEC 1", &stmt), -1);
  EXPECT_EQ(stmt, nullptr);
}

TEST_F(CApiRemoteTest, ConnectValidatesItsArguments) {
  EXPECT_EQ(tip_connect(nullptr, 1234), nullptr);
  EXPECT_EQ(tip_connect("127.0.0.1", 0), nullptr);
  EXPECT_EQ(tip_connect("127.0.0.1", -1), nullptr);
  // A refused port yields NULL, not a half-open handle.
  EXPECT_EQ(tip_connect("127.0.0.1", 1), nullptr);
}

}  // namespace
