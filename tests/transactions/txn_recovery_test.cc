// Transaction brackets in the write-ahead log: recovery replays only
// committed transactions, discards uncommitted tails and aborted
// brackets, rejects structurally impossible bracket sequences as
// corruption, and ROLLBACK physically rewinds the log file to its
// pre-transaction bytes.

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "datablade/datablade.h"
#include "engine/database.h"
#include "engine/storage/snapshot.h"
#include "engine/storage/wal.h"

namespace tip::engine {
namespace {

class TxnRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::ClearAll(); }

  void TearDown() override {
    fault::ClearAll();
    for (const std::string& dir : dirs_) {
      std::error_code ignored;
      std::filesystem::remove_all(dir, ignored);
    }
  }

  std::string FreshDir(const std::string& name) {
    std::string dir = ::testing::TempDir() + "/tip_txn_rec_" + name;
    std::error_code ignored;
    std::filesystem::remove_all(dir, ignored);
    dirs_.push_back(dir);
    return dir;
  }

  static std::unique_ptr<Database> OpenDb(const std::string& dir,
                                          RecoveryReport* report = nullptr) {
    auto db = std::make_unique<Database>();
    EXPECT_TRUE(datablade::Install(db.get()).ok());
    Status attached = db->AttachDurableDir(dir, report);
    EXPECT_TRUE(attached.ok()) << attached.ToString();
    return db;
  }

  static ResultSet Exec(Database* db, std::string_view sql) {
    Result<ResultSet> r = db->Execute(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    return r.ok() ? std::move(*r) : ResultSet{};
  }

  static int64_t Count(Database* db, const std::string& table) {
    return Exec(db, "SELECT count(*) FROM " + table).rows[0][0].int_value();
  }

  /// Appends raw bracket records to a closed database's log, to
  /// simulate tails no live engine would produce.
  static void AppendRawRecords(const std::string& dir,
                               const std::vector<WalRecordKind>& kinds) {
    std::vector<WalRecord> existing;
    WalOpenReport report;
    Result<std::unique_ptr<Wal>> wal =
        Wal::Open(dir + "/wal.log", 1, &existing, &report);
    ASSERT_TRUE(wal.ok()) << wal.status().ToString();
    for (WalRecordKind kind : kinds) {
      Result<uint64_t> lsn = (*wal)->Append(kind, "", WalMode::kSync);
      ASSERT_TRUE(lsn.ok()) << lsn.status().ToString();
    }
  }

  std::vector<std::string> dirs_;
};

TEST_F(TxnRecoveryTest, CommittedTransactionIsReplayedOnReopen) {
  const std::string dir = FreshDir("committed");
  {
    std::unique_ptr<Database> db = OpenDb(dir);
    Exec(db.get(), "SET wal_mode 'sync'");
    Exec(db.get(), "CREATE TABLE t (id INT, v CHAR(4))");
    Exec(db.get(), "BEGIN");
    Exec(db.get(), "INSERT INTO t VALUES (1, 'a')");
    Exec(db.get(), "INSERT INTO t VALUES (2, 'b')");
    Exec(db.get(), "UPDATE t SET v = 'a2' WHERE id = 1");
    Exec(db.get(), "COMMIT");
  }
  RecoveryReport report;
  std::unique_ptr<Database> db = OpenDb(dir, &report);
  EXPECT_EQ(report.txns_replayed, 1u);
  EXPECT_EQ(report.txn_records_discarded, 0u);
  EXPECT_EQ(report.wal_records_replayed, 4u);  // CREATE + 2 inserts + update
  EXPECT_EQ(Count(db.get(), "t"), 2);
  EXPECT_EQ(Exec(db.get(), "SELECT v FROM t WHERE id = 1")
                .rows[0][0]
                .string_value(),
            "a2");
}

TEST_F(TxnRecoveryTest, UncommittedTailIsDiscardedOnReopen) {
  const std::string dir = FreshDir("uncommitted");
  std::string base_digest;
  {
    std::unique_ptr<Database> db = OpenDb(dir);
    Exec(db.get(), "SET wal_mode 'sync'");
    Exec(db.get(), "CREATE TABLE t (id INT)");
    Exec(db.get(), "INSERT INTO t VALUES (1)");
    {
      Database reference;
      ASSERT_TRUE(datablade::Install(&reference).ok());
      Exec(&reference, "CREATE TABLE t (id INT)");
      Exec(&reference, "INSERT INTO t VALUES (1)");
      base_digest = SaveSnapshot(reference).value();
    }
    Exec(db.get(), "BEGIN");
    Exec(db.get(), "INSERT INTO t VALUES (2)");
    Exec(db.get(), "INSERT INTO t VALUES (3)");
    // Database goes away with the transaction still open: the log ends
    // with TXN_BEGIN + two inserts and no commit record — exactly what
    // a crash mid-transaction leaves behind.
  }
  RecoveryReport report;
  std::unique_ptr<Database> db = OpenDb(dir, &report);
  EXPECT_EQ(report.txns_replayed, 0u);
  EXPECT_EQ(report.txn_records_discarded, 2u);
  EXPECT_EQ(report.wal_records_replayed, 2u);  // CREATE + first insert
  EXPECT_EQ(Count(db.get(), "t"), 1);
  EXPECT_EQ(SaveSnapshot(*db).value(), base_digest);
  EXPECT_EQ(db->durability_stats().txn_records_discarded, 2u);
}

TEST_F(TxnRecoveryTest, AbortBracketIsSkippedAndEmptyCommitApplies) {
  const std::string dir = FreshDir("abort");
  {
    std::unique_ptr<Database> db = OpenDb(dir);
    Exec(db.get(), "SET wal_mode 'sync'");
    Exec(db.get(), "CREATE TABLE t (id INT)");
  }
  // A hand-written tail: an aborted empty bracket, then a committed
  // empty bracket. Neither applies records, both must parse.
  AppendRawRecords(dir, {WalRecordKind::kTxnBegin, WalRecordKind::kTxnAbort,
                         WalRecordKind::kTxnBegin,
                         WalRecordKind::kTxnCommit});
  RecoveryReport report;
  std::unique_ptr<Database> db = OpenDb(dir, &report);
  EXPECT_EQ(report.txns_replayed, 1u);
  EXPECT_EQ(report.txn_records_discarded, 0u);
  EXPECT_EQ(Count(db.get(), "t"), 0);
}

TEST_F(TxnRecoveryTest, StructurallyImpossibleBracketsAreCorruption) {
  const struct {
    const char* name;
    std::vector<WalRecordKind> tail;
  } cases[] = {
      {"commit_without_begin", {WalRecordKind::kTxnCommit}},
      {"abort_without_begin", {WalRecordKind::kTxnAbort}},
      {"nested_begin",
       {WalRecordKind::kTxnBegin, WalRecordKind::kTxnBegin}},
  };
  for (const auto& c : cases) {
    SCOPED_TRACE(c.name);
    const std::string dir = FreshDir(c.name);
    {
      std::unique_ptr<Database> db = OpenDb(dir);
      Exec(db.get(), "SET wal_mode 'sync'");
      Exec(db.get(), "CREATE TABLE t (id INT)");
    }
    AppendRawRecords(dir, c.tail);
    auto db = std::make_unique<Database>();
    ASSERT_TRUE(datablade::Install(db.get()).ok());
    Status attached = db->AttachDurableDir(dir);
    EXPECT_FALSE(attached.ok());
    EXPECT_EQ(attached.code(), StatusCode::kCorruption)
        << attached.ToString();
  }
}

TEST_F(TxnRecoveryTest, RollbackRewindsTheLogFileToItsPreBeginBytes) {
  const std::string dir = FreshDir("rewind");
  std::unique_ptr<Database> db = OpenDb(dir);
  Exec(db.get(), "SET wal_mode 'sync'");
  Exec(db.get(), "CREATE TABLE t (id INT)");
  Exec(db.get(), "INSERT INTO t VALUES (1)");

  const std::string wal_path = dir + "/wal.log";
  const auto size_before = std::filesystem::file_size(wal_path);
  const uint64_t lsn_before = db->durability_stats().wal_next_lsn;

  Exec(db.get(), "BEGIN");
  Exec(db.get(), "INSERT INTO t VALUES (2)");
  Exec(db.get(), "INSERT INTO t VALUES (3)");
  EXPECT_GT(std::filesystem::file_size(wal_path), size_before);
  Exec(db.get(), "ROLLBACK");

  EXPECT_EQ(std::filesystem::file_size(wal_path), size_before);
  EXPECT_EQ(db->durability_stats().wal_next_lsn, lsn_before);

  // The rewound log replays cleanly — and LSNs reassigned after the
  // rollback don't collide with the discarded ones.
  Exec(db.get(), "INSERT INTO t VALUES (4)");
  db.reset();
  RecoveryReport report;
  std::unique_ptr<Database> reopened = OpenDb(dir, &report);
  EXPECT_EQ(report.txn_records_discarded, 0u);
  EXPECT_EQ(Count(reopened.get(), "t"), 2);
}

TEST_F(TxnRecoveryTest, CommittedTransactionsReplayAcrossAllLoggingModes) {
  for (const char* mode : {"async", "group", "sync"}) {
    SCOPED_TRACE(mode);
    const std::string dir = FreshDir(std::string("mode_") + mode);
    {
      std::unique_ptr<Database> db = OpenDb(dir);
      Exec(db.get(), std::string("SET wal_mode '") + mode + "'");
      Exec(db.get(), "CREATE TABLE t (id INT)");
      Exec(db.get(), "BEGIN");
      Exec(db.get(), "INSERT INTO t VALUES (1)");
      Exec(db.get(), "COMMIT");
      Exec(db.get(), "BEGIN");
      Exec(db.get(), "INSERT INTO t VALUES (2)");
      Exec(db.get(), "ROLLBACK");
    }
    RecoveryReport report;
    std::unique_ptr<Database> db = OpenDb(dir, &report);
    EXPECT_EQ(report.txns_replayed, 1u);
    EXPECT_EQ(report.txn_records_discarded, 0u);
    EXPECT_EQ(Count(db.get(), "t"), 1);
  }
}

}  // namespace
}  // namespace tip::engine
